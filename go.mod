module predctl

go 1.24
