package predctl

import (
	"errors"
	"math/rand"
	"testing"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// batchWorkload builds count random traced computations with random
// conjunctive and disjunctive predicates over them.
func batchWorkload(seed int64, count int) ([]*Computation, []*Conjunction, []*Disjunction) {
	r := rand.New(rand.NewSource(seed))
	ds := make([]*Computation, count)
	qs := make([]*Conjunction, count)
	bs := make([]*Disjunction, count)
	for i := range ds {
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(4), 10+r.Intn(50)))
		ds[i] = d
		qt := deposet.RandomTruth(r, d, 0.4)
		cj := NewConjunction(d.NumProcs())
		for p := 0; p < d.NumProcs(); p++ {
			tp := qt[p]
			cj.Add(p, "q", func(_ *Computation, k int) bool { return tp[k] })
		}
		qs[i] = cj
		bs[i] = predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.8))
	}
	return ds, qs, bs
}

// DetectBatch must agree with the one-trace-at-a-time facade calls, for
// every worker count.
func TestDetectBatchMatchesSequential(t *testing.T) {
	ds, qs, _ := batchWorkload(21, 40)
	for _, workers := range []int{1, 2, 4, 7} {
		got, err := DetectBatch(ds, qs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ds) {
			t.Fatalf("workers=%d: %d verdicts for %d traces", workers, len(got), len(ds))
		}
		for i := range ds {
			cut, possible := Possibly(ds[i], qs[i])
			ivs, definite := Definitely(ds[i], qs[i])
			v := got[i]
			if v.Possible != possible || v.Definite != definite {
				t.Fatalf("workers=%d trace %d: verdicts (%v,%v), want (%v,%v)",
					workers, i, v.Possible, v.Definite, possible, definite)
			}
			if possible && !v.Cut.Equal(cut) {
				t.Fatalf("workers=%d trace %d: cut %v, want %v", workers, i, v.Cut, cut)
			}
			if definite {
				for j := range ivs {
					if v.Intervals[j] != ivs[j] {
						t.Fatalf("workers=%d trace %d: interval %d differs", workers, i, j)
					}
				}
			}
		}
	}
}

// ControlBatch must agree with one-at-a-time Control: same feasibility
// split and identical relations.
func TestControlBatchMatchesSequential(t *testing.T) {
	ds, _, bs := batchWorkload(22, 40)
	for _, workers := range []int{1, 3, 8} {
		got, err := ControlBatch(ds, bs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ds {
			want, wantErr := Control(ds[i], bs[i])
			v := got[i]
			if (v.Err == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d trace %d: err %v, want %v", workers, i, v.Err, wantErr)
			}
			if wantErr != nil {
				if !errors.Is(v.Err, ErrInfeasible) {
					t.Fatalf("workers=%d trace %d: err %v", workers, i, v.Err)
				}
				continue
			}
			if len(v.Res.Relation) != len(want.Relation) {
				t.Fatalf("workers=%d trace %d: %d edges, want %d",
					workers, i, len(v.Res.Relation), len(want.Relation))
			}
			for j := range want.Relation {
				if v.Res.Relation[j] != want.Relation[j] {
					t.Fatalf("workers=%d trace %d: edge %d differs", workers, i, j)
				}
			}
		}
	}
}

// A synthesized batch controller still verifies end to end through the
// replay path.
func TestControlBatchReplayRoundTrip(t *testing.T) {
	ds, _, bs := batchWorkload(23, 8)
	got, err := ControlBatch(ds, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for i, v := range got {
		if v.Err != nil {
			continue
		}
		rr, err := Replay(ds[i], v.Res.Relation, ReplayConfig{Seed: int64(i)})
		if err != nil {
			t.Fatalf("trace %d: replay: %v", i, err)
		}
		if cut, ok := VerifyReplay(rr, ds[i], bs[i]); !ok {
			t.Fatalf("trace %d: replay violates predicate at %v", i, cut)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no feasible instance in batch workload; adjust seed")
	}
}

func TestBatchLengthMismatch(t *testing.T) {
	ds, qs, bs := batchWorkload(24, 3)
	if _, err := DetectBatch(ds[:2], qs, 0); err == nil {
		t.Fatal("DetectBatch accepted mismatched lengths")
	}
	if _, err := ControlBatch(ds, bs[:1], 0); err == nil {
		t.Fatal("ControlBatch accepted mismatched lengths")
	}
}
