# predctl build/test entry points. `make check` is the tier-1 gate
# (README §Testing): build + vet + race-detector test run, the bar every
# change must clear.

GO ?= go

.PHONY: all build vet test race check bench baseline

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Regenerate the committed parallel-engine baseline (internal/expt E10).
baseline:
	$(GO) run ./cmd/pcbench -baseline BENCH_baseline.json
