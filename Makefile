# predctl build/test entry points. `make check` is the tier-1 gate
# (README §Testing): build + vet + race-detector test run, the bar every
# change must clear.

GO ?= go

.PHONY: all build vet test race check bench bench-mem bench-mem-baseline baseline bench-cluster bench-chaos chaos-smoke bench-slice slice-smoke bench-obs bench-live live-smoke bench-relay relay-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Allocation gate: run the allocs-per-run pin tests, then re-measure the
# memory sweep and diff it against the committed BENCH_memory.json
# (fails on allocs/op or bytes/op growth beyond slack; see
# internal/expt/mem.go for the tolerances).
bench-mem:
	$(GO) test -run 'AllocFree|AllocBound' ./internal/deposet ./internal/detect
	$(GO) run ./cmd/pcbench -compare BENCH_memory.json

# Regenerate the committed parallel-engine baseline (internal/expt E10).
baseline:
	$(GO) run ./cmd/pcbench -baseline BENCH_baseline.json

# Regenerate the committed cluster baseline: real in-process clusters
# over loopback TCP at 8..128 nodes flat (per-event vs batched capture
# framing), 256/512 nodes flat vs a 2-level relay tree (plus an
# on-disk trace-store row with bundle-reassembly verification), and
# the coordinator ingest micro-benchmark in all three framings (see
# internal/expt/cluster.go). Every run must end with the paper
# invariants green.
bench-cluster:
	$(GO) run ./cmd/pcbench -cluster BENCH_cluster.json

# Hierarchical-ingest gate: 64 nodes through a 2-level relay tree with
# one relay killed mid-run — full capture, zero restarts, the paper
# invariants, and live-verdict agreement with offline detection all
# required (see internal/expt/relay.go). The relay-smoke CI job runs
# exactly this; seconds, not minutes.
bench-relay relay-smoke:
	$(GO) run ./cmd/pcbench -relay-smoke

# Regenerate the committed allocation baseline. -pre embeds an earlier
# sweep (measured on the pre-optimization tree) so the JSON records the
# reduction; omit it to just re-measure.
bench-mem-baseline:
	$(GO) run ./cmd/pcbench -membaseline BENCH_memory.json

# Regenerate the committed chaos-soak record: ≥60s of seeded
# crash/partition iterations (≥100 crash recoveries, ≥12 partition
# windows, coordinator-stream cuts included), each required to end with
# a complete capture and the paper invariants green (see
# internal/expt/chaos.go). Exits nonzero on any lost capture event or
# invariant violation.
bench-chaos:
	$(GO) run ./cmd/pcbench -chaos BENCH_chaos.json

# A seconds-long slice of the same soak for CI: small cluster, few
# iterations, fixed seed — enough to catch crash-path regressions
# without the full minute.
chaos-smoke:
	$(GO) run ./cmd/pcbench -chaos /tmp/chaos_smoke.json \
		-chaos-duration 2s -chaos-n 4 -chaos-crashes 4 -chaos-partitions 2

# Regenerate the committed live-observability overhead record: the same
# 32-node loopback cluster with observability dark vs fully lit
# (MetricsSnapshot frames on the capture stream + coordinator /metrics
# and /statusz under a continuous polling load); min-wall comparison
# (see internal/expt/obs.go).
bench-obs:
	$(GO) run ./cmd/pcbench -obs BENCH_obs.json

# Regenerate the committed live-detection record: 32-node violation-free
# loopback clusters with the streaming GW checker dark vs lit (min
# wall, ingest overhead), plus planted-violation runs joining each
# confirmed detection back to the witness candidate's journal event for
# the candidate-send→fire latency distribution (see
# internal/expt/live.go).
bench-live:
	$(GO) run ./cmd/pcbench -live BENCH_live.json

# CI slice of the same measurement: small cluster, few reps — exercises
# both the violation-free lit path (a false fire fails the run) and the
# planted-violation detection/latency join in seconds.
live-smoke:
	$(GO) run ./cmd/pcbench -live /tmp/live_smoke.json \
		-live-n 8 -live-reps 2 -live-latency-runs 3

# Regenerate the committed computation-slicing baseline: slice-based
# violation enumeration vs the exhaustive lattice walk, ns/op and states
# explored at 1/2/4 workers, with the slice's answer cross-validated
# against the exhaustive oracle on every enumerable workload (see
# internal/expt/slice.go).
bench-slice:
	$(GO) run ./cmd/pcbench -slice BENCH_slice.json

# CI gate for the sliced dispatcher: seeded traces, slice vs exhaustive
# violation sets must match exactly and the slice must explore strictly
# fewer states. Seconds, not minutes.
slice-smoke:
	$(GO) run ./cmd/pcbench -slice-smoke
