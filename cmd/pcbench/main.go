// Command pcbench regenerates the paper's evaluation artifacts (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	pcbench            # run every experiment
//	pcbench e4 e6      # run selected experiments
//	pcbench -seed 42   # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"

	"predctl/internal/expt"
)

func main() {
	seed := flag.Int64("seed", 1998, "workload seed")
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		for _, t := range expt.All(*seed) {
			fmt.Println(t)
		}
		return
	}
	for _, id := range ids {
		t := expt.ByID(id, *seed)
		if t == nil {
			fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q (want e1..e9)\n", id)
			os.Exit(1)
		}
		fmt.Println(t)
	}
}
