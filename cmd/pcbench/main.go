// Command pcbench regenerates the paper's evaluation artifacts (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	pcbench                              # run every experiment
//	pcbench e4 e6                        # run selected experiments
//	pcbench -seed 42                     # change the workload seed
//	pcbench -baseline BENCH_baseline.json # record the parallel-engine baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"predctl/internal/expt"
)

func main() {
	seed := flag.Int64("seed", 1998, "workload seed")
	baseline := flag.String("baseline", "", "write the parallel-engine baseline (E10 sweep) as JSON to this file and exit")
	flag.Parse()
	if *baseline != "" {
		doc, err := expt.BaselineJSON(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baseline, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *baseline)
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, t := range expt.All(*seed) {
			fmt.Println(t)
		}
		return
	}
	for _, id := range ids {
		t := expt.ByID(id, *seed)
		if t == nil {
			fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q (want e1..e10)\n", id)
			os.Exit(1)
		}
		fmt.Println(t)
	}
}
