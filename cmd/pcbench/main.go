// Command pcbench regenerates the paper's evaluation artifacts (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	pcbench                                # run every experiment
//	pcbench e4 e6                          # run selected experiments
//	pcbench -seed 42                       # change the workload seed
//	pcbench -baseline BENCH_baseline.json  # record the parallel-engine baseline
//	pcbench -membaseline BENCH_memory.json # record the allocation baseline
//	pcbench -cluster BENCH_cluster.json    # record the networked-runtime sweep
//	                                       # (real loopback clusters, 8..128 nodes
//	                                       # flat, plus 256/512 through a 2-level
//	                                       # relay tree and an on-disk-store row)
//	pcbench -chaos BENCH_chaos.json        # 60s crash/partition soak with controlled
//	                                       # re-execution recovery; exits 1 unless every
//	                                       # run ends with zero lost capture and the
//	                                       # invariants green. -chaos-n / -chaos-duration /
//	                                       # -chaos-crashes / -chaos-partitions scale it
//	                                       # (the CI smoke job runs a seconds-long slice)
//	pcbench -obs BENCH_obs.json            # measure live-observability overhead:
//	                                       # the same loopback cluster with snapshots
//	                                       # off vs MetricsSnapshot frames + HTTP
//	                                       # introspection under a polling load.
//	                                       # -obs-n / -obs-reps scale it
//	pcbench -live BENCH_live.json          # measure the live-detection subsystem:
//	                                       # checker dark vs lit ingest overhead on a
//	                                       # violation-free cluster, plus the
//	                                       # candidate-send→confirmed-fire latency on
//	                                       # planted-violation runs. -live-n / -live-reps /
//	                                       # -live-latency-runs scale it
//	pcbench -slice BENCH_slice.json        # record the computation-slicing sweep:
//	                                       # slice vs exhaustive violation enumeration,
//	                                       # ns/op and states explored at 1/2/4 workers
//	pcbench -slice-smoke                   # slice-vs-exhaustive cross-validation on
//	                                       # seeded traces; exits 1 on any mismatch
//	pcbench -relay-smoke                   # hierarchical-ingest smoke: 64 nodes
//	                                       # through a 2-level relay tree with one
//	                                       # relay killed mid-run; full capture,
//	                                       # invariants, and live-verdict agreement
//	                                       # required; exits 1 on any failure
//	pcbench -membaseline X -pre OLD.json   # ... embedding OLD as the pre-change rows
//	pcbench -compare BENCH_memory.json     # diff a fresh sweep against the file;
//	                                       # exits 1 on allocs/op or ns/op regression
//	pcbench -compare OLD.json NEW.json     # diff two recorded sweeps
//	pcbench -metrics                       # instrumented protocol sweep, Prometheus
//	                                       # text format on stdout
//	pcbench -cpuprofile cpu.pprof e10      # profile any of the above with pprof
//	pcbench -memprofile mem.pprof e2       # ... heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"predctl/internal/expt"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
	os.Exit(1)
}

func readMemBaseline(path string) *expt.MemBaseline {
	doc, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var b expt.MemBaseline
	if err := json.Unmarshal(doc, &b); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return &b
}

func main() {
	seed := flag.Int64("seed", 1998, "workload seed")
	baseline := flag.String("baseline", "", "write the parallel-engine baseline (E10 sweep) as JSON to this file and exit")
	membaseline := flag.String("membaseline", "", "write the allocation baseline (allocs/op sweep) as JSON to this file and exit")
	cluster := flag.String("cluster", "", "write the cluster baseline (loopback TCP sweep, per-event vs batched) as JSON to this file and exit")
	chaos := flag.String("chaos", "", "run the crash/partition chaos soak, write its totals as JSON to this file and exit (nonzero on any lost capture or invariant violation)")
	chaosN := flag.Int("chaos-n", 8, "chaos soak: cluster size per iteration")
	chaosDur := flag.Duration("chaos-duration", 60*time.Second, "chaos soak: minimum wall time")
	chaosCrashes := flag.Int("chaos-crashes", 100, "chaos soak: minimum crash-recovery count")
	chaosParts := flag.Int("chaos-partitions", 12, "chaos soak: minimum partition-window count")
	obsOut := flag.String("obs", "", "write the live-observability overhead measurement (snapshots+HTTP on vs off) as JSON to this file and exit")
	obsN := flag.Int("obs-n", 32, "obs bench: cluster size")
	obsReps := flag.Int("obs-reps", 8, "obs bench: repetitions per mode (median wall compared)")
	liveOut := flag.String("live", "", "write the live-detection measurement (dark-vs-lit ingest overhead + detection latency) as JSON to this file and exit")
	liveN := flag.Int("live-n", 32, "live bench: overhead cluster size")
	liveReps := flag.Int("live-reps", 16, "live bench: repetitions per mode (min wall compared)")
	liveLatRuns := flag.Int("live-latency-runs", 12, "live bench: planted-violation runs for the latency distribution")
	pre := flag.String("pre", "", "with -membaseline: embed this earlier sweep as the pre-change rows and record reductions")
	compare := flag.String("compare", "", "compare this baseline JSON against a fresh sweep (or a second file argument); exit 1 on regression")
	sliceOut := flag.String("slice", "", "write the computation-slicing sweep (slice vs exhaustive detection) as JSON to this file and exit")
	sliceSmoke := flag.Bool("slice-smoke", false, "cross-validate sliced detection against the exhaustive oracle on seeded traces; exit 1 on any mismatch")
	relaySmoke := flag.Bool("relay-smoke", false, "run the hierarchical-ingest smoke: a 2-level relay tree with a mid-run relay kill, gated on full capture, invariants, and live-verdict agreement; exit 1 on any failure")
	metrics := flag.Bool("metrics", false, "run the instrumented protocol sweep and dump its metrics in Prometheus text format")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *metrics {
		reg, err := expt.MetricsRegistry(*seed)
		if err != nil {
			fatal(err)
		}
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *sliceSmoke {
		verdict, err := expt.SliceSmoke(*seed)
		if err != nil {
			fatal(fmt.Errorf("slice smoke: %w", err))
		}
		fmt.Println(verdict)
		return
	}
	if *relaySmoke {
		verdict, err := expt.RelaySmoke(*seed)
		if err != nil {
			fatal(fmt.Errorf("relay smoke: %w", err))
		}
		fmt.Println(verdict)
		return
	}
	if *sliceOut != "" {
		doc, err := expt.SliceBaselineJSON(*seed)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sliceOut, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *sliceOut)
		return
	}
	if *baseline != "" {
		doc, err := expt.BaselineJSON(*seed)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baseline, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *baseline)
		return
	}
	if *chaos != "" {
		doc, verdict, err := expt.ChaosJSON(expt.ChaosOptions{
			Seed: *seed, N: *chaosN, Duration: *chaosDur,
			MinCrashes: *chaosCrashes, MinPartitions: *chaosParts,
		})
		if err != nil {
			fatal(fmt.Errorf("chaos soak: %w", err))
		}
		if err := os.WriteFile(*chaos, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chaos soak %s\n", verdict)
		fmt.Printf("wrote %s\n", *chaos)
		return
	}
	if *obsOut != "" {
		doc, err := expt.ObsJSON(expt.ObsOptions{Seed: *seed, N: *obsN, Reps: *obsReps})
		if err != nil {
			fatal(fmt.Errorf("obs bench: %w", err))
		}
		if err := os.WriteFile(*obsOut, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *obsOut)
		return
	}
	if *liveOut != "" {
		doc, err := expt.LiveJSON(expt.LiveOptions{
			Seed: *seed, N: *liveN, Reps: *liveReps, LatencyRuns: *liveLatRuns,
		})
		if err != nil {
			fatal(fmt.Errorf("live bench: %w", err))
		}
		if err := os.WriteFile(*liveOut, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *liveOut)
		return
	}
	if *cluster != "" {
		doc, err := expt.ClusterJSON(*seed)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*cluster, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *cluster)
		return
	}
	if *membaseline != "" {
		var prev *expt.MemBaseline
		if *pre != "" {
			prev = readMemBaseline(*pre)
		}
		doc, err := expt.MemoryJSON(*seed, prev)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*membaseline, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *membaseline)
		return
	}
	if *compare != "" {
		old := readMemBaseline(*compare)
		var cur *expt.MemBaseline
		if rest := flag.Args(); len(rest) > 0 {
			cur = readMemBaseline(rest[0])
		} else {
			cur = expt.MeasureMemory(*seed)
		}
		report, err := expt.CompareMem(old, cur)
		fmt.Print(report)
		if err != nil {
			fatal(err)
		}
		fmt.Println("no regression")
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, t := range expt.All(*seed) {
			fmt.Println(t)
		}
		return
	}
	for _, id := range ids {
		t := expt.ByID(id, *seed)
		if t == nil {
			fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q (want e1..e10)\n", id)
			os.Exit(1)
		}
		fmt.Println(t)
	}
}
