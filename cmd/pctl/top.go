package main

// top.go: `pctl top` is the live cluster dashboard. It polls a
// coordinator's /statusz introspection endpoint and renders a
// top-style per-node table — epoch, snapshot lag, capture-stream
// frames and rates, candidates, request/handoff tallies, retransmits,
// and each node's completion state — refreshing until the run (and its
// coordinator) goes away.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"

	"predctl/internal/node"
)

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	coord := fs.String("coord", "http://127.0.0.1:7070", "coordinator introspection base URL (pctl cluster -http / pctl node -id -1 -http)")
	interval := fs.Duration("interval", time.Second, "refresh period")
	once := fs.Bool("once", false, "render one frame and exit")
	count := fs.Int("count", 0, "exit after N frames (0 = until the coordinator exits)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return errors.New("top takes no arguments; point -coord at a coordinator URL")
	}
	base := strings.TrimSuffix(*coord, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *node.CoordStatus
	var prevAt time.Time
	frames := 0
	for {
		st, err := fetchCoordStatus(client, base)
		now := time.Now()
		if err != nil {
			if frames == 0 {
				return fmt.Errorf("top: %s: %w", base, err)
			}
			// The run completed and took its coordinator down — a clean
			// exit, not an error.
			fmt.Println("coordinator gone; exiting")
			return nil
		}
		var dt time.Duration
		if prev != nil {
			dt = now.Sub(prevAt)
		}
		if frames > 0 && !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear, top-style refresh
		}
		fmt.Print(renderTop(*st, prev, dt))
		frames++
		if *once || (*count > 0 && frames >= *count) || st.Committed {
			return nil
		}
		prev, prevAt = st, now
		time.Sleep(*interval)
	}
}

func fetchCoordStatus(client *http.Client, base string) (*node.CoordStatus, error) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statusz: HTTP %d", resp.StatusCode)
	}
	var st node.CoordStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("statusz: %w", err)
	}
	return &st, nil
}

// renderTop formats one dashboard frame. prev (the previous frame) and
// dt turn cumulative tallies into rates; with no previous frame the
// rate columns render "-".
func renderTop(st node.CoordStatus, prev *node.CoordStatus, dt time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster n=%d  epoch=%d  restarts=%d  done=%d/%d  byes=%d/%d",
		st.N, st.Epoch, st.Restarts, st.Done, st.N, st.Byes, st.N)
	if st.Live {
		fmt.Fprintf(&b, "  live{det=%d reexec=%d}", st.Detections, st.ReExecs)
		if st.LiveFired {
			b.WriteString("  [possibly(¬B) FIRED]")
		}
	}
	switch {
	case st.Committed:
		b.WriteString("  [committed]")
	case st.Shutdown:
		b.WriteString("  [shutdown]")
	}
	if st.StoreSegments > 0 {
		fmt.Fprintf(&b, "  store{segs=%d bytes=%d}", st.StoreSegments, st.StoreBytes)
	}
	fmt.Fprintf(&b, "  up %s\n", (time.Duration(st.UptimeMs) * time.Millisecond).Round(time.Millisecond))

	if len(st.Relays) > 0 {
		rw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(rw, "RELAY\tFANIN\tFRAMES\tITEMS\tSEQ\tLAG(ms)")
		for _, r := range st.Relays {
			lag := "-"
			if r.LagMs >= 0 {
				lag = fmt.Sprintf("%.1f", r.LagMs)
			}
			fmt.Fprintf(rw, "%d\t%d\t%d\t%d\t%d\t%s\n",
				r.Relay, r.FanIn, r.Frames, r.Items, r.LastSeq, lag)
		}
		rw.Flush()
	}

	prevRows := map[int]node.CoordNodeStatus{}
	if prev != nil {
		for _, row := range prev.Nodes {
			prevRows[row.Node] = row
		}
	}
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	head := "NODE\tEPOCH\tLAG(ms)\tFRAMES\tFR/S\tCANDS\tCA/S"
	if st.Live {
		head += "\tDET\tDT/S"
	}
	fmt.Fprintln(w, head+"\tREQS\tHANDOFF\tRETX\tSTATE")
	for _, row := range st.Nodes {
		lag := "-"
		if row.LagMs >= 0 {
			lag = fmt.Sprintf("%.1f", row.LagMs)
		}
		frames := row.Metrics["predctl_wire_frames_total"]
		frRate, caRate, dtRate := "-", "-", "-"
		if p, ok := prevRows[row.Node]; ok && dt > 0 {
			frRate = fmt.Sprintf("%.0f", rate(frames-p.Metrics["predctl_wire_frames_total"], dt))
			caRate = fmt.Sprintf("%.1f", rate(int64(row.Candidates-p.Candidates), dt))
			dtRate = fmt.Sprintf("%.1f", rate(int64(row.Detections-p.Detections), dt))
		}
		state := "running"
		switch {
		case row.Bye:
			state = "parked"
		case row.Done:
			state = "done"
		}
		fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%s\t%d\t%s",
			row.Node, row.Epoch, lag,
			frames, frRate,
			row.Candidates, caRate)
		if st.Live {
			fmt.Fprintf(w, "\t%d\t%s", row.Detections, dtRate)
		}
		fmt.Fprintf(w, "\t%d\t%d\t%d\t%s\n",
			row.Metrics["predctl_requests_total"],
			row.Metrics["predctl_handoffs_total"],
			row.Metrics["predctl_wire_retransmits_total"],
			state)
	}
	w.Flush()
	return b.String()
}

func rate(delta int64, dt time.Duration) float64 {
	if delta < 0 { // a relaunch reset the node's cumulative counters
		delta = 0
	}
	return float64(delta) / dt.Seconds()
}
