package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"predctl/internal/node"
)

func topSample(frames, cands int64) node.CoordStatus {
	return node.CoordStatus{
		N: 2, Epoch: 1, Restarts: 1, Done: 1, Byes: 0, UptimeMs: 1500,
		Nodes: []node.CoordNodeStatus{
			{Node: 0, Epoch: 1, LagMs: 2.5, Candidates: int(cands),
				Metrics: map[string]int64{
					"predctl_wire_frames_total":      frames,
					"predctl_requests_total":         3,
					"predctl_handoffs_total":         2,
					"predctl_wire_retransmits_total": 1,
				}},
			{Node: 1, Epoch: 1, LagMs: -1, Done: true, Bye: true,
				Metrics: map[string]int64{}},
		},
	}
}

func TestRenderTop(t *testing.T) {
	first := renderTop(topSample(100, 4), nil, 0)
	if !strings.Contains(first, "cluster n=2") || !strings.Contains(first, "restarts=1") {
		t.Fatalf("header missing from first frame:\n%s", first)
	}
	for _, col := range []string{"NODE", "EPOCH", "LAG(ms)", "FR/S", "CA/S", "RETX", "STATE"} {
		if !strings.Contains(first, col) {
			t.Fatalf("column %q missing:\n%s", col, first)
		}
	}
	// No previous frame → rate columns degrade to "-"; so does the
	// lag of the node that never snapshotted.
	if !strings.Contains(first, "-") {
		t.Fatalf("expected '-' placeholders on the first frame:\n%s", first)
	}
	if !strings.Contains(first, "parked") || !strings.Contains(first, "running") {
		t.Fatalf("per-node states missing:\n%s", first)
	}

	prev := topSample(100, 4)
	cur := topSample(300, 6)
	second := renderTop(cur, &prev, 2*time.Second)
	// 200 frames over 2s → 100/s; 2 candidates over 2s → 1.0/s.
	if !strings.Contains(second, "100") || !strings.Contains(second, "1.0") {
		t.Fatalf("rates not computed from deltas:\n%s", second)
	}

	// A counter going backwards (node relaunch) must clamp, not render
	// a negative rate.
	reset := topSample(50, 2)
	third := renderTop(reset, &cur, time.Second)
	if strings.Contains(third, "-1") || strings.Contains(third, "FR/S  -2") {
		t.Fatalf("negative rate leaked through a counter reset:\n%s", third)
	}

	// A dark run (no live checker) must not grow detection columns.
	if strings.Contains(first, "DET") || strings.Contains(first, "live{") {
		t.Fatalf("dark run rendered live-detection columns:\n%s", first)
	}
}

// TestRenderTopLive pins the live-detection view: the header summarizes
// confirmed detections and re-executions, each node row carries its
// witness tally with a rate, and a fired current-epoch verdict is
// called out.
func TestRenderTopLive(t *testing.T) {
	liveSample := func(dets int) node.CoordStatus {
		st := topSample(100, 4)
		st.Live = true
		st.Detections = dets
		st.ReExecs = 1
		st.Nodes[0].Detections = dets
		return st
	}
	first := renderTop(liveSample(1), nil, 0)
	if !strings.Contains(first, "live{det=1 reexec=1}") {
		t.Fatalf("live summary missing from header:\n%s", first)
	}
	for _, col := range []string{"DET", "DT/S"} {
		if !strings.Contains(first, col) {
			t.Fatalf("column %q missing from live frame:\n%s", col, first)
		}
	}

	// Two more confirmed detections over 2s → rate 1.0/s on the witness
	// node's row.
	prev := liveSample(1)
	cur := liveSample(3)
	second := renderTop(cur, &prev, 2*time.Second)
	if !strings.Contains(second, "1.0") {
		t.Fatalf("detection rate not computed from deltas:\n%s", second)
	}

	fired := liveSample(3)
	fired.LiveFired = true
	if out := renderTop(fired, nil, 0); !strings.Contains(out, "FIRED") {
		t.Fatalf("fired verdict not called out:\n%s", out)
	}
}

// TestTopOnce drives the subcommand end to end against a stub
// coordinator statusz endpoint.
func TestTopOnce(t *testing.T) {
	st := topSample(42, 3)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statusz" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer srv.Close()

	out, err := runCLI(t, "top", "-once", "-coord", srv.URL)
	if err != nil {
		t.Fatalf("top -once: %v\n%s", err, out)
	}
	if !strings.Contains(out, "cluster n=2") || !strings.Contains(out, "42") {
		t.Fatalf("dashboard frame missing data:\n%s", out)
	}

	if _, err := runCLI(t, "top", "-once", "-coord", "127.0.0.1:1"); err == nil {
		t.Fatal("top against a dead coordinator should fail")
	}
}
