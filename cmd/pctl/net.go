package main

// net.go: the networked-runtime subcommands. `pctl cluster` runs an
// n-node anti-token cluster over localhost TCP in one process — the
// quickest way to see online predicate control on a real network —
// while `pctl node` runs a single daemon (or, with -id -1, the
// coordinator), for spreading the same cluster across processes or
// machines.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/trace"
)

// crashFlag is a repeatable -crash flag: each occurrence schedules one
// node kill, e.g. -crash at=30ms,node=1,down=5ms. The relaunch triggers
// the coordinator's controlled re-execution restart.
type crashFlag struct{ crashes []node.Crash }

func (f *crashFlag) String() string { return fmt.Sprintf("%d crash(es)", len(f.crashes)) }

func (f *crashFlag) Set(s string) error {
	var cr node.Crash
	seen := false
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("crash: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "at":
			cr.At, err = time.ParseDuration(v)
			seen = true
		case "node":
			cr.Node, err = strconv.Atoi(v)
		case "down":
			cr.Down, err = time.ParseDuration(v)
		default:
			return fmt.Errorf("crash: unknown key %q (want at, node, down)", k)
		}
		if err != nil {
			return fmt.Errorf("crash: %s: %w", k, err)
		}
	}
	if !seen {
		return errors.New("crash: at=<duration> is required")
	}
	f.crashes = append(f.crashes, cr)
	return nil
}

// partitionFlag is a repeatable -partition flag: each occurrence opens
// one partition window, e.g. -partition start=20ms,dur=40ms,a=0:1 or
// -partition start=20ms,dur=40ms,a=2,coord (sever node 2 from the rest
// and from its coordinator stream).
type partitionFlag struct{ parts []node.Partition }

func (f *partitionFlag) String() string { return fmt.Sprintf("%d partition(s)", len(f.parts)) }

func (f *partitionFlag) Set(s string) error {
	var p node.Partition
	seen := false
	for _, kv := range strings.Split(s, ",") {
		if kv == "coord" {
			p.Coord = true
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("partition: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "start":
			p.Start, err = time.ParseDuration(v)
			seen = true
		case "dur":
			p.Dur, err = time.ParseDuration(v)
		case "a":
			p.A, err = parseNodeList(v)
		case "b":
			p.B, err = parseNodeList(v)
		default:
			return fmt.Errorf("partition: unknown key %q (want start, dur, a, b, coord)", k)
		}
		if err != nil {
			return fmt.Errorf("partition: %s: %w", k, err)
		}
	}
	if !seen {
		return errors.New("partition: start=<duration> is required")
	}
	if len(p.A) == 0 {
		return errors.New("partition: a=<node:node:...> is required")
	}
	f.parts = append(f.parts, p)
	return nil
}

// parseNodeList parses a colon-separated node-id list ("0:2:3").
func parseNodeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ":") {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("node id %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// batchFlags registers the capture-stream batching flags.
func batchFlags(fs *flag.FlagSet) *node.Batching {
	b := &node.Batching{}
	fs.IntVar(&b.MaxItems, "batch-items", 0, "capture items per batch frame before an early flush (0 = default 128)")
	fs.DurationVar(&b.Interval, "batch-interval", 0, "capture flush period (0 = default 2ms)")
	fs.BoolVar(&b.PerEvent, "per-event", false, "disable capture batching: one frame per journal event / trace op / candidate")
	return b
}

// faultFlags registers the fault-injection shim's flags.
func faultFlags(fs *flag.FlagSet) *node.Faults {
	f := &node.Faults{}
	fs.Float64Var(&f.Drop, "drop", 0, "probability a protocol frame write is dropped")
	fs.Float64Var(&f.Dup, "dup", 0, "probability a protocol frame is written twice")
	fs.DurationVar(&f.Delay, "delay", 0, "fixed latency before every protocol frame write")
	fs.DurationVar(&f.Jitter, "jitter", 0, "extra uniform random latency in [0, jitter)")
	fs.Int64Var(&f.Seed, "fault-seed", 1, "seed of the per-link fault decision streams")
	return f
}

// liveConfig builds the coordinator's online-detection config from the
// -live-predicate / -on-detect / -max-reexecs flags. Only the workload's
// own mutex predicate is nameable today; "" leaves detection dark.
func liveConfig(name, onDetect string, maxReExecs, n int) (node.LiveConfig, error) {
	switch name {
	case "":
		if onDetect != "" {
			return node.LiveConfig{}, errors.New("-on-detect needs -live-predicate")
		}
		return node.LiveConfig{}, nil
	case "cs":
		return node.LiveConfig{
			Predicate:  node.CSMutexPredicate(n),
			OnDetect:   onDetect,
			MaxReExecs: maxReExecs,
		}, nil
	default:
		return node.LiveConfig{}, fmt.Errorf("unknown live predicate %q (want cs)", name)
	}
}

// liveFlags registers the online-detection flags shared by the cluster
// and coordinator subcommands.
func liveFlags(fs *flag.FlagSet) (pred, onDetect *string, maxReExecs *int) {
	pred = fs.String("live-predicate", "", "detect possibly(¬B) online while the run streams; `cs` names the workload's (n-1)-mutex predicate")
	onDetect = fs.String("on-detect", "", "confirmed-detection response: `reexec` (auto-drive a controlled re-execution, the default) or `note` (record only)")
	maxReExecs = fs.Int("max-reexecs", 0, "cap on detection-triggered re-executions (0 = default 1)")
	return
}

// printDetections summarizes a run's confirmed live detections.
func printDetections(res *node.Result) {
	if len(res.Detections) == 0 {
		return
	}
	fmt.Printf("live: %d confirmed detection(s), %d re-execution(s), final-epoch verdict fired=%v\n",
		len(res.Detections), res.ReExecs, res.LiveFired)
	for _, det := range res.Detections {
		when := "mid-run"
		if det.Final {
			when = "closing pass"
		}
		act := "noted"
		if det.ReExec {
			act = fmt.Sprintf("re-exec ordered (%d strategy edges)", det.StrategyEdges)
		}
		fmt.Printf("  epoch %d: possibly(¬B) confirmed %s at %.1fms (witness node %d), %s\n",
			det.Epoch, when, float64(det.AtNs)/1e6, det.Node, act)
	}
}

// csPredicate is the cluster workload's control predicate B = ∨ᵢ ¬csᵢ
// as a spec over the captured 2n-process trace (apps are 0..n-1).
func csPredicate(n int) trace.DisjunctionSpec {
	var spec trace.DisjunctionSpec
	for i := 0; i < n; i++ {
		spec.Locals = append(spec.Locals, trace.LocalSpec{P: i, Var: "cs", Op: "eq", Value: 0})
	}
	return spec
}

// clusterInvariants runs the paper-bound checks on a networked run's
// merged journal and metrics.
func clusterInvariants(j *obs.Journal, reg *obs.Registry, delay time.Duration) error {
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if delay > 0 {
		// Handoff grants pay two shimmed hops; the window floor is 2×
		// the injected delay, the ceiling generous (wall clocks include
		// retransmissions and scheduling).
		rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
			2*delay.Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	}
	if err := rep.Err(); err != nil {
		return err
	}
	fmt.Printf("invariants ok: %d checked, 0 violated\n", len(rep.Checked))
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	n := fs.Int("n", 3, "nodes (one application process each)")
	rounds := fs.Int("rounds", 3, "critical sections per process")
	think := fs.Duration("think", 3*time.Millisecond, "mean think time between critical sections")
	cs := fs.Duration("cs", time.Millisecond, "critical-section duration")
	broadcast := fs.Bool("broadcast", false, "use the broadcast handoff variant")
	seed := fs.Int64("seed", 1998, "workload seed")
	scapegoat := fs.Int("scapegoat", 0, "initial anti-token holder")
	out := fs.String("o", "", "write the captured deposet trace here (pctl replay/detect/control consume it)")
	predOut := fs.String("pred-o", "", "write the workload's control predicate spec here")
	metrics := fs.Bool("metrics", false, "dump protocol metrics in Prometheus text format")
	timeline := fs.Int("timeline", 0, "print the last N merged journal events")
	httpAddr := fs.String("http", "", "serve live coordinator introspection (/metrics /statusz /healthz, pprof) on this address; `pctl top` reads it")
	nodeHTTP := fs.Bool("node-http", false, "also serve per-node introspection on ephemeral localhost ports (logged at startup)")
	traceOut := fs.String("trace-o", "", "write the causally-merged cluster Chrome trace here (chrome://tracing / Perfetto)")
	faults := faultFlags(fs)
	batching := batchFlags(fs)
	livePred, onDetect, maxReExecs := liveFlags(fs)
	rogueList := fs.String("rogues", "", "colon-separated ids of planted rogue nodes that enter the CS without permission (`1:2`; pair with -live-predicate to catch them)")
	relays := fs.Int("relays", 0, "shard coordinator ingest into a 2-level aggregation tree of this many relays (0 = flat, every node dials the root)")
	storeDir := fs.String("store-dir", "", "spill staged capture to an on-disk segment store here; the commit seals it into a verifiable bundle (pctl bundle)")
	var crashes crashFlag
	fs.Var(&crashes, "crash", "kill and relaunch a node, `at=30ms,node=1[,down=5ms]` (repeatable; recovery is a controlled re-execution)")
	var relayCrashes crashFlag
	fs.Var(&relayCrashes, "relay-crash", "kill and relaunch a relay, `at=30ms,node=1[,down=5ms]` (repeatable; node is the relay index; heals like a stream sever)")
	var partitions partitionFlag
	fs.Var(&partitions, "partition", "open a partition window, `start=20ms,dur=40ms,a=0:1[,b=2:3][,coord]` (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(relayCrashes.crashes) > 0 && *relays == 0 {
		return errors.New("-relay-crash needs -relays")
	}
	if fs.NArg() != 0 {
		return errors.New("cluster takes no trace-file argument: it generates its own run")
	}
	live, err := liveConfig(*livePred, *onDetect, *maxReExecs, *n)
	if err != nil {
		return err
	}
	var rogues []int
	if *rogueList != "" {
		if rogues, err = parseNodeList(*rogueList); err != nil {
			return err
		}
	}

	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	faults.Partitions = partitions.parts
	if *httpAddr != "" {
		fmt.Printf("introspection at http://%s (watch live: pctl top -coord %s)\n", *httpAddr, *httpAddr)
	}
	res, err := node.RunCluster(node.ClusterConfig{
		N: *n, Rounds: *rounds, Think: *think, CS: *cs,
		Broadcast: *broadcast, Scapegoat: *scapegoat, Seed: *seed,
		Faults: *faults, Batching: *batching, Journal: j, Reg: reg,
		Crashes:      crashes.crashes,
		Relays:       *relays,
		RelayCrashes: relayCrashes.crashes,
		StoreDir:     *storeDir,
		HTTPAddr:     *httpAddr, NodeHTTP: *nodeHTTP,
		Live: live, Rogues: rogues,
	})
	if err != nil {
		return err
	}
	requests, handoffs, ctl := 0, 0, 0
	for _, s := range res.Stats {
		requests += s.Requests
		handoffs += s.Handoffs
		ctl += s.CtlMessages
	}
	fmt.Printf("cluster: n=%d rounds=%d seed=%d broadcast=%v faults{drop=%.2f dup=%.2f delay=%v}\n",
		*n, *rounds, *seed, *broadcast, faults.Drop, faults.Dup, faults.Delay)
	fmt.Printf("run: %d CS entries, %d handoffs, %d ctl messages, %d candidates\n",
		requests, handoffs, ctl, res.Candidates)
	if *relays > 0 {
		fmt.Printf("tree: %d relays, root served %d stream conns, %d frames, %d bytes\n",
			*relays, res.RootConns, res.RootFrames, res.RootBytes)
	}
	if len(crashes.crashes) > 0 || len(partitions.parts) > 0 {
		fmt.Printf("chaos: %d crash(es) scheduled, %d restart(s) ordered, %d partition window(s)\n",
			len(crashes.crashes), res.Restarts, len(partitions.parts))
	}
	printDetections(res)
	d := res.Deposet
	fmt.Printf("captured: %d processes (%d apps + %d controllers), %d states, %d messages\n",
		d.NumProcs(), *n, *n, d.NumStates(), len(d.Messages()))
	if *storeDir != "" {
		fmt.Printf("bundle: sealed at %s (pctl bundle verify %s)\n", *storeDir, *storeDir)
	}

	if *timeline > 0 {
		fmt.Print(obs.Timeline(j, *timeline))
	}
	if *metrics {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if err := clusterInvariants(j, reg, faults.Delay); err != nil {
		return err
	}
	if *out != "" {
		if err := writeTrace(*out, d, nil); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *traceOut != "" {
		doc, err := obs.ClusterTrace(j, obs.ClusterTraceOptions{N: *n})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (merged cluster trace, %d journal events)\n", *traceOut, j.Len())
	}
	if *predOut != "" {
		f, err := os.Create(*predOut)
		if err != nil {
			return err
		}
		if err := trace.EncodeDisjunction(f, csPredicate(*n)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *predOut)
	}
	return nil
}

func cmdNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	id := fs.Int("id", 0, "node id (0..n-1), or -1 to run the coordinator")
	n := fs.Int("n", 3, "cluster size")
	addrList := fs.String("addrs", "", "comma-separated node listen addresses, one per id (required for nodes)")
	coord := fs.String("coord", "", "coordinator address (nodes) / listen address (coordinator)")
	rounds := fs.Int("rounds", 3, "critical sections")
	think := fs.Duration("think", 3*time.Millisecond, "mean think time")
	cs := fs.Duration("cs", time.Millisecond, "critical-section duration")
	broadcast := fs.Bool("broadcast", false, "use the broadcast handoff variant")
	seed := fs.Int64("seed", 1998, "workload seed")
	scapegoat := fs.Int("scapegoat", 0, "initial anti-token holder")
	out := fs.String("o", "", "coordinator: write the captured trace here")
	wait := fs.Duration("wait", 2*time.Minute, "coordinator: how long to wait for the cluster")
	rejoin := fs.Bool("rejoin", false, "node: this is the relaunch of a crashed daemon — hold execution until the coordinator's restart decision")
	rogue := fs.Bool("rogue", false, "node: enter critical sections without permission until a Detection/ReExec broadcast (plants a live-detectable violation)")
	httpAddr := fs.String("http", "", "serve live introspection (/metrics /statusz /healthz, pprof) on this address")
	faults := faultFlags(fs)
	batching := batchFlags(fs)
	livePred, onDetect, maxReExecs := liveFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return errors.New("node: -coord is required")
	}

	if *id < 0 {
		live, err := liveConfig(*livePred, *onDetect, *maxReExecs, *n)
		if err != nil {
			return err
		}
		j := obs.NewJournal(0)
		reg := obs.NewRegistry()
		c, err := node.NewCoordinator(node.CoordConfig{
			N: *n, Addr: *coord, Journal: j, Reg: reg,
			HTTPAddr: *httpAddr, Live: live,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		fmt.Printf("coordinator listening on %s for %d nodes\n", c.Addr(), *n)
		if u := c.HTTPURL(); u != "" {
			fmt.Printf("introspection at %s (pctl top -coord %s)\n", u, u)
		}
		res, err := c.Wait(*wait)
		if err != nil {
			return err
		}
		requests, handoffs := 0, 0
		for _, s := range res.Stats {
			requests += s.Requests
			handoffs += s.Handoffs
		}
		fmt.Printf("run: %d CS entries, %d handoffs, %d candidates\n", requests, handoffs, res.Candidates)
		printDetections(res)
		if err := clusterInvariants(j, reg, faults.Delay); err != nil {
			return err
		}
		if *out != "" {
			if err := writeTrace(*out, res.Deposet, nil); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	addrs := strings.Split(*addrList, ",")
	if len(addrs) != *n {
		return fmt.Errorf("node: -addrs has %d entries for n=%d", len(addrs), *n)
	}
	stats, err := node.Run(node.Config{
		ID: *id, N: *n, Addrs: addrs, Coord: *coord,
		Scapegoat: *scapegoat, Broadcast: *broadcast,
		Rounds: *rounds, Think: *think, CS: *cs,
		Seed: *seed, Faults: *faults, Batching: *batching,
		WaitRestart: *rejoin, Rogue: *rogue, HTTPAddr: *httpAddr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("node %d done: %d requests, %d handoffs, %d ctl messages\n",
		*id, stats.Requests, stats.Handoffs, stats.CtlMessages)
	return nil
}
