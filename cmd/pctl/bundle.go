package main

// bundle.go: `pctl bundle` works with sealed capture bundles — the
// self-contained directory (manifest + checksummed segments) a
// coordinator run with -store-dir leaves behind. `verify` checks the
// manifest against the segment bytes, `export` reassembles the
// final-epoch deposet into the trace JSON the offline commands consume,
// and `trace` renders the bundle's journal as a Chrome trace.

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/store"
	"predctl/internal/wire"
)

func cmdBundle(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: pctl bundle <verify|export|trace> [flags] <dir>")
	}
	switch args[0] {
	case "verify":
		return cmdBundleVerify(args[1:])
	case "export":
		return cmdBundleExport(args[1:])
	case "trace":
		return cmdBundleTrace(args[1:])
	}
	return fmt.Errorf("unknown bundle command %q (want verify, export, trace)", args[0])
}

func bundleDirArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", errors.New("expected exactly one bundle directory argument")
	}
	return fs.Arg(0), nil
}

// cmdBundleVerify re-reads every segment, checks each record's CRC and
// the per-segment totals against the manifest, and prints the summary.
// Exit status is the verification verdict, so CI can gate on it.
func cmdBundleVerify(args []string) error {
	fs := flag.NewFlagSet("bundle verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := bundleDirArg(fs)
	if err != nil {
		return err
	}
	man, err := store.Verify(dir)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	var bytes int64
	var records int
	for _, seg := range man.Segments {
		bytes += seg.Bytes
		records += seg.Records
	}
	fmt.Printf("bundle %s ok: n=%d epoch=%d, %d segment(s), %d record(s), %d bytes, checksums verified\n",
		dir, man.N, man.Epoch, len(man.Segments), records, bytes)
	return nil
}

// cmdBundleExport reassembles the bundle's final-epoch deposet and
// writes it as trace JSON — the file pctl detect/control/replay take.
func cmdBundleExport(args []string) error {
	fs := flag.NewFlagSet("bundle export", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := bundleDirArg(fs)
	if err != nil {
		return err
	}
	d, man, err := node.AssembleBundle(dir)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	if err := writeTrace(*out, d, nil); err != nil {
		return err
	}
	fmt.Printf("wrote %s (n=%d epoch=%d, %d processes, %d states)\n",
		*out, man.N, man.Epoch, d.NumProcs(), d.NumStates())
	return nil
}

// cmdBundleTrace rebuilds the run's journal from the bundle's
// final-epoch JournalEvent records and renders it as the same merged
// Chrome trace `pctl cluster -trace-o` writes live.
func cmdBundleTrace(args []string) error {
	fs := flag.NewFlagSet("bundle trace", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := bundleDirArg(fs)
	if err != nil {
		return err
	}
	j := obs.NewJournal(0)
	appendEvent := func(e wire.JournalEvent) {
		j.Append(obs.Event{
			At: e.At, Proc: int(e.Proc), Kind: obs.Kind(e.Kind), Name: e.Name,
			A: e.A, B: e.B, C: e.C, VC: e.VC,
		})
	}
	man, err := store.Verify(dir)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	if _, err := store.ReplayBundle(dir, func(rec wire.SegmentRecord, _ uint64, m wire.Msg) error {
		if rec.Epoch != man.Epoch {
			return nil // voided by a controlled re-execution
		}
		switch v := m.(type) {
		case wire.JournalEvent:
			appendEvent(v)
		case wire.JournalBatch:
			for _, e := range v.Events {
				appendEvent(e)
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	doc, err := obs.ClusterTrace(j, obs.ClusterTraceOptions{N: man.N})
	if err != nil {
		return err
	}
	if *out == "" {
		_, err := os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (merged cluster trace, %d journal events)\n", *out, j.Len())
	return nil
}
