// Command pctl is the predicate-control workbench: inspect traced
// computations, detect global predicate violations, synthesize off-line
// controllers, and verify controlled replays.
//
// Usage:
//
//	pctl gen     -n 3 -events 24 -seed 7 -o trace.json
//	pctl info    trace.json
//	pctl detect  -pred pred.json trace.json
//	pctl control -pred pred.json -o controlled.json trace.json
//	pctl replay  -pred pred.json [-seed 3] controlled.json
//	pctl sgsd    -pred pred.json trace.json
//	pctl reduce  trace.json
//	pctl trace   -n 3 -rounds 4 -o run-chrome.json
//	pctl cluster -n 5 -drop 0.2 -delay 2ms -o run.json -pred-o pred.json
//	pctl cluster -n 32 -http 127.0.0.1:7070 -trace-o cluster-chrome.json
//	pctl cluster -n 3 -rogues 1 -live-predicate cs -on-detect reexec
//	pctl cluster -n 64 -relays 4 -store-dir run-bundle
//	pctl node    -id 0 -n 3 -addrs :7001,:7002,:7003 -coord host:7000
//	pctl top     -coord 127.0.0.1:7070 -interval 1s
//	pctl bundle  verify run-bundle
//	pctl bundle  export -o trace.json run-bundle
//
// Trace files are the JSON format of predctl's trace package; predicate
// files describe B = l1 ∨ … ∨ ln over state variables:
//
//	{"locals": [{"p":0,"var":"avail","op":"eq","value":1},
//	            {"p":1,"var":"avail","op":"eq","value":1}]}
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/kmutex"
	"predctl/internal/obs"
	"predctl/internal/offline"
	"predctl/internal/predicate"
	"predctl/internal/reduce"
	"predctl/internal/replay"
	"predctl/internal/sim"
	"predctl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: pctl <gen|info|detect|control|replay|sgsd|reduce|trace|cluster|node|top|bundle> [flags] [trace.json]")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "detect":
		return cmdDetect(args[1:])
	case "control":
		return cmdControl(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "sgsd":
		return cmdSGSD(args[1:])
	case "reduce":
		return cmdReduce(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "node":
		return cmdNode(args[1:])
	case "top":
		return cmdTop(args[1:])
	case "bundle":
		return cmdBundle(args[1:])
	}
	return fmt.Errorf("unknown command %q", args[0])
}

func loadTrace(path string) (*deposet.Deposet, control.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return trace.Decode(f)
}

func loadPredicate(path string, n int) (*predicate.Disjunction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := trace.DecodeDisjunction(f)
	if err != nil {
		return nil, err
	}
	return spec.Compile(n)
}

func writeTrace(path string, d *deposet.Deposet, rel control.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Encode(f, d, rel)
}

func traceArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", errors.New("expected exactly one trace file argument")
	}
	return fs.Arg(0), nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	n := fs.Int("n", 3, "processes")
	events := fs.Int("events", 24, "total events")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "trace.json", "output file")
	varDensity := fs.Float64("density", 0.6, "probability a state has ok=1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(*seed))
	d := deposet.Random(r, deposet.DefaultGen(*n, *events))
	// Attach a boolean variable "ok" so generated traces are usable with
	// variable-based predicates out of the box.
	truth := deposet.RandomTruth(r, d, *varDensity)
	raw := d.Raw()
	raw.Vars = make([][]map[string]int, *n)
	for p := range raw.Vars {
		raw.Vars[p] = make([]map[string]int, d.Len(p))
		for k := range raw.Vars[p] {
			v := 0
			if truth[p][k] {
				v = 1
			}
			raw.Vars[p][k] = map[string]int{"ok": v}
		}
	}
	d2, err := deposet.FromRaw(raw)
	if err != nil {
		return err
	}
	if err := writeTrace(*out, d2, nil); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d processes, %d states, %d messages\n",
		*out, d2.NumProcs(), d2.NumStates(), len(d2.Messages()))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	lattice := fs.Bool("lattice", false, "count consistent global states (exponential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, rel, err := loadTrace(path)
	if err != nil {
		return err
	}
	fmt.Printf("processes:  %d\n", d.NumProcs())
	for p := 0; p < d.NumProcs(); p++ {
		fmt.Printf("  P%-3d %d states\n", p, d.Len(p))
	}
	received := 0
	for _, m := range d.Messages() {
		if m.Received() {
			received++
		}
	}
	fmt.Printf("messages:   %d (%d received, %d in flight)\n",
		len(d.Messages()), received, len(d.Messages())-received)
	fmt.Printf("variables:  %v\n", d.HasVars())
	if rel != nil {
		fmt.Printf("control:    %d edges\n", len(rel))
		for _, e := range rel {
			fmt.Printf("  %v\n", e)
		}
	}
	if *lattice {
		fmt.Printf("lattice:    %d consistent global states\n", d.CountConsistentCuts())
	}
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	predPath := fs.String("pred", "", "predicate file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, _, err := loadTrace(path)
	if err != nil {
		return err
	}
	dj, err := loadPredicate(*predPath, d.NumProcs())
	if err != nil {
		return err
	}
	bug := dj.Negate()
	fmt.Printf("predicate B: %s\n", dj)
	if cut, ok := detect.PossiblyConjunctive(d, bug); ok {
		fmt.Printf("possibly(¬B):   yes — e.g. at %v\n", cut)
	} else {
		fmt.Println("possibly(¬B):   no — the trace satisfies B everywhere")
	}
	if ivs, ok := detect.DefinitelyConjunctive(d, bug); ok {
		fmt.Printf("definitely(¬B): yes — every interleaving hits the bug; witness %v\n", ivs)
		fmt.Println("                (B is infeasible: no controller exists)")
	} else {
		fmt.Println("definitely(¬B): no — a controller can avoid the bug")
	}
	return nil
}

func cmdControl(args []string) error {
	fs := flag.NewFlagSet("control", flag.ContinueOnError)
	predPath := fs.String("pred", "", "predicate file (required)")
	out := fs.String("o", "", "write trace + control relation here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, _, err := loadTrace(path)
	if err != nil {
		return err
	}
	dj, err := loadPredicate(*predPath, d.NumProcs())
	if err != nil {
		return err
	}
	res, err := offline.Control(d, dj, offline.Options{})
	if errors.Is(err, offline.ErrInfeasible) {
		fmt.Println("no controller exists: the predicate is infeasible for this trace")
		fmt.Printf("overlapping false-intervals: %v\n", res.Witness)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("controller found: %d control messages (%d handoffs)\n",
		len(res.Relation), res.Iterations)
	for _, e := range res.Relation {
		fmt.Printf("  %v\n", e)
	}
	if *out != "" {
		if err := writeTrace(*out, d, res.Relation); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	predPath := fs.String("pred", "", "predicate file to verify (optional)")
	seed := fs.Int64("seed", 0, "delay randomization seed")
	maxDelay := fs.Int64("maxdelay", 10, "uniform delay upper bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, rel, err := loadTrace(path)
	if err != nil {
		return err
	}
	res, err := replay.Run(d, rel, replay.Config{
		Seed:  *seed,
		Delay: sim.UniformDelay(1, sim.Time(*maxDelay)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed: %d events, %d messages, finished at t=%d\n",
		res.Trace.Stats.Events, res.Trace.Stats.Messages, res.Trace.Stats.End)
	if *predPath != "" {
		dj, err := loadPredicate(*predPath, d.NumProcs())
		if err != nil {
			return err
		}
		if cut, ok := replay.VerifyDisjunction(res, d, dj); !ok {
			fmt.Printf("VERIFY FAILED: B violated at replayed cut %v\n", cut)
		} else {
			fmt.Println("verified: every consistent cut of the replay satisfies B")
		}
	}
	return nil
}

func cmdSGSD(args []string) error {
	fs := flag.NewFlagSet("sgsd", flag.ContinueOnError)
	predPath := fs.String("pred", "", "predicate file (required)")
	simultaneous := fs.Bool("simultaneous", false, "allow simultaneous advances (paper semantics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, _, err := loadTrace(path)
	if err != nil {
		return err
	}
	dj, err := loadPredicate(*predPath, d.NumProcs())
	if err != nil {
		return err
	}
	seq, stats, err := detect.SGSDWithStats(d, dj.Expr(), *simultaneous)
	if err != nil {
		return err
	}
	fmt.Printf("explored %d cuts (%d discovered)\n", stats.NodesExplored, stats.NodesQueued)
	if seq == nil {
		fmt.Println("no satisfying global sequence exists")
		return nil
	}
	fmt.Printf("satisfying global sequence (%d steps):\n", len(seq))
	for _, g := range seq {
		fmt.Printf("  %v\n", g)
	}
	return nil
}

// cmdTrace runs a fixed-seed instrumented (n−1)-mutex workload under the
// on-line anti-token controller and exports its observability artifacts:
// a human-readable timeline, Chrome trace_event JSON for
// chrome://tracing / Perfetto, a Prometheus metrics dump, and the
// paper-bound invariant checks (response window, single scapegoat
// chain).
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	n := fs.Int("n", 3, "processes")
	rounds := fs.Int("rounds", 4, "critical sections per process")
	seed := fs.Int64("seed", 1998, "workload seed")
	broadcast := fs.Bool("broadcast", false, "use the broadcast handoff variant")
	out := fs.String("o", "", "write Chrome trace_event JSON here (load in chrome://tracing or Perfetto)")
	timeline := fs.Int("timeline", 30, "print the last N journal events (0 disables)")
	metrics := fs.Bool("metrics", false, "dump protocol metrics in Prometheus text format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return errors.New("trace takes no trace-file argument: it generates its own run")
	}

	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	w := kmutex.Workload{
		N: *n, Rounds: *rounds, ThinkMax: 200, CS: 20, Delay: 5,
		Seed: *seed, Journal: j, Reg: reg,
	}
	_, m, err := kmutex.RunScapegoat(w, *broadcast)
	if err != nil {
		return err
	}
	fmt.Printf("run: n=%d rounds=%d seed=%d broadcast=%v — %d CS entries, %d ctl messages, end t=%d\n",
		*n, *rounds, *seed, *broadcast, m.Entries, m.CtlMessages, m.End)
	fmt.Printf("journal: %d events (%d dropped)\n", j.Len(), j.Dropped())

	if *timeline > 0 {
		fmt.Print(obs.Timeline(j, *timeline))
	}
	if *metrics {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if *out != "" {
		names := make([]string, 2*(*n))
		for i := 0; i < *n; i++ {
			names[i] = fmt.Sprintf("app%d", i)
			names[*n+i] = fmt.Sprintf("ctl%d", i)
		}
		doc, err := obs.ChromeTrace(j, obs.ChromeTraceOptions{ProcNames: names})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d trace events)\n", *out, j.Len())
	}

	proto := "scapegoat"
	if *broadcast {
		proto = "scapegoat-broadcast"
	}
	var rep obs.Report
	rep.CheckResponses(reg.Histogram("predctl_response_vtime", obs.L("proto", proto)),
		int64(w.Delay), int64(w.CS), j)
	rep.CheckScapegoatChain(j)
	if err := rep.Err(); err != nil {
		return err
	}
	fmt.Printf("invariants ok: %d checked, 0 violated\n", len(rep.Checked))
	return nil
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	d, _, err := loadTrace(path)
	if err != nil {
		return err
	}
	rep := reduce.Analyze(d)
	fmt.Printf("receives: %d, racing: %d (%.0f%% of bindings must be traced)\n",
		rep.Receives, len(rep.Races), 100*rep.RacingFraction())
	for _, r := range rep.Races {
		fmt.Printf("  receive %v took message %d; alternatives %v\n", r.Recv, r.Msg, r.Alternatives)
	}
	return nil
}
