package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run the CLI with stdout captured.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	cmdErr := run(args)
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	return string(out), cmdErr
}

func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	pred := filepath.Join(dir, "p.json")
	ctl := filepath.Join(dir, "c.json")
	if err := os.WriteFile(pred, []byte(`{"locals":[
		{"p":0,"var":"ok","op":"eq","value":1},
		{"p":1,"var":"ok","op":"eq","value":1},
		{"p":2,"var":"ok","op":"eq","value":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCLI(t, "gen", "-n", "3", "-events", "20", "-seed", "5", "-o", trace)
	if err != nil || !strings.Contains(out, "3 processes") {
		t.Fatalf("gen: %v\n%s", err, out)
	}

	out, err = runCLI(t, "info", "-lattice", trace)
	if err != nil || !strings.Contains(out, "lattice:") {
		t.Fatalf("info: %v\n%s", err, out)
	}

	out, err = runCLI(t, "detect", "-pred", pred, trace)
	if err != nil || !strings.Contains(out, "possibly(¬B)") {
		t.Fatalf("detect: %v\n%s", err, out)
	}

	out, err = runCLI(t, "control", "-pred", pred, "-o", ctl, trace)
	if err != nil {
		t.Fatalf("control: %v\n%s", err, out)
	}
	if !strings.Contains(out, "controller found") && !strings.Contains(out, "no controller") {
		t.Fatalf("control output unexpected:\n%s", out)
	}
	if _, statErr := os.Stat(ctl); statErr != nil {
		// Infeasible instance writes nothing; regenerate with a denser
		// predicate to ensure feasibility for the replay leg.
		t.Skipf("instance infeasible for this seed; control output: %s", out)
	}

	out, err = runCLI(t, "replay", "-pred", pred, "-seed", "3", ctl)
	if err != nil || !strings.Contains(out, "replayed:") {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "verified") {
		t.Fatalf("replay did not verify:\n%s", out)
	}

	out, err = runCLI(t, "sgsd", "-pred", pred, trace)
	if err != nil || !strings.Contains(out, "explored") {
		t.Fatalf("sgsd: %v\n%s", err, out)
	}
}

// TestCLIDispatch proves every advertised subcommand name reaches its
// flag set: `-h` must come back as flag.ErrHelp (the subcommand parsed
// it), never as "unknown command". Keep the list in sync with run()
// and the usage block.
func TestCLIDispatch(t *testing.T) {
	subcommands := []string{
		"gen", "info", "detect", "control", "replay", "sgsd", "reduce",
		"trace", "cluster", "node",
		"bundle verify", "bundle export", "bundle trace",
	}
	for _, name := range subcommands {
		args := append(strings.Fields(name), "-h")
		if _, err := runCLI(t, args...); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s -h: got %v, want flag.ErrHelp (subcommand not dispatched?)", name, err)
		}
	}
}

// TestCLICluster runs the networked anti-token workload end to end over
// localhost TCP with seeded fault injection, then feeds the captured
// trace back through `pctl replay` — the loop the trace capture exists
// for.
func TestCLICluster(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "cluster.json")
	predFile := filepath.Join(dir, "pred.json")

	out, err := runCLI(t, "cluster", "-n", "3", "-rounds", "2",
		"-think", "2ms", "-cs", "1ms",
		"-drop", "0.2", "-dup", "0.1", "-delay", "2ms", "-jitter", "1ms", "-fault-seed", "7",
		"-o", traceFile, "-pred-o", predFile)
	if err != nil {
		t.Fatalf("cluster: %v\n%s", err, out)
	}
	if !strings.Contains(out, "invariants ok") {
		t.Fatalf("cluster did not report invariants:\n%s", out)
	}

	out, err = runCLI(t, "replay", "-pred", predFile, "-seed", "3", traceFile)
	if err != nil || !strings.Contains(out, "verified") {
		t.Fatalf("replay of captured cluster trace: %v\n%s", err, out)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"info", "/does/not/exist.json"}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"info"}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"detect", "-pred", "/nope.json", "/also/nope.json"}); err == nil {
		t.Error("missing files accepted")
	}
}

// TestCLIBundle drives the tree-and-store path end to end: a cluster
// run through relays with capture spilled to disk, then the sealed
// bundle verified, exported back to trace JSON, rendered as a Chrome
// trace, and fed through `pctl detect` — the offline loop working from
// disk instead of the live capture.
func TestCLIBundle(t *testing.T) {
	dir := t.TempDir()
	bundleDir := filepath.Join(dir, "bundle")
	traceFile := filepath.Join(dir, "exported.json")
	predFile := filepath.Join(dir, "pred.json")

	out, err := runCLI(t, "cluster", "-n", "4", "-rounds", "2",
		"-think", "1ms", "-cs", "500us",
		"-relays", "2", "-store-dir", bundleDir, "-pred-o", predFile)
	if err != nil {
		t.Fatalf("cluster -relays -store-dir: %v\n%s", err, out)
	}
	if !strings.Contains(out, "tree: 2 relays") || !strings.Contains(out, "bundle: sealed") {
		t.Fatalf("cluster did not report the tree/bundle:\n%s", out)
	}

	out, err = runCLI(t, "bundle", "verify", bundleDir)
	if err != nil || !strings.Contains(out, "checksums verified") {
		t.Fatalf("bundle verify: %v\n%s", err, out)
	}
	out, err = runCLI(t, "bundle", "export", "-o", traceFile, bundleDir)
	if err != nil || !strings.Contains(out, "wrote") {
		t.Fatalf("bundle export: %v\n%s", err, out)
	}
	out, err = runCLI(t, "bundle", "trace", bundleDir)
	if err != nil || !strings.Contains(out, "traceEvents") {
		t.Fatalf("bundle trace: %v\n%s", err, out)
	}
	out, err = runCLI(t, "detect", "-pred", predFile, traceFile)
	if err != nil {
		t.Fatalf("detect on exported bundle trace: %v\n%s", err, out)
	}

	// A flipped byte in a segment must fail verification loudly.
	segs, err := filepath.Glob(filepath.Join(bundleDir, "seg-*.pcseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in bundle: %v", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "bundle", "verify", bundleDir); err == nil {
		t.Fatal("bundle verify accepted a corrupted segment")
	}
}

func TestCLIReduce(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	if _, err := runCLI(t, "gen", "-n", "3", "-events", "30", "-seed", "2", "-o", trace); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "reduce", trace)
	if err != nil || !strings.Contains(out, "racing:") {
		t.Fatalf("reduce: %v\n%s", err, out)
	}
}
