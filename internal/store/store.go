// Package store is the coordinator's segmented on-disk trace store:
// staged capture frames appended to checksummed, size-rotated segment
// files with an in-memory index of live offsets, so a million-event run
// never holds its deposet in RAM. The unit of storage is one capture
// frame body (the same version|kind|seq|payload bytes the wire carried)
// wrapped in a wire.SegmentRecord tagging origin and epoch — replay is
// the very decode path live ingest uses, so a trace assembled from disk
// is byte-identical to one assembled from the in-RAM staging.
//
// Segment file layout:
//
//	[8-byte magic "PCSEG1\x00\x00"]
//	record*: [u32 big-endian length][u32 big-endian CRC-32 (IEEE) of body][body]
//	body = wire frame body of a SegmentRecord
//
// Epoch discards (§8 controlled re-execution voiding a partial
// execution) drop index entries, not bytes: dead records stay in their
// segments until the run ends, which keeps the write path append-only.
// Seal writes a MANIFEST.json over the segments — name, size, CRC —
// turning the directory into a self-contained capture bundle that
// `pctl bundle verify` can check and `pctl bundle trace` can reassemble
// air-gapped.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// magic opens every segment file; a file without it is not a segment.
var magic = []byte("PCSEG1\x00\x00")

// ManifestName is the bundle manifest's file name.
const ManifestName = "MANIFEST.json"

// DefaultSegmentBytes is the rotation threshold when Config leaves it 0.
const DefaultSegmentBytes = 4 << 20

// recordOverhead is the per-record framing cost (length + checksum).
const recordOverhead = 8

// Config configures a Store.
type Config struct {
	// Dir is the segment directory; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it grows past this
	// size (DefaultSegmentBytes when 0).
	SegmentBytes int64
	// Reg, when non-nil, receives the predctl_store_segment_bytes and
	// predctl_store_segments_total gauges.
	Reg          *obs.Registry
	MetricLabels []obs.Label
}

// recRef locates one live record: segment ordinal, body offset, body
// length.
type recRef struct {
	seg int
	off int64
	n   int32
}

// segment is one on-disk segment file's write-side state.
type segment struct {
	name    string
	f       *os.File
	w       *bufio.Writer
	size    int64
	records int
}

// Store is a segmented append-only record log with a per-origin index
// of live records. Safe for concurrent use.
type Store struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	segs     []*segment
	cur      *segment
	index    map[int32][]recRef
	recSeq   uint64 // monotonic record counter (the SegmentRecord frame seq)
	sealed   bool
	appended int64 // total record bodies appended, bytes

	gBytes *obs.Gauge
	gSegs  *obs.Gauge
}

// Open creates (or reuses) the segment directory and starts the first
// segment.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segBytes := cfg.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	s := &Store{
		dir:      cfg.Dir,
		segBytes: segBytes,
		index:    map[int32][]recRef{},
	}
	if cfg.Reg != nil {
		s.gBytes = cfg.Reg.Gauge("predctl_store_segment_bytes", cfg.MetricLabels...)
		s.gSegs = cfg.Reg.Gauge("predctl_store_segments_total", cfg.MetricLabels...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

func segName(i int) string { return fmt.Sprintf("seg-%06d.pcseg", i) }

// rotateLocked closes the active segment (if any) and opens the next.
func (s *Store) rotateLocked() error {
	if s.cur != nil {
		if err := s.cur.w.Flush(); err != nil {
			return fmt.Errorf("store: flush %s: %w", s.cur.name, err)
		}
	}
	name := segName(len(s.segs))
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{name: name, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	if _, err := seg.w.Write(magic); err != nil {
		f.Close()
		return fmt.Errorf("store: %s: %w", name, err)
	}
	seg.size = int64(len(magic))
	s.segs = append(s.segs, seg)
	s.cur = seg
	if s.gSegs != nil {
		s.gSegs.Set(int64(len(s.segs)))
	}
	return nil
}

// Append spills one capture frame body for origin at epoch. The body is
// wrapped in a wire.SegmentRecord, checksummed, appended to the active
// segment and indexed as live.
func (s *Store) Append(origin int32, epoch uint32, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return fmt.Errorf("store: append after seal")
	}
	s.recSeq++
	rec := wire.AppendBody(nil, s.recSeq, wire.SegmentRecord{Origin: origin, Epoch: epoch, Body: body})
	var hdr [recordOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
	seg := s.cur
	if _, err := seg.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: %s: %w", seg.name, err)
	}
	if _, err := seg.w.Write(rec); err != nil {
		return fmt.Errorf("store: %s: %w", seg.name, err)
	}
	s.index[origin] = append(s.index[origin], recRef{
		seg: len(s.segs) - 1, off: seg.size + recordOverhead, n: int32(len(rec)),
	})
	seg.size += recordOverhead + int64(len(rec))
	seg.records++
	s.appended += int64(len(rec))
	if s.gBytes != nil {
		s.gBytes.Set(s.totalBytesLocked())
	}
	if seg.size >= s.segBytes {
		return s.rotateLocked()
	}
	return nil
}

func (s *Store) totalBytesLocked() int64 {
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	return total
}

// Discard drops every live record for origin from the index — the
// store-side twin of the coordinator's epoch discard (an EpochMark
// voided the origin's staged capture) and of a relaunched node's
// session reset. Bytes stay on disk; only the index forgets them.
func (s *Store) Discard(origin int32) {
	s.mu.Lock()
	delete(s.index, origin)
	s.mu.Unlock()
}

// Origins returns the origins with live records, ascending.
func (s *Store) Origins() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int32, 0, len(s.index))
	for o := range s.index {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports segment count and total on-disk bytes.
func (s *Store) Stats() (segments int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs), s.totalBytesLocked()
}

// Replay streams origin's live records, in append order, decoded back
// into wire messages. Each record's checksum is verified before decode;
// a mismatch aborts with a corruption error naming the segment and
// offset rather than yielding a garbled frame.
func (s *Store) Replay(origin int32, fn func(seq uint64, m wire.Msg) error) error {
	s.mu.Lock()
	refs := append([]recRef(nil), s.index[origin]...)
	names := make([]string, len(s.segs))
	for i, seg := range s.segs {
		names[i] = seg.name
		if s.sealed {
			continue // writers already flushed and closed
		}
		if err := seg.w.Flush(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("store: flush %s: %w", seg.name, err)
		}
	}
	s.mu.Unlock()

	files := map[int]*os.File{}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, ref := range refs {
		f := files[ref.seg]
		if f == nil {
			var err error
			f, err = os.Open(filepath.Join(s.dir, names[ref.seg]))
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			files[ref.seg] = f
		}
		rec := make([]byte, ref.n)
		if _, err := f.ReadAt(rec, ref.off); err != nil {
			return fmt.Errorf("store: %s@%d: %w", names[ref.seg], ref.off, err)
		}
		var hdr [recordOverhead]byte
		if _, err := f.ReadAt(hdr[:], ref.off-recordOverhead); err != nil {
			return fmt.Errorf("store: %s@%d: %w", names[ref.seg], ref.off, err)
		}
		if got, want := crc32.ChecksumIEEE(rec), binary.BigEndian.Uint32(hdr[4:8]); got != want {
			return fmt.Errorf("store: %s@%d: checksum mismatch (got %08x, want %08x): segment corrupt",
				names[ref.seg], ref.off, got, want)
		}
		_, m, err := wire.DecodeBody(rec)
		if err != nil {
			return fmt.Errorf("store: %s@%d: %w", names[ref.seg], ref.off, err)
		}
		sr, ok := m.(wire.SegmentRecord)
		if !ok {
			return fmt.Errorf("store: %s@%d: record is %T, want SegmentRecord", names[ref.seg], ref.off, m)
		}
		seq, inner, err := wire.DecodeBody(sr.Body)
		if err != nil {
			return fmt.Errorf("store: %s@%d: inner frame: %w", names[ref.seg], ref.off, err)
		}
		if err := fn(seq, inner); err != nil {
			return err
		}
	}
	return nil
}

// Manifest is the bundle's index document: the segments that make up
// one sealed capture, each pinned by size and checksum.
type Manifest struct {
	Schema   int           `json:"schema"`
	N        int           `json:"n"`
	Epoch    uint32        `json:"epoch"`
	Segments []SegmentMeta `json:"segments"`
}

// SegmentMeta pins one segment file in the manifest.
type SegmentMeta struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	CRC32   uint32 `json:"crc32"` // IEEE, whole file
	Records int    `json:"records"`
}

// Seal flushes and closes every segment and writes the bundle manifest:
// the directory is now a self-contained, verifiable capture bundle.
// Further appends fail.
func (s *Store) Seal(n int, epoch uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	s.sealed = true
	man := Manifest{Schema: 1, N: n, Epoch: epoch}
	for _, seg := range s.segs {
		if err := seg.w.Flush(); err != nil {
			return fmt.Errorf("store: seal %s: %w", seg.name, err)
		}
		if err := seg.f.Close(); err != nil {
			return fmt.Errorf("store: seal %s: %w", seg.name, err)
		}
		crc, err := fileCRC(filepath.Join(s.dir, seg.name))
		if err != nil {
			return err
		}
		man.Segments = append(man.Segments, SegmentMeta{
			Name: seg.name, Bytes: seg.size, CRC32: crc, Records: seg.records,
		})
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.dir, ManifestName), append(buf, '\n'), 0o644)
}

// Close flushes and closes the segments without sealing (no manifest):
// the abort path. Idempotent with Seal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	s.sealed = true
	for _, seg := range s.segs {
		seg.w.Flush()
		seg.f.Close()
	}
	return nil
}

func fileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("store: %s: %w", path, err)
	}
	return h.Sum32(), nil
}

// Verify checks a sealed bundle: the manifest parses, every listed
// segment exists with the recorded size and whole-file checksum, and
// every record inside checksums and decodes. It returns the manifest on
// success.
func Verify(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: bundle: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("store: bundle manifest: %w", err)
	}
	if man.Schema != 1 {
		return nil, fmt.Errorf("store: bundle manifest schema %d unsupported", man.Schema)
	}
	for _, sm := range man.Segments {
		path := filepath.Join(dir, sm.Name)
		fi, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("store: bundle: %w", err)
		}
		if fi.Size() != sm.Bytes {
			return nil, fmt.Errorf("store: bundle: %s is %d bytes, manifest says %d",
				sm.Name, fi.Size(), sm.Bytes)
		}
		crc, err := fileCRC(path)
		if err != nil {
			return nil, err
		}
		if crc != sm.CRC32 {
			return nil, fmt.Errorf("store: bundle: %s checksum %08x, manifest says %08x: segment corrupt",
				sm.Name, crc, sm.CRC32)
		}
		records := 0
		err = replaySegment(path, func(wire.SegmentRecord, uint64, wire.Msg) error {
			records++
			return nil
		})
		if err != nil {
			return nil, err
		}
		if records != sm.Records {
			return nil, fmt.Errorf("store: bundle: %s holds %d records, manifest says %d",
				sm.Name, records, sm.Records)
		}
	}
	return &man, nil
}

// ReplayBundle streams every record of a sealed bundle, segment by
// segment in manifest order, with each record's checksum verified. Note
// this yields all records, including ones a live run's epoch discards
// had dropped from the index — callers filter by SegmentRecord.Epoch
// (the manifest's Epoch is the final one).
func ReplayBundle(dir string, fn func(rec wire.SegmentRecord, seq uint64, m wire.Msg) error) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: bundle: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("store: bundle manifest: %w", err)
	}
	for _, sm := range man.Segments {
		if err := replaySegment(filepath.Join(dir, sm.Name), fn); err != nil {
			return nil, err
		}
	}
	return &man, nil
}

// replaySegment scans one segment file sequentially, verifying and
// decoding every record.
func replaySegment(path string, fn func(rec wire.SegmentRecord, seq uint64, m wire.Msg) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil || string(got) != string(magic) {
		return fmt.Errorf("store: %s: not a segment file", path)
	}
	off := int64(len(magic))
	for {
		var hdr [recordOverhead]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: %s@%d: %w", path, off, err)
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n > wire.MaxFrame+64 {
			return fmt.Errorf("store: %s@%d: record length %d exceeds frame limit", path, off, n)
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(br, rec); err != nil {
			return fmt.Errorf("store: %s@%d: %w", path, off, err)
		}
		if got, want := crc32.ChecksumIEEE(rec), binary.BigEndian.Uint32(hdr[4:8]); got != want {
			return fmt.Errorf("store: %s@%d: checksum mismatch (got %08x, want %08x): segment corrupt",
				path, off, got, want)
		}
		seqRec, m, err := wire.DecodeBody(rec)
		if err != nil {
			return fmt.Errorf("store: %s@%d: %w", path, off, err)
		}
		sr, ok := m.(wire.SegmentRecord)
		if !ok {
			return fmt.Errorf("store: %s@%d: record is %T, want SegmentRecord", path, off, m)
		}
		seq, inner, err := wire.DecodeBody(sr.Body)
		if err != nil {
			return fmt.Errorf("store: %s@%d: inner frame: %w", path, off, err)
		}
		_ = seqRec
		if err := fn(sr, seq, inner); err != nil {
			return err
		}
		off += recordOverhead + int64(n)
	}
}
