package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"predctl/internal/wire"
)

func body(t *testing.T, seq uint64, m wire.Msg) []byte {
	t.Helper()
	return wire.AppendBody(nil, seq, m)
}

func TestAppendReplayRoundTrip(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := []wire.Msg{
		wire.TraceOpBatch{Ops: []wire.TraceOp{{Op: wire.TraceStep, Proc: 0}, {Op: wire.TraceSend, Proc: 0, MsgID: 7}}},
		wire.JournalEvent{At: 5, Proc: 0, Kind: 6, Name: "cs", A: 1},
		wire.TraceOpBatch{Ops: []wire.TraceOp{{Op: wire.TraceRecv, Proc: 4, MsgID: 7}}},
	}
	for i, m := range want {
		if err := s.Append(0, 0, body(t, uint64(i+1), m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(3, 1, body(t, 1, wire.JournalEvent{At: 9, Proc: 3, Kind: 1})); err != nil {
		t.Fatal(err)
	}
	var got []wire.Msg
	var seqs []uint64
	err = s.Replay(0, func(seq uint64, m wire.Msg) error {
		got = append(got, m)
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %#v, want %#v", got, want)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("inner seqs %v, want [1 2 3]", seqs)
	}
	if origins := s.Origins(); !reflect.DeepEqual(origins, []int32{0, 3}) {
		t.Fatalf("origins %v, want [0 3]", origins)
	}
}

func TestDiscardDropsLiveRecords(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 0, body(t, 1, wire.JournalEvent{At: 1, Proc: 1})); err != nil {
		t.Fatal(err)
	}
	s.Discard(1)
	if err := s.Append(1, 1, body(t, 1, wire.JournalEvent{At: 2, Proc: 1})); err != nil {
		t.Fatal(err)
	}
	var got []wire.Msg
	if err := s.Replay(1, func(_ uint64, m wire.Msg) error { got = append(got, m); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].(wire.JournalEvent).At != 2 {
		t.Fatalf("after discard, replay yields %#v; want only the post-discard record", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Append(0, 0, body(t, uint64(i+1), wire.JournalEvent{At: int64(i), Proc: 0, Name: "rotate-me"})); err != nil {
			t.Fatal(err)
		}
	}
	segs, bytes := s.Stats()
	if segs < 2 {
		t.Fatalf("expected rotation past 256 bytes, got %d segments (%d bytes)", segs, bytes)
	}
	n := 0
	if err := s.Replay(0, func(uint64, wire.Msg) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("replayed %d records across segments, want 50", n)
	}
}

func sealSample(t *testing.T) (string, *Store) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Append(int32(i%3), 0, body(t, uint64(i+1), wire.JournalEvent{At: int64(i), Proc: int32(i % 3), Name: "seal"})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(3, 0); err != nil {
		t.Fatal(err)
	}
	return dir, s
}

func TestSealVerifyBundle(t *testing.T) {
	dir, s := sealSample(t)
	man, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.N != 3 || len(man.Segments) == 0 {
		t.Fatalf("manifest %+v", man)
	}
	if err := s.Append(0, 0, body(t, 99, wire.JournalEvent{})); err == nil {
		t.Fatal("append after seal must fail")
	}
	n := 0
	if _, err := ReplayBundle(dir, func(rec wire.SegmentRecord, _ uint64, _ wire.Msg) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("bundle replay yields %d records, want 40", n)
	}
}

// A single flipped byte inside a segment must surface as a checksum
// rejection with a clear error — never as a silently garbled deposet.
func TestCorruptionRejected(t *testing.T) {
	dir, _ := sealSample(t)
	man, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, man.Segments[0].Name)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify accepted a corrupted segment")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption error should name the cause, got: %v", err)
	}
	_, err = ReplayBundle(dir, func(wire.SegmentRecord, uint64, wire.Msg) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("bundle replay must reject the flipped byte, got: %v", err)
	}
}

func TestVerifyMissingSegment(t *testing.T) {
	dir, _ := sealSample(t)
	man, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, man.Segments[0].Name)); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify accepted a bundle with a missing segment")
	}
}
