package detect

import (
	"predctl/internal/deposet"
	"predctl/internal/predicate"
	"predctl/internal/slice"
)

// This file is the slicing dispatch layer: detection entry points taking
// a general predicate.Expr first try to factor it (or its negation) into
// the regular fragment (predicate.RegularTable) and run on the
// computation slice — polynomial in the trace — keeping the exhaustive
// lattice walk as the fallback for non-regular predicates and as the
// cross-validation oracle (the *Exhaustive variants).

// EnumStats reports how a violation enumeration ran: whether the regular
// fragment admitted slicing, and how much of the cut space was touched.
type EnumStats struct {
	// Sliced is true when the predicate (negated, for violation queries)
	// was in the regular fragment and detection ran on the slice.
	Sliced bool
	// MetaEvents is the number of join-irreducible meta-events of the
	// slice (0 on the exhaustive path).
	MetaEvents int
	// StatesExplored counts the consistent cuts the enumeration visited:
	// the slice's cuts — all of which are answers — on the sliced path,
	// the entire lattice on the exhaustive path.
	StatesExplored int
}

// violationSlice factors ¬b and computes its slice: the slice's cuts are
// exactly the violations of b.
func violationSlice(d *deposet.Deposet, b predicate.Expr) (*slice.Slice, bool) {
	tab, ok := predicate.RegularTable(predicate.Not(b), d)
	if !ok {
		return nil, false
	}
	return slice.Compute(d, tab), true
}

// AllViolationsWithStats is AllViolationsPar, also reporting whether the
// enumeration ran on the slice and how many states it explored.
func AllViolationsWithStats(d *deposet.Deposet, b predicate.Expr, opts Par) ([]deposet.Cut, EnumStats) {
	if sl, ok := violationSlice(d, b); ok {
		cuts := sl.Cuts(opts.resolve(d.NumStates()))
		return cuts, EnumStats{Sliced: true, MetaEvents: sl.Stats().MetaEvents, StatesExplored: len(cuts)}
	}
	var stats EnumStats
	b = predicate.Compile(b, d)
	var out []deposet.Cut
	workers := opts.resolve(d.NumStates())
	if workers == 1 {
		d.ForEachConsistentCut(func(g deposet.Cut) bool {
			stats.StatesExplored++
			if !b.Eval(d, g) {
				out = append(out, g.Clone())
			}
			return true
		})
		return out, stats
	}
	out = allViolationsLevelSync(d, b, opts, &stats)
	return out, stats
}

// AllViolationsExhaustive enumerates the full lattice regardless of the
// predicate's fragment — the cross-validation oracle for the sliced path
// (and the only route for non-regular predicates). BFS discovery order.
func AllViolationsExhaustive(d *deposet.Deposet, b predicate.Expr) []deposet.Cut {
	b = predicate.Compile(b, d)
	var out []deposet.Cut
	d.ForEachConsistentCut(func(g deposet.Cut) bool {
		if !b.Eval(d, g) {
			out = append(out, g.Clone())
		}
		return true
	})
	return out
}

// PossiblyGeneralExhaustive is the lattice-walk oracle for
// PossiblyGeneral: first satisfying cut in BFS order.
func PossiblyGeneralExhaustive(d *deposet.Deposet, b predicate.Expr) (deposet.Cut, bool) {
	b = predicate.Compile(b, d)
	var witness deposet.Cut
	d.ForEachConsistentCut(func(g deposet.Cut) bool {
		if b.Eval(d, g) {
			witness = g.Clone()
			return false
		}
		return true
	})
	return witness, witness != nil
}

// DefinitelyGeneralExhaustive is the SGSD-search oracle for
// DefinitelyGeneral.
func DefinitelyGeneralExhaustive(d *deposet.Deposet, b predicate.Expr) bool {
	_, avoidable := SGSD(d, predicate.Not(b), false)
	return !avoidable
}
