package detect

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// xorExpr builds a two-process XOR — the canonical non-regular predicate
// (neither it nor its negation factors per-process): its satisfying cut
// set is not closed under componentwise min/max.
func xorExpr(x, y predicate.Expr) predicate.Expr {
	return predicate.Or(
		predicate.And(x, predicate.Not(y)),
		predicate.And(predicate.Not(x), y),
	)
}

func sortCutsByKey(cuts []deposet.Cut) []string {
	keys := make([]string, len(cuts))
	for i, g := range cuts {
		keys[i] = g.Key()
	}
	sort.Strings(keys)
	return keys
}

func equalKeySets(a, b []deposet.Cut) bool {
	ka, kb := sortCutsByKey(a), sortCutsByKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// Property (slicing cross-validation): for random small traces and
// regular predicates, the sliced dispatcher's answers equal the
// exhaustive lattice walk's — exact violation-set equality for
// AllViolations at every worker count, and identical Possibly verdict
// and witness.
func TestSlicedMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(14)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.3+0.5*r.Float64()))
		b := dj.Expr() // ¬b regular → violations of b are sliceable

		want := AllViolationsExhaustive(d, b)
		got, stats := AllViolationsWithStats(d, b, forcePar(1))
		if !stats.Sliced {
			t.Logf("seed %d: ¬disjunction did not slice", seed)
			return false
		}
		if !equalKeySets(got, want) {
			t.Logf("seed %d: sliced %d violations, exhaustive %d", seed, len(got), len(want))
			return false
		}
		// Worker counts must agree byte-for-byte.
		for _, w := range []int{2, 4} {
			par := AllViolationsPar(d, b, forcePar(w))
			if len(par) != len(got) {
				return false
			}
			for i := range par {
				if !par[i].Equal(got[i]) {
					t.Logf("seed %d: workers=%d output diverges at %d", seed, w, i)
					return false
				}
			}
		}
		// The slice explores only its own cuts — never more than the
		// lattice the oracle walked.
		if lattice := d.CountConsistentCuts(); stats.StatesExplored > lattice {
			t.Logf("seed %d: explored %d > lattice %d", seed, stats.StatesExplored, lattice)
			return false
		}

		// Possibly on the regular side: same verdict, same (least) witness.
		e := predicate.Not(b)
		wantCut, wantOK := PossiblyGeneralExhaustive(d, e)
		gotCut, gotOK := PossiblyGeneral(d, e)
		if gotOK != wantOK || (wantOK && !gotCut.Equal(wantCut)) {
			t.Logf("seed %d: possibly %v,%v want %v,%v", seed, gotCut, gotOK, wantCut, wantOK)
			return false
		}
		// Definitely: slice single-step chain vs SGSD search.
		if DefinitelyGeneral(d, e) != DefinitelyGeneralExhaustive(d, e) {
			t.Logf("seed %d: definitely disagrees", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Regression fixture: a non-regular predicate must refuse the slice path
// and fall back to the exhaustive walk — same answers, Sliced=false.
func TestNonRegularFallsBackExhaustive(t *testing.T) {
	d := line(t, 3, 3)
	b := xorExpr(predicate.LocalAfter(0, 1), predicate.LocalAfter(1, 1))
	if predicate.IsRegular(b) || predicate.IsRegular(predicate.Not(b)) {
		t.Fatal("fixture must be non-regular in both polarities")
	}
	got, stats := AllViolationsWithStats(d, b, forcePar(1))
	if stats.Sliced {
		t.Fatal("non-regular predicate took the slice path")
	}
	if stats.MetaEvents != 0 {
		t.Fatal("exhaustive path reported meta-events")
	}
	want := AllViolationsExhaustive(d, b)
	if len(got) != len(want) {
		t.Fatalf("fallback found %d violations, oracle %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("fallback order diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if stats.StatesExplored != d.CountConsistentCuts() {
		t.Fatalf("exhaustive path explored %d of %d lattice cuts",
			stats.StatesExplored, d.CountConsistentCuts())
	}
	// And the parallel entry agrees as a set at any worker count.
	if !equalKeySets(AllViolationsPar(d, b, forcePar(4)), want) {
		t.Fatal("parallel fallback disagrees with oracle")
	}
	// A regular predicate on the same trace does slice.
	_, rstats := AllViolationsWithStats(d, predicate.LocalAfter(0, 1), forcePar(1))
	if !rstats.Sliced || rstats.MetaEvents == 0 {
		t.Fatalf("regular predicate did not slice: %+v", rstats)
	}
}

// Satellite guard: below DefaultParCutoff the default-policy dispatcher
// must take the sequential path no matter the worker count — identical
// allocs/op and, for the exhaustive fallback, the sequential BFS output
// order (the forced level-sync path emits (depth, lex) order instead).
func TestDefaultPolicySequentialBelowCutoff(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := deposet.Random(r, deposet.DefaultGen(3, 60)) // ≈63 states ≪ DefaultParCutoff
	if d.NumStates() >= DefaultParCutoff {
		t.Fatal("trace unexpectedly above cutoff")
	}
	dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
	regular := dj.Expr()
	nonRegular := xorExpr(predicate.LocalAfter(0, 2), predicate.LocalAfter(1, 2))

	for _, tc := range []struct {
		name string
		b    predicate.Expr
	}{{"sliced", regular}, {"exhaustive", nonRegular}} {
		allocs := func(workers int) float64 {
			return testing.AllocsPerRun(10, func() {
				AllViolationsPar(d, tc.b, Par{Workers: workers})
			})
		}
		a1 := allocs(1)
		for _, w := range []int{2, 4, 8} {
			if aw := allocs(w); aw != a1 {
				t.Errorf("%s: allocs/op changed with workers: 1→%.0f, %d→%.0f",
					tc.name, a1, w, aw)
			}
		}
	}

	// Code-path check for the exhaustive fallback: the sequential walk
	// emits BFS discovery order, the forced parallel walk (depth, lex)
	// order. First make sure this trace distinguishes the two...
	seqOrder := AllViolationsExhaustive(d, nonRegular)
	parOrder := AllViolationsExhaustivePar(d, nonRegular, forcePar(4))
	distinguishes := false
	for i := range seqOrder {
		if !seqOrder[i].Equal(parOrder[i]) {
			distinguishes = true
			break
		}
	}
	if !distinguishes {
		t.Fatal("fixture cannot distinguish sequential from parallel order; change the seed")
	}
	// ...then assert the default policy at 8 workers still walked
	// sequentially.
	got := AllViolationsPar(d, nonRegular, Par{Workers: 8})
	for i := range got {
		if !got[i].Equal(seqOrder[i]) {
			t.Fatalf("default policy below cutoff took the parallel path (diverges at %d)", i)
		}
	}

	// Same guard for the possibly/definitely scans: worker count must
	// not change allocs/op below the cutoff.
	truth := deposet.RandomTruth(r, d, 0.6)
	holds := func(p, k int) bool { return truth[p][k] }
	possiblyAllocs := func(workers int) float64 {
		return testing.AllocsPerRun(10, func() {
			PossiblyTruthPar(d, holds, Par{Workers: workers})
		})
	}
	if a1, a8 := possiblyAllocs(1), possiblyAllocs(8); a1 != a8 {
		t.Errorf("possibly: allocs/op changed with workers: 1→%.0f, 8→%.0f", a1, a8)
	}
}
