package detect

import (
	"sort"
	"sync"

	"predctl/internal/deposet"
	"predctl/internal/par"
	"predctl/internal/predicate"
)

// DefaultParCutoff is the minimum total state count at which the
// detection algorithms shard across workers. Below it a handful of
// frontier rounds costs less than one barrier, so small traces take the
// sequential path and cannot regress.
const DefaultParCutoff = 2048

// Par configures the parallel detection engine. The zero value is the
// transparent default: GOMAXPROCS workers above DefaultParCutoff total
// states, sequential below. Tests force the parallel path with
// {Workers: k, Cutoff: 1}; Workers: 1 forces sequential at any size.
type Par struct {
	// Workers is the worker count; 0 resolves to GOMAXPROCS.
	Workers int
	// Cutoff is the minimum total state count for going parallel; 0
	// resolves to DefaultParCutoff.
	Cutoff int
}

// resolve returns the effective worker count for a view of `states`
// total states: 1 (sequential) below the cutoff or when only one worker
// is available.
func (o Par) resolve(states int) int {
	cutoff := o.Cutoff
	if cutoff <= 0 {
		cutoff = DefaultParCutoff
	}
	if states < cutoff {
		return 1
	}
	return par.Workers(o.Workers, states)
}

func viewStates(v deposet.View) int {
	total := 0
	for p := 0; p < v.NumProcs(); p++ {
		total += v.Len(p)
	}
	return total
}

// roundScratch is the pooled per-call working state of the sharded
// frontier scans: a candidate cursor per process, a flag per process,
// and a per-worker status slot. Detection calls borrow one, so repeated
// detections allocate only their result.
type roundScratch struct {
	cur  []int
	flag []bool
	dead []bool
}

var scratchPool = sync.Pool{New: func() any { return new(roundScratch) }}

// getScratch returns a scratch with cur/flag sized (and zeroed) for n
// processes and dead sized for the worker count.
func getScratch(n, workers int) *roundScratch {
	s := scratchPool.Get().(*roundScratch)
	if cap(s.cur) < n {
		s.cur = make([]int, n)
		s.flag = make([]bool, n)
	}
	s.cur = s.cur[:n]
	s.flag = s.flag[:n]
	for i := range s.cur {
		s.cur[i] = 0
		s.flag[i] = false
	}
	if cap(s.dead) < workers {
		s.dead = make([]bool, workers)
	}
	s.dead = s.dead[:workers]
	for i := range s.dead {
		s.dead[i] = false
	}
	return s
}

func putScratch(s *roundScratch) { scratchPool.Put(s) }

// PossiblyTruthPar is PossiblyTruth with the candidate-elimination scan
// sharded across workers.
//
// Both variants compute the same least fixed point: the minimal cut
// where every process sits at a holds-state and no frontier state
// causally precedes another. The sequential loop retires one doomed
// candidate per iteration; here each round flags, in parallel shards of
// the O(n²) pair scan, *every* process whose candidate causally
// precedes some other candidate, then advances all of them at once — a
// flagged candidate can never join any consistent cut with the later
// candidates, so batched advancement preserves the invariant (this is
// the round structure of Garg's work-optimal parallel detection). With
// one worker it falls through to the sequential implementation.
func PossiblyTruthPar(v deposet.View, holds HoldsFn, opts Par) (deposet.Cut, bool) {
	n := v.NumProcs()
	workers := opts.resolve(viewStates(v))
	if workers == 1 {
		return PossiblyTruth(v, holds)
	}
	loop := par.NewLoop(n, workers)
	defer loop.Close()
	s := getScratch(n, loop.Workers())
	defer putScratch(s)
	cur, flag, dead := s.cur, s.flag, s.dead
	seek := func(p int) bool {
		for cur[p] < v.Len(p) && !holds(p, cur[p]) {
			cur[p]++
		}
		return cur[p] < v.Len(p)
	}
	loop.Round(n, func(w, lo, hi int) {
		for p := lo; p < hi; p++ {
			if !seek(p) {
				dead[w] = true
				return
			}
		}
	})
	for _, d := range dead {
		if d {
			return nil, false
		}
	}
	for {
		loop.Round(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				si := deposet.StateID{P: i, K: cur[i]}
				flag[i] = false
				for j := 0; j < n; j++ {
					if i != j && v.HB(si, deposet.StateID{P: j, K: cur[j]}) {
						flag[i] = true
						break
					}
				}
			}
		})
		advanced := false
		for i := 0; i < n; i++ {
			if flag[i] {
				cur[i]++
				if !seek(i) {
					return nil, false
				}
				advanced = true
			}
		}
		if !advanced {
			return append(deposet.Cut(nil), cur...), true
		}
	}
}

// DefinitelyTruthPar is DefinitelyTruth with the interval extraction
// and the Lemma 2 overlap scan sharded across workers.
//
// The frontier of one candidate interval per process is advanced in
// rounds: a round flags, in parallel shards over j, every interval Iⱼ
// falsifying the overlap clause against some frontier Iᵢ. Such an
// interval can never overlap Iᵢ or any later interval of i (interval
// starts only move causally later), so it is dead no matter what the
// other processes do, and batched advancement reaches the same least
// fixed point the sequential one-at-a-time loop does.
func DefinitelyTruthPar(v deposet.View, holds HoldsFn, opts Par) ([]deposet.Interval, bool) {
	n := v.NumProcs()
	workers := opts.resolve(viewStates(v))
	if workers == 1 {
		return DefinitelyTruth(v, holds)
	}
	loop := par.NewLoop(n, workers)
	defer loop.Close()
	ivs := make([][]deposet.Interval, n)
	loop.Each(n, func(p int) {
		ivs[p] = truthIntervals(v, p, holds)
	})
	for p := 0; p < n; p++ {
		if len(ivs[p]) == 0 {
			return nil, false
		}
	}
	s := getScratch(n, loop.Workers())
	defer putScratch(s)
	cur, flag := s.cur, s.flag
	for {
		loop.Round(n, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				flag[j] = false
				for i := 0; i < n; i++ {
					if i != j && !OverlapsView(v, ivs[i][cur[i]], ivs[j][cur[j]]) {
						flag[j] = true
						break
					}
				}
			}
		})
		advanced := false
		for j := 0; j < n; j++ {
			if flag[j] {
				cur[j]++
				if cur[j] == len(ivs[j]) {
					return nil, false
				}
				advanced = true
			}
		}
		if !advanced {
			witness := make([]deposet.Interval, n)
			for p := 0; p < n; p++ {
				witness[p] = ivs[p][cur[p]]
			}
			return witness, true
		}
	}
}

// TruthIntervalsInto fills dst[p] with the maximal runs where holds is
// true on process p, extracting the per-process interval lists in
// parallel shards (each process's scan is independent). dst must have
// NumProcs entries. The off-line controller uses it to extract
// false-intervals by negating its local predicates.
func TruthIntervalsInto(dst [][]deposet.Interval, v deposet.View, opts Par, holds HoldsFn) {
	n := v.NumProcs()
	workers := opts.resolve(viewStates(v))
	if workers == 1 {
		for p := 0; p < n; p++ {
			dst[p] = truthIntervals(v, p, holds)
		}
		return
	}
	loop := par.NewLoop(n, workers)
	defer loop.Close()
	loop.Each(n, func(p int) {
		dst[p] = truthIntervals(v, p, holds)
	})
}

// AllViolationsPar is AllViolations across workers. When ¬b is regular
// the violations are the cuts of ¬b's slice, and the workers enumerate
// disjoint segments of the slice's ideal forest (slice.Cuts) — no
// visited maps, no level barriers, no cross-worker merge until the final
// sort, so the multi-worker path carries none of the synchronization
// overhead of the exhaustive walk. Non-regular predicates run the
// level-synchronized exhaustive walk (AllViolationsExhaustivePar). Both
// paths return (depth, lexicographic) order at any worker count above
// one; at one worker the non-regular path keeps the sequential
// enumerator's BFS discovery order.
func AllViolationsPar(d *deposet.Deposet, b predicate.Expr, opts Par) []deposet.Cut {
	if sl, ok := violationSlice(d, b); ok {
		return sl.Cuts(opts.resolve(d.NumStates()))
	}
	return AllViolationsExhaustivePar(d, b, opts)
}

// AllViolationsExhaustivePar is the lattice enumeration
// level-synchronized and sharded across workers: the consistent cuts at
// lattice depth ℓ (sum of frontier indices) all have depth-(ℓ+1)
// successors, so each level's consistency checks and predicate
// evaluations run in parallel shards, with a deterministic (sorted)
// merge between levels. The violation list therefore comes out in
// (depth, lexicographic) order — a fixed order, though not the BFS
// discovery order the sequential enumerator happens to produce. The
// predicate is compiled to packed per-state truth bits first, so the
// per-cut evaluations inside the shards never call a LocalFn. It is the
// cross-validation oracle and forced-baseline for the sliced path.
func AllViolationsExhaustivePar(d *deposet.Deposet, b predicate.Expr, opts Par) []deposet.Cut {
	workers := opts.resolve(d.NumStates())
	if workers == 1 {
		return AllViolationsExhaustive(d, b)
	}
	b = predicate.Compile(b, d)
	return allViolationsLevelSync(d, b, opts, nil)
}

// allViolationsLevelSync is the sharded level-synchronous walk shared by
// AllViolationsExhaustivePar and AllViolationsWithStats; b must already
// be compiled. stats, when non-nil, accumulates the cuts visited.
func allViolationsLevelSync(d *deposet.Deposet, b predicate.Expr, opts Par, stats *EnumStats) []deposet.Cut {
	workers := opts.resolve(d.NumStates())
	n := d.NumProcs()
	loop := par.NewLoop(workers, workers)
	defer loop.Close()
	var out []deposet.Cut
	level := []deposet.Cut{d.BottomCut()}
	type shardResult struct {
		violations []deposet.Cut
		next       map[string]deposet.Cut
	}
	results := make([]shardResult, loop.Workers())
	for len(level) > 0 {
		if stats != nil {
			stats.StatesExplored += len(level)
		}
		loop.Round(len(level), func(w, lo, hi int) {
			res := shardResult{next: make(map[string]deposet.Cut)}
			for x := lo; x < hi; x++ {
				g := level[x]
				if !b.Eval(d, g) {
					res.violations = append(res.violations, g)
				}
				for p := 0; p < n; p++ {
					if g[p]+1 >= d.Len(p) {
						continue
					}
					h := g.Clone()
					h[p]++
					key := h.Key()
					if _, dup := res.next[key]; dup {
						continue
					}
					if d.Consistent(h) {
						res.next[key] = h
					}
				}
			}
			results[w] = res
		})
		merged := make(map[string]deposet.Cut)
		for w := range results {
			for k, c := range results[w].next {
				merged[k] = c
			}
			out = append(out, results[w].violations...)
			results[w] = shardResult{}
		}
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		level = level[:0]
		for _, k := range keys {
			level = append(level, merged[k])
		}
	}
	return out
}
