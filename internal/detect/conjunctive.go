// Package detect implements the predicate-detection algorithms the
// active-debugging cycle relies on (paper §§1–2, 7):
//
//   - PossiblyConjunctive: weak conjunctive predicates — does some
//     consistent global state satisfy q1 ∧ … ∧ qn? (Garg–Waldecker.)
//     Detecting a *bug* "all servers unavailable" is possibly(∧ ¬availᵢ).
//   - DefinitelyConjunctive: strong conjunctive predicates — does every
//     global sequence pass through a state satisfying ∧qᵢ? This is the
//     interval-overlap condition of the paper's Lemma 2, and with
//     qᵢ = ¬lᵢ it decides infeasibility of disjunctive control.
//   - PossiblyGeneral / AllViolations / SGSD: general predicates. Those
//     in the regular fragment (predicate.IsRegular) dispatch to the
//     computation slice (internal/slice) and run in polynomial time; the
//     rest fall back to exhaustive lattice search (exponential — Lemma 1
//     shows SGSD is NP-complete), which also serves as the
//     cross-validation oracle (*Exhaustive variants in sliced.go).
package detect

import (
	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// PossiblyConjunctive reports whether some consistent global state of d
// satisfies the conjunction cj, returning a witness cut if so. It runs
// the Garg–Waldecker weak-conjunctive-predicate algorithm: keep one
// candidate state per process (the earliest state satisfying that
// process's conjunct) and, whenever two candidates are causally ordered,
// advance the earlier one — it can never be part of a consistent cut with
// the later one or any of its successors. Time O(n²·S) for S total
// states; no lattice enumeration. Large computations (DefaultParCutoff
// total states) run the worker-sharded variant transparently; see
// PossiblyTruthPar.
func PossiblyConjunctive(d *deposet.Deposet, cj *predicate.Conjunction) (deposet.Cut, bool) {
	return PossiblyTruthPar(d, func(p, k int) bool { return cj.Holds(d, p, k) }, Par{})
}

// Overlaps evaluates the paper's overlap clause for the ordered pair of
// intervals (Iᵢ, Iⱼ): "Iⱼ cannot be exited before Iᵢ is entered". In the
// state-causality convention used here (s → t means "t reached implies s
// exited"), the clause is
//
//	Iᵢ.lo = ⊥ᵢ  ∨  Iⱼ.hi = ⊤ⱼ  ∨  (i, lo_i−1) → (j, hi_j+1).
//
// Note the boundary-adjacent states: entering Iᵢ means exiting the state
// before its lo, and exiting Iⱼ means reaching the state after its hi.
// Reading the paper's "Iᵢ.lo → Iⱼ.hi" literally on the interval endpoint
// states is subtly incomplete: a message sent from the state just before
// lo_i and received just after hi_j forces the overlap but relates
// (lo_i−1) to (hi_j+1), not lo_i to hi_j. See overlap_test.go for a
// concrete computation distinguishing the two readings.
func Overlaps(d *deposet.Deposet, ii, ij deposet.Interval) bool {
	return OverlapsView(d, ii, ij)
}

// DefinitelyConjunctive reports whether every global sequence of d passes
// through a state satisfying cj, returning a witness overlapping interval
// set if so (one qᵢ-interval per process, pairwise satisfying Overlaps in
// both directions — the paper's overlap predicate, Lemma 2).
//
// The algorithm mirrors the off-line control loop: keep a frontier
// interval per process and, when a pair (i, j) falsifies the overlap
// clause, advance j — interval Iⱼ can never overlap the current or any
// later interval of i, because interval starts only move causally later.
// Large computations run the worker-sharded variant transparently; see
// DefinitelyTruthPar.
func DefinitelyConjunctive(d *deposet.Deposet, cj *predicate.Conjunction) ([]deposet.Interval, bool) {
	return DefinitelyTruthPar(d, func(p, k int) bool { return cj.Holds(d, p, k) }, Par{})
}

// PossiblyGeneral reports whether some consistent global state satisfies
// an arbitrary predicate. Predicates in the regular fragment factor into
// a per-process truth table (predicate.RegularTable) and run the
// Garg–Waldecker fixpoint — polynomial, and the witness it finds is the
// satisfying set's unique least cut, the same cut the exhaustive
// breadth-first walk reports first. Everything else enumerates the
// lattice (exponential in n; see PossiblyGeneralExhaustive).
func PossiblyGeneral(d *deposet.Deposet, b predicate.Expr) (deposet.Cut, bool) {
	if tab, ok := predicate.RegularTable(b, d); ok {
		return PossiblyTruth(d, tab.Holds)
	}
	return PossiblyGeneralExhaustive(d, b)
}

// DefinitelyGeneral reports whether every interleaving of d passes
// through a state satisfying an arbitrary predicate b — equivalently,
// whether no single-step sequence through ¬b-cuts crosses the lattice.
// When ¬b is regular the question is answered on its slice in polynomial
// time (slice.SingleStepChain); otherwise by exhaustive search for an
// avoiding interleaving (¬SGSD(¬b); exponential — for conjunctive
// predicates prefer DefinitelyConjunctive).
func DefinitelyGeneral(d *deposet.Deposet, b predicate.Expr) bool {
	if sl, ok := violationSlice(d, b); ok {
		if _, avoidable, decided := sl.SingleStepChain(); decided {
			return !avoidable
		}
	}
	return DefinitelyGeneralExhaustive(d, b)
}

// AllViolations returns every consistent global state where b is false —
// the debugging view "where can the bug occur?" (paper §7 finds the cuts
// G and H this way). When ¬b is in the regular fragment the violations
// are exactly the cuts of ¬b's slice, enumerated without touching the
// rest of the lattice and returned in (depth, lexicographic) order;
// otherwise the full lattice is walked (exponential; see
// AllViolationsExhaustive), with the predicate compiled to packed
// per-state truth bits up front so per-cut evaluations are bit tests.
func AllViolations(d *deposet.Deposet, b predicate.Expr) []deposet.Cut {
	if sl, ok := violationSlice(d, b); ok {
		return sl.Cuts(1)
	}
	return AllViolationsExhaustive(d, b)
}
