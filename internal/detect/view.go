package detect

import "predctl/internal/deposet"

// HoldsFn gives the truth of a per-process local condition at state (p, k).
type HoldsFn func(p, k int) bool

// PossiblyTruth is PossiblyConjunctive generalized over any causal view
// (plain or controlled computation) with the conjuncts given as a truth
// function. Processes are "constant true" wherever holds returns true.
func PossiblyTruth(v deposet.View, holds HoldsFn) (deposet.Cut, bool) {
	n := v.NumProcs()
	cur := make(deposet.Cut, n)
	seek := func(p int) bool {
		for cur[p] < v.Len(p) && !holds(p, cur[p]) {
			cur[p]++
		}
		return cur[p] < v.Len(p)
	}
	for p := 0; p < n; p++ {
		if !seek(p) {
			return nil, false
		}
	}
	for {
		advanced := false
		for i := 0; i < n && !advanced; i++ {
			si := deposet.StateID{P: i, K: cur[i]}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if v.HB(si, deposet.StateID{P: j, K: cur[j]}) {
					cur[i]++
					if !seek(i) {
						return nil, false
					}
					advanced = true
					break
				}
			}
		}
		if !advanced {
			return cur, true
		}
	}
}

// OverlapsView is the overlap clause of Overlaps evaluated on any causal
// view; see Overlaps for the clause and its boundary-adjacent reading.
func OverlapsView(v deposet.View, ii, ij deposet.Interval) bool {
	if ii.Lo == 0 || ij.Hi == v.Len(ij.P)-1 {
		return true
	}
	return v.HB(deposet.StateID{P: ii.P, K: ii.Lo - 1}, deposet.StateID{P: ij.P, K: ij.Hi + 1})
}

// truthIntervals returns the maximal runs where holds is true on p.
func truthIntervals(v deposet.View, p int, holds HoldsFn) []deposet.Interval {
	var ivs []deposet.Interval
	m := v.Len(p)
	for k := 0; k < m; {
		if !holds(p, k) {
			k++
			continue
		}
		lo := k
		for k < m && holds(p, k) {
			k++
		}
		ivs = append(ivs, deposet.Interval{P: p, Lo: lo, Hi: k - 1})
	}
	return ivs
}

// DefinitelyTruth is DefinitelyConjunctive generalized over any causal
// view with the conjuncts given as a truth function.
func DefinitelyTruth(v deposet.View, holds HoldsFn) ([]deposet.Interval, bool) {
	n := v.NumProcs()
	ivs := make([][]deposet.Interval, n)
	for p := 0; p < n; p++ {
		ivs[p] = truthIntervals(v, p, holds)
		if len(ivs[p]) == 0 {
			return nil, false
		}
	}
	cur := make([]int, n)
	for {
		advanced := false
	pairs:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || OverlapsView(v, ivs[i][cur[i]], ivs[j][cur[j]]) {
					continue
				}
				cur[j]++
				if cur[j] == len(ivs[j]) {
					return nil, false
				}
				advanced = true
				break pairs
			}
		}
		if !advanced {
			witness := make([]deposet.Interval, n)
			for p := 0; p < n; p++ {
				witness[p] = ivs[p][cur[p]]
			}
			return witness, true
		}
	}
}
