package detect

import (
	"testing"

	"predctl/internal/deposet"
)

// TestOverlapBoundaryReading pins down why Overlaps compares the
// boundary-adjacent states (lo−1, hi+1) rather than the interval endpoint
// states themselves.
//
// The computation: P0 and P1 each send a message from their initial state
// and receive the other's message as their second event, then take one
// local step:
//
//	P0:  ⊥ —send m0→ 1 —recv m1→ 2 —·→ 3
//	P1:  ⊥ —send m1→ 1 —recv m0→ 2 —·→ 3
//
// so m0 relates (0,0) ⇝ (1,2) and m1 relates (1,0) ⇝ (0,2). Let q hold
// exactly on states [1..2] of each process. Exhaustively, every global
// sequence passes through a cut with both processes in [1..2]: the cut
// (g0=0, g1≥2) is inconsistent (m0 orphaned) and (g0≥2, g1=0) likewise
// (m1), so neither process can cross its q-interval while the other
// stays at ⊥ — definitely(q0 ∧ q1) holds.
//
// Yet the endpoint-state reading fails: I0.lo = (0,1) does not causally
// precede I1.hi = (1,2) (m0 emanates from (0,0), not (0,1)). Only the
// boundary-adjacent reading (0,0) → (1,3) captures the forced overlap.
func TestOverlapBoundaryReading(t *testing.T) {
	b := deposet.NewBuilder(2)
	_, h0 := b.Send(0)
	_, h1 := b.Send(1)
	b.Recv(0, h1)
	b.Recv(1, h0)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()

	i0 := deposet.Interval{P: 0, Lo: 1, Hi: 2}
	i1 := deposet.Interval{P: 1, Lo: 1, Hi: 2}

	// Endpoint-state reading: no causality between the endpoints.
	if d.HB(i0.LoState(), i1.HiState()) || d.HB(i1.LoState(), i0.HiState()) {
		t.Fatal("endpoint states unexpectedly ordered; computation changed?")
	}
	// Boundary-adjacent reading: overlap holds both ways.
	if !Overlaps(d, i0, i1) || !Overlaps(d, i1, i0) {
		t.Fatal("Overlaps should hold in both directions")
	}

	// Ground truth: definitely(q0 ∧ q1) via both the interval algorithm
	// and the exhaustive sequence search.
	cj := conjFromTruth([][]bool{
		{false, true, true, false},
		{false, true, true, false},
	})
	if _, ok := DefinitelyConjunctive(d, cj); !ok {
		t.Fatal("DefinitelyConjunctive should hold")
	}
	if _, avoidable := SGSD(d, notConj(cj), true); avoidable {
		t.Fatal("no sequence should avoid the all-q cut")
	}
}

// TestOverlapBottomTopClauses exercises the ⊥/⊤ escape clauses.
func TestOverlapBottomTopClauses(t *testing.T) {
	d := line(t, 4, 4)
	fromBottom := deposet.Interval{P: 0, Lo: 0, Hi: 1}
	toTop := deposet.Interval{P: 1, Lo: 2, Hi: 3}
	mid := deposet.Interval{P: 1, Lo: 1, Hi: 1}
	if !Overlaps(d, fromBottom, mid) {
		t.Error("lo=⊥ clause failed")
	}
	if !Overlaps(d, mid, toTop) {
		t.Error("hi=⊤ clause failed")
	}
	if Overlaps(d, deposet.Interval{P: 0, Lo: 1, Hi: 1}, mid) {
		t.Error("independent mid intervals should not overlap")
	}
}

// TestDefinitelySimultaneityGap documents a semantic gap in the paper:
// its global sequences permit simultaneous advances ("this does not
// enforce an interleaving"), but the interval-overlap characterization it
// imports from Garg–Waldecker (Lemma 2) is stated for interleavings. The
// two disagree on computations where a bad cut can only be dodged by two
// processes stepping at the same instant — which no control strategy
// (added causality) can enforce, so the interleaving reading is the one
// under which "no controller exists ⟺ overlap" is sound.
//
// Found by property testing (seed -8251085005216216580):
//
//	P0: q at state 1 only (of 6); P1: q at state 0 and states 2..6 (of 7);
//	messages P0.e1→P1.e1, P0.e2→P1.e2, P0.e3→P1.e4, P0.e4→P1.e5.
//
// Every interleaving hits an all-q cut, but the simultaneous step
// ⟨0,0⟩→⟨1,1⟩ (P0 enters its q-state exactly as P1 leaves its own)
// dodges it.
func TestDefinitelySimultaneityGap(t *testing.T) {
	raw := deposet.Raw{
		Lens: []int{6, 7},
		Msgs: []deposet.Message{
			{FromP: 0, SendEvent: 1, ToP: 1, RecvEvent: 1},
			{FromP: 0, SendEvent: 2, ToP: 1, RecvEvent: 2},
			{FromP: 0, SendEvent: 3, ToP: 1, RecvEvent: 4},
			{FromP: 0, SendEvent: 4, ToP: 1, RecvEvent: 5},
		},
	}
	d, err := deposet.FromRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	cj := conjFromTruth([][]bool{
		{false, true, false, false, true, false},
		{true, false, true, true, true, true, true},
	})
	if _, ok := DefinitelyConjunctive(d, cj); !ok {
		t.Fatal("interval overlap should hold")
	}
	if _, ok := SGSD(d, notConj(cj), false); ok {
		t.Fatal("no interleaving should avoid the all-q cuts")
	}
	if _, ok := SGSD(d, notConj(cj), true); !ok {
		t.Fatal("a simultaneous-advance sequence should dodge the all-q cuts")
	}
}
