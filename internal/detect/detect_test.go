package detect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// conjFromTruth builds a conjunction whose conjunct at process p is
// truth[p][k].
func conjFromTruth(truth [][]bool) *predicate.Conjunction {
	cj := predicate.NewConjunction(len(truth))
	for p := range truth {
		tp := truth[p]
		cj.Add(p, "q", func(_ *deposet.Deposet, k int) bool { return tp[k] })
	}
	return cj
}

func line(t testing.TB, lens ...int) *deposet.Deposet {
	b := deposet.NewBuilder(len(lens))
	for p, l := range lens {
		for i := 1; i < l; i++ {
			b.Step(p)
		}
	}
	return b.MustBuild()
}

func TestPossiblyConjunctiveBasic(t *testing.T) {
	// Two independent processes, q true at exactly one state each.
	d := line(t, 3, 3)
	cj := conjFromTruth([][]bool{
		{false, true, false},
		{false, false, true},
	})
	cut, ok := PossiblyConjunctive(d, cj)
	if !ok {
		t.Fatal("expected possible")
	}
	if !cut.Equal(deposet.Cut{1, 2}) {
		t.Fatalf("witness = %v", cut)
	}
	if !d.Consistent(cut) || !cj.Eval(d, cut) {
		t.Fatal("witness invalid")
	}
}

func TestPossiblyConjunctiveImpossibleByCausality(t *testing.T) {
	// P0's q-state causally precedes P1's only q-state... and vice versa
	// is impossible; build: q0 only at (0,2) [after receiving], q1 only
	// at (1,0); message (1,·)→(0,·) makes (1,0) → (0,2): ordered, and the
	// only candidates are ordered the wrong way for a consistent cut?
	// (1,0) → (0,2) means cut {2,0} is inconsistent.
	b := deposet.NewBuilder(2)
	_, h := b.Send(1) // (1,1)
	b.Step(0)
	b.Recv(0, h) // (0,2)
	b.Step(1)
	d := b.MustBuild()
	cj := conjFromTruth([][]bool{
		{false, false, true},
		{true, false, false},
	})
	if cut, ok := PossiblyConjunctive(d, cj); ok {
		t.Fatalf("expected impossible, got %v", cut)
	}
}

func TestPossiblyConjunctiveNoCandidate(t *testing.T) {
	d := line(t, 2, 2)
	cj := conjFromTruth([][]bool{{false, false}, {true, true}})
	if _, ok := PossiblyConjunctive(d, cj); ok {
		t.Fatal("expected impossible: q0 never holds")
	}
}

func TestPossiblyConjunctiveMissingConjunct(t *testing.T) {
	d := line(t, 2, 2)
	cj := predicate.NewConjunction(2) // constant true
	cut, ok := PossiblyConjunctive(d, cj)
	if !ok || !cut.Equal(deposet.Cut{0, 0}) {
		t.Fatalf("got %v,%v; want ⊥,true", cut, ok)
	}
}

// Property: PossiblyConjunctive agrees with exhaustive lattice search.
func TestPossiblyMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(16)))
		truth := deposet.RandomTruth(r, d, 0.4)
		cj := conjFromTruth(truth)
		cut, got := PossiblyConjunctive(d, cj)
		_, want := PossiblyGeneral(d, cj.Expr())
		if got != want {
			return false
		}
		if got && (!d.Consistent(cut) || !cj.Eval(d, cut)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDefinitelyConjunctiveBasic(t *testing.T) {
	// Both processes are q-true from the start: every sequence starts at
	// ⊥ where both hold.
	d := line(t, 3, 3)
	cj := conjFromTruth([][]bool{
		{true, true, false},
		{true, false, false},
	})
	ivs, ok := DefinitelyConjunctive(d, cj)
	if !ok {
		t.Fatal("expected definitely")
	}
	if len(ivs) != 2 || ivs[0].Lo != 0 || ivs[1].Lo != 0 {
		t.Fatalf("witness = %v", ivs)
	}
}

func TestDefinitelyConjunctiveConcurrentSingles(t *testing.T) {
	// Single q-states on independent processes: sequences can dodge.
	d := line(t, 3, 3)
	cj := conjFromTruth([][]bool{
		{false, true, false},
		{false, true, false},
	})
	if _, ok := DefinitelyConjunctive(d, cj); ok {
		t.Fatal("expected not definitely")
	}
}

func TestDefinitelyConjunctiveForcedOverlap(t *testing.T) {
	// Message exchange forcing the q-intervals to overlap in every run:
	// P0 q-true on [1..2], P1 q-true on [1..2], with (0,1) → (1,2) and
	// (1,1) → (0,2).
	b := deposet.NewBuilder(2)
	_, h0 := b.Send(0) // (0,1)
	_, h1 := b.Send(1) // (1,1)
	b.Recv(0, h1)      // (0,2)
	b.Recv(1, h0)      // (1,2)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()
	cj := conjFromTruth([][]bool{
		{false, true, true, false},
		{false, true, true, false},
	})
	ivs, ok := DefinitelyConjunctive(d, cj)
	if !ok {
		t.Fatal("expected definitely")
	}
	if ivs[0].Lo != 1 || ivs[0].Hi != 2 || ivs[1].Lo != 1 || ivs[1].Hi != 2 {
		t.Fatalf("witness = %v", ivs)
	}
}

func TestDefinitelyConjunctiveNeverHolds(t *testing.T) {
	d := line(t, 2, 2)
	cj := conjFromTruth([][]bool{{false, false}, {true, true}})
	if _, ok := DefinitelyConjunctive(d, cj); ok {
		t.Fatal("expected not definitely")
	}
}

func TestDefinitelySingleProcess(t *testing.T) {
	d := line(t, 4)
	cj := conjFromTruth([][]bool{{false, true, false, false}})
	if _, ok := DefinitelyConjunctive(d, cj); !ok {
		t.Fatal("single process with a q-state is always definitely")
	}
	cj2 := conjFromTruth([][]bool{{false, false, false, false}})
	if _, ok := DefinitelyConjunctive(d, cj2); ok {
		t.Fatal("q never holds")
	}
}

// Property: DefinitelyConjunctive(q) agrees with ¬SGSD(¬q) under
// single-step (interleaving) sequence semantics: "every interleaving
// passes through an all-q state" is the negation of "some interleaving
// satisfies ¬(∧q) everywhere". Interleaving semantics is the right one
// for control: a control strategy cannot force two processes to step at
// the same instant, so controller existence coincides with single-step
// avoidability (see TestDefinitelySimultaneityGap).
func TestDefinitelyMatchesSGSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(14)))
		truth := deposet.RandomTruth(r, d, 0.45)
		cj := conjFromTruth(truth)
		ivs, def := DefinitelyConjunctive(d, cj)
		_, avoidable := SGSD(d, predicate.Not(cj.Expr()), false)
		if def == avoidable {
			return false
		}
		if def {
			// Witness must satisfy the overlap predicate.
			n := d.NumProcs()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && !Overlaps(d, ivs[i], ivs[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSGSDSimultaneousVsSingleStep(t *testing.T) {
	// XOR: P0 has x: 0→1, P1 has y: 1→0. B = x XOR y holds at ⊥ (0,1)
	// and ⊤ (1,0) but at neither single-step intermediate.
	b := deposet.NewBuilder(2)
	b.Let(0, "x", 0)
	b.Let(1, "y", 1)
	b.Step(0)
	b.Let(0, "x", 1)
	b.Step(1)
	b.Let(1, "y", 0)
	d := b.MustBuild()
	x := predicate.LocalVarEq(0, "x", 1)
	y := predicate.LocalVarEq(1, "y", 1)
	xor := predicate.Or(predicate.And(x, predicate.Not(y)), predicate.And(predicate.Not(x), y))

	if seq, ok := SGSD(d, xor, true); !ok {
		t.Fatal("simultaneous advance should satisfy XOR")
	} else if err := d.ValidateSequence(seq); err != nil {
		t.Fatalf("sequence invalid: %v", err)
	} else {
		for _, g := range seq {
			if !xor.Eval(d, g) {
				t.Fatalf("sequence state %v violates XOR", g)
			}
		}
	}
	if _, ok := SGSD(d, xor, false); ok {
		t.Fatal("single-step advance cannot satisfy XOR here")
	}
}

func TestSGSDBottomViolation(t *testing.T) {
	d := line(t, 2, 2)
	never := predicate.Const(false)
	if _, ok := SGSD(d, never, true); ok {
		t.Fatal("constant-false satisfiable?")
	}
	_, stats, err := SGSDWithStats(d, never, true)
	if err != nil || stats.NodesExplored != 0 {
		t.Fatalf("stats = %+v, err = %v", stats, err)
	}
}

func TestSGSDAlwaysTrue(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := deposet.Random(r, deposet.DefaultGen(3, 10))
	seq, ok := SGSD(d, predicate.Const(true), false)
	if !ok {
		t.Fatal("constant-true unsatisfiable?")
	}
	if err := d.ValidateSequence(seq); err != nil {
		t.Fatal(err)
	}
}

func TestSGSDProcLimit(t *testing.T) {
	b := deposet.NewBuilder(MaxSGSDProcs + 1)
	d := b.MustBuild()
	if _, _, err := SGSDWithStats(d, predicate.Const(true), true); err == nil {
		t.Fatal("expected process-limit error")
	}
	// Single-step mode has no such limit.
	if _, ok := SGSD(d, predicate.Const(true), false); !ok {
		t.Fatal("single-step SGSD failed on wide system")
	}
}

func TestFeasible(t *testing.T) {
	d := line(t, 2, 2)
	if !Feasible(d, predicate.Const(true)) || Feasible(d, predicate.Const(false)) {
		t.Fatal("Feasible wrong")
	}
}

func TestAllViolations(t *testing.T) {
	d := line(t, 2, 2)
	// b false exactly where both processes are at state 1.
	b := predicate.Not(predicate.And(predicate.LocalAfter(0, 1), predicate.LocalAfter(1, 1)))
	v := AllViolations(d, b)
	if len(v) != 1 || !v[0].Equal(deposet.Cut{1, 1}) {
		t.Fatalf("violations = %v", v)
	}
	if len(AllViolations(d, predicate.Const(true))) != 0 {
		t.Fatal("constant-true has violations")
	}
}

// Property: a sequence returned by single-step SGSD is also valid under
// the simultaneous semantics (single steps are a special case).
func TestSGSDSingleImpliesSimultaneousProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.7))
		b := dj.Expr()
		seq1, ok1 := SGSD(d, b, false)
		_, ok2 := SGSD(d, b, true)
		if ok1 && !ok2 {
			return false
		}
		if ok1 {
			if err := d.ValidateSequence(seq1); err != nil {
				return false
			}
			for _, g := range seq1 {
				if !b.Eval(d, g) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// notConj returns ¬(∧q) as an expression.
func notConj(cj *predicate.Conjunction) predicate.Expr {
	return predicate.Not(cj.Expr())
}

// Property: DefinitelyGeneral agrees with DefinitelyConjunctive when the
// predicate is conjunctive.
func TestDefinitelyGeneralMatchesConjunctiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		cj := conjFromTruth(deposet.RandomTruth(r, d, 0.5))
		_, want := DefinitelyConjunctive(d, cj)
		return DefinitelyGeneral(d, cj.Expr()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
