package detect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// forcePar runs the parallel engine regardless of trace size.
func forcePar(workers int) Par { return Par{Workers: workers, Cutoff: 1} }

// Property: PossiblyTruthPar computes exactly the sequential result —
// same verdict and the same (least) witness cut — on random deposets,
// for every worker count.
func TestPossiblyParMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(6), r.Intn(60)))
		truth := deposet.RandomTruth(r, d, 0.3+r.Float64()*0.4)
		holds := func(p, k int) bool { return truth[p][k] }
		seqCut, seqOK := PossiblyTruth(d, holds)
		for _, workers := range []int{2, 3, 8} {
			parCut, parOK := PossiblyTruthPar(d, holds, forcePar(workers))
			if parOK != seqOK {
				return false
			}
			if seqOK && !parCut.Equal(seqCut) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: DefinitelyTruthPar computes exactly the sequential result —
// same verdict and the same witness interval set.
func TestDefinitelyParMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(6), r.Intn(60)))
		truth := deposet.RandomTruth(r, d, 0.3+r.Float64()*0.5)
		holds := func(p, k int) bool { return truth[p][k] }
		seqIvs, seqOK := DefinitelyTruth(d, holds)
		for _, workers := range []int{2, 3, 8} {
			parIvs, parOK := DefinitelyTruthPar(d, holds, forcePar(workers))
			if parOK != seqOK {
				return false
			}
			if !seqOK {
				continue
			}
			if len(parIvs) != len(seqIvs) {
				return false
			}
			for i := range seqIvs {
				if parIvs[i] != seqIvs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: AllViolationsPar enumerates exactly the violation set of the
// sequential lattice walk (orders differ: BFS discovery vs sorted
// level-synchronous, so compare as sets).
func TestAllViolationsParMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(16)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.6))
		b := dj.Expr()
		seq := AllViolations(d, b)
		want := make(map[string]bool, len(seq))
		for _, g := range seq {
			want[g.Key()] = true
		}
		for _, workers := range []int{2, 5} {
			got := AllViolationsPar(d, b, forcePar(workers))
			if len(got) != len(seq) {
				return false
			}
			for _, g := range got {
				if !want[g.Key()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// AllViolationsPar must produce the same (deterministic) order on
// repeated runs, whatever the worker count.
func TestAllViolationsParDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := deposet.Random(r, deposet.DefaultGen(3, 14))
	dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
	b := dj.Expr()
	var first []deposet.Cut
	for trial := 0; trial < 5; trial++ {
		for _, workers := range []int{2, 3, 4} {
			got := AllViolationsPar(d, b, forcePar(workers))
			if first == nil {
				first = got
				continue
			}
			if len(got) != len(first) {
				t.Fatalf("length %d vs %d", len(got), len(first))
			}
			for i := range got {
				if !got[i].Equal(first[i]) {
					t.Fatalf("order differs at %d: %v vs %v", i, got[i], first[i])
				}
			}
		}
	}
}

// The cutoff fallback: below Cutoff the parallel entry points must take
// the sequential path (observable via a holds function that would be
// unsafe to call concurrently).
func TestParCutoffFallsBackSequential(t *testing.T) {
	d := deposet.Random(rand.New(rand.NewSource(3)), deposet.DefaultGen(4, 40))
	calls := 0 // racy if ever called from >1 goroutine
	holds := func(p, k int) bool { calls++; return true }
	if _, ok := PossiblyTruthPar(d, holds, Par{Workers: 8}); !ok {
		t.Fatal("constant-true not possible?")
	}
	if _, ok := DefinitelyTruthPar(d, holds, Par{Workers: 8}); !ok {
		t.Fatal("constant-true not definite?")
	}
	if calls == 0 {
		t.Fatal("holds never evaluated")
	}
}

// The conjunctive entry points route through the parallel engine; on a
// trace above the cutoff they must agree with the forced-sequential
// truth functions.
func TestConjunctiveAutoParallelLargeTrace(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := deposet.Random(r, deposet.DefaultGen(8, 3*DefaultParCutoff))
	truth := deposet.RandomTruth(r, d, 0.05)
	cj := conjFromTruth(truth)
	wantCut, wantOK := PossiblyTruth(d, func(p, k int) bool { return truth[p][k] })
	gotCut, gotOK := PossiblyConjunctive(d, cj)
	if gotOK != wantOK || (wantOK && !gotCut.Equal(wantCut)) {
		t.Fatalf("possibly: got %v,%v want %v,%v", gotCut, gotOK, wantCut, wantOK)
	}
	truth2 := deposet.RandomTruth(r, d, 0.6)
	cj2 := conjFromTruth(truth2)
	wantIvs, wantOK2 := DefinitelyTruth(d, func(p, k int) bool { return truth2[p][k] })
	gotIvs, gotOK2 := DefinitelyConjunctive(d, cj2)
	if gotOK2 != wantOK2 {
		t.Fatalf("definitely: got %v want %v", gotOK2, wantOK2)
	}
	if wantOK2 {
		for i := range wantIvs {
			if gotIvs[i] != wantIvs[i] {
				t.Fatalf("definitely witness differs at %d", i)
			}
		}
	}
}
