package detect

import (
	"fmt"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// SGSDStats reports the work done by a satisfying-global-sequence search.
type SGSDStats struct {
	NodesExplored int // B-true consistent cuts dequeued
	NodesQueued   int // B-true consistent cuts discovered
}

// MaxSGSDProcs bounds the process count for SGSD: each search node has up
// to 2ⁿ−1 successors (simultaneous advance), so wider systems are
// intractable by construction — that intractability is the content of the
// paper's Lemma 1.
const MaxSGSDProcs = 24

// SGSD solves Satisfying Global Sequence Detection (paper §4): does d
// have a global sequence every state of which satisfies b? If so it
// returns one such sequence.
//
// With simultaneous=true this is the paper's definition — a step may
// advance any non-empty set of processes at once, which matters for
// predicates like XOR that are false at every intermediate interleaving.
// With simultaneous=false steps advance a single process; the resulting
// sequences are exactly those enforceable by a control strategy (added
// causality cannot force two processes to step at the same instant), so
// the single-step variant is what general off-line control builds on.
//
// The search is breadth-first over B-true consistent cuts and visits each
// at most once; worst-case exponential in both the lattice size and (for
// simultaneous) the process count. Lemma 1: this problem is NP-complete,
// so no materially better general algorithm is expected.
func SGSD(d *deposet.Deposet, b predicate.Expr, simultaneous bool) (deposet.Sequence, bool) {
	seq, _, err := SGSDWithStats(d, b, simultaneous)
	if err != nil {
		panic(err) // process-count limit; callers needing an error use SGSDWithStats
	}
	return seq, seq != nil
}

// SGSDWithStats is SGSD, also reporting search-effort statistics.
func SGSDWithStats(d *deposet.Deposet, b predicate.Expr, simultaneous bool) (deposet.Sequence, SGSDStats, error) {
	n := d.NumProcs()
	var stats SGSDStats
	if simultaneous && n > MaxSGSDProcs {
		return nil, stats, fmt.Errorf("detect: SGSD limited to %d processes (got %d)", MaxSGSDProcs, n)
	}
	bottom := d.BottomCut()
	if !b.Eval(d, bottom) {
		return nil, stats, nil // ⊥ is on every sequence
	}
	top := d.TopCut()
	type node struct {
		cut    deposet.Cut
		parent string
	}
	visited := map[string]node{bottom.Key(): {bottom, ""}}
	queue := []deposet.Cut{bottom}
	stats.NodesQueued = 1

	reconstruct := func(key string) deposet.Sequence {
		var rev deposet.Sequence
		for key != "" {
			nd := visited[key]
			rev = append(rev, nd.cut)
			key = nd.parent
		}
		seq := make(deposet.Sequence, len(rev))
		for i := range rev {
			seq[i] = rev[len(rev)-1-i]
		}
		return seq
	}

	// advanceable processes from g
	adv := make([]int, 0, n)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		stats.NodesExplored++
		if g.Equal(top) {
			return reconstruct(g.Key()), stats, nil
		}
		gKey := g.Key()
		adv = adv[:0]
		for p := 0; p < n; p++ {
			if g[p]+1 < d.Len(p) {
				adv = append(adv, p)
			}
		}
		tryCut := func(h deposet.Cut) {
			key := h.Key()
			if _, seen := visited[key]; seen {
				return
			}
			if !d.Consistent(h) || !b.Eval(d, h) {
				return
			}
			visited[key] = node{h, gKey}
			queue = append(queue, h)
			stats.NodesQueued++
		}
		if simultaneous {
			for mask := 1; mask < 1<<len(adv); mask++ {
				h := g.Clone()
				for bit, p := range adv {
					if mask&(1<<bit) != 0 {
						h[p]++
					}
				}
				tryCut(h)
			}
		} else {
			for _, p := range adv {
				h := g.Clone()
				h[p]++
				tryCut(h)
			}
		}
	}
	return nil, stats, nil
}

// Feasible reports whether b is feasible for d (some global sequence
// satisfies b — the negation of the paper's "B is infeasible for S"),
// under single-step (interleaving) sequence semantics. This is the
// feasibility notion that coincides with controller existence: a control
// strategy cannot force simultaneous steps, so sequences requiring them
// are unenforceable (see TestDefinitelySimultaneityGap).
func Feasible(d *deposet.Deposet, b predicate.Expr) bool {
	_, ok := SGSD(d, b, false)
	return ok
}
