package detect

import (
	"math/rand"
	"testing"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// Detection on a mid-size trace below the parallel cutoff must stay
// within a constant handful of allocations — the candidate cursor, the
// wrapping closure and the witness cut — independent of trace size. The
// pin is deliberately loose (≤ 4 per call) so it survives compiler
// inlining changes while still catching a per-state or per-round
// allocation creeping into the scan.
func TestPossiblyConjunctiveAllocBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := deposet.Random(r, deposet.DefaultGen(8, 1200)) // below DefaultParCutoff
	cj := predicate.NewConjunction(8)
	for p := 0; p < 8; p++ {
		p := p
		cj.Add(p, "mid", func(_ *deposet.Deposet, k int) bool { return k >= d.Len(p)/2 })
	}
	var cut deposet.Cut
	var ok bool
	n := testing.AllocsPerRun(50, func() { cut, ok = PossiblyConjunctive(d, cj) })
	if !ok || cut == nil {
		t.Fatal("conjunction undetected; workload broken")
	}
	if n > 4 {
		t.Errorf("PossiblyConjunctive allocates %.1f per run, want ≤ 4", n)
	}
}

// The forced-parallel scan may allocate its worker loop and result but
// must not allocate per round or per state: the frontier scratch is
// pooled and clock rows live in the arena. The bound scales only with
// the worker count (goroutines, start channels), never with the trace.
func TestPossiblyTruthParAllocBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := deposet.Random(r, deposet.DefaultGen(8, 1200))
	holds := func(p, k int) bool { return k >= d.Len(p)/2 }
	var ok bool
	n := testing.AllocsPerRun(50, func() { _, ok = PossiblyTruthPar(d, holds, Par{Workers: 4, Cutoff: 1}) })
	if !ok {
		t.Fatal("conjunction undetected; workload broken")
	}
	if n > 32 {
		t.Errorf("PossiblyTruthPar allocates %.1f per run, want ≤ 32", n)
	}
}
