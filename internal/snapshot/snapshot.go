// Package snapshot implements the Chandy–Lamport distributed snapshot
// algorithm — reference [3] of the paper and the seminal tool of the
// passive observe-and-detect cycle that predicate control extends. It
// runs on the simulator's FIFO channels and records a global state:
// one local state per process plus the messages in flight on each
// channel.
//
// The classic guarantee, verified by this package's tests against the
// deposet theory: the recorded global state is a *consistent cut* of the
// traced computation, so any stable predicate true in the snapshot was
// true in some state the computation could have passed through.
package snapshot

import (
	"fmt"
	"sort"

	"predctl/internal/sim"
)

// marker is the algorithm's control message.
type marker struct{}

// payload wraps application messages so markers can share the channels.
type payload struct{ inner any }

// Record is one process's contribution to a snapshot.
type Record struct {
	Proc       int
	State      any           // application state at recording time
	StateIndex int           // traced state index at recording time (-1 untraced)
	Channels   map[int][]any // in-flight messages per incoming channel
}

// Collector accumulates the records of one snapshot run. The simulator
// runs one process at a time, so plain maps are safe.
type Collector struct {
	Records map[int]*Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{Records: map[int]*Record{}} }

// Cut returns the recorded global state as per-process traced state
// indices (usable with deposet.Cut on the run's trace).
func (c *Collector) Cut(n int) []int {
	cut := make([]int, n)
	for p, r := range c.Records {
		cut[p] = r.StateIndex
	}
	return cut
}

// InFlight returns all recorded channel messages, ordered by (to, from).
func (c *Collector) InFlight() []any {
	var procs []int
	for p := range c.Records {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	var out []any
	for _, p := range procs {
		r := c.Records[p]
		var froms []int
		for f := range r.Channels {
			froms = append(froms, f)
		}
		sort.Ints(froms)
		for _, f := range froms {
			out = append(out, r.Channels[f]...)
		}
	}
	return out
}

// Node wraps a simulated process with snapshot participation. All
// sends and receives must go through the node. State is the callback
// producing the process's recordable local state.
type Node struct {
	p         *sim.Proc
	collector *Collector
	state     func() any

	recording bool
	done      bool
	record    *Record
	markersIn map[int]bool // channels on which the marker has arrived
}

// NewNode wraps p. The kernel must be configured with FIFO channels;
// state() is called exactly once per snapshot, at recording time.
func NewNode(p *sim.Proc, collector *Collector, state func() any) *Node {
	return &Node{p: p, collector: collector, state: state}
}

// P exposes the wrapped process.
func (n *Node) P() *sim.Proc { return n.p }

// Send delivers an application payload through the snapshot layer.
func (n *Node) Send(to int, v any) {
	n.p.Send(to, payload{inner: v})
}

// Recv returns the next application message, transparently handling
// markers.
func (n *Node) Recv() (from int, v any) {
	for {
		f, raw := n.p.Recv()
		switch m := raw.(type) {
		case payload:
			if n.recording && !n.markersIn[f] {
				// In flight on channel f at the recorded cut.
				n.record.Channels[f] = append(n.record.Channels[f], m.inner)
			}
			return f, m.inner
		case marker:
			n.onMarker(f)
		default:
			panic(fmt.Sprintf("snapshot: unexpected payload %T", raw))
		}
	}
}

// RecvOrDone blocks for the next application message but returns
// ok=false as soon as this node's part of the snapshot completes. Use it
// to drive the tail of a run: the application keeps applying incoming
// messages — so its recordable state stays current — until all markers
// are in. Pre-marker messages are guaranteed delivered (and hence
// applied) before done is reported, because markers obey channel FIFO.
func (n *Node) RecvOrDone() (from int, v any, ok bool) {
	for {
		if n.done {
			return 0, nil, false
		}
		f, raw := n.p.Recv()
		switch m := raw.(type) {
		case payload:
			if n.recording && !n.markersIn[f] {
				n.record.Channels[f] = append(n.record.Channels[f], m.inner)
			}
			return f, m.inner, true
		case marker:
			n.onMarker(f)
		default:
			panic(fmt.Sprintf("snapshot: unexpected payload %T", raw))
		}
	}
}

// TryRecv is the non-blocking variant of Recv.
func (n *Node) TryRecv() (from int, v any, ok bool) {
	for {
		f, raw, got := n.p.TryRecv()
		if !got {
			return 0, nil, false
		}
		switch m := raw.(type) {
		case payload:
			if n.recording && !n.markersIn[f] {
				n.record.Channels[f] = append(n.record.Channels[f], m.inner)
			}
			return f, m.inner, true
		case marker:
			n.onMarker(f)
		default:
			panic(fmt.Sprintf("snapshot: unexpected payload %T", raw))
		}
	}
}

// Initiate starts a snapshot at this node (any node may initiate; the
// algorithm tolerates concurrent initiations of the same snapshot).
func (n *Node) Initiate() {
	n.recordNow(n.p.StateIndex())
}

// Done reports whether this node's part of the snapshot is complete
// (markers received on every incoming channel).
func (n *Node) Done() bool { return n.done }

// recordNow records the local state and emits markers on all outgoing
// channels (the "record and flood" step of Chandy–Lamport). stateIndex
// is the traced state the recording belongs to: the current state when
// initiating, but the state *before* the receive event when triggered by
// a marker — the marker's own reception must lie after the cut, or the
// marker edge itself would make the cut inconsistent.
func (n *Node) recordNow(stateIndex int) {
	if n.recording || n.done {
		return
	}
	n.recording = true
	n.markersIn = map[int]bool{}
	n.record = &Record{
		Proc:       n.p.ID(),
		State:      n.state(),
		StateIndex: stateIndex,
		Channels:   map[int][]any{},
	}
	n.collector.Records[n.p.ID()] = n.record
	for q := 0; q < n.p.N(); q++ {
		if q != n.p.ID() {
			n.p.Send(q, marker{})
		}
	}
	n.checkDone()
}

func (n *Node) onMarker(from int) {
	// First marker triggers recording; the cut sits just before this
	// receive event.
	if idx := n.p.StateIndex(); idx >= 0 {
		n.recordNow(idx - 1)
	} else {
		n.recordNow(-1)
	}
	n.markersIn[from] = true
	n.checkDone()
}

func (n *Node) checkDone() {
	if len(n.markersIn) == n.p.N()-1 {
		n.done = true
		n.recording = false
	}
}
