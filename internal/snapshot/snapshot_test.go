package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/sim"
)

// bankRun simulates n accounts transferring money at random, initiates a
// snapshot from node 0 mid-run, and returns the collector plus the trace.
func bankRun(t testing.TB, n, transfers int, seed int64) (*Collector, *sim.Trace, int) {
	t.Helper()
	const initial = 100
	col := NewCollector()
	k := sim.New(sim.Config{
		Procs: n,
		Delay: sim.UniformDelay(1, 9),
		Seed:  seed,
		Trace: true,
		FIFO:  true,
	})
	bodies := make([]func(*sim.Proc), n)
	for i := range bodies {
		i := i
		bodies[i] = func(p *sim.Proc) {
			balance := initial
			p.Init("balance", balance)
			node := NewNode(p, col, func() any { return balance })
			recvOne := func() {
				from, v, ok := node.TryRecv()
				_ = from
				if ok {
					balance += v.(int)
					p.Set("balance", balance)
				}
			}
			for step := 0; step < transfers; step++ {
				if i == 0 && step == transfers/2 {
					node.Initiate()
				}
				if amt := p.Rand().Intn(balance/2 + 1); amt > 0 {
					to := p.Rand().Intn(n - 1)
					if to >= i {
						to++
					}
					balance -= amt
					p.Set("balance", balance)
					node.Send(to, amt)
				}
				p.Work(sim.Time(1 + p.Rand().Intn(5)))
				recvOne()
			}
			// Keep applying messages until the snapshot completes (so the
			// recorded state is current), then drain stragglers.
			for {
				_, v, ok := node.RecvOrDone()
				if !ok {
					break
				}
				balance += v.(int)
				p.Set("balance", balance)
			}
			for {
				_, v, ok := node.TryRecv()
				if !ok {
					break
				}
				balance += v.(int)
				p.Set("balance", balance)
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return col, tr, n * initial
}

func TestMoneyConservation(t *testing.T) {
	col, _, total := bankRun(t, 4, 30, 7)
	if len(col.Records) != 4 {
		t.Fatalf("records = %d", len(col.Records))
	}
	sum := 0
	for _, r := range col.Records {
		sum += r.State.(int)
	}
	for _, v := range col.InFlight() {
		sum += v.(int)
	}
	if sum != total {
		t.Fatalf("snapshot total = %d, want %d", sum, total)
	}
}

func TestSnapshotCutIsConsistent(t *testing.T) {
	col, tr, _ := bankRun(t, 4, 30, 11)
	cut := deposet.Cut(col.Cut(4))
	if !tr.D.InRange(cut) {
		t.Fatalf("cut out of range: %v", cut)
	}
	if !tr.D.Consistent(cut) {
		t.Fatalf("Chandy–Lamport cut %v is not consistent", cut)
	}
	// The recorded balances match the trace variables at the cut.
	for p, r := range col.Records {
		v, ok := tr.D.Var(deposet.StateID{P: p, K: cut[p]}, "balance")
		if !ok || v != r.State.(int) {
			t.Fatalf("P%d: trace balance %d vs recorded %d", p, v, r.State.(int))
		}
	}
}

// Property: over many seeds and sizes, the snapshot cut is consistent
// and money is conserved — Chandy–Lamport meets the deposet theory.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%4)
		col, tr, total := bankRun(t, n, 20, seed)
		if len(col.Records) != n {
			return false
		}
		sum := 0
		for _, r := range col.Records {
			sum += r.State.(int)
		}
		for _, v := range col.InFlight() {
			sum += v.(int)
		}
		if sum != total {
			return false
		}
		return tr.D.Consistent(deposet.Cut(col.Cut(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFIFOChannelOrdering(t *testing.T) {
	// Adversarial decreasing delays: without FIFO the later message would
	// overtake (see sim's TestRecvOrderIsArrivalOrder); with FIFO it may
	// not.
	step := 0
	k := sim.New(sim.Config{
		Procs: 2,
		FIFO:  true,
		Delay: func(from, to int, _ *rand.Rand) sim.Time {
			step++
			if step == 1 {
				return 10
			}
			return 2
		},
	})
	var got []string
	_, err := k.Run(
		func(p *sim.Proc) {
			p.Send(1, "first")
			p.Send(1, "second")
		},
		func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				_, v := p.Recv()
				got = append(got, v.(string))
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "first" || got[1] != "second" {
		t.Fatalf("FIFO violated: %v", got)
	}
}

func TestNodeBlockingRecvHandlesMarkers(t *testing.T) {
	col := NewCollector()
	k := sim.New(sim.Config{Procs: 2, FIFO: true, Delay: sim.ConstantDelay(4), Trace: true})
	_, err := k.Run(
		func(p *sim.Proc) {
			n := NewNode(p, col, func() any { return "a" })
			n.Initiate()
			n.Send(1, "payload")
			for !n.Done() {
				n.RecvOrDone()
			}
		},
		func(p *sim.Proc) {
			n := NewNode(p, col, func() any { return "b" })
			// Blocking Recv must transparently swallow the marker and
			// still deliver the application payload.
			from, v := n.Recv()
			if from != 0 || v != "payload" {
				panic("wrong message")
			}
			for !n.Done() {
				n.RecvOrDone()
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Records) != 2 {
		t.Fatalf("records = %d", len(col.Records))
	}
	// The payload was sent after P0 recorded and received after P1
	// recorded (the marker went first on the FIFO channel), so no channel
	// state captures it.
	if got := len(col.InFlight()); got != 0 {
		t.Fatalf("in-flight = %d", got)
	}
}
