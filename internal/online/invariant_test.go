package online

import (
	"strings"
	"testing"

	"predctl/internal/obs"
)

// instrumentedRun executes the CS workload with a journal and registry
// attached and returns both for invariant checking.
func instrumentedRun(t *testing.T, n, rounds int, seed int64) (*obs.Journal, *obs.Registry) {
	t.Helper()
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	cfg := Config{N: n, Delay: 5, Seed: seed, Journal: j, Reg: reg}
	if _, _, err := Run(cfg, csWorkload(n, rounds, 20, 200)); err != nil {
		t.Fatal(err)
	}
	return j, reg
}

// TestInvariantsHoldOnHealthyRuns: the obs checker accepts every
// example workload — the paper's bounds hold on the real protocol.
func TestInvariantsHoldOnHealthyRuns(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		j, reg := instrumentedRun(t, n, 8, int64(40+n))
		var rep obs.Report
		rep.CheckResponses(reg.Histogram("predctl_response_vtime"), 5, 20, j)
		rep.CheckScapegoatChain(j)
		if err := rep.Err(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rep.Checked) != 2 {
			t.Fatalf("n=%d: ran %d checks, want 2", n, len(rep.Checked))
		}
	}
}

// TestFaultTripsResponseInvariant injects the test-only grant delay —
// a deliberately broken handoff that works past the window before
// granting — and requires the checker to fail loudly, with journal
// context attached.
func TestFaultTripsResponseInvariant(t *testing.T) {
	faultDelayGrant = 100 // >> Emax: pushes handoffs past 2T+Emax
	defer func() { faultDelayGrant = 0 }()

	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	cfg := Config{N: 3, Delay: 5, Seed: 11, Journal: j, Reg: reg}
	if _, stats, err := Run(cfg, csWorkload(3, 10, 20, 50)); err != nil {
		t.Fatal(err)
	} else if stats.Handoffs == 0 {
		t.Fatal("workload produced no handoffs; fault cannot manifest")
	}

	var rep obs.Report
	rep.CheckResponses(reg.Histogram("predctl_response_vtime"), 5, 20, j)
	if rep.Ok() {
		t.Fatal("delayed-grant fault not detected")
	}
	v := rep.Violations[0]
	if !strings.Contains(v.Detail, "allowed {0} ∪ [10, 30]") {
		t.Errorf("violation detail lacks the bound: %q", v.Detail)
	}
	if len(v.Events) == 0 {
		t.Error("violation carries no journal slice")
	}
	if !strings.Contains(rep.Err().Error(), "invariant") {
		t.Errorf("Err() not descriptive: %v", rep.Err())
	}

	// The chain itself is still sound — only the timing bound broke.
	var chain obs.Report
	chain.CheckScapegoatChain(j)
	if err := chain.Err(); err != nil {
		t.Fatalf("chain should survive a timing fault: %v", err)
	}
}

// TestJournalRecordsProtocolEvents: the journal of an instrumented run
// contains the control-message and scapegoat-transfer annotations the
// checker and the Chrome exporter consume.
func TestJournalRecordsProtocolEvents(t *testing.T) {
	j, reg := instrumentedRun(t, 3, 6, 9)
	var inits, acquires, ctl int
	for _, e := range j.Events() {
		if e.Kind != obs.KindControl {
			continue
		}
		switch {
		case e.Name == obs.EvScapegoatInit:
			inits++
		case e.Name == obs.EvScapegoatAcquire:
			acquires++
		case strings.HasPrefix(e.Name, obs.EvCtlPrefix):
			ctl++
		}
	}
	if inits != 1 {
		t.Errorf("scapegoat.init count = %d, want 1", inits)
	}
	handoffs := reg.Counter("predctl_handoffs_total").Value()
	if int64(acquires) != handoffs {
		t.Errorf("journal acquires = %d, registry handoffs = %d", acquires, handoffs)
	}
	if msgs := reg.Counter("predctl_ctl_messages_total").Value(); int64(ctl) != msgs {
		t.Errorf("journal ctl events = %d, registry ctl messages = %d", ctl, msgs)
	}
	if obs.ChainLength(j) != handoffs {
		t.Errorf("ChainLength = %d, want %d", obs.ChainLength(j), handoffs)
	}
	if got := obs.BlockedTime(j); len(got) == 0 {
		t.Error("no blocked time recorded; controllers block on recv constantly")
	}
}
