package online

import "fmt"

// machine.go factors the Figure 3 anti-token controller out of the sim
// kernel into a sans-IO state machine: the Machine holds the protocol
// state (scapegoat role, tentative broadcast responders, deferred and
// pending requests) and expresses every effect — sending a control
// message, granting the co-located application permission to go false —
// through the Host interface. The simulator controller in this package
// is one Host implementation; the TCP node daemon in internal/node is
// the other. Both drive the *same* protocol code, so the properties the
// sim-based tests establish (single scapegoat chain, every consistent
// cut satisfies B) carry over to the networked runtime by construction.
//
// The machine works in application-index space 0..n-1: "controller i"
// is the controller co-located with application process i. Hosts that
// embed controllers in a larger process space (the simulator uses
// processes n..2n-1) translate at the boundary.

// MsgKind is a controller-to-controller protocol message kind.
type MsgKind uint8

const (
	// MsgReq asks the receiver to take the scapegoat role.
	MsgReq MsgKind = iota
	// MsgAck accepts the role (tentatively, under broadcast).
	MsgAck
	// MsgConfirm settles a broadcast handoff on one responder.
	MsgConfirm
	// MsgCancel releases a tentative broadcast responder.
	MsgCancel
)

var msgKindNames = [...]string{"req", "ack", "confirm", "cancel"}

func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Host is the effect interface a Machine drives. Calls are made from
// within the machine's input methods, on the caller's goroutine; hosts
// serialize machine inputs (one goroutine, or a lock) and the machine
// never calls back into itself.
type Host interface {
	// SendCtl transmits a protocol message to controller `to`
	// (application-index space). gen is the sender's view of the
	// anti-token generation, piggybacked so acquisitions can be totally
	// ordered without trusting cross-node clocks.
	SendCtl(to int, k MsgKind, gen uint64)
	// Grant tells the co-located application its predicate may go
	// false. The machine has already marked itself locally false.
	Grant()
	// Acquired reports that this controller took the anti-token from
	// controller `from`, as generation gen (1-based; the initial holder
	// is generation 0). Hosts journal this for the chain invariant.
	Acquired(from int, gen uint64)
	// Released reports that this controller handed the anti-token to
	// controller `to` (the releasing side of a completed handoff).
	Released(to int)
	// PickTarget chooses the handoff target for a non-broadcast req:
	// any controller index other than this one. Hosts supply the
	// randomness so sim runs stay deterministic.
	PickTarget() int
}

// Machine is the Figure 3 on-line control strategy for one controller,
// independent of any transport. Feed it inputs via OnMayFalse /
// OnNowTrue / OnCtl; it reacts through the Host.
type Machine struct {
	host      Host
	id        int
	n         int
	broadcast bool

	scapegoat  bool
	localTrue  bool
	gen        uint64 // anti-token generation while scapegoat
	waitingAck bool
	wantGrant  bool
	tentative  int       // broadcast: acks issued, awaiting confirm/cancel
	pending    []request // reqs awaiting our next true period
	deferred   []request // reqs received while we were waiting for an ack
}

// request is a parked req: the requesting controller and the anti-token
// generation its req carried. The generation travels with the request —
// answering a parked req with our own (stale) generation would mint a
// duplicate generation and fork the chain the checkers verify.
type request struct {
	from int
	gen  uint64
}

// NewMachine returns a controller machine for application process id of
// n. scapegoat marks the initial anti-token holder (generation 0);
// localTrue is the initial truth of the local predicate (the initial
// scapegoat must start true).
func NewMachine(id, n int, scapegoat, localTrue, broadcast bool, h Host) *Machine {
	if scapegoat && !localTrue {
		panic("online: initial scapegoat must start with its predicate true")
	}
	return &Machine{host: h, id: id, n: n, broadcast: broadcast, scapegoat: scapegoat, localTrue: localTrue}
}

// Scapegoat reports whether this controller currently holds the
// anti-token.
func (m *Machine) Scapegoat() bool { return m.scapegoat }

// Generation returns the anti-token generation this controller last
// held (meaningful while Scapegoat).
func (m *Machine) Generation() uint64 { return m.gen }

// OnMayFalse handles the co-located application asking to let its
// local predicate go false.
func (m *Machine) OnMayFalse() {
	m.wantGrant = true
	m.maybeProceed()
}

// OnNowTrue handles the co-located application reporting its local
// predicate holds again.
func (m *Machine) OnNowTrue() {
	m.localTrue = true
	pending := m.pending
	m.pending = nil
	for _, q := range pending {
		m.handleReq(q.from, q.gen)
	}
}

// OnCtl handles a protocol message from controller `from` carrying the
// sender's anti-token generation.
func (m *Machine) OnCtl(from int, k MsgKind, gen uint64) {
	switch k {
	case MsgReq:
		if m.waitingAck {
			// Answering now could hand our own anti-token away while
			// another one is already travelling to us; defer.
			m.deferred = append(m.deferred, request{from, gen})
			return
		}
		m.handleReq(from, gen)
	case MsgAck:
		if !m.waitingAck {
			// A later ack of an already-completed broadcast round:
			// release the tentative responder.
			if m.broadcast {
				m.host.SendCtl(from, MsgCancel, m.gen)
			}
			return
		}
		m.waitingAck = false
		m.scapegoat = false
		m.host.Released(from)
		if m.broadcast {
			m.host.SendCtl(from, MsgConfirm, m.gen)
		}
		m.grant()
		deferred := m.deferred
		m.deferred = m.deferred[:0]
		for _, q := range deferred {
			m.handleReq(q.from, q.gen)
		}
	case MsgConfirm:
		m.scapegoat = true
		m.gen = gen + 1
		m.host.Acquired(from, m.gen)
		m.tentative--
		m.maybeProceed()
	case MsgCancel:
		m.tentative--
		m.maybeProceed()
	default:
		panic(fmt.Sprintf("online: controller received unexpected message kind %v", k))
	}
}

// maybeProceed advances a waiting mayFalse request whenever the state
// allows: a tentative responder stays true until released; a scapegoat
// must first hand the anti-token off; anyone else is granted at once.
func (m *Machine) maybeProceed() {
	if !m.wantGrant || m.tentative > 0 || m.waitingAck {
		return
	}
	if !m.scapegoat {
		m.grant()
		return
	}
	m.waitingAck = true
	if m.broadcast {
		for t := 0; t < m.n; t++ {
			if t != m.id {
				m.host.SendCtl(t, MsgReq, m.gen)
			}
		}
		return
	}
	t := m.host.PickTarget()
	if t == m.id || t < 0 || t >= m.n {
		panic(fmt.Sprintf("online: PickTarget returned invalid controller %d (self %d of %d)", t, m.id, m.n))
	}
	m.host.SendCtl(t, MsgReq, m.gen)
}

// grant marks the local predicate false and notifies the host.
func (m *Machine) grant() {
	m.localTrue = false
	m.wantGrant = false
	m.host.Grant()
}

// handleReq answers a scapegoat request from controller j whose
// anti-token generation is gen.
func (m *Machine) handleReq(j int, gen uint64) {
	if !m.localTrue {
		m.pending = append(m.pending, request{j, gen})
		return
	}
	if m.broadcast {
		// Tentative: hold ourselves true until the requester confirms or
		// cancels; the role transfers only with the confirm.
		m.tentative++
		m.host.SendCtl(j, MsgAck, gen)
		return
	}
	m.scapegoat = true
	m.gen = gen + 1
	m.host.Acquired(j, m.gen)
	m.host.SendCtl(j, MsgAck, m.gen)
}
