package online

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/sim"
)

// csWorkload builds N app bodies doing `rounds` critical sections with
// l_i = ¬cs_i, and returns them with the recorded traces verified by the
// caller.
func csWorkload(n, rounds int, csTime, thinkMax sim.Time) []func(*Guard) {
	apps := make([]func(*Guard), n)
	for i := range apps {
		apps[i] = func(g *Guard) {
			p := g.P()
			p.Init("cs", 0)
			for r := 0; r < rounds; r++ {
				p.Work(1 + sim.Time(p.Rand().Int63n(int64(thinkMax))))
				g.RequestFalse()
				p.Set("cs", 1)
				p.Work(csTime)
				p.Set("cs", 0)
				g.NowTrue()
			}
		}
	}
	return apps
}

// allInCS reports whether the traced computation admits a consistent cut
// with every application process inside its critical section.
func allInCS(tr *sim.Trace, n int) (deposet.Cut, bool) {
	return detect.PossiblyTruth(tr.D, func(p, k int) bool {
		if p >= n {
			return true // controllers: no conjunct
		}
		v, ok := tr.D.Var(deposet.StateID{P: p, K: k}, "cs")
		return ok && v == 1
	})
}

func TestScapegoatMaintainsPredicate(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		cfg := Config{N: n, Delay: 10, Seed: 42, Trace: true}
		tr, stats, err := Run(cfg, csWorkload(n, 6, 20, 50))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cut, bad := allInCS(tr, n); bad {
			t.Fatalf("n=%d: all processes in CS at %v", n, cut)
		}
		if stats.Requests != n*6 {
			t.Errorf("n=%d: requests = %d", n, stats.Requests)
		}
		if stats.CtlMessages != 2*stats.Handoffs {
			t.Errorf("n=%d: %d control messages for %d handoffs; want exactly 2 per handoff",
				n, stats.CtlMessages, stats.Handoffs)
		}
	}
}

func TestUncontrolledViolates(t *testing.T) {
	// Sanity for the detector: without control and with long overlapping
	// CS periods, the all-in-CS cut must be possible.
	n := 3
	k := sim.New(sim.Config{Procs: n, Delay: sim.ConstantDelay(1), Seed: 7, Trace: true})
	bodies := make([]func(*sim.Proc), n)
	for i := range bodies {
		bodies[i] = func(p *sim.Proc) {
			p.Init("cs", 0)
			p.Set("cs", 1)
			p.Work(100)
			p.Set("cs", 0)
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := detect.PossiblyTruth(tr.D, func(p, kk int) bool {
		v, ok := tr.D.Var(deposet.StateID{P: p, K: kk}, "cs")
		return ok && v == 1
	}); !bad {
		t.Fatal("uncontrolled run should admit the all-in-CS cut")
	}
}

func TestResponseTimeBounds(t *testing.T) {
	// Paper §6: response time for a scapegoat handoff lies in
	// [2T, 2T+Emax]; other entries are immediate (local round trip).
	const T, E = 25, 40
	cfg := Config{N: 4, Delay: T, Seed: 3, Trace: false}
	_, stats, err := Run(cfg, csWorkload(4, 8, E, 200))
	if err != nil {
		t.Fatal(err)
	}
	sawHandoff := false
	for _, r := range stats.Responses {
		switch {
		case r == 0: // non-scapegoat entry
		case r >= 2*T && r <= 2*T+E:
			sawHandoff = true
		default:
			t.Fatalf("response %d outside {0} ∪ [2T, 2T+Emax] = [%d, %d]", r, 2*T, 2*T+E)
		}
	}
	if !sawHandoff {
		t.Error("no handoff observed; workload too light to be meaningful")
	}
	if stats.MaxResponse() > 2*T+E {
		t.Errorf("max response %d > 2T+Emax", stats.MaxResponse())
	}
}

func TestBroadcastVariant(t *testing.T) {
	const T, E = 25, 40
	cfgU := Config{N: 5, Delay: T, Seed: 11, Trace: true}
	trU, statsU, err := Run(cfgU, csWorkload(5, 6, E, 100))
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfgU
	cfgB.Broadcast = true
	trB, statsB, err := Run(cfgB, csWorkload(5, 6, E, 100))
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range map[string]*sim.Trace{"unicast": trU, "broadcast": trB} {
		if cut, bad := allInCS(tr, 5); bad {
			t.Fatalf("%s: all processes in CS at %v", name, cut)
		}
	}
	if statsB.Handoffs > 0 && statsU.Handoffs > 0 && statsB.CtlMessages <= statsU.CtlMessages {
		t.Logf("note: broadcast used %d messages vs unicast %d (usually more)",
			statsB.CtlMessages, statsU.CtlMessages)
	}
	if statsB.CtlMessages < statsB.Handoffs {
		t.Error("broadcast accounting inconsistent")
	}
}

func TestAppMessaging(t *testing.T) {
	// Guard.Send/Recv relay application messages across nodes, even while
	// a RequestFalse is waiting for its grant.
	cfg := Config{N: 2, Delay: 5, Seed: 1, Trace: true}
	_, _, err := Run(cfg, []func(*Guard){
		func(g *Guard) {
			g.Send(1, "hello")
			g.RequestFalse()
			g.P().Set("cs", 1)
			g.P().Set("cs", 0)
			g.NowTrue()
			from, payload := g.Recv()
			if from != 1 || payload != "world" {
				panic("bad app message")
			}
		},
		func(g *Guard) {
			from, payload := g.Recv()
			if from != 0 || payload != "hello" {
				panic("bad app message")
			}
			g.Send(0, "world")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(Config{N: 1}, make([]func(*Guard), 1)); err == nil {
		t.Error("N=1 accepted")
	}
	if _, _, err := Run(Config{N: 3}, make([]func(*Guard), 2)); err == nil {
		t.Error("body count mismatch accepted")
	}
	if _, _, err := Run(Config{N: 2, Scapegoat: 5}, make([]func(*Guard), 2)); err == nil {
		t.Error("bad scapegoat index accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, sim.Time) {
		cfg := Config{N: 4, Delay: 7, Seed: 123, Trace: false}
		_, stats, err := Run(cfg, csWorkload(4, 5, 11, 60))
		if err != nil {
			t.Fatal(err)
		}
		return stats.CtlMessages, stats.MaxResponse()
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", m1, r1, m2, r2)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{Responses: []sim.Time{0, 10, 4}}
	if s.MaxResponse() != 10 {
		t.Error("MaxResponse wrong")
	}
	if got := s.MeanResponse(); got < 4.6 || got > 4.7 {
		t.Errorf("MeanResponse = %v", got)
	}
	empty := &Stats{}
	if empty.MaxResponse() != 0 || empty.MeanResponse() != 0 {
		t.Error("empty stats wrong")
	}
}

// Property: across many seeds, delays and fan-ins, the predicate "at
// least one process outside its CS" is maintained on every trace and no
// run deadlocks (Theorem 4).
func TestScapegoatSafetyLivenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%4)
		broadcast := seed%2 == 0
		cfg := Config{
			N:         n,
			Delay:     sim.Time(1 + uint64(seed>>8)%30),
			Seed:      seed,
			Trace:     true,
			Broadcast: broadcast,
			Scapegoat: int(uint64(seed>>16) % uint64(n)),
		}
		tr, _, err := Run(cfg, csWorkload(n, 4, sim.Time(1+uint64(seed>>24)%40), 60))
		if err != nil {
			if strings.Contains(err.Error(), "deadlock") {
				t.Logf("seed %d: deadlock", seed)
			} else {
				t.Logf("seed %d: %v", seed, err)
			}
			return false
		}
		if cut, bad := allInCS(tr, n); bad {
			t.Logf("seed %d: violation at %v", seed, cut)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTheorem3AssumptionA1Necessary demonstrates why the paper needs
// assumption A1 (no blocking while false): a process that blocks inside
// its critical section waiting for a message from a process that cannot
// proceed wedges the strategy — the deadlock the impossibility proof of
// Theorem 3 builds on. The simulator detects and reports it rather than
// hanging.
func TestTheorem3AssumptionA1Necessary(t *testing.T) {
	cfg := Config{N: 2, Delay: 5, Seed: 1}
	_, _, err := Run(cfg, []func(*Guard){
		func(g *Guard) {
			g.RequestFalse()
			g.P().Set("cs", 1)
			g.Recv() // blocks while false, awaiting the other process (violates A1)
			g.P().Set("cs", 0)
			g.NowTrue()
		},
		func(g *Guard) {
			// Receives the anti-token first (P0's handoff), then wants to
			// go false before ever sending; with P0 false and blocked,
			// the anti-token has nowhere to go.
			g.P().Work(50)
			g.RequestFalse()
			g.Send(0, "unblock")
			g.NowTrue()
		},
	})
	var dl sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected deadlock under A1 violation, got %v", err)
	}
}

// TestAssumptionA2Matters: a process whose predicate stays false forever
// (violating A2) pins pending handoff requests indefinitely; if it is the
// only possible successor, the system wedges.
func TestTheorem3AssumptionA2Necessary(t *testing.T) {
	cfg := Config{N: 2, Delay: 5, Seed: 2}
	_, _, err := Run(cfg, []func(*Guard){
		func(g *Guard) { // scapegoat wants to go false
			g.P().Work(10)
			g.RequestFalse()
			g.NowTrue()
		},
		func(g *Guard) { // goes false and never comes back (violates A2)
			g.RequestFalse()
			g.P().Work(1000)
		},
	})
	var dl sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected deadlock under A2 violation, got %v", err)
	}
}
