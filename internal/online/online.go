// Package online implements the paper's on-line disjunctive predicate
// control (Figure 3): maintain B = l1 ∨ … ∨ ln over a computation as it
// runs, without knowing it in advance.
//
// Theorem 3 shows the unrestricted problem is unsolvable, so the
// strategy assumes A1 (no process blocks while its local predicate is
// false) and A2 (local predicates hold in final states). One controller
// is the scapegoat — the holder of an "anti-token", a liability rather
// than a privilege: its process must stay true until another controller,
// currently true, agrees to take the role over. The scapegoat requests
// the handoff with req, the successor replies ack (possibly deferred
// until its process is true again), and only then may the old
// scapegoat's process go false. Specialized to critical sections this
// solves (n−1)-mutual exclusion with 2 control messages per handoff and
// handoff response time in [2T, 2T+Emax] (paper §6).
//
// The broadcast variant (paper §6, Evaluation) trades messages for
// latency: the scapegoat asks every controller at once and proceeds on
// the first ack. A subtlety the paper does not spell out: letting every
// responder keep the scapegoat role is safe in real time but NOT under
// the paper's own deposet semantics — with several independent scapegoat
// chains, a rotation of ack causalities admits a *consistent cut* in
// which every process is false (found by the property tests in this
// package). The implementation therefore completes a broadcast handoff
// with a confirm/cancel round: responders hold themselves true while
// tentative, exactly one receives confirm and inherits the anti-token,
// and the rest are released, preserving the single chain that makes
// every consistent cut satisfy B.
//
// Controllers run as daemon processes on the sim kernel, co-located with
// their application process (zero-delay local channel), exactly as the
// paper's "control system is a distinct distributed system" prescribes.
package online

import (
	"fmt"
	"math/rand"

	"predctl/internal/sim"
)

// kind discriminates protocol payloads.
type kind int

const (
	kindMayFalse kind = iota // app → own controller: request to go false
	kindGrant                // controller → own app: permission
	kindNowTrue              // app → own controller: local predicate true again
	kindReq                  // controller → controller: take the scapegoat role
	kindAck                  // controller → controller: role taken (tentatively, for broadcast)
	kindConfirm              // controller → controller: broadcast winner keeps the role
	kindCancel               // controller → controller: broadcast loser is released
	kindApp                  // app → app payload (guard-wrapped)
)

type envelope struct {
	kind    kind
	payload any
}

// Stats aggregates a run's control overhead. All fields are written
// under the simulator's single-active-process discipline.
type Stats struct {
	CtlMessages int        // req + ack messages between controllers
	Handoffs    int        // scapegoat role transfers
	Requests    int        // RequestFalse calls
	Responses   []sim.Time // per-request latency (0 for non-scapegoats)
}

// MaxResponse returns the largest observed request latency.
func (s *Stats) MaxResponse() sim.Time {
	var m sim.Time
	for _, r := range s.Responses {
		if r > m {
			m = r
		}
	}
	return m
}

// MeanResponse returns the average request latency.
func (s *Stats) MeanResponse() float64 {
	if len(s.Responses) == 0 {
		return 0
	}
	var t sim.Time
	for _, r := range s.Responses {
		t += r
	}
	return float64(t) / float64(len(s.Responses))
}

// Config parameterizes a controlled system.
type Config struct {
	N         int      // application processes
	Delay     sim.Time // message delay T between distinct nodes
	Seed      int64
	Trace     bool
	Broadcast bool // use the broadcast variant
	Scapegoat int  // index of the initial scapegoat's process (init(i))
	MaxEvents int
	// InitFalse marks processes whose local predicate is false at start
	// (e.g. after_e before the event e has happened). Such a process
	// answers scapegoat requests only once it reports NowTrue, and it
	// cannot be the initial scapegoat. nil means all start true.
	InitFalse []bool
}

// Run executes the application bodies under on-line control and returns
// the trace (apps are processes 0..N-1, controllers N..2N-1), statistics,
// and any simulation failure. Application processes must satisfy A1/A2:
// start true, end true, and never block while false.
func Run(cfg Config, apps []func(*Guard)) (*sim.Trace, *Stats, error) {
	if cfg.N < 2 {
		// Theorem 3 territory: with one process there is no one to hand
		// the anti-token to, so control degenerates to "never go false".
		return nil, nil, fmt.Errorf("online: need at least 2 processes, got %d", cfg.N)
	}
	if len(apps) != cfg.N {
		return nil, nil, fmt.Errorf("online: %d app bodies for %d processes", len(apps), cfg.N)
	}
	if cfg.Scapegoat < 0 || cfg.Scapegoat >= cfg.N {
		return nil, nil, fmt.Errorf("online: initial scapegoat %d out of range", cfg.Scapegoat)
	}
	if cfg.InitFalse != nil {
		if len(cfg.InitFalse) != cfg.N {
			return nil, nil, fmt.Errorf("online: InitFalse has %d entries for %d processes", len(cfg.InitFalse), cfg.N)
		}
		if cfg.InitFalse[cfg.Scapegoat] {
			return nil, nil, fmt.Errorf("online: initial scapegoat %d starts false", cfg.Scapegoat)
		}
	}
	n := cfg.N
	delay := func(from, to int, _ *rand.Rand) sim.Time {
		if from%n == to%n { // app ↔ its controller: local channel
			return 0
		}
		return cfg.Delay
	}
	stats := &Stats{}
	k := sim.New(sim.Config{
		Procs:     2 * n,
		Delay:     delay,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		MaxEvents: cfg.MaxEvents,
	})
	bodies := make([]func(*sim.Proc), 2*n)
	for i := 0; i < n; i++ {
		i := i
		bodies[i] = func(p *sim.Proc) {
			g := &Guard{p: p, n: n, stats: stats}
			apps[i](g)
		}
		bodies[n+i] = func(p *sim.Proc) {
			c := &controller{
				p:         p,
				n:         n,
				scapegoat: i == cfg.Scapegoat,
				localTrue: cfg.InitFalse == nil || !cfg.InitFalse[i],
				broadcast: cfg.Broadcast,
				stats:     stats,
			}
			c.run()
		}
	}
	tr, err := k.Run(bodies...)
	return tr, stats, err
}

// Guard is the application-side handle: it talks to the co-located
// controller and relays application messages.
type Guard struct {
	p     *sim.Proc
	n     int
	stats *Stats
	inbox []appMsg // app messages received while waiting for a grant
}

type appMsg struct {
	from    int
	payload any
}

// P exposes the underlying simulated process (Work, Set, Now, Rand).
func (g *Guard) P() *sim.Proc { return g.p }

// ID returns the application process index.
func (g *Guard) ID() int { return g.p.ID() }

// N returns the number of application processes.
func (g *Guard) N() int { return g.n }

func (g *Guard) ctl() int { return g.p.ID() + g.n }

// RequestFalse blocks until the controller permits the local predicate
// to become false (A1 is the caller's obligation: do not block while
// false). It returns the latency of the request.
func (g *Guard) RequestFalse() sim.Time {
	start := g.p.Now()
	g.p.Send(g.ctl(), envelope{kind: kindMayFalse})
	for {
		from, raw := g.p.Recv()
		env := raw.(envelope)
		switch env.kind {
		case kindGrant:
			d := g.p.Now() - start
			g.stats.Requests++
			g.stats.Responses = append(g.stats.Responses, d)
			return d
		case kindApp:
			g.inbox = append(g.inbox, appMsg{from, env.payload})
		default:
			panic(fmt.Sprintf("online: app received unexpected control message %v", env.kind))
		}
	}
}

// NowTrue notifies the controller that the local predicate holds again.
func (g *Guard) NowTrue() {
	g.p.Send(g.ctl(), envelope{kind: kindNowTrue})
}

// Send delivers an application payload to application process `to`.
func (g *Guard) Send(to int, payload any) {
	g.p.Send(to, envelope{kind: kindApp, payload: payload})
}

// Recv returns the next application message.
func (g *Guard) Recv() (from int, payload any) {
	if len(g.inbox) > 0 {
		m := g.inbox[0]
		g.inbox = g.inbox[1:]
		return m.from, m.payload
	}
	for {
		from, raw := g.p.Recv()
		env := raw.(envelope)
		if env.kind == kindApp {
			return from, env.payload
		}
		panic(fmt.Sprintf("online: app received unexpected control message %v", env.kind))
	}
}

// controller runs the paper's Figure 3 strategy as a daemon process.
type controller struct {
	p          *sim.Proc
	n          int
	scapegoat  bool
	localTrue  bool
	broadcast  bool
	waitingAck bool
	wantGrant  bool  // the app asked to go false and is waiting
	tentative  int   // broadcast: acks issued, awaiting confirm/cancel
	pending    []int // controllers whose req awaits our next true period
	deferred   []int // reqs received while we were waiting for an ack
	stats      *Stats
}

func (c *controller) send(to int, k kind) {
	c.p.Send(to, envelope{kind: k})
	c.stats.CtlMessages++
}

func (c *controller) run() {
	c.p.Daemon()
	app := c.p.ID() - c.n
	for {
		from, raw := c.p.Recv()
		env := raw.(envelope)
		switch env.kind {
		case kindMayFalse:
			c.wantGrant = true
			c.maybeProceed(app)
		case kindAck:
			if !c.waitingAck {
				// A later ack of an already-completed broadcast round:
				// release the tentative responder.
				if c.broadcast {
					c.send(from, kindCancel)
				}
				continue
			}
			c.waitingAck = false
			c.scapegoat = false
			c.stats.Handoffs++
			if c.broadcast {
				c.send(from, kindConfirm)
			}
			c.grant(app)
			for _, j := range c.deferred {
				c.handleReq(j)
			}
			c.deferred = c.deferred[:0]
		case kindReq:
			if c.waitingAck {
				// Answering now could hand our own anti-token away while
				// another one is already travelling to us; defer.
				c.deferred = append(c.deferred, from)
				continue
			}
			c.handleReq(from)
		case kindConfirm:
			c.scapegoat = true
			c.tentative--
			c.maybeProceed(app)
		case kindCancel:
			c.tentative--
			c.maybeProceed(app)
		case kindNowTrue:
			c.localTrue = true
			for _, j := range c.pending {
				c.handleReq(j)
			}
			c.pending = c.pending[:0]
		default:
			panic(fmt.Sprintf("online: controller received unexpected message %v", env.kind))
		}
	}
}

// maybeProceed advances a waiting mayFalse request whenever the state
// allows: a tentative responder stays true until released; a scapegoat
// must first hand the anti-token off; anyone else is granted at once.
func (c *controller) maybeProceed(app int) {
	if !c.wantGrant || c.tentative > 0 || c.waitingAck {
		return
	}
	if !c.scapegoat {
		c.grant(app)
		return
	}
	c.waitingAck = true
	if c.broadcast {
		for t := c.n; t < 2*c.n; t++ {
			if t != c.p.ID() {
				c.send(t, kindReq)
			}
		}
		return
	}
	t := c.n + c.p.Rand().Intn(c.n-1)
	if t >= c.p.ID() {
		t++
	}
	c.send(t, kindReq)
}

func (c *controller) grant(app int) {
	c.localTrue = false
	c.wantGrant = false
	c.p.Send(app, envelope{kind: kindGrant})
}

func (c *controller) handleReq(j int) {
	if !c.localTrue {
		c.pending = append(c.pending, j)
		return
	}
	if c.broadcast {
		// Tentative: hold ourselves true until the requester confirms or
		// cancels; the role transfers only with the confirm.
		c.tentative++
		c.send(j, kindAck)
		return
	}
	c.scapegoat = true
	c.send(j, kindAck)
}
