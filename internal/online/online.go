// Package online implements the paper's on-line disjunctive predicate
// control (Figure 3): maintain B = l1 ∨ … ∨ ln over a computation as it
// runs, without knowing it in advance.
//
// Theorem 3 shows the unrestricted problem is unsolvable, so the
// strategy assumes A1 (no process blocks while its local predicate is
// false) and A2 (local predicates hold in final states). One controller
// is the scapegoat — the holder of an "anti-token", a liability rather
// than a privilege: its process must stay true until another controller,
// currently true, agrees to take the role over. The scapegoat requests
// the handoff with req, the successor replies ack (possibly deferred
// until its process is true again), and only then may the old
// scapegoat's process go false. Specialized to critical sections this
// solves (n−1)-mutual exclusion with 2 control messages per handoff and
// handoff response time in [2T, 2T+Emax] (paper §6).
//
// The broadcast variant (paper §6, Evaluation) trades messages for
// latency: the scapegoat asks every controller at once and proceeds on
// the first ack. A subtlety the paper does not spell out: letting every
// responder keep the scapegoat role is safe in real time but NOT under
// the paper's own deposet semantics — with several independent scapegoat
// chains, a rotation of ack causalities admits a *consistent cut* in
// which every process is false (found by the property tests in this
// package). The implementation therefore completes a broadcast handoff
// with a confirm/cancel round: responders hold themselves true while
// tentative, exactly one receives confirm and inherits the anti-token,
// and the rest are released, preserving the single chain that makes
// every consistent cut satisfy B.
//
// Controllers run as daemon processes on the sim kernel, co-located with
// their application process (zero-delay local channel), exactly as the
// paper's "control system is a distinct distributed system" prescribes.
package online

import (
	"fmt"
	"math/rand"

	"predctl/internal/obs"
	"predctl/internal/sim"
)

// kind discriminates protocol payloads.
type kind int

const (
	kindMayFalse kind = iota // app → own controller: request to go false
	kindGrant                // controller → own app: permission
	kindNowTrue              // app → own controller: local predicate true again
	kindReq                  // controller → controller: take the scapegoat role
	kindAck                  // controller → controller: role taken (tentatively, for broadcast)
	kindConfirm              // controller → controller: broadcast winner keeps the role
	kindCancel               // controller → controller: broadcast loser is released
	kindApp                  // app → app payload (guard-wrapped)
)

// ctlEventNames labels controller-to-controller messages in the
// observability journal (obs.EvCtlPrefix + name).
var ctlEventNames = map[kind]string{
	kindReq:     obs.EvCtlPrefix + "req",
	kindAck:     obs.EvCtlPrefix + "ack",
	kindConfirm: obs.EvCtlPrefix + "confirm",
	kindCancel:  obs.EvCtlPrefix + "cancel",
}

type envelope struct {
	kind    kind
	gen     uint64 // anti-token generation (controller-to-controller kinds)
	payload any
}

// kindOf / ctlKind translate between the machine's transport-neutral
// MsgKind and this package's sim envelope kinds.
var kindOf = map[MsgKind]kind{
	MsgReq: kindReq, MsgAck: kindAck, MsgConfirm: kindConfirm, MsgCancel: kindCancel,
}

var ctlKind = map[kind]MsgKind{
	kindReq: MsgReq, kindAck: MsgAck, kindConfirm: MsgConfirm, kindCancel: MsgCancel,
}

// Stats aggregates a run's control overhead. All fields are written
// under the simulator's single-active-process discipline.
type Stats struct {
	CtlMessages int        // req + ack messages between controllers
	Handoffs    int        // scapegoat role transfers
	Requests    int        // RequestFalse calls
	Responses   []sim.Time // per-request latency (0 for non-scapegoats)
}

// MaxResponse returns the largest observed request latency.
func (s *Stats) MaxResponse() sim.Time {
	var m sim.Time
	for _, r := range s.Responses {
		if r > m {
			m = r
		}
	}
	return m
}

// MeanResponse returns the average request latency.
func (s *Stats) MeanResponse() float64 {
	if len(s.Responses) == 0 {
		return 0
	}
	var t sim.Time
	for _, r := range s.Responses {
		t += r
	}
	return float64(t) / float64(len(s.Responses))
}

// Config parameterizes a controlled system.
type Config struct {
	N         int      // application processes
	Delay     sim.Time // message delay T between distinct nodes
	Seed      int64
	Trace     bool
	Broadcast bool // use the broadcast variant
	Scapegoat int  // index of the initial scapegoat's process (init(i))
	MaxEvents int
	// InitFalse marks processes whose local predicate is false at start
	// (e.g. after_e before the event e has happened). Such a process
	// answers scapegoat requests only once it reports NowTrue, and it
	// cannot be the initial scapegoat. nil means all start true.
	InitFalse []bool
	// Journal, when non-nil, receives the kernel's structured events
	// plus protocol-level control events (ctl.req/ack/confirm/cancel,
	// scapegoat.init/acquire) consumed by the obs invariant checker.
	Journal *obs.Journal
	// Reg, when non-nil, receives the run's protocol metrics
	// (predctl_ctl_messages_total, predctl_handoffs_total,
	// predctl_response_vtime, …), each carrying MetricLabels.
	Reg *obs.Registry
	// MetricLabels dimensions every metric this run records (e.g.
	// {proto=scapegoat, n=8}), letting one registry hold a sweep.
	MetricLabels []obs.Label
}

// meters is the run's resolved metric set. All fields may be nil (no
// registry): the obs instruments are nil-safe, so recording sites need
// no guards.
type meters struct {
	ctl      *obs.Counter
	handoffs *obs.Counter
	cancels  *obs.Counter
	requests *obs.Counter
	resp     *obs.Histogram
	chain    *obs.Gauge
}

func newMeters(reg *obs.Registry, labels []obs.Label) meters {
	return meters{
		ctl:      reg.Counter("predctl_ctl_messages_total", labels...),
		handoffs: reg.Counter("predctl_handoffs_total", labels...),
		cancels:  reg.Counter("predctl_broadcast_cancels_total", labels...),
		requests: reg.Counter("predctl_requests_total", labels...),
		resp:     reg.Histogram("predctl_response_vtime", labels...),
		chain:    reg.Gauge("predctl_scapegoat_chain_length", labels...),
	}
}

// Run executes the application bodies under on-line control and returns
// the trace (apps are processes 0..N-1, controllers N..2N-1), statistics,
// and any simulation failure. Application processes must satisfy A1/A2:
// start true, end true, and never block while false.
func Run(cfg Config, apps []func(*Guard)) (*sim.Trace, *Stats, error) {
	if cfg.N < 2 {
		// Theorem 3 territory: with one process there is no one to hand
		// the anti-token to, so control degenerates to "never go false".
		return nil, nil, fmt.Errorf("online: need at least 2 processes, got %d", cfg.N)
	}
	if len(apps) != cfg.N {
		return nil, nil, fmt.Errorf("online: %d app bodies for %d processes", len(apps), cfg.N)
	}
	if cfg.Scapegoat < 0 || cfg.Scapegoat >= cfg.N {
		return nil, nil, fmt.Errorf("online: initial scapegoat %d out of range", cfg.Scapegoat)
	}
	if cfg.InitFalse != nil {
		if len(cfg.InitFalse) != cfg.N {
			return nil, nil, fmt.Errorf("online: InitFalse has %d entries for %d processes", len(cfg.InitFalse), cfg.N)
		}
		if cfg.InitFalse[cfg.Scapegoat] {
			return nil, nil, fmt.Errorf("online: initial scapegoat %d starts false", cfg.Scapegoat)
		}
	}
	n := cfg.N
	delay := func(from, to int, _ *rand.Rand) sim.Time {
		if from%n == to%n { // app ↔ its controller: local channel
			return 0
		}
		return cfg.Delay
	}
	stats := &Stats{}
	m := newMeters(cfg.Reg, cfg.MetricLabels)
	k := sim.New(sim.Config{
		Procs:     2 * n,
		Delay:     delay,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		MaxEvents: cfg.MaxEvents,
		Journal:   cfg.Journal,
	})
	bodies := make([]func(*sim.Proc), 2*n)
	for i := 0; i < n; i++ {
		i := i
		bodies[i] = func(p *sim.Proc) {
			g := &Guard{p: p, n: n, stats: stats, m: m}
			apps[i](g)
		}
		bodies[n+i] = func(p *sim.Proc) {
			c := &controller{
				p:         p,
				n:         n,
				scapegoat: i == cfg.Scapegoat,
				localTrue: cfg.InitFalse == nil || !cfg.InitFalse[i],
				broadcast: cfg.Broadcast,
				stats:     stats,
				m:         m,
			}
			if c.scapegoat {
				p.Journal().Append(obs.Event{
					Proc: p.ID(), Kind: obs.KindControl,
					Name: obs.EvScapegoatInit, A: int64(i),
				})
			}
			c.run()
		}
	}
	tr, err := k.Run(bodies...)
	m.chain.Set(int64(stats.Handoffs))
	return tr, stats, err
}

// Guard is the application-side handle: it talks to the co-located
// controller and relays application messages.
type Guard struct {
	p     *sim.Proc
	n     int
	stats *Stats
	m     meters
	inbox []appMsg // app messages received while waiting for a grant
}

type appMsg struct {
	from    int
	payload any
}

// P exposes the underlying simulated process (Work, Set, Now, Rand).
func (g *Guard) P() *sim.Proc { return g.p }

// ID returns the application process index.
func (g *Guard) ID() int { return g.p.ID() }

// N returns the number of application processes.
func (g *Guard) N() int { return g.n }

func (g *Guard) ctl() int { return g.p.ID() + g.n }

// RequestFalse blocks until the controller permits the local predicate
// to become false (A1 is the caller's obligation: do not block while
// false). It returns the latency of the request.
func (g *Guard) RequestFalse() sim.Time {
	start := g.p.Now()
	g.p.Send(g.ctl(), envelope{kind: kindMayFalse})
	for {
		from, raw := g.p.Recv()
		env := raw.(envelope)
		switch env.kind {
		case kindGrant:
			d := g.p.Now() - start
			g.stats.Requests++
			g.stats.Responses = append(g.stats.Responses, d)
			g.m.requests.Inc()
			g.m.resp.Observe(int64(d))
			return d
		case kindApp:
			g.inbox = append(g.inbox, appMsg{from, env.payload})
		default:
			panic(fmt.Sprintf("online: app received unexpected control message %v", env.kind))
		}
	}
}

// NowTrue notifies the controller that the local predicate holds again.
func (g *Guard) NowTrue() {
	g.p.Send(g.ctl(), envelope{kind: kindNowTrue})
}

// Send delivers an application payload to application process `to`.
func (g *Guard) Send(to int, payload any) {
	g.p.Send(to, envelope{kind: kindApp, payload: payload})
}

// Recv returns the next application message.
func (g *Guard) Recv() (from int, payload any) {
	if len(g.inbox) > 0 {
		m := g.inbox[0]
		g.inbox = g.inbox[1:]
		return m.from, m.payload
	}
	for {
		from, raw := g.p.Recv()
		env := raw.(envelope)
		if env.kind == kindApp {
			return from, env.payload
		}
		panic(fmt.Sprintf("online: app received unexpected control message %v", env.kind))
	}
}

// controller hosts the Figure 3 strategy — factored into the
// transport-neutral Machine (machine.go) — as a sim daemon process: it
// translates kernel messages into machine inputs and implements the
// machine's effects (Host) on the simulator.
type controller struct {
	p         *sim.Proc
	n         int
	scapegoat bool
	localTrue bool
	broadcast bool
	mach      *Machine
	stats     *Stats
	m         meters
}

// faultDelayGrant is a test-only fault injection point: when positive,
// a controller completing a handoff works this long before granting,
// pushing the response time past the paper's 2T+Emax bound so the obs
// invariant checker can be shown to trip. Never set outside tests.
var faultDelayGrant sim.Time

// SendCtl implements Host: deliver a protocol message to the controller
// co-located with application process `to`, counting and journaling it.
func (c *controller) SendCtl(to int, k MsgKind, gen uint64) {
	c.p.Send(c.n+to, envelope{kind: kindOf[k], gen: gen})
	c.stats.CtlMessages++
	c.m.ctl.Inc()
	if k == MsgCancel {
		c.m.cancels.Inc()
	}
	if j := c.p.Journal(); j != nil {
		j.Append(obs.Event{
			At: int64(c.p.Now()), Proc: c.p.ID(), Kind: obs.KindControl,
			Name: ctlEventNames[kindOf[k]], A: int64(to),
		})
	}
}

// Acquired implements Host: record this controller taking the anti-token
// from controller `from` (application-index space), for the chain
// invariant; C carries the anti-token generation so checkers can order
// acquisitions without trusting event order. (The handoff *counter*
// increments beside stats.Handoffs at the releasing side, so metrics
// mirror Stats exactly.)
func (c *controller) Acquired(from int, gen uint64) {
	if j := c.p.Journal(); j != nil {
		j.Append(obs.Event{
			At: int64(c.p.Now()), Proc: c.p.ID(), Kind: obs.KindControl,
			Name: obs.EvScapegoatAcquire, A: int64(c.p.ID() - c.n), B: int64(from),
			C: int64(gen),
		})
	}
}

// Released implements Host: the releasing side of a completed handoff.
func (c *controller) Released(to int) {
	c.stats.Handoffs++
	c.m.handoffs.Inc()
}

// Grant implements Host: permit the co-located application to go false.
func (c *controller) Grant() {
	if faultDelayGrant > 0 {
		c.p.Work(faultDelayGrant) // test-only: break the 2T+Emax bound
	}
	c.p.Send(c.p.ID()-c.n, envelope{kind: kindGrant})
}

// PickTarget implements Host: a deterministic random controller other
// than ourselves, from the process's seeded stream.
func (c *controller) PickTarget() int {
	app := c.p.ID() - c.n
	t := c.p.Rand().Intn(c.n - 1)
	if t >= app {
		t++
	}
	return t
}

func (c *controller) run() {
	c.p.Daemon()
	c.mach = NewMachine(c.p.ID()-c.n, c.n, c.scapegoat, c.localTrue, c.broadcast, c)
	for {
		from, raw := c.p.Recv()
		env := raw.(envelope)
		switch env.kind {
		case kindMayFalse:
			c.mach.OnMayFalse()
		case kindNowTrue:
			c.mach.OnNowTrue()
		case kindReq, kindAck, kindConfirm, kindCancel:
			c.mach.OnCtl(from-c.n, ctlKind[env.kind], env.gen)
		default:
			panic(fmt.Sprintf("online: controller received unexpected message %v", env.kind))
		}
	}
}
