// Package monitor provides on-line detection of weak conjunctive
// predicates — possibly(q1 ∧ … ∧ qn) — while the system runs: the
// Garg–Waldecker detection algorithm ([4] in the paper) in its on-line,
// checker-process form. Together with package online it completes the
// paper's active-debugging loop for live systems: the monitor *detects*
// the bad combination of local conditions, on-line control *prevents*
// it.
//
// Application processes carry runtime vector clocks (Fidge–Mattern,
// maintained by the Probe wrapper and piggybacked on every message) and
// report each maximal interval in which their local predicate holds to a
// checker process, as a pair of clocks (interval start, interval end).
// The checker advances one candidate interval per process: if interval
// Iᵢ ends causally before Iⱼ begins (vc(loⱼ)[i] ≥ vc(hiᵢ)[i]), the two
// can never be simultaneous, and — since later intervals of j start even
// later — Iᵢ can be discarded. When the current intervals are pairwise
// overlappable, the weak-conjunctive-predicate theorem guarantees a
// consistent global state where every qᵢ holds, and the checker reports
// it.
package monitor

import (
	"fmt"

	"predctl/internal/obs"
	"predctl/internal/sim"
	"predctl/internal/vclock"
)

// payloadKind discriminates probe-layer payloads.
type payloadKind int

const (
	kindApp payloadKind = iota
	kindCandidate
	kindDone
)

type envelope struct {
	kind  payloadKind
	vc    vclock.VC // sender's clock at send time (piggybacked)
	inner any
	cand  candidate
}

// candidate is one maximal true-interval of a local predicate.
type candidate struct {
	proc   int
	lo, hi vclock.VC // clocks at the interval's first and last state
	loIdx  int       // traced state index of the interval's first state
	hiIdx  int
}

// Detection is the checker's verdict.
type Detection struct {
	Found bool
	// Intervals holds the pairwise-overlappable witness intervals (per
	// process) when Found; LoIdx/HiIdx are traced state indices usable
	// against the run's deposet.
	Intervals []candidate
}

// LoCut returns the witness interval-start state indices per process.
func (d *Detection) LoCut() []int {
	cut := make([]int, len(d.Intervals))
	for i, c := range d.Intervals {
		cut[i] = c.loIdx
	}
	return cut
}

// Probe wraps an application process with a runtime vector clock and
// local-predicate reporting. All messaging must go through the probe.
type Probe struct {
	p       *sim.Proc
	n       int
	checker int
	vc      vclock.VC
	m       monMeters

	inTrue bool
	lo     vclock.VC
	loIdx  int
}

// monMeters is the monitor's resolved metric set (all nil without a
// registry; the obs instruments are nil-safe).
type monMeters struct {
	candidates *obs.Counter
	drops      *obs.Counter
	detected   *obs.Gauge
}

func newMonMeters(reg *obs.Registry, labels []obs.Label) monMeters {
	return monMeters{
		candidates: reg.Counter("predctl_monitor_candidates_total", labels...),
		drops:      reg.Counter("predctl_monitor_drops_total", labels...),
		detected:   reg.Gauge("predctl_monitor_detected", labels...),
	}
}

// tick advances the local clock component (one tick per probe event).
func (pr *Probe) tick() { pr.vc[pr.p.ID()]++ }

// P exposes the wrapped process.
func (pr *Probe) P() *sim.Proc { return pr.p }

// N returns the number of application processes (excluding the checker).
func (pr *Probe) N() int { return pr.n }

// Clock returns a copy of the probe's current vector clock.
func (pr *Probe) Clock() vclock.VC { return pr.vc.Clone() }

// Send delivers an application payload, stamping the clock.
func (pr *Probe) Send(to int, v any) {
	pr.tick()
	pr.p.Send(to, envelope{kind: kindApp, vc: pr.vc.Clone(), inner: v})
}

// Recv returns the next application message, merging the sender's clock.
func (pr *Probe) Recv() (from int, v any) {
	f, raw := pr.p.Recv()
	env := raw.(envelope)
	if env.kind != kindApp {
		panic(fmt.Sprintf("monitor: app received %v", env.kind))
	}
	pr.vc.Merge(env.vc)
	pr.tick()
	return f, env.inner
}

// TryRecv is the non-blocking variant of Recv.
func (pr *Probe) TryRecv() (from int, v any, ok bool) {
	f, raw, got := pr.p.TryRecv()
	if !got {
		return 0, nil, false
	}
	env := raw.(envelope)
	if env.kind != kindApp {
		panic(fmt.Sprintf("monitor: app received %v", env.kind))
	}
	pr.vc.Merge(env.vc)
	pr.tick()
	return f, env.inner, true
}

// Step records a local event on the clock.
func (pr *Probe) Step() { pr.tick() }

// SetLocal reports the current truth of the process's local predicate.
// Call it immediately after the (traced) event that changed the truth:
// on a rising edge the current state is the interval's first state; on a
// falling edge the previous state was its last. Each transition is a
// local event on the clock, which keeps interval endpoints causally
// distinguishable even on otherwise silent processes.
func (pr *Probe) SetLocal(truth bool) {
	switch {
	case truth && !pr.inTrue:
		pr.tick()
		pr.inTrue = true
		pr.lo = pr.vc.Clone()
		pr.loIdx = pr.p.StateIndex()
	case !truth && pr.inTrue:
		pr.tick()
		pr.inTrue = false
		pr.emit(pr.p.StateIndex() - 1)
	}
}

// emit sends the just-closed interval to the checker. hiIdx is the
// traced index of the interval's last state.
func (pr *Probe) emit(hiIdx int) {
	hi := pr.vc.Clone()
	if j := pr.p.Journal(); j != nil {
		// Candidate intervals are the monitor's protocol events; the
		// journal entry carries the interval-end vector clock, the one
		// place runtime clocks are available to the trace.
		j.Append(obs.Event{
			At: int64(pr.p.Now()), Proc: pr.p.ID(), Kind: obs.KindControl,
			Name: "monitor.candidate", A: int64(pr.loIdx), B: int64(hiIdx),
			VC: []int32(hi),
		})
	}
	pr.m.candidates.Inc()
	pr.p.Send(pr.checker, envelope{kind: kindCandidate, cand: candidate{
		proc:  pr.p.ID(),
		lo:    pr.lo,
		hi:    hi,
		loIdx: pr.loIdx,
		hiIdx: hiIdx,
	}})
}

// Close flushes a still-open interval and tells the checker this process
// is finished. Call it exactly once, when the application body ends.
func (pr *Probe) Close() {
	if pr.inTrue {
		pr.inTrue = false
		pr.emit(pr.p.StateIndex())
	}
	pr.p.Send(pr.checker, envelope{kind: kindDone})
}

// Run executes the application bodies (processes 0..n-1) with a checker
// at index n monitoring possibly(∧ local predicates). The returned
// Detection is valid after the run completes; cfg.Trace also yields the
// deposet (apps plus checker) for off-line cross-checking.
func Run(cfg sim.Config, apps []func(*Probe)) (*sim.Trace, *Detection, error) {
	return RunObs(cfg, nil, nil, apps)
}

// RunObs is Run with protocol metrics: candidate-interval emissions,
// checker eliminations and the verdict are recorded into reg (carrying
// labels) alongside any cfg.Journal tracing. A nil reg records nothing.
func RunObs(cfg sim.Config, reg *obs.Registry, labels []obs.Label, apps []func(*Probe)) (*sim.Trace, *Detection, error) {
	n := len(apps)
	if cfg.Procs != 0 && cfg.Procs != n+1 {
		return nil, nil, fmt.Errorf("monitor: Procs must be unset or %d", n+1)
	}
	cfg.Procs = n + 1
	// The checker relies on a process's done notice not overtaking its
	// candidates; FIFO channels give exactly that.
	cfg.FIFO = true
	det := &Detection{}
	m := newMonMeters(reg, labels)
	k := sim.New(cfg)
	bodies := make([]func(*sim.Proc), n+1)
	for i := 0; i < n; i++ {
		i := i
		bodies[i] = func(p *sim.Proc) {
			pr := &Probe{p: p, n: n, checker: n, vc: vclock.New(n), m: m}
			for q := range pr.vc {
				pr.vc[q] = 0 // Fidge–Mattern convention: own component counts events
			}
			apps[i](pr)
			pr.Close()
		}
	}
	bodies[n] = func(p *sim.Proc) { runChecker(p, n, det, m) }
	tr, err := k.Run(bodies...)
	if det.Found {
		m.detected.Set(1)
	}
	return tr, det, err
}

// runChecker is the centralized Garg–Waldecker checker.
func runChecker(p *sim.Proc, n int, det *Detection, m monMeters) {
	queues := make([][]candidate, n)
	done := make([]bool, n)
	doneCount := 0
	for doneCount < n && !det.Found {
		from, raw := p.Recv()
		env := raw.(envelope)
		switch env.kind {
		case kindCandidate:
			queues[env.cand.proc] = append(queues[env.cand.proc], env.cand)
		case kindDone:
			done[from] = true
			doneCount++
		default:
			panic(fmt.Sprintf("monitor: checker received %v", env.kind))
		}
		advance(queues, det, m.drops)
	}
	// Remaining messages are drained by the kernel; the checker's verdict
	// is final once every process reported done or a witness was found.
	p.Daemon()
	for {
		p.Recv()
	}
}

// debugLog, when set by tests, receives checker decisions.
var debugLog func(string, ...any)

// advance runs the candidate-elimination loop: discard any interval that
// wholly precedes another process's current interval; report when the
// fronts are pairwise overlappable. drops counts eliminations.
func advance(queues [][]candidate, det *Detection, drops *obs.Counter) {
	n := len(queues)
	for {
		for i := 0; i < n; i++ {
			if len(queues[i]) == 0 {
				return // need more candidates before a verdict
			}
		}
		dropped := false
		for i := 0; i < n && !dropped; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				// Iᵢ wholly precedes Iⱼ: Iᵢ's last state causally
				// precedes Iⱼ's first.
				if queues[j][0].lo[i] >= queues[i][0].hi[i] {
					if debugLog != nil {
						debugLog("drop P%d %+v because P%d lo=%v", i, queues[i][0], j, queues[j][0].lo)
					}
					queues[i] = queues[i][1:]
					drops.Inc()
					dropped = true
					break
				}
			}
		}
		if !dropped {
			det.Found = true
			det.Intervals = make([]candidate, n)
			for i := 0; i < n; i++ {
				det.Intervals[i] = queues[i][0]
			}
			return
		}
	}
}
