package monitor

import (
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/sim"
	"predctl/internal/vclock"
)

// phasedApp runs `phases` alternating q-false/q-true periods, keeping the
// trace variable "q" and the probe's SetLocal in lock step, with some
// app-level chatter to create causality.
func phasedApp(rounds int) func(*Probe) {
	return func(pr *Probe) {
		p := pr.P()
		p.Init("q", 0)
		pr.SetLocal(false)
		for r := 0; r < rounds; r++ {
			p.Work(sim.Time(1 + p.Rand().Intn(7)))
			if p.Rand().Intn(3) == 0 && pr.N() > 1 {
				to := p.Rand().Intn(pr.N() - 1)
				if to >= p.ID() {
					to++
				}
				pr.Send(to, r)
			}
			for {
				if _, _, ok := pr.TryRecv(); !ok {
					break
				}
			}
			q := p.Rand().Intn(2)
			p.Set("q", q)
			pr.SetLocal(q == 1)
			pr.Step()
		}
		p.Set("q", 1) // end true so late candidates exist
		pr.SetLocal(true)
	}
}

func qHolds(tr *sim.Trace, napps int) detect.HoldsFn {
	return func(p, k int) bool {
		if p >= napps {
			return true // the checker carries no conjunct
		}
		v, ok := tr.D.Var(deposet.StateID{P: p, K: k}, "q")
		return ok && v == 1
	}
}

func TestMonitorDetectsSimpleOverlap(t *testing.T) {
	apps := []func(*Probe){
		func(pr *Probe) {
			pr.P().Init("q", 1)
			pr.SetLocal(true)
			pr.P().Work(10)
		},
		func(pr *Probe) {
			pr.P().Init("q", 1)
			pr.SetLocal(true)
			pr.P().Work(10)
		},
	}
	tr, det, err := Run(sim.Config{Trace: true, Seed: 1}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Found {
		t.Fatal("both-true-everywhere must be detected")
	}
	if _, ok := detect.PossiblyTruth(tr.D, qHolds(tr, 2)); !ok {
		t.Fatal("trace disagrees")
	}
}

func TestMonitorRejectsOrderedIntervals(t *testing.T) {
	// P0 is true only before sending; P1 only after receiving: the true
	// intervals are causally ordered, so ∧q is impossible.
	apps := []func(*Probe){
		func(pr *Probe) {
			pr.P().Init("q", 1)
			pr.SetLocal(true)
			pr.P().Set("q", 0)
			pr.SetLocal(false)
			pr.Send(1, "go")
		},
		func(pr *Probe) {
			pr.P().Init("q", 0)
			pr.SetLocal(false)
			pr.Recv()
			pr.P().Set("q", 1)
			pr.SetLocal(true)
		},
	}
	tr, det, err := Run(sim.Config{Trace: true, Seed: 2}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if det.Found {
		t.Fatalf("ordered intervals wrongly detected: %+v", det.Intervals)
	}
	if _, ok := detect.PossiblyTruth(tr.D, qHolds(tr, 2)); ok {
		t.Fatal("trace disagrees: possibly should be false")
	}
}

// Property: the on-line checker's verdict equals the off-line detector's
// verdict on the very trace the run produced, across random workloads.
func TestMonitorMatchesOfflineDetectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%3)
		apps := make([]func(*Probe), n)
		for i := range apps {
			apps[i] = phasedApp(5 + int(uint64(seed>>8)%6))
		}
		tr, det, err := Run(sim.Config{
			Trace: true,
			Seed:  seed,
			Delay: sim.UniformDelay(1, 6),
		}, apps)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, want := detect.PossiblyTruth(tr.D, qHolds(tr, n))
		if det.Found != want {
			t.Logf("seed %d: checker=%v offline=%v", seed, det.Found, want)
			return false
		}
		if det.Found {
			// Witness intervals must be genuinely q-true in the trace.
			for p, c := range det.Intervals {
				for k := c.loIdx; k <= c.hiIdx; k++ {
					v, ok := tr.D.Var(deposet.StateID{P: p, K: k}, "q")
					if !ok || v != 1 {
						t.Logf("seed %d: witness P%d[%d..%d] not q-true at %d",
							seed, p, c.loIdx, c.hiIdx, k)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(sim.Config{Procs: 5}, make([]func(*Probe), 2)); err == nil {
		t.Fatal("Procs mismatch accepted")
	}
}

func TestProbeClockPiggyback(t *testing.T) {
	var sent, recvd vclock.VC
	apps := []func(*Probe){
		func(pr *Probe) {
			pr.Step()
			pr.Send(1, "x")
			sent = pr.Clock()
		},
		func(pr *Probe) {
			pr.Recv()
			recvd = pr.Clock()
		},
	}
	_, _, err := Run(sim.Config{Seed: 5}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if recvd[0] < sent[0]-0 || recvd[1] == 0 {
		t.Fatalf("clock not merged: sent=%v recvd=%v", sent, recvd)
	}
}
