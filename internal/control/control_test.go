package control

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
)

// indep builds two independent processes with 2 events each (3 states).
func indep(t testing.TB) *deposet.Deposet {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(0)
	b.Step(1)
	b.Step(1)
	return b.MustBuild()
}

func TestExtendEmptyEqualsUnderlying(t *testing.T) {
	d := indep(t)
	x, err := Extend(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x.Underlying() != d || len(x.Edges()) != 0 {
		t.Fatal("accessors wrong")
	}
	d.ForEachConsistentCut(func(g deposet.Cut) bool {
		if !x.Consistent(g) {
			t.Fatalf("cut %v lost without control", g)
		}
		return true
	})
	if x.CountConsistentCuts() != d.CountConsistentCuts() {
		t.Error("lattice size changed with empty control")
	}
}

func TestControlEdgeAddsCausality(t *testing.T) {
	d := indep(t)
	// Force (0,1) before (1,1): P1 may not pass state 0 until P0 passed 1.
	rel := Relation{{From: deposet.StateID{P: 0, K: 1}, To: deposet.StateID{P: 1, K: 1}}}
	x, err := Extend(d, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !x.HB(deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 1}) {
		t.Error("control edge not in extended causality")
	}
	if !x.HB(deposet.StateID{P: 0, K: 0}, deposet.StateID{P: 1, K: 2}) {
		t.Error("extended causality not transitive")
	}
	if d.HB(deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 1}) {
		t.Error("underlying causality mutated")
	}
	// Cut (0,1) is consistent in d but not in the controlled deposet.
	g := deposet.Cut{0, 1}
	if !d.Consistent(g) {
		t.Fatal("precondition: cut consistent in underlying")
	}
	if x.Consistent(g) {
		t.Error("forced-before cut still consistent")
	}
	if x.Concurrent(deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 1}) {
		t.Error("ordered states reported concurrent")
	}
	if !x.Concurrent(deposet.StateID{P: 0, K: 2}, deposet.StateID{P: 1, K: 1}) {
		t.Error("concurrent states reported ordered")
	}
}

func TestExtendRejectsBadEdges(t *testing.T) {
	d := indep(t)
	cases := []struct {
		name string
		e    Edge
	}{
		{"from proc range", Edge{deposet.StateID{P: 9, K: 0}, deposet.StateID{P: 1, K: 1}}},
		{"from state range", Edge{deposet.StateID{P: 0, K: 9}, deposet.StateID{P: 1, K: 1}}},
		{"to proc range", Edge{deposet.StateID{P: 0, K: 0}, deposet.StateID{P: 9, K: 1}}},
		{"to state range", Edge{deposet.StateID{P: 0, K: 0}, deposet.StateID{P: 1, K: 9}}},
		{"send after top (D2)", Edge{deposet.StateID{P: 0, K: 2}, deposet.StateID{P: 1, K: 1}}},
		{"recv before bottom (D1)", Edge{deposet.StateID{P: 0, K: 0}, deposet.StateID{P: 1, K: 0}}},
	}
	for _, c := range cases {
		if _, err := Extend(d, Relation{c.e}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestInterferenceDetected(t *testing.T) {
	d := indep(t)
	// (0,1) ⟶C (1,1) and (1,1) ⟶C (0,1): a 2-cycle.
	rel := Relation{
		{deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 1}},
		{deposet.StateID{P: 1, K: 1}, deposet.StateID{P: 0, K: 1}},
	}
	if _, err := Extend(d, rel); err != ErrInterference {
		t.Fatalf("err = %v, want ErrInterference", err)
	}
	if !Interferes(d, rel) {
		t.Error("Interferes = false")
	}
	if Interferes(d, rel[:1]) {
		t.Error("single edge reported interfering")
	}
}

func TestInterferenceWithMessages(t *testing.T) {
	// P0 sends to P1 after its first event; a control edge from (1,2)
	// back to (0,1) closes a cycle through the message.
	b := deposet.NewBuilder(2)
	_, h := b.Send(0) // state (0,1), message carries (0,0)
	b.Step(0)
	b.Step(0)    // P0 has states 0..3
	b.Recv(1, h) // state (1,1)
	b.Step(1)
	d := b.MustBuild()
	// A backward edge within one process is a cycle with local order.
	rel := Relation{{deposet.StateID{P: 0, K: 2}, deposet.StateID{P: 0, K: 1}}}
	if _, err := Extend(d, rel); err != ErrInterference {
		t.Fatalf("err = %v, want ErrInterference", err)
	}
	// A cross-process cycle through the application message: the message
	// gives (0,1) → (1,2) (send at event 2... here send event is 1, so
	// (0,0) → (1,1)); forcing (1,1) before (0,1) alone is acyclic, but
	// forcing (1,2) ⟶C (0,1) closes (0,0)→(1,1)→(1,2)→C(0,1)? No — that
	// chain never returns to (0,0). The genuine cycle: (0,1) ⟶C (1,1)
	// combined with (1,1) ⟶C (0,1).
	rel2 := Relation{
		{deposet.StateID{P: 1, K: 1}, deposet.StateID{P: 0, K: 1}},
		{deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 1}},
	}
	if _, err := Extend(d, rel2); err != ErrInterference {
		t.Fatalf("err = %v, want ErrInterference", err)
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 1, K: 2}}
	if got, want := e.String(), "(0,1) ⟶C (1,2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randomAcyclicRelation produces a control relation whose edges all align
// with one linearization: each edge's From exits at some step and its To
// is entered at a strictly later step, so the linearization remains a
// topological order of the extended event graph and the relation never
// interferes.
func randomAcyclicRelation(r *rand.Rand, d *deposet.Deposet) Relation {
	seq := d.SomeSequence()
	var rel Relation
	advancer := func(step int) int { // process advancing into seq[step]
		for p := range seq[step] {
			if seq[step][p] != seq[step-1][p] {
				return p
			}
		}
		panic("no advance")
	}
	for trial := 0; trial < 6 && len(seq) > 2; trial++ {
		i := 1 + r.Intn(len(seq)-2) // exit step of From
		q := advancer(i)
		from := deposet.StateID{P: q, K: seq[i-1][q]}
		for j := i + 1; j < len(seq); j++ {
			if p := advancer(j); p != q {
				rel = append(rel, Edge{from, deposet.StateID{P: p, K: seq[j][p]}})
				break
			}
		}
	}
	return rel
}

// Property: the consistent cuts of a controlled deposet are a subset of
// the consistent cuts of the underlying deposet (paper §3: "the set of
// global sequences in the controlled deposet is a subset of the set of
// global sequences in the original deposet").
func TestControlledSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(2), 4+r.Intn(10)))
		rel := randomAcyclicRelation(r, d)
		x, err := Extend(d, rel)
		if err != nil {
			// Random relation construction should be acyclic by design.
			return !errors.Is(err, ErrInterference)
		}
		ok := true
		x.ForEachConsistentCut(func(g deposet.Cut) bool {
			if !d.Consistent(g) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: extended HB agrees with a reachability oracle over
// im ∪ ⇝ ∪ ⟶C edges.
func TestExtendedHBMatchesReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(2), 4+r.Intn(8)))
		rel := randomAcyclicRelation(r, d)
		x, err := Extend(d, rel)
		if err != nil {
			return true
		}
		reach := reachability(d, rel)
		for p := 0; p < d.NumProcs(); p++ {
			for k := 0; k < d.Len(p); k++ {
				s := deposet.StateID{P: p, K: k}
				for q := 0; q < d.NumProcs(); q++ {
					for j := 0; j < d.Len(q); j++ {
						u := deposet.StateID{P: q, K: j}
						if x.HB(s, u) != reach[s][u] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// reachability computes strict extended causality from first principles:
// build the *event* dependency graph (program order; message send before
// receive; control: exit event of From before entering event of To) and
// define HB(s, t) as "t reached implies s exited", i.e. event (s.P, s.K+1)
// reaches event (t.P, t.K) reflexively-transitively. This is an
// independent oracle for the vector-clock implementation.
func reachability(d *deposet.Deposet, rel Relation) map[deposet.StateID]map[deposet.StateID]bool {
	type ev struct{ P, E int } // event E of process P, 1-based
	succ := map[ev][]ev{}
	for p := 0; p < d.NumProcs(); p++ {
		for e := 1; e+1 < d.Len(p); e++ {
			succ[ev{p, e}] = append(succ[ev{p, e}], ev{p, e + 1})
		}
	}
	for _, m := range d.Messages() {
		if m.Received() {
			succ[ev{m.FromP, m.SendEvent}] = append(succ[ev{m.FromP, m.SendEvent}], ev{m.ToP, m.RecvEvent})
		}
	}
	for _, e := range rel {
		from := ev{e.From.P, e.From.K + 1}
		succ[from] = append(succ[from], ev{e.To.P, e.To.K})
	}
	reaches := func(a, b ev) bool { // reflexive-transitive over succ
		if a == b {
			return true
		}
		seen := map[ev]bool{}
		stack := []ev{a}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == b {
				return true
			}
			if seen[u] {
				continue
			}
			seen[u] = true
			stack = append(stack, succ[u]...)
		}
		return false
	}
	out := map[deposet.StateID]map[deposet.StateID]bool{}
	for p := 0; p < d.NumProcs(); p++ {
		for k := 0; k < d.Len(p); k++ {
			s := deposet.StateID{P: p, K: k}
			row := map[deposet.StateID]bool{}
			for q := 0; q < d.NumProcs(); q++ {
				for j := 0; j < d.Len(q); j++ {
					t := deposet.StateID{P: q, K: j}
					switch {
					case p == q:
						row[t] = k < j
					case k+1 >= d.Len(p) || j == 0:
						row[t] = false // s never exited, or t is ⊥
					default:
						row[t] = reaches(ev{p, k + 1}, ev{q, j})
					}
				}
			}
			out[s] = row
		}
	}
	return out
}

// TestExitEventDeadlockDetected regresses the case where a control edge
// is acyclic at the state level but deadlocks at run time because the
// exit event of From is a receive whose message can only be sent once To
// was passed.
//
//	P0:  ⊥ —send m0→ 1 —send m1→ 2
//	P1:  ⊥ —recv m0→ 1 —recv m1→ 2
//
// The edge (1,1) ⟶C (0,1) demands that P0 enter state 1 only after P1
// exits state 1; but P1's exit event receives m1, which P0 sends from
// state 1 — which it may never enter. Deadlock.
func TestExitEventDeadlockDetected(t *testing.T) {
	b := deposet.NewBuilder(2)
	_, h0 := b.Send(0)
	_, h1 := b.Send(0)
	b.Recv(1, h0)
	b.Recv(1, h1)
	d := b.MustBuild()
	rel := Relation{{deposet.StateID{P: 1, K: 1}, deposet.StateID{P: 0, K: 1}}}
	if _, err := Extend(d, rel); err != ErrInterference {
		t.Fatalf("err = %v, want ErrInterference", err)
	}
	// Sanity: the edge one state later is realizable — P0 enters state 2
	// after P1 exits ⊥ (i.e. after m0 is received).
	rel2 := Relation{{deposet.StateID{P: 1, K: 0}, deposet.StateID{P: 0, K: 2}}}
	x, err := Extend(d, rel2)
	if err != nil {
		t.Fatalf("realizable edge rejected: %v", err)
	}
	if !x.HB(deposet.StateID{P: 1, K: 0}, deposet.StateID{P: 0, K: 2}) {
		t.Fatal("edge not reflected in extended causality")
	}
}
