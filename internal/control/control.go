// Package control models control relations and controlled computations
// (paper §3). A control strategy is realized as extra causal dependencies:
// each tuple u ⟶C v ("u is forced before v") stands for a control message
// sent by u's controller when the underlying process *leaves* state u and
// received, with blocking, by v's controller before state v. The
// controlled deposet is the original computation plus this extra
// causality; it is valid only if the extended precedence relation remains
// an irreflexive partial order (the control relation does not "interfere"
// with →).
//
// The semantics are event-based: the entering event of v waits for the
// exit event of u (event u.K+1 of u's process). Getting this right
// matters — treating the edge as a dependency on u's *state clock* alone
// misses genuine runtime deadlocks, because the exit event of u may
// itself be a message receive with further dependencies. Extend therefore
// merges the clock of state u.K+1 (the state reached by the exit event),
// with its own-process component lowered to u.K: reaching v implies u was
// exited, i.e. state u.K was passed — not that state u.K+1 was passed.
package control

import (
	"errors"
	"fmt"

	"predctl/internal/deposet"
	"predctl/internal/vclock"
)

// Edge is one tuple of the control relation: From ⟶C To.
type Edge struct {
	From deposet.StateID
	To   deposet.StateID
}

func (e Edge) String() string { return fmt.Sprintf("%v ⟶C %v", e.From, e.To) }

// Relation is a control relation: a set of forced-before tuples.
type Relation []Edge

// ErrInterference is returned when a control relation creates a cycle with
// the computation's causal precedence, so no valid controlled computation
// exists (the strategy would deadlock).
var ErrInterference = errors.New("control: relation interferes with causal precedence")

// Extended is a controlled deposet: the underlying computation plus a
// non-interfering control relation, with extended causality →C computed.
type Extended struct {
	d     *deposet.Deposet
	edges Relation
	vc    *vclock.Arena // extended clocks, flat arena, same convention as deposet
}

// Extend validates rel against d and computes extended causality. It
// rejects out-of-range endpoints, sends after a final state (D2), receives
// before an initial state (D1), and interference (cycles).
func Extend(d *deposet.Deposet, rel Relation) (*Extended, error) {
	n := d.NumProcs()
	incoming := make([][][]deposet.StateID, n) // per process, per state: control senders
	for p := 0; p < n; p++ {
		incoming[p] = make([][]deposet.StateID, d.Len(p))
	}
	for _, e := range rel {
		if e.From.P < 0 || e.From.P >= n || e.From.K < 0 || e.From.K >= d.Len(e.From.P) {
			return nil, fmt.Errorf("control: edge %v: From out of range", e)
		}
		if e.To.P < 0 || e.To.P >= n || e.To.K < 0 || e.To.K >= d.Len(e.To.P) {
			return nil, fmt.Errorf("control: edge %v: To out of range", e)
		}
		if d.IsTop(e.From) {
			return nil, fmt.Errorf("control: edge %v: control message sent after final state (D2)", e)
		}
		if e.To.K == 0 {
			return nil, fmt.Errorf("control: edge %v: control message received before initial state (D1)", e)
		}
		incoming[e.To.P][e.To.K] = append(incoming[e.To.P][e.To.K], e.From)
	}

	x := &Extended{d: d, edges: append(Relation(nil), rel...)}
	lens := make([]int, n)
	remaining := 0
	for p := 0; p < n; p++ {
		lens[p] = d.Len(p)
		remaining += d.Len(p) - 1
	}
	x.vc = vclock.NewArena(lens)
	done := make([]int, n)
	for p := 0; p < n; p++ {
		row := x.vc.Row(p, 0)
		for i := range row {
			row[i] = vclock.None
		}
		row[p] = 0
	}
	msgs := d.Messages()
	for remaining > 0 {
		progress := false
		for p := 0; p < n; p++ {
		states:
			for done[p] < d.Len(p)-1 {
				e := done[p] + 1
				mi := d.RecvAt(p, e)
				if mi >= 0 {
					// Receiving implies the send event happened, i.e. the
					// sender reached state SendEvent (exited SendEvent−1).
					if msgs[mi].SendEvent > done[msgs[mi].FromP] {
						break
					}
				}
				for _, from := range incoming[p][e] {
					// The exit event of `from` is event from.K+1; its
					// resulting state must already be clocked.
					if from.K+1 > done[from.P] {
						break states
					}
				}
				v := x.vc.Row(p, e)
				copy(v, x.vc.Row(p, e-1))
				if mi >= 0 {
					m := msgs[mi]
					// Unlike in a plain deposet, the send event may carry
					// extra dependencies here (a control edge can target
					// its resulting state), so merge that state's full
					// clock with the own-process component lowered.
					v.MergeLowered(x.vc.Row(m.FromP, m.SendEvent), m.FromP, int32(m.SendEvent-1))
				}
				for _, from := range incoming[p][e] {
					// v implies from exited, not from.K+1 passed.
					v.MergeLowered(x.vc.Row(from.P, from.K+1), from.P, int32(from.K))
				}
				v[p] = int32(e)
				done[p] = e
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil, ErrInterference
		}
	}
	return x, nil
}

// Underlying returns the uncontrolled computation.
func (x *Extended) Underlying() *deposet.Deposet { return x.d }

// NumProcs and Len delegate to the underlying computation, letting an
// Extended satisfy deposet.View so the detection algorithms can verify
// controlled computations directly.
func (x *Extended) NumProcs() int { return x.d.NumProcs() }
func (x *Extended) Len(p int) int { return x.d.Len(p) }

var _ deposet.View = (*Extended)(nil)

// Edges returns the control relation. Callers must not modify it.
func (x *Extended) Edges() Relation { return x.edges }

// Clock returns the extended vector clock of state s. The returned
// slice aliases the clock arena; callers must not modify it.
func (x *Extended) Clock(s deposet.StateID) vclock.VC { return x.vc.Row(s.P, s.K) }

// HB reports s →C t under extended causality.
func (x *Extended) HB(s, t deposet.StateID) bool {
	if s.P == t.P {
		return s.K < t.K
	}
	return x.vc.Component(t.P, t.K, s.P) >= int32(s.K)
}

// Concurrent reports s ∥ t under extended causality.
func (x *Extended) Concurrent(s, t deposet.StateID) bool {
	return s != t && !x.HB(s, t) && !x.HB(t, s)
}

// Consistent reports whether g is a consistent global state of the
// controlled computation. Every such cut is also consistent in the
// underlying computation (control only removes behaviours).
func (x *Extended) Consistent(g deposet.Cut) bool {
	n := x.d.NumProcs()
	for j := 0; j < n; j++ {
		v := x.vc.Row(j, g[j])
		for i := 0; i < n; i++ {
			if i != j && int(v[i]) >= g[i] {
				return false
			}
		}
	}
	return true
}

// ForEachConsistentCut enumerates the consistent global states of the
// controlled computation in BFS lattice order; see the deposet analogue.
func (x *Extended) ForEachConsistentCut(f func(deposet.Cut) bool) {
	n := x.d.NumProcs()
	start := x.d.BottomCut()
	if !x.Consistent(start) {
		return
	}
	seen := map[string]bool{start.Key(): true}
	queue := []deposet.Cut{start}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		if !f(g) {
			return
		}
		for p := 0; p < n; p++ {
			if g[p]+1 >= x.d.Len(p) {
				continue
			}
			h := g.Clone()
			h[p]++
			if key := h.Key(); !seen[key] && x.Consistent(h) {
				seen[key] = true
				queue = append(queue, h)
			}
		}
	}
}

// SomeSequence returns one global sequence of the controlled computation
// — the paper's "simulating a run of the strategy" (§4): a satisfying
// control strategy yields a satisfying global sequence this way. A valid
// controlled deposet always has one; single-step, smallest process first.
func (x *Extended) SomeSequence() deposet.Sequence {
	g := x.d.BottomCut()
	seq := deposet.Sequence{g.Clone()}
	top := x.d.TopCut()
	for !g.Equal(top) {
		advanced := false
		for p := range g {
			if g[p] < top[p] {
				g[p]++
				if x.Consistent(g) {
					seq = append(seq, g.Clone())
					advanced = true
					break
				}
				g[p]--
			}
		}
		if !advanced {
			// Cannot happen when the relation does not interfere.
			panic("control: stuck constructing a global sequence of a controlled deposet")
		}
	}
	return seq
}

// CountConsistentCuts returns the number of consistent global states of
// the controlled computation.
func (x *Extended) CountConsistentCuts() int {
	c := 0
	x.ForEachConsistentCut(func(deposet.Cut) bool { c++; return true })
	return c
}

// Interferes reports whether rel creates a causal cycle on d.
func Interferes(d *deposet.Deposet, rel Relation) bool {
	_, err := Extend(d, rel)
	return errors.Is(err, ErrInterference)
}
