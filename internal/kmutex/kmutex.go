// Package kmutex provides the (n−1)-mutual-exclusion comparison of the
// paper's §6 Evaluation. The on-line scapegoat strategy, specialized to
// critical sections (false-intervals = CS occupancy), solves k-mutual
// exclusion for k = n−1 with a single *anti-token*; this package supplies
// the baselines it is compared against — a centralized coordinator and a
// distributed k-token algorithm — plus an uncontrolled run (showing the
// violation control prevents), all over the same workload on the same
// simulator.
package kmutex

import (
	"fmt"

	"predctl/internal/obs"
	"predctl/internal/online"
	"predctl/internal/sim"
)

// Workload describes the shared critical-section benchmark: each of N
// processes alternates thinking (uniform in [1, ThinkMax]) and a critical
// section of CS time units, Rounds times. Message delay between distinct
// nodes is Delay (the paper's T; CS is the paper's Emax).
type Workload struct {
	N        int
	K        int // concurrent CS bound; 0 means N-1
	Rounds   int
	ThinkMax sim.Time
	CS       sim.Time
	Delay    sim.Time
	Seed     int64
	Trace    bool
	// Journal, when non-nil, records the run's structured event trace
	// (kernel + protocol events; see internal/obs).
	Journal *obs.Journal
	// Reg, when non-nil, receives the run's protocol metrics. Every
	// run records into a registry — a private one when Reg is nil —
	// and the returned Metrics is a *view over that registry*, so the
	// numbers a caller dumps in Prometheus format and the numbers the
	// experiment tables print cannot drift.
	Reg *obs.Registry
	// MetricLabels dimensions the metrics (a proto=... label is added
	// by each runner).
	MetricLabels []obs.Label
}

// meters resolves the workload's metric instruments for one protocol.
type meters struct {
	reg     *obs.Registry
	labels  []obs.Label
	ctl     *obs.Counter
	entries *obs.Counter
	resp    *obs.Histogram
	end     *obs.Gauge
}

func (w Workload) meters(proto string) meters {
	reg := w.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	labels := append([]obs.Label{obs.L("proto", proto)}, w.MetricLabels...)
	return meters{
		reg:     reg,
		labels:  labels,
		ctl:     reg.Counter("predctl_ctl_messages_total", labels...),
		entries: reg.Counter("predctl_cs_entries_total", labels...),
		resp:    reg.Histogram("predctl_response_vtime", labels...),
		end:     reg.Gauge("predctl_run_end_vtime", labels...),
	}
}

// metrics packages the registry's view as the legacy Metrics struct.
func (m meters) metrics() *Metrics {
	vals := m.resp.Values()
	responses := make([]sim.Time, len(vals))
	for i, v := range vals {
		responses[i] = sim.Time(v)
	}
	return &Metrics{
		CtlMessages: int(m.ctl.Value()),
		Entries:     int(m.entries.Value()),
		Responses:   responses,
		End:         sim.Time(m.end.Value()),
	}
}

func (w Workload) k() int {
	if w.K == 0 {
		return w.N - 1
	}
	return w.K
}

// Metrics aggregates protocol overhead for one run.
type Metrics struct {
	CtlMessages int        // protocol messages (excludes zero-delay local hops)
	Entries     int        // critical-section entries
	Responses   []sim.Time // request → entry latency per entry
	End         sim.Time   // completion time of the run
}

// MaxResponse returns the largest request latency.
func (m *Metrics) MaxResponse() sim.Time {
	var x sim.Time
	for _, r := range m.Responses {
		if r > x {
			x = r
		}
	}
	return x
}

// MeanResponse returns the average request latency.
func (m *Metrics) MeanResponse() float64 {
	if len(m.Responses) == 0 {
		return 0
	}
	var t sim.Time
	for _, r := range m.Responses {
		t += r
	}
	return float64(t) / float64(len(m.Responses))
}

// MessagesPerEntry is the paper's headline overhead metric.
func (m *Metrics) MessagesPerEntry() float64 {
	if m.Entries == 0 {
		return 0
	}
	return float64(m.CtlMessages) / float64(m.Entries)
}

func think(p *sim.Proc, w Workload) {
	p.Work(1 + sim.Time(p.Rand().Int63n(int64(w.ThinkMax))))
}

// RunScapegoat drives the workload through the on-line predicate-control
// strategy with B = ∨ᵢ ¬csᵢ — i.e. (n−1)-mutual exclusion via the
// anti-token (paper Figure 3; broadcast variant per §6).
func RunScapegoat(w Workload, broadcast bool) (*sim.Trace, *Metrics, error) {
	if w.k() != w.N-1 {
		return nil, nil, fmt.Errorf("kmutex: the anti-token solves only k = n-1 (n=%d, k=%d)", w.N, w.k())
	}
	apps := make([]func(*online.Guard), w.N)
	proto := "scapegoat"
	if broadcast {
		proto = "scapegoat-broadcast"
	}
	// The online layer owns the control-message counter and the
	// response histogram (the Guard observes each grant latency); the
	// workload records only what the protocol cannot see — CS entries.
	// Sharing one registry keyspace means the returned Metrics, the
	// Prometheus dump, and online.Stats are views of the same counts.
	m := w.meters(proto)
	for i := range apps {
		apps[i] = func(g *online.Guard) {
			p := g.P()
			p.Init("cs", 0)
			for r := 0; r < w.Rounds; r++ {
				think(p, w)
				g.RequestFalse()
				m.entries.Inc()
				p.Set("cs", 1)
				p.Work(w.CS)
				p.Set("cs", 0)
				g.NowTrue()
			}
		}
	}
	tr, _, err := online.Run(online.Config{
		N:            w.N,
		Delay:        w.Delay,
		Seed:         w.Seed,
		Trace:        w.Trace,
		Broadcast:    broadcast,
		Journal:      w.Journal,
		Reg:          m.reg,
		MetricLabels: m.labels,
	}, apps)
	if err != nil {
		return nil, nil, err
	}
	m.end.Set(int64(tr.Stats.End))
	return tr, m.metrics(), nil
}

// RunUncontrolled runs the workload with no synchronization at all: the
// baseline in which the bug "all processes in their critical sections"
// is possible. Used to show what control removes.
func RunUncontrolled(w Workload) (*sim.Trace, *Metrics, error) {
	m := w.meters("uncontrolled")
	k := sim.New(sim.Config{Procs: w.N, Delay: sim.ConstantDelay(w.Delay), Seed: w.Seed, Trace: w.Trace, Journal: w.Journal})
	bodies := make([]func(*sim.Proc), w.N)
	for i := range bodies {
		bodies[i] = func(p *sim.Proc) {
			p.Init("cs", 0)
			for r := 0; r < w.Rounds; r++ {
				think(p, w)
				m.entries.Inc()
				m.resp.Observe(0)
				p.Set("cs", 1)
				p.Work(w.CS)
				p.Set("cs", 0)
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		return nil, nil, err
	}
	m.end.Set(int64(tr.Stats.End))
	return tr, m.metrics(), nil
}

// --- Centralized coordinator ---

type centralKind int

const (
	centralReq centralKind = iota
	centralGrant
	centralRelease
)

type centralMsg struct{ kind centralKind }

// RunCentral runs a coordinator-based k-mutex: every entry costs a
// request, a grant, and a release (3 messages, ≥ 2T response), the
// textbook centralized algorithm the paper's distributed strategy is
// contrasted with.
func RunCentral(w Workload) (*sim.Trace, *Metrics, error) {
	m := w.meters("central")
	coord := w.N
	k := sim.New(sim.Config{Procs: w.N + 1, Delay: sim.ConstantDelay(w.Delay), Seed: w.Seed, Trace: w.Trace, Journal: w.Journal})
	bodies := make([]func(*sim.Proc), w.N+1)
	for i := 0; i < w.N; i++ {
		bodies[i] = func(p *sim.Proc) {
			p.Init("cs", 0)
			for r := 0; r < w.Rounds; r++ {
				think(p, w)
				start := p.Now()
				p.Send(coord, centralMsg{centralReq})
				m.ctl.Inc()
				for {
					from, raw := p.Recv()
					if from == coord && raw.(centralMsg).kind == centralGrant {
						break
					}
					panic("kmutex: unexpected message at client")
				}
				m.resp.Observe(int64(p.Now() - start))
				m.entries.Inc()
				p.Set("cs", 1)
				p.Work(w.CS)
				p.Set("cs", 0)
				p.Send(coord, centralMsg{centralRelease})
				m.ctl.Inc()
			}
		}
	}
	bodies[coord] = func(p *sim.Proc) {
		p.Daemon()
		active := 0
		var queue []int
		for {
			from, raw := p.Recv()
			switch raw.(centralMsg).kind {
			case centralReq:
				if active < w.k() {
					active++
					p.Send(from, centralMsg{centralGrant})
					m.ctl.Inc()
				} else {
					queue = append(queue, from)
				}
			case centralRelease:
				if len(queue) > 0 {
					next := queue[0]
					queue = queue[1:]
					p.Send(next, centralMsg{centralGrant})
					m.ctl.Inc()
				} else {
					active--
				}
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		return nil, nil, err
	}
	m.end.Set(int64(tr.Stats.End))
	return tr, m.metrics(), nil
}

// --- Distributed k-token algorithm ---

type tokenKind int

const (
	tokenReq tokenKind = iota
	tokenGrant
)

type tokenMsg struct{ kind tokenKind }

// RunToken runs a distributed k-token k-mutex: k tokens circulate; a
// process holding a token enters freely, a token-less process broadcasts
// a request and waits for any holder with a spare token to pass one on
// (the class of algorithms the paper's anti-token is contrasted with —
// k privileges instead of n−k liabilities).
func RunToken(w Workload) (*sim.Trace, *Metrics, error) {
	m := w.meters("token")
	k := sim.New(sim.Config{Procs: w.N, Delay: sim.ConstantDelay(w.Delay), Seed: w.Seed, Trace: w.Trace, Journal: w.Journal})
	bodies := make([]func(*sim.Proc), w.N)
	for i := 0; i < w.N; i++ {
		i := i
		bodies[i] = func(p *sim.Proc) {
			tokens := 0
			if i < w.k() {
				tokens = 1
			}
			inCS := false
			var queue []int // deferred requests
			grantSpare := func() {
				for len(queue) > 0 && tokens > 0 && !(inCS && tokens == 1) {
					to := queue[0]
					queue = queue[1:]
					tokens--
					p.Send(to, tokenMsg{tokenGrant})
					m.ctl.Inc()
				}
			}
			handle := func(from int, raw any) {
				switch raw.(tokenMsg).kind {
				case tokenReq:
					queue = append(queue, from)
					grantSpare()
				case tokenGrant:
					tokens++
				}
			}
			drain := func() {
				for {
					from, raw, ok := p.TryRecv()
					if !ok {
						return
					}
					handle(from, raw)
				}
			}
			p.Init("cs", 0)
			for r := 0; r < w.Rounds; r++ {
				think(p, w)
				drain()
				start := p.Now()
				if tokens == 0 {
					for q := 0; q < w.N; q++ {
						if q != i {
							p.Send(q, tokenMsg{tokenReq})
							m.ctl.Inc()
						}
					}
					for tokens == 0 {
						handle(p.Recv())
					}
				}
				m.resp.Observe(int64(p.Now() - start))
				m.entries.Inc()
				inCS = true
				p.Set("cs", 1)
				p.Work(w.CS)
				p.Set("cs", 0)
				inCS = false
				drain()
				grantSpare()
			}
			// Keep serving token requests as a daemon so late requesters
			// are never starved by an early finisher hoarding tokens.
			p.Daemon()
			for {
				handle(p.Recv())
				grantSpare()
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		return nil, nil, err
	}
	m.end.Set(int64(tr.Stats.End))
	return tr, m.metrics(), nil
}
