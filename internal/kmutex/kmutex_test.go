package kmutex

import (
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/sim"
)

func wl(n int, seed int64) Workload {
	return Workload{
		N:        n,
		Rounds:   5,
		ThinkMax: 60,
		CS:       20,
		Delay:    8,
		Seed:     seed,
		Trace:    true,
	}
}

// atMostK checks the traced computation never admits a consistent cut
// with more than k application processes in their critical sections.
// Exhaustive over the lattice; keep workloads small.
func atMostK(t *testing.T, tr *sim.Trace, n, k int, name string) {
	t.Helper()
	inCS := func(p, kk int) bool {
		if p >= n {
			return false
		}
		v, ok := tr.D.Var(deposet.StateID{P: p, K: kk}, "cs")
		return ok && v == 1
	}
	violated := false
	tr.D.ForEachConsistentCut(func(g deposet.Cut) bool {
		c := 0
		for p := 0; p < n; p++ {
			if inCS(p, g[p]) {
				c++
			}
		}
		if c > k {
			violated = true
			return false
		}
		return true
	})
	if violated {
		t.Fatalf("%s: more than %d processes in CS on a consistent cut", name, k)
	}
}

// allInCSImpossible is the fast (non-exhaustive) check used on bigger
// runs: k = n−1 safety is exactly "the all-in-CS cut is impossible".
func allInCSImpossible(t *testing.T, tr *sim.Trace, n int, name string) {
	t.Helper()
	if cut, ok := detect.PossiblyTruth(tr.D, func(p, kk int) bool {
		if p >= n {
			return true
		}
		v, found := tr.D.Var(deposet.StateID{P: p, K: kk}, "cs")
		return found && v == 1
	}); ok {
		t.Fatalf("%s: all processes in CS at %v", name, cut)
	}
}

func TestCentralSafety(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		tr, m, err := RunCentral(wl(n, int64(n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		atMostK(t, tr, n, n-1, "central")
		if m.Entries != n*5 {
			t.Errorf("n=%d: entries = %d", n, m.Entries)
		}
		// 3 messages per entry: request, grant, release.
		if m.CtlMessages != 3*m.Entries {
			t.Errorf("n=%d: messages = %d, want %d", n, m.CtlMessages, 3*m.Entries)
		}
		// Uncontended response is exactly 2T.
		for _, r := range m.Responses {
			if r < 2*wl(n, 0).Delay {
				t.Errorf("n=%d: response %d < 2T", n, r)
			}
		}
	}
}

func TestTokenSafety(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		tr, m, err := RunToken(wl(n, int64(n)*7))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		atMostK(t, tr, n, n-1, "token")
		if m.Entries != n*5 {
			t.Errorf("n=%d: entries = %d", n, m.Entries)
		}
	}
}

func TestScapegoatAdapter(t *testing.T) {
	tr, m, err := RunScapegoat(wl(3, 5), false)
	if err != nil {
		t.Fatal(err)
	}
	allInCSImpossible(t, tr, 3, "scapegoat")
	if m.Entries != 15 {
		t.Errorf("entries = %d", m.Entries)
	}
	if _, _, err := RunScapegoat(Workload{N: 4, K: 2}, false); err == nil {
		t.Error("k≠n-1 accepted by scapegoat adapter")
	}
}

func TestUncontrolledAdmitsViolation(t *testing.T) {
	w := wl(3, 9)
	w.ThinkMax = 2
	w.CS = 500 // long overlapping critical sections
	tr, m, err := RunUncontrolled(w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entries != 15 || m.CtlMessages != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if _, ok := detect.PossiblyTruth(tr.D, func(p, kk int) bool {
		v, found := tr.D.Var(deposet.StateID{P: p, K: kk}, "cs")
		return found && v == 1
	}); !ok {
		t.Fatal("uncontrolled run should admit the all-in-CS cut")
	}
}

func TestSmallerK(t *testing.T) {
	w := wl(4, 13)
	w.K = 2
	tr, _, err := RunCentral(w)
	if err != nil {
		t.Fatal(err)
	}
	atMostK(t, tr, 4, 2, "central k=2")
	tr2, _, err := RunToken(w)
	if err != nil {
		t.Fatal(err)
	}
	atMostK(t, tr2, 4, 2, "token k=2")
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{CtlMessages: 10, Entries: 4, Responses: []sim.Time{0, 6, 2}}
	if m.MessagesPerEntry() != 2.5 {
		t.Error("MessagesPerEntry wrong")
	}
	if m.MaxResponse() != 6 {
		t.Error("MaxResponse wrong")
	}
	if got := m.MeanResponse(); got < 2.6 || got > 2.7 {
		t.Errorf("MeanResponse = %v", got)
	}
	empty := &Metrics{}
	if empty.MessagesPerEntry() != 0 || empty.MeanResponse() != 0 {
		t.Error("empty metrics wrong")
	}
}

// TestOverheadComparison reproduces the shape of the paper's §6
// comparison on a common workload: the anti-token strategy uses fewer
// control messages per CS entry than both baselines.
func TestOverheadComparison(t *testing.T) {
	w := Workload{N: 6, Rounds: 20, ThinkMax: 200, CS: 15, Delay: 5, Seed: 77}
	_, mc, err := RunCentral(w)
	if err != nil {
		t.Fatal(err)
	}
	_, mt, err := RunToken(w)
	if err != nil {
		t.Fatal(err)
	}
	_, ms, err := RunScapegoat(w, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("messages/entry: central=%.2f token=%.2f scapegoat=%.2f",
		mc.MessagesPerEntry(), mt.MessagesPerEntry(), ms.MessagesPerEntry())
	if !(ms.MessagesPerEntry() < mt.MessagesPerEntry() &&
		ms.MessagesPerEntry() < mc.MessagesPerEntry()) {
		t.Errorf("anti-token should be cheapest: central=%.2f token=%.2f scapegoat=%.2f",
			mc.MessagesPerEntry(), mt.MessagesPerEntry(), ms.MessagesPerEntry())
	}
	// And roughly 2 messages per n entries, i.e. 2/n per entry.
	want := 2.0 / float64(w.N)
	if got := ms.MessagesPerEntry(); got > 4*want {
		t.Errorf("scapegoat messages/entry = %.3f, expected near %.3f", got, want)
	}
}

// Property: all three protocols maintain k = n−1 safety across seeds.
func TestProtocolsSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%3)
		w := Workload{
			N: n, Rounds: 3, ThinkMax: 40, CS: sim.Time(5 + uint64(seed>>8)%30),
			Delay: sim.Time(1 + uint64(seed>>16)%10), Seed: seed, Trace: true,
		}
		check := func(tr *sim.Trace, err error) bool {
			if err != nil {
				return false
			}
			_, bad := detect.PossiblyTruth(tr.D, func(p, kk int) bool {
				if p >= n {
					return true
				}
				v, found := tr.D.Var(deposet.StateID{P: p, K: kk}, "cs")
				return found && v == 1
			})
			return !bad
		}
		trc, _, errc := RunCentral(w)
		trt, _, errt := RunToken(w)
		trs, _, errs := RunScapegoat(w, seed%2 == 0)
		return check(trc, errc) && check(trt, errt) && check(trs, errs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
