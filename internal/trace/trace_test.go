package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/offline"
	"predctl/internal/predicate"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		d := deposet.Random(r, deposet.DefaultGen(3, 12))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.6))
		res, err := offline.Control(d, dj, offline.Options{})
		var rel control.Relation
		if err == nil {
			rel = res.Relation
		}
		var buf bytes.Buffer
		if err := Encode(&buf, d, rel); err != nil {
			t.Fatal(err)
		}
		d2, rel2, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if d2.NumProcs() != d.NumProcs() || d2.NumStates() != d.NumStates() {
			t.Fatal("shape mismatch")
		}
		if len(rel2) != len(rel) {
			t.Fatalf("control mismatch: %d vs %d", len(rel2), len(rel))
		}
		for i := range rel {
			if rel[i] != rel2[i] {
				t.Fatal("control edge mismatch")
			}
		}
		for p := 0; p < d.NumProcs(); p++ {
			for k := 0; k < d.Len(p); k++ {
				for q := 0; q < d.NumProcs(); q++ {
					for j := 0; j < d.Len(q); j++ {
						s, u := deposet.StateID{P: p, K: k}, deposet.StateID{P: q, K: j}
						if d.HB(s, u) != d2.HB(s, u) {
							t.Fatalf("HB mismatch at %v→%v", s, u)
						}
					}
				}
			}
		}
	}
}

func TestRoundTripVars(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Let(0, "x", 7)
	b.Step(0)
	b.Let(0, "x", 9)
	b.Step(1)
	d := b.MustBuild()
	var buf bytes.Buffer
	if err := Encode(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	d2, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := d2.Var(deposet.StateID{P: 0, K: 1}, "x")
	if !ok || v != 9 {
		t.Fatalf("x = %d,%v", v, ok)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []string{
		`{`,                         // malformed
		`{"version":99,"lens":[1]}`, // version
		`{"version":1,"lens":[0]}`,  // invalid deposet
		`{"version":1,"lens":[2,2],"control":[{"from_p":0,"from_k":1,"to_p":1,"to_k":0}]}`, // D1
	}
	for _, c := range cases {
		if _, _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestPredicateSpec(t *testing.T) {
	spec := DisjunctionSpec{Locals: []LocalSpec{
		{P: 0, Var: "cs", Op: "eq", Value: 0},
		{P: 1, Var: "cs", Op: "false"},
	}}
	var buf bytes.Buffer
	if err := EncodeDisjunction(&buf, spec); err != nil {
		t.Fatal(err)
	}
	spec2, err := DecodeDisjunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := spec2.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	b := deposet.NewBuilder(2)
	b.Let(0, "cs", 0)
	b.Let(1, "cs", 1)
	b.Step(0)
	b.Let(0, "cs", 1)
	d := b.MustBuild()
	if !dj.Holds(d, 0, 0) || dj.Holds(d, 0, 1) || dj.Holds(d, 1, 0) {
		t.Fatal("compiled predicate wrong")
	}
}

func TestPredicateSpecErrors(t *testing.T) {
	if _, err := (DisjunctionSpec{Locals: []LocalSpec{{P: 5}}}).Compile(2); err == nil {
		t.Error("bad process accepted")
	}
	if _, err := (DisjunctionSpec{Locals: []LocalSpec{{P: 0, Op: "weird"}}}).Compile(2); err == nil {
		t.Error("bad op accepted")
	}
	if _, err := DecodeDisjunction(strings.NewReader("{")); err == nil {
		t.Error("malformed predicate accepted")
	}
}

func TestCompareOps(t *testing.T) {
	cases := map[string][3]bool{ // results for (1,2), (2,2), (3,2)
		"eq": {false, true, false},
		"ne": {true, false, true},
		"lt": {true, false, false},
		"le": {true, true, false},
		"gt": {false, false, true},
		"ge": {false, true, true},
	}
	for op, want := range cases {
		f, err := compare(op)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range []int{1, 2, 3} {
			if f(a, 2) != want[i] {
				t.Errorf("%s(%d,2) = %v", op, a, f(a, 2))
			}
		}
	}
	tr, _ := compare("true")
	fa, _ := compare("false")
	if !tr(5, 0) || tr(0, 0) || !fa(0, 0) || fa(5, 0) {
		t.Error("true/false ops wrong")
	}
}
