// Package trace serializes computations, control relations and
// variable-based predicates to JSON, for the command-line tools: a trace
// captured from one run (or another system) can be analyzed, controlled
// and replayed offline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// Version is the current trace file format version.
const Version = 1

// File is the on-disk representation.
type File struct {
	Version int                `json:"version"`
	Lens    []int              `json:"lens"`
	Msgs    []Message          `json:"msgs,omitempty"`
	Vars    [][]map[string]int `json:"vars,omitempty"`
	Control []Edge             `json:"control,omitempty"`
}

// Message mirrors deposet.Message.
type Message struct {
	FromP     int `json:"from_p"`
	SendEvent int `json:"send_event"`
	ToP       int `json:"to_p"`
	RecvEvent int `json:"recv_event,omitempty"`
}

// Edge mirrors control.Edge.
type Edge struct {
	FromP int `json:"from_p"`
	FromK int `json:"from_k"`
	ToP   int `json:"to_p"`
	ToK   int `json:"to_k"`
}

// Encode writes d (and an optional control relation) as JSON.
func Encode(w io.Writer, d *deposet.Deposet, rel control.Relation) error {
	raw := d.Raw()
	f := File{Version: Version, Lens: raw.Lens, Vars: raw.Vars}
	for _, m := range raw.Msgs {
		f.Msgs = append(f.Msgs, Message{m.FromP, m.SendEvent, m.ToP, m.RecvEvent})
	}
	for _, e := range rel {
		f.Control = append(f.Control, Edge{e.From.P, e.From.K, e.To.P, e.To.K})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Decode reads a trace file back into a computation and control relation.
func Decode(r io.Reader) (*deposet.Deposet, control.Relation, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	if f.Version != Version {
		return nil, nil, fmt.Errorf("trace: unsupported version %d", f.Version)
	}
	raw := deposet.Raw{Lens: f.Lens, Vars: f.Vars}
	for _, m := range f.Msgs {
		raw.Msgs = append(raw.Msgs, deposet.Message{
			FromP: m.FromP, SendEvent: m.SendEvent, ToP: m.ToP, RecvEvent: m.RecvEvent,
		})
	}
	d, err := deposet.FromRaw(raw)
	if err != nil {
		return nil, nil, err
	}
	var rel control.Relation
	for _, e := range f.Control {
		rel = append(rel, control.Edge{
			From: deposet.StateID{P: e.FromP, K: e.FromK},
			To:   deposet.StateID{P: e.ToP, K: e.ToK},
		})
	}
	if rel != nil {
		if _, err := control.Extend(d, rel); err != nil {
			return nil, nil, err
		}
	}
	return d, rel, nil
}

// LocalSpec describes one variable-based local predicate.
type LocalSpec struct {
	P     int    `json:"p"`
	Var   string `json:"var"`
	Op    string `json:"op"` // eq ne lt le gt ge true false
	Value int    `json:"value,omitempty"`
}

// DisjunctionSpec describes B = l1 ∨ … ∨ ln over state variables.
type DisjunctionSpec struct {
	Locals []LocalSpec `json:"locals"`
}

// DecodeDisjunction reads a predicate spec.
func DecodeDisjunction(r io.Reader) (DisjunctionSpec, error) {
	var s DisjunctionSpec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("trace: predicate: %w", err)
	}
	return s, nil
}

// EncodeDisjunction writes a predicate spec.
func EncodeDisjunction(w io.Writer, s DisjunctionSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// Compile turns the spec into an evaluatable disjunction over n processes.
func (s DisjunctionSpec) Compile(n int) (*predicate.Disjunction, error) {
	dj := predicate.NewDisjunction(n)
	for _, l := range s.Locals {
		if l.P < 0 || l.P >= n {
			return nil, fmt.Errorf("trace: predicate names process %d of %d", l.P, n)
		}
		cmp, err := compare(l.Op)
		if err != nil {
			return nil, err
		}
		l := l
		name := fmt.Sprintf("%s %s %d", l.Var, l.Op, l.Value)
		dj.Add(l.P, name, func(d *deposet.Deposet, k int) bool {
			v, ok := d.Var(deposet.StateID{P: l.P, K: k}, l.Var)
			return ok && cmp(v, l.Value)
		})
	}
	return dj, nil
}

func compare(op string) (func(a, b int) bool, error) {
	switch op {
	case "eq":
		return func(a, b int) bool { return a == b }, nil
	case "ne":
		return func(a, b int) bool { return a != b }, nil
	case "lt":
		return func(a, b int) bool { return a < b }, nil
	case "le":
		return func(a, b int) bool { return a <= b }, nil
	case "gt":
		return func(a, b int) bool { return a > b }, nil
	case "ge":
		return func(a, b int) bool { return a >= b }, nil
	case "true":
		return func(a, _ int) bool { return a != 0 }, nil
	case "false":
		return func(a, _ int) bool { return a == 0 }, nil
	}
	return nil, fmt.Errorf("trace: unknown op %q", op)
}
