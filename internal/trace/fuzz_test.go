package trace

import (
	"bytes"
	"strings"
	"testing"

	"predctl/internal/deposet"
)

// FuzzDecode ensures arbitrary input never panics the trace decoder and
// that anything it accepts round-trips.
func FuzzDecode(f *testing.F) {
	b := deposet.NewBuilder(2)
	b.Let(0, "x", 1)
	b.Transfer(0, 1)
	d := b.MustBuild()
	var buf bytes.Buffer
	if err := Encode(&buf, d, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"lens":[1]}`)
	f.Add(`{"version":1,"lens":[2,2],"msgs":[{"from_p":0,"send_event":1,"to_p":1,"recv_event":1}]}`)
	f.Add(`{`)
	f.Add(`{"version":1,"lens":[0]}`)
	f.Fuzz(func(t *testing.T, s string) {
		d, rel, err := Decode(strings.NewReader(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Encode(&out, d, rel); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		if _, _, err := Decode(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzDecodeDisjunction ensures predicate specs never panic and compile
// only with valid ops/processes.
func FuzzDecodeDisjunction(f *testing.F) {
	f.Add(`{"locals":[{"p":0,"var":"x","op":"eq","value":1}]}`)
	f.Add(`{"locals":[{"p":9,"var":"x","op":"weird"}]}`)
	f.Add(`{"locals":null}`)
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := DecodeDisjunction(strings.NewReader(s))
		if err != nil {
			return
		}
		spec.Compile(3) // must not panic; errors are fine
	})
}
