// Package predicate defines global predicates over deposet global states:
// boolean combinations (∧, ∨, ¬) of local predicates, where a local
// predicate is a boolean function of one process's state. It recognizes
// the disjunctive class B = l1 ∨ l2 ∨ … ∨ ln that the paper's efficient
// control algorithms handle, and the conjunctive class that the
// detection algorithms handle.
package predicate

import (
	"fmt"
	"strings"

	"predctl/internal/deposet"
)

// LocalFn is the truth of a local predicate at state (p, k) of d. The
// process p is fixed by the enclosing Local expression; the function
// receives only the state index.
type LocalFn func(d *deposet.Deposet, k int) bool

// Expr is a global predicate.
type Expr interface {
	// Eval evaluates the predicate at global state g of d.
	Eval(d *deposet.Deposet, g deposet.Cut) bool
	String() string
}

type localExpr struct {
	p    int
	name string
	fn   LocalFn
}

type andExpr struct{ xs []Expr }
type orExpr struct{ xs []Expr }
type notExpr struct{ x Expr }
type constExpr struct{ v bool }

// Local builds a local predicate of process p. The name is used only for
// display.
func Local(p int, name string, fn LocalFn) Expr { return &localExpr{p, name, fn} }

// And, Or and Not combine predicates. And() is true, Or() is false.
func And(xs ...Expr) Expr { return &andExpr{xs} }
func Or(xs ...Expr) Expr  { return &orExpr{xs} }
func Not(x Expr) Expr     { return &notExpr{x} }

// Const is a constant predicate.
func Const(v bool) Expr { return &constExpr{v} }

func (e *localExpr) Eval(d *deposet.Deposet, g deposet.Cut) bool { return e.fn(d, g[e.p]) }
func (e *localExpr) String() string                              { return fmt.Sprintf("%s@P%d", e.name, e.p) }

func (e *andExpr) Eval(d *deposet.Deposet, g deposet.Cut) bool {
	for _, x := range e.xs {
		if !x.Eval(d, g) {
			return false
		}
	}
	return true
}

func (e *orExpr) Eval(d *deposet.Deposet, g deposet.Cut) bool {
	for _, x := range e.xs {
		if x.Eval(d, g) {
			return true
		}
	}
	return false
}

func (e *notExpr) Eval(d *deposet.Deposet, g deposet.Cut) bool { return !e.x.Eval(d, g) }

func (e *constExpr) Eval(*deposet.Deposet, deposet.Cut) bool { return e.v }

func joinExprs(xs []Expr, op, empty string) string {
	if len(xs) == 0 {
		return empty
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

func (e *andExpr) String() string { return joinExprs(e.xs, "∧", "true") }
func (e *orExpr) String() string  { return joinExprs(e.xs, "∨", "false") }
func (e *notExpr) String() string { return "¬" + e.x.String() }
func (e *constExpr) String() string {
	if e.v {
		return "true"
	}
	return "false"
}

// Common local predicate builders. Each bundles its process index so the
// returned Expr can read that process's variables.

// LocalVarEq returns a local predicate of process p that holds when
// variable name equals v.
func LocalVarEq(p int, name string, v int) Expr {
	return Local(p, fmt.Sprintf("%s=%d", name, v), func(d *deposet.Deposet, k int) bool {
		x, ok := d.Var(deposet.StateID{P: p, K: k}, name)
		return ok && x == v
	})
}

// LocalVarTrue returns a local predicate of process p that holds when
// variable name is set and non-zero.
func LocalVarTrue(p int, name string) Expr {
	return Local(p, name, func(d *deposet.Deposet, k int) bool {
		x, ok := d.Var(deposet.StateID{P: p, K: k}, name)
		return ok && x != 0
	})
}

// LocalAfter returns a local predicate of process p that holds from state
// index k0 onward ("the event has happened": after_x in the paper's
// property 3).
func LocalAfter(p, k0 int) Expr {
	return Local(p, fmt.Sprintf("after%d", k0), func(_ *deposet.Deposet, k int) bool {
		return k >= k0
	})
}

// LocalBefore returns a local predicate of process p that holds strictly
// before state index k0 ("the event has not happened yet": before_y).
func LocalBefore(p, k0 int) Expr {
	return Local(p, fmt.Sprintf("before%d", k0), func(_ *deposet.Deposet, k int) bool {
		return k < k0
	})
}
