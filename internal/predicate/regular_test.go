package predicate

import (
	"testing"

	"predctl/internal/deposet"
)

// TestIsRegular drives the classifier over every Expr form: Local, And,
// Or, Not, Const, compiled bitExpr leaves, and the Disjunction /
// Conjunction recognized forms — including the nested
// conjunction-of-disjunction shapes that must be rejected because a
// cross-process disjunction is not min-closed.
func TestIsRegular(t *testing.T) {
	d := twoProc(t)
	l0 := LocalVarEq(0, "x", 1)
	l0b := LocalVarEq(0, "x", 2)
	l1 := LocalVarEq(1, "y", 1)
	l1b := LocalVarEq(1, "y", 2)
	compiled := Compile(Or(l0, l0b), d) // or of bitExpr leaves, one process

	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"local", l0, true},
		{"const-true", Const(true), true},
		{"const-false", Const(false), true},
		{"not-local", Not(l0), true},
		{"conjunction", And(l0, l1), true},
		{"empty-and", And(), true},
		{"empty-or", Or(), true},
		{"nested-and", And(And(l0, l1), l1b), true},
		{"single-proc-or", Or(l0, l0b), true},
		{"compiled-single-proc-or", compiled, true},
		{"and-of-single-proc-ors", And(Or(l0, l0b), Or(l1, l1b)), true},
		{"demorgan-not-or", Not(Or(l0, l1)), true},          // = ¬l0 ∧ ¬l1
		{"demorgan-not-and-1proc", Not(And(l0, l0b)), true}, // one process
		{"not-not", Not(Not(And(l0, l1))), true},
		{"const-only-or", Or(Const(false), Const(true)), true},
		{"and-with-const", And(l0, Const(true), l1), true},
		{"or-with-const-false", Or(l0, Const(false)), true},

		{"cross-proc-or", Or(l0, l1), false},
		{"not-conjunction", Not(And(l0, l1)), false}, // = l̄0 ∨ l̄1 across procs
		{"conj-of-cross-disj", And(Or(l0, l1), l0b), false},
		{"nested-conj-of-disj", And(l0, And(Or(l0b, l1), l1b)), false},
		{"disj-of-conj", Or(And(l0, l1), l1b), false},
		{"deep-neg-flip", Not(And(Not(l0), Not(l1))), false}, // = l0 ∨ l1
	}
	for _, c := range cases {
		if got := IsRegular(c.e); got != c.want {
			t.Errorf("IsRegular(%s) [%s] = %v, want %v", c.e, c.name, got, c.want)
		}
	}
}

// Or(l0, l1, Const(true)) is a multi-process disjunction, so the
// classifier rejects it even though it is semantically constant true
// (and hence regular): the fragment is syntactic. Pin that choice.
func TestIsRegularSyntacticNotSemantic(t *testing.T) {
	l0 := LocalVarEq(0, "x", 1)
	l1 := LocalVarEq(1, "y", 1)
	if IsRegular(Or(l0, l1, Const(true))) {
		t.Fatal("multi-process Or must be rejected even when semantically constant")
	}
}

// TestRegularTable checks the factored table against direct evaluation:
// for a regular e, e.Eval(d, g) must equal ∧p table.Holds(p, g[p]) over
// every cut of a small computation.
func TestRegularTable(t *testing.T) {
	d := twoProc(t)
	l0 := LocalVarEq(0, "x", 1)
	l0b := LocalVarEq(0, "x", 2)
	l1 := LocalVarEq(1, "y", 1)
	exprs := []Expr{
		And(l0, l1),
		Not(Or(l0, l1)),
		And(Or(l0, l0b), l1),
		Not(Or(Not(l0), Not(l1))), // double De Morgan = l0 ∧ l1
		Const(false),
		Const(true),
		Compile(And(Or(l0, l0b), Not(l1)), d),
	}
	for _, e := range exprs {
		tab, ok := RegularTable(e, d)
		if !ok {
			t.Fatalf("RegularTable(%s) rejected a regular predicate", e)
		}
		g := make(deposet.Cut, 2)
		for g[0] = 0; g[0] < d.Len(0); g[0]++ {
			for g[1] = 0; g[1] < d.Len(1); g[1]++ {
				want := e.Eval(d, g)
				got := tab.Holds(0, g[0]) && tab.Holds(1, g[1])
				if got != want {
					t.Errorf("%s at %v: table %v, eval %v", e, g, got, want)
				}
			}
		}
	}
}

func TestRegularTableRejectsNonRegular(t *testing.T) {
	d := twoProc(t)
	e := Or(LocalVarEq(0, "x", 1), LocalVarEq(1, "y", 1))
	if tab, ok := RegularTable(e, d); ok || tab != nil {
		t.Fatal("cross-process disjunction must be rejected")
	}
}
