package predicate

import "predctl/internal/deposet"

// TruthTable is a packed per-state truth table: one bit per local state
// of a computation, indexed (p, k). It is the precomputed form of a
// per-process family of local predicates, built once and then queried
// with a shift and a mask — no closure call, no interface dispatch, no
// allocation. Use it where the same local predicates are evaluated
// repeatedly over the computation (the off-line controller's two passes,
// lattice enumeration); single-pass scans are better off calling the
// predicate closures directly, since a table build is itself one pass.
type TruthTable struct {
	lens []int
	off  []int // off[p]: bit index of state (p, 0)
	bits []uint64
}

// NewTruthTable allocates an all-false table for a computation whose
// process p has lens[p] states.
func NewTruthTable(lens []int) *TruthTable {
	t := &TruthTable{lens: append([]int(nil), lens...), off: make([]int, len(lens))}
	total := 0
	for p, l := range lens {
		t.off[p] = total
		total += l
	}
	t.bits = make([]uint64, (total+63)/64)
	return t
}

// NumProcs returns the number of processes the table ranges over.
func (t *TruthTable) NumProcs() int { return len(t.lens) }

// Len returns the number of states of process p.
func (t *TruthTable) Len(p int) int { return t.lens[p] }

// Set records the truth value at state (p, k).
func (t *TruthTable) Set(p, k int, v bool) {
	i := t.off[p] + k
	if v {
		t.bits[i>>6] |= 1 << (i & 63)
	} else {
		t.bits[i>>6] &^= 1 << (i & 63)
	}
}

// Holds reports the truth value at state (p, k).
func (t *TruthTable) Holds(p, k int) bool {
	i := t.off[p] + k
	return t.bits[i>>6]>>(i&63)&1 != 0
}

// NotHolds reports the negated truth value at state (p, k). It exists so
// a table of B's locals can be passed directly where ¬B is needed
// (method values: t.NotHolds).
func (t *TruthTable) NotHolds(p, k int) bool { return !t.Holds(p, k) }

// Invert returns a new table with every state's truth value negated.
func (t *TruthTable) Invert() *TruthTable {
	u := NewTruthTable(t.lens)
	for i, w := range t.bits {
		u.bits[i] = ^w
	}
	return u
}

// TruthTable materializes the packed truth table of the disjunction's
// locals on d: Holds(p, k) = lp(p, k). Processes without a disjunct are
// all-false, matching Disjunction.Holds.
func (dj *Disjunction) TruthTable(d *deposet.Deposet) *TruthTable {
	lens := make([]int, dj.n)
	for p := range lens {
		lens[p] = d.Len(p)
	}
	t := NewTruthTable(lens)
	for p := 0; p < dj.n; p++ {
		fn := dj.locals[p]
		if fn == nil {
			continue
		}
		for k := 0; k < lens[p]; k++ {
			if fn(d, k) {
				t.Set(p, k, true)
			}
		}
	}
	return t
}

// TruthTable materializes the packed truth table of the conjunction's
// conjuncts on d: Holds(p, k) = qp(p, k). Processes without a conjunct
// are all-true, matching Conjunction.Holds.
func (cj *Conjunction) TruthTable(d *deposet.Deposet) *TruthTable {
	lens := make([]int, cj.n)
	for p := range lens {
		lens[p] = d.Len(p)
	}
	t := NewTruthTable(lens)
	for p := 0; p < cj.n; p++ {
		fn := cj.locals[p]
		for k := 0; k < lens[p]; k++ {
			if fn == nil || fn(d, k) {
				t.Set(p, k, true)
			}
		}
	}
	return t
}

// bitExpr is a compiled local predicate: its truth over every state of
// its process, packed. Eval is a load, a shift and a mask.
type bitExpr struct {
	p    int
	name string
	bits []uint64
}

func (e *bitExpr) Eval(_ *deposet.Deposet, g deposet.Cut) bool {
	k := g[e.p]
	return e.bits[k>>6]>>(k&63)&1 != 0
}

func (e *bitExpr) String() string { return (&localExpr{p: e.p, name: e.name}).String() }

// Compile precomputes every Local leaf of e over d, returning an
// equivalent expression whose leaves are packed bit rows. Evaluating the
// result never calls a LocalFn, so repeated evaluation — one Eval per
// consistent cut during lattice enumeration — costs O(leaves) bit tests
// per cut regardless of how expensive the original local predicates are.
// The compiled expression is only valid for the computation it was
// compiled against.
func Compile(e Expr, d *deposet.Deposet) Expr {
	switch x := e.(type) {
	case *localExpr:
		l := d.Len(x.p)
		bits := make([]uint64, (l+63)/64)
		for k := 0; k < l; k++ {
			if x.fn(d, k) {
				bits[k>>6] |= 1 << (k & 63)
			}
		}
		return &bitExpr{p: x.p, name: x.name, bits: bits}
	case *andExpr:
		xs := make([]Expr, len(x.xs))
		for i, sub := range x.xs {
			xs[i] = Compile(sub, d)
		}
		return &andExpr{xs}
	case *orExpr:
		xs := make([]Expr, len(x.xs))
		for i, sub := range x.xs {
			xs[i] = Compile(sub, d)
		}
		return &orExpr{xs}
	case *notExpr:
		return &notExpr{Compile(x.x, d)}
	default:
		return e
	}
}
