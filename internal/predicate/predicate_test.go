package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
)

// twoProc builds a 2-process computation with 3 states each and variables
// x (on P0) and y (on P1) stepping 0,1,2.
func twoProc(t testing.TB) *deposet.Deposet {
	b := deposet.NewBuilder(2)
	b.Let(0, "x", 0)
	b.Let(1, "y", 0)
	b.Step(0)
	b.Let(0, "x", 1)
	b.Step(0)
	b.Let(0, "x", 2)
	b.Step(1)
	b.Let(1, "y", 1)
	b.Step(1)
	b.Let(1, "y", 2)
	return b.MustBuild()
}

func TestEvalBasics(t *testing.T) {
	d := twoProc(t)
	x1 := LocalVarEq(0, "x", 1)
	y2 := LocalVarEq(1, "y", 2)
	g := deposet.Cut{1, 2}
	if !x1.Eval(d, g) || !y2.Eval(d, g) {
		t.Fatal("local eval wrong")
	}
	if !And(x1, y2).Eval(d, g) {
		t.Error("and wrong")
	}
	if !Or(x1, LocalVarEq(1, "y", 9)).Eval(d, g) {
		t.Error("or wrong")
	}
	if Not(x1).Eval(d, g) {
		t.Error("not wrong")
	}
	if !And().Eval(d, g) || Or().Eval(d, g) {
		t.Error("empty connectives wrong")
	}
	if !Const(true).Eval(d, g) || Const(false).Eval(d, g) {
		t.Error("const wrong")
	}
	if And(x1, Const(false)).Eval(d, g) {
		t.Error("short-circuit and wrong")
	}
}

func TestVarPredicates(t *testing.T) {
	d := twoProc(t)
	if !LocalVarTrue(0, "x").Eval(d, deposet.Cut{2, 0}) {
		t.Error("VarTrue at x=2 should hold")
	}
	if LocalVarTrue(0, "x").Eval(d, deposet.Cut{0, 0}) {
		t.Error("VarTrue at x=0 should not hold")
	}
	if LocalVarTrue(0, "missing").Eval(d, deposet.Cut{2, 0}) {
		t.Error("VarTrue on unset var should not hold")
	}
	if LocalVarEq(0, "missing", 0).Eval(d, deposet.Cut{0, 0}) {
		t.Error("VarEq on unset var should not hold")
	}
}

func TestAfterBefore(t *testing.T) {
	d := twoProc(t)
	after := LocalAfter(0, 2)
	before := LocalBefore(1, 1)
	if after.Eval(d, deposet.Cut{1, 0}) || !after.Eval(d, deposet.Cut{2, 0}) {
		t.Error("LocalAfter wrong")
	}
	if !before.Eval(d, deposet.Cut{0, 0}) || before.Eval(d, deposet.Cut{0, 1}) {
		t.Error("LocalBefore wrong")
	}
}

func TestStrings(t *testing.T) {
	x := LocalVarEq(0, "x", 1)
	y := LocalVarTrue(1, "y")
	cases := []struct {
		e    Expr
		want string
	}{
		{x, "x=1@P0"},
		{y, "y@P1"},
		{And(x, y), "(x=1@P0 ∧ y@P1)"},
		{Or(x, y), "(x=1@P0 ∨ y@P1)"},
		{Not(x), "¬x=1@P0"},
		{And(), "true"},
		{Or(), "false"},
		{Const(true), "true"},
		{Const(false), "false"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestDisjunction(t *testing.T) {
	d := twoProc(t)
	dj := NewDisjunction(2)
	dj.Add(0, "x=2", func(dd *deposet.Deposet, k int) bool {
		v, _ := dd.Var(deposet.StateID{P: 0, K: k}, "x")
		return v == 2
	})
	if dj.NumProcs() != 2 {
		t.Error("NumProcs wrong")
	}
	if !dj.HasLocal(0) || dj.HasLocal(1) {
		t.Error("HasLocal wrong")
	}
	if dj.Holds(d, 1, 0) {
		t.Error("absent disjunct must be false")
	}
	if !dj.Eval(d, deposet.Cut{2, 0}) || dj.Eval(d, deposet.Cut{1, 2}) {
		t.Error("Eval wrong")
	}
	truth := dj.Truth(d)
	want0 := []bool{false, false, true}
	for k, w := range want0 {
		if truth[0][k] != w {
			t.Errorf("truth[0][%d] = %v, want %v", k, truth[0][k], w)
		}
	}
	for k := range truth[1] {
		if truth[1][k] {
			t.Errorf("truth[1][%d] should be false", k)
		}
	}
	if got := dj.String(); got != "x=2@P0" {
		t.Errorf("String = %q", got)
	}
	if got := NewDisjunction(2).String(); got != "false" {
		t.Errorf("empty disjunction String = %q", got)
	}
	// Expr round-trip evaluates identically.
	e := dj.Expr()
	d.ForEachConsistentCut(func(g deposet.Cut) bool {
		if e.Eval(d, g) != dj.Eval(d, g) {
			t.Fatalf("Expr mismatch at %v", g)
		}
		return true
	})
}

func TestDisjunctionDoubleAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDisjunction(2).Add(0, "a", nilFn).Add(0, "b", nilFn)
}

func TestConjunctionDoubleAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewConjunction(2).Add(0, "a", nilFn).Add(0, "b", nilFn)
}

func nilFn(*deposet.Deposet, int) bool { return true }

func TestDisjunctionFromTruth(t *testing.T) {
	d := twoProc(t)
	truth := [][]bool{{true, false, true}, {false, true, false}}
	dj := DisjunctionFromTruth(truth)
	for p := range truth {
		for k, w := range truth[p] {
			if dj.Holds(d, p, k) != w {
				t.Errorf("Holds(%d,%d) = %v, want %v", p, k, !w, w)
			}
		}
	}
}

func TestAsDisjunction(t *testing.T) {
	a := Local(0, "a", nilFn)
	b := Local(1, "b", nilFn)
	if _, ok := AsDisjunction(Or(a, b), 2); !ok {
		t.Error("flat or rejected")
	}
	if _, ok := AsDisjunction(Or(a, Or(b)), 2); !ok {
		t.Error("nested or rejected")
	}
	if _, ok := AsDisjunction(a, 2); !ok {
		t.Error("single local rejected")
	}
	if _, ok := AsDisjunction(Or(a, Const(false)), 2); !ok {
		t.Error("or with false rejected")
	}
	if _, ok := AsDisjunction(Or(a, Const(true)), 2); ok {
		t.Error("or with true accepted")
	}
	if _, ok := AsDisjunction(And(a, b), 2); ok {
		t.Error("and accepted")
	}
	if _, ok := AsDisjunction(Not(a), 2); ok {
		t.Error("not accepted")
	}
	if _, ok := AsDisjunction(Or(a, Local(0, "a2", nilFn)), 2); ok {
		t.Error("two locals on one process accepted")
	}
	if _, ok := AsDisjunction(Local(5, "z", nilFn), 2); ok {
		t.Error("out-of-range process accepted")
	}
}

func TestConjunction(t *testing.T) {
	d := twoProc(t)
	cj := NewConjunction(2)
	cj.Add(0, "x>0", func(dd *deposet.Deposet, k int) bool {
		v, _ := dd.Var(deposet.StateID{P: 0, K: k}, "x")
		return v > 0
	})
	if cj.NumProcs() != 2 {
		t.Error("NumProcs wrong")
	}
	if !cj.Holds(d, 1, 0) {
		t.Error("absent conjunct must be true")
	}
	if !cj.Eval(d, deposet.Cut{1, 0}) || cj.Eval(d, deposet.Cut{0, 0}) {
		t.Error("Eval wrong")
	}
	if got := cj.String(); got != "x>0@P0" {
		t.Errorf("String = %q", got)
	}
	if got := NewConjunction(1).String(); got != "true" {
		t.Errorf("empty conjunction String = %q", got)
	}
}

// Property: Negate is pointwise complement — for every consistent cut,
// dj.Eval = !cj.Eval exactly when every process carries a disjunct; in
// general ∧¬lp is false ⇒ ∨lp is true on processes that have locals, and
// the conjunction treats missing locals as ¬false = true.
func TestNegateComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		dj := DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
		cj := dj.Negate()
		ok := true
		d.ForEachConsistentCut(func(g deposet.Cut) bool {
			if dj.Eval(d, g) == cj.Eval(d, g) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNegateSkipsMissingLocals(t *testing.T) {
	d := twoProc(t)
	dj := NewDisjunction(2)
	dj.Add(0, "never", func(*deposet.Deposet, int) bool { return false })
	cj := dj.Negate()
	// P1 has no disjunct: the conjunct there must be constant true.
	if !cj.Holds(d, 1, 0) {
		t.Error("missing local should negate to true conjunct")
	}
	if !cj.Holds(d, 0, 0) {
		t.Error("¬never should hold")
	}
}

func TestAsConjunction(t *testing.T) {
	a := Local(0, "a", nilFn)
	b := Local(1, "b", nilFn)
	if _, ok := AsConjunction(And(a, b), 2); !ok {
		t.Error("flat and rejected")
	}
	if _, ok := AsConjunction(And(a, And(b)), 2); !ok {
		t.Error("nested and rejected")
	}
	if _, ok := AsConjunction(a, 2); !ok {
		t.Error("single local rejected")
	}
	if _, ok := AsConjunction(And(a, Const(true)), 2); !ok {
		t.Error("and with true rejected")
	}
	if _, ok := AsConjunction(And(a, Const(false)), 2); ok {
		t.Error("and with false accepted")
	}
	if _, ok := AsConjunction(Or(a, b), 2); ok {
		t.Error("or accepted")
	}
	if _, ok := AsConjunction(Not(a), 2); ok {
		t.Error("not accepted")
	}
	if _, ok := AsConjunction(And(a, Local(0, "a2", nilFn)), 2); ok {
		t.Error("two locals on one process accepted")
	}
	if _, ok := AsConjunction(Local(9, "z", nilFn), 2); ok {
		t.Error("out-of-range process accepted")
	}
}
