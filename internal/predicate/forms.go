package predicate

import (
	"fmt"
	"strings"

	"predctl/internal/deposet"
)

// Disjunction is a predicate in the paper's disjunctive form
// B = l1 ∨ l2 ∨ … ∨ ln, with at most one local predicate per process.
// Processes without a local predicate contribute the constant false (they
// can never discharge B). This is the class the off-line and on-line
// control algorithms accept.
type Disjunction struct {
	n      int
	locals []LocalFn // indexed by process; nil means constant false
	names  []string
}

// NewDisjunction starts an empty disjunction over n processes (constant
// false until locals are added).
func NewDisjunction(n int) *Disjunction {
	return &Disjunction{n: n, locals: make([]LocalFn, n), names: make([]string, n)}
}

// Add sets the local predicate (disjunct) of process p. At most one local
// per process; adding a second panics, since l ∨ l' of one process is a
// single local predicate and should be expressed as one.
func (dj *Disjunction) Add(p int, name string, fn LocalFn) *Disjunction {
	if dj.locals[p] != nil {
		panic(fmt.Sprintf("predicate: process %d already has a disjunct", p))
	}
	dj.locals[p] = fn
	dj.names[p] = name
	return dj
}

// NumProcs returns the number of processes the disjunction ranges over.
func (dj *Disjunction) NumProcs() int { return dj.n }

// HasLocal reports whether process p contributes a disjunct.
func (dj *Disjunction) HasLocal(p int) bool { return dj.locals[p] != nil }

// Holds evaluates the local predicate lp at state (p, k); processes
// without a disjunct are always false.
func (dj *Disjunction) Holds(d *deposet.Deposet, p, k int) bool {
	if dj.locals[p] == nil {
		return false
	}
	return dj.locals[p](d, k)
}

// Eval evaluates the disjunction at global state g.
func (dj *Disjunction) Eval(d *deposet.Deposet, g deposet.Cut) bool {
	for p := 0; p < dj.n; p++ {
		if dj.Holds(d, p, g[p]) {
			return true
		}
	}
	return false
}

// Expr returns the disjunction as a general predicate expression.
func (dj *Disjunction) Expr() Expr {
	var xs []Expr
	for p := 0; p < dj.n; p++ {
		if dj.locals[p] != nil {
			xs = append(xs, Local(p, dj.names[p], dj.locals[p]))
		}
	}
	return Or(xs...)
}

func (dj *Disjunction) String() string {
	var parts []string
	for p := 0; p < dj.n; p++ {
		if dj.locals[p] != nil {
			parts = append(parts, fmt.Sprintf("%s@P%d", dj.names[p], p))
		}
	}
	if len(parts) == 0 {
		return "false"
	}
	return strings.Join(parts, " ∨ ")
}

// Truth materializes the per-state truth table of the disjunction's
// locals on d: Truth[p][k] = lp(p, k).
func (dj *Disjunction) Truth(d *deposet.Deposet) [][]bool {
	t := make([][]bool, dj.n)
	for p := 0; p < dj.n; p++ {
		t[p] = make([]bool, d.Len(p))
		for k := range t[p] {
			t[p][k] = dj.Holds(d, p, k)
		}
	}
	return t
}

// DisjunctionFromTruth builds a disjunction directly from a truth table
// (used by generators and benchmarks): truth[p][k] is lp at state (p,k).
func DisjunctionFromTruth(truth [][]bool) *Disjunction {
	dj := NewDisjunction(len(truth))
	for p := range truth {
		tp := truth[p]
		dj.Add(p, fmt.Sprintf("l%d", p), func(_ *deposet.Deposet, k int) bool {
			return tp[k]
		})
	}
	return dj
}

// AsDisjunction recognizes expressions of the form l1 ∨ … ∨ lk (arbitrary
// nesting of Or over Local leaves, each process at most once) over n
// processes. It returns false for anything else — including And, Not, and
// two locals on one process (which would need merging the caller should
// do explicitly).
func AsDisjunction(e Expr, n int) (*Disjunction, bool) {
	dj := NewDisjunction(n)
	ok := collectDisjuncts(e, dj)
	return dj, ok
}

func collectDisjuncts(e Expr, dj *Disjunction) bool {
	switch x := e.(type) {
	case *localExpr:
		if x.p < 0 || x.p >= dj.n || dj.locals[x.p] != nil {
			return false
		}
		dj.locals[x.p] = x.fn
		dj.names[x.p] = x.name
		return true
	case *orExpr:
		for _, sub := range x.xs {
			if !collectDisjuncts(sub, dj) {
				return false
			}
		}
		return true
	case *constExpr:
		// false is the identity of ∨; true is not disjunctive-with-locals.
		return !x.v
	default:
		return false
	}
}

// AsConjunction recognizes expressions of the form q1 ∧ … ∧ qk
// (arbitrary nesting of And over Local leaves, each process at most
// once) over n processes — the detectable class. It returns false for
// anything else.
func AsConjunction(e Expr, n int) (*Conjunction, bool) {
	cj := NewConjunction(n)
	ok := collectConjuncts(e, cj)
	return cj, ok
}

func collectConjuncts(e Expr, cj *Conjunction) bool {
	switch x := e.(type) {
	case *localExpr:
		if x.p < 0 || x.p >= cj.n || cj.locals[x.p] != nil {
			return false
		}
		cj.locals[x.p] = x.fn
		cj.names[x.p] = x.name
		return true
	case *andExpr:
		for _, sub := range x.xs {
			if !collectConjuncts(sub, cj) {
				return false
			}
		}
		return true
	case *constExpr:
		// true is the identity of ∧; false is not conjunctive-with-locals.
		return x.v
	default:
		return false
	}
}

// Conjunction is a predicate of the form q1 ∧ q2 ∧ … ∧ qn with at most
// one local predicate per process; processes without a conjunct are
// constant true. This is the class accepted by the detection algorithms
// (possibly/definitely). The negation of a disjunctive predicate is a
// conjunction, which is how control and detection meet: a deposet
// satisfies B = ∨ li iff ¬possibly(∧ ¬li).
type Conjunction struct {
	n      int
	locals []LocalFn // nil means constant true
	names  []string
}

// NewConjunction starts an empty conjunction over n processes (constant
// true until conjuncts are added).
func NewConjunction(n int) *Conjunction {
	return &Conjunction{n: n, locals: make([]LocalFn, n), names: make([]string, n)}
}

// Add sets the conjunct of process p.
func (cj *Conjunction) Add(p int, name string, fn LocalFn) *Conjunction {
	if cj.locals[p] != nil {
		panic(fmt.Sprintf("predicate: process %d already has a conjunct", p))
	}
	cj.locals[p] = fn
	cj.names[p] = name
	return cj
}

// NumProcs returns the number of processes the conjunction ranges over.
func (cj *Conjunction) NumProcs() int { return cj.n }

// Holds evaluates the conjunct qp at state (p, k); processes without a
// conjunct are always true.
func (cj *Conjunction) Holds(d *deposet.Deposet, p, k int) bool {
	if cj.locals[p] == nil {
		return true
	}
	return cj.locals[p](d, k)
}

// Eval evaluates the conjunction at global state g.
func (cj *Conjunction) Eval(d *deposet.Deposet, g deposet.Cut) bool {
	for p := 0; p < cj.n; p++ {
		if !cj.Holds(d, p, g[p]) {
			return false
		}
	}
	return true
}

// Expr returns the conjunction as a general predicate expression.
func (cj *Conjunction) Expr() Expr {
	var xs []Expr
	for p := 0; p < cj.n; p++ {
		if cj.locals[p] != nil {
			xs = append(xs, Local(p, cj.names[p], cj.locals[p]))
		}
	}
	return And(xs...)
}

func (cj *Conjunction) String() string {
	var parts []string
	for p := 0; p < cj.n; p++ {
		if cj.locals[p] != nil {
			parts = append(parts, fmt.Sprintf("%s@P%d", cj.names[p], p))
		}
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " ∧ ")
}

// Negate returns the conjunction ∧p ¬lp of a disjunction ∨p lp. Processes
// without a disjunct (constant false) become constant-true conjuncts...
// which is exactly "¬false". Used to hand B's complement to the detectors.
func (dj *Disjunction) Negate() *Conjunction {
	cj := NewConjunction(dj.n)
	for p := 0; p < dj.n; p++ {
		fn := dj.locals[p]
		if fn == nil {
			continue // ¬false = true = absent conjunct
		}
		f := fn
		cj.Add(p, "¬"+dj.names[p], func(d *deposet.Deposet, k int) bool {
			return !f(d, k)
		})
	}
	return cj
}
