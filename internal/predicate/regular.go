package predicate

import "predctl/internal/deposet"

// The regular fragment.
//
// A predicate B is regular when its satisfying consistent cuts are closed
// under componentwise min and max — they form a sublattice of the cut
// lattice, which is what computation slicing (internal/slice) exploits.
// Deciding regularity semantically is as hard as detection itself, so we
// recognize a syntactic fragment that is always regular: predicates that,
// after pushing negations to the leaves, are a conjunction of clauses
// each of which reads the state of at most one process,
//
//	B = ∧p cp(g[p])
//
// i.e. B factors into one independent local condition per process. Every
// conjunctive predicate is in the fragment; so is the negation of a
// disjunctive one (De Morgan), which is how the detectors' "violations of
// B = ∨ lp" queries become sliceable. A disjunction across two or more
// processes is NOT in the fragment (its cut set is generally not
// min-closed) and is rejected.

// regClause is one per-process factor of a regular predicate: a subtree
// reading only process p, negated iff neg (the NNF polarity it was
// reached under).
type regClause struct {
	p   int
	e   Expr
	neg bool
}

// collectRegular walks e under polarity neg (neg=true means the subtree
// is effectively negated), appending per-process clauses to out. It
// returns false as soon as the expression leaves the fragment. A
// constant-false conjunct sets *constFalse instead of emitting a clause.
func collectRegular(e Expr, neg bool, out *[]regClause, constFalse *bool) bool {
	switch x := e.(type) {
	case *constExpr:
		if x.v == neg { // effective value false
			*constFalse = true
		}
		return true
	case *localExpr:
		*out = append(*out, regClause{x.p, e, neg})
		return true
	case *bitExpr:
		*out = append(*out, regClause{x.p, e, neg})
		return true
	case *notExpr:
		return collectRegular(x.x, !neg, out, constFalse)
	case *andExpr:
		if neg { // ¬(a ∧ b) = ¬a ∨ ¬b: a disjunction
			return clauseIfSingleProc(e, neg, out, constFalse)
		}
		for _, sub := range x.xs {
			if !collectRegular(sub, neg, out, constFalse) {
				return false
			}
		}
		return true
	case *orExpr:
		if !neg { // a disjunction at positive polarity
			return clauseIfSingleProc(e, neg, out, constFalse)
		}
		// ¬(a ∨ b) = ¬a ∧ ¬b: recurse as a conjunction.
		for _, sub := range x.xs {
			if !collectRegular(sub, neg, out, constFalse) {
				return false
			}
		}
		return true
	default:
		// Unknown Expr implementations read who-knows-what; reject.
		return false
	}
}

// clauseIfSingleProc accepts a disjunctive subtree only when it reads at
// most one process, in which case the whole subtree is one local clause.
func clauseIfSingleProc(e Expr, neg bool, out *[]regClause, constFalse *bool) bool {
	p, multi, any := exprSpan(e)
	if multi {
		return false
	}
	if !any { // constants only: fold
		v, ok := evalConstOnly(e)
		if !ok {
			return false
		}
		if v == neg { // effective value false
			*constFalse = true
		}
		return true
	}
	*out = append(*out, regClause{p, e, neg})
	return true
}

// exprSpan reports which processes a subtree reads: a single process p
// (any=true, multi=false), more than one (multi=true), or none at all
// (any=false — constants only). Unknown Expr implementations are treated
// as multi-process.
func exprSpan(e Expr) (p int, multi, any bool) {
	switch x := e.(type) {
	case *localExpr:
		return x.p, false, true
	case *bitExpr:
		return x.p, false, true
	case *constExpr:
		return 0, false, false
	case *notExpr:
		return exprSpan(x.x)
	case *andExpr:
		return spanAll(x.xs)
	case *orExpr:
		return spanAll(x.xs)
	default:
		return 0, true, true
	}
}

func spanAll(xs []Expr) (p int, multi, any bool) {
	for _, sub := range xs {
		sp, smulti, sany := exprSpan(sub)
		if smulti {
			return 0, true, true
		}
		if !sany {
			continue
		}
		if any && sp != p {
			return 0, true, true
		}
		p, any = sp, true
	}
	return p, false, any
}

// evalConstOnly evaluates a subtree built from constants alone.
func evalConstOnly(e Expr) (v, ok bool) {
	switch x := e.(type) {
	case *constExpr:
		return x.v, true
	case *notExpr:
		v, ok = evalConstOnly(x.x)
		return !v, ok
	case *andExpr:
		for _, sub := range x.xs {
			if v, ok = evalConstOnly(sub); !ok || !v {
				return v, ok
			}
		}
		return true, true
	case *orExpr:
		for _, sub := range x.xs {
			if v, ok = evalConstOnly(sub); !ok || v {
				return v, ok
			}
		}
		return false, true
	default:
		return false, false
	}
}

// IsRegular reports whether e is in the syntactic regular fragment: after
// pushing negations inward, a conjunction of clauses each reading at most
// one process. Regular predicates admit computation slicing; everything
// else takes the exhaustive-enumeration path.
func IsRegular(e Expr) bool {
	var out []regClause
	var constFalse bool
	return collectRegular(e, false, &out, &constFalse)
}

// RegularTable factors a regular predicate over d into its per-state
// truth table: Holds(p, k) is the conjunction of e's process-p clauses at
// state (p, k), and e itself holds at a cut g iff Holds(p, g[p]) for
// every p. Processes without a clause are all-true. ok=false means e is
// outside the regular fragment (the table is nil); a regular predicate
// that folds to constant false yields an all-false table.
func RegularTable(e Expr, d *deposet.Deposet) (t *TruthTable, ok bool) {
	var clauses []regClause
	var constFalse bool
	if !collectRegular(e, false, &clauses, &constFalse) {
		return nil, false
	}
	n := d.NumProcs()
	lens := make([]int, n)
	for p := range lens {
		lens[p] = d.Len(p)
	}
	t = NewTruthTable(lens)
	if constFalse {
		return t, true // all-false
	}
	for p := 0; p < n; p++ {
		for k := 0; k < lens[p]; k++ {
			t.Set(p, k, true)
		}
	}
	g := make(deposet.Cut, n)
	for _, c := range clauses {
		if c.p < 0 || c.p >= n {
			return nil, false
		}
		for k := 0; k < lens[c.p]; k++ {
			if !t.Holds(c.p, k) {
				continue
			}
			g[c.p] = k
			if c.e.Eval(d, g) == c.neg {
				t.Set(c.p, k, false)
			}
		}
		g[c.p] = 0
	}
	return t, true
}
