// Package scenario reconstructs the paper's §7 running example
// (Figure 4): a replicated server system with three servers whose
// availability windows can align so that no server is available — the
// bug the active-debugging cycle localizes and then controls away. The
// reconstruction is shared by the examples, the experiment harness and
// the regression tests.
package scenario

import (
	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// Figure4 is the reconstructed computation C1 plus the predicates the
// walkthrough uses.
type Figure4 struct {
	// C1 is the originally observed computation: three servers, each
	// with a maintenance window (avail = 0), plus a cascading
	// notification from server 1 to server 2.
	C1 *deposet.Deposet

	// Avail is the safety predicate B = avail0 ∨ avail1 ∨ avail2 ("at
	// least one server is available").
	Avail *predicate.Disjunction

	// E and F are the two suspect states of bug 2: e is the last
	// unavailable state of server 2 (it becomes available by leaving it)
	// and f is the first unavailable state of server 0. Bug 2 is "e and
	// f occur at the same time".
	E, F deposet.StateID

	// EBeforeF is the ordering predicate after_e ∨ before_f ("e must
	// happen before f") used to synthesize C3 and C4.
	EBeforeF *predicate.Disjunction
}

// Windows returns the per-server maintenance windows of C1.
func (fg *Figure4) Windows() []deposet.Interval {
	var w []deposet.Interval
	for p := 0; p < fg.C1.NumProcs(); p++ {
		p := p
		w = append(w, fg.C1.FalseIntervals(p, func(k int) bool {
			return fg.availAt(p, k)
		})...)
	}
	return w
}

func (fg *Figure4) availAt(p, k int) bool {
	v, ok := fg.C1.Var(deposet.StateID{P: p, K: k}, "avail")
	return ok && v == 1
}

// New builds the scenario.
//
// Server timelines (states left to right; U marks avail = 0):
//
//	P0:  A  U  U  A        maintenance window [1..2]
//	P1:  A  U  A  A        maintenance window [1..1]
//	P2:  A  A  U  A        maintenance window [2..2]
//	          ↑
//	P1 announces its maintenance to P2 as it goes down (message from
//	P1's first event to P2's first event), which later also goes down —
//	the cascading behaviour that makes the bug possible.
//
// Exactly two consistent global states violate B: G = ⟨1,1,2⟩ and
// H = ⟨2,1,2⟩, matching the two violating states of the paper's figure.
func New() (*Figure4, error) {
	b := deposet.NewBuilder(3)
	for p := 0; p < 3; p++ {
		b.Let(p, "avail", 1)
	}
	// P1 goes down, telling P2; P2 acknowledges receipt and goes down
	// later; P0's window overlaps both.
	_, h := b.Send(1) // P1 event 1: going down…
	b.Let(1, "avail", 0)
	b.Step(1) // P1 event 2: back up
	b.Let(1, "avail", 1)
	b.Step(1) // P1 event 3: serving again

	b.Recv(2, h) // P2 event 1: learns of P1's maintenance
	b.Step(2)    // P2 event 2: goes down itself
	b.Let(2, "avail", 0)
	b.Step(2) // P2 event 3: back up
	b.Let(2, "avail", 1)

	b.Step(0) // P0 event 1: goes down
	b.Let(0, "avail", 0)
	b.Step(0) // P0 event 2: still down
	b.Step(0) // P0 event 3: back up
	b.Let(0, "avail", 1)

	d, err := b.Build()
	if err != nil {
		return nil, err
	}

	fg := &Figure4{C1: d}
	fg.Avail = predicate.NewDisjunction(3)
	for p := 0; p < 3; p++ {
		p := p
		fg.Avail.Add(p, "avail", func(dd *deposet.Deposet, k int) bool {
			v, ok := dd.Var(deposet.StateID{P: p, K: k}, "avail")
			return ok && v == 1
		})
	}

	fg.E = deposet.StateID{P: 2, K: 2} // last unavailable state of P2
	fg.F = deposet.StateID{P: 0, K: 1} // first unavailable state of P0
	fg.EBeforeF = EBeforeFOn(d.NumProcs(), fg.E, fg.F)
	return fg, nil
}

// EBeforeFOn builds the ordering predicate after_e ∨ before_f over n
// processes for arbitrary states e and f: "f is not entered until e has
// been left". Processes other than e.P and f.P contribute no disjunct.
func EBeforeFOn(n int, e, f deposet.StateID) *predicate.Disjunction {
	dj := predicate.NewDisjunction(n)
	dj.Add(e.P, "after_e", func(_ *deposet.Deposet, k int) bool { return k > e.K })
	dj.Add(f.P, "before_f", func(_ *deposet.Deposet, k int) bool { return k < f.K })
	return dj
}

// EBeforeFMapped builds the ordering predicate after_e ∨ before_f on a
// computation derived from C1 via an underlying-state mapping (e.g. the
// replayed C2), so the same bug-2 fix can be synthesized against it.
func (fg *Figure4) EBeforeFMapped(underlying [][]int) *predicate.Disjunction {
	dj := predicate.NewDisjunction(3)
	dj.Add(fg.E.P, "after_e", func(_ *deposet.Deposet, k int) bool {
		return underlying[fg.E.P][k] > fg.E.K
	})
	dj.Add(fg.F.P, "before_f", func(_ *deposet.Deposet, k int) bool {
		return underlying[fg.F.P][k] < fg.F.K
	})
	return dj
}

// Bug2On builds the co-occurrence conjunction "e and f at the same
// time" for a computation derived from C1 via an underlying-state
// mapping (pass nil for C1 itself): possible exactly when some
// consistent cut has e.P still at-or-before e and f.P at-or-after f.
func (fg *Figure4) Bug2On(underlying [][]int) *predicate.Conjunction {
	cj := predicate.NewConjunction(3)
	idx := func(p, k int) int {
		if underlying == nil {
			return k
		}
		return underlying[p][k]
	}
	cj.Add(fg.E.P, "¬after_e", func(_ *deposet.Deposet, k int) bool {
		return idx(fg.E.P, k) <= fg.E.K
	})
	cj.Add(fg.F.P, "¬before_f", func(_ *deposet.Deposet, k int) bool {
		return idx(fg.F.P, k) >= fg.F.K
	})
	return cj
}

// Bug1On builds the all-unavailable conjunction on a computation derived
// from C1 (see Bug2On for the mapping convention).
func (fg *Figure4) Bug1On(underlying [][]int) *predicate.Conjunction {
	cj := predicate.NewConjunction(3)
	for p := 0; p < 3; p++ {
		p := p
		cj.Add(p, "¬avail", func(_ *deposet.Deposet, k int) bool {
			kk := k
			if underlying != nil {
				kk = underlying[p][k]
			}
			return !fg.availAt(p, kk)
		})
	}
	return cj
}
