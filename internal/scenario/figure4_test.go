package scenario

import (
	"testing"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/online"
	"predctl/internal/replay"
	"predctl/internal/sim"
)

// TestFigure4Walkthrough regresses the full §7 active-debugging cycle:
// detect bug 1 in C1 (exactly the two cuts G and H), control to C2,
// detect bug 2 there, control to C3, apply the bug-2 fix to C1 to get
// C4 where both bugs are gone, and finally keep a fresh on-line run safe.
func TestFigure4Walkthrough(t *testing.T) {
	fg, err := New()
	if err != nil {
		t.Fatal(err)
	}
	d := fg.C1

	// Shape checks.
	if d.NumProcs() != 3 {
		t.Fatal("wrong process count")
	}
	if got := len(fg.Windows()); got != 3 {
		t.Fatalf("windows = %d", got)
	}

	// Step 1: bug 1 — "all servers unavailable" — is possible at exactly
	// the two cuts G and H.
	violations := detect.AllViolations(d, fg.Avail.Expr())
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want exactly G and H", violations)
	}
	g, h := violations[0], violations[1]
	if !g.Equal(deposet.Cut{1, 1, 2}) || !h.Equal(deposet.Cut{2, 1, 2}) {
		t.Fatalf("G,H = %v,%v", g, h)
	}
	if _, ok := detect.PossiblyConjunctive(d, fg.Bug1On(nil)); !ok {
		t.Fatal("possibly(bug1) must hold on C1")
	}
	// But the bug is not inevitable, so control is feasible.
	if _, ok := detect.DefinitelyConjunctive(d, fg.Bug1On(nil)); ok {
		t.Fatal("bug1 must not be definite")
	}

	// Step 2: off-line control with B = ∨ avail gives C2.
	res1, err := offline.Control(d, fg.Avail, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := replay.Run(d, res1.Relation, replay.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut, ok := detect.PossiblyTruth(c2.Trace.D, holds(fg.Bug1On(c2.Underlying), c2.Trace.D)); ok {
		t.Fatalf("bug1 still possible in C2 at %v", cut)
	}

	// Step 3: bug 2 — e and f at the same time — is still possible in C2.
	if _, ok := detect.PossiblyTruth(c2.Trace.D, holds(fg.Bug2On(c2.Underlying), c2.Trace.D)); !ok {
		t.Fatal("bug2 must be possible in C2")
	}

	// Step 4: control C2 with "e before f" to get C3.
	res3, err := offline.Control(c2.Trace.D, fg.EBeforeFMapped(c2.Underlying), offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := replay.Run(c2.Trace.D, res3.Relation, replay.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Compose the two underlying mappings to reach C1 indices.
	composed := make([][]int, 3)
	for p := range composed {
		for _, k := range c3.Underlying[p] {
			composed[p] = append(composed[p], c2.Underlying[p][k])
		}
	}
	if cut, ok := detect.PossiblyTruth(c3.Trace.D, holds(fg.Bug2On(composed), c3.Trace.D)); ok {
		t.Fatalf("bug2 still possible in C3 at %v", cut)
	}

	// Step 5: the key inference — applying the bug-2 fix directly to C1
	// (computation C4) eliminates bug 1 as well, so bug 2 caused bug 1.
	res4, err := offline.Control(d, fg.EBeforeF, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c4, err := replay.Run(d, res4.Relation, replay.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut, ok := detect.PossiblyTruth(c4.Trace.D, holds(fg.Bug2On(c4.Underlying), c4.Trace.D)); ok {
		t.Fatalf("bug2 possible in C4 at %v", cut)
	}
	if cut, ok := detect.PossiblyTruth(c4.Trace.D, holds(fg.Bug1On(c4.Underlying), c4.Trace.D)); ok {
		t.Fatalf("bug1 possible in C4 at %v", cut)
	}
	// And in the extended-deposet view, G and H are no longer consistent.
	x, err := control.Extend(d, res4.Relation)
	if err != nil {
		t.Fatal(err)
	}
	if x.Consistent(g) || x.Consistent(h) {
		t.Fatal("G or H still consistent under the bug-2 control")
	}

	// Step 6: keep future runs safe with on-line control of "e before f":
	// server 2 starts "false" (e has not happened) and server 0 may not
	// execute f until it has.
	tr, _, err := online.Run(online.Config{
		N:         2,
		Delay:     5,
		Trace:     true,
		Scapegoat: 0, // before_f holds initially at server 0
		InitFalse: []bool{false, true},
	}, []func(*online.Guard){
		func(gd *online.Guard) { // server 0: wants to execute f early
			gd.P().Init("f", 0)
			gd.P().Work(1)
			gd.RequestFalse()
			gd.P().Set("f", 1) // f happens only once permitted
		},
		func(gd *online.Guard) { // server 2: e happens after a long delay
			gd.P().Init("e", 0)
			gd.P().Work(50)
			gd.P().Set("e", 1)
			gd.NowTrue()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify on the trace: no consistent cut with f done but e pending.
	if cut, ok := detect.PossiblyTruth(tr.D, func(p, k int) bool {
		switch p {
		case 0:
			v, okv := tr.D.Var(deposet.StateID{P: 0, K: k}, "f")
			return okv && v == 1
		case 1:
			v, okv := tr.D.Var(deposet.StateID{P: 1, K: k}, "e")
			return !okv || v == 0
		default:
			return true
		}
	}); ok {
		t.Fatalf("online run allowed f before e at %v", cut)
	}
}

// holds adapts a conjunction over C1-mapped indices to a HoldsFn on the
// derived computation.
func holds(cj interface {
	Holds(d *deposet.Deposet, p, k int) bool
}, d *deposet.Deposet) detect.HoldsFn {
	return func(p, k int) bool { return cj.Holds(d, p, k) }
}

func TestFigure4OnlineViolationWithoutControl(t *testing.T) {
	// Sanity: without control, a run where f precedes e admits the bad
	// cut.
	k := sim.New(sim.Config{Procs: 2, Trace: true, Delay: sim.ConstantDelay(5)})
	tr, err := k.Run(
		func(p *sim.Proc) {
			p.Init("f", 0)
			p.Work(1)
			p.Set("f", 1)
		},
		func(p *sim.Proc) {
			p.Init("e", 0)
			p.Work(50)
			p.Set("e", 1)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := detect.PossiblyTruth(tr.D, func(p, kk int) bool {
		if p == 0 {
			v, okv := tr.D.Var(deposet.StateID{P: 0, K: kk}, "f")
			return okv && v == 1
		}
		v, okv := tr.D.Var(deposet.StateID{P: 1, K: kk}, "e")
		return !okv || v == 0
	}); !ok {
		t.Fatal("uncontrolled run should allow f before e")
	}
}
