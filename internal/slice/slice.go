// Package slice implements computation slicing (Mittal & Garg) for
// regular predicates. The slice of a computation with respect to a
// regular predicate B is the sublattice of consistent cuts satisfying B:
// because B's cut set is closed under componentwise min and max, it is a
// distributive lattice, and by Birkhoff's theorem it is captured exactly
// by its join-irreducible elements — at most one per local state, so
// O(total states) of them — rather than by the (potentially exponential)
// lattice itself.
//
// The representation here is the "graph of meta-events": for each
// process p and index k the least B-satisfying consistent cut J(p,k)
// with g[p] ≥ k is computed by a fixpoint that interleaves truth
// advancement with consistency closure. Distinct J cuts become
// meta-events; equal ones (the same least cut reached from several
// local states, i.e. states that must be passed together) collapse into
// one meta-event, the slice's strongly-connected components. Every cut
// of the slice is the bottom W joined with the cuts of a down-closed set
// (ideal) of meta-events, and conversely — so detection enumerates
// ideals of the meta-event poset instead of walking the raw lattice, and
// the enumeration needs no visited set: adding meta-events in a fixed
// linear extension makes every ideal reachable in exactly one order.
package slice

import (
	"sort"
	"sync"
	"sync/atomic"

	"predctl/internal/deposet"
	"predctl/internal/par"
	"predctl/internal/predicate"
)

// meta is one meta-event: a join-irreducible cut of the slice, with the
// precomputed vectors the ideal enumeration needs.
type meta struct {
	cut   deposet.Cut
	depth int32   // Σ components, for the (depth, lex) linear extension
	pos   []int32 // position in chain p, or -1 if not on chain p
	need  []int32 // chain-p elements strictly below this cut (addability threshold)
	diffP int32   // when diff == 1: the process the cover step advances
	diff  int32   // total state-advance of the cover step over the preceding ideal
}

// Slice is the computed slice of a computation with respect to a regular
// predicate's truth table. The zero cuts case (no satisfying cut at all)
// is represented with empty == true.
type Slice struct {
	d     *deposet.Deposet
	n     int
	empty bool

	bottom deposet.Cut // least satisfying cut W (nil when empty)
	top    deposet.Cut // greatest satisfying cut Z (nil when empty)

	metas  []meta  // sorted by (depth, lex): a linear extension of the cut order
	chains [][]int // per process: meta index of each chain element, ascending
}

// Stats summarizes the size of a slice relative to the computation.
type Stats struct {
	MetaEvents  int // distinct join-irreducible cuts
	ChainStates int // chain elements before cross-chain collapse
	Empty       bool
}

// computer holds the fixpoint scratch for Compute.
type computer struct {
	d    *deposet.Deposet
	n    int
	next [][]int32 // next[p][k]: least j ≥ k with t.Holds(p,j), or Len(p)
	prev [][]int32 // prev[p][k]: greatest j ≤ k with t.Holds(p,j), or -1
}

// Compute builds the slice of d with respect to the factored truth table
// t of a regular predicate (predicate.RegularTable). Cost is
// O(states · procs²) fixpoint work plus O(meta-events · procs · log)
// for the meta-event graph — polynomial, independent of the lattice size.
func Compute(d *deposet.Deposet, t *predicate.TruthTable) *Slice {
	n := d.NumProcs()
	c := &computer{d: d, n: n, next: make([][]int32, n), prev: make([][]int32, n)}
	for p := 0; p < n; p++ {
		l := d.Len(p)
		np := make([]int32, l+1)
		np[l] = int32(l)
		for k := l - 1; k >= 0; k-- {
			if t.Holds(p, k) {
				np[k] = int32(k)
			} else {
				np[k] = np[k+1]
			}
		}
		pp := make([]int32, l)
		last := int32(-1)
		for k := 0; k < l; k++ {
			if t.Holds(p, k) {
				last = int32(k)
			}
			pp[k] = last
		}
		c.next[p] = np
		c.prev[p] = pp
	}

	s := &Slice{d: d, n: n}
	w := make(deposet.Cut, n)
	if !c.leastFix(w) {
		s.empty = true
		return s
	}
	z := d.TopCut()
	if !c.greatestFix(z) {
		// Cannot happen when a least cut exists; defensive.
		s.empty = true
		return s
	}
	s.bottom, s.top = w, z

	// Per-process chains of join-irreducible cuts: J(p,k) for
	// k ∈ (W[p], Z[p]]. Each J is the least satisfying cut whose p-th
	// component is ≥ k; successive fixpoints continue from the previous
	// one, so a chain element whose fixpoint overshot several k values
	// stands for all of them.
	chainCuts := make([][]deposet.Cut, n)
	g := make(deposet.Cut, n)
	for p := 0; p < n; p++ {
		copy(g, w)
		for g[p] < z[p] {
			g[p]++
			if !c.leastFix(g) || !g.Leq(z) {
				break // defensive: J(p,k) exists and is ≤ Z for k ≤ Z[p]
			}
			chainCuts[p] = append(chainCuts[p], g.Clone())
		}
	}
	s.buildMetas(chainCuts)
	return s
}

// leastFix raises g in place to the least satisfying consistent cut ≥ g,
// returning false if none exists. Each repair step is forced — any
// satisfying consistent cut ≥ g must make it — so the fixpoint is the
// least such cut.
func (c *computer) leastFix(g deposet.Cut) bool {
	d, n := c.d, c.n
	for {
		changed := false
		for p := 0; p < n; p++ {
			k := int(c.next[p][g[p]])
			if k >= d.Len(p) {
				return false
			}
			if k != g[p] {
				g[p] = k
				changed = true
			}
		}
		for j := 0; j < n; j++ {
			row := d.Clock(deposet.StateID{P: j, K: g[j]})
			for i := 0; i < n; i++ {
				if i != j && int(row[i]) >= g[i] {
					// Frontier state (j, g[j]) causally dominates (i, g[i]):
					// i must advance past the dependency.
					g[i] = int(row[i]) + 1
					if g[i] >= d.Len(i) {
						return false
					}
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// greatestFix lowers g in place to the greatest satisfying consistent
// cut ≤ g, returning false if none exists (the dual of leastFix).
func (c *computer) greatestFix(g deposet.Cut) bool {
	d, n := c.d, c.n
	for {
		changed := false
		for p := 0; p < n; p++ {
			k := c.prev[p][g[p]]
			if k < 0 {
				return false
			}
			if int(k) != g[p] {
				g[p] = int(k)
				changed = true
			}
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				// Need clock(j, g[j])[i] < g[i]: lower j below the dependency.
				for g[j] >= 0 && int(d.Clock(deposet.StateID{P: j, K: g[j]})[i]) >= g[i] {
					g[j]--
					changed = true
				}
				if g[j] < 0 {
					return false
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// buildMetas collapses equal chain cuts into meta-events, sorts them by
// (depth, lex) — a linear extension of the cut order, since a strictly
// smaller cut has a strictly smaller depth — and precomputes the pos,
// need and cover-diff vectors.
func (s *Slice) buildMetas(chainCuts [][]deposet.Cut) {
	n := s.n
	index := map[string]int{}
	var cuts []deposet.Cut
	for p := 0; p < n; p++ {
		for _, g := range chainCuts[p] {
			key := g.Key()
			if _, ok := index[key]; !ok {
				index[key] = len(cuts)
				cuts = append(cuts, g)
			}
		}
	}
	order := make([]int, len(cuts))
	for i := range order {
		order[i] = i
	}
	depth := func(g deposet.Cut) int32 {
		sum := int32(0)
		for _, k := range g {
			sum += int32(k)
		}
		return sum
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := cuts[order[a]], cuts[order[b]]
		da, db := depth(ga), depth(gb)
		if da != db {
			return da < db
		}
		for i := range ga {
			if ga[i] != gb[i] {
				return ga[i] < gb[i]
			}
		}
		return false
	})
	rank := make([]int, len(cuts)) // original index -> sorted index
	s.metas = make([]meta, len(cuts))
	for sorted, orig := range order {
		rank[orig] = sorted
		s.metas[sorted] = meta{
			cut:   cuts[orig],
			depth: depth(cuts[orig]),
			pos:   make([]int32, n),
			need:  make([]int32, n),
		}
		for p := 0; p < n; p++ {
			s.metas[sorted].pos[p] = -1
		}
	}
	s.chains = make([][]int, n)
	for p := 0; p < n; p++ {
		s.chains[p] = make([]int, len(chainCuts[p]))
		for i, g := range chainCuts[p] {
			qi := rank[index[g.Key()]]
			s.chains[p][i] = qi
			s.metas[qi].pos[p] = int32(i)
		}
	}
	// need[p] = number of chain-p elements strictly below the meta's cut.
	// Chain elements ≤ the cut form a prefix (the chain is totally
	// ordered), located by binary search; the meta itself, when on chain
	// p, is the last element of that prefix.
	prevJoin := make(deposet.Cut, n)
	for qi := range s.metas {
		q := &s.metas[qi]
		copy(prevJoin, s.bottom)
		for p := 0; p < n; p++ {
			chain := chainCuts[p]
			cnt := sort.Search(len(chain), func(i int) bool { return !chain[i].Leq(q.cut) })
			if q.pos[p] >= 0 {
				cnt-- // don't count q itself
			}
			q.need[p] = int32(cnt)
			if cnt > 0 {
				// Largest strict predecessor on chain p; joining these
				// over all p gives the cut of the ideal just below q.
				pred := chain[cnt-1]
				for i := 0; i < n; i++ {
					if pred[i] > prevJoin[i] {
						prevJoin[i] = pred[i]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			step := int32(q.cut[i] - prevJoin[i])
			q.diff += step
			if step > 0 {
				q.diffP = int32(i)
			}
		}
	}
}

// Empty reports whether no consistent cut satisfies the predicate.
func (s *Slice) Empty() bool { return s.empty }

// Bottom returns the least satisfying cut (nil when the slice is empty).
func (s *Slice) Bottom() deposet.Cut { return s.bottom }

// Top returns the greatest satisfying cut (nil when the slice is empty).
func (s *Slice) Top() deposet.Cut { return s.top }

// Stats returns the size of the slice representation.
func (s *Slice) Stats() Stats {
	st := Stats{MetaEvents: len(s.metas), Empty: s.empty}
	for _, ch := range s.chains {
		st.ChainStates += len(ch)
	}
	return st
}

// enumState is the reusable scratch of one ideal-enumeration walker.
type enumState struct {
	s    *Slice
	c    []int32 // per process: chain elements currently in the ideal
	g    deposet.Cut
	undo []int32 // (process, old component) pairs for cut rollback
	out  []deposet.Cut
}

func newEnumState(s *Slice) *enumState {
	return &enumState{s: s, c: make([]int32, s.n), g: make(deposet.Cut, s.n)}
}

// dfs enumerates, in increasing-maxidx order, every ideal extending the
// current one with meta-events of index > maxidx, emitting each ideal's
// cut. Because the meta order is a linear extension, every ideal is
// produced exactly once — no visited set, no cross-walker overlap.
func (e *enumState) dfs(maxidx int) {
	e.out = append(e.out, e.g.Clone())
	s := e.s
	for qi := maxidx + 1; qi < len(s.metas); qi++ {
		q := &s.metas[qi]
		addable := true
		for p := 0; p < s.n; p++ {
			if e.c[p] < q.need[p] {
				addable = false
				break
			}
		}
		if !addable {
			continue
		}
		mark := len(e.undo)
		for p := 0; p < s.n; p++ {
			if q.pos[p] >= 0 {
				e.c[p] = q.pos[p] + 1
			}
			if q.cut[p] > e.g[p] {
				e.undo = append(e.undo, int32(p), int32(e.g[p]))
				e.g[p] = q.cut[p]
			}
		}
		e.dfs(qi)
		for p := 0; p < s.n; p++ {
			if q.pos[p] >= 0 {
				e.c[p] = q.pos[p]
			}
		}
		for i := len(e.undo) - 2; i >= mark; i -= 2 {
			e.g[e.undo[i]] = int(e.undo[i+1])
		}
		e.undo = e.undo[:mark]
	}
}

// segment is one unexplored subtree of the enumeration forest, produced
// by the breadth-first frontier expansion and consumed by one worker.
type segment struct {
	c      []int32
	g      deposet.Cut
	maxidx int
}

// Cuts enumerates every cut of the slice, returned in (depth, lex)
// order. workers follows the internal/par convention (0 = GOMAXPROCS);
// with more than one worker the enumeration forest is split into
// independent segments — disjoint by construction, so workers share no
// visited state, take no locks on the hot path, and never synchronize
// until the final deterministic merge. The output is identical at every
// worker count. Work-optimality guard: a forest with fewer meta-events
// than the segment target is too shallow to split profitably, so it is
// walked sequentially no matter the worker count.
func (s *Slice) Cuts(workers int) []deposet.Cut {
	if s.empty {
		return nil
	}
	workers = par.Workers(workers, len(s.metas)+1)
	target := 8 * workers
	if workers <= 1 || len(s.metas) < target {
		e := newEnumState(s)
		copy(e.g, s.bottom)
		e.dfs(-1)
		sortCuts(e.out)
		return e.out
	}

	// Phase A: expand the forest breadth-first until there are enough
	// independent subtrees to balance across workers. Cuts of expanded
	// nodes are emitted here; each leftover node's subtree (itself
	// included) becomes a segment.
	root := segment{c: make([]int32, s.n), g: s.bottom.Clone(), maxidx: -1}
	queue := []segment{root}
	var out []deposet.Cut
	for len(queue) > 0 && len(queue) < target {
		node := queue[0]
		queue = queue[1:]
		out = append(out, node.g.Clone())
		for qi := node.maxidx + 1; qi < len(s.metas); qi++ {
			q := &s.metas[qi]
			addable := true
			for p := 0; p < s.n; p++ {
				if node.c[p] < q.need[p] {
					addable = false
					break
				}
			}
			if !addable {
				continue
			}
			child := segment{
				c:      append([]int32(nil), node.c...),
				g:      node.g.Clone(),
				maxidx: qi,
			}
			for p := 0; p < s.n; p++ {
				if q.pos[p] >= 0 {
					child.c[p] = q.pos[p] + 1
				}
				if q.cut[p] > child.g[p] {
					child.g[p] = q.cut[p]
				}
			}
			queue = append(queue, child)
		}
	}

	// Phase B: workers claim segments off an atomic counter and walk
	// them with the same sequential kernel. Each worker accumulates all
	// its segments into one buffer — the final (depth, lex) sort makes
	// the merge order irrelevant, and segments are disjoint, so no cut is
	// ever produced twice.
	results := make([][]deposet.Cut, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := newEnumState(s)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queue) {
					results[w] = e.out
					return
				}
				seg := queue[i]
				copy(e.c, seg.c)
				copy(e.g, seg.g)
				e.dfs(seg.maxidx)
			}
		}(w)
	}
	wg.Wait()
	for _, r := range results {
		out = append(out, r...)
	}
	sortCuts(out)
	return out
}

// sortCuts orders cuts by (depth, lex) — the same canonical order
// regardless of worker count or segment split.
func sortCuts(cuts []deposet.Cut) {
	depths := make([]int32, len(cuts))
	for i, g := range cuts {
		sum := int32(0)
		for _, k := range g {
			sum += int32(k)
		}
		depths[i] = sum
	}
	idx := make([]int, len(cuts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if depths[ia] != depths[ib] {
			return depths[ia] < depths[ib]
		}
		ga, gb := cuts[ia], cuts[ib]
		for i := range ga {
			if ga[i] != gb[i] {
				return ga[i] < gb[i]
			}
		}
		return false
	})
	sorted := make([]deposet.Cut, len(cuts))
	for i, j := range idx {
		sorted[i] = cuts[j]
	}
	copy(cuts, sorted)
}

// ForEachCut calls f for every cut of the slice in canonical forest
// order (not depth order), stopping early if f returns false. The cut
// passed to f is reused between calls; clone it to retain it.
func (s *Slice) ForEachCut(f func(deposet.Cut) bool) {
	if s.empty {
		return
	}
	e := newEnumState(s)
	copy(e.g, s.bottom)
	stop := false
	var rec func(maxidx int)
	rec = func(maxidx int) {
		if stop || !f(e.g) {
			stop = true
			return
		}
		for qi := maxidx + 1; qi < len(s.metas) && !stop; qi++ {
			q := &s.metas[qi]
			addable := true
			for p := 0; p < s.n; p++ {
				if e.c[p] < q.need[p] {
					addable = false
					break
				}
			}
			if !addable {
				continue
			}
			mark := len(e.undo)
			for p := 0; p < s.n; p++ {
				if q.pos[p] >= 0 {
					e.c[p] = q.pos[p] + 1
				}
				if q.cut[p] > e.g[p] {
					e.undo = append(e.undo, int32(p), int32(e.g[p]))
					e.g[p] = q.cut[p]
				}
			}
			rec(qi)
			for p := 0; p < s.n; p++ {
				if q.pos[p] >= 0 {
					e.c[p] = q.pos[p]
				}
			}
			for i := len(e.undo) - 2; i >= mark; i -= 2 {
				e.g[e.undo[i]] = int(e.undo[i+1])
			}
			e.undo = e.undo[:mark]
		}
	}
	rec(-1)
}

// SingleStepChain decides, in polynomial time, whether the slice
// contains a global sequence from ⊥ to ⊤ — the offline-control question
// for a regular predicate — and returns one if so. The criterion: the
// slice must be nonempty with W = ⊥ and Z = ⊤, and every meta-event's
// cover step over the ideal of its predecessors must advance exactly one
// process by one state (diff == 1). Then applying the meta-events in any
// linear extension — here the (depth, lex) order — steps through
// satisfying consistent cuts one local state at a time, which is exactly
// a global sequence; and conversely a global sequence inside the slice
// forces every cover of the meta-event lattice to be a single step.
// decided=false means an internal invariant failed and the caller must
// fall back to the exhaustive search (defensive; not expected).
func (s *Slice) SingleStepChain() (seq deposet.Sequence, found, decided bool) {
	if s.empty {
		return nil, false, true
	}
	if !s.bottom.Equal(s.d.BottomCut()) || !s.top.Equal(s.d.TopCut()) {
		return nil, false, true
	}
	for i := range s.metas {
		if s.metas[i].diff != 1 {
			return nil, false, true
		}
	}
	g := s.bottom.Clone()
	seq = deposet.Sequence{g.Clone()}
	for i := range s.metas {
		q := &s.metas[i]
		// The cover diff is fixed: joining q onto the ideal of all
		// previous meta-events advances exactly process diffP by one.
		h := g.Clone()
		for p := 0; p < s.n; p++ {
			if q.cut[p] > h[p] {
				h[p] = q.cut[p]
			}
		}
		g[q.diffP]++
		if !h.Equal(g) {
			return nil, false, false // invariant broken; fall back
		}
		seq = append(seq, g.Clone())
	}
	if !g.Equal(s.top) {
		return nil, false, false
	}
	return seq, true, true
}
