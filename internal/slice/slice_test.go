package slice_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
	"predctl/internal/slice"
)

// randRegular builds a random regular predicate on d — the negation of a
// random disjunction, ¬(∨p lp) = ∧p ¬lp — plus its factored table.
func randRegular(r *rand.Rand, d *deposet.Deposet, density float64) (predicate.Expr, *predicate.TruthTable) {
	dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, density))
	e := predicate.Not(dj.Expr())
	tab, ok := predicate.RegularTable(e, d)
	if !ok {
		panic("¬disjunction must be regular")
	}
	return e, tab
}

// satisfyingCuts walks the full lattice and filters by e — the oracle.
func satisfyingCuts(d *deposet.Deposet, e predicate.Expr) map[string]bool {
	sat := map[string]bool{}
	d.ForEachConsistentCut(func(g deposet.Cut) bool {
		if e.Eval(d, g) {
			sat[g.Key()] = true
		}
		return true
	})
	return sat
}

// Property: the slice's cut set equals the exhaustive lattice walk
// filtered by the predicate — exact set equality — and the enumeration
// is byte-identical across worker counts.
func TestSliceMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(14)))
		e, tab := randRegular(r, d, 0.3+0.5*r.Float64())
		sl := slice.Compute(d, tab)
		want := satisfyingCuts(d, e)

		cuts := sl.Cuts(1)
		if len(cuts) != len(want) {
			t.Logf("seed %d: slice %d cuts, lattice filter %d", seed, len(cuts), len(want))
			return false
		}
		for _, g := range cuts {
			if !want[g.Key()] {
				t.Logf("seed %d: slice emitted non-satisfying cut %v", seed, g)
				return false
			}
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i].Equal(cuts[i-1]) {
				t.Logf("seed %d: duplicate cut %v", seed, cuts[i])
				return false
			}
		}
		for _, workers := range []int{2, 4} {
			par := sl.Cuts(workers)
			if len(par) != len(cuts) {
				return false
			}
			for i := range par {
				if !par[i].Equal(cuts[i]) {
					t.Logf("seed %d: workers=%d diverges at %d: %v vs %v", seed, workers, i, par[i], cuts[i])
					return false
				}
			}
		}
		if sl.Empty() != (len(want) == 0) {
			return false
		}
		if !sl.Empty() {
			// Bottom/Top are the unique min/max of the satisfying set.
			for key := range want {
				g := cutFromKey(key, d.NumProcs())
				if !sl.Bottom().Leq(g) || !g.Leq(sl.Top()) {
					t.Logf("seed %d: %v outside [%v, %v]", seed, g, sl.Bottom(), sl.Top())
					return false
				}
			}
			if !want[sl.Bottom().Key()] || !want[sl.Top().Key()] {
				return false
			}
		}
		st := sl.Stats()
		if st.MetaEvents > d.NumStates() {
			t.Logf("seed %d: %d meta-events > %d states", seed, st.MetaEvents, d.NumStates())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func cutFromKey(key string, n int) deposet.Cut {
	g := make(deposet.Cut, n)
	p, v := 0, 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			g[p] = v
			p, v = p+1, 0
			continue
		}
		v = v*10 + int(key[i]-'0')
	}
	return g
}

// Property: SingleStepChain agrees with the exhaustive single-step SGSD
// search, and any sequence it returns is a valid global sequence every
// cut of which satisfies the predicate.
func TestSingleStepChainMatchesSGSD(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		e, tab := randRegular(r, d, 0.4+0.5*r.Float64())
		sl := slice.Compute(d, tab)
		seq, found, decided := sl.SingleStepChain()
		if !decided {
			t.Logf("seed %d: SingleStepChain undecided", seed)
			return false
		}
		_, want := detect.SGSD(d, e, false)
		if found != want {
			t.Logf("seed %d: slice says %v, SGSD says %v", seed, found, want)
			return false
		}
		if !found {
			return true
		}
		if err := d.ValidateSequence(seq); err != nil {
			t.Logf("seed %d: invalid sequence: %v", seed, err)
			return false
		}
		for _, g := range seq {
			if !e.Eval(d, g) {
				t.Logf("seed %d: sequence cut %v violates predicate", seed, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptySlice(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := deposet.Random(r, deposet.DefaultGen(3, 10))
	tab, ok := predicate.RegularTable(predicate.Const(false), d)
	if !ok {
		t.Fatal("Const(false) is regular")
	}
	sl := slice.Compute(d, tab)
	if !sl.Empty() || sl.Cuts(1) != nil || sl.Cuts(4) != nil {
		t.Fatal("slice of false must be empty")
	}
	if _, found, decided := sl.SingleStepChain(); found || !decided {
		t.Fatal("empty slice has no chain")
	}
	if sl.Bottom() != nil || sl.Top() != nil {
		t.Fatal("empty slice has no bottom/top")
	}
}

// The slice of Const(true) is the whole lattice; SingleStepChain then
// reproduces an ordinary interleaving.
func TestFullSlice(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := deposet.Random(r, deposet.DefaultGen(3, 12))
	tab, ok := predicate.RegularTable(predicate.Const(true), d)
	if !ok {
		t.Fatal("Const(true) is regular")
	}
	sl := slice.Compute(d, tab)
	if got, want := len(sl.Cuts(1)), d.CountConsistentCuts(); got != want {
		t.Fatalf("full slice has %d cuts, lattice %d", got, want)
	}
	seq, found, decided := sl.SingleStepChain()
	if !found || !decided {
		t.Fatal("full slice must contain an interleaving")
	}
	if err := d.ValidateSequence(seq); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCutEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := deposet.Random(r, deposet.DefaultGen(3, 12))
	_, tab := randRegular(r, d, 0.7)
	sl := slice.Compute(d, tab)
	all := map[string]bool{}
	sl.ForEachCut(func(g deposet.Cut) bool {
		all[g.Key()] = true
		return true
	})
	if len(all) != len(sl.Cuts(1)) {
		t.Fatalf("ForEachCut saw %d cuts, Cuts %d", len(all), len(sl.Cuts(1)))
	}
	n := 0
	sl.ForEachCut(func(deposet.Cut) bool { n++; return n < 3 })
	if len(all) >= 3 && n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// The (depth, lex) output order is genuinely sorted.
func TestCutsOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := deposet.Random(r, deposet.DefaultGen(4, 16))
	_, tab := randRegular(r, d, 0.8)
	cuts := slice.Compute(d, tab).Cuts(4)
	depth := func(g deposet.Cut) int {
		s := 0
		for _, k := range g {
			s += k
		}
		return s
	}
	sorted := sort.SliceIsSorted(cuts, func(a, b int) bool {
		da, db := depth(cuts[a]), depth(cuts[b])
		if da != db {
			return da < db
		}
		for i := range cuts[a] {
			if cuts[a][i] != cuts[b][i] {
				return cuts[a][i] < cuts[b][i]
			}
		}
		return false
	})
	if !sorted {
		t.Fatal("Cuts output not in (depth, lex) order")
	}
}
