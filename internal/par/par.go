// Package par provides the worker-pool primitives behind the parallel
// detection/control engine: fixed sharding of an index space across
// GOMAXPROCS-bounded worker goroutines, with the degenerate one-worker
// case running inline (no goroutines, no synchronization) so sequential
// fallbacks cost nothing.
//
// The package is deliberately tiny: the parallel algorithms in
// internal/deposet, internal/detect and internal/offline are all
// round-synchronous (shard → barrier → shard …), so contiguous static
// shards plus a WaitGroup barrier is the whole requirement. Work items
// inside one round are uniform enough that work stealing would buy
// nothing, and static shards keep every pass deterministic.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: requested if positive,
// otherwise runtime.GOMAXPROCS(0); the result is clamped to [1, n] so a
// loop over n items never spawns idle workers. n ≤ 0 yields 1.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shard returns the half-open range [lo, hi) of items owned by worker w
// out of `workers` over n items: contiguous, balanced to within one item.
func Shard(w, workers, n int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// ForShard partitions [0, n) into `workers` contiguous shards and calls
// fn(w, lo, hi) for each on its own goroutine, returning after all
// complete. With workers ≤ 1 (or n ≤ the shard width) it runs inline.
// fn must confine its writes to data owned by its shard; the return
// provides the barrier (happens-before edge) making those writes visible
// to the caller.
func ForShard(n, workers int, fn func(w, lo, hi int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := Shard(w, workers, n)
			fn(w, lo, hi)
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across `workers` shards.
func ForEach(n, workers int, fn func(i int)) {
	ForShard(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Loop is a round-synchronous sharded worker loop: the worker goroutines
// are spawned once and reused for every round, so a multi-round parallel
// scan (detection frontiers, clock-construction passes) pays goroutine
// startup and closure allocation once per loop instead of once per
// round. With one worker every round runs inline, like ForShard.
type Loop struct {
	workers int
	n       int
	fn      func(w, lo, hi int)
	start   []chan struct{} // one per worker: tokens can't be stolen
	done    chan struct{}
}

// NewLoop spawns the workers of a round-synchronous loop. workers is
// resolved like Workers against shardHint, an upper bound on the item
// counts the rounds will use. The caller must Close the loop.
func NewLoop(shardHint, workers int) *Loop {
	workers = Workers(workers, shardHint)
	l := &Loop{workers: workers}
	if workers == 1 {
		return l
	}
	l.start = make([]chan struct{}, workers)
	l.done = make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		ch := make(chan struct{}, 1)
		l.start[w] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				lo, hi := Shard(w, l.workers, l.n)
				l.fn(w, lo, hi)
				l.done <- struct{}{}
			}
		}(w, ch)
	}
	return l
}

// Workers returns the resolved worker count of the loop.
func (l *Loop) Workers() int { return l.workers }

// Round partitions [0, n) into the loop's shards and runs fn(w, lo, hi)
// on every worker, returning after all complete. As with ForShard, fn
// must confine writes to data owned by its shard; the send/receive pairs
// give the same happens-before edges a spawn-and-wait barrier would.
func (l *Loop) Round(n int, fn func(w, lo, hi int)) {
	if l.workers == 1 {
		fn(0, 0, n)
		return
	}
	l.n, l.fn = n, fn
	for _, ch := range l.start {
		ch <- struct{}{}
	}
	for i := 0; i < l.workers; i++ {
		<-l.done
	}
}

// Each runs fn(i) for every i in [0, n) across the loop's shards.
func (l *Loop) Each(n int, fn func(i int)) {
	l.Round(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Close terminates the worker goroutines. The loop must not be used
// afterwards; Close must not race a Round.
func (l *Loop) Close() {
	for _, ch := range l.start {
		close(ch)
	}
}
