// Package par provides the worker-pool primitives behind the parallel
// detection/control engine: fixed sharding of an index space across
// GOMAXPROCS-bounded worker goroutines, with the degenerate one-worker
// case running inline (no goroutines, no synchronization) so sequential
// fallbacks cost nothing.
//
// The package is deliberately tiny: the parallel algorithms in
// internal/deposet, internal/detect and internal/offline are all
// round-synchronous (shard → barrier → shard …), so contiguous static
// shards plus a WaitGroup barrier is the whole requirement. Work items
// inside one round are uniform enough that work stealing would buy
// nothing, and static shards keep every pass deterministic.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: requested if positive,
// otherwise runtime.GOMAXPROCS(0); the result is clamped to [1, n] so a
// loop over n items never spawns idle workers. n ≤ 0 yields 1.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shard returns the half-open range [lo, hi) of items owned by worker w
// out of `workers` over n items: contiguous, balanced to within one item.
func Shard(w, workers, n int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// ForShard partitions [0, n) into `workers` contiguous shards and calls
// fn(w, lo, hi) for each on its own goroutine, returning after all
// complete. With workers ≤ 1 (or n ≤ the shard width) it runs inline.
// fn must confine its writes to data owned by its shard; the return
// provides the barrier (happens-before edge) making those writes visible
// to the caller.
func ForShard(n, workers int, fn func(w, lo, hi int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := Shard(w, workers, n)
			fn(w, lo, hi)
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across `workers` shards.
func ForEach(n, workers int, fn func(i int)) {
	ForShard(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
