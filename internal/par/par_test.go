package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, gmp},  // auto
		{-3, 100, gmp}, // auto
		{4, 100, 4},    // explicit
		{4, 2, 2},      // clamped to n
		{4, 0, 1},      // degenerate n
		{1, 100, 1},    // sequential
		{0, 1, 1},      // single item
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestShardCoversExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for workers := 1; workers <= 9 && workers <= n; workers++ {
			next := 0
			for w := 0; w < workers; w++ {
				lo, hi := Shard(w, workers, n)
				if lo != next {
					t.Fatalf("n=%d w=%d/%d: lo=%d, want %d", n, w, workers, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d/%d: hi=%d < lo=%d", n, w, workers, hi, lo)
				}
				if hi-lo > n/workers+1 {
					t.Fatalf("n=%d w=%d/%d: shard width %d unbalanced", n, w, workers, hi-lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d workers=%d: shards end at %d", n, workers, next)
			}
		}
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		const n = 333
		var counts [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForShardInlineWhenSequential(t *testing.T) {
	// workers=1 must run on the calling goroutine (no data races even on
	// unsynchronized state).
	sum := 0
	ForShard(10, 1, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("inline shard = (%d, %d, %d)", w, lo, hi)
		}
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}
