package livedetect

import (
	"testing"

	"predctl/internal/predicate"
	"predctl/internal/wire"
)

// iv builds a 2-node interval with the given clock endpoints.
func iv(proc int, loIdx, hiIdx int64, lo, hi []int32) Interval {
	return Interval{Proc: proc, LoIdx: loIdx, HiIdx: hiIdx, Lo: lo, Hi: hi}
}

func TestCheckerTriggersOnConcurrentIntervals(t *testing.T) {
	c := New(2)
	if c.Offer(0, iv(0, 1, 2, []int32{1, 0}, []int32{2, 0})) {
		t.Fatal("single queue must not trigger")
	}
	// Concurrent with proc 0's interval: neither lo dominates the
	// other's hi component.
	if !c.Offer(0, iv(1, 1, 2, []int32{0, 1}, []int32{0, 2})) {
		t.Fatal("pairwise overlappable fronts must trigger")
	}
	if !c.Pending(0) {
		t.Fatal("trigger must be pending confirmation")
	}
	w := c.Witness()
	if len(w) != 2 || w[0].Proc != 0 || w[1].Proc != 1 {
		t.Fatalf("witness = %+v", w)
	}
	if !c.Confirm(0) || c.Confirm(0) {
		t.Fatal("confirm must succeed exactly once")
	}
	if !c.Fired() {
		t.Fatal("confirmed detection must report Fired")
	}
}

func TestCheckerEliminatesOrderedIntervals(t *testing.T) {
	c := New(2)
	c.Offer(0, iv(0, 1, 2, []int32{1, 0}, []int32{2, 0}))
	// Proc 1's interval starts causally after proc 0's ended
	// (lo[0]=3 ≥ hi[0]=2): proc 0's front is eliminated.
	if c.Offer(0, iv(1, 1, 2, []int32{3, 1}, []int32{3, 2})) {
		t.Fatal("causally ordered intervals must not trigger")
	}
	if _, dropped, _ := c.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if c.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (only proc 1's interval left)", c.Depth())
	}
}

func TestCheckerEpochDiscardAndReplayDedup(t *testing.T) {
	c := New(2)
	c.Offer(0, iv(0, 1, 2, []int32{1, 0}, []int32{2, 0}))
	// A session-resume replay of the same interval is a no-op.
	c.Offer(0, iv(0, 1, 2, []int32{1, 0}, []int32{2, 0}))
	if c.Depth() != 1 {
		t.Fatalf("replayed offer duplicated the queue: depth = %d", c.Depth())
	}
	c.Reset(1)
	if c.Depth() != 0 || c.Epoch() != 1 {
		t.Fatalf("reset left depth=%d epoch=%d", c.Depth(), c.Epoch())
	}
	// Stale-epoch offers (the abandoned execution's stragglers) are dropped...
	if c.Offer(0, iv(1, 1, 2, []int32{0, 1}, []int32{0, 2})) || c.Depth() != 0 {
		t.Fatal("stale-epoch offer leaked into the checker")
	}
	// ...and after the reset the same state indices are acceptable again.
	c.Offer(1, iv(0, 1, 2, []int32{1, 0}, []int32{2, 0}))
	if !c.Offer(1, iv(1, 1, 2, []int32{0, 1}, []int32{0, 2})) {
		t.Fatal("fresh-epoch intervals must trigger")
	}
}

func TestCheckerForceTrigger(t *testing.T) {
	c := New(2)
	if c.ForceTrigger(3) {
		t.Fatal("force-trigger for a foreign epoch must refuse")
	}
	if !c.ForceTrigger(0) || !c.Pending(0) {
		t.Fatal("force-trigger must arm the pending state")
	}
}

// prefix op-stream helpers.
func initOp(p int) wire.TraceOp { return wire.TraceOp{Op: wire.TraceInit, Proc: int32(p), Name: "cs"} }
func set(p, v int) wire.TraceOp {
	return wire.TraceOp{Op: wire.TraceSet, Proc: int32(p), Name: "cs", Value: int64(v)}
}
func send(p int, id uint64) wire.TraceOp {
	return wire.TraceOp{Op: wire.TraceSend, Proc: int32(p), MsgID: id}
}
func recv(p int, id uint64) wire.TraceOp {
	return wire.TraceOp{Op: wire.TraceRecv, Proc: int32(p), MsgID: id}
}

func TestAssemblePrefixStopsAtUnmatchedRecv(t *testing.T) {
	// n=1: procs 0 (app) and 1 (ctl). The ctl stream has a recv whose
	// send is not staged yet; assemble would wedge, the prefix stops.
	ops := [][]wire.TraceOp{
		{initOp(0), set(0, 1)},
		{recv(1, 42), set(1, 7)},
	}
	d, consumed, err := AssemblePrefix(1, ops)
	if err != nil {
		t.Fatal(err)
	}
	if consumed[0] != 2 || consumed[1] != 0 {
		t.Fatalf("consumed = %v, want [2 0]", consumed)
	}
	if got := d.Len(1); got != 1 {
		t.Fatalf("ctl proc has %d states, want 1 (just ⊥)", got)
	}
	// Staging the send extends the prefix past the former stop.
	ops[0] = append(ops[0], send(0, 42))
	_, consumed, err = AssemblePrefix(1, ops)
	if err != nil {
		t.Fatal(err)
	}
	if consumed[0] != 3 || consumed[1] != 2 {
		t.Fatalf("consumed = %v, want [3 2]", consumed)
	}
}

func TestConfirmPrefixDecidesViolation(t *testing.T) {
	violation := predicate.And(
		predicate.LocalVarEq(0, "cs", 1),
		predicate.LocalVarEq(1, "cs", 1),
	)
	// Concurrent critical sections: no causality between the two app
	// streams, so a cut with both cs=1 exists.
	conc := [][]wire.TraceOp{
		{initOp(0), set(0, 1), set(0, 0)},
		{initOp(1), set(1, 1), set(1, 0)},
		nil, nil,
	}
	if _, found, err := ConfirmPrefix(2, conc, violation); err != nil || !found {
		t.Fatalf("concurrent CSs: found=%v err=%v, want detection", found, err)
	}
	// Serialized critical sections: proc 1 enters only after a message
	// chain from proc 0's exit, so no such cut exists.
	serial := [][]wire.TraceOp{
		{initOp(0), set(0, 1), set(0, 0), send(0, 1)},
		{initOp(1), recv(1, 1), set(1, 1), set(1, 0)},
		nil, nil,
	}
	if _, found, err := ConfirmPrefix(2, serial, violation); err != nil || found {
		t.Fatalf("serialized CSs: found=%v err=%v, want none", found, err)
	}
}
