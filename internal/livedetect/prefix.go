package livedetect

import (
	"fmt"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
	"predctl/internal/wire"
)

// AssemblePrefix replays partially captured trace ops into the largest
// causally closed prefix deposet they determine. It is internal/node's
// assemble with the wedge condition inverted: mid-run, a receive whose
// matching send has not been staged yet is not corruption — the send
// is simply still buffered on another node — so the sweep stops that
// process's cursor there instead of erroring, and everything after it
// (causally later by program order) is left for the next prefix. Sends
// with no matching receive become in-flight messages. The returned
// consumed slice reports how many ops of each stream made the prefix.
func AssemblePrefix(n int, opsByProc [][]wire.TraceOp) (*deposet.Deposet, []int, error) {
	if len(opsByProc) != 2*n {
		return nil, nil, fmt.Errorf("livedetect: prefix: %d op streams for %d processes", len(opsByProc), 2*n)
	}
	b := deposet.NewBuilder(2 * n)
	handles := make(map[uint64]deposet.MsgHandle)
	cursor := make([]int, 2*n)
	for {
		progress := false
		for p := 0; p < 2*n; p++ {
		ops:
			for cursor[p] < len(opsByProc[p]) {
				op := opsByProc[p][cursor[p]]
				switch op.Op {
				case wire.TraceInit, wire.TraceLet:
					b.Let(p, op.Name, int(op.Value))
				case wire.TraceStep:
					b.Step(p)
				case wire.TraceSet:
					b.Step(p)
					b.Let(p, op.Name, int(op.Value))
				case wire.TraceSend:
					_, h := b.Send(p)
					if _, dup := handles[op.MsgID]; dup {
						return nil, nil, fmt.Errorf("livedetect: prefix: duplicate trace id %#x", op.MsgID)
					}
					handles[op.MsgID] = h
				case wire.TraceRecv:
					h, ok := handles[op.MsgID]
					if !ok {
						break ops // send not staged yet: prefix ends here for p
					}
					b.Recv(p, h)
				default:
					return nil, nil, fmt.Errorf("livedetect: prefix: unknown trace op %d", op.Op)
				}
				cursor[p]++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	d, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return d, cursor, nil
}

// ConfirmPrefix assembles the staged capture into its causally closed
// prefix and decides possibly(violation) on it. Soundness: a
// consistent cut of a prefix is a consistent cut of every extension,
// so a cut found here exists in the completed run too. A false return
// is not a verdict — the cut may lie beyond the current prefix — which
// is why the caller retries as the capture grows and once more when
// the run completes. The returned cut indexes the 2n logical processes
// of the assembled trace.
func ConfirmPrefix(n int, opsByProc [][]wire.TraceOp, violation predicate.Expr) (deposet.Cut, bool, error) {
	d, _, err := AssemblePrefix(n, opsByProc)
	if err != nil {
		return nil, false, err
	}
	cut, found := detect.PossiblyGeneral(d, violation)
	return cut, found, nil
}
