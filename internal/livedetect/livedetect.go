// Package livedetect is the coordinator's incremental online checker:
// it watches the candidate stream as wire.Candidate frames arrive and
// decides possibly(¬B) *during* the run, closing the paper's active
// debugging loop (detect a suspect global state, then control a
// re-execution through it) without waiting for the run to finish.
//
// Detection is two-stage. The streaming stage is the Garg–Waldecker
// weak-conjunction checker of internal/monitor lifted to the cluster:
// one queue of candidate intervals per node, the elimination loop
// dropping any interval that wholly precedes another queue's front,
// a trigger when the fronts are pairwise overlappable. The candidate
// vector clocks are node-level, and the node-shared clock induces
// causality the captured computation does not have (an app event and a
// later controller send on the same node are clock-ordered even with
// no message between them), so the trigger is conservative: it can
// miss cuts the trace admits, and its witness is a hint, not a
// verdict. The confirming stage therefore re-decides on the captured
// trace itself: AssemblePrefix replays the staged capture ops into the
// largest causally closed prefix deposet and detect.PossiblyGeneral —
// which routes the regular ¬B through the internal/slice machinery —
// either finds a consistent cut or defers. A consistent cut of a
// prefix is a consistent cut of the full computation (consistency only
// constrains the causal past), so a confirmed detection is sound
// mid-run; and because the final prefix is the whole trace, a closing
// confirmation pass makes the live verdict coincide exactly with the
// offline one.
//
// The checker is epoch-aware (offers tagged with a superseded epoch
// are discarded, Reset re-arms it for the re-execution) and
// resume-safe (per-process interval indices only move forward, so a
// session-resume replay of a candidate frame is a no-op even if it
// slips past the coordinator's sequence dedup).
package livedetect

import "sync"

// Interval is one maximal true-interval of a node's local predicate
// component of ¬B (a wire.Candidate): endpoints as node-level vector
// clocks plus the traced state indices of the app process.
type Interval struct {
	Proc         int
	LoIdx, HiIdx int64
	Lo, Hi       []int32
}

// Checker is the streaming GW stage. All methods are safe for
// concurrent use; the coordinator calls Offer from per-connection
// ingest goroutines.
type Checker struct {
	mu        sync.Mutex
	n         int
	epoch     uint32
	queues    [][]Interval
	lastHi    []int64 // per-proc newest accepted HiIdx (replay dedup)
	triggered bool    // GW fronts pairwise overlappable, awaiting prefix confirmation
	confirmed bool    // prefix-confirmed detection recorded for this epoch
	witness   []Interval
	trig      Interval // the offered interval that completed the witness
	trigSet   bool

	offered, droppedN, staleN int64
}

// New returns a checker for an n-node cluster, armed for epoch 0.
func New(n int) *Checker {
	c := &Checker{n: n}
	c.reset(0)
	return c
}

func (c *Checker) reset(epoch uint32) {
	c.epoch = epoch
	c.queues = make([][]Interval, c.n)
	c.lastHi = make([]int64, c.n)
	c.triggered = false
	c.confirmed = false
	c.witness = nil
	c.trig = Interval{}
	c.trigSet = false
}

// Reset discards every queued interval and re-arms the checker for
// epoch: the abandoned epoch's candidates must not seed a detection in
// the re-execution, mirroring the coordinator's capture discard.
func (c *Checker) Reset(epoch uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset(epoch)
}

// Offer feeds one candidate interval ingested at stream epoch `epoch`.
// It returns true when the caller should run (or re-run) the prefix
// confirmation: either this interval just made the GW fronts pairwise
// overlappable, or a trigger is still pending confirmation and new
// evidence has arrived. Stale-epoch offers and replays are dropped.
func (c *Checker) Offer(epoch uint32, iv Interval) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch || iv.Proc < 0 || iv.Proc >= c.n {
		c.staleN++
		return false
	}
	if iv.HiIdx <= c.lastHi[iv.Proc] {
		c.staleN++ // session-resume replay (or reordered duplicate)
		return false
	}
	c.lastHi[iv.Proc] = iv.HiIdx
	c.offered++
	if c.confirmed {
		return false
	}
	if c.triggered {
		return true // retry confirmation on the grown prefix
	}
	c.queues[iv.Proc] = append(c.queues[iv.Proc], iv)
	c.advance()
	if c.triggered && !c.trigSet {
		c.trig, c.trigSet = iv, true // this offer completed the witness
	}
	return c.triggered
}

// advance runs the GW elimination loop (internal/monitor's advance):
// drop any front interval that wholly precedes another queue's front;
// trigger when every queue is non-empty and no drop applies. Caller
// holds c.mu.
func (c *Checker) advance() {
	for {
		for i := 0; i < c.n; i++ {
			if len(c.queues[i]) == 0 {
				return // need more candidates before a verdict
			}
		}
		dropped := false
		for i := 0; i < c.n && !dropped; i++ {
			for j := 0; j < c.n; j++ {
				if i == j {
					continue
				}
				lo, hi := c.queues[j][0].Lo, c.queues[i][0].Hi
				if i >= len(lo) || i >= len(hi) {
					continue // malformed clock; never grounds a drop
				}
				// Iᵢ wholly precedes Iⱼ: Iᵢ's last state causally
				// precedes Iⱼ's first.
				if lo[i] >= hi[i] {
					c.queues[i] = c.queues[i][1:]
					c.droppedN++
					dropped = true
					break
				}
			}
		}
		if !dropped {
			c.triggered = true
			c.witness = make([]Interval, c.n)
			for i := 0; i < c.n; i++ {
				c.witness[i] = c.queues[i][0]
			}
			return
		}
	}
}

// Pending reports whether a trigger for epoch awaits confirmation.
func (c *Checker) Pending(epoch uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch == epoch && c.triggered && !c.confirmed
}

// Confirm records that the prefix check validated the epoch's trigger.
// It returns false when the epoch moved on or the detection was
// already confirmed (a concurrent confirmer won the race).
func (c *Checker) Confirm(epoch uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch || c.confirmed {
		return false
	}
	c.confirmed = true
	return true
}

// ForceTrigger arms the pending-trigger state without GW evidence; the
// commit-time closing pass uses it so the final full-trace check runs
// even when the conservative streaming stage never fired.
func (c *Checker) ForceTrigger(epoch uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch || c.confirmed {
		return false
	}
	c.triggered = true
	return true
}

// Epoch returns the epoch the checker is armed for.
func (c *Checker) Epoch() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Fired reports whether this epoch has a confirmed detection.
func (c *Checker) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.confirmed
}

// Trigger returns the interval whose arrival completed the GW witness,
// and whether one exists (a ForceTrigger'd checker has none). The
// coordinator uses it to attribute detection latency to the candidate
// send that made the violation observable.
func (c *Checker) Trigger() (Interval, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trig, c.trigSet
}

// Witness returns the GW front at trigger time (nil before a trigger).
func (c *Checker) Witness() []Interval {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.witness
}

// Depth returns the total number of queued intervals.
func (c *Checker) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := 0
	for _, q := range c.queues {
		d += len(q)
	}
	return d
}

// Stats returns cumulative offer accounting: intervals accepted,
// intervals eliminated by the GW loop, and offers discarded as
// stale-epoch or replayed.
func (c *Checker) Stats() (offered, dropped, stale int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offered, c.droppedN, c.staleN
}
