// Package reduce implements optimal tracing for replay in the sense of
// Netzer & Miller (reference [9] of the paper): given a traced
// computation, determine which receive events *race* — could have been
// bound to a different message in some execution — and therefore must
// have their message binding recorded for faithful replay. Non-racing
// receives are uniquely determined by causality and program order, so a
// replayer (like this repository's) need only enforce the racing
// bindings.
package reduce

import (
	"predctl/internal/deposet"
)

// Race is one receive whose binding must be traced.
type Race struct {
	// Recv is the state produced by the racing receive.
	Recv deposet.StateID
	// Msg is the index of the message actually consumed.
	Msg int
	// Alternatives are other message indices that could have been
	// delivered at this receive instead.
	Alternatives []int
}

// Report summarizes the reduction.
type Report struct {
	Receives int // total receive events
	Races    []Race
}

// RacingFraction is the share of receives whose binding must be traced.
func (r *Report) RacingFraction() float64 {
	if r.Receives == 0 {
		return 0
	}
	return float64(len(r.Races)) / float64(r.Receives)
}

// sentBefore reports whether message m's send event can precede receive
// event e of process p in some execution — i.e. the send is not causally
// after the receive. With the state-clock convention, receive r (event e
// of p) causally precedes send event s of q iff reaching state (q,s)
// implies r happened, i.e. (p, e−1) was exited.
func sentBefore(d *deposet.Deposet, p, e int, m deposet.Message) bool {
	return !d.HB(deposet.StateID{P: p, K: e - 1}, deposet.StateID{P: m.FromP, K: m.SendEvent})
}

// Analyze computes the racing receives of d. Walking each process's
// receives in program order, a receive races iff more than one
// still-unbound message to this process could already have been sent;
// earlier receives' bindings are taken as given (they are themselves
// traced if they race), matching Netzer & Miller's incremental
// determinacy argument.
func Analyze(d *deposet.Deposet) *Report {
	rep := &Report{}
	msgs := d.Messages()
	// Messages by destination. (The model does not record a destination
	// for messages still in flight at the end, so they cannot appear as
	// alternatives; a production tracer would include them.)
	byDest := make([][]int, d.NumProcs())
	for i, m := range msgs {
		if m.Received() {
			byDest[m.ToP] = append(byDest[m.ToP], i)
		}
	}
	for p := 0; p < d.NumProcs(); p++ {
		bound := map[int]bool{}
		for e := 1; e < d.Len(p); e++ {
			mi := d.RecvAt(p, e)
			if mi < 0 {
				continue
			}
			rep.Receives++
			var alts []int
			for _, other := range byDest[p] {
				if other == mi || bound[other] {
					continue
				}
				if sentBefore(d, p, e, msgs[other]) {
					alts = append(alts, other)
				}
			}
			if len(alts) > 0 {
				rep.Races = append(rep.Races, Race{
					Recv:         deposet.StateID{P: p, K: e},
					Msg:          mi,
					Alternatives: alts,
				})
			}
			bound[mi] = true
		}
	}
	return rep
}
