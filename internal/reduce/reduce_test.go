package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
)

func TestNoMessagesNoRaces(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(1)
	rep := Analyze(b.MustBuild())
	if rep.Receives != 0 || len(rep.Races) != 0 || rep.RacingFraction() != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTwoConcurrentSendersRace(t *testing.T) {
	// P0 and P1 each send to P2, concurrently: P2's first receive could
	// have taken either message.
	b := deposet.NewBuilder(3)
	_, h0 := b.Send(0)
	_, h1 := b.Send(1)
	b.Recv(2, h0)
	b.Recv(2, h1)
	rep := Analyze(b.MustBuild())
	if rep.Receives != 2 {
		t.Fatalf("receives = %d", rep.Receives)
	}
	if len(rep.Races) != 1 {
		t.Fatalf("races = %+v", rep.Races)
	}
	r := rep.Races[0]
	if r.Recv != (deposet.StateID{P: 2, K: 1}) || len(r.Alternatives) != 1 {
		t.Fatalf("race = %+v", r)
	}
	// The second receive is forced once the first binding is fixed.
}

func TestCausallyOrderedSendsDoNotRace(t *testing.T) {
	// P0 sends m0 to P2; P2 acknowledges to P1; P1 then sends m1 to P2:
	// m1's send causally follows P2's first receive, so neither receive
	// races.
	b := deposet.NewBuilder(3)
	_, h0 := b.Send(0)
	b.Recv(2, h0)
	_, ack := b.Send(2)
	b.Recv(1, ack)
	_, h1 := b.Send(1)
	b.Recv(2, h1)
	rep := Analyze(b.MustBuild())
	if rep.Receives != 3 {
		t.Fatalf("receives = %d", rep.Receives)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("unexpected races: %+v", rep.Races)
	}
}

// adversarialBindings re-executes the deposet's structure under a random
// schedule. Receives in `enforced` must take their original message
// (blocking until it is available); all other receives take ANY
// available message for the destination, chosen at random. Returns the
// resulting binding (receive state → message) or ok=false if the chosen
// schedule got stuck.
func adversarialBindings(d *deposet.Deposet, r *rand.Rand, enforced map[deposet.StateID]bool) (map[deposet.StateID]int, bool) {
	n := d.NumProcs()
	next := make([]int, n) // last executed event per process
	avail := make([][]int, n)
	binding := map[deposet.StateID]int{}
	take := func(p, want int) (int, bool) {
		for j, mi := range avail[p] {
			if want < 0 || mi == want {
				if want < 0 {
					j = r.Intn(len(avail[p]))
					mi = avail[p][j]
				}
				avail[p] = append(avail[p][:j], avail[p][j+1:]...)
				return mi, true
			}
		}
		return 0, false
	}
	for {
		progress := false
		for _, p := range r.Perm(n) {
			for next[p]+1 < d.Len(p) {
				e := next[p] + 1
				s := deposet.StateID{P: p, K: e}
				if mi := d.RecvAt(p, e); mi >= 0 {
					want := -1
					if enforced[s] {
						want = mi
					}
					chosen, ok := take(p, want)
					if !ok {
						break // blocked
					}
					binding[s] = chosen
				} else if mi := d.SendAt(p, e); mi >= 0 {
					m := d.Messages()[mi]
					if m.Received() {
						avail[m.ToP] = append(avail[m.ToP], mi)
					}
				}
				next[p] = e
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for p := 0; p < n; p++ {
		if next[p] != d.Len(p)-1 {
			return nil, false // stuck
		}
	}
	return binding, true
}

// Property (Netzer–Miller's optimal-tracing guarantee): enforcing ONLY
// the racing bindings makes every re-execution reproduce the original
// binding in full — the non-racing receives are determined by causality.
func TestEnforcedRacesDetermineReplayProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(3), 6+r.Intn(18)))
		rep := Analyze(d)
		enforced := map[deposet.StateID]bool{}
		for _, rc := range rep.Races {
			enforced[rc.Recv] = true
		}
		for trial := 0; trial < 8; trial++ {
			binding, ok := adversarialBindings(d, r, enforced)
			if !ok {
				continue // this schedule wedged; enforcement can do that
			}
			for s, got := range binding {
				if got != d.RecvAt(s.P, s.K) {
					t.Logf("seed %d: receive %v rebound %d→%d despite enforced races",
						seed, s, d.RecvAt(s.P, s.K), got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: on race-free computations no enforcement is needed at all —
// every completed free re-execution reproduces the original bindings.
func TestRaceFreeNeedsNoTracingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(3), 6+r.Intn(14)))
		rep := Analyze(d)
		if len(rep.Races) > 0 {
			return true // only race-free instances are in scope here
		}
		for trial := 0; trial < 5; trial++ {
			binding, ok := adversarialBindings(d, r, nil)
			if !ok {
				continue
			}
			for s, got := range binding {
				if got != d.RecvAt(s.P, s.K) {
					t.Logf("seed %d: race-free computation rebound %v", seed, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the racing fraction is between 0 and 1 and counts match.
func TestReportShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(30)))
		rep := Analyze(d)
		if len(rep.Races) > rep.Receives {
			return false
		}
		fr := rep.RacingFraction()
		return fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
