package node

import (
	"math/rand"
	"time"
)

// Faults is the link-level fault-injection shim: every attempt to put a
// sequenced frame on the wire may be dropped, duplicated or delayed,
// with decisions drawn from a deterministic per-link random stream
// seeded by (Seed, from, to). Because the reliable link retransmits
// unacknowledged frames and the receiver deduplicates by sequence
// number, a run with faults enabled still delivers every protocol
// message exactly once, in order — the shim exercises the recovery
// machinery without changing protocol semantics, which is what makes
// robustness testable.
//
// The shim applies only to node↔node protocol traffic. Link-control
// frames (Hello, LinkAck) and the coordinator capture stream are
// exempt: acks are idempotent and self-healing anyway, and perturbing
// the trace capture would test the harness, not the protocol.
type Faults struct {
	// Drop is the probability a write attempt is silently skipped. The
	// frame stays unacknowledged and is retransmitted, so Drop < 1
	// delays but never loses a message.
	Drop float64
	// Dup is the probability a written frame is written twice. The
	// receiver's dedup discards the copy.
	Dup float64
	// Delay is a fixed latency added before every sequenced write — the
	// networked stand-in for the paper's message delay T.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed makes the decision streams reproducible. Two runs with the
	// same Seed, topology and send pattern make identical choices.
	Seed int64
}

// enabled reports whether the shim would ever perturb a write.
func (f Faults) enabled() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Delay > 0 || f.Jitter > 0
}

// faultRand is one link's decision stream. Writer-goroutine-local: the
// link's single writer draws all decisions, so no locking is needed and
// the stream order is exactly the write-attempt order.
type faultRand struct {
	f   Faults
	rng *rand.Rand
}

// newFaultRand derives the (from, to) link's stream from the run seed
// with a splitmix64 finalizer, mirroring sim.procSeed: nearby seeds and
// nearby link indices must not produce correlated streams.
func newFaultRand(f Faults, from, to int) *faultRand {
	if !f.enabled() {
		return nil
	}
	z := uint64(f.Seed) + uint64(from+1)*0x9e3779b97f4a7c15 + uint64(to+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &faultRand{f: f, rng: rand.New(rand.NewSource(int64(z ^ (z >> 31))))}
}

// decision is the shim's verdict for one write attempt.
type decision struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// next draws the verdict for the next write attempt. A nil receiver
// (faults disabled) writes cleanly.
func (fr *faultRand) next() decision {
	if fr == nil {
		return decision{}
	}
	var d decision
	if fr.f.Drop > 0 && fr.rng.Float64() < fr.f.Drop {
		d.drop = true
	}
	if fr.f.Dup > 0 && fr.rng.Float64() < fr.f.Dup {
		d.dup = true
	}
	d.delay = fr.f.Delay
	if fr.f.Jitter > 0 {
		d.delay += time.Duration(fr.rng.Int63n(int64(fr.f.Jitter)))
	}
	return d
}
