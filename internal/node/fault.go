package node

import (
	"math/rand"
	"time"
)

// Faults is the link-level fault-injection shim: every attempt to put a
// sequenced frame on the wire may be dropped, duplicated or delayed,
// with decisions drawn from a deterministic per-link random stream
// seeded by (Seed, from, to). Because the reliable link retransmits
// unacknowledged frames and the receiver deduplicates by sequence
// number, a run with faults enabled still delivers every protocol
// message exactly once, in order — the shim exercises the recovery
// machinery without changing protocol semantics, which is what makes
// robustness testable.
//
// Drop/Dup/Delay/Jitter apply only to node↔node protocol traffic.
// Link-control frames (Hello, LinkAck) and the coordinator capture
// stream are exempt: acks are idempotent and self-healing anyway, and
// perturbing individual capture writes would test the harness, not the
// protocol. Partitions are the exception: a Partition window severs
// links wholesale — every write, ack, and redial on the cut, and (with
// Coord set) the affected nodes' coordinator capture streams too — so
// the capture stream's own ARQ and session-resume machinery is
// exercised by real outages, not per-frame noise.
type Faults struct {
	// Drop is the probability a write attempt is silently skipped. The
	// frame stays unacknowledged and is retransmitted, so Drop < 1
	// delays but never loses a message.
	Drop float64
	// Dup is the probability a written frame is written twice. The
	// receiver's dedup discards the copy.
	Dup float64
	// Delay is a fixed latency added before every sequenced write — the
	// networked stand-in for the paper's message delay T.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed makes the decision streams reproducible. Two runs with the
	// same Seed, topology and send pattern make identical choices.
	Seed int64
	// Partitions is the link-partition schedule: time windows, relative
	// to the run start, during which groups of nodes cannot reach each
	// other. Unlike the probabilistic faults above, a partition severs
	// affected links completely — writes, acks, and redials — until the
	// window closes (heals).
	Partitions []Partition
}

// Partition is one scheduled link outage: from Start (relative to the
// run start) for Dur, every link between a node in A and a node in B is
// severed in both directions. An empty B means "everyone not in A" —
// the classic split of A away from the rest of the cluster. With Coord
// set, the A-side nodes also lose their coordinator capture streams for
// the window, exercising the stream's buffering, redial and
// session-resume path.
type Partition struct {
	Start time.Duration
	Dur   time.Duration
	A     []int
	B     []int // empty: the complement of A
	Coord bool  // also sever A-nodes' coordinator streams
}

// severs reports whether this partition cuts the (from, to) link.
func (p Partition) severs(from, to int) bool {
	inA, inB := contains(p.A, from), contains(p.A, to)
	if len(p.B) == 0 {
		// A vs rest: cut iff exactly one endpoint is in A.
		return inA != inB
	}
	return (inA && contains(p.B, to)) || (inB && contains(p.B, from))
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// enabled reports whether the shim would ever perturb a write.
func (f Faults) enabled() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Delay > 0 || f.Jitter > 0
}

// partitions is the runtime view of the Partition schedule, anchored to
// the run's start instant so every node (and the coordinator stream)
// agrees on window boundaries. A nil *partitions never severs.
type partitions struct {
	start time.Time
	list  []Partition
}

// newPartitions anchors f.Partitions at start. Returns nil when the
// schedule is empty, keeping the severed checks a single nil test on
// unpartitioned runs.
func newPartitions(f Faults, start time.Time) *partitions {
	if len(f.Partitions) == 0 {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	return &partitions{start: start, list: f.Partitions}
}

// meshSevered reports whether the (from, to) link is inside an open
// partition window at time now.
func (ps *partitions) meshSevered(from, to int, now time.Time) bool {
	if ps == nil {
		return false
	}
	since := now.Sub(ps.start)
	for _, p := range ps.list {
		if since >= p.Start && since < p.Start+p.Dur && p.severs(from, to) {
			return true
		}
	}
	return false
}

// coordSevered reports whether node id's coordinator stream is inside
// an open Coord partition window at time now.
func (ps *partitions) coordSevered(id int, now time.Time) bool {
	if ps == nil {
		return false
	}
	since := now.Sub(ps.start)
	for _, p := range ps.list {
		if p.Coord && since >= p.Start && since < p.Start+p.Dur && contains(p.A, id) {
			return true
		}
	}
	return false
}

// faultRand is one link's decision stream. Writer-goroutine-local: the
// link's single writer draws all decisions, so no locking is needed and
// the stream order is exactly the write-attempt order.
type faultRand struct {
	f   Faults
	rng *rand.Rand
}

// newFaultRand derives the (from, to) link's stream from the run seed
// with a splitmix64 finalizer, mirroring sim.procSeed: nearby seeds and
// nearby link indices must not produce correlated streams.
func newFaultRand(f Faults, from, to int) *faultRand {
	if !f.enabled() {
		return nil
	}
	z := uint64(f.Seed) + uint64(from+1)*0x9e3779b97f4a7c15 + uint64(to+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &faultRand{f: f, rng: rand.New(rand.NewSource(int64(z ^ (z >> 31))))}
}

// decision is the shim's verdict for one write attempt.
type decision struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// next draws the verdict for the next write attempt. A nil receiver
// (faults disabled) writes cleanly.
func (fr *faultRand) next() decision {
	if fr == nil {
		return decision{}
	}
	var d decision
	if fr.f.Drop > 0 && fr.rng.Float64() < fr.f.Drop {
		d.drop = true
	}
	if fr.f.Dup > 0 && fr.rng.Float64() < fr.f.Dup {
		d.dup = true
	}
	d.delay = fr.f.Delay
	if fr.f.Jitter > 0 {
		d.delay += time.Duration(fr.rng.Int63n(int64(fr.f.Jitter)))
	}
	return d
}
