package node

import (
	"fmt"

	"predctl/internal/deposet"
	"predctl/internal/store"
	"predctl/internal/wire"
)

// AssembleBundle verifies a sealed capture bundle and reassembles its
// final-epoch deposet — the disk-backed twin of the coordinator's
// commit-time assembly, consumable by `pctl replay`/`pctl trace` and
// any offline pass long after the run's process is gone. Segments are
// append-only, so a bundle can hold records from voided epochs
// (controlled re-executions discard them from the live index, not from
// disk); the manifest's sealed epoch filters them out, exactly as the
// coordinator's staging held only final-epoch capture.
func AssembleBundle(dir string) (*deposet.Deposet, *store.Manifest, error) {
	man, err := store.Verify(dir)
	if err != nil {
		return nil, nil, err
	}
	if man.N < 1 {
		return nil, nil, fmt.Errorf("node: bundle %s: manifest n=%d", dir, man.N)
	}
	opsByProc := make([][]wire.TraceOp, 2*man.N)
	addOp := func(op wire.TraceOp) error {
		p := int(op.Proc)
		if p < 0 || p >= 2*man.N {
			return fmt.Errorf("node: bundle %s: trace op for process %d of %d", dir, p, 2*man.N)
		}
		opsByProc[p] = append(opsByProc[p], op)
		return nil
	}
	if _, err := store.ReplayBundle(dir, func(rec wire.SegmentRecord, _ uint64, m wire.Msg) error {
		if rec.Epoch != man.Epoch {
			return nil
		}
		switch v := m.(type) {
		case wire.Trace:
			for _, op := range v.Ops {
				if err := addOp(op); err != nil {
					return err
				}
			}
		case wire.TraceOpBatch:
			for _, op := range v.Ops {
				if err := addOp(op); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	d, err := assemble(man.N, opsByProc)
	if err != nil {
		return nil, nil, err
	}
	return d, man, nil
}
