package node

// obs_test.go pins the live-observability layer: the coordinator's
// introspection endpoints stay up and truthful through a chaos run —
// including across a crash-restart epoch bump — node metrics
// snapshots populate the merged live registry with node-labelled
// series, and the nodes' own introspection servers answer mid-run.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"predctl/internal/obs"
)

// TestClusterLiveIntrospection runs a chaos cluster with a pre-bound
// coordinator HTTP listener and polls /healthz, /metrics and /statusz
// for the whole run, requiring: every poll answers, the statusz epoch
// is observed ≥ 1 after the crash-restart, per-node rows carry
// streamed metrics, and /metrics exposes node-labelled series plus the
// ingest-lag gauges.
func TestClusterLiveIntrospection(t *testing.T) {
	const n = 4
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	base := "http://" + hln.Addr().String()

	// Collect the node introspection URLs Run logs, so the poller can
	// hit a node endpoint too (the ports are ephemeral).
	var logMu sync.Mutex
	var nodeURLs []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if i := strings.Index(line, "introspection at http://"); i >= 0 {
			logMu.Lock()
			nodeURLs = append(nodeURLs, line[i+len("introspection at "):])
			logMu.Unlock()
		}
	}

	cfg := ClusterConfig{
		N: n, Rounds: 3, Think: 5 * time.Millisecond, CS: time.Millisecond,
		Seed: 7, Timeouts: chaosTimeouts(),
		Batching: Batching{Interval: time.Millisecond, SnapshotEvery: 2},
		Crashes:  []Crash{{At: 10 * time.Millisecond, Node: 1, Down: 5 * time.Millisecond}},
		Journal:  obs.NewJournal(0), Reg: obs.NewRegistry(),
		HTTPListener: hln, NodeHTTP: true,
		Logf: logf,
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunCluster(cfg)
		done <- outcome{res, err}
	}()

	client := &http.Client{Timeout: 2 * time.Second}
	get := func(url string) (int, string, error) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	var (
		maxEpoch      uint32
		sawRows       bool
		sawNodeSeries bool
		sawLagSeries  bool
		sawStreamed   bool
		sawNodeStatus bool
		polls         int
	)
	var out outcome
poll:
	for {
		select {
		case out = <-done:
			break poll
		default:
		}
		code, _, err := get(base + "/healthz")
		if err != nil {
			// Teardown race: the run finishing closes the server between
			// our done check and the GET. Anything else is a real outage.
			select {
			case out = <-done:
				break poll
			case <-time.After(time.Second):
				t.Fatalf("healthz unreachable while the run is live: %v", err)
			}
		}
		if code != http.StatusOK {
			t.Fatalf("healthz status %d", code)
		}
		if code, body, err := get(base + "/metrics"); err == nil {
			if code != http.StatusOK {
				t.Fatalf("metrics status %d", code)
			}
			if strings.Contains(body, `node="`) {
				sawNodeSeries = true
			}
			if strings.Contains(body, "predctl_coord_ingest_lag_seconds") {
				sawLagSeries = true
			}
		}
		if code, body, err := get(base + "/statusz"); err == nil {
			if code != http.StatusOK {
				t.Fatalf("statusz status %d", code)
			}
			var st CoordStatus
			if derr := json.Unmarshal([]byte(body), &st); derr != nil {
				t.Fatalf("statusz not parseable: %v\n%s", derr, body)
			}
			if st.Epoch > maxEpoch {
				maxEpoch = st.Epoch
			}
			if len(st.Nodes) == n {
				sawRows = true
			}
			for _, row := range st.Nodes {
				if row.LagMs >= 0 && row.Metrics["predctl_wire_frames_total"] > 0 {
					sawStreamed = true
				}
			}
		}
		if !sawNodeStatus {
			logMu.Lock()
			urls := append([]string(nil), nodeURLs...)
			logMu.Unlock()
			for _, u := range urls {
				// Best effort — a crashed node's server is gone; any one
				// answering proves the node-side endpoints.
				if code, body, err := get(u + "/statusz"); err == nil && code == http.StatusOK {
					var ns NodeStatus
					if json.Unmarshal([]byte(body), &ns) == nil && ns.N == n {
						sawNodeStatus = true
						break
					}
				}
			}
		}
		polls++
		time.Sleep(2 * time.Millisecond)
	}

	if out.err != nil {
		t.Fatalf("cluster: %v", out.err)
	}
	if out.res.Restarts < 1 {
		t.Fatalf("crash schedule produced %d restarts, want ≥ 1", out.res.Restarts)
	}
	if polls < 3 {
		t.Fatalf("only %d polls completed; run too fast to observe", polls)
	}
	if maxEpoch < 1 {
		t.Fatalf("statusz never showed the crash-restart epoch bump (max epoch %d)", maxEpoch)
	}
	if !sawRows {
		t.Fatalf("statusz never listed all %d node rows", n)
	}
	if !sawStreamed {
		t.Fatal("no node row ever carried streamed snapshot metrics with a fresh lag")
	}
	if !sawNodeSeries {
		t.Fatal("/metrics never exposed a node-labelled series")
	}
	if !sawLagSeries {
		t.Fatal("/metrics never exposed predctl_coord_ingest_lag_seconds")
	}
	if !sawNodeStatus {
		t.Fatal("no node introspection endpoint ever answered /statusz")
	}
}

// TestClusterTraceFromChaosRun exports the merged journal of a real
// crash-restart run as a cluster Chrome trace and requires the pieces
// a debugger needs: parseable JSON, at least one causally-matched
// cross-node flow pair, and the chaos annotations on the cluster row.
func TestClusterTraceFromChaosRun(t *testing.T) {
	const n, rounds = 3, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: chaosTimeouts(),
		Crashes: []Crash{{At: 5 * time.Millisecond, Node: 1, Down: 5 * time.Millisecond}},
	})
	if res.Restarts < 1 {
		t.Fatalf("crash schedule produced %d restarts, want ≥ 1", res.Restarts)
	}
	doc, err := obs.ClusterTrace(j, obs.ClusterTraceOptions{N: n})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			ID   int64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("cluster trace is not valid JSON: %v", err)
	}
	starts, finishes := map[int64]int{}, map[int64]int{}
	sawCrash, sawRestartMark := false, false
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "s":
			starts[e.ID]++
		case "f":
			finishes[e.ID]++
		case "i":
			if e.Name == obs.EvChaosCrash && e.Pid == n {
				sawCrash = true
			}
			if e.Name == obs.EvEpochRestart {
				sawRestartMark = true
			}
		}
	}
	if len(finishes) == 0 {
		t.Fatal("no cross-node flow arrows in the cluster trace")
	}
	for id, c := range finishes {
		if starts[id] != c {
			t.Errorf("flow %d: %d finishes for %d starts", id, c, starts[id])
		}
	}
	if !sawCrash {
		t.Error("chaos.crash annotation missing from the cluster row")
	}
	if !sawRestartMark {
		t.Error("epoch.restart marker missing from the trace")
	}
}

// TestClosingSnapshotPopulatesLiveRegistry pins the snapshot path end
// to end on a quiet run: even with a periodic cadence far beyond the
// run length, the closing snapshot each node sends in its bye phase
// reaches the coordinator's live registry. It is deterministic because
// the snapshot precedes the bye on the same ordered stream: by the
// time every bye is counted (Wait returns), every snapshot is applied.
func TestClosingSnapshotPopulatesLiveRegistry(t *testing.T) {
	const n = 2
	coord, err := NewCoordinator(CoordConfig{
		N: n, Addr: "127.0.0.1:0", Reg: obs.NewRegistry(),
		Timeouts: chaosTimeouts(),
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			t.Fatalf("listen: %v", lerr)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reg := obs.NewRegistry()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, rerr := Run(Config{
				ID: i, N: n, Addrs: addrs, Coord: coord.Addr(),
				Rounds: 1, Think: time.Millisecond, CS: time.Millisecond,
				Seed: 3, Timeouts: chaosTimeouts(), Listener: lns[i],
				Reg:   reg.Child(obs.L("node", fmt.Sprint(i))),
				Start: start,
				// Only stopFlusher's closing snapshot can deliver metrics
				// at this cadence.
				Batching: Batching{Interval: 50 * time.Millisecond, SnapshotEvery: 1 << 20},
			})
			if rerr != nil {
				t.Errorf("node %d: %v", i, rerr)
			}
		}(i)
	}
	if _, err := coord.Wait(time.Minute); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Let the nodes exit on the Commit before tearing the listener down,
	// or their final drain turns into a futile resume campaign.
	wg.Wait()
	st := coord.Status()
	if len(st.Nodes) != n {
		t.Fatalf("status has %d node rows, want %d", len(st.Nodes), n)
	}
	for _, row := range st.Nodes {
		if row.LagMs < 0 {
			t.Errorf("node %d: no snapshot ever arrived", row.Node)
		}
		if row.Metrics["predctl_requests_total"] == 0 {
			t.Errorf("node %d: closing snapshot missing request tally: %v", row.Node, row.Metrics)
		}
	}
}
