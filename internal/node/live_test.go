package node

import (
	"fmt"
	"testing"
	"time"

	"predctl/internal/detect"
	"predctl/internal/livedetect"
	"predctl/internal/obs"
	"predctl/internal/predicate"
	"predctl/internal/wire"
)

// TestLiveDetectionPlantedViolation is the subsystem's headline test:
// a rogue node enters critical sections without permission, the live
// checker confirms possibly(¬B) strictly mid-run, the coordinator
// auto-drives a §8 controlled re-execution, and the re-executed run —
// the one the capture keeps — satisfies every invariant.
func TestLiveDetectionPlantedViolation(t *testing.T) {
	const n, rounds = 3, 6
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: 3 * time.Millisecond,
		Seed: 21, Scapegoat: 1, Rogues: []int{1}, Timeouts: testTimeouts(),
		Live: LiveConfig{Predicate: CSMutexPredicate(n)},
	})
	if len(res.Detections) == 0 {
		t.Fatal("planted violation produced no detection")
	}
	first := res.Detections[0]
	if first.Final {
		t.Fatal("detection only fired in the closing pass, not mid-run")
	}
	if !first.ReExec || res.ReExecs != 1 {
		t.Fatalf("detection did not drive a re-execution: %+v (reexecs %d)", first, res.ReExecs)
	}
	if first.Epoch != 0 || res.Epoch != 1 {
		t.Fatalf("epochs: detection at %d, run completed at %d; want 0 and 1", first.Epoch, res.Epoch)
	}
	if len(first.Cut) != 2*n {
		t.Fatalf("detection cut spans %d processes, want %d", len(first.Cut), 2*n)
	}
	// The re-execution put the rogue back under control, so the final
	// trace and journal are a controlled run's: live detection must NOT
	// fire for the final epoch, offline detection must find nothing,
	// and the protocol invariants hold.
	if res.LiveFired {
		t.Fatal("live verdict still fired for the re-executed epoch")
	}
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// The rogue behaved in the final epoch: full request tallies.
	for i, s := range res.Stats {
		if s.Requests != rounds {
			t.Errorf("node %d made %d requests in the final epoch, want %d", i, s.Requests, rounds)
		}
	}
	// The detection survives in the merged journal's annotations.
	found := 0
	for _, e := range j.Events() {
		if e.Name == obs.EvDetect {
			found++
		}
	}
	if found != 1 {
		t.Errorf("journal has %d %s annotations, want 1", found, obs.EvDetect)
	}
}

// TestLiveCandidateEpochDiscard pins the checker's epoch discipline at
// the ingest layer: a restart bumps the checker past the stream, the
// abandoned epoch's straggler candidates are dropped (they must not
// seed a detection in the re-execution), the EpochMark zeroes the
// session's bare candidate counter, and fresh-epoch candidates are
// believed again.
func TestLiveCandidateEpochDiscard(t *testing.T) {
	c := &Coordinator{
		n: 2, logf: func(string, ...any) {},
		sessions: map[int]*nodeSession{},
		stats:    make([]Stats, 2),
		doneSeen: make([]bool, 2), byeSeen: make([]bool, 2),
		ld:        livedetect.New(2),
		liveCfg:   LiveConfig{Predicate: CSMutexPredicate(2), OnDetect: OnDetectNote, MaxReExecs: 1},
		violation: predicate.Not(CSMutexPredicate(2)),
		detByNode: make([]int, 2),
	}
	st := &nodeSession{id: 0}
	cand := wire.Candidate{Proc: 0, LoIdx: 1, HiIdx: 2, Lo: []int32{1, 0}, Hi: []int32{2, 0}}
	if act, _ := c.ingest(st, wire.CandidateBatch{Cands: []wire.Candidate{cand}}); act != actNone {
		t.Fatalf("half a witness triggered action %v", act)
	}
	if st.cands != 1 || c.ld.Depth() != 1 {
		t.Fatalf("staged cands=%d depth=%d, want 1 and 1", st.cands, c.ld.Depth())
	}

	// A restart decision moves the cluster (and checker) to epoch 1
	// while the stream still runs epoch 0: its stragglers are stale.
	c.epoch = 1
	c.ld.Reset(1)
	if act, _ := c.ingest(st, wire.Candidate{Proc: 1, LoIdx: 1, HiIdx: 2, Lo: []int32{0, 1}, Hi: []int32{0, 2}}); act != actNone {
		t.Fatalf("stale-epoch candidate triggered action %v", act)
	}
	if c.ld.Depth() != 0 {
		t.Fatalf("stale-epoch candidate leaked into the checker (depth %d)", c.ld.Depth())
	}
	if _, _, stale := c.ld.Stats(); stale != 1 {
		t.Fatalf("stale counter = %d, want 1", stale)
	}

	// The stream's EpochMark discards its staging — including the bare
	// candidate counter — and re-arms it for the new epoch.
	c.ingest(st, wire.EpochMark{Epoch: 1})
	if st.cands != 0 {
		t.Fatalf("EpochMark left st.cands = %d, want 0", st.cands)
	}
	if st.epoch != 1 {
		t.Fatalf("EpochMark left stream epoch %d, want 1", st.epoch)
	}
	// Fresh-epoch candidates count and are believed: a concurrent pair
	// completes the GW witness and demands confirmation.
	c.ingest(st, wire.CandidateBatch{Cands: []wire.Candidate{cand}})
	act, _ := c.ingest(st, wire.Candidate{Proc: 1, LoIdx: 1, HiIdx: 2, Lo: []int32{0, 1}, Hi: []int32{0, 2}})
	if act != actDetected {
		t.Fatalf("fresh-epoch witness produced action %v, want actDetected", act)
	}
	if st.cands != 2 {
		t.Fatalf("fresh-epoch cands = %d, want 2", st.cands)
	}
}

// TestLiveVerdictMatchesOffline is the zero-divergence property test:
// across many seeded loopback runs — rogue and clean, with crashes and
// coordinator-stream partitions forcing session-resume replays — the
// live subsystem's verdict must coincide exactly with running the
// offline detector over the reassembled deposet. OnDetect is "note" so
// rogues stay rogue and the final-epoch trace is the one the checker
// judged.
func TestLiveVerdictMatchesOffline(t *testing.T) {
	const n = 3
	runs := 100
	if testing.Short() {
		runs = 25
	}
	violation := predicate.Not(CSMutexPredicate(n))
	for seed := 0; seed < runs; seed++ {
		cfg := ClusterConfig{
			N: n, Rounds: 2, Think: 800 * time.Microsecond, CS: 600 * time.Microsecond,
			Seed: int64(seed), Scapegoat: seed % n, Timeouts: chaosTimeouts(),
			Live: LiveConfig{Predicate: CSMutexPredicate(n), OnDetect: OnDetectNote},
		}
		// Roughly half the runs plant a rogue (sometimes two), so both
		// verdicts are exercised; the scapegoat rotates independently.
		switch seed % 4 {
		case 1:
			cfg.Rogues = []int{seed % n}
		case 3:
			cfg.Rogues = []int{seed % n, (seed + 1) % n}
		}
		// Every 5th run crashes a node (a controlled re-execution
		// restart resets the checker); every 7th severs a coordinator
		// stream (the resume replay re-offers candidate frames).
		if seed%5 == 2 {
			cfg.Crashes = []Crash{{At: 2 * time.Millisecond, Node: (seed + 1) % n, Down: 2 * time.Millisecond}}
		}
		if seed%7 == 3 {
			cfg.Faults.Partitions = []Partition{{
				Start: time.Millisecond, Dur: 4 * time.Millisecond,
				A: []int{seed % n}, B: []int{seed % n}, Coord: true,
			}}
			cfg.Faults.Seed = int64(seed)
		}
		// A third of the runs go through a 2-level aggregation tree —
		// the live checker must reach the same verdict when candidates
		// arrive re-batched through relays — and some of those also
		// kill a relay mid-run (heals like a stream sever, no restart).
		if seed%3 == 0 {
			cfg.Relays = 2
			if seed%9 == 6 {
				cfg.RelayCrashes = []Crash{{At: 2 * time.Millisecond, Node: seed % 2, Down: 2 * time.Millisecond}}
			}
		}
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			res, _, _ := runTestCluster(t, cfg)
			_, offline := detect.PossiblyGeneral(res.Deposet, violation)
			if res.LiveFired != offline {
				t.Errorf("seed %d (rogues %v, epoch %d): live verdict %v, offline %v",
					seed, cfg.Rogues, res.Epoch, res.LiveFired, offline)
			}
		})
	}
}
