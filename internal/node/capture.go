package node

import (
	"fmt"
	"sync"

	"predctl/internal/deposet"
	"predctl/internal/vclock"
	"predctl/internal/wire"
)

// capture.go: the node side of trace capture. A networked run is
// recorded as the *same* deposet a sim run with Trace on would produce
// — logical processes 0..n-1 are the applications, n..2n-1 their
// controllers, and every protocol message (including the local
// app↔controller hops) is a deposet message — so pctl replay, detect
// and offline control consume a captured cluster run unchanged.
//
// Each node appends deposet-building ops for its two logical processes
// in their local event order and streams them to the coordinator in
// wire.Trace batches; the coordinator replays all ops through a
// deposet.Builder (assemble, below), matching sends to receives by the
// globally unique TraceID minted at each send.

// capture accumulates a node's trace ops between flushes. App and
// controller goroutines append concurrently; per-process op order is
// each goroutine's own program order, which is exactly the per-process
// event order the deposet needs.
type capture struct {
	mu       sync.Mutex
	enabled  bool
	ops      []wire.TraceOp
	appState int    // app-process traced state index (0 = ⊥)
	nextMsg  uint64 // per-node message counter for TraceIDs

	// kick, when set (before the run's goroutines start, so no lock
	// guards it), is invoked whenever the buffer reaches kickAt ops —
	// the size half of the coordinator stream's size-or-interval flush
	// policy (the interval half is the coordClient flusher's tick).
	kick   func()
	kickAt int
}

// msgID mints a globally unique trace id for a message sent by logical
// process proc.
func (c *capture) msgID(proc int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextMsg++
	return uint64(proc)<<40 | c.nextMsg
}

func (c *capture) append(op wire.TraceOp) {
	if !c.enabled {
		return
	}
	c.mu.Lock()
	c.ops = append(c.ops, op)
	n := len(c.ops)
	c.mu.Unlock()
	if c.kick != nil && n >= c.kickAt {
		c.kick()
	}
}

// appendApp appends an op for the app process and returns the app's
// new traced state index (Init does not advance it).
func (c *capture) appendApp(op wire.TraceOp) int {
	if !c.enabled {
		return -1
	}
	c.mu.Lock()
	c.ops = append(c.ops, op)
	if op.Op != wire.TraceInit && op.Op != wire.TraceLet {
		c.appState++
	}
	s := c.appState
	n := len(c.ops)
	c.mu.Unlock()
	if c.kick != nil && n >= c.kickAt {
		c.kick()
	}
	return s
}

// take removes and returns the buffered ops.
func (c *capture) take() []wire.TraceOp {
	c.mu.Lock()
	ops := c.ops
	c.ops = nil
	c.mu.Unlock()
	return ops
}

// clock is the node-level Fidge–Mattern vector clock (one component
// per node, counting that node's protocol events), shared by the app
// and controller goroutines and piggybacked on every remote message.
type clock struct {
	mu sync.Mutex
	vc vclock.VC
}

func newClock(n, id int) *clock {
	c := &clock{vc: make(vclock.VC, n)}
	return c
}

// tick advances the local component and returns a snapshot.
func (c *clock) tick(id int) vclock.VC {
	c.mu.Lock()
	c.vc[id]++
	s := c.vc.Clone()
	c.mu.Unlock()
	return s
}

// snapshot returns a copy of the current clock without advancing it.
func (c *clock) snapshot() vclock.VC {
	c.mu.Lock()
	s := c.vc.Clone()
	c.mu.Unlock()
	return s
}

// observe merges a received clock, then ticks, returning a snapshot.
func (c *clock) observe(id int, other []int32) vclock.VC {
	c.mu.Lock()
	if len(other) == len(c.vc) {
		c.vc.Merge(vclock.VC(other))
	}
	c.vc[id]++
	s := c.vc.Clone()
	c.mu.Unlock()
	return s
}

// assemble replays captured trace ops through a deposet.Builder. Ops
// arrive bucketed by logical process in per-process order; sends and
// receives are matched by TraceID. Processing is a topological sweep:
// a receive waits until the matching send has been replayed, which
// must eventually happen in any causally consistent capture — if the
// sweep wedges, the capture is corrupt and the error says where.
// Sends with no matching receive become in-flight messages, exactly
// like a sim trace cut at teardown.
func assemble(n int, opsByProc [][]wire.TraceOp) (*deposet.Deposet, error) {
	if len(opsByProc) != 2*n {
		return nil, fmt.Errorf("node: assemble: %d op streams for %d processes", len(opsByProc), 2*n)
	}
	b := deposet.NewBuilder(2 * n)
	handles := make(map[uint64]deposet.MsgHandle)
	cursor := make([]int, 2*n)
	for {
		progress := false
		for p := 0; p < 2*n; p++ {
		ops:
			for cursor[p] < len(opsByProc[p]) {
				op := opsByProc[p][cursor[p]]
				switch op.Op {
				case wire.TraceInit:
					b.Let(p, op.Name, int(op.Value))
				case wire.TraceStep:
					b.Step(p)
				case wire.TraceLet:
					b.Let(p, op.Name, int(op.Value))
				case wire.TraceSet:
					b.Step(p)
					b.Let(p, op.Name, int(op.Value))
				case wire.TraceSend:
					_, h := b.Send(p)
					if _, dup := handles[op.MsgID]; dup {
						return nil, fmt.Errorf("node: assemble: duplicate trace id %#x", op.MsgID)
					}
					handles[op.MsgID] = h
				case wire.TraceRecv:
					h, ok := handles[op.MsgID]
					if !ok {
						break ops // matching send not replayed yet
					}
					b.Recv(p, h)
				default:
					return nil, fmt.Errorf("node: assemble: unknown trace op %d", op.Op)
				}
				cursor[p]++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for p := 0; p < 2*n; p++ {
		if cursor[p] < len(opsByProc[p]) {
			op := opsByProc[p][cursor[p]]
			return nil, fmt.Errorf("node: assemble: process %d wedged at op %d (recv of unknown message %#x)",
				p, cursor[p], op.MsgID)
		}
	}
	return b.Build()
}
