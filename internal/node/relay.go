package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// Relay is the middle tier of a hierarchical ingest tree: it terminates
// the resumable capture streams of a subset of nodes exactly the way
// the root coordinator would — sequence-checked ingest, session resume
// with per-child cumulative acks, handshake replay of cached terminal
// decisions — but instead of staging capture it re-batches the raw
// frame bodies into sequence-renumbered wire.RelayBatch frames and
// forwards them to the root over one session. The root therefore
// handles O(relays) connections instead of O(n), while resume and
// epoch semantics compose across both hops:
//
//   - child → relay: the child's coordClient session machinery is
//     untouched; the relay answers Resume with the child's cumulative
//     inner sequence and replays cached Restart/Detection/Shutdown/
//     Commit decisions, so a relay looks exactly like a coordinator.
//   - relay → root: the relay's uplink IS a coordClient (the same
//     session log, redial/backoff and retransmit code), with a
//     RelayHello handshake and an intercept that fans every decision
//     frame out to the children.
//
// A relay crash heals like a coordinator-stream sever: children redial
// with backoff and offer Resume; the relaunched relay has no per-child
// state, acks Cum=0, and the children replay their entire session logs
// — the root's per-origin inner-sequence dedup absorbs the overlap.
//
// The relay also performs the staging merges ingest does today, before
// bytes ever reach the root: metrics-snapshot folding (only the newest
// pending snapshot per origin survives), epoch discards (pending
// capture frames of an origin are dropped when its EpochMark voids
// them) and batch coalescing under a byte cap.
type Relay struct {
	cfg  RelayConfig
	opt  Timeouts
	ln   net.Listener
	cc   *coordClient
	logf func(string, ...any)

	// Cached upstream decisions, replayed to (re)connecting children —
	// the relay-local mirror of the root's handshake replay state.
	mu        sync.Mutex
	epoch     uint32
	committed bool
	shutdown  bool
	detection *wire.Detection
	children  map[int]*relayChild
	contacted bool // a RelayHello reached the root at least once
	closing   bool
	// conns is every accepted downstream connection, owner or not —
	// Close must reach conns mid-handshake and superseded readers too,
	// or a child that registered after Close's snapshot keeps its
	// stream alive and wg.Wait never returns.
	conns map[net.Conn]struct{}

	pendMu    sync.Mutex
	pending   []relayPending
	pendBytes int
	// urgent is the control-kind coalescing timer; urgentArmed (under
	// pendMu) keeps one window open at a time.
	urgent      *time.Timer
	urgentArmed bool

	kick     chan struct{}
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup
}

// RelayConfig configures one relay.
type RelayConfig struct {
	// Index identifies this relay (0..Relays-1); Relays is the tree's
	// fan-in width, N the cluster size.
	Index  int
	Relays int
	N      int
	// Upstream is the root coordinator's address.
	Upstream string
	// Addr/Listener is the downstream side the children dial. When
	// Listener is non-nil it is used directly (Addr ignored).
	Addr     string
	Listener net.Listener
	// Batching paces the upstream flush (withDefaults applied).
	Batching Batching
	Timeouts Timeouts
	// Reg receives the relay's wire meters (uplink stream).
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
}

// relayChild is the relay's per-node-id stream state: the downstream
// mirror of the root's nodeSession, minus the staging.
type relayChild struct {
	id      int
	mu      sync.Mutex
	owner   *coordConn
	lastSeq uint64
}

// relayPending is one frame queued for the next upstream flush. A nil
// body is a tombstone — the slot was voided by snapshot folding or an
// epoch discard and is skipped at flush.
type relayPending struct {
	origin int32
	kind   byte
	body   []byte
}

// maxRelayBatchBytes caps one RelayBatch's payload, comfortably under
// wire.MaxFrame with envelope overhead to spare.
const maxRelayBatchBytes = 512 << 10

// relayControlFlush is the urgent-coalescing window for completion-
// latency kinds (Hello, Done, bye, EpochMark): long enough that a wave
// of them from many children — every child sends Done within the same
// workload tail — folds into a few upstream frames instead of one
// frame each, short enough to be invisible next to the dial timeout
// and the capture interval it undercuts.
const relayControlFlush = time.Millisecond

// relayMaxPendFrames is the early-kick threshold on queued child
// frames. A relay item is a whole child frame (itself a batch of up to
// Batching.MaxItems capture items), so the node-level item cap would
// kick mid-interval on every busy subtree and shred the upstream
// coalescing; pendBytes against maxRelayBatchBytes is the real memory
// guard, this only backstops pathological tiny-frame floods.
const relayMaxPendFrames = 1024

// StartRelay establishes the upstream session (blocking until the root
// answers or the coordinator deadline passes), then begins accepting
// children. The synchronous uplink handshake is what guarantees every
// child handshake can be answered with the cluster's current epoch.
func StartRelay(cfg RelayConfig) (*Relay, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.N < 2 || cfg.Relays < 1 || cfg.Index < 0 || cfg.Index >= cfg.Relays {
		return nil, fmt.Errorf("node: relay %d/%d for n=%d: bad shape", cfg.Index, cfg.Relays, cfg.N)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("node: relay listen %s: %w", cfg.Addr, err)
		}
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Relay{
		cfg:      cfg,
		opt:      cfg.Timeouts.withDefaults(),
		ln:       ln,
		logf:     logf,
		children: map[int]*relayChild{},
		conns:    map[net.Conn]struct{}{},
		urgent:   time.NewTimer(time.Hour),
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	if !r.urgent.Stop() {
		<-r.urgent.C
	}
	// The uplink flushes at twice the children's cadence: a relay
	// aggregates an entire subtree, so one extra interval of staleness
	// buys roughly double the child frames per upstream RelayBatch.
	batch := cfg.Batching.withDefaults()
	batch.Interval *= 2
	wm := newWireMeters(reg, "uplink", cfg.MetricLabels)
	cc := &coordClient{
		id: -(cfg.Index + 1), n: cfg.N, addr: cfg.Upstream,
		opt: r.opt, batch: batch, wm: wm, logf: logf,
		shutdownEv: make(chan uint32, 1),
		restartCh:  make(chan uint32, 1),
		commitCh:   make(chan struct{}),
		quit:       make(chan struct{}),
		sessDone:   make(chan struct{}),
		kick:       make(chan struct{}, 1),
	}
	cc.mkResume = r.mkResume
	cc.onMsg = r.onUpstream
	cc.onResumeAck = r.onResumeAck
	r.cc = cc

	// First contact runs the same resume path every later redial runs:
	// RelayHello out, ResumeAck in, retransmit past Cum (nothing, yet).
	conn, br, err := cc.resume()
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("node: relay %d: root %s: %w", cfg.Index, cfg.Upstream, err)
	}
	go cc.session(conn, br)

	r.wg.Add(2)
	go r.acceptLoop()
	go r.flusher()
	return r, nil
}

// Addr returns the relay's downstream listen address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close tears the relay down abruptly: listener, children, uplink. A
// chaos kill uses exactly this — no drain, no goodbye — and the tree
// heals through the two resume hops.
func (r *Relay) Close() {
	r.quitOnce.Do(func() { close(r.quit) })
	r.ln.Close()
	r.mu.Lock()
	r.closing = true
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	r.cc.close()
	r.wg.Wait()
}

// mkResume builds the uplink handshake. Resume=false (a fresh relay
// process) tells the root to reset the outer session numbering while
// keeping every per-origin inner session — the difference between a
// relay relaunch (children keep their capture logs) and a node
// relaunch (its log died with it).
func (r *Relay) mkResume(epoch uint32) wire.Msg {
	r.mu.Lock()
	resumed := r.contacted
	r.mu.Unlock()
	return wire.RelayHello{
		Relay: int32(r.cfg.Index), Relays: int32(r.cfg.Relays), N: int32(r.cfg.N),
		Resume: resumed, Epoch: epoch,
	}
}

// onResumeAck observes every uplink handshake: it initializes (or
// refreshes) the cached cluster epoch, and on an epoch the children
// may have missed — a Restart decided while the uplink was down —
// fans the catch-up out downstream.
func (r *Relay) onResumeAck(ack wire.ResumeAck) {
	r.mu.Lock()
	r.contacted = true
	bumped := ack.Epoch > r.epoch
	if bumped {
		r.epoch = ack.Epoch
	}
	conns := r.childConnsLocked()
	r.mu.Unlock()
	r.cc.mu.Lock()
	r.cc.epoch = ack.Epoch
	r.cc.mu.Unlock()
	if bumped {
		r.fanOut(conns, wire.Restart{Epoch: ack.Epoch}, "restart catch-up")
	}
}

// onUpstream intercepts every frame the root sends: cache the decision
// for handshake replay, fan it out to the children. Consumes
// everything — the relay has no node-side epoch loop to feed.
func (r *Relay) onUpstream(m wire.Msg) bool {
	r.mu.Lock()
	switch v := m.(type) {
	case wire.Shutdown:
		r.shutdown = true
	case wire.Commit:
		r.committed = true
	case wire.Restart:
		if v.Epoch > r.epoch {
			r.epoch = v.Epoch
		}
		r.shutdown = false
	case wire.ReExec:
		if v.Epoch > r.epoch {
			r.epoch = v.Epoch
		}
		r.shutdown = false
	case wire.Detection:
		det := v
		r.detection = &det
	case wire.ResumeAck:
		// Handled in resume(); a stray one carries nothing to forward.
		r.mu.Unlock()
		return true
	default:
		r.mu.Unlock()
		r.logf("relay %d: root sent unexpected %T", r.cfg.Index, m)
		return true
	}
	conns := r.childConnsLocked()
	r.mu.Unlock()
	r.fanOut(conns, m, fmt.Sprintf("%T", m))
	return true
}

// childConnsLocked snapshots the downstream connections. Caller holds
// r.mu.
func (r *Relay) childConnsLocked() map[int]*coordConn {
	conns := make(map[int]*coordConn, len(r.children))
	for id, ch := range r.children {
		ch.mu.Lock()
		if ch.owner != nil {
			conns[id] = ch.owner
		}
		ch.mu.Unlock()
	}
	return conns
}

// fanOut writes m to every child connection, closing any whose write
// fails — the child's session resume replays the cached decision state
// at the handshake, the same recovery the root's broadcast relies on.
func (r *Relay) fanOut(conns map[int]*coordConn, m wire.Msg, what string) {
	for id, conn := range conns {
		if err := conn.writeFrame(r.opt, m); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				r.logf("relay %d: node %d: %s write: %v", r.cfg.Index, id, what, err)
			}
			conn.Close()
		}
	}
}

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
			default:
				r.logf("relay %d: accept: %v", r.cfg.Index, err)
			}
			return
		}
		r.mu.Lock()
		if r.closing {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
			}()
			r.handleChild(conn)
		}()
	}
}

// child returns (creating if needed) the state for node id.
func (r *Relay) child(id int) *relayChild {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.children[id]
	if ch == nil {
		ch = &relayChild{id: id}
		r.children[id] = ch
	}
	return ch
}

// handleChild serves one child connection: the same handshake contract
// handleNode implements at the root — Hello opens (and is forwarded so
// the root owns the restart decision), Resume continues with a
// cumulative ack and cached-decision replay — then sequence-checked
// pass-through of raw frame bodies into the forward queue.
func (r *Relay) handleChild(rawConn net.Conn) {
	conn := &coordConn{Conn: rawConn}
	defer conn.Close()
	br := bufReader(rawConn)
	rawConn.SetReadDeadline(time.Now().Add(r.opt.DialTimeout))
	body, err := wire.ReadRawBody(br)
	if err != nil {
		r.logf("relay %d: handshake: %v", r.cfg.Index, err)
		return
	}
	seq, first, err := wire.DecodeBody(body)
	if err != nil {
		r.logf("relay %d: handshake: %v", r.cfg.Index, err)
		return
	}

	var ch *relayChild
	switch h := first.(type) {
	case wire.Hello:
		if int(h.N) != r.cfg.N || h.From < 0 || int(h.From) >= r.cfg.N {
			r.logf("relay %d: bad hello %#v", r.cfg.Index, first)
			return
		}
		r.mu.Lock()
		committed, epoch, det := r.committed, r.epoch, r.detection
		r.mu.Unlock()
		if committed {
			// The run is sealed; a relaunched child gets the same
			// Shutdown+Commit exit ramp the root would give it, and the
			// Hello is not forwarded — there is no run left to restart.
			conn.writeFrame(r.opt, wire.Shutdown{Epoch: epoch})
			conn.writeFrame(r.opt, wire.Commit{})
			r.logf("relay %d: node %d rejoined after commit; refused", r.cfg.Index, int(h.From))
			return
		}
		ch = r.child(int(h.From))
		ch.mu.Lock()
		ch.owner = conn
		ch.lastSeq = seq
		ch.mu.Unlock()
		// The root decides fresh-vs-rejoin (its per-origin attached bit
		// survives relay crashes); the raw Hello is forwarded with the
		// write-through frames so the decision is prompt.
		r.stage(int32(h.From), wire.KindHello, body)
		// Relay-local catch-up replaces the root's targeted writes: a
		// child at an older epoch ignores nothing it shouldn't (nodes
		// discard Restart at or below their own epoch), and a fresh
		// late joiner starts the in-flight epoch instead of epoch 0.
		if det != nil {
			conn.writeFrame(r.opt, *det)
		}
		if epoch > 0 {
			conn.writeFrame(r.opt, wire.Restart{Epoch: epoch})
		}
	case wire.Resume:
		if int(h.N) != r.cfg.N || h.From < 0 || int(h.From) >= r.cfg.N {
			r.logf("relay %d: bad resume %#v", r.cfg.Index, first)
			return
		}
		ch = r.child(int(h.From))
		ch.mu.Lock()
		ch.owner = conn
		cum := ch.lastSeq
		ch.mu.Unlock()
		r.mu.Lock()
		epoch, det, shut, committed := r.epoch, r.detection, r.shutdown, r.committed
		r.mu.Unlock()
		err := conn.writeFrame(r.opt, wire.ResumeAck{Cum: cum, Epoch: epoch})
		if err == nil && det != nil {
			err = conn.writeFrame(r.opt, *det)
		}
		if err == nil && shut {
			err = conn.writeFrame(r.opt, wire.Shutdown{Epoch: epoch})
		}
		if err == nil && committed {
			err = conn.writeFrame(r.opt, wire.Commit{})
		}
		if err != nil {
			r.logf("relay %d: node %d: resume: %v", r.cfg.Index, int(h.From), err)
			return
		}
	default:
		r.logf("relay %d: first frame is %T, want Hello or Resume", r.cfg.Index, first)
		return
	}

	for {
		rawConn.SetReadDeadline(time.Now().Add(30 * time.Second))
		body, err := wire.ReadRawBody(br)
		if err != nil {
			select {
			case <-r.quit:
			default:
				if !errors.Is(err, net.ErrClosed) {
					r.logf("relay %d: node %d stream: %v", r.cfg.Index, ch.id, err)
				}
			}
			return
		}
		kind, seq, err := wire.PeekBody(body)
		if err != nil {
			r.logf("relay %d: node %d: %v", r.cfg.Index, ch.id, err)
			return
		}
		ch.mu.Lock()
		if ch.owner != conn {
			// Superseded mid-read, exactly as at the root: a newer
			// connection owns the stream, and this one's buffered frames
			// must not interleave with it.
			ch.mu.Unlock()
			return
		}
		switch {
		case seq <= ch.lastSeq:
			ch.mu.Unlock()
			continue
		case seq == ch.lastSeq+1:
			ch.lastSeq = seq
			ch.mu.Unlock()
		default:
			ch.mu.Unlock()
			r.logf("relay %d: node %d: sequence gap (%d after %d); dropping connection for resume",
				r.cfg.Index, ch.id, seq, ch.lastSeq)
			return
		}
		r.stage(int32(ch.id), kind, body)
	}
}

// stage queues one raw child frame body for the upstream flush,
// applying the relay-side merges:
//
//   - MetricsSnapshot folding: cumulative set semantics mean only the
//     newest pending snapshot per origin matters; the older one is
//     tombstoned (never replaced in place — the new frame's higher
//     inner seq must stay behind it in forward order).
//   - Epoch discard: an EpochMark voids the origin's pending capture
//     frames, so they are tombstoned instead of forwarded — the root
//     would discard them on the mark anyway. Control frames survive.
//
// Completion-latency frames (Done, bye, EpochMark) flush within
// relayControlFlush rather than riding the full batch cadence; capture
// volume rides the interval. Hello flushes synchronously — see below.
func (r *Relay) stage(origin int32, kind byte, body []byte) {
	writeThrough := false
	switch kind {
	case wire.KindHello, wire.KindDone, wire.KindShutdown, wire.KindEpochMark:
		writeThrough = true
	}
	r.pendMu.Lock()
	switch kind {
	case wire.KindMetricsSnapshot:
		for i := range r.pending {
			if r.pending[i].origin == origin && r.pending[i].kind == wire.KindMetricsSnapshot && r.pending[i].body != nil {
				r.pendBytes -= len(r.pending[i].body)
				r.pending[i].body = nil
			}
		}
	case wire.KindEpochMark:
		for i := range r.pending {
			if r.pending[i].origin != origin || r.pending[i].body == nil {
				continue
			}
			switch r.pending[i].kind {
			case wire.KindTrace, wire.KindTraceOpBatch, wire.KindJournalEvent,
				wire.KindJournalBatch, wire.KindCandidate, wire.KindCandidateBatch,
				wire.KindMetricsSnapshot:
				r.pendBytes -= len(r.pending[i].body)
				r.pending[i].body = nil
			}
		}
	}
	r.pending = append(r.pending, relayPending{origin: origin, kind: kind, body: body})
	r.pendBytes += len(body)
	full := r.pendBytes >= maxRelayBatchBytes || len(r.pending) >= relayMaxPendFrames
	if writeThrough && kind != wire.KindHello && !full && !r.urgentArmed {
		// Don't flush synchronously: open a short window so the control
		// wave — every child's Done lands in the same workload tail —
		// coalesces before the uplink write.
		r.urgentArmed = true
		r.urgent.Reset(relayControlFlush)
	}
	r.pendMu.Unlock()
	if kind == wire.KindHello {
		// Hello is the one frame that lives outside the child's session
		// log (it is the dial handshake, so a session resume never
		// replays it): every instant it sits staged here is a window
		// where this relay's death silently unregisters the child — or
		// swallows a crashed node's rejoin, wedging its WaitRestart hold.
		// Push it upstream now; Hellos are far too rare to batch.
		r.flush()
		return
	}
	if full {
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
}

// flusher paces the upstream flush on the batching interval, the same
// size-or-interval policy the node-side capture batcher uses.
func (r *Relay) flusher() {
	defer r.wg.Done()
	t := time.NewTicker(r.cc.batch.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-r.kick:
		case <-r.urgent.C:
		case <-t.C:
		}
		r.flush()
	}
}

// flush drains the pending queue into RelayBatch frames (skipping
// tombstones) under the byte cap and sends them through the uplink's
// session log — renumbered, resumable, metered.
func (r *Relay) flush() {
	r.pendMu.Lock()
	pend := r.pending
	r.pending = nil
	r.pendBytes = 0
	if r.urgentArmed {
		// Any flush satisfies an open control window; stop the timer so
		// a stale fire doesn't wake the flusher for nothing (a drained
		// timer channel is left as-is — the extra empty flush is free).
		r.urgentArmed = false
		r.urgent.Stop()
	}
	r.pendMu.Unlock()
	if len(pend) == 0 {
		return
	}
	var frames []wire.RelayFrame
	bytes := 0
	send := func() {
		if len(frames) > 0 {
			r.cc.sendItems(wire.RelayBatch{Frames: frames}, len(frames))
			frames, bytes = nil, 0
		}
	}
	for _, p := range pend {
		if p.body == nil {
			continue
		}
		frames = append(frames, wire.RelayFrame{Origin: p.origin, Body: p.body})
		bytes += len(p.body)
		if bytes >= maxRelayBatchBytes {
			send()
		}
	}
	send()
}
