package node

import (
	"fmt"
	"net"
	"sync"
	"time"

	"predctl/internal/obs"
)

// ClusterConfig parameterizes an in-process cluster run: n node daemons
// plus a coordinator, all over localhost TCP. In-process is the test
// and demo harness; the daemons themselves are oblivious to it — pctl
// node runs the identical Config against remote addresses.
type ClusterConfig struct {
	N         int
	Rounds    int
	Think     time.Duration
	CS        time.Duration
	Broadcast bool
	Scapegoat int
	Seed      int64
	Faults    Faults
	Timeouts  Timeouts
	// Batching is every node's capture-stream flush policy.
	Batching Batching
	// Journal receives the coordinator's merged cluster journal (nodes'
	// control events and candidates). May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
	// WaitTimeout bounds the whole run; 0 means a generous default.
	WaitTimeout time.Duration
}

// RunCluster executes the anti-token (n−1)-mutex workload on a cluster
// of TCP node daemons and returns the coordinator's view: the captured
// deposet trace, per-node tallies, and candidate count.
func RunCluster(cfg ClusterConfig) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: cluster needs n ≥ 2, got %d", cfg.N)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 2 * time.Minute
	}

	// Bind every listener up front so the address list is complete
	// before any node dials a peer.
	listeners := make([]net.Listener, cfg.N)
	addrs := make([]string, cfg.N)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("node: cluster listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	coord, err := NewCoordinator(CoordConfig{
		N: cfg.N, Addr: "127.0.0.1:0",
		Journal: cfg.Journal, Reg: cfg.Reg, MetricLabels: cfg.MetricLabels,
		Timeouts: cfg.Timeouts, Logf: cfg.Logf,
	})
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return nil, err
	}
	defer coord.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.N)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Run(Config{
				ID: i, N: cfg.N, Addrs: addrs, Coord: coord.Addr(),
				Scapegoat: cfg.Scapegoat, Broadcast: cfg.Broadcast,
				Rounds: cfg.Rounds, Think: cfg.Think, CS: cfg.CS,
				Seed: cfg.Seed, Faults: cfg.Faults, Timeouts: cfg.Timeouts,
				Batching: cfg.Batching, Listener: listeners[i],
				Reg: cfg.Reg, MetricLabels: cfg.MetricLabels,
				Logf: cfg.Logf, Start: start,
			})
		}(i)
	}
	res, werr := coord.Wait(cfg.WaitTimeout)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("node %d: %w", i, e)
		}
	}
	return res, werr
}
