package node

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"predctl/internal/obs"
)

// Crash schedules one in-process node kill: at At (relative to the
// shared run start) node Node's Run aborts with ErrCrashed — no flush,
// no bye, connections dropped — and the harness relaunches it after
// Down (0 = immediately). The relaunch rebinds the node's listener,
// redials the coordinator with a fresh Hello, and the coordinator
// answers with a controlled re-execution restart of the whole cluster.
type Crash struct {
	At   time.Duration
	Node int
	Down time.Duration // how long the node stays dead before relaunch
}

// ClusterConfig parameterizes an in-process cluster run: n node daemons
// plus a coordinator, all over localhost TCP. In-process is the test
// and demo harness; the daemons themselves are oblivious to it — pctl
// node runs the identical Config against remote addresses.
type ClusterConfig struct {
	N         int
	Rounds    int
	Think     time.Duration
	CS        time.Duration
	Broadcast bool
	Scapegoat int
	Seed      int64
	Faults    Faults
	Timeouts  Timeouts
	// Batching is every node's capture-stream flush policy.
	Batching Batching
	// Journal receives the coordinator's merged cluster journal (nodes'
	// control events and candidates). May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
	// WaitTimeout bounds the whole run; 0 means a generous default.
	WaitTimeout time.Duration
	// Crashes is the node kill/relaunch schedule (chaos runs). Each
	// entry crashes a node mid-run; recovery is the coordinator-ordered
	// controlled re-execution, so the run still completes with a
	// fault-free-equivalent trace.
	Crashes []Crash
	// HTTPAddr (or HTTPListener) opts into the coordinator's live
	// introspection server — /metrics, /statusz, /healthz, pprof —
	// served for the whole run. Harnesses that must know the port
	// before the run starts bind HTTPListener themselves.
	HTTPAddr     string
	HTTPListener net.Listener
	// NodeHTTP gives every node its own ephemeral introspection server
	// on 127.0.0.1 (ports are logged via Logf).
	NodeHTTP bool
	// Live opts the coordinator into online possibly(¬B) detection
	// while the run streams (see LiveConfig).
	Live LiveConfig
	// Rogues lists node ids that run with Config.Rogue set: they enter
	// critical sections without permission until a Detection/ReExec
	// broadcast puts them back under control — the planted violation
	// live detection demos catch.
	Rogues []int
}

// RunCluster executes the anti-token (n−1)-mutex workload on a cluster
// of TCP node daemons and returns the coordinator's view: the captured
// deposet trace, per-node tallies, and candidate count.
func RunCluster(cfg ClusterConfig) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: cluster needs n ≥ 2, got %d", cfg.N)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 2 * time.Minute
	}

	// Bind every listener up front so the address list is complete
	// before any node dials a peer.
	listeners := make([]net.Listener, cfg.N)
	addrs := make([]string, cfg.N)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("node: cluster listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	start := time.Now()
	coord, err := NewCoordinator(CoordConfig{
		N: cfg.N, Addr: "127.0.0.1:0",
		Journal: cfg.Journal, Reg: cfg.Reg, MetricLabels: cfg.MetricLabels,
		Timeouts: cfg.Timeouts, Logf: cfg.Logf,
		HTTPAddr: cfg.HTTPAddr, HTTPListener: cfg.HTTPListener,
		Start: start, Live: cfg.Live,
	})
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return nil, err
	}
	defer coord.Close()

	// Scheduled partitions are known a priori; annotate their windows on
	// the merged timeline up front so the cluster trace shows them even
	// if the run ends inside one.
	for _, p := range cfg.Faults.Partitions {
		a, b := int64(-1), int64(-1)
		if len(p.A) > 0 {
			a = int64(p.A[0])
		}
		if len(p.B) > 0 {
			b = int64(p.B[0])
		}
		coord.AnnotateAt(p.Start.Nanoseconds(), obs.EvPartitionOpen, a, b)
		coord.AnnotateAt((p.Start + p.Dur).Nanoseconds(), obs.EvPartitionHeal, a, b)
	}

	// Crash plumbing: one buffered signal channel per node (so a kill
	// never blocks the scheduler) and a stop flag that quiets the
	// relaunch loops once the coordinator has its result.
	crashCh := make([]chan struct{}, cfg.N)
	for _, cr := range cfg.Crashes {
		if cr.Node < 0 || cr.Node >= cfg.N {
			return nil, fmt.Errorf("node: crash schedule targets node %d of %d", cr.Node, cfg.N)
		}
	}
	for _, r := range cfg.Rogues {
		if r < 0 || r >= cfg.N {
			return nil, fmt.Errorf("node: rogue list targets node %d of %d", r, cfg.N)
		}
	}
	for i := range crashCh {
		crashCh[i] = make(chan struct{}, len(cfg.Crashes))
	}
	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	for _, cr := range cfg.Crashes {
		schedWG.Add(1)
		go func(cr Crash) {
			defer schedWG.Done()
			select {
			case <-time.After(time.Until(start.Add(cr.At))):
				coord.Annotate(obs.EvChaosCrash, int64(cr.Node), 0)
				crashCh[cr.Node] <- struct{}{}
			case <-stop:
			}
		}(cr)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.N)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodeCfg := Config{
				ID: i, N: cfg.N, Addrs: addrs, Coord: coord.Addr(),
				Scapegoat: cfg.Scapegoat, Broadcast: cfg.Broadcast,
				Rounds: cfg.Rounds, Think: cfg.Think, CS: cfg.CS,
				Seed: cfg.Seed, Faults: cfg.Faults, Timeouts: cfg.Timeouts,
				Batching: cfg.Batching, Listener: listeners[i],
				// Each node writes through a node-labelled child registry:
				// its snapshots carry per-node series while updates tee to
				// the shared aggregates callers already read.
				Reg:          cfg.Reg.Child(obs.L("node", strconv.Itoa(i))),
				MetricLabels: cfg.MetricLabels,
				Logf:         cfg.Logf, Start: start, Crash: crashCh[i],
			}
			for _, r := range cfg.Rogues {
				if r == i {
					nodeCfg.Rogue = true
				}
			}
			if cfg.NodeHTTP {
				nodeCfg.HTTPAddr = "127.0.0.1:0"
			}
			down := crashDowntime(cfg.Crashes, i)
			deaths := 0
			for {
				_, err := Run(nodeCfg)
				if !errors.Is(err, ErrCrashed) {
					select {
					case <-stop:
						// The coordinator already has its result; a node
						// that lost it during teardown is not a run error.
						err = nil
					default:
					}
					errs[i] = err
					return
				}
				// Relaunch: the dead incarnation's listener went down with
				// its transport, so rebind the same address (retrying
				// briefly around lingering sockets) and run again. The
				// fresh Hello makes the coordinator order the restart.
				if deaths < len(down) && down[deaths] > 0 {
					time.Sleep(down[deaths])
				}
				deaths++
				select {
				case <-stop:
					return
				default:
				}
				ln, lerr := relisten(addrs[i], stop)
				if lerr != nil {
					select {
					case <-stop:
					default:
						errs[i] = fmt.Errorf("relaunch listen %s: %w", addrs[i], lerr)
					}
					return
				}
				nodeCfg.Listener = ln
				// A relaunch is mid-epoch for the rest of the cluster: hold
				// execution until the coordinator's restart decision arrives
				// so the fresh incarnation never runs at a stale epoch
				// against its peers' old link state.
				nodeCfg.WaitRestart = true
			}
		}(i)
	}
	res, werr := coord.Wait(cfg.WaitTimeout)
	close(stop)
	wg.Wait()
	schedWG.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("node %d: %w", i, e)
		}
	}
	return res, werr
}

// crashDowntime extracts node i's scheduled downtimes in kill order.
func crashDowntime(crashes []Crash, node int) []time.Duration {
	var out []time.Duration
	for _, cr := range crashes {
		if cr.Node == node {
			out = append(out, cr.Down)
		}
	}
	return out
}

// relisten rebinds a relaunched node's listen address, retrying while
// the dead incarnation's socket drains out of the kernel.
func relisten(addr string, stop <-chan struct{}) (net.Listener, error) {
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		select {
		case <-stop:
			return nil, net.ErrClosed
		default:
		}
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}
