package node

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"predctl/internal/obs"
	"predctl/internal/store"
)

// Crash schedules one in-process node kill: at At (relative to the
// shared run start) node Node's Run aborts with ErrCrashed — no flush,
// no bye, connections dropped — and the harness relaunches it after
// Down (0 = immediately). The relaunch rebinds the node's listener,
// redials the coordinator with a fresh Hello, and the coordinator
// answers with a controlled re-execution restart of the whole cluster.
type Crash struct {
	At   time.Duration
	Node int
	Down time.Duration // how long the node stays dead before relaunch
}

// ClusterConfig parameterizes an in-process cluster run: n node daemons
// plus a coordinator, all over localhost TCP. In-process is the test
// and demo harness; the daemons themselves are oblivious to it — pctl
// node runs the identical Config against remote addresses.
type ClusterConfig struct {
	N         int
	Rounds    int
	Think     time.Duration
	CS        time.Duration
	Broadcast bool
	Scapegoat int
	Seed      int64
	Faults    Faults
	Timeouts  Timeouts
	// Batching is every node's capture-stream flush policy.
	Batching Batching
	// Journal receives the coordinator's merged cluster journal (nodes'
	// control events and candidates). May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
	// WaitTimeout bounds the whole run; 0 means a generous default.
	WaitTimeout time.Duration
	// Crashes is the node kill/relaunch schedule (chaos runs). Each
	// entry crashes a node mid-run; recovery is the coordinator-ordered
	// controlled re-execution, so the run still completes with a
	// fault-free-equivalent trace.
	Crashes []Crash
	// HTTPAddr (or HTTPListener) opts into the coordinator's live
	// introspection server — /metrics, /statusz, /healthz, pprof —
	// served for the whole run. Harnesses that must know the port
	// before the run starts bind HTTPListener themselves.
	HTTPAddr     string
	HTTPListener net.Listener
	// NodeHTTP gives every node its own ephemeral introspection server
	// on 127.0.0.1 (ports are logged via Logf).
	NodeHTTP bool
	// Live opts the coordinator into online possibly(¬B) detection
	// while the run streams (see LiveConfig).
	Live LiveConfig
	// Rogues lists node ids that run with Config.Rogue set: they enter
	// critical sections without permission until a Detection/ReExec
	// broadcast puts them back under control — the planted violation
	// live detection demos catch.
	Rogues []int
	// Relays > 0 shards coordinator ingest into a 2-level aggregation
	// tree: that many relay processes each terminate the capture
	// streams of the nodes assigned to them (node i → relay i mod
	// Relays) and forward re-batched relay frames upstream, so the root
	// handles O(Relays) connections instead of O(N). Nodes are
	// oblivious — their coordinator address is simply their relay's.
	Relays int
	// RelayCrashes kills relays mid-run (Crash.Node is the relay
	// index): the relay's listener and uplink drop abruptly, children
	// session-resume against the relaunched relay, and the root's
	// per-origin dedup absorbs the replayed overlap — a relay kill
	// heals like a coordinator-stream sever, with no epoch restart.
	RelayCrashes []Crash
	// StoreDir, when non-empty, spills the coordinator's staged capture
	// to a segmented on-disk trace store in that directory (created if
	// missing) and seals it into a capture bundle at commit.
	StoreDir string
}

// clusterHandshakeTimeout is the dial/handshake-write deadline for an
// n-node cluster: the 2s base plus 10ms of slack per node, capped at
// 10s — enough that a dial-storm scheduling stall never looks like a
// dead peer, small enough that a genuinely dead one still fails fast.
func clusterHandshakeTimeout(n int) time.Duration {
	d := 2*time.Second + time.Duration(n)*10*time.Millisecond
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// clusterLaunchGap is the per-node launch pacing for big clusters: at
// n ≥ 128 the nodes start launchGap apart (capped at a total spread of
// clusterLaunchSpread) so the cold-start burst doesn't starve the
// accept loops for seconds. The workload needs every node joined
// before any round can complete, so the spread shifts the run start
// without stretching the measured steady state.
func clusterLaunchGap(n int) time.Duration {
	if n < 128 {
		return 0
	}
	const spread = 1500 * time.Millisecond
	const gap = 3 * time.Millisecond
	if time.Duration(n)*gap > spread {
		return spread / time.Duration(n)
	}
	return gap
}

// RunCluster executes the anti-token (n−1)-mutex workload on a cluster
// of TCP node daemons and returns the coordinator's view: the captured
// deposet trace, per-node tallies, and candidate count.
func RunCluster(cfg ClusterConfig) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: cluster needs n ≥ 2, got %d", cfg.N)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 2 * time.Minute
	}
	// Handshake patience scales with fan-in. A cold start dials every
	// node's coordinator stream at once; on a host with few cores the
	// accept loops and the freshly-dialed goroutines can each be
	// descheduled for whole seconds under that burst, and the flat 2s
	// handshake deadlines then abandon perfectly good connections —
	// hundreds of zero-byte redial cycles that skew the join tail and
	// stretch the run. Callers that set their own Timeouts keep them.
	if cfg.Timeouts.DialTimeout == 0 {
		cfg.Timeouts.DialTimeout = clusterHandshakeTimeout(cfg.N)
	}
	if cfg.Timeouts.WriteTimeout == 0 {
		cfg.Timeouts.WriteTimeout = clusterHandshakeTimeout(cfg.N)
	}

	// Bind every listener up front so the address list is complete
	// before any node dials a peer.
	listeners := make([]net.Listener, cfg.N)
	addrs := make([]string, cfg.N)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("node: cluster listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	start := time.Now()
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		st, err = store.Open(store.Config{
			Dir: cfg.StoreDir, Reg: cfg.Reg, MetricLabels: cfg.MetricLabels,
		})
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, err
		}
		defer st.Close() // no-op after the commit-time Seal
	}
	coord, err := NewCoordinator(CoordConfig{
		N: cfg.N, Addr: "127.0.0.1:0",
		Journal: cfg.Journal, Reg: cfg.Reg, MetricLabels: cfg.MetricLabels,
		Timeouts: cfg.Timeouts, Logf: cfg.Logf,
		HTTPAddr: cfg.HTTPAddr, HTTPListener: cfg.HTTPListener,
		Start: start, Live: cfg.Live, Store: st,
	})
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return nil, err
	}
	defer coord.Close()

	// The aggregation tree: bind every relay's downstream address, point
	// node i at relay i mod Relays, and start the relays (each blocks
	// until its uplink handshake lands, so by the time nodes dial, every
	// relay already knows the cluster epoch).
	coordAddr := func(int) string { return coord.Addr() }
	stopRelays := make(chan struct{})
	var relayWG sync.WaitGroup
	if cfg.Relays > 0 {
		relayAddrs := make([]string, cfg.Relays)
		relayLns := make([]net.Listener, cfg.Relays)
		for i := range relayLns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("node: relay listen: %w", err)
			}
			relayLns[i] = ln
			relayAddrs[i] = ln.Addr().String()
		}
		coordAddr = func(i int) string { return relayAddrs[i%cfg.Relays] }
		relayCfg := func(idx int, ln net.Listener) RelayConfig {
			return RelayConfig{
				Index: idx, Relays: cfg.Relays, N: cfg.N,
				Upstream: coord.Addr(), Listener: ln,
				Batching: cfg.Batching, Timeouts: cfg.Timeouts,
				Reg:          cfg.Reg.Child(obs.L("relay", strconv.Itoa(idx))),
				MetricLabels: cfg.MetricLabels,
				Logf:         cfg.Logf,
			}
		}
		for _, cr := range cfg.RelayCrashes {
			if cr.Node < 0 || cr.Node >= cfg.Relays {
				return nil, fmt.Errorf("node: relay crash schedule targets relay %d of %d", cr.Node, cfg.Relays)
			}
		}
		relays := make([]*Relay, cfg.Relays)
		for i := range relays {
			rl, err := StartRelay(relayCfg(i, relayLns[i]))
			if err != nil {
				for _, r := range relays[:i] {
					r.Close()
				}
				return nil, err
			}
			relays[i] = rl
		}
		relayCrashCh := make([]chan struct{}, cfg.Relays)
		for i := range relayCrashCh {
			relayCrashCh[i] = make(chan struct{}, len(cfg.RelayCrashes))
		}
		for _, cr := range cfg.RelayCrashes {
			relayWG.Add(1)
			go func(cr Crash) {
				defer relayWG.Done()
				select {
				case <-time.After(time.Until(start.Add(cr.At))):
					coord.Annotate(obs.EvChaosCrash, int64(-(cr.Node + 1)), 0)
					relayCrashCh[cr.Node] <- struct{}{}
				case <-stopRelays:
				}
			}(cr)
		}
		for i := range relays {
			relayWG.Add(1)
			go func(idx int) {
				defer relayWG.Done()
				rl := relays[idx]
				down := crashDowntime(cfg.RelayCrashes, idx)
				deaths := 0
				for {
					select {
					case <-stopRelays:
						rl.Close()
						return
					case <-relayCrashCh[idx]:
						// Abrupt kill: listener, children, uplink all drop.
						// The children's session machinery redials the same
						// address; the relaunched relay acks Cum=0 and the
						// root dedups the full replays.
						rl.Close()
						if deaths < len(down) && down[deaths] > 0 {
							time.Sleep(down[deaths])
						}
						deaths++
						ln, lerr := relisten(relayAddrs[idx], stopRelays)
						if lerr != nil {
							return
						}
						nrl, err := StartRelay(relayCfg(idx, ln))
						if err != nil {
							select {
							case <-stopRelays:
							default:
								if cfg.Logf != nil {
									cfg.Logf("relay %d: relaunch: %v", idx, err)
								}
							}
							ln.Close()
							return
						}
						rl = nrl
					}
				}
			}(i)
		}
	}

	// Scheduled partitions are known a priori; annotate their windows on
	// the merged timeline up front so the cluster trace shows them even
	// if the run ends inside one.
	for _, p := range cfg.Faults.Partitions {
		a, b := int64(-1), int64(-1)
		if len(p.A) > 0 {
			a = int64(p.A[0])
		}
		if len(p.B) > 0 {
			b = int64(p.B[0])
		}
		coord.AnnotateAt(p.Start.Nanoseconds(), obs.EvPartitionOpen, a, b)
		coord.AnnotateAt((p.Start + p.Dur).Nanoseconds(), obs.EvPartitionHeal, a, b)
	}

	// Crash plumbing: one buffered signal channel per node (so a kill
	// never blocks the scheduler) and a stop flag that quiets the
	// relaunch loops once the coordinator has its result.
	crashCh := make([]chan struct{}, cfg.N)
	for _, cr := range cfg.Crashes {
		if cr.Node < 0 || cr.Node >= cfg.N {
			return nil, fmt.Errorf("node: crash schedule targets node %d of %d", cr.Node, cfg.N)
		}
	}
	for _, r := range cfg.Rogues {
		if r < 0 || r >= cfg.N {
			return nil, fmt.Errorf("node: rogue list targets node %d of %d", r, cfg.N)
		}
	}
	for i := range crashCh {
		crashCh[i] = make(chan struct{}, len(cfg.Crashes))
	}
	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	for _, cr := range cfg.Crashes {
		schedWG.Add(1)
		go func(cr Crash) {
			defer schedWG.Done()
			select {
			case <-time.After(time.Until(start.Add(cr.At))):
				coord.Annotate(obs.EvChaosCrash, int64(cr.Node), 0)
				crashCh[cr.Node] <- struct{}{}
			case <-stop:
			}
		}(cr)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.N)
	launchGap := clusterLaunchGap(cfg.N)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if launchGap > 0 && i > 0 {
				select {
				case <-time.After(time.Duration(i) * launchGap):
				case <-stop:
					return
				}
			}
			nodeCfg := Config{
				ID: i, N: cfg.N, Addrs: addrs, Coord: coordAddr(i),
				Scapegoat: cfg.Scapegoat, Broadcast: cfg.Broadcast,
				Rounds: cfg.Rounds, Think: cfg.Think, CS: cfg.CS,
				Seed: cfg.Seed, Faults: cfg.Faults, Timeouts: cfg.Timeouts,
				Batching: cfg.Batching, Listener: listeners[i],
				// Each node writes through a node-labelled child registry:
				// its snapshots carry per-node series while updates tee to
				// the shared aggregates callers already read.
				Reg:          cfg.Reg.Child(obs.L("node", strconv.Itoa(i))),
				MetricLabels: cfg.MetricLabels,
				Logf:         cfg.Logf, Start: start, Crash: crashCh[i],
			}
			for _, r := range cfg.Rogues {
				if r == i {
					nodeCfg.Rogue = true
				}
			}
			if cfg.NodeHTTP {
				nodeCfg.HTTPAddr = "127.0.0.1:0"
			}
			down := crashDowntime(cfg.Crashes, i)
			deaths := 0
			for {
				_, err := Run(nodeCfg)
				if !errors.Is(err, ErrCrashed) {
					select {
					case <-stop:
						// The coordinator already has its result; a node
						// that lost it during teardown is not a run error.
						err = nil
					default:
					}
					errs[i] = err
					return
				}
				// Relaunch: the dead incarnation's listener went down with
				// its transport, so rebind the same address (retrying
				// briefly around lingering sockets) and run again. The
				// fresh Hello makes the coordinator order the restart.
				if deaths < len(down) && down[deaths] > 0 {
					time.Sleep(down[deaths])
				}
				deaths++
				select {
				case <-stop:
					return
				default:
				}
				ln, lerr := relisten(addrs[i], stop)
				if lerr != nil {
					select {
					case <-stop:
					default:
						errs[i] = fmt.Errorf("relaunch listen %s: %w", addrs[i], lerr)
					}
					return
				}
				nodeCfg.Listener = ln
				// A relaunch is mid-epoch for the rest of the cluster: hold
				// execution until the coordinator's restart decision arrives
				// so the fresh incarnation never runs at a stale epoch
				// against its peers' old link state.
				nodeCfg.WaitRestart = true
			}
		}(i)
	}
	res, werr := coord.Wait(cfg.WaitTimeout)
	close(stop)
	relaysDown := false
	if werr != nil {
		// A failed wait means no Commit is coming, and coord.Wait's
		// teardown only severs the root's own connections. Direct nodes
		// notice (their streams break, resume campaigns fail, sessDone
		// frees the park), but relayed nodes sit behind still-healthy
		// relay streams and would park forever — tear the middle tier
		// down too before waiting on them.
		close(stopRelays)
		relayWG.Wait()
		relaysDown = true
	}
	wg.Wait()
	// On success the relays outlive the nodes: a parked node whose
	// Commit died with a broken stream fetches it from its relay's
	// cached replay, which needs the relay (like the coordinator's
	// listener) still up.
	if !relaysDown {
		close(stopRelays)
		relayWG.Wait()
	}
	schedWG.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("node %d: %w", i, e)
		}
	}
	return res, werr
}

// crashDowntime extracts node i's scheduled downtimes in kill order.
func crashDowntime(crashes []Crash, node int) []time.Duration {
	var out []time.Duration
	for _, cr := range crashes {
		if cr.Node == node {
			out = append(out, cr.Down)
		}
	}
	return out
}

// relisten rebinds a relaunched node's listen address, retrying while
// the dead incarnation's socket drains out of the kernel.
func relisten(addr string, stop <-chan struct{}) (net.Listener, error) {
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		select {
		case <-stop:
			return nil, net.ErrClosed
		default:
		}
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}
