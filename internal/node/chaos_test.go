package node

// chaos_test.go pins the failure modes the chaos work added — node
// crash-restart with controlled re-execution, partition windows
// (mesh and coordinator-stream), and coordinator session resume — plus
// regression tests for the three crash-path bugs the chaos runs
// exposed: Send panicking on an invalid peer, dialCoord's hardcoded
// deadline with constant backoff, and the coordClient reader treating
// a broken stream as Shutdown.

import (
	"bufio"
	"net"
	"testing"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// chaosTimeouts extends testTimeouts with a snappy partition probe and
// a CI-generous coordinator dial deadline.
func chaosTimeouts() Timeouts {
	t := testTimeouts()
	t.IdleTimeout = 25 * time.Millisecond
	t.BackoffMax = 50 * time.Millisecond
	t.CoordDeadline = 20 * time.Second
	return t
}

// TestSendInvalidPeer is the regression test for the Send panic: an
// out-of-mesh peer id must come back as an error and a
// predctl_send_invalid_peer_total increment, and the transport must
// stay fully usable afterwards.
func TestSendInvalidPeer(t *testing.T) {
	reg := obs.NewRegistry()
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*Transport, 2)
	for i := range ts {
		cfg := TransportConfig{ID: i, N: 2, Addrs: addrs, Listener: lns[i], Timeouts: testTimeouts()}
		if i == 0 {
			cfg.Reg = reg
		}
		tr, err := NewTransport(cfg)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		ts[i] = tr
	}
	defer ts[0].Close()
	defer ts[1].Close()

	for _, to := range []int{-1, 2, 0 /* self */} {
		if err := ts[0].Send(to, wire.Ctl{From: 0, To: int32(to)}); err == nil {
			t.Fatalf("Send(%d) accepted an invalid peer", to)
		}
	}
	if got := reg.Counter("predctl_send_invalid_peer_total").Value(); got != 3 {
		t.Fatalf("predctl_send_invalid_peer_total = %d, want 3", got)
	}
	// The bad sends must not have damaged the mesh.
	if err := ts[0].Send(1, wire.Ctl{From: 0, To: 1, TraceID: 7}); err != nil {
		t.Fatalf("valid Send after invalid ones: %v", err)
	}
	got := drain(t, ts[1], 1)
	if c := got[0].Msg.(wire.Ctl); c.TraceID != 7 {
		t.Fatalf("delivered TraceID %d, want 7", c.TraceID)
	}
}

// TestDialCoordWaitsForSlowCoordinator is the regression test for the
// hardcoded DialTimeout*5 deadline: a coordinator that comes up late
// must be reached by the backoff campaign as long as it appears within
// CoordDeadline.
func TestDialCoordWaitsForSlowCoordinator(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody home until the goroutine below rebinds

	accepted := make(chan net.Conn, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	opt := chaosTimeouts().withDefaults()
	begin := time.Now()
	cc, err := dialCoord(addr, 0, 2, Batching{}, newWireMeters(nil, "coord", nil), opt, nil, t.Logf)
	if err != nil {
		t.Fatalf("dialCoord gave up on a slow coordinator: %v", err)
	}
	defer cc.close()
	if waited := time.Since(begin); waited < 50*time.Millisecond {
		t.Fatalf("dial succeeded after %v with no listener up before 100ms", waited)
	}
	conn := <-accepted
	defer conn.Close()
	_, m, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read handshake: %v", err)
	}
	h, ok := m.(wire.Hello)
	if !ok || h.From != 0 || h.N != 2 {
		t.Fatalf("handshake = %#v, want Hello{From:0, N:2}", m)
	}
}

// TestDialCoordDeadline pins the other half of the fix: the campaign
// gives up at the configured CoordDeadline, not at some hardcoded
// multiple of DialTimeout.
func TestDialCoordDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opt := chaosTimeouts()
	opt.CoordDeadline = 100 * time.Millisecond
	opt = opt.withDefaults()
	begin := time.Now()
	if _, err := dialCoord(addr, 0, 2, Batching{}, newWireMeters(nil, "coord", nil), opt, nil, t.Logf); err == nil {
		t.Fatal("dialCoord reached a dead address")
	}
	if waited := time.Since(begin); waited > 2*time.Second {
		t.Fatalf("dialCoord took %v to give up on a 100ms deadline", waited)
	}
}

// TestCoordClientResumesAfterStreamBreak is the regression test for
// the reader-treats-break-as-Shutdown bug: when the established stream
// dies the client must redial, offer Resume, retransmit everything the
// coordinator missed, and keep the session open — not signal shutdown
// and truncate the capture.
func TestCoordClientResumesAfterStreamBreak(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	opt := chaosTimeouts().withDefaults()
	cc, err := dialCoord(ln.Addr().String(), 1, 3, Batching{}, newWireMeters(nil, "coord", nil), opt, nil, t.Logf)
	if err != nil {
		t.Fatalf("dialCoord: %v", err)
	}
	defer cc.close()

	c1, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	br1 := bufio.NewReader(c1)
	if _, m, err := wire.ReadFrame(br1); err != nil {
		t.Fatalf("read Hello: %v", err)
	} else if _, ok := m.(wire.Hello); !ok {
		t.Fatalf("first frame %T, want Hello", m)
	}

	// One frame delivered on the healthy stream.
	cc.send(wire.Done{Proc: 1, Requests: 4})
	if seq, m, err := wire.ReadFrame(br1); err != nil || seq != 1 {
		t.Fatalf("frame 1: seq=%d err=%v", seq, err)
	} else if d := m.(wire.Done); d.Requests != 4 {
		t.Fatalf("frame 1 = %#v", d)
	}

	// Break the stream, then queue a frame while disconnected.
	c1.Close()
	cc.send(wire.Candidate{Proc: 1, LoIdx: 2, HiIdx: 3})

	// The client must come back with Resume{Epoch:0}.
	c2, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept resume: %v", err)
	}
	defer c2.Close()
	br2 := bufio.NewReader(c2)
	_, m, err := wire.ReadFrame(br2)
	if err != nil {
		t.Fatalf("read Resume: %v", err)
	}
	r, ok := m.(wire.Resume)
	if !ok || r.From != 1 || r.Epoch != 0 {
		t.Fatalf("resume handshake = %#v, want Resume{From:1, Epoch:0}", m)
	}
	// Claim we saw nothing: the whole session log must be replayed.
	if err := wire.WriteFrame(c2, 0, wire.ResumeAck{Cum: 0, Epoch: 0}); err != nil {
		t.Fatalf("write ResumeAck: %v", err)
	}
	wantSeqs := []uint64{1, 2}
	for _, want := range wantSeqs {
		seq, _, err := wire.ReadFrame(br2)
		if err != nil {
			t.Fatalf("replayed frame %d: %v", want, err)
		}
		if seq != want {
			t.Fatalf("replayed seq %d, want %d", seq, want)
		}
	}
	// New traffic continues the sequence on the resumed connection.
	cc.send(wire.Done{Proc: 1, Requests: 5})
	if seq, _, err := wire.ReadFrame(br2); err != nil || seq != 3 {
		t.Fatalf("post-resume frame: seq=%d err=%v", seq, err)
	}
	select {
	case <-cc.shutdownEv:
		t.Fatal("stream break was treated as Shutdown")
	case <-cc.commitCh:
		t.Fatal("stream break was treated as Commit")
	default:
	}
}

// appEvents is the deterministic trace length of one application
// process: TraceInit plus, per round, mayFalse send, grant recv,
// cs=1, cs=0 and nowTrue send.
func appEvents(rounds int) int { return 1 + 5*rounds }

// checkFullCapture asserts the run lost no capture: every app process
// carries exactly the fault-free event count and every node reports
// every round, which is only possible if the final epoch's stream
// arrived complete.
func checkFullCapture(t *testing.T, res *Result, n, rounds int) {
	t.Helper()
	if res.Deposet.NumProcs() != 2*n {
		t.Fatalf("captured %d processes, want %d", res.Deposet.NumProcs(), 2*n)
	}
	for p := 0; p < n; p++ {
		if got := res.Deposet.Len(p); got != appEvents(rounds) {
			t.Errorf("app process %d captured %d events, want %d (fault-free count)", p, got, appEvents(rounds))
		}
	}
	for i, s := range res.Stats {
		if s.Requests != rounds {
			t.Errorf("node %d reports %d requests, want %d", i, s.Requests, rounds)
		}
	}
	if res.Candidates != n*rounds {
		t.Errorf("%d candidate reports, want %d", res.Candidates, n*rounds)
	}
}

// TestClusterCoordPartitionResume severs one node's coordinator stream
// mid-run (a Coord partition window that leaves the mesh intact) and
// requires the capture to assemble complete after the heal: the
// buffered frames — including the node's Done and bye — ride the
// session-resume replay.
func TestClusterCoordPartitionResume(t *testing.T) {
	const n, rounds = 3, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 61, Timeouts: chaosTimeouts(),
		Faults: Faults{Partitions: []Partition{
			// A == B makes severs() vacuous on the mesh; only the Coord
			// flag bites, isolating the capture-stream path under test.
			{Start: 10 * time.Millisecond, Dur: 40 * time.Millisecond, A: []int{1}, B: []int{1}, Coord: true},
		}},
	})
	if res.Restarts != 0 {
		t.Fatalf("a partition (no crash) triggered %d restarts", res.Restarts)
	}
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCrashRestart kills a node mid-run and requires the full
// §8 recovery story: the relaunch rejoins via Hello, the coordinator
// orders a controlled re-execution, and the final capture is
// indistinguishable in event count from a fault-free run.
func TestClusterCrashRestart(t *testing.T) {
	const n, rounds = 3, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: chaosTimeouts(),
		Crashes: []Crash{{At: 5 * time.Millisecond, Node: 1, Down: 5 * time.Millisecond}},
	})
	if res.Restarts < 1 {
		t.Fatalf("crash schedule produced %d restarts, want ≥ 1", res.Restarts)
	}
	if res.Epoch < 1 {
		t.Fatalf("run completed at epoch %d after a restart", res.Epoch)
	}
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)

	// The final epoch's capture must match a fault-free run of the same
	// workload event for event (app processes are deterministic; the
	// fault-free totals are asserted by checkFullCapture on both).
	free, _, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: chaosTimeouts(),
	})
	checkFullCapture(t, free, n, rounds)
	for p := 0; p < n; p++ {
		if res.Deposet.Len(p) != free.Deposet.Len(p) {
			t.Errorf("app process %d: crashed run captured %d events, fault-free %d",
				p, res.Deposet.Len(p), free.Deposet.Len(p))
		}
	}

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSoak is the -race soak: a seeded schedule of crashes plus a
// mesh partition and a coordinator-stream partition, on top of the
// probabilistic fault shim, and the run must still complete with zero
// capture loss and the paper's invariants green. (pcbench -chaos runs
// the scaled-up version of this for 60s; this keeps the race detector
// on the same code paths every CI run.)
func TestChaosSoak(t *testing.T) {
	const n, rounds = 4, 3
	cfg := ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 42, Timeouts: chaosTimeouts(),
		Faults: Faults{
			Drop: 0.1, Delay: 500 * time.Microsecond, Seed: 42,
			Partitions: []Partition{
				{Start: 8 * time.Millisecond, Dur: 15 * time.Millisecond, A: []int{0}},
				{Start: 30 * time.Millisecond, Dur: 20 * time.Millisecond, A: []int{2}, B: []int{2}, Coord: true},
			},
		},
		Crashes: []Crash{
			{At: 5 * time.Millisecond, Node: 1, Down: 3 * time.Millisecond},
			{At: 14 * time.Millisecond, Node: 2},
			{At: 24 * time.Millisecond, Node: 3, Down: 5 * time.Millisecond},
		},
	}
	res, j, _ := runTestCluster(t, cfg)
	if res.Restarts < 2 {
		t.Fatalf("soak schedule produced %d restarts, want ≥ 2", res.Restarts)
	}
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}
