package node

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// Transport is a node's view of the cluster mesh: reliable links to
// every peer plus a listener demultiplexing inbound streams. Delivery
// to the protocol layer is exactly-once and per-peer in-order — the
// invariants the sim kernel gave the controller for free, now earned
// with sequence numbers, dedup and reordering buffers over real TCP.
type Transport struct {
	id    int
	n     int
	ln    net.Listener
	links []*link // by peer id; nil at self
	rs    []*recvState
	logf  func(string, ...any)

	recvCh chan Recv
	done   chan struct{}
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Recv is one delivered protocol message.
type Recv struct {
	From int
	Msg  wire.Msg
}

// recvState is the per-peer receive half of the reliable link: dedup
// and in-order delivery by sequence number.
type recvState struct {
	mu   sync.Mutex
	next uint64 // next expected seq (first frame is 1)
	buf  map[uint64]wire.Msg
}

// recvBufCap bounds buffered out-of-order frames per peer; beyond it a
// frame is dropped and recovered by the sender's retransmit.
const recvBufCap = 1024

// TransportConfig configures one node's mesh endpoint.
type TransportConfig struct {
	ID       int
	N        int
	Addrs    []string // Addrs[i] is node i's listen address
	Listener net.Listener
	Faults   Faults
	Timeouts Timeouts
	// Reg, when non-nil, receives the mesh's wire metrics
	// (predctl_wire_frames_total, _bytes_total, _batch_size with
	// stream="mesh"), labeled with MetricLabels.
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
}

// NewTransport starts the mesh endpoint for node cfg.ID: it serves
// cfg.Listener (or listens on cfg.Addrs[cfg.ID]) and lazily dials
// peers on first send.
func NewTransport(cfg TransportConfig) (*Transport, error) {
	if cfg.N < 2 || cfg.ID < 0 || cfg.ID >= cfg.N {
		return nil, fmt.Errorf("node: transport id %d of %d out of range", cfg.ID, cfg.N)
	}
	if len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("node: %d addresses for %d nodes", len(cfg.Addrs), cfg.N)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("node: listen %s: %w", cfg.Addrs[cfg.ID], err)
		}
	}
	opt := cfg.Timeouts.withDefaults()
	t := &Transport{
		id:     cfg.ID,
		n:      cfg.N,
		ln:     ln,
		links:  make([]*link, cfg.N),
		rs:     make([]*recvState, cfg.N),
		logf:   logf,
		recvCh: make(chan Recv, 256),
		done:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	wm := newWireMeters(cfg.Reg, "mesh", cfg.MetricLabels)
	for p := 0; p < cfg.N; p++ {
		if p == cfg.ID {
			continue
		}
		t.links[p] = newLink(cfg.ID, p, cfg.N, cfg.Addrs[p], cfg.Faults, opt, wm, logf)
		t.rs[p] = &recvState{next: 1, buf: map[uint64]wire.Msg{}}
	}
	t.wg.Add(1)
	go t.acceptLoop(opt)
	return t, nil
}

// Send reliably delivers m to peer `to`.
func (t *Transport) Send(to int, m wire.Msg) {
	if to == t.id || to < 0 || to >= t.n {
		panic(fmt.Sprintf("node: send to invalid peer %d from %d", to, t.id))
	}
	t.links[to].Send(m)
}

// RecvCh is the stream of delivered protocol messages, exactly-once
// and in per-peer order.
func (t *Transport) RecvCh() <-chan Recv { return t.recvCh }

// Close tears the endpoint down: listener, inbound connections, links.
func (t *Transport) Close() {
	select {
	case <-t.done:
		return
	default:
		close(t.done)
	}
	t.ln.Close()
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	for _, l := range t.links {
		if l != nil {
			l.close()
		}
	}
	t.wg.Wait()
}

func (t *Transport) acceptLoop(opt Timeouts) {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
			default:
				t.logf("node %d: accept: %v", t.id, err)
			}
			return
		}
		t.connMu.Lock()
		t.conns[conn] = struct{}{}
		t.connMu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn, opt)
			t.connMu.Lock()
			delete(t.conns, conn)
			t.connMu.Unlock()
			conn.Close()
		}()
	}
}

// handleConn serves one inbound stream: handshake, then demultiplex
// frames until the peer goes away (it will reconnect and the persistent
// per-peer recvState keeps dedup working across connections).
func (t *Transport) handleConn(conn net.Conn, opt Timeouts) {
	br := bufReader(conn)
	from, err := t.handshake(br, conn, opt)
	if err != nil {
		t.logf("node %d: inbound handshake: %v", t.id, err)
		return
	}
	for {
		conn.SetReadDeadline(time.Now().Add(opt.IdleTimeout))
		seq, m, err := wire.ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // idle link: renew the deadline and keep reading
			}
			select {
			case <-t.done:
			default:
				if !errors.Is(err, net.ErrClosed) {
					t.logf("node %d: read from %d: %v", t.id, from, err)
				}
			}
			return
		}
		switch v := m.(type) {
		case wire.LinkAck:
			t.links[from].onAck(v.Cum)
		default:
			t.deliver(from, seq, m)
		}
	}
}

func (t *Transport) handshake(br *bufio.Reader, conn net.Conn, opt Timeouts) (int, error) {
	conn.SetReadDeadline(time.Now().Add(opt.DialTimeout))
	_, m, err := wire.ReadFrame(br)
	if err != nil {
		return 0, err
	}
	h, ok := m.(wire.Hello)
	if !ok {
		return 0, fmt.Errorf("first frame is %T, want Hello", m)
	}
	if int(h.N) != t.n {
		return 0, fmt.Errorf("peer believes cluster size %d, ours is %d", h.N, t.n)
	}
	if h.From < 0 || int(h.From) >= t.n || int(h.From) == t.id {
		return 0, fmt.Errorf("invalid peer id %d", h.From)
	}
	return int(h.From), nil
}

// deliver runs the receive half of the reliable link: acknowledge,
// deduplicate, reorder, and hand frames to the protocol in sequence
// order.
func (t *Transport) deliver(from int, seq uint64, m wire.Msg) {
	rs := t.rs[from]
	var ready []wire.Msg
	rs.mu.Lock()
	switch {
	case seq < rs.next:
		// Duplicate of an already-delivered frame (shim dup, retransmit
		// crossing an ack, or replay after reconnect): drop, but re-ack
		// so the sender stops retransmitting.
	case seq == rs.next:
		ready = append(ready, m)
		rs.next++
		for {
			nm, ok := rs.buf[rs.next]
			if !ok {
				break
			}
			delete(rs.buf, rs.next)
			ready = append(ready, nm)
			rs.next++
		}
	default: // a gap: buffer until retransmission fills it
		if len(rs.buf) < recvBufCap {
			rs.buf[seq] = m
		}
	}
	cum := rs.next - 1
	rs.mu.Unlock()
	t.links[from].Ack(cum)
	for _, rm := range ready {
		select {
		case t.recvCh <- Recv{From: from, Msg: rm}:
		case <-t.done:
			return
		}
	}
}
