package node

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// Transport is a node's view of the cluster mesh: reliable links to
// every peer plus a listener demultiplexing inbound streams. Delivery
// to the protocol layer is exactly-once and per-peer in-order — the
// invariants the sim kernel gave the controller for free, now earned
// with sequence numbers, dedup and reordering buffers over real TCP.
type Transport struct {
	id    int
	n     int
	ln    net.Listener
	links []*link // by peer id; nil at self
	rs    []*recvState
	logf  func(string, ...any)

	// epoch is the controlled re-execution epoch (paper §8): bumped by
	// Reset when the coordinator orders a restart after a crash. Links
	// handshake with it, the acceptor rejects mismatches, and receive
	// state is epoch-tagged so a stale connection cannot leak frames
	// from a discarded execution into the new one.
	epoch atomic.Uint32

	// badPeer counts Send calls addressed outside the mesh
	// (predctl_send_invalid_peer_total) — a controller bug surfaced as
	// an error and a metric instead of a crash.
	badPeer *obs.Counter

	recvCh chan Recv
	done   chan struct{}
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Recv is one delivered protocol message. Epoch is the re-execution
// epoch the frame was delivered under; consumers spanning a Reset can
// discard deliveries queued before the restart.
type Recv struct {
	From  int
	Epoch uint32
	Msg   wire.Msg
}

// recvState is the per-peer receive half of the reliable link: dedup
// and in-order delivery by sequence number. epoch pins the state to one
// execution: deliveries from a connection handshaken at an older epoch
// are dropped under the same lock that Reset takes, so a racing stale
// stream cannot corrupt the fresh sequence space.
type recvState struct {
	mu    sync.Mutex
	next  uint64 // next expected seq (first frame is 1)
	epoch uint32
	buf   map[uint64]wire.Msg
}

// recvBufCap bounds buffered out-of-order frames per peer; beyond it a
// frame is dropped and recovered by the sender's retransmit.
const recvBufCap = 1024

// TransportConfig configures one node's mesh endpoint.
type TransportConfig struct {
	ID       int
	N        int
	Addrs    []string // Addrs[i] is node i's listen address
	Listener net.Listener
	Faults   Faults
	Timeouts Timeouts
	// Reg, when non-nil, receives the mesh's wire metrics
	// (predctl_wire_frames_total, _bytes_total, _batch_size with
	// stream="mesh"), labeled with MetricLabels.
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
	// Start anchors the Faults.Partitions schedule; zero means "now".
	// Cluster runs share one instant so every node agrees on window
	// boundaries.
	Start time.Time
}

// NewTransport starts the mesh endpoint for node cfg.ID: it serves
// cfg.Listener (or listens on cfg.Addrs[cfg.ID]) and lazily dials
// peers on first send.
func NewTransport(cfg TransportConfig) (*Transport, error) {
	if cfg.N < 2 || cfg.ID < 0 || cfg.ID >= cfg.N {
		return nil, fmt.Errorf("node: transport id %d of %d out of range", cfg.ID, cfg.N)
	}
	if len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("node: %d addresses for %d nodes", len(cfg.Addrs), cfg.N)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("node: listen %s: %w", cfg.Addrs[cfg.ID], err)
		}
	}
	opt := cfg.Timeouts.withDefaults()
	t := &Transport{
		id:     cfg.ID,
		n:      cfg.N,
		ln:     ln,
		links:  make([]*link, cfg.N),
		rs:     make([]*recvState, cfg.N),
		logf:   logf,
		recvCh: make(chan Recv, 256),
		done:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	t.badPeer = cfg.Reg.Counter("predctl_send_invalid_peer_total", cfg.MetricLabels...)
	wm := newWireMeters(cfg.Reg, "mesh", cfg.MetricLabels)
	parts := newPartitions(cfg.Faults, cfg.Start)
	for p := 0; p < cfg.N; p++ {
		if p == cfg.ID {
			continue
		}
		t.links[p] = newLink(cfg.ID, p, cfg.N, cfg.Addrs[p], cfg.Faults, parts, &t.epoch, opt, wm, logf)
		t.rs[p] = &recvState{next: 1, buf: map[uint64]wire.Msg{}}
	}
	t.wg.Add(1)
	go t.acceptLoop(opt)
	return t, nil
}

// Send reliably delivers m to peer `to`. An out-of-mesh peer id is a
// controller bug, but one that must not take the node down mid-run: it
// is logged, counted in predctl_send_invalid_peer_total, and returned
// as an error the caller may inspect or ignore.
func (t *Transport) Send(to int, m wire.Msg) error {
	if to == t.id || to < 0 || to >= t.n {
		t.badPeer.Inc()
		err := fmt.Errorf("node: send to invalid peer %d from %d (n=%d)", to, t.id, t.n)
		t.logf("node %d: %v", t.id, err)
		return err
	}
	t.links[to].Send(m)
	return nil
}

// Epoch is the transport's current re-execution epoch.
func (t *Transport) Epoch() uint32 { return t.epoch.Load() }

// Reset moves the mesh to re-execution epoch e (paper §8 controlled
// re-execution after a crash): in-flight traffic from the abandoned
// execution is discarded, sequence spaces restart on both halves, and
// live connections are torn down so both sides re-handshake carrying
// the new epoch. Deliveries already queued on RecvCh keep their old
// Epoch tag; the consumer drops them.
func (t *Transport) Reset(e uint32) {
	t.epoch.Store(e)
	// Close inbound streams first: a stale peer writing into an old
	// connection must fail fast and redial with its (eventually bumped)
	// epoch rather than feed the old execution's frames to deliver.
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	for p, rs := range t.rs {
		if rs == nil {
			continue
		}
		rs.mu.Lock()
		rs.next = 1
		rs.epoch = e
		for k := range rs.buf {
			delete(rs.buf, k)
		}
		rs.mu.Unlock()
		t.links[p].reset(e)
	}
}

// RecvCh is the stream of delivered protocol messages, exactly-once
// and in per-peer order.
func (t *Transport) RecvCh() <-chan Recv { return t.recvCh }

// Close tears the endpoint down: listener, inbound connections, links.
func (t *Transport) Close() {
	select {
	case <-t.done:
		return
	default:
		close(t.done)
	}
	t.ln.Close()
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	for _, l := range t.links {
		if l != nil {
			l.close()
		}
	}
	t.wg.Wait()
}

func (t *Transport) acceptLoop(opt Timeouts) {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
			default:
				t.logf("node %d: accept: %v", t.id, err)
			}
			return
		}
		t.connMu.Lock()
		t.conns[conn] = struct{}{}
		t.connMu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn, opt)
			t.connMu.Lock()
			delete(t.conns, conn)
			t.connMu.Unlock()
			conn.Close()
		}()
	}
}

// handleConn serves one inbound stream: handshake, then demultiplex
// frames until the peer goes away (it will reconnect and the persistent
// per-peer recvState keeps dedup working across connections). The
// stream is pinned to the epoch it handshook at; after a Reset, the
// per-frame epoch check inside deliver drops anything still in flight
// and the connection is closed by Reset itself.
func (t *Transport) handleConn(conn net.Conn, opt Timeouts) {
	br := bufReader(conn)
	from, epoch, err := t.handshake(br, conn, opt)
	if err != nil {
		t.logf("node %d: inbound handshake: %v", t.id, err)
		return
	}
	for {
		conn.SetReadDeadline(time.Now().Add(opt.IdleTimeout))
		seq, m, err := wire.ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // idle link: renew the deadline and keep reading
			}
			select {
			case <-t.done:
			default:
				if !errors.Is(err, net.ErrClosed) {
					t.logf("node %d: read from %d: %v", t.id, from, err)
				}
			}
			return
		}
		switch v := m.(type) {
		case wire.LinkAck:
			t.links[from].onAck(v.Cum, epoch)
		default:
			t.deliver(from, epoch, seq, m)
		}
	}
}

// handshake validates an inbound stream's opening frame: Hello opens an
// epoch-0 stream (the common case, and what pre-epoch peers send);
// Resume opens a stream at an explicit epoch. The epoch must match this
// transport's current one exactly — a peer still executing a discarded
// epoch, or one that restarted ahead of us, is rejected and will redial
// once the Restart broadcast brings both sides level.
func (t *Transport) handshake(br *bufio.Reader, conn net.Conn, opt Timeouts) (int, uint32, error) {
	conn.SetReadDeadline(time.Now().Add(opt.DialTimeout))
	_, m, err := wire.ReadFrame(br)
	if err != nil {
		return 0, 0, err
	}
	var from, n int32
	var epoch uint32
	switch h := m.(type) {
	case wire.Hello:
		from, n = h.From, h.N
	case wire.Resume:
		from, n, epoch = h.From, h.N, h.Epoch
	default:
		return 0, 0, fmt.Errorf("first frame is %T, want Hello or Resume", m)
	}
	if int(n) != t.n {
		return 0, 0, fmt.Errorf("peer believes cluster size %d, ours is %d", n, t.n)
	}
	if from < 0 || int(from) >= t.n || int(from) == t.id {
		return 0, 0, fmt.Errorf("invalid peer id %d", from)
	}
	if cur := t.epoch.Load(); epoch != cur {
		return 0, 0, fmt.Errorf("peer %d at epoch %d, ours is %d", from, epoch, cur)
	}
	return int(from), epoch, nil
}

// deliver runs the receive half of the reliable link: acknowledge,
// deduplicate, reorder, and hand frames to the protocol in sequence
// order. epoch is the connection's handshake epoch; a frame from a
// stream older than the recvState's epoch is dropped unacknowledged
// (the check shares rs.mu with Reset, so the race between a stale
// in-flight frame and an epoch bump resolves safely either way).
func (t *Transport) deliver(from int, epoch uint32, seq uint64, m wire.Msg) {
	rs := t.rs[from]
	var ready []wire.Msg
	rs.mu.Lock()
	if epoch != rs.epoch {
		rs.mu.Unlock()
		return
	}
	switch {
	case seq < rs.next:
		// Duplicate of an already-delivered frame (shim dup, retransmit
		// crossing an ack, or replay after reconnect): drop, but re-ack
		// so the sender stops retransmitting.
	case seq == rs.next:
		ready = append(ready, m)
		rs.next++
		for {
			nm, ok := rs.buf[rs.next]
			if !ok {
				break
			}
			delete(rs.buf, rs.next)
			ready = append(ready, nm)
			rs.next++
		}
	default: // a gap: buffer until retransmission fills it
		if len(rs.buf) < recvBufCap {
			rs.buf[seq] = m
		}
	}
	cum := rs.next - 1
	rs.mu.Unlock()
	t.links[from].Ack(cum, epoch)
	for _, rm := range ready {
		select {
		case t.recvCh <- Recv{From: from, Epoch: epoch, Msg: rm}:
		case <-t.done:
			return
		}
	}
}
