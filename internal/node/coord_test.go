package node

import (
	"net"
	"testing"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// coord_test.go: coordinator ingest under concurrency. N synthetic node
// clients stream interleaved JournalBatch / TraceOpBatch / legacy Trace
// / JournalEvent frames over real TCP at once; the per-connection
// staging buffers must still reassemble a topologically valid
// 2n-process deposet and a complete merged journal. Run under -race
// (make check does), this pins the claim that the batched ingest path
// needs no coordinator-mutex serialization.

// synthNodeOps builds node i's capture: ops for its app process (i) and
// controller process (n+i), including a cross-node controller ring —
// ctl i sends a message received by ctl (i+1)%n — so assembly must
// match sends to receives *across* connections, not just within one.
func synthNodeOps(i, n int) (app, ctl []wire.TraceOp) {
	reqID := uint64(i)<<40 | 1     // app i → ctl i
	grantID := uint64(n+i)<<40 | 1 // ctl i → app i
	ringID := uint64(n+i)<<40 | 2  // ctl i → ctl (i+1)%n
	prevRing := uint64(n+(i+n-1)%n)<<40 | 2
	app = []wire.TraceOp{
		{Op: wire.TraceInit, Proc: int32(i), Name: "cs", Value: 0},
		{Op: wire.TraceSend, Proc: int32(i), MsgID: reqID},
		{Op: wire.TraceRecv, Proc: int32(i), MsgID: grantID},
		{Op: wire.TraceSet, Proc: int32(i), Name: "cs", Value: 1},
		{Op: wire.TraceSet, Proc: int32(i), Name: "cs", Value: 0},
	}
	ctl = []wire.TraceOp{
		{Op: wire.TraceRecv, Proc: int32(n + i), MsgID: reqID},
		{Op: wire.TraceSend, Proc: int32(n + i), MsgID: grantID},
		{Op: wire.TraceSend, Proc: int32(n + i), MsgID: ringID},
		{Op: wire.TraceRecv, Proc: int32(n + i), MsgID: prevRing},
	}
	return app, ctl
}

// runSynthNode plays one synthetic node against the coordinator:
// handshake, interleaved batch frames in chunks small enough to force
// many frames per process, Done, then the Shutdown dance.
func runSynthNode(t *testing.T, addr string, i, n int) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("node %d: dial: %v", i, err)
		return
	}
	defer conn.Close()
	var seq uint64
	send := func(m wire.Msg) {
		seq++
		if err := wire.WriteFrame(conn, seq, m); err != nil {
			t.Errorf("node %d: write: %v", i, err)
		}
	}
	send(wire.Hello{From: int32(i), N: int32(n)})

	appOps, ctlOps := synthNodeOps(i, n)
	// Interleave the two logical processes' streams and chop them into
	// 2-op batches: per-process order is preserved, frame boundaries
	// land mid-process, and app/ctl ops share frames — the shapes the
	// flusher actually produces.
	mixed := make([]wire.TraceOp, 0, len(appOps)+len(ctlOps))
	for k := 0; k < len(appOps) || k < len(ctlOps); k++ {
		if k < len(appOps) {
			mixed = append(mixed, appOps[k])
		}
		if k < len(ctlOps) {
			mixed = append(mixed, ctlOps[k])
		}
	}
	for len(mixed) > 0 {
		k := min(2, len(mixed))
		if k == 2 && len(mixed)%4 == 0 {
			// Some chunks ride the legacy unbatched frame: the
			// coordinator must ingest both kinds into one staging stream.
			send(wire.Trace{Ops: mixed[:k]})
		} else {
			send(wire.TraceOpBatch{Ops: mixed[:k]})
		}
		mixed = mixed[k:]
		send(wire.JournalBatch{Events: []wire.JournalEvent{
			{At: int64(i), Proc: int32(n + i), Kind: uint8(obs.KindControl), Name: "synth.batch"},
		}})
	}
	send(wire.JournalEvent{At: int64(i), Proc: int32(i), Kind: uint8(obs.KindSet), Name: "synth.single", A: 1})
	send(wire.CandidateBatch{Cands: []wire.Candidate{
		{Proc: int32(i), LoIdx: 3, HiIdx: 4, Lo: []int32{1}, Hi: []int32{2}},
		{Proc: int32(i), LoIdx: 4, HiIdx: 5, Lo: []int32{2}, Hi: []int32{3}},
	}})
	send(wire.Done{Proc: int32(i), Requests: 1})

	// Wait for the coordinator's Shutdown broadcast, then bye.
	br := bufReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, m, err := wire.ReadFrame(br); err != nil {
		t.Errorf("node %d: reading shutdown: %v", i, err)
		return
	} else if _, ok := m.(wire.Shutdown); !ok {
		t.Errorf("node %d: got %T, want Shutdown", i, m)
		return
	}
	send(wire.Shutdown{})

	// Stay parked until the coordinator seals the run: reading the
	// Commit keeps the connection open through the bye collection, the
	// real node lifecycle.
	for {
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			t.Errorf("node %d: waiting for Commit: %v", i, err)
			return
		}
		if _, ok := m.(wire.Commit); ok {
			return
		}
	}
}

func TestCoordinatorConcurrentBatchIngest(t *testing.T) {
	const n = 8
	j := obs.NewJournal(1 << 12)
	c, err := NewCoordinator(CoordConfig{
		N: n, Addr: "127.0.0.1:0", Journal: j, Timeouts: testTimeouts(),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		go runSynthNode(t, c.Addr(), i, n)
	}
	res, err := c.Wait(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Deposet
	if d.NumProcs() != 2*n {
		t.Fatalf("assembled %d processes, want %d", d.NumProcs(), 2*n)
	}
	for i := 0; i < n; i++ {
		// App processes traced 4 state-advancing ops each (send, recv,
		// 2 sets) on top of ⊥; controllers 4 (recv, 2 sends, recv).
		if d.Len(i) != 5 {
			t.Errorf("app %d: %d states, want 5", i, d.Len(i))
		}
		if d.Len(n+i) != 5 {
			t.Errorf("ctl %d: %d states, want 5", i, d.Len(n+i))
		}
		if res.Stats[i].Requests != 1 {
			t.Errorf("node %d: stats not ingested: %+v", i, res.Stats[i])
		}
	}
	// Each node's CandidateBatch carried 2 reports.
	if res.Candidates != 2*n {
		t.Errorf("ingested %d candidates, want %d", res.Candidates, 2*n)
	}
	// Journal completeness: each node sent 5 batch events (one per op
	// chunk) + 1 single event. Candidate reports no longer synthesize
	// journal events coordinator-side — real nodes journal their own
	// monitor.candidate twin with an actual emission timestamp.
	want := n * 6
	if j.Len() != want {
		t.Errorf("merged journal has %d events, want %d", j.Len(), want)
	}
}

// TestIngestBench pins the exported bench hook: pre-encoded batch
// bodies replay through the same ingest path and stage every op.
func TestIngestBench(t *testing.T) {
	appOps, ctlOps := synthNodeOps(0, 2)
	bodies := [][]byte{
		wire.Marshal(1, wire.TraceOpBatch{Ops: appOps})[4:],
		wire.Marshal(2, wire.JournalBatch{Events: []wire.JournalEvent{{Proc: 2, Kind: uint8(obs.KindControl), Name: "x"}}})[4:],
		wire.Marshal(3, wire.Trace{Ops: ctlOps})[4:],
	}
	j := obs.NewJournal(64)
	staged, err := IngestBench(2, j, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(appOps) + len(ctlOps); staged != want {
		t.Fatalf("staged %d ops, want %d", staged, want)
	}
	if j.Len() != 1 {
		t.Fatalf("journal has %d events, want 1", j.Len())
	}
}
