package node

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predctl/internal/obs"
	"predctl/internal/wire"
)

// link is one direction of a peer pair: this node's reliable, ordered
// channel *to* one peer. Each ordered pair of nodes communicates over
// the dialer's outbound connection, so a node runs n−1 outbound links
// and accepts n−1 inbound streams; there is no connection dedup or
// simultaneous-open tie-break to get wrong.
//
// Reliability is a small ARQ on top of TCP, needed because the
// fault-injection shim (and, across reconnects, TCP itself) may lose
// frames: every protocol frame carries a sender-assigned sequence
// number, the receiver acknowledges cumulatively (wire.LinkAck riding
// its own reverse link), and a retransmit pass re-sends everything
// unacknowledged. Writes happen on a single writer goroutine — sends
// enqueue and never block the protocol — with per-write deadlines, and
// a failed or absent connection is re-dialed with capped exponential
// backoff.
//
// The write path is allocation-lean and coalescing: frames are encoded
// into pooled buffers (wire.GetBuffer) that double as the retransmit
// copy and return to the pool when acknowledged, and the writer drains
// every frame that accumulated since its last wake into one buffer —
// one syscall — per wake. The retransmit timer is demand-armed (set
// only while unacknowledged frames exist) rather than free-running: a
// 128-node mesh has 16k links, and idle ones must cost nothing.
type link struct {
	from, to int
	addr     string
	n        int // cluster size, for the Hello/Resume handshake
	faults   *faultRand
	parts    *partitions    // partition schedule; nil when none
	epoch    *atomic.Uint32 // the transport's current re-execution epoch
	opt      Timeouts
	logf     func(string, ...any)
	wm       wireMeters

	mu       sync.Mutex // guards nextSeq, unacked, curEpoch
	nextSeq  uint64
	unacked  []outFrame
	curEpoch uint32 // epoch the queued frames belong to (stale acks are ignored)

	sendFlag chan struct{} // cap 1: unsent frames are pending in unacked
	ackFlag  chan struct{} // cap 1: an ack is pending in ackCum

	// The pending cumulative ack is epoch-tagged: an ack describes one
	// epoch's receive state, and announcing a stale value on a stream
	// handshaken at a newer epoch would prune frames the peer still owes
	// the new execution.
	ackMu    sync.Mutex
	ackCum   uint64 // highest cumulative ack to announce (+1, so 0 = none)
	ackEpoch uint32

	done chan struct{}
	wg   sync.WaitGroup

	// Writer-goroutine-owned scratch: frame bytes are copied out of the
	// pooled buffers under l.mu, so an ack racing the write can return a
	// buffer to the pool without the writer observing the reuse.
	wbuf  []byte
	marks []int // end offset of each frame within wbuf
	abuf  []byte

	connMu    sync.Mutex // guards conn and the redial backoff state
	conn      net.Conn
	connEpoch uint32 // the epoch conn handshook at; writes must match it
	dialFails int
	nextDial  time.Time
}

// outFrame is one sequenced frame awaiting acknowledgement. buf is
// pool-owned: onAck returns it when the peer acknowledges. sent
// distinguishes first transmission (writer wake) from retransmission
// (RTO pass re-sends everything, sent or not).
type outFrame struct {
	seq  uint64
	buf  *wire.Buffer
	sent bool
}

// wireMeters counts a stream's wire traffic: frames put on the wire,
// bytes written, and frames coalesced per write (the batch size the
// cluster bench reports). Nil-safe via the obs instruments.
type wireMeters struct {
	frames *obs.Counter
	bytes  *obs.Counter
	batch  *obs.Histogram
	retx   *obs.Counter
}

// newWireMeters resolves the wire metrics for one stream ("mesh" for
// node↔node links, "coord" for the capture stream).
func newWireMeters(reg *obs.Registry, stream string, labels []obs.Label) wireMeters {
	ls := append(append([]obs.Label{}, labels...), obs.L("stream", stream))
	return wireMeters{
		frames: reg.Counter("predctl_wire_frames_total", ls...),
		bytes:  reg.Counter("predctl_wire_bytes_total", ls...),
		batch:  reg.Histogram("predctl_wire_batch_size", ls...),
		retx:   reg.Counter("predctl_wire_retransmits_total", ls...),
	}
}

// Timeouts bundles the link/transport tunables. Zero values take the
// defaults below.
type Timeouts struct {
	RTO          time.Duration // retransmit delay while frames are unacknowledged
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration // read deadline renewal window
	BackoffMin   time.Duration // first redial delay after a failure
	BackoffMax   time.Duration // redial delay cap
	// CoordDeadline bounds one coordinator (re)dial campaign: the
	// overall time dialCoord (and each mid-run redial after a stream
	// break) keeps retrying with capped exponential backoff before
	// giving up. A slowly-restarting coordinator is reachable as long
	// as it comes back within this window.
	CoordDeadline time.Duration
}

func (t Timeouts) withDefaults() Timeouts {
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&t.RTO, 25*time.Millisecond)
	def(&t.DialTimeout, 2*time.Second)
	def(&t.WriteTimeout, 2*time.Second)
	def(&t.IdleTimeout, 500*time.Millisecond)
	def(&t.BackoffMin, 5*time.Millisecond)
	def(&t.BackoffMax, 500*time.Millisecond)
	def(&t.CoordDeadline, 30*time.Second)
	return t
}

// backoffDelay is the capped exponential redial backoff shared by the
// mesh links and the coordinator stream: BackoffMin doubled per
// consecutive failure, capped at BackoffMax.
func backoffDelay(opt Timeouts, fails int) time.Duration {
	if fails > 30 {
		fails = 30
	}
	d := opt.BackoffMin << fails
	if d > opt.BackoffMax || d <= 0 {
		d = opt.BackoffMax
	}
	return d
}

func newLink(from, to, n int, addr string, faults Faults, parts *partitions, epoch *atomic.Uint32, opt Timeouts, wm wireMeters, logf func(string, ...any)) *link {
	l := &link{
		from: from, to: to, addr: addr, n: n,
		faults:   newFaultRand(faults, from, to),
		parts:    parts,
		epoch:    epoch,
		opt:      opt,
		logf:     logf,
		wm:       wm,
		sendFlag: make(chan struct{}, 1),
		ackFlag:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	l.wg.Add(1)
	go l.writer()
	return l
}

// Send enqueues m for reliable delivery. It never blocks: the frame is
// registered as unacknowledged and the writer is nudged; a missed nudge
// is harmless because the writer drains *all* unsent frames per wake.
func (l *link) Send(m wire.Msg) {
	b := wire.GetBuffer()
	l.mu.Lock()
	l.nextSeq++
	// Encoding under l.mu keeps unacked sorted by seq (onAck's prune and
	// the retransmit pass rely on it); AppendFrame is allocation-free.
	b.B = wire.AppendFrame(b.B[:0], l.nextSeq, m)
	l.unacked = append(l.unacked, outFrame{seq: l.nextSeq, buf: b})
	l.mu.Unlock()
	select {
	case l.sendFlag <- struct{}{}:
	default: // writer already has a wake pending
	}
}

// Ack schedules a cumulative acknowledgement for the reverse direction
// (frames this node received *from* l.to), tagged with the epoch of the
// receive state it describes. Coalescing is free: within an epoch only
// the latest value matters, and a newer epoch supersedes outright.
func (l *link) Ack(cum uint64, epoch uint32) {
	l.ackMu.Lock()
	switch {
	case epoch > l.ackEpoch:
		l.ackEpoch = epoch
		l.ackCum = cum + 1
	case epoch == l.ackEpoch && cum+1 > l.ackCum:
		l.ackCum = cum + 1
	default:
		l.ackMu.Unlock()
		return
	}
	l.ackMu.Unlock()
	select {
	case l.ackFlag <- struct{}{}:
	default:
	}
}

// onAck prunes frames acknowledged by the peer, returning their buffers
// to the pool. Safe against an in-flight write: the writer copied the
// bytes out under l.mu before writing. epoch is the acknowledging
// stream's handshake epoch — an ack read from a stale connection just
// before an epoch reset must not prune the new epoch's frames.
func (l *link) onAck(cum uint64, epoch uint32) {
	l.mu.Lock()
	if epoch != l.curEpoch {
		l.mu.Unlock()
		return
	}
	i := 0
	for i < len(l.unacked) && l.unacked[i].seq <= cum {
		wire.PutBuffer(l.unacked[i].buf)
		l.unacked[i].buf = nil
		i++
	}
	l.unacked = l.unacked[i:]
	l.mu.Unlock()
}

// reset abandons the current epoch's traffic for a controlled
// re-execution at epoch e: unacknowledged frames are discarded (the old
// execution they belonged to is void), sequence numbering restarts, the
// connection is dropped so both sides re-handshake at the new epoch,
// and the redial backoff is cleared.
func (l *link) reset(e uint32) {
	l.mu.Lock()
	for _, f := range l.unacked {
		wire.PutBuffer(f.buf)
	}
	l.unacked = nil
	l.nextSeq = 0
	l.curEpoch = e
	l.mu.Unlock()
	l.ackMu.Lock()
	l.ackCum = 0
	l.ackEpoch = e
	l.ackMu.Unlock()
	l.connMu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.dialFails = 0
	l.nextDial = time.Time{}
	l.connMu.Unlock()
}

// close stops the writer and drops the connection.
func (l *link) close() {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	l.dropConn()
	l.wg.Wait()
	l.mu.Lock()
	for _, f := range l.unacked {
		wire.PutBuffer(f.buf)
	}
	l.unacked = nil
	l.mu.Unlock()
}

func (l *link) dropConn() {
	l.connMu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.connMu.Unlock()
}

// writer is the link's single writer goroutine: first transmissions,
// retransmissions and acks all funnel here, so frames never interleave
// on the stream. The RTO timer is demand-armed: it runs only while
// unacknowledged frames exist, so a quiet link costs no wakeups.
func (l *link) writer() {
	defer l.wg.Done()
	rto := time.NewTimer(l.opt.RTO)
	if !rto.Stop() {
		<-rto.C
	}
	defer rto.Stop()
	armed := false
	arm := func() {
		if armed {
			return
		}
		l.mu.Lock()
		pending := len(l.unacked) > 0
		l.mu.Unlock()
		if pending {
			rto.Reset(l.opt.RTO)
			armed = true
		}
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.sendFlag:
			l.flush(false)
			arm()
		case <-rto.C:
			armed = false
			l.flush(true)
			arm()
		case <-l.ackFlag:
			l.ackMu.Lock()
			cum, epoch := l.ackCum, l.ackEpoch
			l.ackMu.Unlock()
			if cum > 0 {
				// Acks are fault-exempt (idempotent and self-healing; a
				// shim-dropped ack under receiver dedup would retransmit
				// forever) and never coalesce into a faulted batch.
				l.abuf = wire.AppendFrame(l.abuf[:0], 0, wire.LinkAck{Cum: cum - 1})
				l.wm.frames.Inc()
				l.wm.bytes.Add(int64(len(l.abuf)))
				l.writeFrame(l.abuf, epoch)
			}
		}
	}
}

// flush puts pending frames on the wire: the unsent tail on a send
// wake, everything unacknowledged on an RTO pass. Frame bytes are
// copied into the writer-owned wbuf under l.mu — the pooled per-frame
// buffers may be reclaimed by onAck the instant the lock drops — and
// the clean path writes the whole batch with a single syscall. With
// the fault shim active, decisions stay per frame (drop/dup/delay are
// per-write-attempt semantics), so frames are written individually.
func (l *link) flush(retransmit bool) {
	l.wbuf = l.wbuf[:0]
	l.marks = l.marks[:0]
	l.mu.Lock()
	// The copied frames are pinned to the epoch they were queued under: a
	// Reset can land while the shim delays a write below, and writing the
	// abandoned epoch's bytes on a freshly-handshaken stream would let
	// them masquerade as the new epoch's small sequence numbers (a stale
	// protocol ack delivered into the re-execution grants instantly).
	epoch := l.curEpoch
	resent := 0
	for i := range l.unacked {
		f := &l.unacked[i]
		if f.sent && !retransmit {
			continue
		}
		if f.sent {
			resent++
		}
		f.sent = true
		l.wbuf = append(l.wbuf, f.buf.B...)
		l.marks = append(l.marks, len(l.wbuf))
	}
	l.mu.Unlock()
	if len(l.marks) == 0 {
		return
	}
	if resent > 0 {
		l.wm.retx.Add(int64(resent))
	}
	l.wm.frames.Add(int64(len(l.marks)))
	l.wm.batch.Observe(int64(len(l.marks)))
	if l.faults == nil {
		l.wm.bytes.Add(int64(len(l.wbuf)))
		l.writeFrame(l.wbuf, epoch)
		return
	}
	start := 0
	for _, end := range l.marks {
		frame := l.wbuf[start:end]
		start = end
		d := l.faults.next()
		if d.delay > 0 {
			select {
			case <-l.done:
				return
			case <-time.After(d.delay):
			}
		}
		if d.drop {
			continue
		}
		l.wm.bytes.Add(int64(len(frame)))
		l.writeFrame(frame, epoch)
		if d.dup {
			l.wm.bytes.Add(int64(len(frame)))
			l.writeFrame(frame, epoch)
		}
	}
}

// writeFrame writes one already-encoded frame (or coalesced batch) with
// a deadline, (re)dialing first if needed. epoch is the epoch the bytes
// belong to; they only go out on a connection handshaken at exactly that
// epoch, so traffic of an abandoned execution can never slip into a
// fresh sequence space. Errors drop the connection; recovery is the
// retransmit pass's job. An open partition window severs the link
// completely: the frame is skipped (it stays unacknowledged and the RTO
// pass re-offers it after the heal) and any live connection is torn down
// so no TCP buffer smuggles bytes across the cut.
func (l *link) writeFrame(buf []byte, epoch uint32) {
	if l.parts.meshSevered(l.from, l.to, time.Now()) {
		l.dropConn()
		return
	}
	conn := l.ensureConn(epoch)
	if conn == nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(l.opt.WriteTimeout))
	if _, err := conn.Write(buf); err != nil {
		select {
		case <-l.done: // teardown closes conns under the writer; quiet
		default:
			l.logf("node %d: link to %d: write: %v", l.from, l.to, err)
		}
		l.dropConn()
	}
}

// ensureConn returns the live connection handshaken at exactly `epoch`,
// dialing (with capped exponential backoff between attempts) when there
// is none. A connection at any other epoch is stale — torn down, not
// reused — and dialing is refused both while a partition window severs
// the link and when the transport has already moved past `epoch` (the
// frames wanting this connection belong to an abandoned execution). The
// handshake frame is Hello at epoch 0 and Resume{Epoch} after any
// controlled re-execution restart: the acceptor rejects mismatched
// epochs, so a stale peer cannot feed frames from a discarded execution
// into the new one.
func (l *link) ensureConn(epoch uint32) net.Conn {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	if l.conn != nil {
		if l.connEpoch == epoch {
			return l.conn
		}
		l.conn.Close()
		l.conn = nil
	}
	if l.epochNow() != epoch {
		return nil
	}
	if time.Now().Before(l.nextDial) {
		return nil
	}
	if l.parts.meshSevered(l.from, l.to, time.Now()) {
		return nil
	}
	c, err := net.DialTimeout("tcp", l.addr, l.opt.DialTimeout)
	if err != nil {
		l.nextDial = time.Now().Add(backoffDelay(l.opt, l.dialFails))
		if l.dialFails < 30 {
			l.dialFails++
		}
		return nil
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Handshake; the unacknowledged tail is replayed by the next RTO
	// pass, and the peer's dedup makes the replay harmless. A rejected
	// epoch (peer not yet restarted, or we are behind) surfaces as the
	// peer closing the connection; the next dial retries.
	var hs wire.Msg = wire.Hello{From: int32(l.from), N: int32(l.n)}
	if epoch > 0 {
		hs = wire.Resume{From: int32(l.from), N: int32(l.n), Epoch: epoch}
	}
	c.SetWriteDeadline(time.Now().Add(l.opt.WriteTimeout))
	if _, err := c.Write(wire.Marshal(0, hs)); err != nil {
		c.Close()
		l.nextDial = time.Now().Add(backoffDelay(l.opt, l.dialFails))
		if l.dialFails < 30 {
			l.dialFails++
		}
		return nil
	}
	l.dialFails = 0
	l.nextDial = time.Time{}
	l.conn = c
	l.connEpoch = epoch
	return c
}

// epochNow is the transport's current re-execution epoch; 0 when the
// link runs standalone (tests) or the run never restarted.
func (l *link) epochNow() uint32 {
	if l.epoch == nil {
		return 0
	}
	return l.epoch.Load()
}

// bufReader sizes the per-connection read buffer.
func bufReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 64<<10) }
