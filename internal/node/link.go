package node

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predctl/internal/wire"
)

// link is one direction of a peer pair: this node's reliable, ordered
// channel *to* one peer. Each ordered pair of nodes communicates over
// the dialer's outbound connection, so a node runs n−1 outbound links
// and accepts n−1 inbound streams; there is no connection dedup or
// simultaneous-open tie-break to get wrong.
//
// Reliability is a small ARQ on top of TCP, needed because the
// fault-injection shim (and, across reconnects, TCP itself) may lose
// frames: every protocol frame carries a sender-assigned sequence
// number, the receiver acknowledges cumulatively (wire.LinkAck riding
// its own reverse link), and a retransmit tick re-sends everything
// unacknowledged. Writes happen on a single writer goroutine — sends
// enqueue and never block the protocol — with per-write deadlines, and
// a failed or absent connection is re-dialed with capped exponential
// backoff.
type link struct {
	from, to int
	addr     string
	n        int // cluster size, for the Hello handshake
	faults   *faultRand
	opt      Timeouts
	logf     func(string, ...any)

	mu      sync.Mutex // guards nextSeq, unacked
	nextSeq uint64
	unacked []outFrame

	outCh     chan []byte   // frames enqueued for first transmission
	ackFlag   chan struct{} // cap 1: an ack is pending in ackCum
	ackCum    atomic.Uint64 // highest cumulative ack to announce (+1, so 0 = none)
	done      chan struct{}
	wg        sync.WaitGroup
	connMu    sync.Mutex // guards conn for close-from-outside
	conn      net.Conn
	dialFails int
	nextDial  time.Time
}

type outFrame struct {
	seq uint64
	buf []byte
}

// Timeouts bundles the link/transport tunables. Zero values take the
// defaults below.
type Timeouts struct {
	RTO          time.Duration // retransmit scan interval
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration // read deadline renewal window
	BackoffMin   time.Duration // first redial delay after a failure
	BackoffMax   time.Duration // redial delay cap
}

func (t Timeouts) withDefaults() Timeouts {
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&t.RTO, 25*time.Millisecond)
	def(&t.DialTimeout, 2*time.Second)
	def(&t.WriteTimeout, 2*time.Second)
	def(&t.IdleTimeout, 500*time.Millisecond)
	def(&t.BackoffMin, 5*time.Millisecond)
	def(&t.BackoffMax, 500*time.Millisecond)
	return t
}

func newLink(from, to, n int, addr string, faults Faults, opt Timeouts, logf func(string, ...any)) *link {
	l := &link{
		from: from, to: to, addr: addr, n: n,
		faults:  newFaultRand(faults, from, to),
		opt:     opt,
		logf:    logf,
		outCh:   make(chan []byte, 256),
		ackFlag: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	l.wg.Add(1)
	go l.writer()
	return l
}

// Send enqueues m for reliable delivery. It never blocks: the frame is
// registered as unacknowledged first, so even when the queue is full
// the retransmit tick will carry it.
func (l *link) Send(m wire.Msg) {
	l.mu.Lock()
	l.nextSeq++
	seq := l.nextSeq
	buf := wire.Marshal(seq, m)
	l.unacked = append(l.unacked, outFrame{seq: seq, buf: buf})
	l.mu.Unlock()
	select {
	case l.outCh <- buf:
	default: // queue full: the RTO scan retransmits it
	}
}

// Ack schedules a cumulative acknowledgement for the reverse direction
// (frames this node received *from* l.to). Coalescing is free: only the
// latest value matters.
func (l *link) Ack(cum uint64) {
	for {
		old := l.ackCum.Load()
		if cum+1 <= old {
			return
		}
		if l.ackCum.CompareAndSwap(old, cum+1) {
			break
		}
	}
	select {
	case l.ackFlag <- struct{}{}:
	default:
	}
}

// onAck prunes frames acknowledged by the peer.
func (l *link) onAck(cum uint64) {
	l.mu.Lock()
	i := 0
	for i < len(l.unacked) && l.unacked[i].seq <= cum {
		i++
	}
	l.unacked = l.unacked[i:]
	l.mu.Unlock()
}

// close stops the writer and drops the connection.
func (l *link) close() {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	l.dropConn()
	l.wg.Wait()
}

func (l *link) dropConn() {
	l.connMu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.connMu.Unlock()
}

// writer is the link's single writer goroutine: first transmissions,
// retransmissions and acks all funnel here, so frames never interleave
// on the stream.
func (l *link) writer() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.opt.RTO)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case buf := <-l.outCh:
			l.transmit(buf, true)
		case <-l.ackFlag:
			if cum := l.ackCum.Load(); cum > 0 {
				l.writeFrame(wire.Marshal(0, wire.LinkAck{Cum: cum - 1}))
			}
		case <-ticker.C:
			l.retransmit()
		}
	}
}

// retransmit re-sends every unacknowledged frame, oldest first.
func (l *link) retransmit() {
	l.mu.Lock()
	pending := make([][]byte, len(l.unacked))
	for i, f := range l.unacked {
		pending[i] = f.buf
	}
	l.mu.Unlock()
	for _, buf := range pending {
		select {
		case <-l.done:
			return
		default:
		}
		l.transmit(buf, true)
	}
}

// transmit puts one frame on the wire, applying the fault shim when
// asked: drop skips the write (recovery via retransmit), dup writes
// twice (recovery via receiver dedup), delay sleeps first (the modeled
// link latency).
func (l *link) transmit(buf []byte, withFaults bool) {
	var d decision
	if withFaults {
		d = l.faults.next()
	}
	if d.delay > 0 {
		select {
		case <-l.done:
			return
		case <-time.After(d.delay):
		}
	}
	if d.drop {
		return
	}
	l.writeFrame(buf)
	if d.dup {
		l.writeFrame(buf)
	}
}

// writeFrame writes one already-encoded frame with a deadline,
// (re)dialing first if needed. Errors drop the connection; recovery is
// the retransmit tick's job.
func (l *link) writeFrame(buf []byte) {
	conn := l.ensureConn()
	if conn == nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(l.opt.WriteTimeout))
	if _, err := conn.Write(buf); err != nil {
		select {
		case <-l.done: // teardown closes conns under the writer; quiet
		default:
			l.logf("node %d: link to %d: write: %v", l.from, l.to, err)
		}
		l.dropConn()
	}
}

// ensureConn returns the live connection, dialing (with capped
// exponential backoff between attempts) when there is none.
func (l *link) ensureConn() net.Conn {
	l.connMu.Lock()
	conn := l.conn
	l.connMu.Unlock()
	if conn != nil {
		return conn
	}
	if time.Now().Before(l.nextDial) {
		return nil
	}
	c, err := net.DialTimeout("tcp", l.addr, l.opt.DialTimeout)
	if err != nil {
		backoff := l.opt.BackoffMin << l.dialFails
		if backoff > l.opt.BackoffMax || backoff <= 0 {
			backoff = l.opt.BackoffMax
		}
		if l.dialFails < 30 {
			l.dialFails++
		}
		l.nextDial = time.Now().Add(backoff)
		return nil
	}
	l.dialFails = 0
	l.nextDial = time.Time{}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Handshake; the unacknowledged tail is replayed by the next RTO
	// scan, and the peer's dedup makes the replay harmless.
	c.SetWriteDeadline(time.Now().Add(l.opt.WriteTimeout))
	if _, err := c.Write(wire.Marshal(0, wire.Hello{From: int32(l.from), N: int32(l.n)})); err != nil {
		c.Close()
		return nil
	}
	l.connMu.Lock()
	l.conn = c
	l.connMu.Unlock()
	return c
}

// bufReader sizes the per-connection read buffer.
func bufReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 64<<10) }
