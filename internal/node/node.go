// Package node is the real network runtime for the paper's on-line
// predicate control: where internal/online runs applications and
// controllers as processes on the discrete-event sim kernel, this
// package hosts them as daemons over real TCP. Each node runs one
// application process and its co-located controller (the paper's
// "control system is a distinct distributed system"), embedding the
// transport-neutral online.Machine — the sim kernel and this package
// are two Hosts driving the same Figure 3 protocol code.
//
// The runtime earns what the simulator gave for free: per-peer reliable
// in-order exactly-once delivery (sequence numbers, cumulative acks,
// retransmission, dedup — link.go, transport.go) over connections that
// redial with capped exponential backoff, with a deterministic
// fault-injection shim (fault.go) exercising the recovery paths.
//
// A coordinator (coord.go) collects each node's capture stream and
// reassembles the run as a deposet trace — apps are logical processes
// 0..n-1, controllers n..2n-1, exactly the sim layout — so pctl replay,
// detection and offline control consume a networked run unchanged. It
// also merges the nodes' journals and tallies so the obs invariant
// checkers (single scapegoat chain, handoff response window) run
// against a real TCP execution.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predctl/internal/obs"
	"predctl/internal/online"
	"predctl/internal/wire"
)

// ErrCrashed reports that a node was torn down by its Config.Crash
// channel: the in-process stand-in for kill -9. Everything stops
// abruptly — no final flush, no bye, connections just close — so the
// cluster observes exactly what a dead process would leave behind. The
// harness (or an operator relaunching `pctl node`) starts a fresh Run,
// whose Hello the coordinator recognizes as a rejoin and answers with
// a controlled re-execution restart.
var ErrCrashed = errors.New("node: crashed by injection")

// Stats aggregates one node's run, mirroring online.Stats with
// wall-clock latencies.
type Stats struct {
	Requests    int
	Handoffs    int
	CtlMessages int
	Responses   []time.Duration // per-request grant latency
}

// Config parameterizes one node of a controlled cluster running the
// anti-token (n−1)-mutex workload: Rounds critical sections of length
// CS separated by think times in (Think/2, Think].
type Config struct {
	ID        int
	N         int
	Addrs     []string // Addrs[i] is node i's listen address
	Coord     string   // coordinator address (required)
	Scapegoat int      // initial anti-token holder
	Broadcast bool
	Rounds    int
	Think     time.Duration
	CS        time.Duration
	Seed      int64
	Faults    Faults
	Timeouts  Timeouts
	// Batching is the flush policy for the coordinator capture stream
	// (zero value: batch frames of ≤128 items flushed every 2ms).
	Batching Batching
	Listener net.Listener // optional pre-bound listener for this node
	// Journal, when non-nil, receives this node's local copy of the
	// control events (the coordinator gets them too, via the capture
	// stream).
	Journal *obs.Journal
	// Reg, when non-nil, receives the node's protocol metrics, labeled
	// with MetricLabels.
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Logf         func(string, ...any)
	// Start is the run epoch journal timestamps are relative to; the
	// zero value means "now". Clusters share one epoch so the merged
	// journal's timestamps are comparable (and partition windows line
	// up across nodes).
	Start time.Time
	// Crash, when non-nil, injects a crash: a receive makes Run abandon
	// everything mid-flight and return ErrCrashed, the in-process
	// equivalent of killing the daemon.
	Crash <-chan struct{}
	// HTTPAddr, when non-empty (or HTTPListener non-nil), opts into the
	// node's introspection server: /metrics (the node's registry),
	// /statusz (NodeStatus), /healthz, /debug/pprof/.
	HTTPAddr     string
	HTTPListener net.Listener
	// Rogue plants a protocol violation for live detection to catch:
	// the application enters its critical sections without the
	// mayFalse/grant handshake (and never reports NowTrue), so its
	// controller believes the local predicate stayed true while the CS
	// overlaps everyone else's. The candidate stream still reports the
	// false-intervals faithfully — the monitor observes the application,
	// it does not police it. A rogue reverts to controlled behavior the
	// moment the coordinator's Detection/ReExec broadcast arrives, so a
	// detection-triggered re-execution satisfies the invariants.
	Rogue bool
	// WaitRestart marks this Run as the relaunch of a crashed node: it
	// holds off executing until the coordinator's restart decision
	// arrives and starts directly at the fresh epoch. Without it a
	// relaunch would execute at epoch 0 while the cluster is mid-epoch —
	// and on the run's first crash the epochs collide: the relaunch's
	// fresh mesh sequence space meets its peers' old per-peer receive
	// state, so stale retransmits from the dead incarnation's
	// conversations are delivered into the new one (a replayed handoff
	// ack can grant a request it never answered) and the fresh frames
	// are acknowledged as duplicates without being delivered.
	WaitRestart bool
}

// meters is the node's metric set (nil-safe, like online's). Response
// latencies split by path: predctl_response_ns records every grant,
// predctl_response_handoff_ns only grants that paid for an anti-token
// handoff — the observations the paper's [2T, 2T+Emax] window bounds.
type meters struct {
	ctl         *obs.Counter
	handoffs    *obs.Counter
	cancels     *obs.Counter
	requests    *obs.Counter
	resp        *obs.Histogram
	respHandoff *obs.Histogram
}

func newMeters(reg *obs.Registry, labels []obs.Label) meters {
	return meters{
		ctl:         reg.Counter("predctl_ctl_messages_total", labels...),
		handoffs:    reg.Counter("predctl_handoffs_total", labels...),
		cancels:     reg.Counter("predctl_broadcast_cancels_total", labels...),
		requests:    reg.Counter("predctl_requests_total", labels...),
		resp:        reg.Histogram("predctl_response_ns", labels...),
		respHandoff: reg.Histogram("predctl_response_handoff_ns", labels...),
	}
}

// localKind discriminates app → controller inputs on the node-local
// channel (the networked stand-in for the sim's zero-delay local hop).
type localKind uint8

const (
	locMayFalse localKind = iota
	locNowTrue
)

type localInput struct {
	kind localKind
	id   uint64 // trace id of the local message
}

// node is one epoch's execution state: application goroutine,
// controller goroutine, capture, clocks. The transport and coordinator
// stream outlive it — a controlled re-execution restart discards the
// node state and builds a fresh one at the next epoch on the same
// transport (reset) and stream (epoch-marked).
type node struct {
	cfg     Config
	epoch   uint32
	app     int // logical trace process of the application (= cfg.ID)
	ctl     int // logical trace process of the controller (= cfg.N + cfg.ID)
	tr      *Transport
	cc      *coordClient
	cap     *capture
	clk     *clock
	rng     *rand.Rand // controller-owned (PickTarget)
	m       meters
	statsMu sync.Mutex // app and controller both tally into stats
	stats   Stats
	start   time.Time
	logf    func(string, ...any)
	journal *obs.Journal

	ctlIn     chan localInput
	grantCh   chan grantMsg
	ctlQuit   chan struct{} // stops the controller loop
	ctlExited chan struct{}
	abort     chan struct{} // unblocks the app on restart/crash
	appExited chan struct{}
	appDone   chan struct{}

	// handoffPending pairs Released with the Grant it unblocks (both on
	// the controller goroutine): a grant that required an anti-token
	// handoff is tagged, so its response time is held to the paper's
	// [2T, 2T+Emax] window while local grants (the paper's "0") are not.
	handoffPending bool
}

// grantMsg is the controller → app grant: the trace id of the grant
// message, tagged with whether the grant paid for a handoff.
type grantMsg struct {
	id      uint64
	handoff bool
}

func (nd *node) since() int64 { return time.Since(nd.start).Nanoseconds() }

// journalCtl records a control event locally and forwards it to the
// coordinator, so both the node's journal and the merged cluster
// journal see it.
func (nd *node) journalCtl(proc int, kind obs.Kind, name string, a, b, c int64, vc []int32) {
	e := obs.Event{At: nd.since(), Proc: proc, Kind: kind, Name: name, A: a, B: b, C: c, VC: vc}
	nd.journal.Append(e)
	nd.cc.sendJournal(e)
}

// Run executes one node to completion: the application's Rounds
// critical sections under anti-token control, then serving handoffs
// for the rest of the cluster until the coordinator says Shutdown. It
// returns the node's final tallies.
//
// A Restart from the coordinator (another node crashed and relaunched)
// triggers the paper's §8 controlled re-execution: the current
// execution is abandoned wherever it stands, the mesh resets to the
// new epoch, the abandoned capture is discarded on the stream, and the
// whole workload re-executes from scratch. Only the final epoch's
// capture survives at the coordinator, so recovery yields the same
// trace a fault-free run would have.
func Run(cfg Config) (*Stats, error) {
	if cfg.N < 2 || cfg.ID < 0 || cfg.ID >= cfg.N {
		return nil, fmt.Errorf("node: id %d of %d out of range", cfg.ID, cfg.N)
	}
	if cfg.Scapegoat < 0 || cfg.Scapegoat >= cfg.N {
		return nil, fmt.Errorf("node: scapegoat %d out of range", cfg.Scapegoat)
	}
	if cfg.Coord == "" {
		return nil, fmt.Errorf("node: a coordinator address is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Now()
	}
	opt := cfg.Timeouts.withDefaults()
	batch := cfg.Batching.withDefaults()
	parts := newPartitions(cfg.Faults, start)
	cwm := newWireMeters(cfg.Reg, "coord", cfg.MetricLabels)
	cc, err := dialCoord(cfg.Coord, cfg.ID, cfg.N, batch, cwm, opt, parts, logf)
	if err != nil {
		return nil, err
	}
	if cfg.Reg != nil && batch.SnapshotEvery > 0 {
		// Set before the first ensureFlusher so the flusher goroutine
		// observes it; the registry is epoch-independent, so one closure
		// serves every re-execution.
		cc.start = start
		cc.snap = func() []wire.MetricPoint { return toWirePoints(cfg.Reg.Snapshot()) }
	}
	tr, err := NewTransport(TransportConfig{
		ID: cfg.ID, N: cfg.N, Addrs: cfg.Addrs, Listener: cfg.Listener,
		Faults: cfg.Faults, Timeouts: cfg.Timeouts,
		Reg: cfg.Reg, MetricLabels: cfg.MetricLabels, Logf: logf,
		Start: start,
	})
	if err != nil {
		cc.close()
		return nil, err
	}

	// cur tracks the epoch's execution state for /statusz; it trails the
	// epoch loop by design (a restart swaps it when the new state is up).
	var cur atomic.Pointer[node]
	var insp *obs.Introspection
	if cfg.HTTPAddr != "" || cfg.HTTPListener != nil {
		insp, err = obs.ServeIntrospection(obs.IntrospectionConfig{
			Addr: cfg.HTTPAddr, Listener: cfg.HTTPListener,
			Reg:     cfg.Reg,
			Status:  func() any { return nodeStatus(cfg, cur.Load(), cc) },
			Healthy: cc.healthy,
			Logf:    logf,
		})
		if err != nil {
			tr.Close()
			cc.close()
			return nil, err
		}
		defer insp.Close()
		logf("node %d: introspection at %s", cfg.ID, insp.URL())
	}

	epoch := uint32(0)
	if cfg.WaitRestart {
		// A relaunched process must not execute at epoch 0 — the cluster
		// is mid-epoch and its peers' link state still names the dead
		// incarnation. The coordinator always answers a pre-commit
		// rejoin Hello with a restart, so wait for that decision and
		// start clean at the fresh epoch.
		select {
		case e := <-cc.restartCh:
			tr.Reset(e)
			cc.markEpoch(e)
			epoch = e
			// After markEpoch, so the event lands in (and survives
			// with) the fresh epoch rather than the discarded one.
			journalRestart(cfg, cc, start, e)
		case <-cc.commitCh:
			// Rejoined after the run was sealed: nothing to re-execute,
			// nothing to contribute. Stand down.
			logf("node %d: rejoin refused (run committed); standing down", cfg.ID)
			tr.Close()
			cc.close()
			return &Stats{}, nil
		case <-cc.sessDone:
			tr.Close()
			cc.close()
			return nil, fmt.Errorf("node %d: coordinator session lost before the rejoin restart", cfg.ID)
		case <-time.After(opt.CoordDeadline):
			// The rejoin Hello rides the dial handshake, not the session
			// log, so a coordinator/relay that dies between consuming it
			// and acting on it loses it — and a session resume cannot
			// replay it. An undecided hold this long means exactly that:
			// abandon the incarnation and relaunch with a fresh Hello. A
			// duplicate Hello at worst orders one redundant restart.
			logf("node %d: no rejoin decision within %v; relaunching with a fresh hello", cfg.ID, opt.CoordDeadline)
			tr.Close()
			cc.close()
			return nil, ErrCrashed
		case <-cfg.Crash:
			tr.Close()
			cc.close()
			return nil, ErrCrashed
		}
	}
	for {
		nd := newNodeState(cfg, epoch, tr, cc, start, logf)
		// The capture's size trigger and the coordClient's interval tick
		// together implement the size-or-interval flush policy.
		nd.cap.kick, nd.cap.kickAt = cc.kickFlush, batch.MaxItems
		cc.ensureFlusher(nd.cap.take)
		cur.Store(nd)
		out := nd.runEpoch()
		switch out.kind {
		case epochCrashed:
			// kill -9 semantics: connections just die, nothing is
			// flushed, no bye is sent. The coordinator keeps the session
			// state and treats the relaunch's Hello as a rejoin.
			tr.Close()
			cc.stopFlusher(false)
			cc.close()
			return nil, ErrCrashed
		case epochRestart:
			logf("node %d: restarting at epoch %d (controlled re-execution)", cfg.ID, out.epoch)
			tr.Reset(out.epoch)
			cc.markEpoch(out.epoch)
			epoch = out.epoch
			journalRestart(cfg, cc, start, out.epoch)
			// A Shutdown this restart superseded may still sit unread in
			// the event buffer (the reader pushed it before the Restart);
			// drop it so the new epoch can't mistake it for its own.
			select {
			case <-cc.shutdownEv:
			default:
			}
		case epochShutdown:
			tr.Close()
			cc.stopFlusher(true)
			if !out.byed {
				// Terminal session loss before the bye phase: the bye
				// dance is unreachable, but buffer the closing frames
				// anyway — if the loss was close()-vs-teardown noise they
				// still make it out.
				cc.send(nd.doneFrame())
				cc.send(wire.Shutdown{Epoch: nd.epoch})
			}
			// A bye buffered behind a severed or broken stream must be
			// delivered by resume before the session dies, or the
			// coordinator waits for it forever.
			cc.drain(opt.CoordDeadline)
			cc.close()
			nd.statsMu.Lock()
			s := nd.stats
			nd.statsMu.Unlock()
			return &s, nil
		}
	}
}

// journalRestart records the first event of a re-execution epoch —
// locally and on the capture stream — so the merged journal (and the
// cluster trace exporter) can mark where the surviving execution began.
// Callers emit it after markEpoch: the event must belong to the fresh
// epoch, not the discarded one.
func journalRestart(cfg Config, cc *coordClient, start time.Time, e uint32) {
	ev := obs.Event{
		At: time.Since(start).Nanoseconds(), Proc: cfg.N + cfg.ID,
		Kind: obs.KindControl, Name: obs.EvEpochRestart,
		A: int64(cfg.ID), C: int64(e),
	}
	cfg.Journal.Append(ev)
	cc.sendJournal(ev)
}

// NodeStatus is a node's /statusz document.
type NodeStatus struct {
	Node  int    `json:"node"`
	N     int    `json:"n"`
	Epoch uint32 `json:"epoch"`
	// StreamFrames is the coordinator capture stream's session-log
	// length: every frame ever sequenced, survives reconnects.
	StreamFrames uint64 `json:"stream_frames"`
	Requests     int    `json:"requests"`
	Handoffs     int    `json:"handoffs"`
	CtlMessages  int    `json:"ctl_messages"`
}

// nodeStatus assembles the live status snapshot; nd may be nil before
// the first epoch starts.
func nodeStatus(cfg Config, nd *node, cc *coordClient) NodeStatus {
	s := NodeStatus{Node: cfg.ID, N: cfg.N, StreamFrames: cc.sentFrames()}
	if nd != nil {
		s.Epoch = nd.epoch
		nd.statsMu.Lock()
		s.Requests = nd.stats.Requests
		s.Handoffs = nd.stats.Handoffs
		s.CtlMessages = nd.stats.CtlMessages
		nd.statsMu.Unlock()
	}
	return s
}

// newNodeState builds one epoch's fresh execution state.
func newNodeState(cfg Config, epoch uint32, tr *Transport, cc *coordClient, start time.Time, logf func(string, ...any)) *node {
	return &node{
		cfg: cfg, epoch: epoch, app: cfg.ID, ctl: cfg.N + cfg.ID,
		tr: tr, cc: cc,
		cap:       &capture{enabled: true},
		clk:       newClock(cfg.N, cfg.ID),
		rng:       rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID)*7919)),
		m:         newMeters(cfg.Reg, cfg.MetricLabels),
		start:     start,
		logf:      logf,
		journal:   cfg.Journal,
		ctlIn:     make(chan localInput, 4),
		grantCh:   make(chan grantMsg, 1),
		ctlQuit:   make(chan struct{}),
		ctlExited: make(chan struct{}),
		abort:     make(chan struct{}),
		appExited: make(chan struct{}),
		appDone:   make(chan struct{}),
	}
}

// epochOutcome is how one epoch's execution ended.
type epochOutcome struct {
	kind  int
	epoch uint32 // the target epoch for epochRestart
	// byed reports that the bye dance already ran inside the epoch: the
	// final flush, final Done and Shutdown bye went out when the
	// coordinator's Shutdown arrived, and the node then parked until the
	// Commit. The caller must not send them again.
	byed bool
}

const (
	epochShutdown = iota // coordinator says the run is complete
	epochRestart         // coordinator ordered a controlled re-execution
	epochCrashed         // Config.Crash fired
)

// runEpoch drives one execution attempt to an outcome and joins both
// worker goroutines before returning, so no stale append can land in
// the capture after the caller discards it.
func (nd *node) runEpoch() epochOutcome {
	go nd.controller()
	go nd.application()
	defer func() {
		close(nd.abort)
		close(nd.ctlQuit)
		<-nd.ctlExited
		<-nd.appExited
	}()
	appDone := nd.appDone
	byed := false
	for {
		select {
		case <-appDone:
			// App finished: report Done (responses are complete; the
			// controller keeps serving handoffs, so message tallies grow
			// until shutdown — and the flusher keeps streaming capture).
			appDone = nil
			nd.cc.send(nd.doneFrame())
		case e := <-nd.cc.shutdownEv:
			// The coordinator believes this epoch is complete. Obey only
			// if we still run it — a Shutdown for a voided epoch (a
			// restart raced past it) is stale and must be ignored, or a
			// node quits an execution the rest of the cluster is redoing.
			if e != nd.epoch || byed {
				continue
			}
			byed = true
			// Bye: final-flush the capture, send the complete tallies and
			// the epoch-tagged bye — then PARK. The transport stays up and
			// the session stays resident until the coordinator's Commit,
			// so a straggler crash-rejoin can still restart the cluster
			// and this node re-executes instead of having already left.
			nd.cc.stopFlusher(true)
			nd.cc.send(nd.doneFrame())
			nd.cc.send(wire.Shutdown{Epoch: nd.epoch})
		case <-nd.cc.commitCh:
			// The coordinator sealed the run: every node's bye arrived.
			return epochOutcome{kind: epochShutdown, byed: byed}
		case <-nd.cc.sessDone:
			// Terminal session loss: the resume loop gave up. No Commit
			// can arrive; exit with whatever this node has.
			return epochOutcome{kind: epochShutdown, byed: byed}
		case e := <-nd.cc.restartCh:
			if e > nd.epoch {
				return epochOutcome{kind: epochRestart, epoch: e}
			}
		case <-nd.cfg.Crash:
			return epochOutcome{kind: epochCrashed}
		}
	}
}

// doneFrame snapshots the node's tallies as a wire.Done. At the first
// Done the controller is still serving handoffs, so its message counts
// keep growing; the final Done (sent after the controller exits)
// carries the complete tallies.
func (nd *node) doneFrame() wire.Done {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	d := wire.Done{
		Proc:        int32(nd.cfg.ID),
		Requests:    uint64(nd.stats.Requests),
		Handoffs:    uint64(nd.stats.Handoffs),
		CtlMessages: uint64(nd.stats.CtlMessages),
	}
	for _, r := range nd.stats.Responses {
		d.Responses = append(d.Responses, r.Nanoseconds())
	}
	return d
}

// --- controller ---

// controller runs the Figure 3 machine, feeding it local inputs and
// transport deliveries. Machine effects come back through the Host
// methods below, all on this goroutine.
func (nd *node) controller() {
	defer close(nd.ctlExited)
	mach := online.NewMachine(nd.cfg.ID, nd.cfg.N, nd.cfg.ID == nd.cfg.Scapegoat, true, nd.cfg.Broadcast, (*nodeHost)(nd))
	if mach.Scapegoat() {
		nd.journalCtl(nd.ctl, obs.KindControl, obs.EvScapegoatInit, int64(nd.cfg.ID), 0, 0, nd.clk.snapshot())
	}
	for {
		select {
		case <-nd.ctlQuit:
			return
		case in := <-nd.ctlIn:
			nd.cap.append(wire.TraceOp{Op: wire.TraceRecv, Proc: int32(nd.ctl), MsgID: in.id})
			switch in.kind {
			case locMayFalse:
				mach.OnMayFalse()
			case locNowTrue:
				mach.OnNowTrue()
			}
		case rv := <-nd.tr.RecvCh():
			if rv.Epoch != nd.epoch {
				// Queued before a controlled re-execution reset: the
				// execution it belongs to is void.
				continue
			}
			m, ok := rv.Msg.(wire.Ctl)
			if !ok {
				nd.logf("node %d: dropping unexpected %T from %d", nd.cfg.ID, rv.Msg, rv.From)
				continue
			}
			nd.clk.observe(nd.cfg.ID, m.VC)
			nd.cap.append(wire.TraceOp{Op: wire.TraceRecv, Proc: int32(nd.ctl), MsgID: m.TraceID})
			mach.OnCtl(int(m.From), online.MsgKind(m.Kind), m.Gen)
		}
	}
}

// nodeHost adapts *node to online.Host. All methods run on the
// controller goroutine.
type nodeHost node

// SendCtl implements online.Host: a handoff protocol message to the
// controller co-located with application `to`, over the reliable link.
func (h *nodeHost) SendCtl(to int, k online.MsgKind, gen uint64) {
	nd := (*node)(h)
	vc := nd.clk.tick(nd.cfg.ID)
	id := nd.cap.msgID(nd.ctl)
	nd.cap.append(wire.TraceOp{Op: wire.TraceSend, Proc: int32(nd.ctl), MsgID: id})
	nd.statsMu.Lock()
	nd.stats.CtlMessages++
	nd.statsMu.Unlock()
	nd.m.ctl.Inc()
	if k == online.MsgCancel {
		nd.m.cancels.Inc()
	}
	nd.journalCtl(nd.ctl, obs.KindControl, obs.EvCtlPrefix+k.String(), int64(to), 0, int64(gen), vc)
	nd.tr.Send(to, wire.Ctl{
		// online.MsgKind and wire.CtlKind enumerate req/ack/confirm/
		// cancel in the same order; the conversion is the identity.
		Kind: wire.CtlKind(k), From: int32(nd.cfg.ID), To: int32(to),
		Gen: gen, TraceID: id, VC: vc,
	})
}

// Grant implements online.Host: permission to the co-located
// application, as a traced local message.
func (h *nodeHost) Grant() {
	nd := (*node)(h)
	id := nd.cap.msgID(nd.ctl)
	nd.cap.append(wire.TraceOp{Op: wire.TraceSend, Proc: int32(nd.ctl), MsgID: id})
	handoff := nd.handoffPending
	nd.handoffPending = false
	nd.grantCh <- grantMsg{id: id, handoff: handoff}
}

// Acquired implements online.Host: journal the anti-token transfer with
// its generation (Event.C), the field the networked chain invariant
// orders acquisitions by.
func (h *nodeHost) Acquired(from int, gen uint64) {
	nd := (*node)(h)
	nd.journalCtl(nd.ctl, obs.KindControl, obs.EvScapegoatAcquire,
		int64(nd.cfg.ID), int64(from), int64(gen), nd.clk.snapshot())
}

// Released implements online.Host: the releasing side of a handoff.
func (h *nodeHost) Released(to int) {
	nd := (*node)(h)
	nd.statsMu.Lock()
	nd.stats.Handoffs++
	nd.statsMu.Unlock()
	nd.m.handoffs.Inc()
	nd.handoffPending = true
}

// PickTarget implements online.Host: a seeded-random controller other
// than ourselves.
func (h *nodeHost) PickTarget() int {
	nd := (*node)(h)
	t := nd.rng.Intn(nd.cfg.N - 1)
	if t >= nd.cfg.ID {
		t++
	}
	return t
}

// --- application ---

// application runs the (n−1)-mutex workload of kmutex.RunScapegoat over
// the real controller: think, request permission to go false, enter the
// critical section (cs=1 — the local predicate ¬cs goes false), leave,
// report true again. Every state change and local protocol hop is
// captured as trace ops of logical process nd.app.
func (nd *node) application() {
	defer close(nd.appExited)
	rng := rand.New(rand.NewSource(nd.cfg.Seed + int64(nd.cfg.ID)*104729 + 1))
	nd.cap.appendApp(wire.TraceOp{Op: wire.TraceInit, Proc: int32(nd.app), Name: "cs", Value: 0})
	for r := 0; r < nd.cfg.Rounds; r++ {
		nd.sleepThink(rng)

		// A rogue skips the permission protocol entirely — no mayFalse,
		// no grant, no NowTrue — until a Detection/ReExec broadcast puts
		// the node back under control. Its controller keeps believing the
		// local predicate is true, which is exactly the planted violation
		// the live checker exists to catch.
		rogue := nd.cfg.Rogue && !nd.cc.controlled.Load()
		if !rogue {
			// RequestFalse: mayFalse to the controller, block on the grant.
			// Both local hops abort cleanly on restart/crash — the grant may
			// never come once the epoch is abandoned.
			begin := time.Now()
			id := nd.cap.msgID(nd.app)
			nd.cap.appendApp(wire.TraceOp{Op: wire.TraceSend, Proc: int32(nd.app), MsgID: id})
			select {
			case nd.ctlIn <- localInput{kind: locMayFalse, id: id}:
			case <-nd.abort:
				return
			}
			var g grantMsg
			select {
			case g = <-nd.grantCh:
			case <-nd.abort:
				return
			}
			nd.cap.appendApp(wire.TraceOp{Op: wire.TraceRecv, Proc: int32(nd.app), MsgID: g.id})
			d := time.Since(begin)
			nd.statsMu.Lock()
			nd.stats.Requests++
			nd.stats.Responses = append(nd.stats.Responses, d)
			nd.statsMu.Unlock()
			nd.m.requests.Inc()
			nd.m.resp.Observe(d.Nanoseconds())
			if g.handoff {
				nd.m.respHandoff.Observe(d.Nanoseconds())
			}
		}

		// Critical section: cs=1 is the false-interval of ¬cs.
		loIdx := nd.cap.appendApp(wire.TraceOp{Op: wire.TraceSet, Proc: int32(nd.app), Name: "cs", Value: 1})
		lo := nd.clk.tick(nd.cfg.ID)
		nd.journalCtl(nd.app, obs.KindSet, "cs", 1, 0, 0, nil)
		time.Sleep(nd.cfg.CS)
		hiIdx := nd.cap.appendApp(wire.TraceOp{Op: wire.TraceSet, Proc: int32(nd.app), Name: "cs", Value: 0})
		hi := nd.clk.tick(nd.cfg.ID)
		nd.journalCtl(nd.app, obs.KindSet, "cs", 0, 0, 0, nil)
		nd.cc.sendCandidate(wire.Candidate{
			Proc: int32(nd.app), LoIdx: int64(loIdx), HiIdx: int64(hiIdx), Lo: lo, Hi: hi,
		})
		// The candidate's journal twin carries the real emission time;
		// detection-latency measurement joins it (by state indices)
		// against the coordinator's detect.fired timestamp.
		nd.journalCtl(nd.app, obs.KindControl, obs.EvCandidate, int64(loIdx), int64(hiIdx), 0, hi)

		if !rogue {
			// NowTrue: the local predicate holds again (A2 at the end).
			tid := nd.cap.msgID(nd.app)
			nd.cap.appendApp(wire.TraceOp{Op: wire.TraceSend, Proc: int32(nd.app), MsgID: tid})
			select {
			case nd.ctlIn <- localInput{kind: locNowTrue, id: tid}:
			case <-nd.abort:
				return
			}
		}
	}
	close(nd.appDone)
}

// sleepThink sleeps a seeded-random think time in (Think/2, Think].
func (nd *node) sleepThink(rng *rand.Rand) {
	t := nd.cfg.Think
	if t <= 0 {
		return
	}
	half := int64(t) / 2
	time.Sleep(time.Duration(half + 1 + rng.Int63n(int64(t)-half)))
}
