package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"predctl/internal/deposet"
	"predctl/internal/obs"
	"predctl/internal/wire"
)

// Batching is the size-or-interval flush policy for a node's
// coordinator capture stream. Journal events and trace ops accumulate
// on the node and are flushed as wire.JournalBatch / wire.TraceOpBatch
// frames when MaxItems are pending or Interval elapses, whichever
// comes first — hundreds of nodes each emitting thousands of capture
// items must not mean one TCP frame (and one syscall at each end) per
// item. Zero values take the defaults below.
type Batching struct {
	// MaxItems caps the items carried per batch frame and triggers an
	// early flush when that many are pending. Default 128.
	MaxItems int
	// Interval is the flush period while below MaxItems; it bounds how
	// stale the coordinator's view can go. Default 2ms.
	Interval time.Duration
	// PerEvent disables batching: every journal event and trace op
	// rides its own frame, the pre-batching wire behavior. It exists as
	// the bench baseline and as a debugging aid (per-event frames are
	// easier to correlate with a packet capture).
	PerEvent bool
}

func (b Batching) withDefaults() Batching {
	if b.MaxItems <= 0 {
		b.MaxItems = 128
	}
	if b.Interval <= 0 {
		b.Interval = 2 * time.Millisecond
	}
	return b
}

// coordClient is a node's stream to the coordinator: Hello, then trace
// batches, forwarded journal events, candidates and Done frames out;
// Shutdown in. The stream rides plain TCP — it is exempt from the fault
// shim (perturbing the capture would test the harness, not the
// protocol) so no ARQ is layered on it.
//
// Capture traffic is batched: journal events and candidates buffer in
// pendJournal / pendCands and trace ops stay in the node's capture
// until the flusher goroutine drains all three on the Batching policy.
// Control frames (Done, Shutdown bye) are latency-relevant and
// once-per-run, so they bypass the batcher and write through
// immediately.
type coordClient struct {
	conn       net.Conn
	mu         sync.Mutex // serializes writes
	seq        uint64
	opt        Timeouts
	batch      Batching
	wm         wireMeters
	logf       func(string, ...any)
	shutdownCh chan struct{} // closed when the coordinator says stop (or vanishes)
	closeOnce  sync.Once

	pendMu      sync.Mutex
	pendJournal []wire.JournalEvent
	pendCands   []wire.Candidate

	take      func() []wire.TraceOp // drains the node's capture; set by startFlusher
	kick      chan struct{}         // cap 1: a size threshold was crossed
	flushQuit chan struct{}
	flushDone chan struct{}
}

// dialCoord connects to the coordinator, retrying while it comes up.
func dialCoord(addr string, id, n int, batch Batching, wm wireMeters, opt Timeouts, logf func(string, ...any)) (*coordClient, error) {
	var conn net.Conn
	var err error
	deadline := time.Now().Add(opt.DialTimeout * 5)
	for {
		conn, err = net.DialTimeout("tcp", addr, opt.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node %d: coordinator %s: %w", id, addr, err)
		}
		time.Sleep(opt.BackoffMin)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &coordClient{
		conn: conn, opt: opt, batch: batch.withDefaults(), wm: wm, logf: logf,
		shutdownCh: make(chan struct{}),
		kick:       make(chan struct{}, 1),
		flushQuit:  make(chan struct{}),
		flushDone:  make(chan struct{}),
	}
	cc.send(wire.Hello{From: int32(id), N: int32(n)})
	go cc.reader(id)
	return cc, nil
}

// reader watches for the coordinator's Shutdown; a broken stream counts
// as one (a node without its coordinator has nowhere to report to).
func (cc *coordClient) reader(id int) {
	br := bufReader(cc.conn)
	for {
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				cc.logf("node %d: coordinator stream: %v", id, err)
			}
			cc.signalShutdown()
			return
		}
		if _, ok := m.(wire.Shutdown); ok {
			cc.signalShutdown()
			return
		}
	}
}

func (cc *coordClient) signalShutdown() {
	cc.closeOnce.Do(func() { close(cc.shutdownCh) })
}

// send writes one frame through the pooled encode path; errors are
// logged, not fatal — the run is ending anyway if the coordinator is
// gone, via reader above.
func (cc *coordClient) send(m wire.Msg) { cc.sendItems(m, 1) }

// sendItems is send with the frame's capture-item count, feeding the
// batch-size histogram (per-event frames observe 1, batch frames the
// batch length — the distribution the cluster bench reports).
func (cc *coordClient) sendItems(m wire.Msg, items int) {
	b := wire.GetBuffer()
	cc.mu.Lock()
	cc.seq++
	b.B = wire.AppendFrame(b.B[:0], cc.seq, m)
	cc.wm.frames.Inc()
	cc.wm.bytes.Add(int64(len(b.B)))
	cc.wm.batch.Observe(int64(items))
	cc.conn.SetWriteDeadline(time.Now().Add(cc.opt.WriteTimeout))
	if _, err := cc.conn.Write(b.B); err != nil && !errors.Is(err, net.ErrClosed) {
		cc.logf("node: coordinator write: %v", err)
	}
	cc.mu.Unlock()
	wire.PutBuffer(b)
}

// sendJournal forwards one journal event — immediately in PerEvent
// mode, else into the pending batch (kicking the flusher at the size
// threshold). Nil-safe like the journal itself so instrumentation
// sites need no guards.
func (cc *coordClient) sendJournal(e obs.Event) {
	if cc == nil {
		return
	}
	we := wire.JournalEvent{
		At: e.At, Proc: int32(e.Proc), Kind: uint8(e.Kind), Name: e.Name,
		A: e.A, B: e.B, C: e.C, VC: e.VC,
	}
	if cc.batch.PerEvent {
		cc.send(we)
		return
	}
	cc.pendMu.Lock()
	cc.pendJournal = append(cc.pendJournal, we)
	full := len(cc.pendJournal) >= cc.batch.MaxItems
	cc.pendMu.Unlock()
	if full {
		cc.kickFlush()
	}
}

// sendCandidate forwards one monitor candidate — immediately in
// PerEvent mode, else into the pending batch. Candidates are consumed
// only at assembly time, so deferring them to the next flush loses
// nothing; at one candidate per node per round they otherwise dominate
// the unbatchable frame count.
func (cc *coordClient) sendCandidate(v wire.Candidate) {
	if cc.batch.PerEvent {
		cc.send(v)
		return
	}
	cc.pendMu.Lock()
	cc.pendCands = append(cc.pendCands, v)
	full := len(cc.pendCands) >= cc.batch.MaxItems
	cc.pendMu.Unlock()
	if full {
		cc.kickFlush()
	}
}

// kickFlush nudges the flusher ahead of its interval tick.
func (cc *coordClient) kickFlush() {
	select {
	case cc.kick <- struct{}{}:
	default:
	}
}

// startFlusher begins periodic draining of the journal pending buffer
// and the node's capture (via take) onto the stream.
func (cc *coordClient) startFlusher(take func() []wire.TraceOp) {
	cc.take = take
	go cc.flusher()
}

func (cc *coordClient) flusher() {
	defer close(cc.flushDone)
	tick := time.NewTicker(cc.batch.Interval)
	defer tick.Stop()
	for {
		select {
		case <-cc.flushQuit:
			return
		case <-cc.kick:
		case <-tick.C:
		}
		cc.flush()
	}
}

// stopFlusher ends the flusher goroutine and drains everything still
// pending, so the stream is complete before the final Done and bye. It
// is a no-op if startFlusher was never called.
func (cc *coordClient) stopFlusher() {
	if cc.take == nil {
		return
	}
	close(cc.flushQuit)
	<-cc.flushDone
	cc.flush()
}

// flush drains pending journal events and captured trace ops as batch
// frames of at most MaxItems items each (in PerEvent mode, as one
// frame per item). Called from the flusher goroutine and, once it has
// stopped, from stopFlusher.
func (cc *coordClient) flush() {
	cc.pendMu.Lock()
	events := cc.pendJournal
	cands := cc.pendCands
	cc.pendJournal, cc.pendCands = nil, nil
	cc.pendMu.Unlock()
	for len(events) > 0 {
		n := min(len(events), cc.batch.MaxItems)
		cc.sendItems(wire.JournalBatch{Events: events[:n]}, n)
		events = events[n:]
	}
	for len(cands) > 0 {
		n := min(len(cands), cc.batch.MaxItems)
		cc.sendItems(wire.CandidateBatch{Cands: cands[:n]}, n)
		cands = cands[n:]
	}
	ops := cc.take()
	if cc.batch.PerEvent {
		for _, op := range ops {
			cc.send(wire.Trace{Ops: []wire.TraceOp{op}})
		}
		return
	}
	for len(ops) > 0 {
		n := min(len(ops), cc.batch.MaxItems)
		cc.sendItems(wire.TraceOpBatch{Ops: ops[:n]}, n)
		ops = ops[n:]
	}
}

func (cc *coordClient) close() { cc.conn.Close() }

// CoordConfig parameterizes the cluster coordinator.
type CoordConfig struct {
	N        int
	Addr     string       // listen address (ignored when Listener is set)
	Listener net.Listener // optional pre-bound listener
	// Journal receives the merged cluster journal: every control event
	// forwarded by every node, plus candidate reports. May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Timeouts     Timeouts
	Logf         func(string, ...any)
}

// Result is a completed cluster run as the coordinator saw it.
type Result struct {
	// Deposet is the captured run — apps 0..n-1, controllers n..2n-1,
	// the layout sim traces use — consumable by replay/detect/offline.
	Deposet *deposet.Deposet
	// Stats holds each node's final tallies.
	Stats []Stats
	// Candidates counts monitor candidate reports received.
	Candidates int
}

// nodeStream is one connection's staging buffer: trace ops accumulate
// here in arrival order, touched only by that connection's handler
// goroutine, and are merged by process at Wait — so the hot ingest
// path never contends on the coordinator mutex. Per-process order
// survives the merge because each logical process's ops come from
// exactly one node's stream.
type nodeStream struct {
	id  int
	ops []wire.TraceOp
}

// Coordinator collects the capture streams of a node cluster and
// reassembles them into a deposet trace plus a merged journal. Protocol
// flow: nodes connect and stream; after all N report Done the
// coordinator broadcasts Shutdown; each node final-flushes and echoes
// Shutdown as its bye; when every bye is in, Wait assembles the trace.
type Coordinator struct {
	n       int
	ln      net.Listener
	journal *obs.Journal
	cands   *obs.Counter
	opt     Timeouts
	logf    func(string, ...any)

	mu         sync.Mutex
	streams    []*nodeStream // per-connection staging, merged at Wait
	stats      []Stats
	candidates int
	doneSeen   []bool
	doneCount  int
	byeCount   int
	conns      map[int]net.Conn

	shutdownOnce sync.Once
	allByes      chan struct{}
	closed       chan struct{}
	wg           sync.WaitGroup
}

// NewCoordinator starts a coordinator for an n-node cluster.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: coordinator needs n ≥ 2, got %d", cfg.N)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("node: coordinator listen %s: %w", cfg.Addr, err)
		}
	}
	c := &Coordinator{
		n:        cfg.N,
		ln:       ln,
		journal:  cfg.Journal,
		cands:    cfg.Reg.Counter("predctl_monitor_candidates_total", cfg.MetricLabels...),
		opt:      cfg.Timeouts.withDefaults(),
		logf:     logf,
		stats:    make([]Stats, cfg.N),
		doneSeen: make([]bool, cfg.N),
		conns:    map[int]net.Conn{},
		allByes:  make(chan struct{}),
		closed:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every node's capture stream completed (or timeout),
// then merges the per-connection staging buffers by logical process and
// assembles the run.
func (c *Coordinator) Wait(timeout time.Duration) (*Result, error) {
	select {
	case <-c.allByes:
	case <-time.After(timeout):
		c.Close()
		c.mu.Lock()
		done, byes := c.doneCount, c.byeCount
		c.mu.Unlock()
		return nil, fmt.Errorf("node: coordinator timed out after %v (%d/%d done, %d/%d byes)",
			timeout, done, c.n, byes, c.n)
	}
	c.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := assemble(c.n, c.mergeStaging())
	if err != nil {
		return nil, err
	}
	return &Result{
		Deposet:    d,
		Stats:      append([]Stats(nil), c.stats...),
		Candidates: c.candidates,
	}, nil
}

// mergeStaging buckets every staged trace op by logical process.
// Caller holds c.mu; the staging buffers themselves are quiescent by
// now (every handler synchronized through c.mu when counting its bye).
func (c *Coordinator) mergeStaging() [][]wire.TraceOp {
	counts := make([]int, 2*c.n)
	for _, st := range c.streams {
		for i := range st.ops {
			if p := int(st.ops[i].Proc); p >= 0 && p < 2*c.n {
				counts[p]++
			}
		}
	}
	byProc := make([][]wire.TraceOp, 2*c.n)
	for p, n := range counts {
		byProc[p] = make([]wire.TraceOp, 0, n)
	}
	for _, st := range c.streams {
		for _, op := range st.ops {
			p := int(op.Proc)
			if p < 0 || p >= 2*c.n {
				c.logf("coordinator: node %d: trace op for process %d dropped", st.id, p)
				continue
			}
			byProc[p] = append(byProc[p], op)
		}
	}
	return byProc
}

// Close shuts the coordinator's listener and connections down.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
		return
	default:
		close(c.closed)
	}
	c.ln.Close()
	c.mu.Lock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.logf("coordinator: accept: %v", err)
			}
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleNode(conn)
		}()
	}
}

// handleNode serves one node's capture stream into its own staging
// buffer.
func (c *Coordinator) handleNode(conn net.Conn) {
	defer conn.Close()
	br := bufReader(conn)
	conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	_, first, err := wire.ReadFrame(br)
	if err != nil {
		c.logf("coordinator: handshake: %v", err)
		return
	}
	hello, ok := first.(wire.Hello)
	if !ok || int(hello.N) != c.n || hello.From < 0 || int(hello.From) >= c.n {
		c.logf("coordinator: bad hello %#v", first)
		return
	}
	id := int(hello.From)
	st := &nodeStream{id: id}
	c.mu.Lock()
	c.conns[id] = conn
	c.streams = append(c.streams, st)
	c.mu.Unlock()
	for {
		// Generous read deadline: nodes stream continuously while alive,
		// and a wedged node should fail the run loudly, not hang it.
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			select {
			case <-c.closed:
			default:
				if !errors.Is(err, net.ErrClosed) {
					c.logf("coordinator: node %d stream: %v", id, err)
				}
			}
			return
		}
		if bye := c.ingest(id, st, m); bye {
			return
		}
	}
}

// ingest folds one frame from node id into the coordinator state,
// reporting whether it was the node's final bye. Trace traffic — the
// volume — lands in the connection's own staging buffer and the
// journal (which has its own lock); only the rare coordination frames
// (Candidate, Done, Shutdown) touch c.mu.
func (c *Coordinator) ingest(id int, st *nodeStream, m wire.Msg) (bye bool) {
	switch v := m.(type) {
	case wire.Trace:
		st.ops = append(st.ops, v.Ops...)
	case wire.TraceOpBatch:
		st.ops = append(st.ops, v.Ops...)
	case wire.JournalEvent:
		c.journal.Append(obs.Event{
			At: v.At, Proc: int(v.Proc), Kind: obs.Kind(v.Kind), Name: v.Name,
			A: v.A, B: v.B, C: v.C, VC: v.VC,
		})
	case wire.JournalBatch:
		for _, e := range v.Events {
			c.journal.Append(obs.Event{
				At: e.At, Proc: int(e.Proc), Kind: obs.Kind(e.Kind), Name: e.Name,
				A: e.A, B: e.B, C: e.C, VC: e.VC,
			})
		}
	case wire.Candidate:
		c.ingestCandidate(v)
	case wire.CandidateBatch:
		for _, cand := range v.Cands {
			c.ingestCandidate(cand)
		}
	case wire.Done:
		c.mu.Lock()
		c.stats[id] = Stats{
			Requests:    int(v.Requests),
			Handoffs:    int(v.Handoffs),
			CtlMessages: int(v.CtlMessages),
		}
		for _, ns := range v.Responses {
			c.stats[id].Responses = append(c.stats[id].Responses, time.Duration(ns))
		}
		first := !c.doneSeen[id]
		if first {
			c.doneSeen[id] = true
			c.doneCount++
		}
		all := c.doneCount == c.n
		c.mu.Unlock()
		if first && all {
			c.broadcastShutdown()
		}
	case wire.Shutdown:
		c.mu.Lock()
		c.byeCount++
		all := c.byeCount == c.n
		c.mu.Unlock()
		if all {
			close(c.allByes)
		}
		return true
	default:
		c.logf("coordinator: node %d: unexpected %T", id, m)
	}
	return false
}

func (c *Coordinator) ingestCandidate(v wire.Candidate) {
	c.cands.Inc()
	c.mu.Lock()
	c.candidates++
	c.mu.Unlock()
	c.journal.Append(obs.Event{
		Proc: int(v.Proc), Kind: obs.KindControl, Name: "monitor.candidate",
		A: v.LoIdx, B: v.HiIdx, VC: v.Hi,
	})
}

// IngestBench replays pre-encoded frame bodies through the
// coordinator's decode-and-stage path — exactly what handleNode does
// per frame, minus the socket — so the cluster bench can measure
// ingest allocations per trace op without standing up a listener. It
// returns the number of trace ops staged.
func IngestBench(n int, journal *obs.Journal, bodies [][]byte) (int, error) {
	c := &Coordinator{
		n: n, journal: journal, logf: func(string, ...any) {},
		stats: make([]Stats, n), doneSeen: make([]bool, n),
	}
	st := &nodeStream{id: 0}
	for _, body := range bodies {
		_, m, err := wire.DecodeBody(body)
		if err != nil {
			return 0, err
		}
		c.ingest(0, st, m)
	}
	return len(st.ops), nil
}

// broadcastShutdown tells every node the cluster is done. Exactly one
// broadcast per run; it is the only coordinator→node write, so no
// per-connection write serialization is needed.
func (c *Coordinator) broadcastShutdown() {
	c.shutdownOnce.Do(func() {
		c.mu.Lock()
		conns := make([]net.Conn, 0, len(c.conns))
		for _, conn := range c.conns {
			conns = append(conns, conn)
		}
		c.mu.Unlock()
		for _, conn := range conns {
			conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
			if err := wire.WriteFrame(conn, 0, wire.Shutdown{}); err != nil {
				c.logf("coordinator: shutdown write: %v", err)
			}
		}
	})
}
