package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"predctl/internal/deposet"
	"predctl/internal/obs"
	"predctl/internal/wire"
)

// coordClient is a node's stream to the coordinator: Hello, then trace
// batches, forwarded journal events, candidates and Done frames out;
// Shutdown in. The stream rides plain TCP — it is exempt from the fault
// shim (perturbing the capture would test the harness, not the
// protocol) so no ARQ is layered on it.
type coordClient struct {
	conn       net.Conn
	mu         sync.Mutex // serializes writes
	seq        uint64
	opt        Timeouts
	logf       func(string, ...any)
	shutdownCh chan struct{} // closed when the coordinator says stop (or vanishes)
	closeOnce  sync.Once
}

// dialCoord connects to the coordinator, retrying while it comes up.
func dialCoord(addr string, id, n int, opt Timeouts, logf func(string, ...any)) (*coordClient, error) {
	var conn net.Conn
	var err error
	deadline := time.Now().Add(opt.DialTimeout * 5)
	for {
		conn, err = net.DialTimeout("tcp", addr, opt.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node %d: coordinator %s: %w", id, addr, err)
		}
		time.Sleep(opt.BackoffMin)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &coordClient{conn: conn, opt: opt, logf: logf, shutdownCh: make(chan struct{})}
	cc.send(wire.Hello{From: int32(id), N: int32(n)})
	go cc.reader(id)
	return cc, nil
}

// reader watches for the coordinator's Shutdown; a broken stream counts
// as one (a node without its coordinator has nowhere to report to).
func (cc *coordClient) reader(id int) {
	br := bufReader(cc.conn)
	for {
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				cc.logf("node %d: coordinator stream: %v", id, err)
			}
			cc.signalShutdown()
			return
		}
		if _, ok := m.(wire.Shutdown); ok {
			cc.signalShutdown()
			return
		}
	}
}

func (cc *coordClient) signalShutdown() {
	cc.closeOnce.Do(func() { close(cc.shutdownCh) })
}

// send writes one frame; errors are logged, not fatal — the run is
// ending anyway if the coordinator is gone, via reader above.
func (cc *coordClient) send(m wire.Msg) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.seq++
	cc.conn.SetWriteDeadline(time.Now().Add(cc.opt.WriteTimeout))
	if err := wire.WriteFrame(cc.conn, cc.seq, m); err != nil && !errors.Is(err, net.ErrClosed) {
		cc.logf("node: coordinator write: %v", err)
	}
}

// sendJournal forwards one journal event. Nil-safe like the journal
// itself so instrumentation sites need no guards.
func (cc *coordClient) sendJournal(e obs.Event) {
	if cc == nil {
		return
	}
	cc.send(wire.JournalEvent{
		At: e.At, Proc: int32(e.Proc), Kind: uint8(e.Kind), Name: e.Name,
		A: e.A, B: e.B, C: e.C, VC: e.VC,
	})
}

func (cc *coordClient) close() { cc.conn.Close() }

// CoordConfig parameterizes the cluster coordinator.
type CoordConfig struct {
	N        int
	Addr     string       // listen address (ignored when Listener is set)
	Listener net.Listener // optional pre-bound listener
	// Journal receives the merged cluster journal: every control event
	// forwarded by every node, plus candidate reports. May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Timeouts     Timeouts
	Logf         func(string, ...any)
}

// Result is a completed cluster run as the coordinator saw it.
type Result struct {
	// Deposet is the captured run — apps 0..n-1, controllers n..2n-1,
	// the layout sim traces use — consumable by replay/detect/offline.
	Deposet *deposet.Deposet
	// Stats holds each node's final tallies.
	Stats []Stats
	// Candidates counts monitor candidate reports received.
	Candidates int
}

// Coordinator collects the capture streams of a node cluster and
// reassembles them into a deposet trace plus a merged journal. Protocol
// flow: nodes connect and stream; after all N report Done the
// coordinator broadcasts Shutdown; each node final-flushes and echoes
// Shutdown as its bye; when every bye is in, Wait assembles the trace.
type Coordinator struct {
	n       int
	ln      net.Listener
	journal *obs.Journal
	cands   *obs.Counter
	opt     Timeouts
	logf    func(string, ...any)

	mu         sync.Mutex
	ops        [][]wire.TraceOp // by logical process 0..2n-1
	stats      []Stats
	candidates int
	doneSeen   []bool
	doneCount  int
	byeCount   int
	conns      map[int]net.Conn

	shutdownOnce sync.Once
	allByes      chan struct{}
	closed       chan struct{}
	wg           sync.WaitGroup
}

// NewCoordinator starts a coordinator for an n-node cluster.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: coordinator needs n ≥ 2, got %d", cfg.N)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("node: coordinator listen %s: %w", cfg.Addr, err)
		}
	}
	c := &Coordinator{
		n:        cfg.N,
		ln:       ln,
		journal:  cfg.Journal,
		cands:    cfg.Reg.Counter("predctl_monitor_candidates_total", cfg.MetricLabels...),
		opt:      cfg.Timeouts.withDefaults(),
		logf:     logf,
		ops:      make([][]wire.TraceOp, 2*cfg.N),
		stats:    make([]Stats, cfg.N),
		doneSeen: make([]bool, cfg.N),
		conns:    map[int]net.Conn{},
		allByes:  make(chan struct{}),
		closed:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every node's capture stream completed (or timeout),
// then assembles and returns the run.
func (c *Coordinator) Wait(timeout time.Duration) (*Result, error) {
	select {
	case <-c.allByes:
	case <-time.After(timeout):
		c.Close()
		c.mu.Lock()
		done, byes := c.doneCount, c.byeCount
		c.mu.Unlock()
		return nil, fmt.Errorf("node: coordinator timed out after %v (%d/%d done, %d/%d byes)",
			timeout, done, c.n, byes, c.n)
	}
	c.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := assemble(c.n, c.ops)
	if err != nil {
		return nil, err
	}
	return &Result{
		Deposet:    d,
		Stats:      append([]Stats(nil), c.stats...),
		Candidates: c.candidates,
	}, nil
}

// Close shuts the coordinator's listener and connections down.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
		return
	default:
		close(c.closed)
	}
	c.ln.Close()
	c.mu.Lock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.logf("coordinator: accept: %v", err)
			}
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleNode(conn)
		}()
	}
}

// handleNode serves one node's capture stream.
func (c *Coordinator) handleNode(conn net.Conn) {
	defer conn.Close()
	br := bufReader(conn)
	conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	_, first, err := wire.ReadFrame(br)
	if err != nil {
		c.logf("coordinator: handshake: %v", err)
		return
	}
	hello, ok := first.(wire.Hello)
	if !ok || int(hello.N) != c.n || hello.From < 0 || int(hello.From) >= c.n {
		c.logf("coordinator: bad hello %#v", first)
		return
	}
	id := int(hello.From)
	c.mu.Lock()
	c.conns[id] = conn
	c.mu.Unlock()
	for {
		// Generous read deadline: nodes stream continuously while alive,
		// and a wedged node should fail the run loudly, not hang it.
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			select {
			case <-c.closed:
			default:
				if !errors.Is(err, net.ErrClosed) {
					c.logf("coordinator: node %d stream: %v", id, err)
				}
			}
			return
		}
		if bye := c.consume(id, m); bye {
			return
		}
	}
}

// consume folds one frame from node id into the coordinator state,
// reporting whether it was the node's final bye.
func (c *Coordinator) consume(id int, m wire.Msg) (bye bool) {
	switch v := m.(type) {
	case wire.Trace:
		c.mu.Lock()
		for _, op := range v.Ops {
			p := int(op.Proc)
			if p < 0 || p >= 2*c.n {
				c.logf("coordinator: node %d: trace op for process %d dropped", id, p)
				continue
			}
			c.ops[p] = append(c.ops[p], op)
		}
		c.mu.Unlock()
	case wire.JournalEvent:
		c.journal.Append(obs.Event{
			At: v.At, Proc: int(v.Proc), Kind: obs.Kind(v.Kind), Name: v.Name,
			A: v.A, B: v.B, C: v.C, VC: v.VC,
		})
	case wire.Candidate:
		c.cands.Inc()
		c.mu.Lock()
		c.candidates++
		c.mu.Unlock()
		c.journal.Append(obs.Event{
			Proc: int(v.Proc), Kind: obs.KindControl, Name: "monitor.candidate",
			A: v.LoIdx, B: v.HiIdx, VC: v.Hi,
		})
	case wire.Done:
		c.mu.Lock()
		c.stats[id] = Stats{
			Requests:    int(v.Requests),
			Handoffs:    int(v.Handoffs),
			CtlMessages: int(v.CtlMessages),
		}
		for _, ns := range v.Responses {
			c.stats[id].Responses = append(c.stats[id].Responses, time.Duration(ns))
		}
		first := !c.doneSeen[id]
		if first {
			c.doneSeen[id] = true
			c.doneCount++
		}
		all := c.doneCount == c.n
		c.mu.Unlock()
		if first && all {
			c.broadcastShutdown()
		}
	case wire.Shutdown:
		c.mu.Lock()
		c.byeCount++
		all := c.byeCount == c.n
		c.mu.Unlock()
		if all {
			close(c.allByes)
		}
		return true
	default:
		c.logf("coordinator: node %d: unexpected %T", id, m)
	}
	return false
}

// broadcastShutdown tells every node the cluster is done. Exactly one
// broadcast per run; it is the only coordinator→node write, so no
// per-connection write serialization is needed.
func (c *Coordinator) broadcastShutdown() {
	c.shutdownOnce.Do(func() {
		c.mu.Lock()
		conns := make([]net.Conn, 0, len(c.conns))
		for _, conn := range c.conns {
			conns = append(conns, conn)
		}
		c.mu.Unlock()
		for _, conn := range conns {
			conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
			if err := wire.WriteFrame(conn, 0, wire.Shutdown{}); err != nil {
				c.logf("coordinator: shutdown write: %v", err)
			}
		}
	})
}
