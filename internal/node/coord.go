package node

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/livedetect"
	"predctl/internal/obs"
	"predctl/internal/offline"
	"predctl/internal/predicate"
	"predctl/internal/store"
	"predctl/internal/wire"
)

// Batching is the size-or-interval flush policy for a node's
// coordinator capture stream. Journal events and trace ops accumulate
// on the node and are flushed as wire.JournalBatch / wire.TraceOpBatch
// frames when MaxItems are pending or Interval elapses, whichever
// comes first — hundreds of nodes each emitting thousands of capture
// items must not mean one TCP frame (and one syscall at each end) per
// item. Zero values take the defaults below.
type Batching struct {
	// MaxItems caps the items carried per batch frame and triggers an
	// early flush when that many are pending. Default 128.
	MaxItems int
	// Interval is the flush period while below MaxItems; it bounds how
	// stale the coordinator's view can go. Default 2ms.
	Interval time.Duration
	// PerEvent disables batching: every journal event and trace op
	// rides its own frame, the pre-batching wire behavior. It exists as
	// the bench baseline and as a debugging aid (per-event frames are
	// easier to correlate with a packet capture).
	PerEvent bool
	// SnapshotEvery emits a wire.MetricsSnapshot (a cumulative dump of
	// the node's registry) every that-many flusher passes, riding the
	// existing batching cadence — the coordinator's live merged registry
	// and `pctl top` feed off it. Default 25 (≈ 50ms at the default 2ms
	// interval); negative disables snapshot streaming.
	SnapshotEvery int
}

// WithDefaults resolves unset fields to their defaults — the exact
// policy a node's capture batcher runs, exported so tooling (bench
// notes, CLI help) can describe the effective config instead of
// hand-writing it.
func (b Batching) WithDefaults() Batching { return b.withDefaults() }

func (b Batching) withDefaults() Batching {
	if b.MaxItems <= 0 {
		b.MaxItems = 128
	}
	if b.Interval <= 0 {
		b.Interval = 2 * time.Millisecond
	}
	if b.SnapshotEvery == 0 {
		b.SnapshotEvery = 25
	}
	return b
}

// coordClient is a node's stream to the coordinator: Hello, then trace
// batches, forwarded journal events, candidates, Done and bye frames
// out; Shutdown, Restart and Commit in.
//
// The stream is a session, not a connection. Every sequenced frame is
// retained in an in-memory session log (sent) for the life of the run,
// so a broken connection is never a truncated capture: the session
// goroutine redials with capped exponential backoff, offers
// wire.Resume{Epoch}, and retransmits everything past the
// coordinator's ResumeAck.Cum. Because the log is never pruned, even a
// coordinator that crashed and restarted with no session state
// (Cum = 0) gets the complete stream replayed. A write error of any
// kind drops the connection immediately — the invariant is that the
// bytes on the wire are always a prefix of the log, so the
// coordinator's cumulative-sequence dedup can never see a gap.
//
// Capture traffic is batched: journal events and candidates buffer in
// pendJournal / pendCands and trace ops stay in the node's capture
// until the flusher goroutine drains all three on the Batching policy.
// Control frames (Done, Shutdown bye) are latency-relevant and
// once-per-epoch, so they bypass the batcher and write through
// immediately.
type coordClient struct {
	id, n int
	addr  string
	opt   Timeouts
	batch Batching
	wm    wireMeters
	logf  func(string, ...any)
	parts *partitions

	shutdownEv chan uint32   // latest Shutdown{Epoch} from the coordinator (latest wins)
	restartCh  chan uint32   // latest Restart/ResumeAck epoch from the coordinator
	controlled atomic.Bool   // a Detection/ReExec arrived: rogue behavior must stop
	commitCh   chan struct{} // closed on the coordinator's Commit: the run is sealed
	commitOnce sync.Once
	quitOnce   sync.Once
	quit       chan struct{} // closed by close(): stop the session goroutine
	sessDone   chan struct{}

	mu    sync.Mutex     // serializes stream writes; guards conn, sent, epoch
	conn  net.Conn       // nil while disconnected (frames buffer in sent)
	sent  []*wire.Buffer // session log: frame i carries seq i+1
	epoch uint32

	// flushMu serializes flush passes with epoch transitions, so no
	// stale capture frame can land on the stream after the EpochMark
	// that voids its epoch.
	flushMu     sync.Mutex
	pendMu      sync.Mutex
	pendJournal []wire.JournalEvent
	pendCands   []wire.Candidate

	take      func() []wire.TraceOp // drains the node's capture; flushMu-guarded
	kick      chan struct{}         // cap 1: a size threshold was crossed
	flushing  bool                  // a flusher goroutine is running; flushMu-guarded
	flushQuit chan struct{}
	flushDone chan struct{}

	// snap, when non-nil, dumps the node's registry for MetricsSnapshot
	// streaming. Set once before the flusher starts; start anchors the
	// snapshots' AtNs timestamps.
	snap  func() []wire.MetricPoint
	start time.Time

	// Session-machinery hooks, set only by the relay's uplink (nil on a
	// node's stream): mkResume replaces the Resume handshake frame,
	// onMsg intercepts inbound frames before the node-oriented handling
	// (return true to consume), and onResumeAck observes every resume
	// handshake's ack. They let the relay reuse the session log,
	// redial/backoff and retransmit machinery unchanged.
	mkResume    func(epoch uint32) wire.Msg
	onMsg       func(m wire.Msg) bool
	onResumeAck func(ack wire.ResumeAck)
}

// dialCoord connects to the coordinator, retrying with capped
// exponential backoff (the same policy as mesh redials) until
// opt.CoordDeadline, so a coordinator that is slow to come up — or
// restarting — is waited for rather than fataled on.
func dialCoord(addr string, id, n int, batch Batching, wm wireMeters, opt Timeouts, parts *partitions, logf func(string, ...any)) (*coordClient, error) {
	cc := &coordClient{
		id: id, n: n, addr: addr,
		opt: opt, batch: batch.withDefaults(), wm: wm, logf: logf, parts: parts,
		shutdownEv: make(chan uint32, 1),
		restartCh:  make(chan uint32, 1),
		commitCh:   make(chan struct{}),
		quit:       make(chan struct{}),
		sessDone:   make(chan struct{}),
		kick:       make(chan struct{}, 1),
	}
	conn, err := cc.dialOnce(wire.Hello{From: int32(id), N: int32(n)})
	if err != nil {
		return nil, fmt.Errorf("node %d: coordinator %s: %w", id, addr, err)
	}
	cc.conn = conn
	go cc.session(conn, bufReader(conn))
	return cc, nil
}

// dialOnce runs one dial campaign: dial until opt.CoordDeadline with
// backoffDelay pacing, write the handshake frame, and return the
// connection. A partition window severing this node's coordinator
// stream pauses the campaign (the clock keeps running).
func (cc *coordClient) dialOnce(handshake wire.Msg) (net.Conn, error) {
	deadline := time.Now().Add(cc.opt.CoordDeadline)
	fails := 0
	var lastErr error
	for {
		select {
		case <-cc.quit:
			return nil, net.ErrClosed
		default:
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = errors.New("partitioned for the whole campaign")
			}
			return nil, fmt.Errorf("unreachable for %v: %w", cc.opt.CoordDeadline, lastErr)
		}
		if cc.parts.coordSevered(cc.id, time.Now()) {
			cc.pause(backoffDelay(cc.opt, 0))
			continue
		}
		conn, err := net.DialTimeout("tcp", cc.addr, cc.opt.DialTimeout)
		if err != nil {
			lastErr = err
			cc.pause(backoffDelay(cc.opt, fails))
			fails++
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		conn.SetWriteDeadline(time.Now().Add(cc.opt.WriteTimeout))
		if err := wire.WriteFrame(conn, 0, handshake); err != nil {
			conn.Close()
			lastErr = err
			cc.pause(backoffDelay(cc.opt, fails))
			fails++
			continue
		}
		return conn, nil
	}
}

// pause sleeps d or until close() interrupts.
func (cc *coordClient) pause(d time.Duration) {
	select {
	case <-cc.quit:
	case <-time.After(d):
	}
}

// session is the stream's lifecycle goroutine: it reads the current
// connection until it breaks, then resumes the session on a fresh one,
// forever — until close() or a failed resume campaign. Only resume
// failure is terminal: that is the hard, logged error that replaces
// the old silent capture truncation.
func (cc *coordClient) session(conn net.Conn, br *bufio.Reader) {
	defer close(cc.sessDone)
	for {
		cc.readLoop(conn, br)
		select {
		case <-cc.quit:
			return
		default:
		}
		cc.dropConn(conn)
		var err error
		conn, br, err = cc.resume()
		if err != nil {
			select {
			case <-cc.quit:
			default:
				// Terminal: nothing will ever install a connection again.
				// The closed sessDone (this function's defer) is what wakes
				// the epoch loop out of any wait.
				cc.logf("node %d: coordinator session lost (%v); capture stream truncated", cc.id, err)
			}
			return
		}
	}
}

// readLoop consumes coordinator frames until the connection errors.
// Idle-deadline renewals double as the partition probe: a severed
// stream is torn down even when no capture traffic would touch it.
func (cc *coordClient) readLoop(conn net.Conn, br *bufio.Reader) {
	for {
		conn.SetReadDeadline(time.Now().Add(cc.opt.IdleTimeout))
		_, m, err := wire.ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if cc.parts.coordSevered(cc.id, time.Now()) {
					return // sever: redial after the window heals
				}
				continue
			}
			select {
			case <-cc.quit:
			case <-cc.commitCh:
				// Post-commit breaks are expected (the coordinator tears
				// down once the run is sealed); don't spam the log.
			default:
				if !errors.Is(err, net.ErrClosed) {
					cc.logf("node %d: coordinator stream: %v", cc.id, err)
				}
			}
			return
		}
		if cc.onMsg != nil && cc.onMsg(m) {
			continue
		}
		switch v := m.(type) {
		case wire.Shutdown:
			cc.pushShutdown(v.Epoch)
		case wire.Commit:
			cc.signalCommit()
		case wire.Restart:
			cc.pushRestart(v.Epoch)
		case wire.Detection:
			// The coordinator confirmed possibly(¬B): whatever this node
			// does next happens under active debugging, so a planted rogue
			// reverts to controlled behavior from here on.
			cc.controlled.Store(true)
		case wire.ReExec:
			// A detection-triggered controlled re-execution: same epoch
			// transition as a crash-recovery Restart, but the node also
			// knows it runs under the detection's control strategy.
			cc.controlled.Store(true)
			cc.pushRestart(v.Epoch)
		case wire.ResumeAck:
			// Only expected during resume's handshake; a stray one is
			// harmless.
		default:
			cc.logf("node %d: coordinator sent unexpected %T", cc.id, m)
		}
	}
}

// resume re-establishes the session: dial, offer Resume{Epoch}, read
// ResumeAck, retransmit everything past Cum, and install the
// connection — the retransmit and the install happen under cc.mu, so
// concurrent sendItems cannot interleave a newer frame before the
// backlog and the coordinator always sees a contiguous sequence.
func (cc *coordClient) resume() (net.Conn, *bufio.Reader, error) {
	cc.mu.Lock()
	e := cc.epoch
	cc.mu.Unlock()
	handshake := wire.Msg(wire.Resume{From: int32(cc.id), N: int32(cc.n), Epoch: e})
	if cc.mkResume != nil {
		handshake = cc.mkResume(e)
	}
	conn, err := cc.dialOnce(handshake)
	if err != nil {
		return nil, nil, err
	}
	br := bufReader(conn)
	conn.SetReadDeadline(time.Now().Add(cc.opt.DialTimeout))
	_, m, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("resume handshake: %w", err)
	}
	ack, ok := m.(wire.ResumeAck)
	if !ok {
		conn.Close()
		return nil, nil, fmt.Errorf("resume handshake: got %T, want ResumeAck", m)
	}
	if cc.onResumeAck != nil {
		cc.onResumeAck(ack)
	}
	if ack.Epoch != e {
		// The coordinator knows a different epoch (a Restart we missed
		// while disconnected, or a restarted coordinator rebuilding from
		// our replay). The node's epoch loop sorts it out.
		cc.pushRestart(ack.Epoch)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cum := ack.Cum
	if cum > uint64(len(cc.sent)) {
		conn.Close()
		return nil, nil, fmt.Errorf("resume: coordinator acked %d of %d frames", cum, len(cc.sent))
	}
	for _, b := range cc.sent[cum:] {
		conn.SetWriteDeadline(time.Now().Add(cc.opt.WriteTimeout))
		if _, err := conn.Write(b.B); err != nil {
			conn.Close()
			return nil, nil, fmt.Errorf("resume retransmit: %w", err)
		}
		cc.wm.bytes.Add(int64(len(b.B)))
	}
	if n := uint64(len(cc.sent)) - cum; n > 0 {
		cc.wm.retx.Add(int64(n))
	}
	cc.conn = conn
	return conn, br, nil
}

// dropConn closes conn and clears it if still installed.
func (cc *coordClient) dropConn(conn net.Conn) {
	cc.mu.Lock()
	if cc.conn == conn {
		cc.conn = nil
	}
	cc.mu.Unlock()
	conn.Close()
}

func (cc *coordClient) signalCommit() {
	cc.commitOnce.Do(func() { close(cc.commitCh) })
}

// pushLatest publishes e to a capacity-1 epoch channel, displacing any
// unconsumed older value; only the newest matters.
func pushLatest(ch chan uint32, e uint32) {
	for {
		select {
		case ch <- e:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}

// pushRestart publishes the latest restart epoch to the node's epoch
// loop.
func (cc *coordClient) pushRestart(e uint32) { pushLatest(cc.restartCh, e) }

// pushShutdown publishes the latest shutdown signal with the epoch it
// belongs to: the epoch loop obeys it only if it still runs that
// epoch — a Shutdown superseded by a Restart is stale, and obeying it
// would make the node bye out of an execution the cluster is busy
// re-running.
func (cc *coordClient) pushShutdown(e uint32) { pushLatest(cc.shutdownEv, e) }

// send writes one frame through the session log; a disconnected stream
// buffers it for the resume replay.
func (cc *coordClient) send(m wire.Msg) { cc.sendItems(m, 1) }

// sendItems is send with the frame's capture-item count, feeding the
// batch-size histogram (per-event frames observe 1, batch frames the
// batch length — the distribution the cluster bench reports). The
// frame is appended to the session log unconditionally; it is written
// through only when a connection is up and no partition window severs
// the stream, and any write error drops the connection so the wire
// never carries a gapped sequence.
func (cc *coordClient) sendItems(m wire.Msg, items int) {
	b := wire.GetBuffer()
	cc.mu.Lock()
	seq := uint64(len(cc.sent)) + 1
	b.B = wire.AppendFrame(b.B[:0], seq, m)
	cc.sent = append(cc.sent, b)
	cc.wm.frames.Inc()
	cc.wm.batch.Observe(int64(items))
	conn := cc.conn
	if conn != nil && cc.parts.coordSevered(cc.id, time.Now()) {
		cc.conn = nil
		conn.Close()
		conn = nil
	}
	if conn != nil {
		conn.SetWriteDeadline(time.Now().Add(cc.opt.WriteTimeout))
		if _, err := conn.Write(b.B); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				cc.logf("node %d: coordinator write: %v", cc.id, err)
			}
			cc.conn = nil
			conn.Close()
		} else {
			cc.wm.bytes.Add(int64(len(b.B)))
		}
	}
	cc.mu.Unlock()
}

// sendJournal forwards one journal event — immediately in PerEvent
// mode, else into the pending batch (kicking the flusher at the size
// threshold). Nil-safe like the journal itself so instrumentation
// sites need no guards.
func (cc *coordClient) sendJournal(e obs.Event) {
	if cc == nil {
		return
	}
	we := wire.JournalEvent{
		At: e.At, Proc: int32(e.Proc), Kind: uint8(e.Kind), Name: e.Name,
		A: e.A, B: e.B, C: e.C, VC: e.VC,
	}
	if cc.batch.PerEvent {
		cc.send(we)
		return
	}
	cc.pendMu.Lock()
	cc.pendJournal = append(cc.pendJournal, we)
	full := len(cc.pendJournal) >= cc.batch.MaxItems
	cc.pendMu.Unlock()
	if full {
		cc.kickFlush()
	}
}

// sendCandidate forwards one monitor candidate — immediately in
// PerEvent mode, else into the pending batch. Candidates are consumed
// only at assembly time, so deferring them to the next flush loses
// nothing; at one candidate per node per round they otherwise dominate
// the unbatchable frame count.
func (cc *coordClient) sendCandidate(v wire.Candidate) {
	if cc.batch.PerEvent {
		cc.send(v)
		return
	}
	cc.pendMu.Lock()
	cc.pendCands = append(cc.pendCands, v)
	full := len(cc.pendCands) >= cc.batch.MaxItems
	cc.pendMu.Unlock()
	if full {
		cc.kickFlush()
	}
}

// kickFlush nudges the flusher ahead of its interval tick.
func (cc *coordClient) kickFlush() {
	select {
	case cc.kick <- struct{}{}:
	default:
	}
}

// ensureFlusher points the flusher at an epoch's capture, starting a
// goroutine if none is running — at the first epoch, and again after a
// bye-phase stopFlusher when a late restart re-executes the workload
// from the parked state.
func (cc *coordClient) ensureFlusher(take func() []wire.TraceOp) {
	cc.flushMu.Lock()
	defer cc.flushMu.Unlock()
	cc.take = take
	if cc.flushing {
		return
	}
	cc.flushing = true
	cc.flushQuit = make(chan struct{})
	cc.flushDone = make(chan struct{})
	go cc.flusher(cc.flushQuit, cc.flushDone)
}

func (cc *coordClient) flusher(quit, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(cc.batch.Interval)
	defer tick.Stop()
	passes := 0
	for {
		select {
		case <-quit:
			return
		case <-cc.kick:
		case <-tick.C:
		}
		cc.flush()
		passes++
		if cc.batch.SnapshotEvery > 0 && passes%cc.batch.SnapshotEvery == 0 {
			cc.sendSnapshot()
		}
	}
}

// sendSnapshot sequences one cumulative metrics dump onto the capture
// stream. Snapshots ride the session log like every capture frame, so
// resume replay re-delivers them — harmless, since applying a full
// cumulative dump is idempotent.
func (cc *coordClient) sendSnapshot() {
	if cc.snap == nil {
		return
	}
	pts := cc.snap()
	if len(pts) == 0 {
		return
	}
	cc.mu.Lock()
	e := cc.epoch
	cc.mu.Unlock()
	cc.sendItems(wire.MetricsSnapshot{
		Proc: int32(cc.id), Epoch: e,
		AtNs: time.Since(cc.start).Nanoseconds(), Points: pts,
	}, 1)
}

// toWirePoints converts a registry dump to its wire form for a
// MetricsSnapshot frame.
func toWirePoints(pts []obs.MetricPoint) []wire.MetricPoint {
	if len(pts) == 0 {
		return nil
	}
	out := make([]wire.MetricPoint, len(pts))
	for i, p := range pts {
		out[i] = wire.MetricPoint{Kind: uint8(p.Kind), Key: p.Key, Value: p.Value}
	}
	return out
}

// toObsPoints is the inverse, at the coordinator's ingest.
func toObsPoints(pts []wire.MetricPoint) []obs.MetricPoint {
	if len(pts) == 0 {
		return nil
	}
	out := make([]obs.MetricPoint, len(pts))
	for i, p := range pts {
		out[i] = obs.MetricPoint{Kind: obs.MetricKind(p.Kind), Key: p.Key, Value: p.Value}
	}
	return out
}

// stopFlusher ends the flusher goroutine and drains everything still
// pending, so the stream is complete before the final Done and bye. It
// is idempotent and a no-op if ensureFlusher was never called. With
// drain false (the crash path), pending capture is abandoned exactly
// as a killed process would abandon it.
func (cc *coordClient) stopFlusher(drain bool) {
	cc.flushMu.Lock()
	running := cc.flushing
	cc.flushing = false
	started := cc.take != nil
	quit, done := cc.flushQuit, cc.flushDone
	cc.flushMu.Unlock()
	if running {
		close(quit)
		<-done
	}
	if started && drain {
		cc.flush()
		if cc.batch.SnapshotEvery > 0 {
			// A closing snapshot, so even a run shorter than the snapshot
			// cadence reports final per-node values.
			cc.sendSnapshot()
		}
	}
}

// flush drains pending journal events and captured trace ops as batch
// frames of at most MaxItems items each (in PerEvent mode, as one
// frame per item). Called from the flusher goroutine and, once it has
// stopped, from stopFlusher. flushMu orders whole passes against
// markEpoch's discard-and-mark.
func (cc *coordClient) flush() {
	cc.flushMu.Lock()
	defer cc.flushMu.Unlock()
	cc.pendMu.Lock()
	events := cc.pendJournal
	cands := cc.pendCands
	cc.pendJournal, cc.pendCands = nil, nil
	cc.pendMu.Unlock()
	for len(events) > 0 {
		n := min(len(events), cc.batch.MaxItems)
		cc.sendItems(wire.JournalBatch{Events: events[:n]}, n)
		events = events[n:]
	}
	// Trace ops flush before candidates: a candidate can trigger the
	// coordinator's live prefix confirmation, and the confirmable prefix
	// only contains states whose ops are already staged — ops first
	// keeps the prefix as fresh as the candidate that probes it.
	if cc.take != nil {
		ops := cc.take()
		if cc.batch.PerEvent {
			for _, op := range ops {
				cc.send(wire.Trace{Ops: []wire.TraceOp{op}})
			}
		} else {
			for len(ops) > 0 {
				n := min(len(ops), cc.batch.MaxItems)
				cc.sendItems(wire.TraceOpBatch{Ops: ops[:n]}, n)
				ops = ops[n:]
			}
		}
	}
	for len(cands) > 0 {
		n := min(len(cands), cc.batch.MaxItems)
		cc.sendItems(wire.CandidateBatch{Cands: cands[:n]}, n)
		cands = cands[n:]
	}
}

// markEpoch moves the stream to re-execution epoch e: everything the
// abandoned epoch left pending (batched journal events, candidates,
// undrained capture) is discarded, then an EpochMark is sequenced onto
// the stream so the coordinator — live now or replaying the session
// log after its own restart — discards that stream's staged capture at
// exactly the same point. Holding flushMu across the transition
// guarantees no old-epoch frame lands after the mark.
func (cc *coordClient) markEpoch(e uint32) {
	cc.flushMu.Lock()
	defer cc.flushMu.Unlock()
	cc.pendMu.Lock()
	cc.pendJournal, cc.pendCands = nil, nil
	cc.pendMu.Unlock()
	if cc.take != nil {
		cc.take() // drain and drop the dead epoch's capture
	}
	cc.mu.Lock()
	cc.epoch = e
	cc.mu.Unlock()
	cc.sendItems(wire.EpochMark{Epoch: e}, 1)
}

// sentFrames reports the session log's length (frames ever sequenced).
func (cc *coordClient) sentFrames() uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return uint64(len(cc.sent))
}

// healthy reports the session's liveness for /healthz: terminal session
// loss is the one condition that turns a node unhealthy while running.
func (cc *coordClient) healthy() error {
	select {
	case <-cc.sessDone:
		return errors.New("coordinator session lost")
	default:
		return nil
	}
}

// drain blocks until the whole session log is on the wire or d
// elapses. A live connection implies the wire carries the full log as
// a prefix — sendItems writes through or drops the connection, and
// resume installs a connection only after retransmitting the backlog —
// so waiting for conn != nil after the last frame was appended is
// waiting for that frame to be written. The shutdown path drains
// before close so a bye buffered behind a partition window or a broken
// stream is delivered by the resume machinery instead of dying with
// the session.
func (cc *coordClient) drain(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		cc.mu.Lock()
		live := cc.conn != nil
		cc.mu.Unlock()
		if live {
			return
		}
		select {
		case <-cc.quit:
			return
		case <-cc.sessDone:
			// Terminal session loss (a failed resume campaign): nothing
			// will ever install a connection again, and that failure has
			// already been logged as the hard truncation error.
			return
		case <-time.After(time.Millisecond):
		}
	}
	cc.logf("node %d: coordinator stream still down after %v; final frames may be lost", cc.id, d)
}

// close ends the session: the goroutine stops, the connection drops,
// and the session log's buffers return to the pool.
func (cc *coordClient) close() {
	cc.quitOnce.Do(func() { close(cc.quit) })
	cc.mu.Lock()
	if cc.conn != nil {
		cc.conn.Close()
		cc.conn = nil
	}
	cc.mu.Unlock()
	<-cc.sessDone
	cc.mu.Lock()
	for _, b := range cc.sent {
		wire.PutBuffer(b)
	}
	cc.sent = nil
	cc.mu.Unlock()
}

// CoordConfig parameterizes the cluster coordinator.
type CoordConfig struct {
	N        int
	Addr     string       // listen address (ignored when Listener is set)
	Listener net.Listener // optional pre-bound listener
	// Journal receives the merged cluster journal: every control event
	// forwarded by every node, plus candidate reports. May be nil.
	Journal      *obs.Journal
	Reg          *obs.Registry
	MetricLabels []obs.Label
	Timeouts     Timeouts
	Logf         func(string, ...any)
	// HTTPAddr, when non-empty (or HTTPListener non-nil), opts into the
	// introspection server: /metrics serves the coordinator's live
	// merged registry (every node's streamed snapshots plus per-node
	// ingest-lag gauges), /statusz the CoordStatus document `pctl top`
	// polls, /healthz liveness, /debug/pprof/ profiling.
	HTTPAddr     string
	HTTPListener net.Listener
	// Start anchors annotation timestamps; clusters pass the shared run
	// epoch so annotations line up with node journal timestamps. Zero
	// means "now".
	Start time.Time
	// Live opts the coordinator into online detection of possibly(¬B)
	// while the run streams. Zero value (nil Predicate) disables it.
	Live LiveConfig
	// Store, when non-nil, spills staged capture (trace ops, journal
	// events) to the segmented on-disk trace store instead of holding it
	// in RAM; assembly and the live prefix pass replay from disk. The
	// coordinator seals the store into a capture bundle at commit; the
	// caller owns Open/Close.
	Store *store.Store
}

// LiveConfig parameterizes the live online-detection subsystem: the
// coordinator feeds every ingested candidate to an incremental checker
// (internal/livedetect) and, on a confirmed detection, closes the
// paper's active-debugging loop without waiting for the run to end.
type LiveConfig struct {
	// Predicate is the good-state invariant B; the checker watches for
	// possibly(¬B). Nil disables live detection entirely.
	Predicate predicate.Expr
	// OnDetect selects the response to a confirmed mid-run detection:
	// OnDetectReExec (the default) broadcasts Detection + ReExec frames
	// and drives a §8 controlled re-execution; OnDetectNote records the
	// detection and lets the run finish undisturbed.
	OnDetect string
	// MaxReExecs caps detection-triggered re-executions so a violation
	// the control strategy cannot suppress does not re-execute forever.
	// Zero means the default of 1; negative disables re-execution.
	MaxReExecs int
}

// OnDetect modes.
const (
	OnDetectReExec = "reexec"
	OnDetectNote   = "note"
)

// CSMutexPredicate returns the cluster workload's control predicate
// B = ∨ᵢ (csᵢ = 0) over the n application processes: at least one
// application is outside its critical section. Its violation,
// possibly(¬B) = "a consistent cut with every application in CS", is
// what live detection watches the (n−1)-mutex runs for.
func CSMutexPredicate(n int) predicate.Expr {
	xs := make([]predicate.Expr, n)
	for i := range xs {
		xs[i] = predicate.LocalVarEq(i, "cs", 0)
	}
	return predicate.Or(xs...)
}

// DetectionRecord is one confirmed live detection as the run's history
// keeps it (detections survive epoch discards like annotations do: they
// describe what really happened, which re-execution does not rewrite).
type DetectionRecord struct {
	// Epoch is the execution epoch the detection fired in.
	Epoch uint32 `json:"epoch"`
	// Node is the node whose candidate completed the streaming witness,
	// or -1 when only the commit-time closing pass found the cut.
	Node int `json:"node"`
	// AtNs is when the confirmation landed, relative to the run start.
	AtNs int64 `json:"at_ns"`
	// Cut is the confirmed consistent cut — one consumed-state index per
	// logical process (apps 0..n-1, controllers n..2n-1).
	Cut []int64 `json:"cut"`
	// WitnessHiIdx is the last traced app-state index of the triggering
	// candidate interval (latency attribution joins it with the node's
	// monitor.candidate journal event).
	WitnessHiIdx int64 `json:"witness_hi_idx"`
	// StrategyEdges counts the added synchronization edges of the
	// control strategy computed on the confirmed prefix (0 when the
	// off-line algorithm found none or failed).
	StrategyEdges int `json:"strategy_edges"`
	// Final marks a detection found only by the commit-time closing
	// pass rather than strictly mid-run.
	Final bool `json:"final"`
	// ReExec marks a detection that triggered a controlled
	// re-execution.
	ReExec bool `json:"reexec"`
}

// Result is a completed cluster run as the coordinator saw it.
type Result struct {
	// Deposet is the captured run — apps 0..n-1, controllers n..2n-1,
	// the layout sim traces use — consumable by replay/detect/offline.
	Deposet *deposet.Deposet
	// Stats holds each node's final tallies.
	Stats []Stats
	// Candidates counts monitor candidate reports staged for the final
	// epoch (discarded epochs' reports are not included).
	Candidates int
	// Epoch is the re-execution epoch the run completed at: 0 for a
	// fault-free run, +1 per controlled re-execution restart.
	Epoch uint32
	// Restarts counts the controlled re-execution restarts the
	// coordinator ordered (crashed-node rejoins).
	Restarts int
	// Detections is the live checker's confirmed possibly(¬B) history
	// across every epoch, in confirmation order. Empty when live
	// detection was off or nothing fired.
	Detections []DetectionRecord
	// LiveFired reports whether the live checker confirmed possibly(¬B)
	// for the final epoch. Because commit runs a closing confirmation
	// pass over the complete final-epoch capture, this coincides exactly
	// with the offline detect.PossiblyGeneral verdict on Deposet.
	LiveFired bool
	// ReExecs counts detection-triggered controlled re-executions
	// (disjoint from Restarts, which counts crash recoveries).
	ReExecs int
	// RootConns counts stream handshakes the coordinator accepted
	// (Hello, Resume, RelayHello); RootFrames / RootBytes the frames
	// and payload bytes it read off accepted streams. With a relay tree
	// these measure the root's actual ingest load — O(relays) instead
	// of O(n) — which is what the cluster bench's tree rows report.
	RootConns  int64
	RootFrames int64
	RootBytes  int64
}

// nodeSession is the coordinator's per-node-id stream state. It
// outlives any one connection: a node whose stream broke resumes the
// same session (lastSeq-based dedup absorbs the replayed tail), and a
// node that crashed and relaunched resets it. Staged capture (ops,
// events, candidates) belongs to the session's current epoch and is
// discarded wholesale when an EpochMark announces a newer one — the
// mechanism that makes the final trace equal to a fault-free run of
// the final epoch. The session lock, not the coordinator's, guards the
// hot ingest path, preserving the no-global-serialization property the
// batched ingest bench pins.
type nodeSession struct {
	id int

	// ingestMu serializes accept-and-stage as one atomic step per frame
	// (and handshake resets against in-flight frames): a handler whose
	// connection was superseded mid-ingest must not interleave its
	// staging with the successor's, or the per-process op order the
	// deposet assembly depends on scrambles. Always taken before mu.
	ingestMu sync.Mutex

	mu       sync.Mutex
	attached bool       // a connection has handshaken for this id before
	owner    *coordConn // the connection currently allowed to ingest
	lastSeq  uint64     // highest contiguous sequence ingested
	epoch    uint32     // the stream's current epoch (last EpochMark seen)
	ops      []wire.TraceOp
	events   []obs.Event
	cands    int

	// Live-observability state: the node's latest cumulative metrics
	// snapshot and when it arrived. Deliberately NOT cleared on epoch
	// discard — the registry is cumulative across re-executions, so the
	// dashboard keeps its history through a restart.
	lastSnap   []wire.MetricPoint
	lastSnapAt time.Time
	snapEpoch  uint32
}

// reset clears the session for a relaunched node: sequence numbering
// restarts (the fresh process counts from 1) and staged capture from
// the dead incarnation is dropped. Caller holds s.mu.
func (s *nodeSession) resetLocked(lastSeq uint64) {
	s.lastSeq = lastSeq
	s.epoch = 0
	s.ops, s.events, s.cands = nil, nil, 0
}

// discardEpochLocked drops the staged capture when the stream enters a
// new epoch. Caller holds s.mu.
func (s *nodeSession) discardEpochLocked(e uint32) {
	s.epoch = e
	s.ops, s.events, s.cands = nil, nil, 0
}

// coordConn wraps one node connection with write serialization:
// ResumeAck from the handler races Shutdown/Restart broadcasts from
// other goroutines.
type coordConn struct {
	net.Conn
	wmu sync.Mutex
}

func (c *coordConn) writeFrame(opt Timeouts, m wire.Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.SetWriteDeadline(time.Now().Add(opt.WriteTimeout))
	return wire.WriteFrame(c.Conn, 0, m)
}

// Coordinator collects the capture streams of a node cluster and
// reassembles them into a deposet trace plus a merged journal.
// Protocol flow: nodes connect and stream; after all N report Done at
// the current epoch the coordinator broadcasts Shutdown{epoch}; each
// node final-flushes, echoes Shutdown as its bye, and parks; when
// every bye is in, the coordinator broadcasts Commit — the run is
// sealed, parked nodes exit, and Wait assembles the trace. The park is
// what makes shutdown crash-safe: a node killed between the Shutdown
// broadcast and its bye rejoins and triggers a restart (the epoch was
// still voidable), while after Commit a rejoin is refused with the
// same Shutdown+Commit exit ramp.
//
// Failure handling is the paper's §8 controlled re-execution, global
// form: when a crashed node relaunches (a second Hello for a known
// id), the coordinator bumps the cluster epoch and broadcasts
// Restart{epoch} — every node aborts, resets its mesh, discards its
// local capture and deterministically re-executes from scratch. Each
// stream's EpochMark then discards that stream's staged capture, so
// what Wait assembles is exactly the final epoch: a trace
// indistinguishable from a fault-free run.
type Coordinator struct {
	n       int
	ln      net.Listener
	journal *obs.Journal
	cands   *obs.Counter
	opt     Timeouts
	logf    func(string, ...any)
	start   time.Time

	// live is the merged cluster registry: every node's streamed
	// MetricsSnapshot applied with a node label, plus the coordinator's
	// scrape-time ingest-lag gauges. It backs the introspection
	// server's /metrics and feeds CoordStatus.
	live *obs.Registry
	insp *obs.Introspection

	// Live online detection (nil ld when CoordConfig.Live is off):
	// every ingested candidate feeds ld; a trigger runs the prefix
	// confirmation, a confirmation fires the OnDetect response.
	ld        *livedetect.Checker
	liveCfg   LiveConfig
	violation predicate.Expr // ¬B, precomputed from Live.Predicate
	detMeter  *obs.Counter

	// store, when non-nil, takes capture volume (trace ops, journal
	// events) off the heap: the raw frame bodies spill to the segmented
	// on-disk trace store and are streamed back at assembly time.
	// Coordination state (epochs, completion, candidates, snapshots)
	// stays in RAM.
	store *store.Store

	// Root-side ingest accounting for the tree-vs-flat bench: frames
	// and payload bytes read off accepted streams, and handshakes that
	// opened or resumed one.
	rootFrames atomic.Int64
	rootBytes  atomic.Int64
	rootConns  atomic.Int64

	mu         sync.Mutex
	sessions   map[int]*nodeSession
	relays     map[int]*relaySession
	relayConns map[int]*coordConn
	stats      []Stats
	epoch      uint32 // cluster re-execution epoch
	restarts   int
	reexecs    int               // detection-triggered re-executions
	detections []DetectionRecord // confirmed live detections, all epochs
	detByNode  []int             // confirmed detections per witness node
	doneSeen   []bool
	byeSeen    []bool
	doneCount  int
	byeCount   int
	conns      map[int]*coordConn
	annots     []obs.Event // cluster-level annotations (chaos, epoch bumps)

	// shutdownMu serializes the run's terminal decisions — Shutdown
	// broadcast, Commit broadcast, restart-on-rejoin, and the state
	// replayed to resuming connections — against each other. Combined
	// with the per-connection write lock, every node observes those
	// decisions in decision order, so a Shutdown can never overtake the
	// Restart that voided it. Lock order: shutdownMu → ingestMu → st.mu,
	// and shutdownMu → c.mu; never taken while holding c.mu or a
	// session lock.
	shutdownMu sync.Mutex
	shutdown   bool // Shutdown broadcast for the current epoch, byes pending
	committed  bool // Commit broadcast: the run is sealed, no more restarts

	allByes chan struct{}
	byeOnce sync.Once
	closed  chan struct{}
	wg      sync.WaitGroup
}

// NewCoordinator starts a coordinator for an n-node cluster.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: coordinator needs n ≥ 2, got %d", cfg.N)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("node: coordinator listen %s: %w", cfg.Addr, err)
		}
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Now()
	}
	c := &Coordinator{
		n:          cfg.N,
		ln:         ln,
		journal:    cfg.Journal,
		cands:      cfg.Reg.Counter("predctl_monitor_candidates_total", cfg.MetricLabels...),
		opt:        cfg.Timeouts.withDefaults(),
		logf:       logf,
		start:      start,
		store:      cfg.Store,
		live:       obs.NewRegistry(),
		sessions:   map[int]*nodeSession{},
		relays:     map[int]*relaySession{},
		relayConns: map[int]*coordConn{},
		stats:      make([]Stats, cfg.N),
		doneSeen:   make([]bool, cfg.N),
		byeSeen:    make([]bool, cfg.N),
		conns:      map[int]*coordConn{},
		allByes:    make(chan struct{}),
		closed:     make(chan struct{}),
	}
	if cfg.Live.Predicate != nil {
		lc := cfg.Live
		if lc.OnDetect == "" {
			lc.OnDetect = OnDetectReExec
		}
		if lc.OnDetect != OnDetectReExec && lc.OnDetect != OnDetectNote {
			ln.Close()
			return nil, fmt.Errorf("node: coordinator: unknown OnDetect mode %q", lc.OnDetect)
		}
		if lc.MaxReExecs == 0 {
			lc.MaxReExecs = 1
		}
		c.liveCfg = lc
		c.violation = predicate.Not(lc.Predicate)
		c.ld = livedetect.New(cfg.N)
		c.detMeter = cfg.Reg.Counter("predctl_live_detections_total", cfg.MetricLabels...)
		c.detByNode = make([]int, cfg.N)
	}
	if cfg.HTTPAddr != "" || cfg.HTTPListener != nil {
		insp, err := obs.ServeIntrospection(obs.IntrospectionConfig{
			Addr: cfg.HTTPAddr, Listener: cfg.HTTPListener,
			Reg:     c.live,
			Status:  func() any { return c.Status() },
			Healthy: c.healthy,
			Refresh: c.refreshLag,
			Logf:    logf,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.insp = insp
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// HTTPURL returns the introspection server's base URL, or "" when the
// server was not enabled.
func (c *Coordinator) HTTPURL() string { return c.insp.URL() }

func (c *Coordinator) healthy() error {
	select {
	case <-c.closed:
		return errors.New("coordinator closed")
	default:
		return nil
	}
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every node's capture stream completed (or timeout),
// then merges the per-session staging buffers — final epoch only — by
// logical process and assembles the run.
func (c *Coordinator) Wait(timeout time.Duration) (*Result, error) {
	select {
	case <-c.allByes:
	case <-time.After(timeout):
		c.Close()
		c.mu.Lock()
		done, byes, epoch := c.doneCount, c.byeCount, c.epoch
		c.mu.Unlock()
		return nil, fmt.Errorf("node: coordinator timed out after %v (epoch %d, %d/%d done, %d/%d byes)",
			timeout, epoch, done, c.n, byes, c.n)
	}
	// Deliberately no Close on success: a parked node whose Commit died
	// with a broken stream redials and fetches it from the resume
	// replay, which needs the listener alive. The owner's Close (or the
	// harness's deferred one) tears everything down.

	c.mu.Lock()
	sessions := make([]*nodeSession, 0, len(c.sessions))
	for _, st := range c.sessions {
		sessions = append(sessions, st)
	}
	stats := append([]Stats(nil), c.stats...)
	epoch, restarts := c.epoch, c.restarts
	reexecs := c.reexecs
	dets := append([]DetectionRecord(nil), c.detections...)
	annots := append([]obs.Event(nil), c.annots...)
	c.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	byProc := make([][]wire.TraceOp, 2*c.n)
	var events []obs.Event
	candidates := 0
	addOp := func(id int, op wire.TraceOp) {
		p := int(op.Proc)
		if p < 0 || p >= 2*c.n {
			c.logf("coordinator: node %d: trace op for process %d dropped", id, p)
			return
		}
		byProc[p] = append(byProc[p], op)
	}
	for _, st := range sessions {
		st.mu.Lock()
		for _, op := range st.ops {
			addOp(st.id, op)
		}
		events = append(events, st.events...)
		candidates += st.cands
		st.mu.Unlock()
		if c.store != nil {
			// Spilled capture streams back from disk in append order —
			// the stream order the session staged it in — so the merged
			// result is identical to the in-RAM path.
			err := c.store.Replay(int32(st.id), func(_ uint64, m wire.Msg) error {
				switch v := m.(type) {
				case wire.Trace:
					for _, op := range v.Ops {
						addOp(st.id, op)
					}
				case wire.TraceOpBatch:
					for _, op := range v.Ops {
						addOp(st.id, op)
					}
				case wire.JournalEvent:
					events = append(events, obs.Event{
						At: v.At, Proc: int(v.Proc), Kind: obs.Kind(v.Kind), Name: v.Name,
						A: v.A, B: v.B, C: v.C, VC: v.VC,
					})
				case wire.JournalBatch:
					for _, e := range v.Events {
						events = append(events, obs.Event{
							At: e.At, Proc: int(e.Proc), Kind: obs.Kind(e.Kind), Name: e.Name,
							A: e.A, B: e.B, C: e.C, VC: e.VC,
						})
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("node: coordinator: store replay for node %d: %w", st.id, err)
			}
		}
	}
	events = append(events, annots...)
	// The merged journal is time-ordered across nodes (stably, so each
	// node's own order survives ties); the invariant checkers order by
	// generation themselves, this is for human timelines.
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		c.journal.Append(e)
	}

	d, err := assemble(c.n, byProc)
	if err != nil {
		return nil, err
	}
	return &Result{
		Deposet:    d,
		Stats:      stats,
		Candidates: candidates,
		Epoch:      epoch,
		Restarts:   restarts,
		Detections: dets,
		LiveFired:  c.ld != nil && c.ld.Fired(),
		ReExecs:    reexecs,
		RootConns:  c.rootConns.Load(),
		RootFrames: c.rootFrames.Load(),
		RootBytes:  c.rootBytes.Load(),
	}, nil
}

// Close shuts the coordinator's listener and connections down.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
		return
	default:
		close(c.closed)
	}
	c.insp.Close()
	c.ln.Close()
	c.mu.Lock()
	for _, conn := range c.conns {
		conn.Close()
	}
	// Relay uplinks are tracked separately from node conns; leaving
	// them open would keep their handleRelay readers — and so wg.Wait —
	// alive for as long as the relays keep forwarding.
	for _, conn := range c.relayConns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.logf("coordinator: accept: %v", err)
			}
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleNode(conn)
		}()
	}
}

// session returns (creating if needed) the state for node id.
func (c *Coordinator) session(id int) *nodeSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.sessions[id]
	if st == nil {
		st = &nodeSession{id: id}
		c.sessions[id] = st
	}
	return st
}

// attach installs conn as node id's connection, closing any previous
// one so a zombie handler can't keep reading a superseded stream.
func (c *Coordinator) attach(id int, conn *coordConn) {
	c.mu.Lock()
	old := c.conns[id]
	c.conns[id] = conn
	c.mu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
}

// handleNode serves one node connection: handshake (Hello for a fresh
// session or a crashed-node rejoin, Resume to continue one), then
// sequence-checked ingest into the session's staging.
func (c *Coordinator) handleNode(rawConn net.Conn) {
	conn := &coordConn{Conn: rawConn}
	defer conn.Close()
	br := bufReader(rawConn)
	rawConn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	seq, first, err := wire.ReadFrame(br)
	if err != nil {
		c.logf("coordinator: handshake: %v", err)
		return
	}
	c.rootConns.Add(1)

	var st *nodeSession
	switch h := first.(type) {
	case wire.RelayHello:
		c.handleRelay(conn, br, rawConn, h)
		return
	case wire.Hello:
		if int(h.N) != c.n || h.From < 0 || int(h.From) >= c.n {
			c.logf("coordinator: bad hello %#v", first)
			return
		}
		id := int(h.From)
		st = c.session(id)
		c.shutdownMu.Lock()
		st.ingestMu.Lock()
		st.mu.Lock()
		rejoin := st.attached
		if rejoin && c.committed {
			// The run is sealed: every bye for the final epoch is in and
			// the staged capture is (being) assembled. Tell the relaunch
			// to stand down — Shutdown then Commit, the same exit ramp a
			// parked node takes — and leave its session untouched.
			st.mu.Unlock()
			st.ingestMu.Unlock()
			c.mu.Lock()
			e := c.epoch
			c.mu.Unlock()
			conn.writeFrame(c.opt, wire.Shutdown{Epoch: e})
			conn.writeFrame(c.opt, wire.Commit{})
			c.shutdownMu.Unlock()
			c.logf("coordinator: node %d rejoined after commit; refused", id)
			return
		}
		st.attached = true
		st.owner = conn
		if rejoin {
			// A second Hello for a known id is a relaunched process: it
			// has no session to resume, so its old incarnation's stream
			// state is void.
			st.resetLocked(seq)
			if c.store != nil {
				c.store.Discard(int32(st.id))
			}
		} else {
			st.lastSeq = seq
		}
		st.mu.Unlock()
		st.ingestMu.Unlock()
		c.attach(id, conn)
		// A relaunched (or late-joining) node missed any Detection
		// broadcast: replay the latest so a planted rogue knows it now
		// runs under active debugging.
		if last := c.lastReExecDetection(); last != nil {
			conn.writeFrame(c.opt, wire.Detection{
				Epoch: last.Epoch, Node: int32(last.Node),
				AtNs: last.AtNs, Cut: last.Cut,
			})
		}
		if rejoin {
			// Until Commit, a rejoin always restarts — even one landing
			// between the Shutdown broadcast and the last bye: the
			// "completed" execution is voided and re-run, because the
			// alternative (refusing the relaunch) would strand the byes
			// the dead incarnation never sent.
			c.restartClusterLocked(id)
		} else {
			c.mu.Lock()
			e := c.epoch
			c.mu.Unlock()
			if e > 0 {
				// First Hello from a node whose initial dial was delayed
				// past a restart decision (a partition window can hold
				// the dial campaign while a crash-rejoin bumps the
				// epoch): it never heard the Restart broadcast — it was
				// not connected — so catch it up directly. It has
				// executed nothing, so the in-flight re-execution stays
				// valid; this node just starts it late. Without this the
				// node runs epoch 0 forever against peers at epoch e and
				// the run never completes.
				c.logf("coordinator: node %d joined late; catching up to epoch %d", id, e)
				conn.writeFrame(c.opt, wire.Restart{Epoch: e})
			}
		}
		c.shutdownMu.Unlock()
	case wire.Resume:
		if int(h.N) != c.n || h.From < 0 || int(h.From) >= c.n {
			c.logf("coordinator: bad resume %#v", first)
			return
		}
		id := int(h.From)
		st = c.session(id)
		st.ingestMu.Lock()
		st.mu.Lock()
		st.attached = true
		st.owner = conn
		cum := st.lastSeq
		st.mu.Unlock()
		st.ingestMu.Unlock()
		c.attach(id, conn)
		// The replayed decisions (shutdown, commit) must reflect one
		// consistent decision state and land on the wire unraced by new
		// broadcasts, so the whole handshake reply happens under
		// shutdownMu.
		c.shutdownMu.Lock()
		c.mu.Lock()
		epoch := c.epoch
		c.mu.Unlock()
		err := conn.writeFrame(c.opt, wire.ResumeAck{Cum: cum, Epoch: epoch})
		if err == nil {
			// A node that was disconnected across a detection-triggered
			// re-execution missed the Detection broadcast; replay the
			// latest one so the node (a planted rogue in particular) knows
			// it now runs under active debugging. The ReExec's epoch
			// transition is already covered by the ResumeAck epoch.
			if last := c.lastReExecDetection(); last != nil {
				err = conn.writeFrame(c.opt, wire.Detection{
					Epoch: last.Epoch, Node: int32(last.Node),
					AtNs: last.AtNs, Cut: last.Cut,
				})
			}
		}
		if err == nil && c.shutdown {
			// The node missed the broadcast while disconnected; replay it
			// so it can bye.
			err = conn.writeFrame(c.opt, wire.Shutdown{Epoch: epoch})
		}
		if err == nil && c.committed {
			err = conn.writeFrame(c.opt, wire.Commit{})
		}
		c.shutdownMu.Unlock()
		if err != nil {
			c.logf("coordinator: node %d: resume: %v", id, err)
			return
		}
	default:
		c.logf("coordinator: first frame is %T, want Hello or Resume", first)
		return
	}

	for {
		// Generous read deadline: nodes stream continuously while alive,
		// and a wedged node should fail the run loudly, not hang it.
		rawConn.SetReadDeadline(time.Now().Add(30 * time.Second))
		body, err := wire.ReadRawBody(br)
		if err != nil {
			select {
			case <-c.closed:
			default:
				if !errors.Is(err, net.ErrClosed) {
					c.logf("coordinator: node %d stream: %v", st.id, err)
				}
			}
			return
		}
		c.rootFrames.Add(1)
		c.rootBytes.Add(int64(len(body) + 4))
		seq, m, err := wire.DecodeBody(body)
		if err != nil {
			c.logf("coordinator: node %d stream: %v", st.id, err)
			return
		}
		st.ingestMu.Lock()
		st.mu.Lock()
		if st.owner != conn {
			// Superseded mid-read: a newer connection (resume or
			// relaunch) owns the session. Frames still buffered on this
			// one must not be ingested — they would interleave with (or,
			// after a relaunch's sequence reset, masquerade as) the
			// successor's.
			st.mu.Unlock()
			st.ingestMu.Unlock()
			return
		}
		switch {
		case seq <= st.lastSeq:
			// Resume replay overlap (the client retransmits everything
			// past the last ResumeAck, which may include frames that did
			// arrive): drop the duplicate.
			st.mu.Unlock()
			st.ingestMu.Unlock()
			continue
		case seq == st.lastSeq+1:
			st.lastSeq = seq
			st.mu.Unlock()
		default:
			// A gap can only mean a frame was lost inside a live TCP
			// stream — corruption, not congestion. Drop the connection;
			// the client's session resume replays from the last
			// contiguous frame.
			st.mu.Unlock()
			st.ingestMu.Unlock()
			c.logf("coordinator: node %d: sequence gap (%d after %d); dropping connection for resume",
				st.id, seq, st.lastSeq)
			return
		}
		act, epoch := c.ingestStored(st, m, body)
		st.ingestMu.Unlock()
		// The broadcasts run outside every session lock (they take
		// shutdownMu, which handshakes take before ingestMu — holding
		// ingestMu here would invert that order) and revalidate against
		// the current epoch, so a decision a concurrent rejoin just
		// voided dies in revalidation instead of racing onto the wire.
		switch act {
		case actAllDone:
			c.broadcastShutdown(epoch)
		case actAllByes:
			c.commitRun(epoch)
		case actDetected:
			c.fireDetection(st.id)
		}
	}
}

// lastReExecDetection returns the most recent detection that drove a
// re-execution, or nil. Handshake paths replay it to connections that
// were not attached when the Detection broadcast went out.
func (c *Coordinator) lastReExecDetection() *DetectionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.detections) - 1; i >= 0; i-- {
		if c.detections[i].ReExec {
			return &c.detections[i]
		}
	}
	return nil
}

// restartClusterLocked runs the §8 controlled re-execution decision
// after node id relaunched: bump the epoch, void the completion
// progress of the abandoned execution — including a pending Shutdown,
// whose byes can now never complete — and order every node to restart.
// The caller holds shutdownMu, which serializes this decision against
// Shutdown/Commit broadcasts and resume replays.
func (c *Coordinator) restartClusterLocked(id int) {
	c.shutdown = false
	c.mu.Lock()
	c.epoch++
	c.restarts++
	e := c.epoch
	c.doneCount, c.byeCount = 0, 0
	for i := range c.doneSeen {
		c.doneSeen[i] = false
		c.byeSeen[i] = false
	}
	conns := c.snapshotConnsLocked()
	c.mu.Unlock()
	if c.ld != nil {
		// The abandoned epoch's candidates must not seed a detection in
		// the re-execution.
		c.ld.Reset(e)
	}
	c.logf("coordinator: node %d rejoined; restarting cluster at epoch %d", id, e)
	c.Annotate(obs.EvEpochRestart, int64(id), int64(e))
	c.broadcast(conns, wire.Restart{Epoch: e}, "restart")
}

// snapshotConnsLocked copies the connection table for a broadcast —
// direct node streams plus relay uplinks (keyed -(index+1) so the two
// tables cannot collide): a decision broadcast reaches relayed nodes
// through their relay's fan-out. Caller holds c.mu.
func (c *Coordinator) snapshotConnsLocked() map[int]*coordConn {
	conns := make(map[int]*coordConn, len(c.conns)+len(c.relayConns))
	for id, conn := range c.conns {
		conns[id] = conn
	}
	for idx, conn := range c.relayConns {
		conns[-(idx + 1)] = conn
	}
	return conns
}

// broadcast writes m to every connection, closing any whose write
// fails: the peer's session resume then replays the coordinator's
// current decision state (epoch, shutdown, commit), so a failed
// broadcast write becomes a reconnect-and-catch-up instead of a
// silently missed decision.
func (c *Coordinator) broadcast(conns map[int]*coordConn, m wire.Msg, what string) {
	for id, conn := range conns {
		if err := conn.writeFrame(c.opt, m); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				c.logf("coordinator: node %d: %s write: %v", id, what, err)
			}
			conn.Close()
		}
	}
}

// ingestAction is what a frame's ingest obligates the caller to do
// once every session lock is released.
type ingestAction int

const (
	actNone     ingestAction = iota
	actAllDone               // every Done for the returned epoch is in: broadcast Shutdown
	actAllByes               // every bye for the returned epoch is in: commit the run
	actDetected              // the live checker triggered: run the prefix confirmation
)

// ingest is ingestStored without a raw body in hand (IngestBench, and
// any path that decoded first): spill-mode re-encodes the frame.
func (c *Coordinator) ingest(st *nodeSession, m wire.Msg) (ingestAction, uint32) {
	return c.ingestStored(st, m, nil)
}

// spillCapture diverts one capture frame into the on-disk trace store
// when spilling is on, reporting whether it did. raw is the frame's
// wire body as read off the stream (nil when the caller only has the
// decoded message, in which case the body is re-encoded — the bytes
// are identical either way, which is what keeps disk-backed assembly
// byte-equal to in-RAM staging).
func (c *Coordinator) spillCapture(st *nodeSession, m wire.Msg, raw []byte) bool {
	if c.store == nil {
		return false
	}
	if raw == nil {
		raw = wire.AppendBody(nil, 0, m)
	}
	st.mu.Lock()
	e := st.epoch
	st.mu.Unlock()
	if err := c.store.Append(int32(st.id), e, raw); err != nil {
		// Loud but non-fatal: the frame falls back to RAM staging, so a
		// full disk degrades to the old memory profile instead of
		// corrupting the capture.
		c.logf("coordinator: node %d: store spill: %v", st.id, err)
		return false
	}
	return true
}

// ingestStored folds one frame from a node's stream into the
// coordinator state, reporting the completion action (if any) it
// triggered and the epoch that action belongs to. Trace traffic — the
// volume — lands in the session's own staging under the session lock
// (or spills to the trace store when one is configured; raw carries
// the frame's wire body so the spill needs no re-encode); only the
// rare coordination frames (Done, Shutdown, EpochMark) touch c.mu.
// Done and bye count toward completion only when the stream is at the
// cluster epoch: a Done raced by a Restart belongs to a voided
// execution.
func (c *Coordinator) ingestStored(st *nodeSession, m wire.Msg, raw []byte) (ingestAction, uint32) {
	switch v := m.(type) {
	case wire.Trace:
		if c.spillCapture(st, m, raw) {
			break
		}
		st.mu.Lock()
		st.ops = append(st.ops, v.Ops...)
		st.mu.Unlock()
	case wire.TraceOpBatch:
		if c.spillCapture(st, m, raw) {
			break
		}
		st.mu.Lock()
		st.ops = append(st.ops, v.Ops...)
		st.mu.Unlock()
	case wire.JournalEvent:
		if c.spillCapture(st, m, raw) {
			break
		}
		st.mu.Lock()
		st.events = append(st.events, obs.Event{
			At: v.At, Proc: int(v.Proc), Kind: obs.Kind(v.Kind), Name: v.Name,
			A: v.A, B: v.B, C: v.C, VC: v.VC,
		})
		st.mu.Unlock()
	case wire.JournalBatch:
		if c.spillCapture(st, m, raw) {
			break
		}
		st.mu.Lock()
		for _, e := range v.Events {
			st.events = append(st.events, obs.Event{
				At: e.At, Proc: int(e.Proc), Kind: obs.Kind(e.Kind), Name: e.Name,
				A: e.A, B: e.B, C: e.C, VC: e.VC,
			})
		}
		st.mu.Unlock()
	case wire.MetricsSnapshot:
		st.mu.Lock()
		st.lastSnap = v.Points
		st.lastSnapAt = time.Now()
		st.snapEpoch = v.Epoch
		st.mu.Unlock()
		// Cumulative set semantics make re-applied resume replays
		// idempotent; the node label scopes series from nodes that
		// don't already label themselves.
		c.live.ApplySnapshot(toObsPoints(v.Points), obs.L("node", strconv.Itoa(st.id)))
	case wire.Candidate:
		if c.ingestCandidate(st, v) {
			return actDetected, 0
		}
	case wire.CandidateBatch:
		det := false
		for _, cand := range v.Cands {
			det = c.ingestCandidate(st, cand) || det
		}
		if det {
			return actDetected, 0
		}
	case wire.EpochMark:
		st.mu.Lock()
		if v.Epoch > st.epoch {
			st.discardEpochLocked(v.Epoch)
			if c.store != nil {
				// The store-side twin: the origin's spilled records belong
				// to the voided epoch; drop their index entries.
				c.store.Discard(int32(st.id))
			}
		}
		st.mu.Unlock()
		c.mu.Lock()
		adopted := v.Epoch > c.epoch
		if adopted {
			// A mark above our epoch means we are the one missing state —
			// a restarted coordinator rebuilding from session replays.
			// Adopt it and recount completion from the replayed streams.
			c.epoch = v.Epoch
			c.doneCount, c.byeCount = 0, 0
			for i := range c.doneSeen {
				c.doneSeen[i] = false
				c.byeSeen[i] = false
			}
		}
		c.mu.Unlock()
		if adopted && c.ld != nil {
			// The checker's epoch follows the cluster epoch, including
			// one adopted from a replayed stream.
			c.ld.Reset(v.Epoch)
		}
	case wire.Done:
		st.mu.Lock()
		se := st.epoch
		st.mu.Unlock()
		c.mu.Lock()
		if se != c.epoch {
			c.mu.Unlock()
			return actNone, 0
		}
		// A node reports Done twice at its final epoch — once when its
		// application finishes, once with the closing tallies in its bye
		// phase — so later reports overwrite, only the first counts.
		c.stats[st.id] = Stats{
			Requests:    int(v.Requests),
			Handoffs:    int(v.Handoffs),
			CtlMessages: int(v.CtlMessages),
		}
		for _, ns := range v.Responses {
			c.stats[st.id].Responses = append(c.stats[st.id].Responses, time.Duration(ns))
		}
		first := !c.doneSeen[st.id]
		if first {
			c.doneSeen[st.id] = true
			c.doneCount++
		}
		all := c.doneCount == c.n
		e := c.epoch
		c.mu.Unlock()
		if first && all {
			return actAllDone, e
		}
	case wire.Shutdown:
		st.mu.Lock()
		se := st.epoch
		st.mu.Unlock()
		c.mu.Lock()
		all := false
		e := c.epoch
		if se == c.epoch && v.Epoch == c.epoch && !c.byeSeen[st.id] {
			c.byeSeen[st.id] = true
			c.byeCount++
			all = c.byeCount == c.n
		}
		c.mu.Unlock()
		if all {
			return actAllByes, e
		}
	default:
		c.logf("coordinator: node %d: unexpected %T", st.id, m)
	}
	return actNone, 0
}

// refreshLag recomputes the per-node snapshot-staleness gauges —
// predctl_coord_ingest_lag_seconds{node=...} — at scrape time, the
// introspection server's Refresh hook. A node that has never
// snapshotted has no lag series (absence is the signal).
func (c *Coordinator) refreshLag() {
	now := time.Now()
	for _, st := range c.sessionsSorted() {
		st.mu.Lock()
		at := st.lastSnapAt
		st.mu.Unlock()
		if at.IsZero() {
			continue
		}
		c.live.FloatGauge("predctl_coord_ingest_lag_seconds",
			obs.L("node", strconv.Itoa(st.id))).Set(now.Sub(at).Seconds())
	}
	if c.store != nil {
		segs, bytes := c.store.Stats()
		c.live.Gauge("predctl_store_segments_total").Set(int64(segs))
		c.live.Gauge("predctl_store_segment_bytes").Set(bytes)
	}
}

// sessionsSorted snapshots the session table in node-id order.
func (c *Coordinator) sessionsSorted() []*nodeSession {
	c.mu.Lock()
	sessions := make([]*nodeSession, 0, len(c.sessions))
	for _, st := range c.sessions {
		sessions = append(sessions, st)
	}
	c.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	return sessions
}

// CoordStatus is the coordinator's /statusz document: the cluster's
// completion state plus one row per attached node — what `pctl top`
// renders.
type CoordStatus struct {
	N         int    `json:"n"`
	Epoch     uint32 `json:"epoch"`
	Restarts  int    `json:"restarts"`
	Done      int    `json:"done"`
	Byes      int    `json:"byes"`
	Shutdown  bool   `json:"shutdown"`
	Committed bool   `json:"committed"`
	UptimeMs  int64  `json:"uptime_ms"`
	// Live reports whether online detection is enabled; Detections is
	// the confirmed-detection count across all epochs, LiveFired whether
	// the current epoch has a confirmed detection, and ReExecs the
	// detection-triggered re-executions ordered so far.
	Live       bool              `json:"live"`
	Detections int               `json:"detections"`
	LiveFired  bool              `json:"live_fired"`
	ReExecs    int               `json:"reexecs"`
	Nodes      []CoordNodeStatus `json:"nodes"`
	// Relays holds one row per relay uplink when the cluster ingests
	// through an aggregation tree (empty for a flat topology).
	Relays []CoordRelayStatus `json:"relays,omitempty"`
	// StoreSegments / StoreBytes report the trace store's footprint
	// when capture spills to disk (both zero without a store).
	StoreSegments int   `json:"store_segments,omitempty"`
	StoreBytes    int64 `json:"store_bytes,omitempty"`
}

// CoordNodeStatus is one node's row in CoordStatus.
type CoordNodeStatus struct {
	Node       int    `json:"node"`
	Epoch      uint32 `json:"epoch"` // the stream's epoch (last EpochMark)
	LastSeq    uint64 `json:"last_seq"`
	Candidates int    `json:"candidates"`
	// Detections counts confirmed live detections whose streaming
	// witness this node's candidate completed.
	Detections int  `json:"detections"`
	Done       bool `json:"done"`
	Bye        bool `json:"bye"`
	// LagMs is the age of the node's last metrics snapshot; -1 until
	// one arrives.
	LagMs float64 `json:"lag_ms"`
	// Metrics folds the node's last snapshot into per-name totals
	// (counters and gauges, labels summed out) so pollers need not
	// parse series keys.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Status assembles the live status document. Safe to call while the
// run streams; it takes only brief per-session locks.
func (c *Coordinator) Status() CoordStatus {
	now := time.Now()
	c.mu.Lock()
	s := CoordStatus{
		N: c.n, Epoch: c.epoch, Restarts: c.restarts,
		Done: c.doneCount, Byes: c.byeCount,
		UptimeMs:   now.Sub(c.start).Milliseconds(),
		Live:       c.ld != nil,
		Detections: len(c.detections),
		ReExecs:    c.reexecs,
	}
	doneSeen := append([]bool(nil), c.doneSeen...)
	byeSeen := append([]bool(nil), c.byeSeen...)
	detByNode := append([]int(nil), c.detByNode...)
	c.mu.Unlock()
	if c.ld != nil {
		s.LiveFired = c.ld.Fired()
	}
	c.shutdownMu.Lock()
	s.Shutdown, s.Committed = c.shutdown, c.committed
	c.shutdownMu.Unlock()
	for _, st := range c.sessionsSorted() {
		st.mu.Lock()
		row := CoordNodeStatus{
			Node: st.id, Epoch: st.epoch, LastSeq: st.lastSeq,
			Candidates: st.cands, LagMs: -1,
			Metrics: obs.SumByName(toObsPoints(st.lastSnap)),
		}
		if !st.lastSnapAt.IsZero() {
			row.LagMs = float64(now.Sub(st.lastSnapAt).Microseconds()) / 1e3
		}
		st.mu.Unlock()
		if st.id >= 0 && st.id < len(doneSeen) {
			row.Done, row.Bye = doneSeen[st.id], byeSeen[st.id]
		}
		if st.id >= 0 && st.id < len(detByNode) {
			row.Detections = detByNode[st.id]
		}
		s.Nodes = append(s.Nodes, row)
	}
	s.Relays = c.relayStatusRows(now)
	if c.store != nil {
		s.StoreSegments, s.StoreBytes = c.store.Stats()
	}
	return s
}

// Annotate records a cluster-level instant event — a chaos injection,
// an epoch bump — on the merged journal's timeline. Annotations use
// Proc -1 (no logical process; the trace exporter renders them on a
// cluster pseudo-row) and survive epoch discards: they describe the
// run's real history, which controlled re-execution does not rewrite.
func (c *Coordinator) Annotate(name string, a, b int64) {
	c.AnnotateAt(time.Since(c.start).Nanoseconds(), name, a, b)
}

// AnnotateAt is Annotate with an explicit timestamp (nanoseconds
// relative to the run start) — for events whose schedule is known a
// priori, like partition windows.
func (c *Coordinator) AnnotateAt(atNs int64, name string, a, b int64) {
	e := obs.Event{
		At: atNs, Proc: -1,
		Kind: obs.KindControl, Name: name, A: a, B: b,
	}
	c.mu.Lock()
	c.annots = append(c.annots, e)
	c.mu.Unlock()
}

// ingestCandidate stages one candidate report and, when live detection
// is on, offers it to the incremental checker at the stream's epoch (so
// an abandoned execution's stragglers are discarded, not believed). It
// reports whether the caller owes a prefix-confirmation pass. The
// candidate's journal event is emitted node-side (with a real
// timestamp) rather than synthesized here.
func (c *Coordinator) ingestCandidate(st *nodeSession, v wire.Candidate) bool {
	c.cands.Inc()
	st.mu.Lock()
	st.cands++
	e := st.epoch
	st.mu.Unlock()
	if c.ld == nil {
		return false
	}
	return c.ld.Offer(e, livedetect.Interval{
		Proc: int(v.Proc), LoIdx: v.LoIdx, HiIdx: v.HiIdx, Lo: v.Lo, Hi: v.Hi,
	})
}

// stagedOps snapshots every session's staged capture for epoch e,
// grouped by logical process — the input to the live prefix
// confirmation. Sessions still at an older epoch contribute nothing:
// their ops predate the EpochMark that will void them. With a trace
// store configured the volume lives on disk, so the snapshot streams
// each live session's records back through the same decode path —
// the store's per-origin index already reflects every epoch discard.
func (c *Coordinator) stagedOps(e uint32) [][]wire.TraceOp {
	byProc := make([][]wire.TraceOp, 2*c.n)
	addOp := func(op wire.TraceOp) {
		if p := int(op.Proc); p >= 0 && p < 2*c.n {
			byProc[p] = append(byProc[p], op)
		}
	}
	for _, st := range c.sessionsSorted() {
		st.mu.Lock()
		live := st.epoch == e
		if live {
			for _, op := range st.ops {
				addOp(op)
			}
		}
		st.mu.Unlock()
		if live && c.store != nil {
			err := c.store.Replay(int32(st.id), func(_ uint64, m wire.Msg) error {
				switch v := m.(type) {
				case wire.Trace:
					for _, op := range v.Ops {
						addOp(op)
					}
				case wire.TraceOpBatch:
					for _, op := range v.Ops {
						addOp(op)
					}
				}
				return nil
			})
			if err != nil {
				c.logf("coordinator: node %d: store replay: %v", st.id, err)
			}
		}
	}
	return byProc
}

// fireDetection runs the confirming stage after the streaming checker
// triggered: assemble the staged capture's causally closed prefix and
// decide possibly(¬B) on it for real. Like the other terminal
// decisions it runs under shutdownMu and revalidates — a trigger a
// concurrent restart just voided dies here instead of firing into the
// wrong epoch. witness is the node whose frame carried the triggering
// candidate (display attribution only; the record prefers the
// checker's own triggering interval).
func (c *Coordinator) fireDetection(witness int) {
	c.shutdownMu.Lock()
	defer c.shutdownMu.Unlock()
	if c.ld == nil || c.committed {
		return
	}
	c.mu.Lock()
	e := c.epoch
	c.mu.Unlock()
	if !c.ld.Pending(e) {
		return // superseded by a restart, or already confirmed
	}
	c.confirmLocked(e, witness, false)
}

// confirmLocked decides possibly(¬B) on epoch e's captured prefix and,
// when a consistent cut is found, records the detection and fires the
// OnDetect response. A not-found is not a verdict — the cut may lie
// beyond the current prefix, so the trigger stays pending and later
// candidates retry on the grown capture. Caller holds shutdownMu.
func (c *Coordinator) confirmLocked(e uint32, witness int, final bool) {
	d, _, err := livedetect.AssemblePrefix(c.n, c.stagedOps(e))
	if err != nil {
		c.logf("coordinator: live confirm: %v", err)
		return
	}
	cut, found := detect.PossiblyGeneral(d, c.violation)
	if !found {
		return
	}
	if !c.ld.Confirm(e) {
		return // a concurrent confirmer won, or the epoch moved on
	}
	rec := DetectionRecord{
		Epoch: e, Node: witness, AtNs: time.Since(c.start).Nanoseconds(),
		Cut: cutToInt64(cut), Final: final,
	}
	if iv, ok := c.ld.Trigger(); ok {
		rec.Node, rec.WitnessHiIdx = iv.Proc, iv.HiIdx
	}
	// The active-debugging payload: §4's off-line control algorithm on
	// the confirmed prefix yields the synchronization strategy the
	// controlled re-execution would drive the run through. Failure to
	// find one (¬B may be uncontrollable) downgrades the response to a
	// plain uncontrolled re-execution, it does not suppress the
	// detection.
	if rel, _, err := offline.ControlGeneral(d, c.liveCfg.Predicate); err == nil {
		rec.StrategyEdges = len(rel)
	} else {
		c.logf("coordinator: live detection: no control strategy: %v", err)
	}
	c.mu.Lock()
	canReExec := !final && c.liveCfg.OnDetect == OnDetectReExec && c.reexecs < c.liveCfg.MaxReExecs
	rec.ReExec = canReExec
	c.detections = append(c.detections, rec)
	if rec.Node >= 0 && rec.Node < len(c.detByNode) {
		c.detByNode[rec.Node]++
	}
	c.mu.Unlock()
	c.detMeter.Inc()
	c.Annotate(obs.EvDetect, int64(rec.Node), int64(e))
	c.logf("coordinator: live detection: possibly(¬B) confirmed at epoch %d (witness node %d, cut %v)",
		e, rec.Node, cut)
	if canReExec {
		c.reexecClusterLocked(rec)
	}
}

// reexecClusterLocked is restartClusterLocked's detection-triggered
// twin — the paper's active-debugging response, driven automatically:
// void the epoch the violation was observed in, announce the detection
// (Detection frame, so every node knows it now runs under control) and
// order the §8 controlled re-execution (ReExec frame, which nodes
// treat as a Restart). Caller holds shutdownMu.
func (c *Coordinator) reexecClusterLocked(rec DetectionRecord) {
	c.shutdown = false
	c.mu.Lock()
	c.epoch++
	c.reexecs++
	ne := c.epoch
	c.doneCount, c.byeCount = 0, 0
	for i := range c.doneSeen {
		c.doneSeen[i] = false
		c.byeSeen[i] = false
	}
	conns := c.snapshotConnsLocked()
	c.mu.Unlock()
	c.ld.Reset(ne)
	c.logf("coordinator: detection at epoch %d: controlled re-execution at epoch %d (%d strategy edges)",
		rec.Epoch, ne, rec.StrategyEdges)
	c.Annotate(obs.EvEpochReExec, int64(rec.Node), int64(ne))
	c.broadcast(conns, wire.Detection{
		Epoch: rec.Epoch, Node: int32(rec.Node), AtNs: rec.AtNs, Cut: rec.Cut,
	}, "detection")
	c.broadcast(conns, wire.ReExec{Epoch: ne, Edges: uint32(rec.StrategyEdges)}, "reexec")
}

// finalLiveLocked is the commit-time closing pass: force the trigger
// and confirm once more on the complete final-epoch capture, so the
// live verdict coincides exactly with the offline decision on the
// assembled trace — the streaming stage's conservatism (node-level
// clocks over-approximate causality) cannot cost a detection, only
// immediacy. The run is complete, so the pass never re-executes.
// Caller holds shutdownMu.
func (c *Coordinator) finalLiveLocked(e uint32) {
	if c.ld == nil {
		return
	}
	if c.ld.ForceTrigger(e) {
		c.confirmLocked(e, -1, true)
	}
}

func cutToInt64(cut deposet.Cut) []int64 {
	out := make([]int64, len(cut))
	for i, v := range cut {
		out[i] = int64(v)
	}
	return out
}

// IngestBench replays pre-encoded frame bodies through the
// coordinator's decode-and-stage path — exactly what handleNode does
// per frame, minus the socket — so the cluster bench can measure
// ingest allocations per trace op without standing up a listener. It
// returns the number of trace ops staged.
func IngestBench(n int, journal *obs.Journal, bodies [][]byte) (int, error) {
	c := &Coordinator{
		n: n, journal: journal, logf: func(string, ...any) {},
		sessions: map[int]*nodeSession{},
		stats:    make([]Stats, n),
		doneSeen: make([]bool, n), byeSeen: make([]bool, n),
	}
	st := &nodeSession{id: 0}
	for _, body := range bodies {
		_, m, err := wire.DecodeBody(body)
		if err != nil {
			return 0, err
		}
		c.ingest(st, m)
	}
	for _, e := range st.events {
		journal.Append(e)
	}
	return len(st.ops), nil
}

// IngestRelayBench replays pre-encoded RelayBatch frame bodies through
// the root's relayed-ingest path — unpack, per-origin inner-sequence
// dedup, decode-and-stage — the socket-free twin of IngestBench for the
// tree topology. It returns the number of trace ops staged across all
// origins.
func IngestRelayBench(n int, journal *obs.Journal, bodies [][]byte) (int, error) {
	c := &Coordinator{
		n: n, journal: journal, logf: func(string, ...any) {},
		sessions: map[int]*nodeSession{},
		relays:   map[int]*relaySession{},
		stats:    make([]Stats, n),
		doneSeen: make([]bool, n), byeSeen: make([]bool, n),
	}
	rs := &relaySession{origins: map[int]bool{}}
	for _, body := range bodies {
		_, m, err := wire.DecodeBody(body)
		if err != nil {
			return 0, err
		}
		batch, ok := m.(wire.RelayBatch)
		if !ok {
			return 0, fmt.Errorf("node: relay ingest bench: %T, want RelayBatch", m)
		}
		for _, f := range batch.Frames {
			c.ingestRelayed(rs, f)
		}
	}
	ops := 0
	for _, st := range c.sessions {
		ops += len(st.ops)
		for _, e := range st.events {
			journal.Append(e)
		}
	}
	return ops, nil
}

// broadcastShutdown tells every node the execution at epoch e is
// complete — once the decision survives revalidation. A crashed-node
// rejoin can land between the last Done being counted and this call
// taking shutdownMu; the restart voided epoch e, and the stale
// decision must die here rather than race its Restart onto the wire
// (the node side latches whichever arrives first, so a raced Shutdown
// would strand part of the cluster in its bye phase while the rest
// re-executes — the 2/4-done hang).
func (c *Coordinator) broadcastShutdown(e uint32) {
	c.shutdownMu.Lock()
	defer c.shutdownMu.Unlock()
	if c.shutdown || c.committed {
		return
	}
	c.mu.Lock()
	valid := c.epoch == e && c.doneCount == c.n
	conns := c.snapshotConnsLocked()
	c.mu.Unlock()
	if !valid {
		return
	}
	c.shutdown = true
	c.broadcast(conns, wire.Shutdown{Epoch: e}, "shutdown")
}

// commitRun seals the run at epoch e once every bye is in and the
// decision survives revalidation (a rejoin after the last bye restarts
// the cluster instead — until this commit, a completed execution is
// still voidable). After it, no restart is possible, parked nodes may
// exit, and Wait assembles the capture.
func (c *Coordinator) commitRun(e uint32) {
	c.shutdownMu.Lock()
	defer c.shutdownMu.Unlock()
	if c.committed || !c.shutdown {
		return
	}
	c.mu.Lock()
	valid := c.epoch == e && c.byeCount == c.n
	conns := c.snapshotConnsLocked()
	c.mu.Unlock()
	if !valid {
		return
	}
	c.committed = true
	c.broadcast(conns, wire.Commit{}, "commit")
	// Closing live pass after the Commit goes out but before allByes
	// releases Wait: every bye is in, so the staged capture is the
	// complete final-epoch trace, and one last confirmation makes the
	// live verdict coincide with offline detection on the assembled
	// run. Running it after the broadcast overlaps the confirm with the
	// nodes' teardown; the record can't be observed partially because
	// Wait blocks on allByes below (and no restart can void it — the
	// seal is already set, and shutdownMu is held throughout).
	c.finalLiveLocked(e)
	if c.store != nil {
		// Seal after the closing live pass (which still replays from the
		// store) but before Wait is released: the directory is a complete,
		// verifiable capture bundle the moment the run result exists.
		if err := c.store.Seal(c.n, e); err != nil {
			c.logf("coordinator: store seal: %v", err)
		}
	}
	c.byeOnce.Do(func() { close(c.allByes) })
}
