package node

import (
	"bufio"
	"errors"
	"net"
	"sort"
	"sync"
	"time"

	"predctl/internal/wire"
)

// relaySession is the coordinator's per-relay stream state: the outer
// sequence of the relay's uplink session (RelayBatch frames, resumable
// exactly like a node stream) plus fan-in accounting for statusz. The
// per-origin inner sessions live in c.sessions as always — a relay is
// transport, not identity.
type relaySession struct {
	index int

	mu      sync.Mutex
	owner   *coordConn
	lastSeq uint64 // highest contiguous outer (uplink) sequence
	frames  uint64 // RelayBatch frames accepted
	items   uint64 // inner frames unpacked from them
	origins map[int]bool
	lastAt  time.Time
}

// relaySession returns (creating if needed) the state for relay index.
func (c *Coordinator) relaySession(index int) *relaySession {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.relays[index]
	if rs == nil {
		rs = &relaySession{index: index, origins: map[int]bool{}}
		c.relays[index] = rs
	}
	return rs
}

// attachRelay installs conn as relay index's uplink, closing any
// superseded one.
func (c *Coordinator) attachRelay(index int, conn *coordConn) {
	c.mu.Lock()
	old := c.relayConns[index]
	c.relayConns[index] = conn
	c.mu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
}

// handleRelay serves one relay uplink: RelayHello handshake (the
// relay-flavored Resume — the ack's Cum is the outer sequence, and the
// decision replay is what the relay caches for its children), then
// sequence-checked ingest of RelayBatch frames, each unpacked into
// per-origin inner frames that flow through the very same
// session-dedup-and-stage path a direct node stream takes.
func (c *Coordinator) handleRelay(conn *coordConn, br *bufio.Reader, rawConn net.Conn, h wire.RelayHello) {
	if int(h.N) != c.n || h.Relay < 0 || h.Relays < 1 || h.Relay >= h.Relays {
		c.logf("coordinator: bad relay hello %#v", h)
		return
	}
	index := int(h.Relay)
	rs := c.relaySession(index)
	rs.mu.Lock()
	rs.owner = conn
	if !h.Resume {
		// A fresh relay process: its uplink session log starts over, so
		// the outer numbering resets. The per-origin inner sessions are
		// untouched — the children kept their capture logs, and their
		// full replays dedup below by inner sequence.
		rs.lastSeq = 0
	}
	cum := rs.lastSeq
	rs.mu.Unlock()
	c.attachRelay(index, conn)

	// Same consistency contract as a node Resume: the ack and the
	// replayed decisions reflect one decision state, unraced by new
	// broadcasts.
	c.shutdownMu.Lock()
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	err := conn.writeFrame(c.opt, wire.ResumeAck{Cum: cum, Epoch: epoch})
	if err == nil {
		if last := c.lastReExecDetection(); last != nil {
			err = conn.writeFrame(c.opt, wire.Detection{
				Epoch: last.Epoch, Node: int32(last.Node),
				AtNs: last.AtNs, Cut: last.Cut,
			})
		}
	}
	if err == nil && c.shutdown {
		err = conn.writeFrame(c.opt, wire.Shutdown{Epoch: epoch})
	}
	if err == nil && c.committed {
		err = conn.writeFrame(c.opt, wire.Commit{})
	}
	c.shutdownMu.Unlock()
	if err != nil {
		c.logf("coordinator: relay %d: handshake: %v", index, err)
		return
	}

	for {
		rawConn.SetReadDeadline(time.Now().Add(30 * time.Second))
		body, err := wire.ReadRawBody(br)
		if err != nil {
			select {
			case <-c.closed:
			default:
				if !errors.Is(err, net.ErrClosed) {
					c.logf("coordinator: relay %d stream: %v", index, err)
				}
			}
			return
		}
		c.rootFrames.Add(1)
		c.rootBytes.Add(int64(len(body) + 4))
		seq, m, err := wire.DecodeBody(body)
		if err != nil {
			c.logf("coordinator: relay %d: %v", index, err)
			return
		}
		batch, ok := m.(wire.RelayBatch)
		if !ok {
			c.logf("coordinator: relay %d: unexpected %T", index, m)
			continue
		}
		rs.mu.Lock()
		if rs.owner != conn {
			rs.mu.Unlock()
			return
		}
		switch {
		case seq <= rs.lastSeq:
			// Uplink resume replay overlap: the whole batch was already
			// unpacked (inner dedup would drop it anyway, but dropping the
			// outer duplicate is cheaper and keeps the accounting honest).
			rs.mu.Unlock()
			continue
		case seq == rs.lastSeq+1:
			rs.lastSeq = seq
			rs.frames++
			rs.items += uint64(len(batch.Frames))
			rs.lastAt = time.Now()
			for _, f := range batch.Frames {
				rs.origins[int(f.Origin)] = true
			}
			rs.mu.Unlock()
		default:
			rs.mu.Unlock()
			c.logf("coordinator: relay %d: sequence gap (%d after %d); dropping connection for resume",
				index, seq, rs.lastSeq)
			return
		}
		for _, f := range batch.Frames {
			act, e := c.ingestRelayed(rs, f)
			switch act {
			case actAllDone:
				c.broadcastShutdown(e)
			case actAllByes:
				c.commitRun(e)
			case actDetected:
				c.fireDetection(int(f.Origin))
			}
		}
	}
}

// ingestRelayed unpacks one relayed inner frame into its origin's
// session: the same owner-free dedup a direct stream gets, except the
// inner sequence may jump forward — relay-side coalescing (snapshot
// folding, epoch discards) legally removes frames from the middle of a
// child's stream, so only the monotonicity matters, not contiguity.
func (c *Coordinator) ingestRelayed(rs *relaySession, f wire.RelayFrame) (ingestAction, uint32) {
	origin := int(f.Origin)
	if origin < 0 || origin >= c.n {
		c.logf("coordinator: relay %d: frame for unknown origin %d", rs.index, origin)
		return actNone, 0
	}
	kind, iseq, err := wire.PeekBody(f.Body)
	if err != nil {
		c.logf("coordinator: relay %d: origin %d: %v", rs.index, origin, err)
		return actNone, 0
	}
	st := c.session(origin)
	if kind == wire.KindHello {
		c.relayedHello(st, iseq)
		return actNone, 0
	}
	st.ingestMu.Lock()
	st.mu.Lock()
	if iseq <= st.lastSeq {
		// Relay-crash replay overlap: the relaunched relay acked Cum=0
		// and the child retransmitted its whole session log.
		st.mu.Unlock()
		st.ingestMu.Unlock()
		return actNone, 0
	}
	st.lastSeq = iseq
	st.mu.Unlock()
	_, m, err := wire.DecodeBody(f.Body)
	if err != nil {
		st.ingestMu.Unlock()
		c.logf("coordinator: relay %d: origin %d: %v", rs.index, origin, err)
		return actNone, 0
	}
	act, e := c.ingestStored(st, m, f.Body)
	st.ingestMu.Unlock()
	return act, e
}

// relayedHello runs the Hello decision for a relayed origin — the same
// fresh-vs-rejoin logic handleNode runs for a direct one, minus the
// targeted catch-up writes (the relay replays its cached decisions to
// the child locally). The root stays the sole owner of the restart
// decision: its per-origin attached bit survives relay crashes, so a
// node relaunch behind a relay still voids the epoch.
func (c *Coordinator) relayedHello(st *nodeSession, iseq uint64) {
	c.shutdownMu.Lock()
	st.ingestMu.Lock()
	st.mu.Lock()
	rejoin := st.attached
	if rejoin && c.committed {
		st.mu.Unlock()
		st.ingestMu.Unlock()
		c.shutdownMu.Unlock()
		c.logf("coordinator: node %d rejoined after commit (via relay); refused", st.id)
		return
	}
	st.attached = true
	st.resetLocked(iseq)
	if c.store != nil {
		c.store.Discard(int32(st.id))
	}
	st.mu.Unlock()
	st.ingestMu.Unlock()
	if rejoin {
		c.restartClusterLocked(st.id)
	}
	c.shutdownMu.Unlock()
}

// CoordRelayStatus is one relay's row in CoordStatus — the fan-in tree
// as `pctl top` shows it.
type CoordRelayStatus struct {
	Relay int `json:"relay"`
	// FanIn is the number of distinct origins whose frames this relay
	// has forwarded.
	FanIn int `json:"fan_in"`
	// Frames counts forwarded RelayBatch frames, Items the inner frames
	// re-batched into them.
	Frames uint64 `json:"frames"`
	Items  uint64 `json:"items"`
	// LastSeq is the uplink's highest contiguous outer sequence.
	LastSeq uint64 `json:"last_seq"`
	// LagMs is the age of the last accepted uplink frame; -1 until one
	// arrives.
	LagMs float64 `json:"lag_ms"`
}

// relayStatusRows snapshots the relay table in index order.
func (c *Coordinator) relayStatusRows(now time.Time) []CoordRelayStatus {
	c.mu.Lock()
	relays := make([]*relaySession, 0, len(c.relays))
	for _, rs := range c.relays {
		relays = append(relays, rs)
	}
	c.mu.Unlock()
	sort.Slice(relays, func(i, j int) bool { return relays[i].index < relays[j].index })
	var rows []CoordRelayStatus
	for _, rs := range relays {
		rs.mu.Lock()
		row := CoordRelayStatus{
			Relay: rs.index, FanIn: len(rs.origins),
			Frames: rs.frames, Items: rs.items, LastSeq: rs.lastSeq,
			LagMs: -1,
		}
		if !rs.lastAt.IsZero() {
			row.LagMs = float64(now.Sub(rs.lastAt).Microseconds()) / 1e3
		}
		rs.mu.Unlock()
		rows = append(rows, row)
	}
	return rows
}
