package node

// relay_test.go pins the hierarchical-ingest tier: real cluster runs
// through a 2-level aggregation tree (fault-free, relay kill, chaos
// soak, disk-backed store), and scripted byte-equivalence runs proving
// that neither the relay hop, a relay crash mid-stream, nor spilling
// capture to the trace store changes a single byte of the assembled
// trace.

import (
	"bytes"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"predctl/internal/obs"
	"predctl/internal/store"
	"predctl/internal/trace"
	"predctl/internal/wire"
)

func TestClusterTree(t *testing.T) {
	const n, rounds = 4, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: testTimeouts(), Relays: 2,
	})
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// The whole point of the tree: the root terminated relay uplinks,
	// not n node streams. Every handshake the root accepted must have
	// been a RelayHello (2 relays, no crashes, no resumes).
	if res.RootConns != 2 {
		t.Errorf("root accepted %d stream handshakes, want 2 (one per relay)", res.RootConns)
	}
	if res.RootFrames == 0 {
		t.Error("root ingested zero frames through the tree")
	}
}

// TestClusterTreeRelayCrash kills a relay mid-run: the children heal by
// session-resuming against the relaunched relay, the root dedups the
// replayed overlap by inner sequence, and — unlike a node crash — no
// epoch restart happens, because no capture was lost.
func TestClusterTreeRelayCrash(t *testing.T) {
	const n, rounds = 4, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 7, Timeouts: chaosTimeouts(), Relays: 2,
		RelayCrashes: []Crash{{At: 8 * time.Millisecond, Node: 0, Down: 5 * time.Millisecond}},
	})
	if res.Restarts != 0 {
		t.Fatalf("a relay kill (no node crash) triggered %d epoch restarts", res.Restarts)
	}
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterTreeChaosSoak is the -race soak on the tree path: node
// crashes (epoch restarts), a relay kill, probabilistic faults and a
// coordinator-stream partition, all composed — the run must complete
// with zero capture loss and the invariants green.
func TestClusterTreeChaosSoak(t *testing.T) {
	const n, rounds = 4, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 42, Timeouts: chaosTimeouts(), Relays: 2,
		Faults: Faults{Drop: 0.1, Delay: 500 * time.Microsecond, Seed: 42},
		Crashes: []Crash{
			{At: 5 * time.Millisecond, Node: 1, Down: 3 * time.Millisecond},
			{At: 20 * time.Millisecond, Node: 2, Down: 4 * time.Millisecond},
		},
		RelayCrashes: []Crash{{At: 12 * time.Millisecond, Node: 1, Down: 4 * time.Millisecond}},
	})
	if res.Restarts < 1 {
		t.Fatalf("soak schedule produced %d restarts, want ≥ 1", res.Restarts)
	}
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterTreeStoreBundle runs the tree with capture spilling to the
// on-disk trace store: the run completes with full capture, and the
// store directory is a sealed, verifiable bundle whose records
// reassemble the run.
func TestClusterTreeStoreBundle(t *testing.T) {
	const n, rounds = 4, 3
	dir := t.TempDir()
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: testTimeouts(), Relays: 2, StoreDir: dir,
	})
	checkFullCapture(t, res, n, rounds)
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	man, err := store.Verify(dir)
	if err != nil {
		t.Fatalf("sealed bundle fails verification: %v", err)
	}
	if man.N != n {
		t.Fatalf("manifest n=%d, want %d", man.N, n)
	}
	records := 0
	if _, err := store.ReplayBundle(dir, func(wire.SegmentRecord, uint64, wire.Msg) error {
		records++
		return nil
	}); err != nil {
		t.Fatalf("bundle replay: %v", err)
	}
	if records == 0 {
		t.Fatal("sealed bundle holds no records")
	}
	if _, err := store.Verify(filepath.Dir(dir)); err == nil {
		t.Fatal("Verify accepted a directory with no manifest")
	}
}

// scriptedFrames is one scripted node's deterministic capture: a small
// valid trace (init, a cross-node message, steps) plus journal events
// with fixed timestamps, split into two halves so a test can break the
// transport between them.
func scriptedFrames(n, id int) (first, second []wire.Msg) {
	app, ctl := int32(id), int32(n+id)
	msgID := uint64(id)<<40 | 1
	first = []wire.Msg{
		wire.TraceOpBatch{Ops: []wire.TraceOp{
			{Op: wire.TraceInit, Proc: app, Name: "cs", Value: 0},
			{Op: wire.TraceInit, Proc: ctl, Name: "tokens", Value: int64(id)},
			{Op: wire.TraceStep, Proc: app},
			{Op: wire.TraceSend, Proc: ctl, MsgID: msgID},
		}},
		wire.JournalEvent{At: int64(100 + id), Proc: app, Kind: 1, Name: "scripted.first", A: int64(id)},
	}
	// Every node receives its left neighbor's message: the cross-node
	// edges force assemble's topological sweep across streams.
	prev := uint64((id+n-1)%n)<<40 | 1
	second = []wire.Msg{
		wire.TraceOpBatch{Ops: []wire.TraceOp{
			{Op: wire.TraceRecv, Proc: ctl, MsgID: prev},
			{Op: wire.TraceSet, Proc: app, Name: "cs", Value: 1},
			{Op: wire.TraceSet, Proc: app, Name: "cs", Value: 0},
		}},
		wire.JournalEvent{At: int64(200 + id), Proc: ctl, Kind: 1, Name: "scripted.second", B: int64(id)},
		wire.Done{Proc: app, Requests: 1},
	}
	return first, second
}

// runScripted drives n scripted capture streams through an optional
// relay tier into a coordinator and returns the assembled result. When
// killRelay is set, the relay is killed and relaunched between the two
// halves of the script, forcing every client through a session resume
// and the root through a full-replay dedup.
func runScripted(t *testing.T, n int, relays, killRelay bool, storeDir string) (*Result, *obs.Journal) {
	t.Helper()
	j := obs.NewJournal(0)
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
	}
	coord, err := NewCoordinator(CoordConfig{
		N: n, Addr: "127.0.0.1:0", Journal: j, Reg: obs.NewRegistry(),
		Timeouts: chaosTimeouts(), Logf: t.Logf, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	opt := chaosTimeouts().withDefaults()
	addr := coord.Addr()
	var rl *Relay
	var relayAddr string
	if relays {
		rl, err = StartRelay(RelayConfig{
			Index: 0, Relays: 1, N: n, Upstream: coord.Addr(),
			Addr: "127.0.0.1:0", Timeouts: chaosTimeouts(), Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		relayAddr = rl.Addr()
		addr = relayAddr
		defer func() { rl.Close() }()
	}

	ccs := make([]*coordClient, n)
	for i := 0; i < n; i++ {
		cc, err := dialCoord(addr, i, n, Batching{}, newWireMeters(nil, "coord", nil), opt, nil, t.Logf)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		ccs[i] = cc
		defer cc.close()
	}
	for i, cc := range ccs {
		first, _ := scriptedFrames(n, i)
		for _, m := range first {
			cc.send(m)
		}
	}
	if killRelay {
		// Let the first halves drain upstream, then kill the relay
		// abruptly and relaunch it on the same address: the clients'
		// session machinery resumes, the relaunched relay acks Cum=0,
		// and the full replays dedup at the root.
		time.Sleep(50 * time.Millisecond)
		rl.Close()
		ln, err := net.Listen("tcp", relayAddr)
		if err != nil {
			t.Fatalf("relaunch relay listen: %v", err)
		}
		rl, err = StartRelay(RelayConfig{
			Index: 0, Relays: 1, N: n, Upstream: coord.Addr(),
			Listener: ln, Timeouts: chaosTimeouts(), Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("relaunch relay: %v", err)
		}
	}
	for i, cc := range ccs {
		_, second := scriptedFrames(n, i)
		for _, m := range second {
			cc.send(m)
		}
	}
	// Completion protocol: wait for the Shutdown broadcast, echo it as
	// the bye, wait for Commit.
	for i, cc := range ccs {
		select {
		case e := <-cc.shutdownEv:
			cc.send(wire.Shutdown{Epoch: e})
		case <-time.After(10 * time.Second):
			t.Fatalf("client %d: no Shutdown broadcast", i)
		}
	}
	for i, cc := range ccs {
		select {
		case <-cc.commitCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("client %d: no Commit broadcast", i)
		}
	}
	res, err := coord.Wait(30 * time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return res, j
}

func encodeTrace(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, res.Deposet, nil); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestRelayCrashResumeEquivalence is the byte-identity gate for the
// relay tier: the same scripted capture assembled (a) flat, (b)
// through a relay, and (c) through a relay that crashed and was
// relaunched mid-script must produce byte-identical traces and
// identical merged journals.
func TestRelayCrashResumeEquivalence(t *testing.T) {
	const n = 3
	flat, jFlat := runScripted(t, n, false, false, "")
	tree, jTree := runScripted(t, n, true, false, "")
	crash, jCrash := runScripted(t, n, true, true, "")

	want := encodeTrace(t, flat)
	if got := encodeTrace(t, tree); !bytes.Equal(got, want) {
		t.Error("relayed trace differs from flat trace")
	}
	if got := encodeTrace(t, crash); !bytes.Equal(got, want) {
		t.Error("relay-crash trace differs from flat trace")
	}
	if !reflect.DeepEqual(jTree.Events(), jFlat.Events()) {
		t.Error("relayed journal differs from flat journal")
	}
	if !reflect.DeepEqual(jCrash.Events(), jFlat.Events()) {
		t.Error("relay-crash journal differs from flat journal")
	}
	for _, res := range []*Result{flat, tree, crash} {
		if res.Candidates != 0 || res.Epoch != 0 || res.Restarts != 0 {
			t.Errorf("scripted run completed dirty: %+v", res)
		}
	}
}

// TestStoreEquivalence is the byte-identity gate for the disk spill:
// the same scripted capture assembled from RAM staging and from the
// segmented trace store must be byte-identical, and the sealed bundle
// must verify.
func TestStoreEquivalence(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	ram, jRAM := runScripted(t, n, false, false, "")
	disk, jDisk := runScripted(t, n, false, false, dir)

	if got, want := encodeTrace(t, disk), encodeTrace(t, ram); !bytes.Equal(got, want) {
		t.Error("disk-backed trace differs from in-RAM trace")
	}
	if !reflect.DeepEqual(jDisk.Events(), jRAM.Events()) {
		t.Error("disk-backed journal differs from in-RAM journal")
	}
	man, err := store.Verify(dir)
	if err != nil {
		t.Fatalf("sealed bundle fails verification: %v", err)
	}
	if man.N != n || man.Epoch != 0 {
		t.Fatalf("manifest %+v, want n=%d epoch=0", man, n)
	}
}
