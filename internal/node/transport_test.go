package node

import (
	"net"
	"reflect"
	"testing"
	"time"

	"predctl/internal/deposet"
	"predctl/internal/wire"
)

// testTimeouts keeps retransmission and redial snappy under test.
func testTimeouts() Timeouts {
	return Timeouts{RTO: 5 * time.Millisecond, BackoffMin: 2 * time.Millisecond}
}

func newPair(t *testing.T, faults Faults) (*Transport, *Transport) {
	t.Helper()
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*Transport, 2)
	for i := range ts {
		tr, err := NewTransport(TransportConfig{
			ID: i, N: 2, Addrs: addrs, Listener: lns[i],
			Faults: faults, Timeouts: testTimeouts(),
		})
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		ts[i] = tr
	}
	t.Cleanup(func() { ts[0].Close(); ts[1].Close() })
	return ts[0], ts[1]
}

// drain collects want messages from tr, failing on timeout.
func drain(t *testing.T, tr *Transport, want int) []Recv {
	t.Helper()
	var got []Recv
	deadline := time.After(30 * time.Second)
	for len(got) < want {
		select {
		case r := <-tr.RecvCh():
			got = append(got, r)
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages", len(got), want)
		}
	}
	return got
}

// TestTransportExactlyOnceInOrder holds the reliable link to its
// contract under an aggressive fault shim: despite drops, duplicates
// and delayed writes, every message arrives exactly once, in send
// order, in both directions at once.
func TestTransportExactlyOnceInOrder(t *testing.T) {
	a, b := newPair(t, Faults{Drop: 0.3, Dup: 0.3, Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond, Seed: 42})
	const msgs = 150
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(1, wire.Ctl{Kind: wire.CtlReq, From: 0, To: 1, TraceID: uint64(i)})
		}
	}()
	go func() {
		for i := 0; i < msgs; i++ {
			b.Send(0, wire.Ctl{Kind: wire.CtlAck, From: 1, To: 0, TraceID: uint64(i)})
		}
	}()
	for name, tr := range map[string]*Transport{"a→b": b, "b→a": a} {
		got := drain(t, tr, msgs)
		for i, r := range got {
			c := r.Msg.(wire.Ctl)
			if c.TraceID != uint64(i) {
				t.Fatalf("%s: message %d has TraceID %d (reordered, lost, or duplicated)", name, i, c.TraceID)
			}
		}
	}
}

// TestTransportReconnect kills the established connection mid-stream;
// the link must redial and the ARQ must recover everything the break
// swallowed.
func TestTransportReconnect(t *testing.T) {
	a, b := newPair(t, Faults{})
	for i := 0; i < 50; i++ {
		a.Send(1, wire.Ctl{From: 0, To: 1, TraceID: uint64(i)})
		if i == 25 {
			a.links[1].dropConn()
		}
	}
	got := drain(t, b, 50)
	for i, r := range got {
		if c := r.Msg.(wire.Ctl); c.TraceID != uint64(i) {
			t.Fatalf("message %d has TraceID %d after reconnect", i, c.TraceID)
		}
	}
}

// TestFaultRandDeterministic pins the shim's contract: the same (seed,
// link) yields the same decision stream, and distinct links diverge.
func TestFaultRandDeterministic(t *testing.T) {
	f := Faults{Drop: 0.4, Dup: 0.4, Delay: time.Millisecond, Jitter: time.Millisecond, Seed: 7}
	stream := func(from, to int) []decision {
		fr := newFaultRand(f, from, to)
		out := make([]decision, 256)
		for i := range out {
			out[i] = fr.next()
		}
		return out
	}
	if !reflect.DeepEqual(stream(0, 1), stream(0, 1)) {
		t.Fatal("same seed and link produced different decision streams")
	}
	if reflect.DeepEqual(stream(0, 1), stream(1, 0)) {
		t.Fatal("opposite link directions produced identical decision streams")
	}
	if reflect.DeepEqual(stream(0, 1), stream(0, 2)) {
		t.Fatal("distinct links produced identical decision streams")
	}
}

// TestAssemble covers the coordinator's trace reassembly: a valid
// capture round-trips into a deposet with the right causality, an
// unreceived message stays in flight, and a receive with no matching
// send is reported as a wedge, not mis-assembled.
func TestAssemble(t *testing.T) {
	// n=1 node → processes 0 (app) and 1 (controller). App sends to the
	// controller, controller replies; one controller send stays in
	// flight.
	ops := [][]wire.TraceOp{
		{
			{Op: wire.TraceInit, Proc: 0, Name: "cs", Value: 0},
			{Op: wire.TraceSend, Proc: 0, MsgID: 1},
			{Op: wire.TraceRecv, Proc: 0, MsgID: 2},
			{Op: wire.TraceSet, Proc: 0, Name: "cs", Value: 1},
		},
		{
			{Op: wire.TraceRecv, Proc: 1, MsgID: 1},
			{Op: wire.TraceSend, Proc: 1, MsgID: 2},
			{Op: wire.TraceSend, Proc: 1, MsgID: 3}, // never received
		},
	}
	d, err := assemble(1, ops)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if d.NumProcs() != 2 || d.Len(0) != 4 || d.Len(1) != 4 {
		t.Fatalf("wrong shape: %d procs, lens %d/%d", d.NumProcs(), d.Len(0), d.Len(1))
	}
	inFlight := 0
	for _, m := range d.Messages() {
		if !m.Received() {
			inFlight++
		}
	}
	if inFlight != 1 {
		t.Fatalf("want 1 in-flight message, got %d", inFlight)
	}
	// The app's send happens-before the controller's reply receive.
	if !d.HB(deposet.StateID{P: 0, K: 1}, deposet.StateID{P: 0, K: 2}) {
		t.Fatal("local order lost")
	}
	if v, ok := d.Var(deposet.StateID{P: 0, K: 3}, "cs"); !ok || v != 1 {
		t.Fatalf("cs at final app state = %d, %v", v, ok)
	}

	// A receive of a message nobody sent must wedge with a clear error.
	bad := [][]wire.TraceOp{
		{{Op: wire.TraceRecv, Proc: 0, MsgID: 99}},
		{},
	}
	if _, err := assemble(1, bad); err == nil {
		t.Fatal("assemble accepted a receive of an unsent message")
	}

	// Duplicate trace ids must be rejected, not silently cross-wired.
	dup := [][]wire.TraceOp{
		{{Op: wire.TraceSend, Proc: 0, MsgID: 5}, {Op: wire.TraceSend, Proc: 0, MsgID: 5}},
		{},
	}
	if _, err := assemble(1, dup); err == nil {
		t.Fatal("assemble accepted duplicate trace ids")
	}
}
