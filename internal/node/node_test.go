package node

import (
	"bytes"
	"testing"
	"time"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/obs"
	"predctl/internal/replay"
	"predctl/internal/sim"
	"predctl/internal/trace"
)

func runTestCluster(t *testing.T, cfg ClusterConfig) (*Result, *obs.Journal, *obs.Registry) {
	t.Helper()
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	cfg.Journal = j
	cfg.Reg = reg
	cfg.Logf = t.Logf
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return res, j, reg
}

// checkControlled asserts the captured trace upholds the controlled
// property: no consistent cut has every application in its critical
// section (¬B = ∧ᵢ csᵢ must be impossible).
func checkControlled(t *testing.T, d *deposet.Deposet, n int) {
	t.Helper()
	spec := trace.DisjunctionSpec{}
	for i := 0; i < n; i++ {
		spec.Locals = append(spec.Locals, trace.LocalSpec{P: i, Var: "cs", Op: "eq", Value: 0})
	}
	dj, err := spec.Compile(d.NumProcs())
	if err != nil {
		t.Fatalf("predicate: %v", err)
	}
	if cut, ok := detect.PossiblyConjunctive(d, dj.Negate()); ok {
		t.Fatalf("captured trace violates B: all processes in CS at cut %v", cut)
	}
}

func TestClusterNoFaults(t *testing.T) {
	const n, rounds = 3, 3
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998, Timeouts: testTimeouts(),
	})
	d := res.Deposet
	if d.NumProcs() != 2*n {
		t.Fatalf("captured %d processes, want %d", d.NumProcs(), 2*n)
	}
	totalReq := 0
	for i, s := range res.Stats {
		if s.Requests != rounds {
			t.Errorf("node %d made %d requests, want %d", i, s.Requests, rounds)
		}
		totalReq += s.Requests
	}
	if res.Candidates != n*rounds {
		t.Errorf("%d candidate reports, want %d", res.Candidates, n*rounds)
	}
	checkControlled(t, d, n)

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Every handoff recorded by a releasing controller has its matching
	// acquisition in the merged journal.
	handoffs := 0
	for _, s := range res.Stats {
		handoffs += s.Handoffs
	}
	if got := int(obs.ChainLength(j)); got != handoffs {
		t.Errorf("journal records %d acquisitions, stats %d handoffs", got, handoffs)
	}
	if handoffs == 0 && totalReq > 0 {
		t.Error("no handoffs at all: the anti-token never moved")
	}
}

// TestClusterFaults is the headline robustness test: drops, duplicates
// and delays on every protocol link, and the run must still complete
// with the controlled property, the chain invariant, and the paper's
// response window intact.
func TestClusterFaults(t *testing.T) {
	const n, rounds = 3, 3
	const delay = 2 * time.Millisecond
	res, j, reg := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Seed: 7, Timeouts: testTimeouts(),
		Faults: Faults{Drop: 0.25, Dup: 0.25, Delay: delay, Jitter: time.Millisecond, Seed: 7},
	})
	checkControlled(t, res.Deposet, n)

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	// Every grant that required an anti-token handoff paid two shimmed
	// network hops: response ≥ 2×Delay. The upper bound is generous —
	// wall clocks include retransmissions and scheduler noise.
	rep.CheckResponsesWindow(
		reg.Histogram("predctl_response_handoff_ns"),
		2*delay.Nanoseconds(), (30 * time.Second).Nanoseconds(), j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Checked) != 2 {
		t.Fatalf("expected 2 invariants checked, got %d", len(rep.Checked))
	}
}

func TestClusterBroadcast(t *testing.T) {
	const n, rounds = 3, 2
	res, j, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Broadcast: true, Seed: 3, Timeouts: testTimeouts(),
		Faults: Faults{Drop: 0.15, Delay: time.Millisecond, Seed: 11},
	})
	checkControlled(t, res.Deposet, n)
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterTraceReplay closes the loop the ISSUE promises: a captured
// networked run, round-tripped through the trace file format, replays
// on the sim kernel and every consistent cut of the replay satisfies B.
func TestClusterTraceReplay(t *testing.T) {
	const n, rounds = 3, 2
	res, _, _ := runTestCluster(t, ClusterConfig{
		N: n, Rounds: rounds, Think: 2 * time.Millisecond, CS: time.Millisecond,
		Seed: 2024, Timeouts: testTimeouts(),
		Faults: Faults{Drop: 0.2, Delay: time.Millisecond, Seed: 5},
	})

	// Round-trip through the pctl file format.
	var buf bytes.Buffer
	if err := trace.Encode(&buf, res.Deposet, nil); err != nil {
		t.Fatalf("encode: %v", err)
	}
	d, _, err := trace.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	rr, err := replay.Run(d, nil, replay.Config{Seed: 3, Delay: sim.UniformDelay(1, 5)})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	spec := trace.DisjunctionSpec{}
	for i := 0; i < n; i++ {
		spec.Locals = append(spec.Locals, trace.LocalSpec{P: i, Var: "cs", Op: "eq", Value: 0})
	}
	dj, err := spec.Compile(d.NumProcs())
	if err != nil {
		t.Fatalf("predicate: %v", err)
	}
	if cut, ok := replay.VerifyDisjunction(rr, d, dj); !ok {
		t.Fatalf("replayed run violates B at cut %v", cut)
	}
}
