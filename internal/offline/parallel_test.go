package offline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
)

// Property: Control with the parallel engine forced on (interval
// extraction and infeasibility check sharded across workers) produces
// exactly the sequential result on random instances: same feasibility
// verdict, same relation, same infeasibility witness.
func TestControlParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(5), r.Intn(40)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5+r.Float64()*0.4))
		seqRes, seqErr := Control(d, dj, Options{})
		for _, workers := range []int{2, 4} {
			parRes, parErr := Control(d, dj, Options{
				Par: detect.Par{Workers: workers, Cutoff: 1},
			})
			if (seqErr == nil) != (parErr == nil) {
				return false
			}
			if seqErr != nil {
				if !errors.Is(seqErr, ErrInfeasible) || !errors.Is(parErr, ErrInfeasible) {
					return false
				}
				if len(parRes.Witness) != len(seqRes.Witness) {
					return false
				}
				for i := range seqRes.Witness {
					if parRes.Witness[i] != seqRes.Witness[i] {
						return false
					}
				}
				continue
			}
			if parRes.Fallback != seqRes.Fallback || len(parRes.Relation) != len(seqRes.Relation) {
				return false
			}
			for i := range seqRes.Relation {
				if parRes.Relation[i] != seqRes.Relation[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// A feasible instance solved with the parallel engine still passes the
// full controlled-computation contract.
func TestControlParallelContract(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(4), 10+r.Intn(40)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.8))
		res, err := Control(d, dj, Options{Par: detect.Par{Workers: 4, Cutoff: 1}})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		verifyControlled(t, d, dj, res.Relation)
	}
}
