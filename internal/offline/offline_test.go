package offline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
)

// verifyControlled checks the contract of a successful Control run: the
// relation does not interfere, and the controlled computation has no
// consistent global state where every local predicate is false.
func verifyControlled(t *testing.T, d *deposet.Deposet, dj *predicate.Disjunction, rel control.Relation) {
	t.Helper()
	x, err := control.Extend(d, rel)
	if err != nil {
		t.Fatalf("relation invalid: %v (rel=%v)", err, rel)
	}
	if cut, ok := detect.PossiblyTruth(x, func(p, k int) bool { return !dj.Holds(d, p, k) }); ok {
		t.Fatalf("controlled computation still violates B at %v (rel=%v)", cut, rel)
	}
}

func TestControlAlwaysTrueProcess(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()
	dj := predicate.DisjunctionFromTruth([][]bool{
		{true, true},
		{false, false},
	})
	res, err := Control(d, dj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Relation) != 0 {
		t.Fatalf("expected empty relation, got %v", res.Relation)
	}
	verifyControlled(t, d, dj, res.Relation)
}

func TestControlProcCountMismatch(t *testing.T) {
	d := deposet.NewBuilder(2).MustBuild()
	dj := predicate.NewDisjunction(3)
	if _, err := Control(d, dj, Options{}); err == nil {
		t.Fatal("mismatched process count accepted")
	}
}

// TestControlBottomFalseRegression: a single-state false interval at ⊥
// must not let the chain restart in a false state.
//
//	P0: F T        (interval [0..0])
//	P1: T F T      (interval [1..1])
//
// The correct controller forces P1's entry into its false state to wait
// for P0 to leave ⊥.
func TestControlBottomFalseRegression(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(1)
	b.Step(1)
	d := b.MustBuild()
	dj := predicate.DisjunctionFromTruth([][]bool{
		{false, true},
		{true, false, true},
	})
	res, err := Control(d, dj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Relation) == 0 {
		t.Fatal("empty relation cannot be correct here")
	}
	verifyControlled(t, d, dj, res.Relation)
}

// TestControlMutex is the paper's running example (1): two-process mutual
// exclusion ¬cs1 ∨ ¬cs2, with one critical section each, concurrent.
func TestControlMutex(t *testing.T) {
	b := deposet.NewBuilder(2)
	for p := 0; p < 2; p++ {
		for i := 0; i < 4; i++ {
			b.Step(p)
		}
	}
	d := b.MustBuild() // 5 states each; CS = states [1..2]
	cs := [][]bool{
		{false, true, true, false, false},
		{false, true, true, false, false},
	}
	dj := predicate.NewDisjunction(2)
	for p := 0; p < 2; p++ {
		p := p
		dj.Add(p, "¬cs", func(_ *deposet.Deposet, k int) bool { return !cs[p][k] })
	}
	res, err := Control(d, dj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifyControlled(t, d, dj, res.Relation)
	// One crossing per critical section, at most one message per crossing.
	if res.Iterations > 2 || len(res.Relation) > 2 {
		t.Fatalf("iterations=%d edges=%d; want ≤2 each", res.Iterations, len(res.Relation))
	}
}

// TestControlInfeasible: mutual messages force the two false-intervals to
// overlap in every interleaving (same computation as the detect package's
// boundary-reading test).
func TestControlInfeasible(t *testing.T) {
	b := deposet.NewBuilder(2)
	_, h0 := b.Send(0)
	_, h1 := b.Send(1)
	b.Recv(0, h1)
	b.Recv(1, h0)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()
	dj := predicate.DisjunctionFromTruth([][]bool{
		{true, false, false, true},
		{true, false, false, true},
	})
	res, err := Control(d, dj, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if len(res.Witness) != 2 {
		t.Fatalf("witness = %v", res.Witness)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if i != j && !detect.OverlapsView(d, res.Witness[i], res.Witness[j]) {
				t.Fatalf("witness does not overlap: %v", res.Witness)
			}
		}
	}
}

// TestControlWideProcessesRegression: a feasible instance whose
// processes exceed 255 states each. The search memo used to encode the
// segment end hEnd as a single byte (and cut components as three), so
// distinct search states past state 255 shared a key: a dead state could
// shadow a live one and make the search wrongly declare a feasible chain
// unreachable (surfacing as a fallback or an infeasibility report). The
// memo now encodes every component at full width.
func TestControlWideProcessesRegression(t *testing.T) {
	const n, p = 3, 70 // 1+4·70 = 281 states per process, hEnd up to 281
	b := deposet.NewBuilder(n)
	states := 1 + 4*p
	for q := 0; q < n; q++ {
		for e := 1; e < states; e++ {
			b.Step(q)
		}
	}
	d := b.MustBuild()
	truth := make([][]bool, n)
	for q := 0; q < n; q++ {
		truth[q] = make([]bool, states)
		for k := 0; k < states; k++ {
			truth[q][k] = k == 0 || (k-1)%4 >= 2 // T then p × (F F T T)
		}
	}
	dj := predicate.DisjunctionFromTruth(truth)
	for _, preferLate := range []bool{false, true} {
		res, err := Control(d, dj, Options{PreferLate: preferLate})
		if err != nil {
			t.Fatalf("PreferLate=%v: err = %v, want feasible chain", preferLate, err)
		}
		if res.Fallback {
			t.Fatalf("PreferLate=%v: polynomial chain search fell back to exhaustive search", preferLate)
		}
		if len(res.Relation) == 0 {
			t.Fatalf("PreferLate=%v: empty relation cannot serialize %d overlapping false-intervals", preferLate, n*p)
		}
		verifyControlled(t, d, dj, res.Relation)
	}
}

// feasibleOracle decides controller existence exhaustively: some
// interleaving satisfies the disjunction everywhere.
func feasibleOracle(d *deposet.Deposet, dj *predicate.Disjunction) bool {
	_, ok := detect.SGSD(d, dj.Expr(), false)
	return ok
}

// TestControlCorrectnessProperty is the central cross-validation: on
// random computations and random disjunctions, Control agrees with the
// exhaustive feasibility oracle, its output withstands verification, and
// the polynomial path is always taken (no exhaustive fallback). Both the
// deterministic and the randomized selection orders must pass, as must
// the literal Figure 2 transcription under deterministic selection.
func TestControlCorrectnessProperty(t *testing.T) {
	type engine struct {
		name          string
		allowFallback bool
		run           func(*deposet.Deposet, *predicate.Disjunction) (*Result, error)
	}
	engines := []engine{
		{"chain", false, func(d *deposet.Deposet, dj *predicate.Disjunction) (*Result, error) {
			return Control(d, dj, Options{})
		}},
		// Randomized handoff order can paint the greedy into a corner;
		// the exhaustive fallback then takes over, and the result must
		// still be correct.
		{"chain-rand", true, func(d *deposet.Deposet, dj *predicate.Disjunction) (*Result, error) {
			return Control(d, dj, Options{Rand: rand.New(rand.NewSource(7))})
		}},
		{"figure2", false, func(d *deposet.Deposet, dj *predicate.Disjunction) (*Result, error) {
			return ControlFigure2(d, dj, Options{})
		}},
		{"figure2-naive", false, func(d *deposet.Deposet, dj *predicate.Disjunction) (*Result, error) {
			return ControlFigure2(d, dj, Options{Naive: true})
		}},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		d := deposet.Random(r, deposet.DefaultGen(n, r.Intn(18)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.3+r.Float64()*0.5))
		want := feasibleOracle(d, dj)

		for _, e := range engines {
			res, err := e.run(d, dj)
			if errors.Is(err, ErrInfeasible) {
				if want {
					t.Logf("seed %d [%s]: says infeasible, oracle says feasible", seed, e.name)
					return false
				}
				continue
			}
			if err != nil {
				t.Logf("seed %d [%s]: unexpected error %v", seed, e.name, err)
				return false
			}
			if !want {
				t.Logf("seed %d [%s]: produced a relation for an infeasible instance", seed, e.name)
				return false
			}
			if res.Fallback && !e.allowFallback {
				t.Logf("seed %d [%s]: exhaustive fallback triggered", seed, e.name)
				return false
			}
			x, err := control.Extend(d, res.Relation)
			if err != nil {
				t.Logf("seed %d [%s]: relation interferes: %v", seed, e.name, err)
				return false
			}
			if cut, ok := detect.PossiblyTruth(x, func(p, k int) bool { return !dj.Holds(d, p, k) }); ok {
				t.Logf("seed %d [%s]: violation at %v with rel %v", seed, e.name, cut, res.Relation)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestControlMessageComplexityProperty: the relation size and iteration
// count never exceed the total number of false-intervals (the paper's
// O(np) message bound).
func TestControlMessageComplexityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(24)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.6))
		res, err := Control(d, dj, Options{})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if res.Fallback {
			return false // deterministic greedy must not fall back
		}
		total := 0
		for p := 0; p < d.NumProcs(); p++ {
			p := p
			total += len(d.FalseIntervals(p, func(k int) bool { return dj.Holds(d, p, k) }))
		}
		return res.Iterations <= total+d.NumProcs() && len(res.Relation) <= res.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestControlGeneralOnDisjunctive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
		b := dj.Expr()

		rel, seq, err := ControlGeneral(d, b)
		_, fastErr := Control(d, dj, Options{})
		if errors.Is(err, ErrInfeasible) != errors.Is(fastErr, ErrInfeasible) {
			return false
		}
		if err != nil {
			return true
		}
		if verr := d.ValidateSequence(seq); verr != nil {
			return false
		}
		x, xerr := control.Extend(d, rel)
		if xerr != nil {
			return false
		}
		violated := false
		x.ForEachConsistentCut(func(g deposet.Cut) bool {
			if !b.Eval(d, g) {
				violated = true
				return false
			}
			return true
		})
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEnforceSequencePinsCuts: the controlled computation's consistent
// cuts are exactly the enforced sequence's cuts.
func TestEnforceSequencePinsCuts(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(2), 3+r.Intn(8)))
		seq, ok := detect.SGSD(d, predicate.Const(true), false)
		if !ok {
			t.Fatal("trivial SGSD failed")
		}
		rel := EnforceSequence(d, seq)
		x, err := control.Extend(d, rel)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := map[string]bool{}
		for _, g := range seq {
			want[g.Key()] = true
		}
		got := 0
		x.ForEachConsistentCut(func(g deposet.Cut) bool {
			if !want[g.Key()] {
				t.Fatalf("trial %d: cut %v outside the enforced sequence", trial, g)
			}
			got++
			return true
		})
		if got != len(want) {
			t.Fatalf("trial %d: %d cuts consistent, sequence has %d", trial, got, len(want))
		}
	}
}

// TestControlXORInfeasible: the XOR predicate needs simultaneous steps,
// which no controller can force, so general control must report
// infeasibility even though a simultaneous-advance sequence exists.
func TestControlXORInfeasible(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Let(0, "x", 0)
	b.Let(1, "y", 1)
	b.Step(0)
	b.Let(0, "x", 1)
	b.Step(1)
	b.Let(1, "y", 0)
	d := b.MustBuild()
	x := predicate.LocalVarEq(0, "x", 1)
	y := predicate.LocalVarEq(1, "y", 1)
	xor := predicate.Or(predicate.And(x, predicate.Not(y)), predicate.And(predicate.Not(x), y))
	if _, _, err := ControlGeneral(d, xor); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestControlDeterministic: the zero-Options run is reproducible.
func TestControlDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := deposet.Random(r, deposet.DefaultGen(3, 20))
	dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
	res1, err1 := Control(d, dj, Options{})
	res2, err2 := Control(d, dj, Options{})
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("nondeterministic error")
	}
	if err1 == nil {
		if len(res1.Relation) != len(res2.Relation) {
			t.Fatal("nondeterministic relation size")
		}
		for i := range res1.Relation {
			if res1.Relation[i] != res2.Relation[i] {
				t.Fatal("nondeterministic relation")
			}
		}
	}
}

// TestControllerYieldsSatisfyingSequence exercises the forward direction
// of the paper's §4 equivalence: simulating a run of a satisfying control
// strategy (any global sequence of the controlled deposet) produces a
// satisfying global sequence of the original computation.
func TestControllerYieldsSatisfyingSequence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(3), 4+r.Intn(14)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
		res, err := Control(d, dj, Options{})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		x, err := control.Extend(d, res.Relation)
		if err != nil {
			return false
		}
		seq := x.SomeSequence()
		if verr := d.ValidateSequence(seq); verr != nil {
			return false
		}
		for _, g := range seq {
			if !dj.Eval(d, g) {
				t.Logf("seed %d: simulated run violates B at %v", seed, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: ControlGeneral on a regular predicate (slice single-step
// chain, no search) agrees with the exhaustive SGSD oracle on
// feasibility, and its enforced computation never violates the
// predicate.
func TestControlGeneralRegularMatchesSGSD(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(3), r.Intn(12)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.4+0.5*r.Float64()))
		b := predicate.Not(dj.Expr()) // ∧p ¬lp: regular
		if !predicate.IsRegular(b) {
			return false
		}

		rel, seq, err := ControlGeneral(d, b)
		_, wantOK := detect.SGSD(d, b, false)
		if (err == nil) != wantOK {
			t.Logf("seed %d: slice feasibility %v, SGSD %v", seed, err == nil, wantOK)
			return false
		}
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if verr := d.ValidateSequence(seq); verr != nil {
			t.Logf("seed %d: %v", seed, verr)
			return false
		}
		for _, g := range seq {
			if !b.Eval(d, g) {
				return false
			}
		}
		x, xerr := control.Extend(d, rel)
		if xerr != nil {
			return false
		}
		ok := true
		x.ForEachConsistentCut(func(g deposet.Cut) bool {
			if !b.Eval(d, g) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
