package offline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
)

// csDisjunction builds ¬cs_i ∨ ¬cs_j over n processes from explicit
// false-runs: a pairwise mutual exclusion clause.
func csClause(n, i, j int, truth [][]bool) *predicate.Disjunction {
	dj := predicate.NewDisjunction(n)
	ti, tj := truth[i], truth[j]
	dj.Add(i, "¬cs", func(_ *deposet.Deposet, k int) bool { return !ti[k] })
	dj.Add(j, "¬cs", func(_ *deposet.Deposet, k int) bool { return !tj[k] })
	return dj
}

func TestControlCNFTwoMutexes(t *testing.T) {
	// Three independent processes; cs occupancy in the middle of each.
	b := deposet.NewBuilder(3)
	for p := 0; p < 3; p++ {
		for e := 0; e < 4; e++ {
			b.Step(p)
		}
	}
	d := b.MustBuild()
	cs := [][]bool{
		{false, true, true, false, false},
		{false, true, true, false, false},
		{false, false, true, true, false},
	}
	clauses := []*predicate.Disjunction{
		csClause(3, 0, 1, cs),
		csClause(3, 1, 2, cs),
	}
	res, err := ControlCNF(d, clauses, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := control.Extend(d, res.Relation)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clauses {
		c := c
		if cut, bad := detect.PossiblyTruth(x, func(p, k int) bool {
			return !c.Holds(d, p, k)
		}); bad {
			t.Fatalf("clause %d violated at %v", i, cut)
		}
	}
	// Note: processes 0 and 2 are unrelated by any clause, yet their CS
	// periods may end up transitively ordered through the shared process
	// 1 (chain composition trades concurrency for safety), so no
	// concurrency assertion is made here; the relation size is the
	// quality metric.
	if len(res.Relation) > 4 {
		t.Errorf("relation unexpectedly large: %v", res.Relation)
	}
}

func TestControlCNFEmpty(t *testing.T) {
	res, err := ControlCNF(nil, nil, Options{})
	if err != nil || len(res.Relation) != 0 {
		t.Fatal("empty CNF should be a no-op")
	}
}

func TestControlCNFInfeasibleClause(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()
	clauses := []*predicate.Disjunction{predicate.NewDisjunction(2)} // constant false
	if _, err := ControlCNF(d, clauses, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

// Property: on random computations with random pairwise-mutex clauses,
// ControlCNF either produces a relation under which every clause holds
// at every consistent cut, or correctly reports infeasibility of some
// clause, or reports the independence restriction violated.
func TestControlCNFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(2)
		d := deposet.Random(r, deposet.DefaultGen(n, 6+r.Intn(14)))
		truth := deposet.RandomTruth(r, d, 0.3) // cs occupancy, sparse
		var clauses []*predicate.Disjunction
		for c := 0; c < 2+r.Intn(2); c++ {
			i := r.Intn(n)
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			clauses = append(clauses, csClause(n, i, j, truth))
		}
		res, err := ControlCNF(d, clauses, Options{})
		switch {
		case errors.Is(err, ErrInfeasible):
			// At least one clause must be exhaustively infeasible.
			for _, c := range clauses {
				if _, ok := detect.SGSD(d, c.Expr(), false); !ok {
					return true
				}
			}
			return false
		case errors.Is(err, ErrNotIndependent):
			return true // restriction violated; nothing further claimed
		case err != nil:
			return false
		}
		x, xerr := control.Extend(d, res.Relation)
		if xerr != nil {
			return false
		}
		for _, c := range clauses {
			c := c
			if _, bad := detect.PossiblyTruth(x, func(p, k int) bool {
				return !c.Holds(d, p, k)
			}); bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
