package offline

import (
	"fmt"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// ControlFigure2 is a literal transcription of the paper's Figure 2
// pseudocode (modulo the boundary-adjacent reading of crossable; see
// detect.Overlaps). It is kept alongside the default engine for fidelity
// and for the complexity ablation, but it is NOT the default, because
// property-based testing against an exhaustive oracle exposed a gap the
// conference pseudocode (whose correctness proof lives in the companion
// technical report) does not address: the chain tuple ⟨g[k′], next(k)⟩
// emitted by AddControl can itself be unrealizable — entering k′'s true
// segment may be causally forced after k enters its next false-interval
// (e.g. when the message that releases k′ is sent from deep inside k's
// false-interval). Under randomized pair selection this produces an
// interfering — i.e. deadlocking — control relation; and filtering
// ValidPairs by the handoff condition instead makes the greedy
// incomplete (it can declare feasible instances infeasible).
//
// Control (offline.go) closes the gap by building the chain along an
// explicit linearization, which makes interference impossible by
// construction. ControlFigure2 uses deterministic first-pair selection
// by default, under which no counterexample is currently known; callers
// should still validate its output with control.Extend.
func ControlFigure2(d *deposet.Deposet, dj *predicate.Disjunction, opts Options) (*Result, error) {
	if dj.NumProcs() != d.NumProcs() {
		return nil, fmt.Errorf("offline: predicate ranges over %d processes, computation has %d",
			dj.NumProcs(), d.NumProcs())
	}
	st := newLoopState(d, dj)
	res := &Result{}

	k := -1 // previous responsible (true) process; -1 until first iteration
	addControl := func(kPrime int) {
		switch {
		case st.g[kPrime] == 0 && st.bottomTrue(kPrime):
			res.Relation = res.Relation[:0] // chain restarts at ⊥ of kPrime
		case k != kPrime:
			if k < 0 {
				panic("offline: chain edge requested before any responsibility was taken")
			}
			res.Relation = append(res.Relation, control.Edge{
				From: deposet.StateID{P: kPrime, K: st.g[kPrime]},
				To:   st.next(k),
			})
		}
	}

	for st.allHaveIntervals() {
		kPrime, l, ok := st.selectPair(opts)
		if !ok {
			res.Witness = st.frontier()
			return res, ErrInfeasible
		}
		addControl(kPrime)
		st.cross(l)
		k = kPrime
		res.Iterations++
	}
	// Some process ran out of false-intervals: close the chain at its ⊤.
	for p := 0; p < st.n; p++ {
		if st.ptr[p] == len(st.ivs[p]) {
			addControl(p)
			break
		}
	}
	return res, nil
}

// loopState is the walking frontier of Figure 2: per process, the list of
// false-intervals, a pointer to the next uncrossed interval N(i), and the
// current interest state g[i]. The crossability matrix is maintained
// incrementally: when an interval is crossed, only the 2(n−1) pairs
// involving that process are re-evaluated.
type loopState struct {
	d   *deposet.Deposet
	n   int
	ivs [][]deposet.Interval
	ptr []int // index of N(p) in ivs[p]; len(ivs[p]) when exhausted
	g   []int // current interest state index of p

	cross2   [][]bool // cross2[i][j]: crossable(N(i), N(j)), i ≠ j
	outCount []int    // number of j with cross2[i][j]
}

func newLoopState(d *deposet.Deposet, dj *predicate.Disjunction) *loopState {
	n := d.NumProcs()
	st := &loopState{
		d:        d,
		n:        n,
		ivs:      make([][]deposet.Interval, n),
		ptr:      make([]int, n),
		g:        make([]int, n),
		cross2:   make([][]bool, n),
		outCount: make([]int, n),
	}
	// One evaluation of each local per state, packed; the interval scans
	// below read bits.
	bt := dj.TruthTable(d)
	for p := 0; p < n; p++ {
		p := p
		st.ivs[p] = d.FalseIntervals(p, func(k int) bool { return bt.Holds(p, k) })
		st.cross2[p] = make([]bool, n)
	}
	for p := 0; p < n; p++ {
		st.refreshPairs(p)
	}
	return st
}

func (st *loopState) allHaveIntervals() bool {
	for p := 0; p < st.n; p++ {
		if st.ptr[p] == len(st.ivs[p]) {
			return false
		}
	}
	return true
}

// isFalse reports the paper's false(i): g[i] sits at the lo of N(i),
// about to cross it.
func (st *loopState) isFalse(p int) bool {
	return st.ptr[p] < len(st.ivs[p]) && st.g[p] == st.ivs[p][st.ptr[p]].Lo
}

// bottomTrue reports whether the local predicate holds at ⊥p.
func (st *loopState) bottomTrue(p int) bool {
	return len(st.ivs[p]) == 0 || st.ivs[p][0].Lo != 0
}

// next is the paper's next(i): the interest state after g[i].
func (st *loopState) next(p int) deposet.StateID {
	if st.ptr[p] == len(st.ivs[p]) {
		return st.d.Top(p)
	}
	iv := st.ivs[p][st.ptr[p]]
	if st.isFalse(p) {
		return deposet.StateID{P: p, K: iv.Hi}
	}
	return deposet.StateID{P: p, K: iv.Lo}
}

// crossable is the paper's crossable(N(i), N(j)) with the boundary-
// adjacent causal reading (see detect.Overlaps): N(j) can be fully
// crossed before N(i) is entered iff entering N(i) is not forced by
// exiting N(j).
func (st *loopState) crossable(i, j int) bool {
	ni, nj := st.ivs[i][st.ptr[i]], st.ivs[j][st.ptr[j]]
	if ni.Lo == 0 || nj.Hi == st.d.Len(j)-1 {
		return false
	}
	return !st.d.HB(deposet.StateID{P: i, K: ni.Lo - 1}, deposet.StateID{P: j, K: nj.Hi + 1})
}

// refreshPairs recomputes the crossability of every pair involving p
// (2(n−1) clauses), after N(p) changed. O(n).
func (st *loopState) refreshPairs(p int) {
	pDone := st.ptr[p] == len(st.ivs[p])
	for q := 0; q < st.n; q++ {
		if q == p {
			continue
		}
		qDone := st.ptr[q] == len(st.ivs[q])
		set := func(i, j int, v bool) {
			if st.cross2[i][j] != v {
				st.cross2[i][j] = v
				if v {
					st.outCount[i]++
				} else {
					st.outCount[i]--
				}
			}
		}
		if pDone || qDone {
			set(p, q, false)
			set(q, p, false)
			continue
		}
		set(p, q, st.crossable(p, q))
		set(q, p, st.crossable(q, p))
	}
}

// selectPair picks ⟨k′, l⟩ from ValidPairs = {⟨i,j⟩ : true(i) ∧
// crossable(N(i), N(j))}, or reports none exists. The incremental path
// is O(n) plus O(n) to locate the partner; Naive re-derives every
// clause, O(n²), with the same result.
func (st *loopState) selectPair(opts Options) (kPrime, l int, ok bool) {
	if opts.Naive || opts.Rand != nil {
		var pairs [][2]int
		for i := 0; i < st.n; i++ {
			if st.isFalse(i) {
				continue
			}
			for j := 0; j < st.n; j++ {
				if i == j {
					continue
				}
				c := st.cross2[i][j]
				if opts.Naive {
					c = st.crossable(i, j)
				}
				if c {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		if len(pairs) == 0 {
			return 0, 0, false
		}
		choice := pairs[0]
		if opts.Rand != nil {
			choice = pairs[opts.Rand.Intn(len(pairs))]
		}
		return choice[0], choice[1], true
	}
	for i := 0; i < st.n; i++ {
		if st.isFalse(i) || st.outCount[i] == 0 {
			continue
		}
		for j := 0; j < st.n; j++ {
			if i != j && st.cross2[i][j] {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// cross executes lines L6–L9: cross N(l) — setting t := N(l).hi — and
// advance every other process through its interest states as far as the
// crossing forces: g[i] moves to next(i) while next(i) → t ("reaching t
// implies next(i) was exited"; paper line L8). Advancing past an
// interval's hi marks it crossed.
func (st *loopState) cross(l int) {
	t := deposet.StateID{P: l, K: st.ivs[l][st.ptr[l]].Hi}
	st.g[l] = t.K
	st.ptr[l]++
	st.refreshPairs(l)
	for i := 0; i < st.n; i++ {
		if i == l {
			continue
		}
		moved := false
		for st.ptr[i] < len(st.ivs[i]) {
			nx := st.next(i)
			if !st.d.HB(nx, t) {
				break
			}
			if st.isFalse(i) {
				st.ptr[i]++ // interval crossed
				moved = true
			}
			st.g[i] = nx.K
		}
		if moved {
			st.refreshPairs(i)
		}
	}
}

// frontier returns the current N(i) of every process (the infeasibility
// witness). All processes have one when called from the main loop.
func (st *loopState) frontier() []deposet.Interval {
	w := make([]deposet.Interval, st.n)
	for p := 0; p < st.n; p++ {
		w[p] = st.ivs[p][st.ptr[p]]
	}
	return w
}
