// Package offline implements the paper's primary contribution: off-line
// predicate control. Given a traced computation (deposet) and a safety
// predicate B, it synthesizes a control relation — extra causal
// dependencies realized as control messages — such that every global
// sequence of the controlled replay satisfies B, or reports that B is
// infeasible for the trace.
//
// Control (this file) solves the disjunctive case B = l1 ∨ … ∨ ln in
// O(n²p·log p) time for n processes with at most p false-intervals each,
// emitting at most one control message per chain handoff (O(np) total,
// the paper's bound). It builds the same alternating chain of true
// intervals and backward control arrows as the paper's Figure 2, but
// anchors every link to an explicitly constructed linearization, making
// interference (runtime deadlock) impossible by construction; see
// ControlFigure2 for the literal pseudocode and the gap this closes.
// ControlGeneral (general.go) handles arbitrary predicates by exhaustive
// search — exponential, as it must be: Theorem 1 shows the general
// problem is NP-hard.
package offline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
)

// ErrInfeasible is returned when no control strategy can enforce B: some
// set of false-intervals overlaps (paper Lemma 2), so every interleaving
// of the computation passes through a B-violating global state.
var ErrInfeasible = errors.New("offline: no controller exists (predicate infeasible for this computation)")

// Result carries the synthesized control relation and diagnostics.
type Result struct {
	// Relation is the control relation ⟶C to impose during replay.
	Relation control.Relation
	// Iterations counts chain handoffs (Control) or main-loop iterations
	// (ControlFigure2); the paper bounds it, and so the relation size,
	// by np.
	Iterations int
	// Witness, set when Control fails with ErrInfeasible, holds an
	// overlapping set of false-intervals proving infeasibility.
	Witness []deposet.Interval
	// Fallback reports that the chain greedy got stuck on a feasible
	// instance and the exhaustive general controller was used instead.
	// Never observed in testing; present so benchmarks can assert the
	// polynomial path was taken.
	Fallback bool
}

// Options tune the algorithms; the zero value is deterministic.
type Options struct {
	// Rand, when non-nil, randomizes selection order (the paper's
	// select()); nil scans in process order.
	Rand *rand.Rand
	// Naive (ControlFigure2 only) recomputes the ValidPairs set from
	// scratch each iteration — the O(n³p) implementation the paper's
	// Evaluation section contrasts with the optimized O(n²p) one.
	Naive bool
	// PreferLate (Control only) orders handoff candidates latest-entry
	// first instead of earliest-first. The chain then jumps to the most
	// durable true segments: far fewer control messages, but far less
	// concurrency retained (long stretches of the computation get
	// serialized). Exposed for the ablation in EXPERIMENTS.md; the
	// paper's §5 Evaluation argues for the concurrency-preserving
	// default.
	PreferLate bool
	// Par configures the parallel engine for the per-process
	// false-interval extraction and the infeasibility (Lemma 2) check.
	// The zero value is the transparent default: GOMAXPROCS workers on
	// large computations, sequential below the cutoff. The chain search
	// itself stays sequential — it is a backtracking construction over
	// one shared frontier.
	Par detect.Par
}

// chain is the under-construction control strategy: a chain of true
// segments linked by backward control edges, as in the paper's Figure 2.
type chain struct {
	d   *deposet.Deposet
	n   int
	ivs [][]deposet.Interval  // false-intervals per process
	ft  *predicate.TruthTable // falsity table: Holds(p,k) = ¬lp(p,k)

	g        deposet.Cut // scheduled frontier (a consistent cut)
	minEntry []int       // earliest state at which p may hold again

	holder int
	hEnd   int // segment end: first false state after the holder's entry; Len(holder) if none

	rel      control.Relation
	handoffs int
}

// Control synthesizes a controller for the disjunctive predicate dj on d.
// On success the returned relation never interferes with the
// computation's causality and the controlled deposet satisfies dj in
// every consistent global state; on ErrInfeasible the Result carries a
// witness overlapping interval set.
//
// The construction maintains one *holder*: a process known to be inside
// a true segment of the schedule built so far. To let the holder h
// approach its next false-interval (entered at state hEnd), a new holder
// h′ must first enter a true segment at some state y, with the control
// edge (h′, y−1) ⟶C (h, hEnd) recording the obligation. The pair (h′, y)
// is admissible iff entering y is not itself causally forced after h
// enters its false-interval (¬ (h, hEnd−1) → (h′, y)); scheduling then
// extends the frontier by y's causal closure, so every edge points
// backward along one linearization and the relation is acyclic by
// construction. Each handoff retires one false-interval of the old
// holder, bounding handoffs — and control messages — by n(p+1).
//
// Handoff choices are explored depth-first, earliest admissible entries
// first (preserving concurrency; see Options.PreferLate for the
// ablation) with restarts as a last resort; dead states are memoized, so
// the common case is a straight greedy run (O(n²p·log p)) and
// pathological instances degrade gracefully instead of failing.
func Control(d *deposet.Deposet, dj *predicate.Disjunction, opts Options) (*Result, error) {
	if dj.NumProcs() != d.NumProcs() {
		return nil, fmt.Errorf("offline: predicate ranges over %d processes, computation has %d",
			dj.NumProcs(), d.NumProcs())
	}
	n := d.NumProcs()
	c := &chain{
		d:        d,
		n:        n,
		ivs:      make([][]deposet.Interval, n),
		g:        d.BottomCut(),
		minEntry: make([]int, n),
		holder:   -1,
	}
	// The locals are evaluated exactly once per state into a packed
	// falsity table; interval extraction here and the infeasibility check
	// in giveUp both read the bits instead of re-calling the closures.
	c.ft = dj.TruthTable(d).Invert()
	detect.TruthIntervalsInto(c.ivs, d, opts.Par, c.ft.Holds)
	res := &Result{}

	// Initial holder: any process true at ⊥.
	for p := 0; p < n; p++ {
		if len(c.ivs[p]) == 0 || c.ivs[p][0].Lo != 0 {
			c.holder = p
			c.hEnd = c.segmentEnd(p, 0)
			break
		}
	}
	if c.holder == -1 {
		// Every process is false at ⊥: the initial state itself violates
		// B, and the first intervals overlap pairwise via their ⊥ clause.
		for p := 0; p < n; p++ {
			res.Witness = append(res.Witness, c.ivs[p][0])
		}
		return res, ErrInfeasible
	}

	if !c.search(newMemo(), opts) {
		return c.giveUp(d, dj, opts, res)
	}
	res.Relation = c.rel
	res.Iterations = c.handoffs
	return res, nil
}

// snapshot captures the mutable chain state for backtracking. Ordinary
// handoffs only append to the relation, so restoring truncates; only a
// restart (which wipes the relation) needs a full copy.
type snapshot struct {
	g        deposet.Cut
	minEntry []int
	holder   int
	hEnd     int
	relLen   int
	relCopy  control.Relation // non-nil only when the branch restarts
	handoffs int
}

func (c *chain) save(isRestart bool) snapshot {
	s := snapshot{
		g:        c.g.Clone(),
		minEntry: append([]int(nil), c.minEntry...),
		holder:   c.holder,
		hEnd:     c.hEnd,
		relLen:   len(c.rel),
		handoffs: c.handoffs,
	}
	if isRestart {
		s.relCopy = append(control.Relation(nil), c.rel...)
	}
	return s
}

func (c *chain) restore(s snapshot) {
	c.g = s.g
	c.minEntry = s.minEntry
	c.holder = s.holder
	c.hEnd = s.hEnd
	if s.relCopy != nil {
		c.rel = s.relCopy
	} else {
		c.rel = c.rel[:s.relLen]
	}
	c.handoffs = s.handoffs
}

// memo is the dead-state set of the chain search. A search state is the
// tuple (holder, hEnd, g, minEntry), encoded fixed-width (one uint32 per
// component — no truncation, so distinct states never share an encoding)
// and bucketed by a 64-bit FNV-style hash; buckets resolve hash
// collisions by exact comparison. The scratch buffer is reused across
// lookups, so a hit allocates nothing.
type memo struct {
	table map[uint64][]savedState
	buf   []uint32
}

// savedState is one encoded dead search state.
type savedState []uint32

func newMemo() *memo { return &memo{table: make(map[uint64][]savedState)} }

// encode writes c's search state into the reusable scratch buffer.
func (m *memo) encode(c *chain) []uint32 {
	buf := m.buf[:0]
	buf = append(buf, uint32(c.holder), uint32(c.hEnd))
	for i := range c.g {
		buf = append(buf, uint32(c.g[i]), uint32(c.minEntry[i]))
	}
	m.buf = buf
	return buf
}

func hashState(s []uint32) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, v := range s {
		h ^= uint64(v)
		h *= 1099511628211 // FNV-1a prime
	}
	return h
}

func equalStates(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dead reports whether c's current search state is memoized as dead.
func (m *memo) dead(c *chain) bool {
	s := m.encode(c)
	for _, prev := range m.table[hashState(s)] {
		if equalStates(prev, s) {
			return true
		}
	}
	return false
}

// markDead memoizes c's current search state as dead.
func (m *memo) markDead(c *chain) {
	s := m.encode(c)
	h := hashState(s)
	m.table[h] = append(m.table[h], append(savedState(nil), s...))
}

// apply performs the handoff to (h2, y): emit (or restart) the chain
// edge, retire the old holder's interval, and extend the scheduled
// frontier by y's causal closure.
func (c *chain) apply(h2, y int) {
	if y == 0 {
		c.rel = c.rel[:0] // chain restarts at ⊥ of h2
	} else {
		c.rel = append(c.rel, control.Edge{
			From: deposet.StateID{P: h2, K: y - 1},
			To:   deposet.StateID{P: c.holder, K: c.hEnd},
		})
	}
	c.minEntry[c.holder] = c.intervalAt(c.holder, c.hEnd).Hi + 1
	clock := c.d.Clock(deposet.StateID{P: h2, K: y})
	for i := 0; i < c.n; i++ {
		if v := int(clock[i]) + 1; i != h2 && v > c.g[i] {
			c.g[i] = v
		}
	}
	if y > c.g[h2] {
		c.g[h2] = y
	}
	c.holder = h2
	c.hEnd = c.segmentEnd(h2, y)
	c.handoffs++
}

// search extends the chain until the holder's segment reaches ⊤,
// backtracking over handoff choices. failed memoizes dead states.
func (c *chain) search(failed *memo, opts Options) bool {
	if c.hEnd == c.d.Len(c.holder) {
		return true
	}
	if failed.dead(c) {
		return false
	}
	for _, cand := range c.candidates(opts) {
		s := c.save(cand.y == 0)
		c.apply(cand.p, cand.y)
		if c.search(failed, opts) {
			return true
		}
		c.restore(s)
	}
	failed.markDead(c)
	return false
}

// segmentEnd returns the first false state of p after (or at) entry —
// the Lo of the first false-interval with Lo > entry is not right: entry
// itself is true, so it is the Lo of the first interval starting after
// entry — or Len(p) when the segment runs to ⊤.
func (c *chain) segmentEnd(p, entry int) int {
	ivs := c.ivs[p]
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo > entry })
	if i == len(ivs) {
		return c.d.Len(p)
	}
	return ivs[i].Lo
}

// intervalAt returns the false-interval of p starting at state lo.
func (c *chain) intervalAt(p, lo int) deposet.Interval {
	ivs := c.ivs[p]
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo >= lo })
	if i == len(ivs) || ivs[i].Lo != lo {
		panic("offline: no interval at expected position")
	}
	return ivs[i]
}

// entryAfter returns the earliest true state y ≥ from on p, or ok=false.
func (c *chain) entryAfter(p, from int) (int, bool) {
	if from >= c.d.Len(p) {
		return 0, false
	}
	ivs := c.ivs[p]
	// Find the interval containing `from`, if any.
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi >= from })
	if i == len(ivs) || ivs[i].Lo > from {
		return from, true // from itself is true
	}
	if y := ivs[i].Hi + 1; y < c.d.Len(p) {
		return y, true
	}
	return 0, false // false through ⊤
}

// candidate is one possible handoff: process p entering a true segment
// at state y.
type candidate struct{ p, y int }

// candidates enumerates the admissible handoffs from the current state:
// for each process p ≠ holder, every true-segment entry y with
// y ≥ max(g[p], minEntry[p]) and ¬ blockState → (p, y). The block test
// is monotone in y, so each process contributes a prefix of its entries,
// located by binary search.
//
// Order encodes the search heuristic: earliest entries first,
// round-robin across processes. An early entry keeps the chain close to
// the computation — one short synchronization per interval, maximizing
// the concurrency the paper's §5 Evaluation calls for — while later
// entries (which serialize more) remain available to the backtracking
// search when the greedy path dead-ends.
func (c *chain) candidates(opts Options) []candidate {
	order := make([]int, 0, c.n-1)
	for p := 0; p < c.n; p++ {
		if p != c.holder {
			order = append(order, p)
		}
	}
	if opts.Rand != nil {
		opts.Rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	block := deposet.StateID{P: c.holder, K: c.hEnd - 1}
	perProc := make([][]candidate, 0, len(order))
	maxLen := 0
	for _, p := range order {
		from := c.g[p]
		if c.minEntry[p] > from {
			from = c.minEntry[p]
		}
		first, found := c.entryAfter(p, from)
		if !found || c.d.HB(block, deposet.StateID{P: p, K: first}) {
			continue
		}
		list := []candidate{{p, first}}
		// Post-interval entries after `first`, admissible prefix.
		ivs := c.ivs[p]
		lo := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi+1 > first })
		span := ivs[lo:]
		adm := sort.Search(len(span), func(i int) bool {
			yy := span[i].Hi + 1
			return yy >= c.d.Len(p) || c.d.HB(block, deposet.StateID{P: p, K: yy})
		})
		for i := 0; i < adm; i++ { // ascending
			list = append(list, candidate{p, span[i].Hi + 1})
		}
		if opts.PreferLate {
			for i, j := 0, len(list)-1; i < j; i, j = i+1, j-1 {
				list[i], list[j] = list[j], list[i]
			}
		}
		perProc = append(perProc, list)
		if len(list) > maxLen {
			maxLen = len(list)
		}
	}
	var out, restarts []candidate
	for rank := 0; rank < maxLen; rank++ {
		for _, list := range perProc {
			if rank < len(list) {
				if list[rank].y == 0 {
					// A restart discards the chain built so far; keep it
					// available but as a last resort.
					restarts = append(restarts, list[rank])
				} else {
					out = append(out, list[rank])
				}
			}
		}
	}
	return append(out, restarts...)
}

// giveUp resolves a stuck greedy: if the instance is genuinely
// infeasible, report it with the overlap witness; otherwise fall back to
// the exhaustive general controller (tracked in Result.Fallback).
func (c *chain) giveUp(d *deposet.Deposet, dj *predicate.Disjunction, opts Options, res *Result) (*Result, error) {
	witness, definitely := detect.DefinitelyTruthPar(d, c.ft.Holds, opts.Par)
	if definitely {
		res.Witness = witness
		return res, ErrInfeasible
	}
	rel, _, err := ControlGeneral(d, dj.Expr())
	if err != nil {
		res.Witness = nil
		return res, err
	}
	res.Relation = rel
	res.Fallback = true
	return res, nil
}
