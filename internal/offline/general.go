package offline

import (
	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
	"predctl/internal/slice"
)

// ControlGeneral solves off-line predicate control for an arbitrary
// global predicate b, the way the paper's Theorem 1 equivalence suggests:
// find a satisfying global sequence and emit a control relation that
// only allows that sequence.
//
// When b is in the regular fragment the sequence is found on b's
// computation slice instead of the raw lattice: a satisfying single-step
// sequence exists iff the slice spans ⊥ to ⊤ and every meta-event covers
// its predecessor ideal by exactly one local state, in which case any
// linear extension of the meta-events *is* the sequence — polynomial,
// no search (slice.SingleStepChain). Non-regular predicates fall back to
// the exhaustive SGSD search, which is NP-complete (Lemma 1) and
// exponential in the worst case — that is the point of the complexity
// separation reproduced in the benchmarks; use Control for disjunctive
// predicates.
//
// The search uses single-step (interleaving) sequences: added causality
// cannot force two processes to advance at the same instant, so
// sequences that need simultaneous steps are not enforceable by any
// control strategy.
//
// The emitted relation forces the sequence: for each step that advances
// process p to G'[p], every other process q must have reached its
// position G[q] at the preceding step, expressed as "q exited G[q]−1
// before p enters G'[p]" (omitted when G[q] = ⊥ or the edge is already
// implied). Consistent cuts of the controlled computation are then
// exactly the sequence's cuts, all of which satisfy b.
func ControlGeneral(d *deposet.Deposet, b predicate.Expr) (control.Relation, deposet.Sequence, error) {
	if tab, ok := predicate.RegularTable(b, d); ok {
		if seq, found, decided := slice.Compute(d, tab).SingleStepChain(); decided {
			if !found {
				return nil, nil, ErrInfeasible
			}
			return EnforceSequence(d, seq), seq, nil
		}
	}
	seq, ok := detect.SGSD(d, b, false)
	if !ok {
		return nil, nil, ErrInfeasible
	}
	return EnforceSequence(d, seq), seq, nil
}

// EnforceSequence emits a control relation whose controlled computation
// admits exactly the given single-step global sequence (and stutters of
// it). The sequence must be valid for d.
func EnforceSequence(d *deposet.Deposet, seq deposet.Sequence) control.Relation {
	var rel control.Relation
	// latest[q] tracks the highest G[q]−1 already used as a From for each
	// (q, p) pair, to skip implied edges.
	type pair struct{ q, p int }
	latest := map[pair]int{}
	for step := 1; step < len(seq); step++ {
		g, h := seq[step-1], seq[step]
		for p := range h {
			if h[p] == g[p] {
				continue
			}
			to := deposet.StateID{P: p, K: h[p]}
			for q := range g {
				if q == p || g[q] == 0 {
					continue
				}
				from := deposet.StateID{P: q, K: g[q] - 1}
				// A later To with the same or smaller From is implied by
				// process order; only emit when From advanced.
				if prev, ok := latest[pair{q, p}]; ok && prev >= from.K {
					continue
				}
				latest[pair{q, p}] = from.K
				rel = append(rel, control.Edge{From: from, To: to})
			}
		}
	}
	return rel
}
