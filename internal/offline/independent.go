package offline

import (
	"errors"
	"fmt"
	"math/rand"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// ErrNotIndependent is returned by ControlCNF when the per-clause
// controllers cannot be combined: some pair of clauses forces
// contradictory orderings, i.e. the computation violates the
// mutual-separation restriction under which the class is controllable.
var ErrNotIndependent = errors.New("offline: clause controllers conflict (intervals not mutually separated)")

// ControlCNF extends off-line control beyond single disjunctions to the
// locally independent class the paper's conclusion announces as follow-up
// work: predicates B = C1 ∧ C2 ∧ … ∧ Cm where every clause Cj is
// disjunctive (l₁ ∨ … over a subset of processes). This covers, e.g.,
// several simultaneous two-process mutual exclusions — "more general
// forms of 2-process mutual exclusion" — which no single disjunction can
// express.
//
// Each clause is controlled independently with Control; since the chain
// argument is static (extra causality only removes global states), the
// union of the clause relations satisfies every clause — provided the
// union itself does not interfere with the computation. That is exactly
// the paper's "mutually separated intervals" restriction, and it is
// *checked*, not assumed: on interference the function retries the
// clauses under randomized selection a few times and then reports
// ErrNotIndependent.
//
// Soundness of the infeasibility verdict is inherited: if any single
// clause is infeasible, B is infeasible.
func ControlCNF(d *deposet.Deposet, clauses []*predicate.Disjunction, opts Options) (*Result, error) {
	if len(clauses) == 0 {
		return &Result{}, nil
	}
	combine := func(o Options) (*Result, error) {
		total := &Result{}
		seen := map[control.Edge]bool{}
		for i, c := range clauses {
			res, err := Control(d, c, o)
			if err != nil {
				return res, fmt.Errorf("clause %d (%v): %w", i, c, err)
			}
			total.Iterations += res.Iterations
			total.Fallback = total.Fallback || res.Fallback
			for _, e := range res.Relation {
				if !seen[e] {
					seen[e] = true
					total.Relation = append(total.Relation, e)
				}
			}
		}
		if _, err := control.Extend(d, total.Relation); err != nil {
			return nil, err
		}
		return total, nil
	}
	res, err := combine(opts)
	if err == nil {
		return res, nil
	}
	if errors.Is(err, ErrInfeasible) {
		return res, err
	}
	// Interference between clause chains: retry under different
	// randomized selections before giving up.
	for attempt := int64(1); attempt <= 8; attempt++ {
		o := opts
		o.Rand = newAttemptRand(attempt)
		res, err = combine(o)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, ErrInfeasible) {
			return res, err
		}
	}
	return nil, ErrNotIndependent
}

// newAttemptRand builds the deterministic retry source for attempt i.
func newAttemptRand(i int64) *rand.Rand {
	return rand.New(rand.NewSource(0x1db7 * (i + 1)))
}
