package expt

import (
	"strconv"

	"predctl/internal/obs"
	"predctl/internal/offline"
)

// E3 reproduces the §5 message-complexity remark for the paper's
// flagship special case, two-process mutual exclusion: "there would be
// one message for each critical section, in the worst case". The edge
// counts are recorded into an obs registry and each run is asserted
// against the §5 bound (≤ n(p+1) control messages) by the invariant
// checker.
func E3(int64) *Table {
	t := &Table{
		ID:    "E3",
		Title: "control messages for 2-process mutual exclusion (off-line)",
		Claim: "at most one control message per critical section (§5 Evaluation)",
		Columns: []string{
			"critical sections/proc", "total CS", "control messages", "messages per CS",
		},
	}
	reg := obs.NewRegistry()
	var rep obs.Report
	for _, p := range []int{1, 4, 16, 64, 256} {
		d, dj := intervalWorkload(2, p)
		res, err := offline.Control(d, dj, offline.Options{})
		if err != nil {
			panic(err)
		}
		edges := reg.Counter("predctl_offline_ctl_messages_total",
			obs.L("n", "2"), obs.L("p", strconv.Itoa(p)))
		edges.Add(int64(len(res.Relation)))
		rep.CheckOfflineEdges(int(edges.Value()), 2, p)
		total := 2 * p
		t.Row(p, total, edges.Value(), float64(edges.Value())/float64(total))
	}
	if err := rep.Err(); err != nil {
		t.Note("%v", err)
	}
	t.Note("independent (message-free) critical sections: the chain alternates")
	t.Note("between the two processes, one handoff edge per crossed section;")
	t.Note("the §5 bound ≤ n(p+1) is machine-checked (obs.CheckOfflineEdges).")
	return t
}
