package expt

import (
	"predctl/internal/offline"
)

// E3 reproduces the §5 message-complexity remark for the paper's
// flagship special case, two-process mutual exclusion: "there would be
// one message for each critical section, in the worst case".
func E3(int64) *Table {
	t := &Table{
		ID:    "E3",
		Title: "control messages for 2-process mutual exclusion (off-line)",
		Claim: "at most one control message per critical section (§5 Evaluation)",
		Columns: []string{
			"critical sections/proc", "total CS", "control messages", "messages per CS",
		},
	}
	for _, p := range []int{1, 4, 16, 64, 256} {
		d, dj := intervalWorkload(2, p)
		res, err := offline.Control(d, dj, offline.Options{})
		if err != nil {
			panic(err)
		}
		total := 2 * p
		t.Row(p, total, len(res.Relation), float64(len(res.Relation))/float64(total))
	}
	t.Note("independent (message-free) critical sections: the chain alternates")
	t.Note("between the two processes, one handoff edge per crossed section.")
	return t
}
