package expt

import (
	"fmt"

	"predctl/internal/kmutex"
)

// E6 reproduces the §6 comparison with k-mutual-exclusion algorithms for
// k = n−1: the single anti-token (a liability) beats both a centralized
// coordinator and the k-token (privilege-based) family on messages.
func E6(seed int64) *Table {
	t := &Table{
		ID:    "E6",
		Title: "(n−1)-mutual exclusion: anti-token vs baselines (§6)",
		Claim: "the anti-token strategy is simpler and cheaper than k-token algorithms at k = n−1",
		Columns: []string{
			"n", "protocol", "messages", "msgs/entry", "mean resp", "max resp",
		},
	}
	for _, n := range []int{4, 8, 16} {
		w := e4Workload(n, seed)
		runs := []struct {
			name string
			run  func() (*kmutex.Metrics, error)
		}{
			{"central coordinator", func() (*kmutex.Metrics, error) { _, m, err := kmutex.RunCentral(w); return m, err }},
			{"k tokens", func() (*kmutex.Metrics, error) { _, m, err := kmutex.RunToken(w); return m, err }},
			{"anti-token", func() (*kmutex.Metrics, error) { _, m, err := kmutex.RunScapegoat(w, false); return m, err }},
		}
		for _, rr := range runs {
			m, err := rr.run()
			if err != nil {
				panic(err)
			}
			t.Row(n, rr.name, m.CtlMessages,
				fmt.Sprintf("%.3f", m.MessagesPerEntry()),
				fmt.Sprintf("%.1f", m.MeanResponse()), m.MaxResponse())
		}
	}
	t.Note("central pays 3 messages on every entry; the token family pays ~n per")
	t.Note("token miss; the anti-token pays 2 only when the scapegoat itself enters.")
	return t
}
