package expt

import (
	"strconv"

	"predctl/internal/kmutex"
	"predctl/internal/obs"
)

// MetricsRegistry runs the instrumented on-line sweep — every k-mutex
// protocol over the E4 workload grid — recording into one obs registry,
// and returns it for a Prometheus dump (`pcbench -metrics`). Because it
// reuses e4Workload verbatim, the scapegoat series it emits are exactly
// the numbers the E4/E5 tables print.
func MetricsRegistry(seed int64) (*obs.Registry, error) {
	reg := obs.NewRegistry()
	for _, n := range []int{2, 4, 8, 16, 32} {
		w := e4Workload(n, seed)
		w.Reg = reg
		w.MetricLabels = []obs.Label{obs.L("n", strconv.Itoa(n))}
		if _, _, err := kmutex.RunScapegoat(w, false); err != nil {
			return nil, err
		}
		if _, _, err := kmutex.RunScapegoat(w, true); err != nil {
			return nil, err
		}
		if _, _, err := kmutex.RunCentral(w); err != nil {
			return nil, err
		}
		if _, _, err := kmutex.RunToken(w); err != nil {
			return nil, err
		}
		if _, _, err := kmutex.RunUncontrolled(w); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
