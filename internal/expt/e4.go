package expt

import (
	"fmt"
	"strconv"

	"predctl/internal/kmutex"
	"predctl/internal/obs"
	"predctl/internal/sim"
)

// e4Workload is the shared on-line workload for E4–E6.
func e4Workload(n int, seed int64) kmutex.Workload {
	return kmutex.Workload{
		N:        n,
		Rounds:   40,
		ThinkMax: 200,
		CS:       20,
		Delay:    5,
		Seed:     seed,
	}
}

// E4 reproduces the §6 Evaluation of the on-line strategy (Figure 3):
// per n critical-section entries the anti-token costs 2 messages, and a
// handoff's response time lies in [2T, 2T + Emax]; all other entries are
// immediate. Every number in the table is read back from the obs
// metrics registry the protocol records into — the same series `pcbench
// -metrics` dumps — and each run is checked against the paper's bounds
// (response window, single scapegoat chain) by the invariant checker.
func E4(seed int64) *Table {
	t := &Table{
		ID:    "E4",
		Title: "on-line anti-token control: overhead and response time (Figure 3)",
		Claim: "2 messages per n CS entries; handoff response ∈ [2T, 2T+Emax] (§6 Evaluation)",
		Columns: []string{
			"n", "entries", "messages", "msgs/entry", "2/n", "mean resp", "max resp", "2T+Emax",
		},
	}
	reg := obs.NewRegistry()
	for _, n := range []int{2, 4, 8, 16, 32} {
		w := e4Workload(n, seed)
		j := obs.NewJournal(0)
		w.Journal = j
		w.Reg = reg
		w.MetricLabels = []obs.Label{obs.L("n", strconv.Itoa(n))}
		if _, _, err := kmutex.RunScapegoat(w, false); err != nil {
			panic(err)
		}
		labels := append([]obs.Label{obs.L("proto", "scapegoat")}, w.MetricLabels...)
		msgs := reg.Counter("predctl_ctl_messages_total", labels...).Value()
		entries := reg.Counter("predctl_cs_entries_total", labels...).Value()
		resp := reg.Histogram("predctl_response_vtime", labels...)
		var rep obs.Report
		rep.CheckResponses(resp, int64(w.Delay), int64(w.CS), j)
		rep.CheckScapegoatChain(j)
		if err := rep.Err(); err != nil {
			t.Note("n=%d: %v", n, err)
		}
		t.Row(n, entries, msgs,
			fmt.Sprintf("%.3f", float64(msgs)/float64(entries)),
			fmt.Sprintf("%.3f", 2.0/float64(n)),
			fmt.Sprintf("%.1f", resp.Mean()),
			sim.Time(resp.Max()), 2*w.Delay+w.CS)
	}
	t.Note("msgs/entry tracks 2/n as n grows; every run above passed the")
	t.Note("invariant checker: response ∈ {0} ∪ [2T, 2T+Emax] per observation")
	t.Note("and a single unforked scapegoat chain in the journal (internal/obs).")
	return t
}
