package expt

import (
	"fmt"

	"predctl/internal/kmutex"
	"predctl/internal/sim"
)

// e4Workload is the shared on-line workload for E4–E6.
func e4Workload(n int, seed int64) kmutex.Workload {
	return kmutex.Workload{
		N:        n,
		Rounds:   40,
		ThinkMax: 200,
		CS:       20,
		Delay:    5,
		Seed:     seed,
	}
}

// E4 reproduces the §6 Evaluation of the on-line strategy (Figure 3):
// per n critical-section entries the anti-token costs 2 messages, and a
// handoff's response time lies in [2T, 2T + Emax]; all other entries are
// immediate.
func E4(seed int64) *Table {
	t := &Table{
		ID:    "E4",
		Title: "on-line anti-token control: overhead and response time (Figure 3)",
		Claim: "2 messages per n CS entries; handoff response ∈ [2T, 2T+Emax] (§6 Evaluation)",
		Columns: []string{
			"n", "entries", "messages", "msgs/entry", "2/n", "mean resp", "max resp", "2T+Emax",
		},
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		w := e4Workload(n, seed)
		_, m, err := kmutex.RunScapegoat(w, false)
		if err != nil {
			panic(err)
		}
		bound := 2*w.Delay + w.CS
		if m.MaxResponse() > bound {
			t.Note("n=%d: max response %d EXCEEDS 2T+Emax=%d", n, m.MaxResponse(), bound)
		}
		t.Row(n, m.Entries, m.CtlMessages,
			fmt.Sprintf("%.3f", m.MessagesPerEntry()),
			fmt.Sprintf("%.3f", 2.0/float64(n)),
			fmt.Sprintf("%.1f", m.MeanResponse()),
			m.MaxResponse(), sim.Time(bound))
	}
	t.Note("msgs/entry tracks 2/n as n grows; every observed response is within")
	t.Note("{0} ∪ [2T, 2T+Emax] (checked programmatically in the online tests).")
	return t
}
