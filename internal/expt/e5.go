package expt

import (
	"fmt"

	"predctl/internal/kmutex"
)

// E5 reproduces the §6 broadcast-variant remark: "we can devise a scheme
// where the scapegoat broadcasts a request to all controllers", reducing
// response time at the expense of message overhead.
func E5(seed int64) *Table {
	t := &Table{
		ID:    "E5",
		Title: "broadcast handoff variant: latency vs messages (§6)",
		Claim: "broadcasting reduces response time at the expense of message overhead",
		Columns: []string{
			"n", "variant", "messages", "msgs/entry", "mean resp", "max resp",
		},
	}
	for _, n := range []int{4, 8, 16} {
		w := e4Workload(n, seed)
		for _, bc := range []bool{false, true} {
			name := "unicast"
			if bc {
				name = "broadcast"
			}
			_, m, err := kmutex.RunScapegoat(w, bc)
			if err != nil {
				panic(err)
			}
			t.Row(n, name, m.CtlMessages,
				fmt.Sprintf("%.3f", m.MessagesPerEntry()),
				fmt.Sprintf("%.1f", m.MeanResponse()), m.MaxResponse())
		}
	}
	t.Note("the implementation adds a confirm/cancel round the paper does not")
	t.Note("spell out: leaving every broadcast responder a scapegoat is safe in")
	t.Note("real time but violates B on consistent cuts (see online package docs).")
	return t
}
