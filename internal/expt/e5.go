package expt

import (
	"fmt"
	"strconv"

	"predctl/internal/kmutex"
	"predctl/internal/obs"
)

// E5 reproduces the §6 broadcast-variant remark: "we can devise a scheme
// where the scapegoat broadcasts a request to all controllers", reducing
// response time at the expense of message overhead. Rows are derived
// from the obs metrics registry; the cancels column is the broadcast
// variant's extra confirm/cancel traffic, visible only as a metric.
func E5(seed int64) *Table {
	t := &Table{
		ID:    "E5",
		Title: "broadcast handoff variant: latency vs messages (§6)",
		Claim: "broadcasting reduces response time at the expense of message overhead",
		Columns: []string{
			"n", "variant", "messages", "msgs/entry", "mean resp", "max resp", "cancels",
		},
	}
	reg := obs.NewRegistry()
	for _, n := range []int{4, 8, 16} {
		w := e4Workload(n, seed)
		w.Reg = reg
		w.MetricLabels = []obs.Label{obs.L("n", strconv.Itoa(n))}
		for _, bc := range []bool{false, true} {
			name, proto := "unicast", "scapegoat"
			if bc {
				name, proto = "broadcast", "scapegoat-broadcast"
			}
			if _, _, err := kmutex.RunScapegoat(w, bc); err != nil {
				panic(err)
			}
			labels := append([]obs.Label{obs.L("proto", proto)}, w.MetricLabels...)
			msgs := reg.Counter("predctl_ctl_messages_total", labels...).Value()
			entries := reg.Counter("predctl_cs_entries_total", labels...).Value()
			resp := reg.Histogram("predctl_response_vtime", labels...)
			cancels := reg.Counter("predctl_broadcast_cancels_total", labels...).Value()
			t.Row(n, name, msgs,
				fmt.Sprintf("%.3f", float64(msgs)/float64(entries)),
				fmt.Sprintf("%.1f", resp.Mean()), resp.Max(), cancels)
		}
	}
	t.Note("the implementation adds a confirm/cancel round the paper does not")
	t.Note("spell out: leaving every broadcast responder a scapegoat is safe in")
	t.Note("real time but violates B on consistent cuts (see online package docs).")
	return t
}
