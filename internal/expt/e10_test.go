package expt

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestBaselineJSONShape: the committed BENCH_baseline.json is produced
// by BaselineJSON; lock in its schema so the artifact stays parseable.
func TestBaselineJSONShape(t *testing.T) {
	doc, err := BaselineJSON(5)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(doc, &b); err != nil {
		t.Fatal(err)
	}
	if b.Schema != 2 || b.GoVersion == "" || b.NumCPU < 1 {
		t.Fatalf("bad header: %+v", b)
	}
	want := map[string]bool{
		"deposet-build/clocks": false, "detect-possibly": false,
		"detect-definitely": false, "offline-control n=32 p=128": false,
		"batch-detect": false, "batch-control": false,
		"deposet-build-small (default policy)":     false,
		"detect-possibly-small (default policy)":   false,
		"detect-definitely-small (default policy)": false,
	}
	for _, m := range b.Results {
		if _, ok := want[m.Name]; !ok {
			t.Fatalf("unexpected workload %q", m.Name)
		}
		want[m.Name] = true
		for _, w := range ParWorkers {
			if m.NsPerOp[fmt.Sprint(w)] <= 0 {
				t.Fatalf("%s: no timing for %d workers", m.Name, w)
			}
		}
		if m.Speedup4 <= 0 {
			t.Fatalf("%s: speedup4 = %v", m.Name, m.Speedup4)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("workload %q missing from baseline", name)
		}
	}
	for _, phase := range parPhases {
		ps, ok := b.Phases[phase]
		if !ok {
			t.Fatalf("phase %q missing from baseline", phase)
		}
		if ps.Calls <= 0 || ps.WallNs <= 0 {
			t.Fatalf("phase %q: empty stats %+v", phase, ps)
		}
		if ps.Allocs <= 0 {
			t.Fatalf("phase %q: TrackAllocs recorded no allocations", phase)
		}
	}
}
