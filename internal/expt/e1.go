package expt

import (
	"math/rand"
	"time"

	"predctl/internal/detect"
	"predctl/internal/sat"
)

// E1 reproduces Figure 1 / Lemma 1 / Theorem 1: SGSD is NP-complete. The
// SAT → SGSD reduction is exercised on random 3-SAT instances near the
// satisfiability threshold (clauses ≈ 4.3·m); the search cost of SGSD
// grows exponentially with the number of variables, while the reduction
// itself is linear and answers always agree with brute-force SAT.
func E1(seed int64) *Table {
	t := &Table{
		ID:    "E1",
		Title: "SAT → SGSD reduction (Figure 1): exponential search, perfect agreement",
		Claim: "off-line predicate control for general predicates is NP-hard (Lemma 1, Theorem 1)",
		Columns: []string{
			"vars m", "clauses", "procs", "satisfiable", "SGSD agrees", "cuts explored", "time",
		},
	}
	r := rand.New(rand.NewSource(seed))
	for m := 4; m <= 12; m++ {
		clauses := int(4.3 * float64(m))
		f := sat.RandomKSAT(r, m, clauses, 3)
		_, want := sat.BruteForce(f)
		red, err := sat.Reduce(f)
		if err != nil {
			t.Note("m=%d: reduction failed: %v", m, err)
			continue
		}
		var explored int
		var got bool
		d := timeIt(func() {
			seq, stats, serr := detect.SGSDWithStats(red.D, red.B, false)
			if serr != nil {
				panic(serr)
			}
			explored = stats.NodesExplored
			got = seq != nil
		})
		agree := "yes"
		if got != want {
			agree = "NO (BUG)"
		}
		t.Row(m, clauses, m+1, want, agree, explored, d)
	}
	t.Note("explored cuts grow exponentially in m on unsatisfiable instances — the")
	t.Note("content of Theorem 1; compare E2's polynomial disjunctive control.")
	_ = time.Now
	return t
}
