package expt

import (
	"predctl/internal/deposet"
	"predctl/internal/offline"
	"predctl/internal/predicate"
)

// intervalWorkload builds the synthetic E2/E3 computation: n processes,
// each alternating true segments and false-intervals p times
// (T F F T T F F … T), with no messages, so the instance is always
// feasible and the interval count is exact.
func intervalWorkload(n, p int) (*deposet.Deposet, *predicate.Disjunction) {
	b := deposet.NewBuilder(n)
	states := 1 + 4*p // T then p × (F F T T)
	for q := 0; q < n; q++ {
		for e := 1; e < states; e++ {
			b.Step(q)
		}
	}
	d := b.MustBuild()
	truth := make([][]bool, n)
	for q := 0; q < n; q++ {
		truth[q] = make([]bool, states)
		for k := 0; k < states; k++ {
			// k=0: true; then groups of 4: F F T T.
			truth[q][k] = k == 0 || (k-1)%4 >= 2
		}
	}
	return d, predicate.DisjunctionFromTruth(truth)
}

// E2 reproduces the §5 Evaluation complexity analysis: off-line
// disjunctive control runs in O(n²p) with the incremental pair
// maintenance versus O(n³p) naive, and emits at most O(np) control
// messages. All three engines are measured on the same workloads.
func E2(int64) *Table {
	t := &Table{
		ID:    "E2",
		Title: "off-line disjunctive control scaling (Figure 2 algorithm)",
		Claim: "O(n²p) time (O(n³p) naive), ≤ O(np) control messages (§5 Evaluation)",
		Columns: []string{
			"n", "p", "edges", "np bound", "chain", "figure2", "figure2-naive",
		},
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		for _, p := range []int{8, 32} {
			d, dj := intervalWorkload(n, p)
			var edges int
			chain := timeIt(func() {
				res, err := offline.Control(d, dj, offline.Options{})
				if err != nil {
					panic(err)
				}
				if res.Fallback {
					panic("fallback on synthetic workload")
				}
				edges = len(res.Relation)
			})
			fig2 := timeIt(func() {
				if _, err := offline.ControlFigure2(d, dj, offline.Options{}); err != nil {
					panic(err)
				}
			})
			naive := timeIt(func() {
				if _, err := offline.ControlFigure2(d, dj, offline.Options{Naive: true}); err != nil {
					panic(err)
				}
			})
			t.Row(n, p, edges, n*p, chain, fig2, naive)
		}
	}
	t.Note("the naive/optimized gap widens with n (the extra factor of n);")
	t.Note("edge counts stay well under the n·p bound in every row")
	return t
}
