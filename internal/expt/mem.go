package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/predicate"
)

// mem.go measures the allocation behaviour of the hot paths the flat
// clock arena targets: deposet construction, the detection scans, and
// the off-line controller, all on fixed single-worker workloads so the
// counts are deterministic across hosts (every trace sits below the
// parallel cutoffs). cmd/pcbench -membaseline serializes the sweep to
// BENCH_memory.json; -compare diffs two sweeps and fails on regression.

// MemMeasurement is one row of the allocation sweep.
type MemMeasurement struct {
	Name        string `json:"name"`
	Procs       int    `json:"procs"`
	States      int    `json:"states"`
	NsPerOp     int64  `json:"nsPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
}

// MemBaseline is the serializable allocation baseline (BENCH_memory.json).
type MemBaseline struct {
	Schema     int              `json:"schema"`
	GoVersion  string           `json:"goVersion"`
	NumCPU     int              `json:"numCPU"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Seed       int64            `json:"seed"`
	Note       string           `json:"note"`
	Results    []MemMeasurement `json:"results"`
	// PreChange, when present, holds the same rows measured on the same
	// host before the flat-arena rework, and AllocReduction the per-row
	// allocs/op reduction 1 − after/before.
	PreChange      []MemMeasurement   `json:"preChange,omitempty"`
	AllocReduction map[string]float64 `json:"allocReduction,omitempty"`
}

// measureMem benchmarks fn with the standard testing harness, so
// allocs/op and bytes/op come from the runtime's accounting, not
// hand-rolled sampling.
func measureMem(name string, procs, states int, fn func()) MemMeasurement {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return MemMeasurement{
		Name:        name,
		Procs:       procs,
		States:      states,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// conjFromTruth builds a conjunction whose conjunct on each process is
// the given truth table row (the shape the detection benchmarks use).
func conjFromTruth(truth [][]bool) *predicate.Conjunction {
	cj := predicate.NewConjunction(len(truth))
	for p := range truth {
		tp := truth[p]
		cj.Add(p, fmt.Sprintf("q%d", p), func(_ *deposet.Deposet, k int) bool { return tp[k] })
	}
	return cj
}

// varsBuilder populates a computation whose processes update a state
// variable on a fraction of events — the workload for the
// copy-on-write variable-snapshot row.
func varsBuilder(r *rand.Rand, procs, events int) *deposet.Builder {
	b := deposet.NewBuilder(procs)
	for p := 0; p < procs; p++ {
		b.Let(p, "x", 0)
	}
	for i := 0; i < events; i++ {
		p := r.Intn(procs)
		b.Step(p)
		if r.Float64() < 0.1 {
			b.Let(p, "x", r.Intn(4))
		}
	}
	return b
}

// MeasureMemory runs the allocation sweep. Every workload stays under
// the parallel cutoffs, so the measured code paths — and therefore the
// allocation counts — are identical on any host.
func MeasureMemory(seed int64) *MemBaseline {
	r := rand.New(rand.NewSource(seed))
	b := &MemBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Note: "single-worker workloads below the parallel cutoffs: allocs/op and " +
			"bytes/op are deterministic per code version; nsPerOp depends on the host",
	}

	bld := deposet.RandomBuilder(r, deposet.DefaultGen(16, 1800))
	d := bld.MustBuild()
	truthLow := deposet.RandomTruth(r, d, 0.1)
	truthHigh := deposet.RandomTruth(r, d, 0.3)
	cjLow := conjFromTruth(truthLow)
	cjHigh := conjFromTruth(truthHigh)
	holdsLow := func(p, k int) bool { return truthLow[p][k] }
	holdsHigh := func(p, k int) bool { return truthHigh[p][k] }
	vb := varsBuilder(rand.New(rand.NewSource(seed+1)), 8, 1000)
	cd, cdj := intervalWorkload(8, 32)
	s := deposet.StateID{P: 0, K: d.Len(0) / 2}
	t := deposet.StateID{P: d.NumProcs() - 1, K: d.Len(d.NumProcs()-1) - 1}
	// Forced 4-worker sharding: the same code path on every host, so the
	// parallel engine's per-round allocations are part of the record.
	force := detect.Par{Workers: 4, Cutoff: 1}

	b.Results = append(b.Results,
		measureMem("deposet-build", 16, d.NumStates(), func() {
			if _, err := bld.Build(); err != nil {
				panic(err)
			}
		}),
		measureMem("deposet-build-vars", 8, 1008, func() {
			if _, err := vb.Build(); err != nil {
				panic(err)
			}
		}),
		measureMem("detect-possibly", 16, d.NumStates(), func() {
			detect.PossiblyTruthPar(d, holdsLow, force)
		}),
		measureMem("detect-possibly-seq", 16, d.NumStates(), func() {
			detect.PossiblyConjunctive(d, cjLow)
		}),
		measureMem("detect-definitely", 16, d.NumStates(), func() {
			detect.DefinitelyTruthPar(d, holdsHigh, force)
		}),
		measureMem("detect-definitely-seq", 16, d.NumStates(), func() {
			detect.DefinitelyConjunctive(d, cjHigh)
		}),
		measureMem("offline-control n=8 p=32", 8, cd.NumStates(), func() {
			if _, err := offline.Control(cd, cdj, offline.Options{}); err != nil {
				panic(err)
			}
		}),
		measureMem("offline-figure2 n=8 p=32", 8, cd.NumStates(), func() {
			if _, err := offline.ControlFigure2(cd, cdj, offline.Options{}); err != nil {
				panic(err)
			}
		}),
		measureMem("hb", 16, d.NumStates(), func() {
			d.HB(s, t)
		}),
		measureMem("clock", 16, d.NumStates(), func() {
			d.Clock(s)
		}),
	)
	return b
}

// MemoryJSON renders the sweep as the committed BENCH_memory.json. A
// non-nil pre baseline (the same sweep measured before a change) is
// embedded with the per-row allocs/op reductions.
func MemoryJSON(seed int64, pre *MemBaseline) ([]byte, error) {
	cur := MeasureMemory(seed)
	if pre != nil {
		cur.PreChange = pre.Results
		cur.AllocReduction = make(map[string]float64)
		prev := make(map[string]MemMeasurement, len(pre.Results))
		for _, m := range pre.Results {
			prev[m.Name] = m
		}
		for _, m := range cur.Results {
			if p, ok := prev[m.Name]; ok && p.AllocsPerOp > 0 {
				cur.AllocReduction[m.Name] = 1 - float64(m.AllocsPerOp)/float64(p.AllocsPerOp)
			}
		}
	}
	doc, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// Comparison tolerances: allocation counts are deterministic, so only a
// small absolute slack is allowed (map iteration order can shift a
// handful of map-growth allocations); wall time gets wide slack because
// CI hosts are noisy.
const (
	memAllocSlackRel = 0.10
	memAllocSlackAbs = 8
	memNsSlackRel    = 0.50
)

// CompareMem diffs cur against old row by row and reports regressions:
// any matched row whose allocs/op or ns/op exceed the old value beyond
// the tolerances. The returned report always lists every matched row.
func CompareMem(old, cur *MemBaseline) (string, error) {
	prev := make(map[string]MemMeasurement, len(old.Results))
	for _, m := range old.Results {
		prev[m.Name] = m
	}
	var rep strings.Builder
	var regressions []string
	fmt.Fprintf(&rep, "%-26s  %14s  %14s  %12s\n", "workload", "allocs/op", "bytes/op", "ns/op")
	for _, m := range cur.Results {
		p, ok := prev[m.Name]
		if !ok {
			fmt.Fprintf(&rep, "%-26s  %14s  %14s  %12s  (new row)\n",
				m.Name, fmt.Sprint(m.AllocsPerOp), fmt.Sprint(m.BytesPerOp), fmt.Sprint(m.NsPerOp))
			continue
		}
		fmt.Fprintf(&rep, "%-26s  %6d→%-7d  %6d→%-7d  %5s→%-6s\n",
			m.Name, p.AllocsPerOp, m.AllocsPerOp, p.BytesPerOp, m.BytesPerOp,
			nsString(p.NsPerOp), nsString(m.NsPerOp))
		if float64(m.AllocsPerOp) > float64(p.AllocsPerOp)*(1+memAllocSlackRel)+memAllocSlackAbs {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d → %d", m.Name, p.AllocsPerOp, m.AllocsPerOp))
		}
		if float64(m.NsPerOp) > float64(p.NsPerOp)*(1+memNsSlackRel) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %d → %d", m.Name, p.NsPerOp, m.NsPerOp))
		}
	}
	if len(regressions) > 0 {
		return rep.String(), fmt.Errorf("bench regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return rep.String(), nil
}
