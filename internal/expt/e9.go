package expt

import (
	"fmt"

	"predctl/internal/control"
	"predctl/internal/offline"
)

// E9 is the design-choice ablation DESIGN.md calls out: the order in
// which the chain engine considers handoff entries. Earliest-first (the
// default) keeps the chain close to the computation — more control
// messages, but most of the lattice of consistent global states
// survives; latest-first jumps to durable segments — very few messages,
// but long stretches get serialized. The paper's §5 Evaluation names
// concurrency ("allow as much concurrency as possible") as the quality
// metric alongside message count; retained consistent cuts make that
// metric concrete.
func E9(int64) *Table {
	t := &Table{
		ID:    "E9",
		Title: "ablation: chain handoff ordering — messages vs concurrency",
		Claim: "a good strategy minimizes synchronization while 'allowing as much concurrency as possible' (§5)",
		Columns: []string{
			"n", "p", "ordering", "edges", "consistent cuts", "% of uncontrolled",
		},
	}
	for _, shape := range []struct{ n, p int }{{2, 4}, {3, 3}, {4, 2}} {
		d, dj := intervalWorkload(shape.n, shape.p)
		base := d.CountConsistentCuts()
		for _, late := range []bool{false, true} {
			name := "earliest-first"
			if late {
				name = "latest-first"
			}
			res, err := offline.Control(d, dj, offline.Options{PreferLate: late})
			if err != nil {
				panic(err)
			}
			x, err := control.Extend(d, res.Relation)
			if err != nil {
				panic(err)
			}
			cuts := x.CountConsistentCuts()
			t.Row(shape.n, shape.p, name, len(res.Relation), cuts,
				fmt.Sprintf("%.0f%%", 100*float64(cuts)/float64(base)))
		}
	}
	t.Note("both orderings produce correct controllers; the default trades")
	t.Note("messages for retained concurrency, as the paper prescribes.")
	return t
}
