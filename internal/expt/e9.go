package expt

import (
	"fmt"
	"strconv"

	"predctl/internal/control"
	"predctl/internal/obs"
	"predctl/internal/offline"
)

// E9 is the design-choice ablation DESIGN.md calls out: the order in
// which the chain engine considers handoff entries. Earliest-first (the
// default) keeps the chain close to the computation — more control
// messages, but most of the lattice of consistent global states
// survives; latest-first jumps to durable segments — very few messages,
// but long stretches get serialized. The paper's §5 Evaluation names
// concurrency ("allow as much concurrency as possible") as the quality
// metric alongside message count; retained consistent cuts make that
// metric concrete. Edge counts are recorded into an obs registry and
// checked against the §5 message bound for both orderings.
func E9(int64) *Table {
	t := &Table{
		ID:    "E9",
		Title: "ablation: chain handoff ordering — messages vs concurrency",
		Claim: "a good strategy minimizes synchronization while 'allowing as much concurrency as possible' (§5)",
		Columns: []string{
			"n", "p", "ordering", "edges", "consistent cuts", "% of uncontrolled",
		},
	}
	reg := obs.NewRegistry()
	var rep obs.Report
	for _, shape := range []struct{ n, p int }{{2, 4}, {3, 3}, {4, 2}} {
		d, dj := intervalWorkload(shape.n, shape.p)
		base := d.CountConsistentCuts()
		for _, late := range []bool{false, true} {
			name := "earliest-first"
			if late {
				name = "latest-first"
			}
			res, err := offline.Control(d, dj, offline.Options{PreferLate: late})
			if err != nil {
				panic(err)
			}
			edges := reg.Counter("predctl_offline_ctl_messages_total",
				obs.L("n", strconv.Itoa(shape.n)), obs.L("p", strconv.Itoa(shape.p)),
				obs.L("ordering", name))
			edges.Add(int64(len(res.Relation)))
			rep.CheckOfflineEdges(int(edges.Value()), shape.n, shape.p)
			x, err := control.Extend(d, res.Relation)
			if err != nil {
				panic(err)
			}
			cuts := x.CountConsistentCuts()
			t.Row(shape.n, shape.p, name, edges.Value(), cuts,
				fmt.Sprintf("%.0f%%", 100*float64(cuts)/float64(base)))
		}
	}
	if err := rep.Err(); err != nil {
		t.Note("%v", err)
	}
	t.Note("both orderings produce correct controllers; the default trades")
	t.Note("messages for retained concurrency, as the paper prescribes. Both")
	t.Note("stay within the §5 bound ≤ n(p+1) (obs.CheckOfflineEdges).")
	return t
}
