package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
	"predctl/internal/slice"
)

// The computation-slicing sweep: slice-based violation enumeration
// against the exhaustive lattice walk, across trace sizes and worker
// counts, recording both wall time and states explored. cmd/pcbench
// -slice serializes it to BENCH_slice.json; the E10 table appends the
// same rows.

// SliceMeasurement is one workload of the slicing sweep.
type SliceMeasurement struct {
	Name   string `json:"name"`
	Procs  int    `json:"procs"`
	States int    `json:"states"`

	// States explored: the exhaustive walk visits the whole lattice; the
	// sliced path visits exactly the slice's cuts (every one an answer).
	LatticeCuts int `json:"latticeCuts,omitempty"`
	SliceCuts   int `json:"sliceCuts"`
	MetaEvents  int `json:"metaEvents"`

	// Identical reports the cross-validation verdict: the slice's
	// violation set is byte-identical to the exhaustive walk's (after the
	// walk's canonical (depth, lex) sort). Always checked when the
	// lattice is enumerable.
	Identical bool `json:"identical"`

	SliceNs            map[string]int64 `json:"sliceNsPerOp"`                // worker count → ns
	ExhaustiveNs       map[string]int64 `json:"exhaustiveNsPerOp,omitempty"` // forced-cutoff oracle
	SliceSpeedup4      float64          `json:"sliceSpeedup4"`
	ExhaustiveSpeedup4 float64          `json:"exhaustiveSpeedup4,omitempty"`
	// SliceGain1w = exhaustive 1w / slice 1w: the algorithmic win,
	// independent of worker count.
	SliceGain1w float64 `json:"sliceGain1w,omitempty"`
}

// SliceBaseline is the serializable slicing performance baseline.
type SliceBaseline struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"goVersion"`
	NumCPU     int                `json:"numCPU"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Seed       int64              `json:"seed"`
	Note       string             `json:"note"`
	Results    []SliceMeasurement `json:"results"`
}

// sliceWorkload generates a trace and a disjunctive predicate whose
// violations (the cuts of the regular ¬B) the sweep enumerates.
type sliceWorkload struct {
	name    string
	procs   int
	events  int
	density float64 // disjunct truth density; higher → sparser violations
	oracle  bool    // lattice small enough for the exhaustive oracle
}

var sliceWorkloads = []sliceWorkload{
	{"violations-sparse n=4", 4, 56, 0.55, true},
	{"violations-sparse n=5", 5, 96, 0.50, true},
	{"violations-sparse n=6", 6, 90, 0.45, true},
	{"violations-dense n=5", 5, 96, 0.04, true},
	{"violations-dense n=6", 6, 90, 0.03, true},
}

// timeBest is timeIt stabilized for the slicing sweep's speedup ratios:
// minimum of three timings, the standard defense against scheduler noise
// on a loaded host.
func timeBest(fn func()) int64 {
	best := timeIt(fn)
	for i := 0; i < 2; i++ {
		if d := timeIt(fn); d < best {
			best = d
		}
	}
	return best.Nanoseconds()
}

// keysJoined renders a violation list order-sensitively (byte-identical
// comparison across worker counts of one enumeration strategy).
func keysJoined(cuts []deposet.Cut) string {
	var b strings.Builder
	for _, g := range cuts {
		b.WriteString(g.Key())
		b.WriteByte(';')
	}
	return b.String()
}

// keySet renders a violation list order-insensitively (set comparison
// across strategies — the slice emits (depth, numeric-lex) order, the
// level-synchronized walk (depth, key-string) order; same set, different
// within-level order once a component reaches two digits).
func keySet(cuts []deposet.Cut) string {
	keys := make([]string, len(cuts))
	for i, g := range cuts {
		keys[i] = g.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// MeasureSlice runs the slicing sweep.
func MeasureSlice(seed int64) *SliceBaseline {
	r := rand.New(rand.NewSource(seed))
	b := &SliceBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Note: "violation enumeration for B = ∨ lp (¬B regular): the sliced path " +
			"(internal/slice) visits only the slice's cuts — every one a violation — " +
			"where the exhaustive walk visits the whole lattice (sliceGain1w = " +
			"exhaustive/slice at one worker). Worker rows force Cutoff: 1; the " +
			"exhaustive walk pays per-level barriers and map merges (speedup4 < 1 " +
			"on few cores), the slice splits its ideal forest into disjoint " +
			"segments with no shared visited state, so extra workers cost nothing " +
			"even when cores are scarce and the speedup tracks cores when they " +
			"exist (numCPU above records what this run had)",
	}
	force := func(w int) detect.Par { return detect.Par{Workers: w, Cutoff: 1} }

	for _, wl := range sliceWorkloads {
		d := deposet.Random(r, deposet.DefaultGen(wl.procs, wl.events))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, wl.density))
		bexpr := dj.Expr()
		m := SliceMeasurement{
			Name: wl.name, Procs: d.NumProcs(), States: d.NumStates(),
			SliceNs: make(map[string]int64, len(ParWorkers)),
		}

		cuts, stats := detect.AllViolationsWithStats(d, bexpr, force(1))
		if !stats.Sliced {
			panic("slice sweep workload did not slice")
		}
		m.SliceCuts = stats.StatesExplored
		m.MetaEvents = stats.MetaEvents

		if wl.oracle {
			m.LatticeCuts = d.CountConsistentCuts()
			oracle := detect.AllViolationsExhaustivePar(d, bexpr, force(4))
			two := detect.AllViolationsExhaustivePar(d, bexpr, force(2))
			m.Identical = keySet(cuts) == keySet(oracle) && keySet(cuts) == keySet(two)
			m.ExhaustiveNs = make(map[string]int64, len(ParWorkers))
			for _, w := range ParWorkers {
				w := w
				m.ExhaustiveNs[fmt.Sprint(w)] = timeBest(func() {
					detect.AllViolationsExhaustivePar(d, bexpr, force(w))
				})
			}
			if t4 := m.ExhaustiveNs["4"]; t4 > 0 {
				m.ExhaustiveSpeedup4 = float64(m.ExhaustiveNs["1"]) / float64(t4)
			}
		} else {
			// No oracle: the worker counts must still agree byte-for-byte.
			m.Identical = keysJoined(cuts) == keysJoined(detect.AllViolationsPar(d, bexpr, force(4)))
		}

		for _, w := range ParWorkers {
			w := w
			m.SliceNs[fmt.Sprint(w)] = timeBest(func() {
				detect.AllViolationsPar(d, bexpr, force(w))
			})
		}
		if t4 := m.SliceNs["4"]; t4 > 0 {
			m.SliceSpeedup4 = float64(m.SliceNs["1"]) / float64(t4)
		}
		if m.ExhaustiveNs != nil && m.SliceNs["1"] > 0 {
			m.SliceGain1w = float64(m.ExhaustiveNs["1"]) / float64(m.SliceNs["1"])
		}
		b.Results = append(b.Results, m)
	}

	// Large-trace tractability row: n=32, ≈16k states — the lattice is
	// astronomically beyond enumeration, but the polynomial slice paths
	// (construction, possibly-witness, control feasibility) answer
	// directly. Sequential and 4-worker construction must agree.
	big := deposet.Random(r, deposet.DefaultGen(32, 16000))
	bigDj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, big, 0.9))
	bigB := predicate.Not(bigDj.Expr()) // regular: ∧p ¬lp
	tab, ok := predicate.RegularTable(bigB, big)
	if !ok {
		panic("big workload not regular")
	}
	m := SliceMeasurement{
		Name:  "slice-control n=32 (lattice not enumerable)",
		Procs: big.NumProcs(), States: big.NumStates(),
		SliceNs: make(map[string]int64, len(ParWorkers)),
	}
	sl := slice.Compute(big, tab)
	m.MetaEvents = sl.Stats().MetaEvents
	_, chainFound, chainDecided := sl.SingleStepChain()
	m.Identical = chainDecided
	m.SliceNs["1"] = timeBest(func() {
		s := slice.Compute(big, tab)
		if _, found, decided := s.SingleStepChain(); found != chainFound || decided != chainDecided {
			panic("nondeterministic slice control")
		}
		if _, ok := detect.PossiblyGeneral(big, bigB); ok != !s.Empty() {
			panic("possibly disagrees with slice emptiness")
		}
	})
	b.Results = append(b.Results, m)
	return b
}

// SliceSmoke cross-validates the sliced dispatcher against the
// exhaustive oracle on seeded mid-size traces — no timing, just the
// equality verdict: for every workload the slice's violation set must be
// byte-identical across worker counts 1/2/4 and set-identical to the
// exhaustive lattice walk, and the slice must explore strictly fewer
// states. Returns a summary line; a non-nil error is the CI gate.
func SliceSmoke(seed int64) (string, error) {
	r := rand.New(rand.NewSource(seed))
	traces, cuts := 0, 0
	for _, wl := range sliceWorkloads {
		if !wl.oracle {
			continue
		}
		d := deposet.Random(r, deposet.DefaultGen(wl.procs, wl.events))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, wl.density))
		bexpr := dj.Expr()
		got, stats := detect.AllViolationsWithStats(d, bexpr, detect.Par{Workers: 1, Cutoff: 1})
		if !stats.Sliced {
			return "", fmt.Errorf("%s: did not take the slice path", wl.name)
		}
		want := detect.AllViolationsExhaustivePar(d, bexpr, detect.Par{Workers: 4, Cutoff: 1})
		if keySet(got) != keySet(want) {
			return "", fmt.Errorf("%s: slice violations diverge from exhaustive oracle (%d vs %d cuts)",
				wl.name, len(got), len(want))
		}
		for _, w := range []int{2, 4} {
			if keysJoined(detect.AllViolationsPar(d, bexpr, detect.Par{Workers: w, Cutoff: 1})) != keysJoined(got) {
				return "", fmt.Errorf("%s: worker count %d changes the violation set", wl.name, w)
			}
		}
		if lattice := d.CountConsistentCuts(); stats.StatesExplored >= lattice {
			return "", fmt.Errorf("%s: slice explored %d states, lattice only %d",
				wl.name, stats.StatesExplored, lattice)
		}
		traces++
		cuts += len(got)
	}
	return fmt.Sprintf("slice smoke ok: %d traces, %d violations, slice == exhaustive at workers 1/2/4", traces, cuts), nil
}

// SliceBaselineJSON renders the sweep as the committed BENCH_slice.json.
func SliceBaselineJSON(seed int64) ([]byte, error) {
	doc, err := json.MarshalIndent(MeasureSlice(seed), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// SliceRows appends the slicing sweep to the E10 table.
func SliceRows(t *Table, seed int64) {
	base := MeasureSlice(seed)
	for _, m := range base.Results {
		lattice := "n/a"
		if m.LatticeCuts > 0 {
			lattice = fmt.Sprint(m.LatticeCuts)
		}
		exh1 := "-"
		if m.ExhaustiveNs != nil {
			exh1 = nsString(m.ExhaustiveNs["1"])
		}
		verdict := "≠"
		if m.Identical {
			verdict = "="
		}
		ns := func(w string) string {
			if v, ok := m.SliceNs[w]; ok {
				return nsString(v)
			}
			return "-"
		}
		t.Row("slice: "+m.Name, m.Procs, m.States,
			fmt.Sprintf("%s→%d", lattice, m.SliceCuts),
			ns("1"), ns("2"), ns("4"),
			fmt.Sprintf("%.2fx vs exh %s %s", m.SliceSpeedup4, exh1, verdict))
	}
	t.Note("slice rows: states column shows lattice→slice cuts explored; '=' marks the")
	t.Note("byte-identical violation-set verdict against the exhaustive oracle")
}
