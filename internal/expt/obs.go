package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
)

// obs.go measures what live observability costs: the same loopback
// cluster run twice — once with the observability extras off (no
// metrics snapshots on the capture stream, no HTTP servers) and once
// fully lit (periodic MetricsSnapshot frames, coordinator introspection
// endpoints under a continuous /metrics + /statusz polling load) —
// and reports the wall-clock overhead. cmd/pcbench -obs serializes it
// to BENCH_obs.json.

// ObsOptions scales the observability-overhead measurement.
type ObsOptions struct {
	Seed   int64
	N      int // cluster size (default 32)
	Rounds int // critical sections per node (default 32)
	Reps   int // repetitions per mode; median wall compared (default 8)
}

// ObsMeasurement aggregates one mode's repetitions.
type ObsMeasurement struct {
	Mode string `json:"mode"` // "snapshots-off" | "snapshots-on+http"
	WallStats
	// CoordFrames is the capture-stream frame count of the last rep;
	// the on/off difference is the MetricsSnapshot traffic.
	CoordFrames int64 `json:"coordFrames"`
	// Polls counts completed HTTP scrapes across all reps (on mode).
	Polls int `json:"polls"`
}

// ObsBaseline is the serializable record (BENCH_obs.json).
type ObsBaseline struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"goVersion"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	N          int    `json:"n"`
	Rounds     int    `json:"rounds"`
	Reps       int    `json:"reps"`
	Note       string `json:"note"`

	Off ObsMeasurement `json:"off"`
	On  ObsMeasurement `json:"on"`
	// OverheadPct compares the median walls: 100 × (on/off − 1).
	OverheadPct float64 `json:"overheadPct"`
}

// obsSnapshotEvery is the lit mode's snapshot cadence in flusher
// passes — with the bench's 5ms flush interval, one MetricsSnapshot
// frame per node per ~20ms.
const obsSnapshotEvery = 4

// obsPollInterval paces the lit mode's HTTP scrape loop. 10ms is still
// orders of magnitude hotter than a real scraper (Prometheus defaults
// to 15s) while leaving the single-CPU CI hosts schedulable.
const obsPollInterval = 10 * time.Millisecond

// runObsOnce executes one measured run. With live set, metrics
// snapshots ride the capture stream and the coordinator's introspection
// endpoints serve a scrape loop for the whole run.
func runObsOnce(opts ObsOptions, live bool) (wallMs float64, coordFrames int64, polls int, err error) {
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	cfg := node.ClusterConfig{
		N: opts.N, Rounds: opts.Rounds, Think: 500 * time.Microsecond, CS: 200 * time.Microsecond,
		Seed: opts.Seed, Faults: node.Faults{Delay: clusterDelay, Seed: opts.Seed},
		// SnapshotEvery -1 is the dark baseline (0 would mean the
		// default cadence); the lit mode overrides it below.
		Batching: node.Batching{Interval: clusterFlush, SnapshotEvery: -1},
		Journal:  j, Reg: reg,
		WaitTimeout: 5 * time.Minute,
	}
	done := make(chan struct{})
	var pollWG sync.WaitGroup
	if live {
		cfg.Batching.SnapshotEvery = obsSnapshotEvery
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return 0, 0, 0, lerr
		}
		cfg.HTTPListener = ln
		base := "http://" + ln.Addr().String()
		client := &http.Client{Timeout: 2 * time.Second}
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/statusz"} {
					resp, gerr := client.Get(base + path)
					if gerr != nil {
						continue // teardown race at run end
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					polls++
				}
				time.Sleep(obsPollInterval)
			}
		}()
	}
	start := time.Now()
	_, err = node.RunCluster(cfg)
	wall := time.Since(start)
	close(done)
	pollWG.Wait()
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(wall.Nanoseconds()) / 1e6,
		reg.Counter("predctl_wire_frames_total", obs.L("stream", "coord")).Value(),
		polls, nil
}

// MeasureObs runs both modes opts.Reps times each, interleaved so host
// drift hits both equally, and reports min/median/mean walls plus the
// percentage overhead of the fully-lit mode (on medians — robust
// against scheduler outliers on small CI hosts).
func MeasureObs(opts ObsOptions) (*ObsBaseline, error) {
	if opts.N == 0 {
		opts.N = 32
	}
	if opts.Rounds == 0 {
		opts.Rounds = 32
	}
	if opts.Reps == 0 {
		opts.Reps = 8
	}
	b := &ObsBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       opts.Seed,
		N:          opts.N,
		Rounds:     opts.Rounds,
		Reps:       opts.Reps,
		Note: "identical loopback clusters (200µs injected mesh delay, batched capture), snapshots-off " +
			"vs snapshots-on+http: periodic MetricsSnapshot frames on the capture stream (every " +
			"4th flush pass) plus coordinator /metrics and /statusz scraped in a 10ms polling loop " +
			"for the whole run; modes interleaved per rep, median walls compared; a negative " +
			"overhead means the cost is below run-to-run host noise; wall times depend on the host",
		Off: ObsMeasurement{Mode: "snapshots-off"},
		On:  ObsMeasurement{Mode: "snapshots-on+http"},
	}
	measure := func(m *ObsMeasurement, live bool) (float64, error) {
		wall, frames, polls, err := runObsOnce(opts, live)
		if err != nil {
			return 0, fmt.Errorf("obs bench %s: %w", m.Mode, err)
		}
		m.CoordFrames = frames
		m.Polls += polls
		return wall, nil
	}
	err := interleaveAB(opts.Reps,
		func() (float64, error) { return measure(&b.Off, false) },
		func() (float64, error) { return measure(&b.On, true) },
		&b.Off.WallStats, &b.On.WallStats)
	if err != nil {
		return nil, err
	}
	b.OverheadPct = pctOverhead(b.On.WallMsMedian, b.Off.WallMsMedian)
	return b, nil
}

// ObsJSON renders the measurement as the committed BENCH_obs.json.
func ObsJSON(opts ObsOptions) ([]byte, error) {
	b, err := MeasureObs(opts)
	if err != nil {
		return nil, err
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
