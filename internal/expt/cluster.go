package expt

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/wire"
)

// cluster.go measures the networked runtime at scale: real in-process
// clusters over loopback TCP at n ∈ {8, 32, 64, 128} nodes, run twice
// each — once in per-event mode (the pre-batching wire behavior: one
// TCP frame per journal event and per trace op) and once batched — and
// a socket-free micro-benchmark of the coordinator's decode-and-stage
// ingest path in both framings. cmd/pcbench -cluster serializes the
// sweep to BENCH_cluster.json.

// ClusterMeasurement is one cluster run's row. Coord* count the
// capture-stream traffic (what batching targets); Mesh* the node↔node
// protocol traffic, whose frame count is latency-bound and does not
// batch, but whose writes coalesce.
type ClusterMeasurement struct {
	N    int    `json:"n"`
	Mode string `json:"mode"` // "per-event" | "batched"

	WallMs float64 `json:"wallMs"`

	CoordFrames    int64   `json:"coordFrames"`
	CoordBytes     int64   `json:"coordBytes"`
	CoordBatchMean float64 `json:"coordBatchMean"` // capture items per coord frame
	MeshFrames     int64   `json:"meshFrames"`
	MeshBytes      int64   `json:"meshBytes"`
	MeshBatchMean  float64 `json:"meshBatchMean"` // frames per coalesced link write

	Requests   int `json:"requests"`
	Handoffs   int `json:"handoffs"`
	Candidates int `json:"candidates"`
	States     int `json:"states"` // captured deposet states

	InvariantsChecked  int `json:"invariantsChecked"`
	InvariantsViolated int `json:"invariantsViolated"`
}

// IngestMeasurement is the coordinator ingest micro-benchmark: the same
// logical capture items decoded and staged from per-event frames vs
// batch frames, normalized per item.
type IngestMeasurement struct {
	Mode          string  `json:"mode"`
	N             int     `json:"n"`
	Items         int     `json:"items"`
	Frames        int     `json:"frames"`
	NsPerItem     float64 `json:"nsPerItem"`
	AllocsPerItem float64 `json:"allocsPerItem"`
	BytesPerItem  float64 `json:"bytesPerItem"`
}

// ClusterBaseline is the serializable cluster sweep (BENCH_cluster.json).
type ClusterBaseline struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"goVersion"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	Rounds     int    `json:"rounds"`
	Note       string `json:"note"`

	Results []ClusterMeasurement `json:"results"`
	// CoordFrameReduction maps "n=<N>" to per-event/batched coordinator
	// frame counts — the frames-per-run win batching buys.
	CoordFrameReduction map[string]float64  `json:"coordFrameReduction"`
	Ingest              []IngestMeasurement `json:"ingest"`
	// IngestAllocReduction is 1 − batched/per-event ingest allocs/item.
	IngestAllocReduction float64 `json:"ingestAllocReduction"`
}

// clusterSizes is the sweep's node counts. 128 in-process nodes means a
// 16k-link mesh in one OS process; lazy dialing keeps the live
// connection count proportional to actual protocol traffic.
var clusterSizes = []int{8, 32, 64, 128}

// clusterDelay is the injected per-frame mesh latency: it stands in for
// the paper's message delay T and gives CheckResponsesWindow a
// non-trivial floor (a handoff grant pays at least two shimmed hops).
const clusterDelay = 200 * time.Microsecond

// clusterFlush is the bench's capture flush interval. The 2ms default
// targets view staleness; the bench widens it so the measured ratio
// reflects batch occupancy rather than near-empty interval flushes on
// a microbenchmark-sized workload.
const clusterFlush = 5 * time.Millisecond

// runClusterOnce executes one measured cluster run.
func runClusterOnce(n, rounds int, seed int64, perEvent bool) (ClusterMeasurement, error) {
	mode := "batched"
	if perEvent {
		mode = "per-event"
	}
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	start := time.Now()
	res, err := node.RunCluster(node.ClusterConfig{
		N: n, Rounds: rounds, Think: 500 * time.Microsecond, CS: 200 * time.Microsecond,
		Seed: seed, Faults: node.Faults{Delay: clusterDelay, Seed: seed},
		Batching: node.Batching{PerEvent: perEvent, Interval: clusterFlush},
		Journal:  j, Reg: reg,
		WaitTimeout: 5 * time.Minute,
	})
	if err != nil {
		return ClusterMeasurement{}, fmt.Errorf("cluster n=%d %s: %w", n, mode, err)
	}
	wall := time.Since(start)

	m := ClusterMeasurement{
		N: n, Mode: mode,
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		CoordFrames:    reg.Counter("predctl_wire_frames_total", obs.L("stream", "coord")).Value(),
		CoordBytes:     reg.Counter("predctl_wire_bytes_total", obs.L("stream", "coord")).Value(),
		CoordBatchMean: reg.Histogram("predctl_wire_batch_size", obs.L("stream", "coord")).Mean(),
		MeshFrames:     reg.Counter("predctl_wire_frames_total", obs.L("stream", "mesh")).Value(),
		MeshBytes:      reg.Counter("predctl_wire_bytes_total", obs.L("stream", "mesh")).Value(),
		MeshBatchMean:  reg.Histogram("predctl_wire_batch_size", obs.L("stream", "mesh")).Mean(),
		Candidates:     res.Candidates,
		States:         res.Deposet.NumStates(),
	}
	for _, s := range res.Stats {
		m.Requests += s.Requests
		m.Handoffs += s.Handoffs
	}

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
		2*clusterDelay.Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	m.InvariantsChecked = len(rep.Checked)
	m.InvariantsViolated = len(rep.Violations)
	if err := rep.Err(); err != nil {
		return m, fmt.Errorf("cluster n=%d %s: %w", n, mode, err)
	}
	return m, nil
}

// ingestWorkload builds one synthetic node's capture traffic — items
// trace ops plus items/4 journal events carrying n-component vector
// clocks — encoded either per event or in 128-item batches, returning
// decoded-ready frame bodies.
func ingestWorkload(n, items int, perEvent bool) [][]byte {
	ops := make([]wire.TraceOp, items)
	for i := range ops {
		op := wire.TraceOp{Proc: int32(n + i%4)} // runs of equal proc, like a real capture
		switch i % 3 {
		case 0:
			op.Op, op.MsgID = wire.TraceSend, uint64(n)<<40|uint64(i)
		case 1:
			op.Op, op.MsgID = wire.TraceRecv, uint64(n)<<40|uint64(i-1)
		default:
			op.Op, op.Name, op.Value = wire.TraceSet, "cs", int64(i%2)
		}
		ops[i] = op
	}
	events := make([]wire.JournalEvent, items/4)
	for i := range events {
		vc := make([]int32, n)
		vc[i%n] = int32(i)
		events[i] = wire.JournalEvent{
			At: int64(i), Proc: int32(n + i%n), Kind: 7, Name: "ctl.req", C: int64(i), VC: vc,
		}
	}
	var bodies [][]byte
	var seq uint64
	frame := func(m wire.Msg) {
		seq++
		bodies = append(bodies, wire.Marshal(seq, m)[4:])
	}
	if perEvent {
		for _, op := range ops {
			frame(wire.Trace{Ops: []wire.TraceOp{op}})
		}
		for _, e := range events {
			frame(e)
		}
		return bodies
	}
	const batch = 128
	for i := 0; i < len(ops); i += batch {
		frame(wire.TraceOpBatch{Ops: ops[i:min(i+batch, len(ops))]})
	}
	for i := 0; i < len(events); i += batch {
		frame(wire.JournalBatch{Events: events[i:min(i+batch, len(events))]})
	}
	return bodies
}

// measureIngest benchmarks the coordinator's decode-and-stage path over
// a workload, normalizing the runtime's allocation accounting per
// capture item.
func measureIngest(n, items int, perEvent bool) IngestMeasurement {
	mode := "batched"
	if perEvent {
		mode = "per-event"
	}
	bodies := ingestWorkload(n, items, perEvent)
	total := items + items/4
	j := obs.NewJournal(1 << 10)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := node.IngestBench(n, j, bodies); err != nil {
				panic(err)
			}
		}
	})
	return IngestMeasurement{
		Mode: mode, N: n, Items: total, Frames: len(bodies),
		NsPerItem:     float64(res.NsPerOp()) / float64(total),
		AllocsPerItem: float64(res.AllocsPerOp()) / float64(total),
		BytesPerItem:  float64(res.AllocedBytesPerOp()) / float64(total),
	}
}

// MeasureCluster runs the full sweep: every size in both modes, then
// the ingest micro-benchmark at n = 64.
func MeasureCluster(seed int64) (*ClusterBaseline, error) {
	const rounds = 16
	b := &ClusterBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Rounds:     rounds,
		Note: "in-process clusters over loopback TCP, 200µs injected mesh delay; per-event mode " +
			"replays the pre-batching wire behavior (one frame per journal event, trace op, and " +
			"candidate), batched mode the JournalBatch/TraceOpBatch/CandidateBatch flush policy " +
			"(≤128 items, 5ms bench interval vs the 2ms default); coord* meters the capture " +
			"stream, mesh* the protocol links (frame count latency-bound, writes coalesced); " +
			"every run must end with the scapegoat-chain and response-window invariants green; " +
			"wall times depend on the host",
		CoordFrameReduction: map[string]float64{},
	}
	perN := map[int][2]int64{} // n → [per-event frames, batched frames]
	for _, n := range clusterSizes {
		for _, perEvent := range []bool{true, false} {
			m, err := runClusterOnce(n, rounds, seed, perEvent)
			if err != nil {
				return nil, err
			}
			b.Results = append(b.Results, m)
			v := perN[n]
			if perEvent {
				v[0] = m.CoordFrames
			} else {
				v[1] = m.CoordFrames
			}
			perN[n] = v
		}
		if v := perN[n]; v[1] > 0 {
			b.CoordFrameReduction[fmt.Sprintf("n=%d", n)] = float64(v[0]) / float64(v[1])
		}
	}
	const ingestItems = 4096
	pe := measureIngest(64, ingestItems, true)
	ba := measureIngest(64, ingestItems, false)
	b.Ingest = []IngestMeasurement{pe, ba}
	if pe.AllocsPerItem > 0 {
		b.IngestAllocReduction = 1 - ba.AllocsPerItem/pe.AllocsPerItem
	}
	return b, nil
}

// ClusterJSON renders the sweep as the committed BENCH_cluster.json.
func ClusterJSON(seed int64) ([]byte, error) {
	b, err := MeasureCluster(seed)
	if err != nil {
		return nil, err
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
