package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/store"
	"predctl/internal/trace"
	"predctl/internal/wire"
)

// cluster.go measures the networked runtime at scale: real in-process
// clusters over loopback TCP at n ∈ {8, 32, 64, 128} nodes, run twice
// each — once in per-event mode (the pre-batching wire behavior: one
// TCP frame per journal event and per trace op) and once batched — and
// a socket-free micro-benchmark of the coordinator's decode-and-stage
// ingest path in both framings. cmd/pcbench -cluster serializes the
// sweep to BENCH_cluster.json.

// ClusterMeasurement is one cluster run's row. Coord* count the
// capture-stream traffic (what batching targets); Mesh* the node↔node
// protocol traffic, whose frame count is latency-bound and does not
// batch, but whose writes coalesce. Root* meter the coordinator's own
// ingest load — with a relay tree they diverge from Coord* (which sums
// every capture stream, node→relay hops included).
type ClusterMeasurement struct {
	N    int    `json:"n"`
	Mode string `json:"mode"` // "per-event" | "batched" | "tree" | "tree+store"
	// Relays is the aggregation-tree width (0 = flat, every node dials
	// the root directly).
	Relays int `json:"relays,omitempty"`

	WallMs float64 `json:"wallMs"`

	CoordFrames    int64   `json:"coordFrames"`
	CoordBytes     int64   `json:"coordBytes"`
	CoordBatchMean float64 `json:"coordBatchMean"` // capture items per coord frame
	MeshFrames     int64   `json:"meshFrames"`
	MeshBytes      int64   `json:"meshBytes"`
	MeshBatchMean  float64 `json:"meshBatchMean"` // frames per coalesced link write

	// RootConns counts stream handshakes the root accepted (O(relays)
	// in a tree, O(n) flat); RootFrames/RootBytes what it read off them.
	RootConns  int64 `json:"rootConns"`
	RootFrames int64 `json:"rootFrames"`
	RootBytes  int64 `json:"rootBytes"`

	// HeapHighKB is the process heap high-water (HeapInuse sampled
	// through the run, post-GC baseline subtracted) — what the store
	// rows bound by spilling staged capture to disk.
	HeapHighKB int64 `json:"heapHighKB"`
	// StoreSegments/StoreBytes describe the sealed bundle (store rows).
	StoreSegments int   `json:"storeSegments,omitempty"`
	StoreBytes    int64 `json:"storeBytes,omitempty"`
	// BundleTraceIdentical reports that reassembling the sealed bundle
	// from disk reproduced the run's trace byte-for-byte (store rows).
	BundleTraceIdentical bool `json:"bundleTraceIdentical,omitempty"`

	Requests   int `json:"requests"`
	Handoffs   int `json:"handoffs"`
	Candidates int `json:"candidates"`
	States     int `json:"states"` // captured deposet states

	InvariantsChecked  int `json:"invariantsChecked"`
	InvariantsViolated int `json:"invariantsViolated"`
}

// IngestMeasurement is the coordinator ingest micro-benchmark: the same
// logical capture items decoded and staged from per-event frames vs
// batch frames, normalized per item.
type IngestMeasurement struct {
	Mode          string  `json:"mode"`
	N             int     `json:"n"`
	Items         int     `json:"items"`
	Frames        int     `json:"frames"`
	NsPerItem     float64 `json:"nsPerItem"`
	AllocsPerItem float64 `json:"allocsPerItem"`
	BytesPerItem  float64 `json:"bytesPerItem"`
}

// ClusterBaseline is the serializable cluster sweep (BENCH_cluster.json).
type ClusterBaseline struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"goVersion"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	Rounds     int    `json:"rounds"`
	Note       string `json:"note"`

	Results []ClusterMeasurement `json:"results"`
	// CoordFrameReduction maps "n=<N>" to per-event/batched coordinator
	// frame counts — the frames-per-run win batching buys.
	CoordFrameReduction map[string]float64 `json:"coordFrameReduction"`
	// TreeConnReduction/TreeFrameReduction map "n=<N>" to flat/tree
	// ratios of root connections and root-ingested frames — what the
	// aggregation tree takes off the coordinator.
	TreeConnReduction  map[string]float64  `json:"treeConnReduction,omitempty"`
	TreeFrameReduction map[string]float64  `json:"treeFrameReduction,omitempty"`
	Ingest             []IngestMeasurement `json:"ingest"`
	// IngestAllocReduction is 1 − batched/per-event ingest allocs/item.
	IngestAllocReduction float64 `json:"ingestAllocReduction"`
}

// clusterSizes is the sweep's node counts. 128 in-process nodes means a
// 16k-link mesh in one OS process; lazy dialing keeps the live
// connection count proportional to actual protocol traffic.
var clusterSizes = []int{8, 32, 64, 128}

// treeSizes is the hierarchical-ingest sweep: each n runs flat and
// through a 2-level relay tree (width treeRelays(n)), and at the
// largest size additionally with the on-disk trace store, so one sweep
// shows the root's connection/frame cut and the RSS bound. Rounds
// shrink as n grows — the sweep measures ingest shape, not workload
// throughput, and n·rounds critical sections serialize.
var treeSizes = []int{256, 512}

// treeRelays is the tree width for a cluster of n nodes: 64-way fan-in
// per relay, at least 4.
func treeRelays(n int) int {
	r := n / 64
	if r < 4 {
		r = 4
	}
	return r
}

// treeRounds keeps the big-n rows tractable on small hosts.
func treeRounds(n int) int {
	if n >= 512 {
		return 1
	}
	return 4
}

// clusterWait is the coordinator deadline for one measured run. The
// big-n rows serialize hundreds of nodes' shimmed frame delays through
// however many cores the host has, so their tail node can legitimately
// need far longer than the flat sweep's.
func clusterWait(n int) time.Duration {
	if n >= 256 {
		return 20 * time.Minute
	}
	return 5 * time.Minute
}

// clusterDelay is the injected per-frame mesh latency: it stands in for
// the paper's message delay T and gives CheckResponsesWindow a
// non-trivial floor (a handoff grant pays at least two shimmed hops).
const clusterDelay = 200 * time.Microsecond

// clusterFlush is the bench's capture flush interval. The 2ms default
// targets view staleness; the bench widens it so the measured ratio
// reflects batch occupancy rather than near-empty interval flushes on
// a microbenchmark-sized workload.
const clusterFlush = 5 * time.Millisecond

// clusterRun parameterizes one measured run.
type clusterRun struct {
	n, rounds, relays int
	seed              int64
	perEvent          bool
	store             bool
}

func (rc clusterRun) mode() string {
	switch {
	case rc.store:
		return "tree+store"
	case rc.relays > 0:
		return "tree"
	case rc.perEvent:
		return "per-event"
	default:
		return "batched"
	}
}

// sampleHeapHigh watches HeapInuse until stop closes and reports the
// high-water mark (bytes).
func sampleHeapHigh(stop <-chan struct{}) <-chan uint64 {
	out := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				out <- peak
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()
	return out
}

// runClusterOnce executes one measured cluster run.
func runClusterOnce(rc clusterRun) (ClusterMeasurement, error) {
	mode := rc.mode()
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	cfg := node.ClusterConfig{
		N: rc.n, Rounds: rc.rounds, Think: 500 * time.Microsecond, CS: 200 * time.Microsecond,
		Seed: rc.seed, Faults: node.Faults{Delay: clusterDelay, Seed: rc.seed},
		Batching: node.Batching{PerEvent: rc.perEvent, Interval: clusterFlush},
		Relays:   rc.relays,
		Journal:  j, Reg: reg,
		WaitTimeout: clusterWait(rc.n),
	}
	var storeDir string
	if rc.store {
		dir, err := os.MkdirTemp("", "pcbench-store-*")
		if err != nil {
			return ClusterMeasurement{}, err
		}
		defer os.RemoveAll(dir)
		storeDir = dir
		cfg.StoreDir = dir
	}

	// Heap high-water: settle to a post-GC baseline, sample through the
	// run, report the delta — the number the store rows bound.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stopSampler := make(chan struct{})
	peakCh := sampleHeapHigh(stopSampler)

	start := time.Now()
	res, err := node.RunCluster(cfg)
	wall := time.Since(start)
	close(stopSampler)
	peak := <-peakCh
	if err != nil {
		return ClusterMeasurement{}, fmt.Errorf("cluster n=%d %s: %w", rc.n, mode, err)
	}

	m := ClusterMeasurement{
		N: rc.n, Mode: mode, Relays: rc.relays,
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		CoordFrames:    reg.Counter("predctl_wire_frames_total", obs.L("stream", "coord")).Value(),
		CoordBytes:     reg.Counter("predctl_wire_bytes_total", obs.L("stream", "coord")).Value(),
		CoordBatchMean: reg.Histogram("predctl_wire_batch_size", obs.L("stream", "coord")).Mean(),
		MeshFrames:     reg.Counter("predctl_wire_frames_total", obs.L("stream", "mesh")).Value(),
		MeshBytes:      reg.Counter("predctl_wire_bytes_total", obs.L("stream", "mesh")).Value(),
		MeshBatchMean:  reg.Histogram("predctl_wire_batch_size", obs.L("stream", "mesh")).Mean(),
		RootConns:      res.RootConns,
		RootFrames:     res.RootFrames,
		RootBytes:      res.RootBytes,
		Candidates:     res.Candidates,
		States:         res.Deposet.NumStates(),
	}
	if peak > base.HeapInuse {
		m.HeapHighKB = int64(peak-base.HeapInuse) / 1024
	}
	for _, s := range res.Stats {
		m.Requests += s.Requests
		m.Handoffs += s.Handoffs
	}
	if rc.store {
		man, verr := store.Verify(storeDir)
		if verr != nil {
			return m, fmt.Errorf("cluster n=%d %s: bundle: %w", rc.n, mode, verr)
		}
		m.StoreSegments = len(man.Segments)
		for _, sm := range man.Segments {
			m.StoreBytes += sm.Bytes
		}
		// The whole point of the bundle: reassembling from disk must
		// reproduce the run's trace byte-for-byte.
		d, _, aerr := node.AssembleBundle(storeDir)
		if aerr != nil {
			return m, fmt.Errorf("cluster n=%d %s: bundle assembly: %w", rc.n, mode, aerr)
		}
		var live, disk bytes.Buffer
		if err := trace.Encode(&live, res.Deposet, nil); err != nil {
			return m, err
		}
		if err := trace.Encode(&disk, d, nil); err != nil {
			return m, err
		}
		m.BundleTraceIdentical = bytes.Equal(live.Bytes(), disk.Bytes())
		if !m.BundleTraceIdentical {
			return m, fmt.Errorf("cluster n=%d %s: bundle trace differs from the run's", rc.n, mode)
		}
	}

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
		2*clusterDelay.Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	m.InvariantsChecked = len(rep.Checked)
	m.InvariantsViolated = len(rep.Violations)
	if err := rep.Err(); err != nil {
		return m, fmt.Errorf("cluster n=%d %s: %w", rc.n, mode, err)
	}
	return m, nil
}

// ingestWorkload builds one synthetic node's capture traffic — items
// trace ops plus items/4 journal events carrying n-component vector
// clocks — encoded either per event or in 128-item batches, returning
// decoded-ready frame bodies.
func ingestWorkload(n, items int, perEvent bool) [][]byte {
	ops := make([]wire.TraceOp, items)
	for i := range ops {
		op := wire.TraceOp{Proc: int32(n + i%4)} // runs of equal proc, like a real capture
		switch i % 3 {
		case 0:
			op.Op, op.MsgID = wire.TraceSend, uint64(n)<<40|uint64(i)
		case 1:
			op.Op, op.MsgID = wire.TraceRecv, uint64(n)<<40|uint64(i-1)
		default:
			op.Op, op.Name, op.Value = wire.TraceSet, "cs", int64(i%2)
		}
		ops[i] = op
	}
	events := make([]wire.JournalEvent, items/4)
	for i := range events {
		vc := make([]int32, n)
		vc[i%n] = int32(i)
		events[i] = wire.JournalEvent{
			At: int64(i), Proc: int32(n + i%n), Kind: 7, Name: "ctl.req", C: int64(i), VC: vc,
		}
	}
	var bodies [][]byte
	var seq uint64
	frame := func(m wire.Msg) {
		seq++
		bodies = append(bodies, wire.Marshal(seq, m)[4:])
	}
	if perEvent {
		for _, op := range ops {
			frame(wire.Trace{Ops: []wire.TraceOp{op}})
		}
		for _, e := range events {
			frame(e)
		}
		return bodies
	}
	const batch = 128
	for i := 0; i < len(ops); i += batch {
		frame(wire.TraceOpBatch{Ops: ops[i:min(i+batch, len(ops))]})
	}
	for i := 0; i < len(events); i += batch {
		frame(wire.JournalBatch{Events: events[i:min(i+batch, len(events))]})
	}
	return bodies
}

// relayWorkload re-wraps batched frame bodies into RelayBatch envelopes
// the way a relay's flusher does — several child frames coalesced per
// upstream frame — so the relayed row measures the root's
// unwrap-dedup-dispatch cost on top of the same decode-and-stage work.
func relayWorkload(bodies [][]byte) [][]byte {
	const coalesce = 8
	var out [][]byte
	var seq uint64
	for i := 0; i < len(bodies); i += coalesce {
		var frames []wire.RelayFrame
		for _, body := range bodies[i:min(i+coalesce, len(bodies))] {
			frames = append(frames, wire.RelayFrame{Origin: 0, Body: body})
		}
		seq++
		out = append(out, wire.Marshal(seq, wire.RelayBatch{Frames: frames})[4:])
	}
	return out
}

// measureIngest benchmarks the coordinator's decode-and-stage path over
// a workload, normalizing the runtime's allocation accounting per
// capture item. Modes: "per-event" and "batched" feed the node framings
// directly; "relayed" feeds the batched bodies re-wrapped in RelayBatch
// envelopes through the relay ingest path.
func measureIngest(n, items int, mode string) IngestMeasurement {
	bodies := ingestWorkload(n, items, mode == "per-event")
	ingest := func(j *obs.Journal) (int, error) { return node.IngestBench(n, j, bodies) }
	if mode == "relayed" {
		bodies = relayWorkload(bodies)
		ingest = func(j *obs.Journal) (int, error) { return node.IngestRelayBench(n, j, bodies) }
	}
	total := items + items/4
	j := obs.NewJournal(1 << 10)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ingest(j); err != nil {
				panic(err)
			}
		}
	})
	return IngestMeasurement{
		Mode: mode, N: n, Items: total, Frames: len(bodies),
		NsPerItem:     float64(res.NsPerOp()) / float64(total),
		AllocsPerItem: float64(res.AllocsPerOp()) / float64(total),
		BytesPerItem:  float64(res.AllocedBytesPerOp()) / float64(total),
	}
}

// clusterNote derives the sweep's description from the effective
// Batching config so it can never drift from what the runs actually
// used (the committed baseline once claimed a stale default interval).
func clusterNote() string {
	eff := node.Batching{Interval: clusterFlush}.WithDefaults()
	def := node.Batching{}.WithDefaults()
	return fmt.Sprintf("in-process clusters over loopback TCP, %v injected mesh delay; per-event mode "+
		"replays the pre-batching wire behavior (one frame per journal event, trace op, and "+
		"candidate), batched mode the JournalBatch/TraceOpBatch/CandidateBatch flush policy "+
		"(≤%d items, %v bench interval vs the %v default); tree rows route capture through a "+
		"2-level relay tree (relays column) and tree+store additionally spills staged capture "+
		"to an on-disk segment store and re-assembles the trace from the sealed bundle; "+
		"coord* meters every capture stream (node→relay hops included), root* only what the "+
		"root coordinator accepted; every run must end with the scapegoat-chain and "+
		"response-window invariants green; wall times depend on the host",
		clusterDelay, eff.MaxItems, eff.Interval, def.Interval)
}

// MeasureCluster runs the full sweep: every flat size in both framing
// modes, the tree sizes flat vs relayed (plus the store row at the
// largest), then the ingest micro-benchmark at n = 64 in all three
// framings.
func MeasureCluster(seed int64) (*ClusterBaseline, error) {
	const rounds = 16
	b := &ClusterBaseline{
		Schema:              2,
		GoVersion:           runtime.Version(),
		NumCPU:              runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Seed:                seed,
		Rounds:              rounds,
		Note:                clusterNote(),
		CoordFrameReduction: map[string]float64{},
		TreeConnReduction:   map[string]float64{},
		TreeFrameReduction:  map[string]float64{},
	}
	perN := map[int][2]int64{} // n → [per-event frames, batched frames]
	for _, n := range clusterSizes {
		for _, perEvent := range []bool{true, false} {
			m, err := runClusterOnce(clusterRun{n: n, rounds: rounds, seed: seed, perEvent: perEvent})
			if err != nil {
				return nil, err
			}
			b.Results = append(b.Results, m)
			v := perN[n]
			if perEvent {
				v[0] = m.CoordFrames
			} else {
				v[1] = m.CoordFrames
			}
			perN[n] = v
		}
		if v := perN[n]; v[1] > 0 {
			b.CoordFrameReduction[fmt.Sprintf("n=%d", n)] = float64(v[0]) / float64(v[1])
		}
	}
	for _, n := range treeSizes {
		flat, err := runClusterOnce(clusterRun{n: n, rounds: treeRounds(n), seed: seed})
		if err != nil {
			return nil, err
		}
		tree, err := runClusterOnce(clusterRun{n: n, rounds: treeRounds(n), relays: treeRelays(n), seed: seed})
		if err != nil {
			return nil, err
		}
		b.Results = append(b.Results, flat, tree)
		key := fmt.Sprintf("n=%d", n)
		if tree.RootConns > 0 {
			b.TreeConnReduction[key] = float64(flat.RootConns) / float64(tree.RootConns)
		}
		if tree.RootFrames > 0 {
			b.TreeFrameReduction[key] = float64(flat.RootFrames) / float64(tree.RootFrames)
		}
		if n == treeSizes[len(treeSizes)-1] {
			st, err := runClusterOnce(clusterRun{n: n, rounds: treeRounds(n), relays: treeRelays(n), seed: seed, store: true})
			if err != nil {
				return nil, err
			}
			b.Results = append(b.Results, st)
		}
	}
	const ingestItems = 4096
	pe := measureIngest(64, ingestItems, "per-event")
	ba := measureIngest(64, ingestItems, "batched")
	rb := measureIngest(64, ingestItems, "relayed")
	b.Ingest = []IngestMeasurement{pe, ba, rb}
	if pe.AllocsPerItem > 0 {
		b.IngestAllocReduction = 1 - ba.AllocsPerItem/pe.AllocsPerItem
	}
	return b, nil
}

// ClusterJSON renders the sweep as the committed BENCH_cluster.json.
func ClusterJSON(seed int64) ([]byte, error) {
	b, err := MeasureCluster(seed)
	if err != nil {
		return nil, err
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
