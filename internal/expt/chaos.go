package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
)

// chaos.go is the chaos soak: seeded crash/partition schedules against
// real in-process clusters, repeated until both a wall-clock budget and
// minimum injection counts are met. Every iteration must complete with
// zero lost capture and the paper-bound invariants green — a crash is
// recovered by the coordinator's §8 controlled re-execution, so the
// final trace of a chaotic run carries exactly the event counts of a
// fault-free one, and the soak asserts precisely that, run after run.
// cmd/pcbench -chaos serializes the totals to BENCH_chaos.json; the CI
// smoke job runs a seconds-long slice of the same loop.

// ChaosOptions parameterizes a soak.
type ChaosOptions struct {
	Seed int64
	// N is the cluster size per iteration.
	N int
	// Duration is the minimum soak wall time; iterations repeat until it
	// has elapsed AND the minimums below are met.
	Duration time.Duration
	// MinCrashes is the minimum number of crash-rejoin recoveries
	// (coordinator-ordered restarts) the soak must accumulate.
	MinCrashes int
	// MinPartitions is the minimum number of partition windows; the
	// schedule alternates mesh and coordinator-stream windows, so about
	// half of these sever capture streams.
	MinPartitions int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.N <= 0 {
		o.N = 8
	}
	if o.Duration <= 0 {
		o.Duration = 60 * time.Second
	}
	if o.MinCrashes <= 0 {
		o.MinCrashes = 100
	}
	if o.MinPartitions <= 0 {
		o.MinPartitions = 12
	}
	return o
}

// chaosRounds is the per-iteration workload length: short enough that a
// run completes between injected crashes (a controlled re-execution
// restarts the whole workload, so a workload longer than the crash
// spacing would never finish), long enough to move the anti-token.
const chaosRounds = 4

// chaosDelay is the injected mesh latency, the floor under the
// response-window invariant (a handoff grant pays two shimmed hops).
const chaosDelay = 200 * time.Microsecond

// ChaosBaseline is the serializable soak outcome (BENCH_chaos.json).
type ChaosBaseline struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"goVersion"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	N          int    `json:"n"`
	Rounds     int    `json:"rounds"`
	Note       string `json:"note"`

	WallS      float64 `json:"wallS"`
	Iterations int     `json:"iterations"`

	// CrashesScheduled counts injected kills; Restarts the controlled
	// re-executions the coordinator ordered in response (a kill landing
	// in a run's final teardown instants may not need one).
	CrashesScheduled int `json:"crashesScheduled"`
	Restarts         int `json:"restarts"`
	// Partitions counts injected windows; CoordPartitions the subset
	// severing coordinator capture streams.
	Partitions      int `json:"partitions"`
	CoordPartitions int `json:"coordPartitions"`
	MaxEpoch        int `json:"maxEpoch"` // deepest re-execution any iteration needed

	// LostCaptureEvents is the shortfall between fault-free and captured
	// app-process event counts, summed over all iterations. Zero or the
	// soak failed.
	LostCaptureEvents  int `json:"lostCaptureEvents"`
	InvariantsChecked  int `json:"invariantsChecked"`
	InvariantsViolated int `json:"invariantsViolated"`

	Verdict string `json:"verdict"`
}

// chaosTimeouts keeps recovery snappy at soak scale without making the
// race window artificial: real RTO-driven retransmission, partition
// probing at 25ms, and a coordinator redial deadline that outlasts any
// scheduled window by orders of magnitude.
func chaosTimeouts() node.Timeouts {
	return node.Timeouts{
		RTO: 5 * time.Millisecond, IdleTimeout: 25 * time.Millisecond,
		BackoffMin: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		CoordDeadline: 15 * time.Second,
	}
}

// chaosSchedule derives iteration it's crash and partition schedule
// from the soak seed: three kills in the run's first ~16ms and one
// partition window, alternating a mesh split (one node cut off from
// the rest) with a coordinator-stream sever.
func chaosSchedule(rng *rand.Rand, it, n int) ([]node.Crash, []node.Partition) {
	crashes := make([]node.Crash, 3)
	for i := range crashes {
		crashes[i] = node.Crash{
			At:   4*time.Millisecond + time.Duration(rng.Int63n(int64(12*time.Millisecond))),
			Node: rng.Intn(n),
			Down: time.Duration(rng.Int63n(int64(4 * time.Millisecond))),
		}
	}
	p := node.Partition{
		Start: 6*time.Millisecond + time.Duration(rng.Int63n(int64(8*time.Millisecond))),
		Dur:   8 * time.Millisecond,
		A:     []int{rng.Intn(n)},
	}
	if it%2 == 1 {
		// Coordinator-stream sever: B == A makes the mesh clause vacuous,
		// so only the capture stream is cut (the harder recovery path —
		// buffered frames must ride the session-resume replay).
		p.B = p.A
		p.Coord = true
	}
	return crashes, []node.Partition{p}
}

// chaosIteration runs one seeded chaotic cluster and verifies it: the
// run completes, the capture carries the fault-free event counts, and
// the scapegoat-chain and response-window invariants hold.
func chaosIteration(rng *rand.Rand, it int, o ChaosOptions, b *ChaosBaseline) error {
	crashes, parts := chaosSchedule(rng, it, o.N)
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	res, err := node.RunCluster(node.ClusterConfig{
		N: o.N, Rounds: chaosRounds, Think: 2 * time.Millisecond, CS: 500 * time.Microsecond,
		Seed:     o.Seed + int64(it),
		Faults:   node.Faults{Drop: 0.05, Delay: chaosDelay, Seed: o.Seed + int64(it), Partitions: parts},
		Crashes:  crashes,
		Timeouts: chaosTimeouts(),
		Batching: node.Batching{},
		Journal:  j, Reg: reg,
		WaitTimeout: time.Minute,
	})
	if err != nil {
		return fmt.Errorf("iteration %d: %w", it, err)
	}

	b.CrashesScheduled += len(crashes)
	b.Restarts += res.Restarts
	b.Partitions += len(parts)
	for _, p := range parts {
		if p.Coord {
			b.CoordPartitions++
		}
	}
	if int(res.Epoch) > b.MaxEpoch {
		b.MaxEpoch = int(res.Epoch)
	}

	// Zero lost capture: the final epoch must carry exactly what a
	// fault-free run would — app traces are deterministic (init plus
	// five ops per round), and every node reports every round.
	wantApp := 1 + 5*chaosRounds
	for p := 0; p < o.N; p++ {
		if got := res.Deposet.Len(p); got != wantApp {
			b.LostCaptureEvents += wantApp - got
		}
	}
	for i, s := range res.Stats {
		if s.Requests != chaosRounds {
			return fmt.Errorf("iteration %d: node %d reports %d/%d requests", it, i, s.Requests, chaosRounds)
		}
	}
	if res.Candidates != o.N*chaosRounds {
		return fmt.Errorf("iteration %d: %d candidates, want %d", it, res.Candidates, o.N*chaosRounds)
	}

	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
		2*chaosDelay.Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	b.InvariantsChecked += len(rep.Checked)
	b.InvariantsViolated += len(rep.Violations)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("iteration %d: %w", it, err)
	}
	return nil
}

// MeasureChaos runs the soak until o.Duration has elapsed and the
// crash/partition minimums are met. Any lost capture or invariant
// violation fails the whole soak.
func MeasureChaos(o ChaosOptions) (*ChaosBaseline, error) {
	o = o.withDefaults()
	b := &ChaosBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.Seed,
		N:          o.N,
		Rounds:     chaosRounds,
		Note: "seeded chaos soak over in-process loopback clusters: per iteration, 3 node kills " +
			"(relaunch + rejoin + coordinator-ordered §8 controlled re-execution) and one partition " +
			"window (alternating mesh split / coordinator-stream sever), on top of 5% frame drop and " +
			"200µs injected delay; every iteration must complete with zero lost capture events (the " +
			"final epoch equals a fault-free run) and the scapegoat-chain and response-window " +
			"invariants green; wall time depends on the host",
	}
	rng := rand.New(rand.NewSource(o.Seed))
	begin := time.Now()
	for it := 0; ; it++ {
		if time.Since(begin) >= o.Duration &&
			b.Restarts >= o.MinCrashes && b.Partitions >= o.MinPartitions {
			break
		}
		if err := chaosIteration(rng, it, o, b); err != nil {
			b.Verdict = fmt.Sprintf("FAILED: %v", err)
			return b, err
		}
		b.Iterations++
	}
	b.WallS = time.Since(begin).Seconds()
	if b.LostCaptureEvents > 0 {
		b.Verdict = fmt.Sprintf("FAILED: %d capture events lost", b.LostCaptureEvents)
		return b, fmt.Errorf("chaos soak lost %d capture events", b.LostCaptureEvents)
	}
	b.Verdict = fmt.Sprintf("invariants ok: %d checked, 0 violated across %d iterations "+
		"(%d restarts from %d scheduled crashes, %d partitions of which %d coordinator-stream)",
		b.InvariantsChecked, b.Iterations, b.Restarts, b.CrashesScheduled, b.Partitions, b.CoordPartitions)
	return b, nil
}

// ChaosJSON renders a soak as the committed BENCH_chaos.json.
func ChaosJSON(o ChaosOptions) ([]byte, string, error) {
	b, err := MeasureChaos(o)
	if err != nil {
		return nil, b.Verdict, err
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, b.Verdict, err
	}
	return append(doc, '\n'), b.Verdict, nil
}
