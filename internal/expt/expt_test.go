package expt

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun smoke-tests every experiment end to end and
// checks the structural invariants of the rendered tables.
func TestAllExperimentsRun(t *testing.T) {
	tables := All(7)
	if len(tables) != 10 {
		t.Fatalf("experiments = %d, want 10", len(tables))
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
			t.Errorf("%s: missing metadata", tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Columns) {
				t.Errorf("%s: row width %d vs %d columns", tb.ID, len(r), len(tb.Columns))
			}
		}
		s := tb.String()
		if !strings.Contains(s, tb.Title) {
			t.Errorf("%s: render missing title", tb.ID)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "E3", "e7", "e9", "e10", "E10"} {
		if ByID(id, 3) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("e42", 3) != nil {
		t.Error("unknown id accepted")
	}
}

func col(tb *Table, name string) int {
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// TestE1Agreement: SGSD must agree with brute-force SAT in every row.
func TestE1Agreement(t *testing.T) {
	tb := E1(99)
	i := col(tb, "SGSD agrees")
	for _, r := range tb.Rows {
		if r[i] != "yes" {
			t.Fatalf("reduction disagreement: %v", r)
		}
	}
}

// TestE2EdgeBound: message counts never exceed the paper's np bound.
func TestE2EdgeBound(t *testing.T) {
	tb := E2(0)
	ei, bi := col(tb, "edges"), col(tb, "np bound")
	for _, r := range tb.Rows {
		edges, _ := strconv.Atoi(r[ei])
		bound, _ := strconv.Atoi(r[bi])
		if edges > bound {
			t.Fatalf("edges %d exceed np bound %d: %v", edges, bound, r)
		}
	}
}

// TestE4Bounds: every measured max response respects 2T+Emax, and no
// violation note was emitted.
func TestE4Bounds(t *testing.T) {
	tb := E4(99)
	mi, bi := col(tb, "max resp"), col(tb, "2T+Emax")
	for _, r := range tb.Rows {
		m, _ := strconv.Atoi(r[mi])
		b, _ := strconv.Atoi(r[bi])
		if m > b {
			t.Fatalf("max response %d exceeds bound %d: %v", m, b, r)
		}
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "EXCEEDS") {
			t.Fatalf("bound violation noted: %s", n)
		}
	}
}

// TestE6AntiTokenWins: on every n, the anti-token has the lowest
// messages-per-entry of the three protocols.
func TestE6AntiTokenWins(t *testing.T) {
	tb := E6(99)
	ni, pi, mi := col(tb, "n"), col(tb, "protocol"), col(tb, "msgs/entry")
	best := map[string]struct {
		proto string
		v     float64
	}{}
	for _, r := range tb.Rows {
		v, _ := strconv.ParseFloat(r[mi], 64)
		if cur, ok := best[r[ni]]; !ok || v < cur.v {
			best[r[ni]] = struct {
				proto string
				v     float64
			}{r[pi], v}
		}
	}
	for n, b := range best {
		if b.proto != "anti-token" {
			t.Fatalf("n=%s: cheapest protocol is %s", n, b.proto)
		}
	}
}

// TestE7Story: the Figure 4 table must tell the paper's story.
func TestE7Story(t *testing.T) {
	tb := E7()
	b1, b2 := col(tb, "bug 1 possible"), col(tb, "bug 2 possible")
	want := map[string][2]bool{ // bug1, bug2 possible?
		"C1": {true, true},
		"C2": {false, true},
		"C3": {false, false},
		"C4": {false, false},
	}
	for _, r := range tb.Rows {
		w, ok := want[r[0]]
		if !ok {
			t.Fatalf("unexpected computation %q", r[0])
		}
		if (strings.HasPrefix(r[b1], "yes")) != w[0] || (strings.HasPrefix(r[b2], "yes")) != w[1] {
			t.Fatalf("%s: got bug1=%q bug2=%q, want %v", r[0], r[b1], r[b2], w)
		}
	}
}

// TestE8AllVerified: every controlled instance re-verifies.
func TestE8AllVerified(t *testing.T) {
	tb := E8(99)
	vi := col(tb, "verified")
	for _, r := range tb.Rows {
		parts := strings.Split(r[vi], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("verification incomplete: %v", r)
		}
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "unexpected failures") {
			t.Fatalf("failures noted: %s", n)
		}
	}
}

// TestE9Tradeoff: latest-first never uses more edges than earliest-first
// on the same workload, and earliest-first never retains fewer cuts.
func TestE9Tradeoff(t *testing.T) {
	tb := E9(0)
	oi, ei, ci := col(tb, "ordering"), col(tb, "edges"), col(tb, "consistent cuts")
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		early, late := tb.Rows[i], tb.Rows[i+1]
		if early[oi] != "earliest-first" || late[oi] != "latest-first" {
			t.Fatalf("unexpected row order at %d", i)
		}
		ee, _ := strconv.Atoi(early[ei])
		le, _ := strconv.Atoi(late[ei])
		ec, _ := strconv.Atoi(early[ci])
		lc, _ := strconv.Atoi(late[ci])
		if le > ee {
			t.Errorf("row %d: latest-first used more edges (%d > %d)", i, le, ee)
		}
		if ec < lc {
			t.Errorf("row %d: earliest-first retained fewer cuts (%d < %d)", i, ec, lc)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Columns: []string{"a", "bb"}}
	tb.Row(1, 2.5)
	tb.Row("x", "y")
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"X — t", "a", "bb", "2.5", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
