package expt

import (
	"fmt"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/replay"
	"predctl/internal/scenario"
)

// E7 reproduces Figure 4 / §7: the active-debugging walkthrough on the
// replicated-server system — computations C1 through C4 with bug 1
// ("all servers unavailable") and bug 2 ("e and f at the same time").
func E7() *Table {
	t := &Table{
		ID:    "E7",
		Title: "active debugging walkthrough (Figure 4, §7)",
		Claim: "controlling C1 yields C2 (bug 1 gone); 'e before f' yields C3/C4; eliminating bug 2 eliminates bug 1",
		Columns: []string{
			"computation", "derivation", "ctl msgs", "bug 1 possible", "bug 2 possible",
		},
	}
	fg, err := scenario.New()
	if err != nil {
		panic(err)
	}
	d := fg.C1
	h := func(cj interface {
		Holds(*deposet.Deposet, int, int) bool
	}, dd *deposet.Deposet) detect.HoldsFn {
		return func(p, k int) bool { return cj.Holds(dd, p, k) }
	}
	possible := func(dd *deposet.Deposet, fn detect.HoldsFn) string {
		if cut, ok := detect.PossiblyTruth(dd, fn); ok {
			return fmt.Sprintf("yes (%v)", cut)
		}
		return "no"
	}

	t.Row("C1", "observed trace", 0,
		possible(d, h(fg.Bug1On(nil), d)), possible(d, h(fg.Bug2On(nil), d)))

	res1, err := offline.Control(d, fg.Avail, offline.Options{})
	if err != nil {
		panic(err)
	}
	c2, err := replay.Run(d, res1.Relation, replay.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	t.Row("C2", "C1 + control(∨ avail)", len(res1.Relation),
		possible(c2.Trace.D, h(fg.Bug1On(c2.Underlying), c2.Trace.D)),
		possible(c2.Trace.D, h(fg.Bug2On(c2.Underlying), c2.Trace.D)))

	res3, err := offline.Control(c2.Trace.D, fg.EBeforeFMapped(c2.Underlying), offline.Options{})
	if err != nil {
		panic(err)
	}
	c3, err := replay.Run(c2.Trace.D, res3.Relation, replay.Config{Seed: 2})
	if err != nil {
		panic(err)
	}
	composed := make([][]int, 3)
	for p := range composed {
		for _, k := range c3.Underlying[p] {
			composed[p] = append(composed[p], c2.Underlying[p][k])
		}
	}
	t.Row("C3", "C2 + control(e before f)", len(res3.Relation),
		possible(c3.Trace.D, h(fg.Bug1On(composed), c3.Trace.D)),
		possible(c3.Trace.D, h(fg.Bug2On(composed), c3.Trace.D)))

	res4, err := offline.Control(d, fg.EBeforeF, offline.Options{})
	if err != nil {
		panic(err)
	}
	c4, err := replay.Run(d, res4.Relation, replay.Config{Seed: 3})
	if err != nil {
		panic(err)
	}
	t.Row("C4", "C1 + control(e before f)", len(res4.Relation),
		possible(c4.Trace.D, h(fg.Bug1On(c4.Underlying), c4.Trace.D)),
		possible(c4.Trace.D, h(fg.Bug2On(c4.Underlying), c4.Trace.D)))

	x, err := control.Extend(d, res4.Relation)
	if err != nil {
		panic(err)
	}
	violations := detect.AllViolations(d, fg.Avail.Expr())
	stillConsistent := 0
	for _, v := range violations {
		if x.Consistent(v) {
			stillConsistent++
		}
	}
	t.Note("C1's violating cuts G=%v, H=%v; consistent under C4's control: %d of %d",
		violations[0], violations[1], stillConsistent, len(violations))
	t.Note("bug 2 is the root cause: its fix alone removes bug 1 (paper's conclusion).")
	return t
}
