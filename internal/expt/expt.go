// Package expt is the experiment harness: one function per evaluation
// artifact of the paper (figures, complexity claims, and the §6/§7
// analyses), each regenerating the corresponding result as a text table.
// cmd/pcbench drives it; EXPERIMENTS.md records paper-vs-measured.
package expt

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Row appends a row of stringified cells.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timeIt measures fn, repeating short runs for stability.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	if d > 10*time.Millisecond {
		return d
	}
	// Too fast to trust a single run: repeat.
	reps := 1 + int(10*time.Millisecond/(d+1))
	start = time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

// All runs every experiment.
func All(seed int64) []*Table {
	return []*Table{
		E1(seed), E2(seed), E3(seed), E4(seed),
		E5(seed), E6(seed), E7(), E8(seed), E9(seed),
		E10(seed),
	}
}

// ByID returns the experiment with the given id (e1..e10), or nil.
func ByID(id string, seed int64) *Table {
	switch strings.ToLower(id) {
	case "e1":
		return E1(seed)
	case "e2":
		return E2(seed)
	case "e3":
		return E3(seed)
	case "e4":
		return E4(seed)
	case "e5":
		return E5(seed)
	case "e6":
		return E6(seed)
	case "e7":
		return E7()
	case "e8":
		return E8(seed)
	case "e9":
		return E9(seed)
	case "e10":
		return E10(seed)
	}
	return nil
}
