package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"

	"predctl"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/obs"
	"predctl/internal/offline"
	"predctl/internal/predicate"
)

// E10 measures the worker-pool parallel engine introduced on top of the
// paper's algorithms: sharded vector-clock construction, sharded
// Possibly/Definitely scans, and the batch layer that runs many traces
// concurrently (the shape of the E1/E2 sweeps). It is not a paper
// artifact — the paper's machines were single-processor — but the
// ROADMAP's "as fast as the hardware allows" goal needs a recorded
// trajectory; cmd/pcbench -baseline serializes the same measurements to
// BENCH_baseline.json.

// ParWorkers is the worker grid the parallel-engine measurements sweep.
var ParWorkers = []int{1, 2, 4}

// ParMeasurement is one workload of the parallel-engine sweep: wall
// time per worker count, with Speedup4 = time(1w)/time(4w).
type ParMeasurement struct {
	Name     string           `json:"name"`
	Procs    int              `json:"procs"`
	States   int              `json:"states"`
	Traces   int              `json:"traces,omitempty"` // batch workloads only
	NsPerOp  map[string]int64 `json:"nsPerOp"`          // worker count → ns
	Speedup4 float64          `json:"speedup4"`
}

// PhaseStats is the serialized form of one obs span: where the sweep's
// wall time and heap allocations went, per pass (clock build, detect
// scan, chain search, batch fan-out).
type PhaseStats struct {
	Calls  int64 `json:"calls"`
	WallNs int64 `json:"wallNs"`
	Allocs int64 `json:"allocs"`
	Bytes  int64 `json:"allocBytes"`
}

// Baseline is the serializable parallel-engine performance baseline.
type Baseline struct {
	Schema     int                   `json:"schema"`
	GoVersion  string                `json:"goVersion"`
	NumCPU     int                   `json:"numCPU"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Seed       int64                 `json:"seed"`
	Note       string                `json:"note"`
	Results    []ParMeasurement      `json:"results"`
	Phases     map[string]PhaseStats `json:"phases"`
}

// parPhases are the span names MeasureParallel charges work to.
var parPhases = []string{
	"clock_build", "detect_possibly", "detect_definitely",
	"offline_control", "batch_detect", "batch_control",
}

// measure times fn at each worker count and packages the result.
func measure(name string, procs, states, traces int, fn func(workers int)) ParMeasurement {
	m := ParMeasurement{
		Name: name, Procs: procs, States: states, Traces: traces,
		NsPerOp: make(map[string]int64, len(ParWorkers)),
	}
	for _, w := range ParWorkers {
		m.NsPerOp[fmt.Sprint(w)] = timeIt(func() { fn(w) }).Nanoseconds()
	}
	if t4 := m.NsPerOp["4"]; t4 > 0 {
		m.Speedup4 = float64(m.NsPerOp["1"]) / float64(t4)
	}
	return m
}

// MeasureParallel runs the full parallel-engine sweep: single-trace
// sharding on large traces (the acceptance shape n=32 processes,
// p=128 false-intervals, ≈16k states) plus the batch layer over many
// mid-size traces.
func MeasureParallel(seed int64) *Baseline {
	r := rand.New(rand.NewSource(seed))
	// Every measured pass runs inside an obs span with allocation
	// tracking, so the baseline can attribute wall time and heap churn
	// per phase, not just per worker count.
	reg := obs.NewRegistry()
	reg.TrackAllocs = true
	b := &Baseline{
		Schema:     2,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Note: "wall-clock scaling tracks available cores: on a multi-core host " +
			"(≥4 CPUs) the large-trace rows reach ≥2x at 4 workers; on fewer cores " +
			"the parallel paths degrade gracefully toward 1x (numCPU above records " +
			"what this run had); the forced-cutoff rows (Cutoff: 1) deliberately " +
			"bypass the size fallback to measure the raw sharded machinery — small " +
			"traces regress there (speedup4 < 1), which is exactly what the " +
			"'(default policy)' rows guard: below DefaultParCutoff / " +
			"ParallelClockCutoff the default policy takes the sequential path and " +
			"worker count must not matter (speedup4 ≈ 1)",
	}
	force := func(w int) detect.Par { return detect.Par{Workers: w, Cutoff: 1} }

	// Single large trace, message-rich: clock construction + detection.
	bigBuilder := deposet.RandomBuilder(r, deposet.DefaultGen(32, 16000))
	big := bigBuilder.MustBuild()
	truthLow := deposet.RandomTruth(r, big, 0.05)
	truthHigh := deposet.RandomTruth(r, big, 0.6)
	b.Results = append(b.Results,
		measure("deposet-build/clocks", 32, big.NumStates(), 0, func(w int) {
			reg.Span("clock_build", func() {
				if _, err := bigBuilder.BuildParallel(w); err != nil {
					panic(err)
				}
			})
		}),
		measure("detect-possibly", 32, big.NumStates(), 0, func(w int) {
			reg.Span("detect_possibly", func() {
				detect.PossiblyTruthPar(big, func(p, k int) bool { return truthLow[p][k] }, force(w))
			})
		}),
		measure("detect-definitely", 32, big.NumStates(), 0, func(w int) {
			reg.Span("detect_definitely", func() {
				detect.DefinitelyTruthPar(big, func(p, k int) bool { return truthHigh[p][k] }, force(w))
			})
		}),
	)

	// Small-trace regression guard. The forced-cutoff rows above measure
	// the raw parallel machinery; on a small trace that machinery *loses*
	// (barrier cost exceeds the scan — the recorded regression was
	// speedup4 ≈ 0.5 for detect-possibly). These rows run the same entry
	// points under the default policy, where DefaultParCutoff /
	// ParallelClockCutoff route sub-threshold inputs to the sequential
	// path: worker count must make no difference, pinning speedup4 ≈ 1.
	smallBuilder := deposet.RandomBuilder(r, deposet.DefaultGen(8, detect.DefaultParCutoff/2))
	small := smallBuilder.MustBuild()
	smallLow := deposet.RandomTruth(r, small, 0.05)
	smallHigh := deposet.RandomTruth(r, small, 0.6)
	b.Results = append(b.Results,
		measure("deposet-build-small (default policy)", 8, small.NumStates(), 0, func(int) {
			if _, err := smallBuilder.Build(); err != nil {
				panic(err)
			}
		}),
		measure("detect-possibly-small (default policy)", 8, small.NumStates(), 0, func(w int) {
			detect.PossiblyTruthPar(small, func(p, k int) bool { return smallLow[p][k] }, detect.Par{Workers: w})
		}),
		measure("detect-definitely-small (default policy)", 8, small.NumStates(), 0, func(w int) {
			detect.DefinitelyTruthPar(small, func(p, k int) bool { return smallHigh[p][k] }, detect.Par{Workers: w})
		}),
	)

	// Off-line control on the acceptance workload n=32, p=128.
	cd, cdj := intervalWorkload(32, 128)
	b.Results = append(b.Results,
		measure("offline-control n=32 p=128", 32, cd.NumStates(), 0, func(w int) {
			reg.Span("offline_control", func() {
				if _, err := offline.Control(cd, cdj, offline.Options{Par: force(w)}); err != nil {
					panic(err)
				}
			})
		}))

	// Batch layer of the predctl facade: many mid-size traces analyzed
	// concurrently (the shape of the E1/E2 sweeps).
	const traces = 16
	ds := make([]*predctl.Computation, traces)
	qs := make([]*predctl.Conjunction, traces)
	djs := make([]*predicate.Disjunction, traces)
	states := 0
	for i := range ds {
		d := deposet.Random(r, deposet.DefaultGen(8, 2400))
		ds[i] = d
		cj := predctl.NewConjunction(d.NumProcs())
		qt := deposet.RandomTruth(r, d, 0.1)
		for p := 0; p < d.NumProcs(); p++ {
			tp := qt[p]
			cj.Add(p, "q", func(_ *predctl.Computation, k int) bool { return tp[k] })
		}
		qs[i] = cj
		djs[i] = predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.85))
		states += d.NumStates()
	}
	b.Results = append(b.Results,
		measure("batch-detect", 8, states, traces, func(w int) {
			reg.Span("batch_detect", func() {
				if _, err := predctl.DetectBatch(ds, qs, w); err != nil {
					panic(err)
				}
			})
		}),
		measure("batch-control", 8, states, traces, func(w int) {
			reg.Span("batch_control", func() {
				if _, err := predctl.ControlBatch(ds, djs, w); err != nil {
					panic(err)
				}
			})
		}),
	)
	b.Phases = make(map[string]PhaseStats, len(parPhases))
	for _, name := range parPhases {
		s := reg.SpanStats(name)
		b.Phases[name] = PhaseStats{
			Calls: s.Count(), WallNs: s.Wall().Nanoseconds(),
			Allocs: s.Allocs(), Bytes: s.Bytes(),
		}
	}
	return b
}

// BaselineJSON renders the sweep as the committed BENCH_baseline.json.
func BaselineJSON(seed int64) ([]byte, error) {
	doc, err := json.MarshalIndent(MeasureParallel(seed), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// E10 renders the same sweep as a pcbench table.
func E10(seed int64) *Table {
	t := &Table{
		ID:    "E10",
		Title: "parallel detection/control engine scaling",
		Claim: "(beyond the paper) worker-sharded hot paths; cf. Garg 2020, Chauhan et al. 2013 in PAPERS.md",
		Columns: []string{
			"workload", "procs", "states", "traces", "1w", "2w", "4w", "speedup@4",
		},
	}
	base := MeasureParallel(seed)
	for _, m := range base.Results {
		traces := "-"
		if m.Traces > 0 {
			traces = fmt.Sprint(m.Traces)
		}
		t.Row(m.Name, m.Procs, m.States, traces,
			nsString(m.NsPerOp["1"]), nsString(m.NsPerOp["2"]), nsString(m.NsPerOp["4"]),
			fmt.Sprintf("%.2fx", m.Speedup4))
	}
	SliceRows(t, seed)
	t.Note("host: %d CPU(s), GOMAXPROCS=%d, %s — speedups are bounded by available cores",
		base.NumCPU, base.GOMAXPROCS, base.GoVersion)
	t.Note("sequential cross-validation: every parallel path is property-tested")
	t.Note("against the sequential implementation (internal/detect, internal/offline)")
	return t
}

func nsString(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
