package expt

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"predctl/internal/node"
	"predctl/internal/obs"
)

// live.go measures what online possibly(¬B) detection costs and how
// fast it fires. Two experiments share BENCH_live.json:
//
//  1. Ingest overhead: the same violation-free loopback cluster run
//     dark (no checker) and lit (the coordinator feeds every candidate
//     through the streaming GW checker, OnDetect=note); min walls
//     compared. The checker rides the existing candidate ingest path,
//     so this bounds what always-on live detection adds to a run.
//  2. Detection latency: planted-violation runs (one rogue node) where
//     the confirmed detection record's witness interval is joined back
//     to the node-side monitor.candidate journal event that reported
//     it — the candidate-send→confirmed-fire latency of the whole
//     pipeline (flush, TCP, GW trigger, prefix assembly, offline
//     confirmation).
//
// cmd/pcbench -live serializes it to BENCH_live.json.

// LiveOptions scales the live-detection measurement.
type LiveOptions struct {
	Seed   int64
	N      int // overhead cluster size (default 32)
	Rounds int // critical sections per node (default 16)
	Reps   int // repetitions per mode; min wall compared (default 16)
	// LatencyRuns is the number of planted-violation runs joined for
	// the latency distribution (default 12).
	LatencyRuns int
}

// LiveMeasurement aggregates one mode's repetitions.
type LiveMeasurement struct {
	Mode string `json:"mode"` // "dark" | "lit"
	WallStats
	// Candidates is the last rep's ingested-candidate count — the
	// stream volume the lit mode's checker had to absorb.
	Candidates int `json:"candidates"`
}

// LiveLatency is the candidate-send→confirmed-fire distribution over
// the planted-violation runs.
type LiveLatency struct {
	Runs     int `json:"runs"`
	Detected int `json:"detected"` // runs with a mid-run confirmed detection
	// SamplesMs are the joined per-run latencies (detection AtNs minus
	// the witness candidate's journal timestamp), in milliseconds.
	SamplesMs []float64 `json:"samplesMs"`
	MedianMs  float64   `json:"medianMs"`
	P95Ms     float64   `json:"p95Ms"`
	MeanMs    float64   `json:"meanMs"`
}

// LiveBaseline is the serializable record (BENCH_live.json).
type LiveBaseline struct {
	Schema      int    `json:"schema"`
	GoVersion   string `json:"goVersion"`
	NumCPU      int    `json:"numCPU"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Seed        int64  `json:"seed"`
	N           int    `json:"n"`
	Rounds      int    `json:"rounds"`
	Reps        int    `json:"reps"`
	LatencyRuns int    `json:"latencyRuns"`
	Note        string `json:"note"`

	Dark LiveMeasurement `json:"dark"`
	Lit  LiveMeasurement `json:"lit"`
	// OverheadPct compares the minimum walls: 100 × (lit/dark − 1). The
	// min is each mode's least-interference observation — on a shared
	// host the medians drift with background load while the mins track
	// the intrinsic cost.
	OverheadPct float64 `json:"overheadPct"`

	Latency LiveLatency `json:"latency"`
}

// runLiveOnce executes one measured overhead run. With lit set, the
// coordinator runs the streaming checker over every candidate; the
// workload is violation-free either way, so the checker's work is pure
// overhead.
func runLiveOnce(opts LiveOptions, lit bool) (wallMs float64, candidates int, err error) {
	cfg := node.ClusterConfig{
		N: opts.N, Rounds: opts.Rounds, Think: 500 * time.Microsecond, CS: 200 * time.Microsecond,
		Seed: opts.Seed, Faults: node.Faults{Delay: clusterDelay, Seed: opts.Seed},
		Batching:    node.Batching{Interval: clusterFlush, SnapshotEvery: -1},
		WaitTimeout: 5 * time.Minute,
	}
	if lit {
		cfg.Live = node.LiveConfig{
			Predicate: node.CSMutexPredicate(opts.N),
			OnDetect:  node.OnDetectNote,
		}
	}
	start := time.Now()
	res, err := node.RunCluster(cfg)
	wall := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	if lit && res.LiveFired {
		// The (n−1)-mutex workload cannot put all n processes in the CS
		// at once; a fired verdict here is a checker bug, not noise.
		return 0, 0, fmt.Errorf("live checker fired on a violation-free run")
	}
	return float64(wall.Nanoseconds()) / 1e6, res.Candidates, nil
}

// measureLiveLatency runs planted-violation clusters and joins each
// confirmed detection back to the witness candidate's node-side journal
// event (same Start anchor, so the timestamps subtract directly).
func measureLiveLatency(opts LiveOptions) (LiveLatency, error) {
	lat := LiveLatency{Runs: opts.LatencyRuns}
	for run := 0; run < opts.LatencyRuns; run++ {
		j := obs.NewJournal(0)
		res, err := node.RunCluster(node.ClusterConfig{
			N: 4, Rounds: 8, Think: time.Millisecond, CS: time.Millisecond,
			Seed: opts.Seed + int64(run)*7919, Scapegoat: 0, Rogues: []int{1},
			Batching: node.Batching{Interval: clusterFlush, SnapshotEvery: -1},
			Journal:  j, Live: node.LiveConfig{Predicate: node.CSMutexPredicate(4), OnDetect: node.OnDetectNote},
			WaitTimeout: 5 * time.Minute,
		})
		if err != nil {
			return lat, fmt.Errorf("latency run %d: %w", run, err)
		}
		for _, det := range res.Detections {
			if det.Final {
				continue
			}
			lat.Detected++
			// The witness candidate twin: the node journaled
			// monitor.candidate (B = HiIdx) right after sending the
			// report that completed the checker's witness.
			for _, ev := range j.Events() {
				if ev.Name == obs.EvCandidate && ev.Proc == det.Node && ev.B == det.WitnessHiIdx {
					lat.SamplesMs = append(lat.SamplesMs, float64(det.AtNs-ev.At)/1e6)
					break
				}
			}
			break // one sample per run: the first mid-run confirmation
		}
	}
	if len(lat.SamplesMs) > 0 {
		sorted := append([]float64(nil), lat.SamplesMs...)
		sort.Float64s(sorted)
		lat.MedianMs = sorted[len(sorted)/2]
		lat.P95Ms = sorted[(len(sorted)*95)/100]
		for _, s := range sorted {
			lat.MeanMs += s / float64(len(sorted))
		}
	}
	return lat, nil
}

// MeasureLive runs the overhead modes interleaved (host drift hits both
// equally) and the latency runs, and assembles the baseline.
func MeasureLive(opts LiveOptions) (*LiveBaseline, error) {
	if opts.N == 0 {
		opts.N = 32
	}
	if opts.Rounds == 0 {
		opts.Rounds = 16
	}
	if opts.Reps == 0 {
		opts.Reps = 16
	}
	if opts.LatencyRuns == 0 {
		opts.LatencyRuns = 12
	}
	b := &LiveBaseline{
		Schema:      1,
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        opts.Seed,
		N:           opts.N,
		Rounds:      opts.Rounds,
		Reps:        opts.Reps,
		LatencyRuns: opts.LatencyRuns,
		Note: "identical violation-free loopback clusters (200µs injected mesh delay, batched capture), " +
			"checker dark vs lit (every candidate through the streaming GW checker, OnDetect=note); " +
			"modes interleaved per rep, min walls compared — a negative overhead means the checker " +
			"cost is below run-to-run host noise. Latency: 4-node planted-rogue runs; each sample is " +
			"the confirmed detection's AtNs minus the witness candidate's node-side journal timestamp " +
			"(send→flush→TCP→GW trigger→prefix confirm). Wall times depend on the host",
		Dark: LiveMeasurement{Mode: "dark"},
		Lit:  LiveMeasurement{Mode: "lit"},
	}
	measure := func(m *LiveMeasurement, lit bool) (float64, error) {
		wall, cands, err := runLiveOnce(opts, lit)
		if err != nil {
			return 0, fmt.Errorf("live bench %s: %w", m.Mode, err)
		}
		m.Candidates = cands
		return wall, nil
	}
	err := interleaveAB(opts.Reps,
		func() (float64, error) { return measure(&b.Dark, false) },
		func() (float64, error) { return measure(&b.Lit, true) },
		&b.Dark.WallStats, &b.Lit.WallStats)
	if err != nil {
		return nil, err
	}
	b.OverheadPct = pctOverhead(b.Lit.WallMsMin, b.Dark.WallMsMin)
	if b.Latency, err = measureLiveLatency(opts); err != nil {
		return nil, err
	}
	return b, nil
}

// LiveJSON renders the measurement as the committed BENCH_live.json.
func LiveJSON(opts LiveOptions) ([]byte, error) {
	b, err := MeasureLive(opts)
	if err != nil {
		return nil, err
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
