package expt

import (
	"errors"
	"fmt"
	"math/rand"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/predicate"
)

// E8 exercises the extension the paper's §8 announces as follow-up work:
// predicate control for locally independent predicates — here CNFs of
// disjunctive clauses, e.g. several simultaneous pairwise mutual
// exclusions, which no single disjunction can express. Every synthesized
// relation is re-verified clause by clause on the controlled deposet.
func E8(seed int64) *Table {
	t := &Table{
		ID:    "E8",
		Title: "extension: locally independent predicates (CNF of disjunctions, §8)",
		Claim: "control generalizes past single disjunctions under mutual separation (future work in the paper)",
		Columns: []string{
			"n", "clauses", "instances", "controlled", "infeasible", "not independent", "avg edges", "verified",
		},
	}
	r := rand.New(rand.NewSource(seed))
	for _, n := range []int{3, 4, 6} {
		for _, m := range []int{2, 4} {
			var ok, infeasible, dep, edges, verified, failures int
			const instances = 30
			for i := 0; i < instances; i++ {
				d := deposet.Random(r, deposet.DefaultGen(n, 8*n))
				truth := deposet.RandomTruth(r, d, 0.25)
				var clauses []*predicate.Disjunction
				for c := 0; c < m; c++ {
					a := r.Intn(n)
					b := r.Intn(n - 1)
					if b >= a {
						b++
					}
					dj := predicate.NewDisjunction(n)
					ta, tb := truth[a], truth[b]
					dj.Add(a, "¬cs", func(_ *deposet.Deposet, k int) bool { return !ta[k] })
					dj.Add(b, "¬cs", func(_ *deposet.Deposet, k int) bool { return !tb[k] })
					clauses = append(clauses, dj)
				}
				res, err := offline.ControlCNF(d, clauses, offline.Options{})
				switch {
				case errors.Is(err, offline.ErrInfeasible):
					infeasible++
					continue
				case errors.Is(err, offline.ErrNotIndependent):
					dep++
					continue
				case err != nil:
					failures++
					continue
				}
				ok++
				edges += len(res.Relation)
				x, xerr := control.Extend(d, res.Relation)
				if xerr != nil {
					failures++
					continue
				}
				good := true
				for _, c := range clauses {
					c := c
					if _, bad := detect.PossiblyTruth(x, func(p, k int) bool {
						return !c.Holds(d, p, k)
					}); bad {
						good = false
					}
				}
				if good {
					verified++
				}
			}
			avg := 0.0
			if ok > 0 {
				avg = float64(edges) / float64(ok)
			}
			t.Row(n, m, instances, ok, infeasible, dep,
				fmt.Sprintf("%.1f", avg), fmt.Sprintf("%d/%d", verified, ok))
			if failures > 0 {
				t.Note("n=%d m=%d: %d unexpected failures", n, m, failures)
			}
		}
	}
	t.Note("\"verified\" re-checks every clause on the controlled deposet with the")
	t.Note("detector — the controller and detector validate each other.")
	return t
}
