package expt

import (
	"fmt"
	"time"

	"predctl/internal/detect"
	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/predicate"
)

// relay.go is the hierarchical-ingest smoke: a 2-level aggregation tree
// at n = 64 with a relay killed mid-run, gated on full capture, the
// paper invariants, the root's connection cut, and live-verdict
// agreement with offline detection — plus a small planted-rogue tree
// run so the firing path through relay re-batching is exercised too.
// `make bench-relay` and the relay-smoke CI job run it via
// cmd/pcbench -relay-smoke.

// relaySmokeN is the clean run's cluster size; large enough that the
// tree actually aggregates (relaySmokeRelays children per relay).
const (
	relaySmokeN      = 64
	relaySmokeRelays = 4
	relaySmokeRounds = 2
)

// relaySmokeClean runs the violation-free tree cluster with one relay
// killed mid-run and verifies the kill healed like a stream sever:
// no controlled re-execution, zero lost capture, invariants green, the
// root serving O(relays) connections, and the live checker silent in
// agreement with the offline detector.
func relaySmokeClean(seed int64) error {
	const n, relays = relaySmokeN, relaySmokeRelays
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()
	res, err := node.RunCluster(node.ClusterConfig{
		N: n, Rounds: relaySmokeRounds, Think: 500 * time.Microsecond, CS: 200 * time.Microsecond,
		Seed: seed, Timeouts: chaosTimeouts(),
		Faults: node.Faults{Delay: chaosDelay, Seed: seed},
		Relays: relays,
		RelayCrashes: []node.Crash{
			{At: 8 * time.Millisecond, Node: 1, Down: 5 * time.Millisecond},
		},
		Live:    node.LiveConfig{Predicate: node.CSMutexPredicate(n), OnDetect: node.OnDetectNote},
		Journal: j, Reg: reg,
		WaitTimeout: 2 * time.Minute,
	})
	if err != nil {
		return fmt.Errorf("clean tree run: %w", err)
	}
	if res.Restarts != 0 {
		return fmt.Errorf("clean tree run: relay kill triggered %d restarts, want 0 (must heal like a stream sever)", res.Restarts)
	}
	// One handshake per relay plus one redial for the killed relay's
	// relaunch — and never the flat topology's O(n).
	if res.RootConns < relays || res.RootConns > relays+1 {
		return fmt.Errorf("clean tree run: root accepted %d stream connections, want %d–%d (one per relay + the relaunch)",
			res.RootConns, relays, relays+1)
	}
	wantApp := 1 + 5*relaySmokeRounds
	for p := 0; p < n; p++ {
		if got := res.Deposet.Len(p); got != wantApp {
			return fmt.Errorf("clean tree run: app %d captured %d/%d events", p, got, wantApp)
		}
	}
	_, offline := detect.PossiblyGeneral(res.Deposet, predicate.Not(node.CSMutexPredicate(n)))
	if res.LiveFired != offline {
		return fmt.Errorf("clean tree run: live verdict %v, offline %v", res.LiveFired, offline)
	}
	if res.LiveFired {
		return fmt.Errorf("clean tree run: checker fired on a violation-free workload")
	}
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
		2*chaosDelay.Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("clean tree run: %w", err)
	}
	return nil
}

// relaySmokeRogue plants rogues in a small tree cluster: the candidates
// that complete the checker's witness arrive re-batched through relays,
// and the mid-run verdict must still match offline detection (and fire).
// ¬B is "all n in the CS at once", so n−1 rogues plus the legitimate
// holder make the violation reachable.
func relaySmokeRogue(seed int64) error {
	const n = 3
	res, err := node.RunCluster(node.ClusterConfig{
		N: n, Rounds: 4, Think: time.Millisecond, CS: time.Millisecond,
		Seed: seed, Rogues: []int{1, 2}, Timeouts: chaosTimeouts(),
		Relays:      2,
		Live:        node.LiveConfig{Predicate: node.CSMutexPredicate(n), OnDetect: node.OnDetectNote},
		WaitTimeout: 2 * time.Minute,
	})
	if err != nil {
		return fmt.Errorf("rogue tree run: %w", err)
	}
	_, offline := detect.PossiblyGeneral(res.Deposet, predicate.Not(node.CSMutexPredicate(n)))
	if res.LiveFired != offline {
		return fmt.Errorf("rogue tree run: live verdict %v, offline %v", res.LiveFired, offline)
	}
	if !offline {
		return fmt.Errorf("rogue tree run: planted violation not detected offline")
	}
	return nil
}

// RelaySmoke is the CI gate for hierarchical ingest. It returns a
// one-line verdict on success.
func RelaySmoke(seed int64) (string, error) {
	if err := relaySmokeClean(seed); err != nil {
		return "", err
	}
	if err := relaySmokeRogue(seed); err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"ok: n=%d through %d relays with a mid-run relay kill — full capture, no restart, root conns O(relays), live verdict matches offline (clean and rogue)",
		relaySmokeN, relaySmokeRelays), nil
}
