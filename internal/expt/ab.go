package expt

import "sort"

// ab.go is the shared dark-vs-lit harness. Three benches in this
// package compare the same workload run in a baseline and an
// instrumented mode — live.go (checker dark vs lit), obs.go (snapshots
// off vs on+http), cluster.go (in-RAM staging vs the disk-backed trace
// store) — and they all want the same mechanics: modes interleaved per
// rep so host drift hits both equally, walls accumulated per mode, and
// min/median/mean summarized at the end. The helpers here hold that
// logic once; each bench keeps only its own workload and extra
// counters.

// WallStats accumulates one mode's wall-clock observations and
// summarizes them. Embed it in a measurement row; the JSON field names
// match the committed BENCH_*.json baselines.
type WallStats struct {
	WallMsMin    float64 `json:"wallMsMin"`
	WallMsMedian float64 `json:"wallMsMedian"`
	WallMsMean   float64 `json:"wallMsMean"`

	walls []float64
}

// observe records one repetition's wall time.
func (w *WallStats) observe(wallMs float64) { w.walls = append(w.walls, wallMs) }

// summarize fills the min/median/mean fields from the observations.
func (w *WallStats) summarize() {
	if len(w.walls) == 0 {
		return
	}
	sorted := append([]float64(nil), w.walls...)
	sort.Float64s(sorted)
	w.WallMsMin = sorted[0]
	w.WallMsMedian = sorted[len(sorted)/2]
	w.WallMsMean = 0
	for _, v := range sorted {
		w.WallMsMean += v / float64(len(sorted))
	}
}

// interleaveAB runs reps baseline/instrumented pairs, alternating the
// modes within every rep, and summarizes both stat sets. Each run
// function executes its workload once and returns the wall time it
// wants recorded; extra per-mode counters stay in the closures.
func interleaveAB(reps int, dark, lit func() (wallMs float64, err error), darkW, litW *WallStats) error {
	for rep := 0; rep < reps; rep++ {
		wall, err := dark()
		if err != nil {
			return err
		}
		darkW.observe(wall)
		if wall, err = lit(); err != nil {
			return err
		}
		litW.observe(wall)
	}
	darkW.summarize()
	litW.summarize()
	return nil
}

// pctOverhead is the harness's comparison verdict: 100 × (lit/dark − 1)
// on whichever summary statistic the bench compares (min for intrinsic
// cost, median for robustness against scheduler outliers).
func pctOverhead(lit, dark float64) float64 {
	if dark == 0 {
		return 0
	}
	return 100 * (lit/dark - 1)
}
