package vclock

// Arena stores the vector clocks of an entire computation — one clock
// per local state, across all processes — in a single contiguous []int32.
// State (p, k) occupies the n-component row starting at (off[p]+k)*n, so
// a clock lookup is offset arithmetic on one backing array instead of two
// pointer hops through [][]VC, a component probe (the happened-before
// test) is a single indexed load, and the whole table is three
// allocations regardless of the number of states. Rows of one process
// are adjacent, which is the access pattern of clock construction and of
// the per-process detection scans.
type Arena struct {
	n    int
	off  []int // off[p]: row index of state (p, 0)
	data []int32
}

// NewArena allocates an arena for a computation whose process p has
// lens[p] local states. Rows are zero-filled; callers are expected to
// write every row (clock construction does) before reading it.
func NewArena(lens []int) *Arena {
	n := len(lens)
	off := make([]int, n)
	total := 0
	for p, l := range lens {
		off[p] = total
		total += l
	}
	return &Arena{n: n, off: off, data: make([]int32, total*n)}
}

// N returns the number of components per clock (the process count).
func (a *Arena) N() int { return a.n }

// Row returns the clock of state (p, k) as a VC aliasing the arena. The
// slice is capacity-capped so an append can never bleed into the next
// row. Mutating it mutates the arena.
func (a *Arena) Row(p, k int) VC {
	base := (a.off[p] + k) * a.n
	return VC(a.data[base : base+a.n : base+a.n])
}

// Component returns Row(p, k)[q] as a single indexed load, without
// materializing the row slice — the hot path of the happened-before test.
func (a *Arena) Component(p, k, q int) int32 {
	return a.data[(a.off[p]+k)*a.n+q]
}
