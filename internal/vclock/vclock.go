// Package vclock implements vector clocks over local state indices.
//
// A vector clock V for a local state s records, for every process q, the
// largest state index j such that state (q, j) causally precedes or equals
// s. Indices are 0-based; the sentinel -1 means "no state of q precedes s".
// This convention makes the happened-before test on states an O(1)
// comparison, which the predicate-control algorithms rely on.
//
// Components are int32: state indices are bounded far below 2³¹ in
// practice, and the narrower type halves the footprint of the flat clock
// Arena that backs whole computations.
package vclock

import (
	"fmt"
	"strings"
)

// None is the component value meaning "no state of that process is known".
const None = -1

// VC is a vector clock with one component per process. A VC may own its
// storage (New) or alias one row of an Arena (Arena.Row).
type VC []int32

// New returns a vector clock of n components, all None.
func New(n int) VC {
	v := make(VC, n)
	for i := range v {
		v[i] = None
	}
	return v
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Merge sets v to the component-wise maximum of v and o.
// The two clocks must have the same length.
func (v VC) Merge(o VC) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: merge length mismatch %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// MergeLowered merges o into v with o's component q replaced by lowered —
// the "exit-event" merge of controlled computations (reaching the target
// implies q's state lowered was passed, not o[q]) — without materializing
// a modified copy of o.
func (v VC) MergeLowered(o VC, q int, lowered int32) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: merge length mismatch %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		if i == q {
			x = lowered
		}
		if x > v[i] {
			v[i] = x
		}
	}
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

// The four possible relations between two vector clocks.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Compare returns the relation of v to o in the component-wise partial
// order: Before means v < o (every component ≤, at least one <).
func (v VC) Compare(o VC) Ordering {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare length mismatch %d vs %d", len(v), len(o)))
	}
	le, ge := true, true
	for i := range v {
		switch {
		case v[i] < o[i]:
			ge = false
		case v[i] > o[i]:
			le = false
		}
	}
	switch {
	case le && ge:
		return Equal
	case le:
		return Before
	case ge:
		return After
	}
	return Concurrent
}

// Less reports whether v < o in the component-wise partial order.
func (v VC) Less(o VC) bool { return v.Compare(o) == Before }

// LessEq reports whether v ≤ o in the component-wise partial order.
func (v VC) LessEq(o VC) bool {
	c := v.Compare(o)
	return c == Before || c == Equal
}

// Concurrent reports whether neither v ≤ o nor o ≤ v.
func (v VC) ConcurrentWith(o VC) bool { return v.Compare(o) == Concurrent }

// String renders the clock as [a b c], with None shown as "-".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		if x == None {
			b.WriteByte('-')
		} else {
			fmt.Fprintf(&b, "%d", x)
		}
	}
	b.WriteByte(']')
	return b.String()
}
