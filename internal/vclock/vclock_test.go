package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	v := New(3)
	if len(v) != 3 {
		t.Fatalf("len = %d, want 3", len(v))
	}
	for i, x := range v {
		if x != None {
			t.Errorf("v[%d] = %d, want None", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := VC{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("clone shares storage: v[0] = %d", v[0])
	}
}

func TestMerge(t *testing.T) {
	v := VC{1, 5, None}
	v.Merge(VC{3, 2, 0})
	want := VC{3, 5, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("v[%d] = %d, want %d", i, v[i], want[i])
		}
	}
}

func TestMergeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	v := VC{1}
	v.Merge(VC{1, 2})
}

func TestCompareLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	VC{1}.Compare(VC{1, 2})
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{VC{0, 0}, VC{0, 0}, Equal},
		{VC{0, 1}, VC{1, 1}, Before},
		{VC{2, 1}, VC{1, 1}, After},
		{VC{0, 2}, VC{2, 0}, Concurrent},
		{VC{None, 0}, VC{0, 0}, Before},
		{VC{None}, VC{None}, Equal},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLessAndLessEq(t *testing.T) {
	a, b := VC{0, 0}, VC{1, 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less misordered")
	}
	if !a.LessEq(a) {
		t.Error("LessEq not reflexive")
	}
	if !a.LessEq(b) || b.LessEq(a) {
		t.Error("LessEq misordered")
	}
}

func TestConcurrentWith(t *testing.T) {
	a, b := VC{0, 2}, VC{2, 0}
	if !a.ConcurrentWith(b) || !b.ConcurrentWith(a) {
		t.Error("expected concurrency")
	}
	if a.ConcurrentWith(a) {
		t.Error("a concurrent with itself")
	}
}

func TestString(t *testing.T) {
	v := VC{None, 0, 12}
	if got, want := v.String(), "[- 0 12]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := Concurrent.String(), "concurrent"; got != want {
		t.Errorf("Ordering.String() = %q, want %q", got, want)
	}
	if got, want := Ordering(42).String(), "Ordering(42)"; got != want {
		t.Errorf("Ordering.String() = %q, want %q", got, want)
	}
}

func randVC(r *rand.Rand, n int) VC {
	v := New(n)
	for i := range v {
		v[i] = int32(r.Intn(5) - 1)
	}
	return v
}

// Property: Compare is antisymmetric — swapping the arguments swaps
// Before/After and preserves Equal/Concurrent.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 4), randVC(r, 4)
		x, y := a.Compare(b), b.Compare(a)
		switch x {
		case Equal:
			return y == Equal
		case Before:
			return y == After
		case After:
			return y == Before
		default:
			return y == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge computes a least upper bound — both inputs are ≤ the
// result, and the result is ≤ any other upper bound.
func TestMergeLUBProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 5), randVC(r, 5)
		m := a.Clone()
		m.Merge(b)
		if !a.LessEq(m) || !b.LessEq(m) {
			return false
		}
		// Any upper bound u of a and b dominates m.
		u := a.Clone()
		u.Merge(b)
		for i := range u {
			u[i] += int32(r.Intn(3))
		}
		return m.LessEq(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative, associative, and idempotent.
func TestMergeAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r, 4), randVC(r, 4), randVC(r, 4)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if ab.Compare(ba) != Equal {
			return false
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if abc1.Compare(abc2) != Equal {
			return false
		}

		aa := a.Clone()
		aa.Merge(a)
		return aa.Compare(a) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
