package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// clustertrace.go renders a coordinator's merged cluster journal as
// Chrome trace_event JSON with the cluster's real topology: one trace
// process (pid) per node, an "app" and a "ctl" thread row inside each,
// and a synthetic "cluster" process for run-level annotations (chaos
// injections, partition windows, epoch bumps). Where the single-run
// exporter (chrome.go) pairs flows by kernel message sequence numbers,
// nodes share no sequence space — so cross-node control messages are
// paired causally: a send's vector clock is matched to the first event
// on the target node whose clock dominates it, which is exactly the
// first journaled instant after the receive. Wall-clock nanoseconds
// (relative to the shared run start) map to trace microseconds.

// ClusterTraceOptions tunes the cluster export.
type ClusterTraceOptions struct {
	// N is the node count (apps are processes 0..N-1, controllers
	// N..2N-1). 0 infers it from the highest process index seen.
	N int
}

// vcStamp is one vector-clocked journal event on a node's controller
// row, in that node's local order.
type vcStamp struct {
	at int64
	vc []int32
}

// ClusterTrace renders the merged journal as trace_event JSON. The
// output is deterministic for a deterministic journal: events are
// ordered by timestamp (stably, preserving the merge order of ties)
// and flow ids are assigned in that order.
func ClusterTrace(j *Journal, opts ClusterTraceOptions) ([]byte, error) {
	events := append([]Event(nil), j.Events()...)
	sort.SliceStable(events, func(i, k int) bool { return events[i].At < events[k].At })

	n := opts.N
	if n == 0 {
		maxProc := 0
		for _, e := range events {
			if e.Proc > maxProc {
				maxProc = e.Proc
			}
		}
		n = maxProc/2 + 1
	}
	if n < 1 {
		return nil, fmt.Errorf("obs: cluster trace needs n ≥ 1, got %d", n)
	}
	const (
		tidApp = 0
		tidCtl = 1
	)
	clusterPid := n // run-level annotation row

	// row maps a logical process to its (pid, tid) cell; annotations
	// (Proc < 0) and out-of-range processes land on the cluster row.
	row := func(proc int) (int, int) {
		switch {
		case proc >= 0 && proc < n:
			return proc, tidApp
		case proc >= n && proc < 2*n:
			return proc - n, tidCtl
		default:
			return clusterPid, tidApp
		}
	}

	// Per-node controller stamps for causal flow matching. Along one
	// node's own event order every clock component is monotone
	// non-decreasing (ticks and observes only grow it), so the first
	// dominating event is found by binary search.
	stamps := make([][]vcStamp, n)
	for _, e := range events {
		if e.Kind == KindControl && len(e.VC) > 0 && e.Proc >= n && e.Proc < 2*n {
			node := e.Proc - n
			stamps[node] = append(stamps[node], vcStamp{at: e.At, vc: e.VC})
		}
	}
	// matchRecv finds the timestamp of the first event on node target
	// whose clock component for the sending app reached k — the causal
	// receive anchor. ok is false while the message is still in flight
	// at journal end.
	matchRecv := func(target, senderApp int, k int32) (int64, bool) {
		if target < 0 || target >= n {
			return 0, false
		}
		s := stamps[target]
		i := sort.Search(len(s), func(i int) bool {
			return senderApp < len(s[i].vc) && s[i].vc[senderApp] >= k
		})
		if i == len(s) {
			return 0, false
		}
		return s[i].at, true
	}

	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	emit := func(e traceEvent) { doc.TraceEvents = append(doc.TraceEvents, e) }
	us := func(ns int64) int64 { return ns / 1000 }

	for pid := 0; pid < n; pid++ {
		emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("node %d", pid)}})
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidApp,
			Args: map[string]any{"name": "app"}})
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidCtl,
			Args: map[string]any{"name": "ctl"}})
	}
	emit(traceEvent{Name: "process_name", Ph: "M", Pid: clusterPid,
		Args: map[string]any{"name": "cluster"}})
	emit(traceEvent{Name: "thread_name", Ph: "M", Pid: clusterPid, Tid: tidApp,
		Args: map[string]any{"name": "chaos / epochs"}})

	// csOpen holds each app row's open critical-section entry.
	csOpen := map[int]Event{}
	flowID := int64(0)
	for _, e := range events {
		pid, tid := row(e.Proc)
		switch e.Kind {
		case KindSet:
			// A state flip to non-zero opens a slice (the cs=1 false
			// interval of ¬cs), back to zero closes it.
			if e.A != 0 {
				csOpen[e.Proc] = e
				continue
			}
			if b, ok := csOpen[e.Proc]; ok {
				delete(csOpen, e.Proc)
				emit(traceEvent{Name: b.Name, Ph: "X",
					Ts: us(b.At), Dur: us(e.At) - us(b.At), Pid: pid, Tid: tid})
			}
		case KindControl, KindMark:
			scope := "t"
			if e.Proc < 0 {
				// Run-level annotation: a full-height marker across the
				// whole trace.
				scope = "g"
			}
			args := map[string]any{"a": e.A, "b": e.B}
			if e.C != 0 {
				args["c"] = e.C
			}
			if e.VC != nil {
				args["vc"] = e.VC
			}
			emit(traceEvent{Name: e.Name, Ph: "i", Ts: us(e.At), Pid: pid, Tid: tid,
				S: scope, Args: args})
			// Cross-node control messages (ctl.req/ack/confirm/cancel
			// and broadcast cancels) get causal flow arrows: A is the
			// target app, the clock identifies the send.
			if len(e.Name) > len(EvCtlPrefix) && e.Name[:len(EvCtlPrefix)] == EvCtlPrefix &&
				e.Proc >= n && e.Proc < 2*n && len(e.VC) > 0 {
				senderApp := e.Proc - n
				target := int(e.A)
				if senderApp < len(e.VC) {
					if at, ok := matchRecv(target, senderApp, e.VC[senderApp]); ok {
						flowID++
						name := fmt.Sprintf("%s n%d→n%d", e.Name, senderApp, target)
						emit(traceEvent{Name: name, Ph: "s", Ts: us(e.At),
							Pid: pid, Tid: tid, ID: flowID})
						tp, tt := row(target + n)
						emit(traceEvent{Name: name, Ph: "f", Bp: "e", Ts: us(at),
							Pid: tp, Tid: tt, ID: flowID})
					}
				}
			}
		}
	}
	// Critical sections the run tore down while open degrade to
	// instants (sorted for determinism).
	open := make([]int, 0, len(csOpen))
	for p := range csOpen {
		open = append(open, p)
	}
	sort.Ints(open)
	for _, p := range open {
		b := csOpen[p]
		pid, tid := row(p)
		emit(traceEvent{Name: b.Name + " (unclosed)", Ph: "i",
			Ts: us(b.At), Pid: pid, Tid: tid, S: "t"})
	}

	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
