package obs

import (
	"encoding/json"
	"fmt"
)

// chrome.go renders a Journal as Chrome trace_event JSON — the format
// chrome://tracing and Perfetto load — so any instrumented run can be
// replayed visually: one timeline row per simulated process, work as
// duration slices, messages as flow arrows from send to receive,
// blocked-on-receive as nested slices, state-variable flips as counter
// tracks, and protocol annotations as instant events. Virtual time maps
// 1:1 onto trace microseconds.

// traceEvent is one trace_event record. Field order (and the struct
// encoding of encoding/json) makes the output byte-deterministic for a
// deterministic journal, which the golden test pins.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ChromeTraceOptions tunes the export.
type ChromeTraceOptions struct {
	// ProcNames labels the timeline rows; row i falls back to "P<i>".
	ProcNames []string
}

func (o ChromeTraceOptions) procName(p int) string {
	if p >= 0 && p < len(o.ProcNames) && o.ProcNames[p] != "" {
		return o.ProcNames[p]
	}
	return fmt.Sprintf("P%d", p)
}

// ChromeTrace renders the journal as trace_event JSON. The output is
// deterministic: events come out in journal order, metadata first.
func ChromeTrace(j *Journal, opts ChromeTraceOptions) ([]byte, error) {
	events := j.Events()
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	emit := func(e traceEvent) { doc.TraceEvents = append(doc.TraceEvents, e) }

	// Thread metadata: name every process row that appears.
	maxProc := -1
	for _, e := range events {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}
	emit(traceEvent{Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "predctl run"}})
	for p := 0; p <= maxProc; p++ {
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": opts.procName(p)}})
	}

	// blockStart holds the open KindBlock per process, paired with the
	// next KindUnblock into a B/E slice.
	blockStart := map[int]Event{}
	for _, e := range events {
		switch e.Kind {
		case KindSend:
			emit(traceEvent{Name: "send", Ph: "i", Ts: e.At, Pid: 0, Tid: e.Proc, S: "t",
				Args: map[string]any{"to": e.A, "msg": e.B}})
			emit(traceEvent{Name: fmt.Sprintf("msg %d→%d", e.Proc, e.A), Ph: "s",
				Ts: e.At, Pid: 0, Tid: e.Proc, ID: e.B})
		case KindRecv:
			emit(traceEvent{Name: fmt.Sprintf("msg %d→%d", e.A, e.Proc), Ph: "f", Bp: "e",
				Ts: e.At, Pid: 0, Tid: e.Proc, ID: e.B})
		case KindBlock:
			blockStart[e.Proc] = e
		case KindUnblock:
			if b, ok := blockStart[e.Proc]; ok {
				delete(blockStart, e.Proc)
				emit(traceEvent{Name: "blocked (" + b.Name + ")", Ph: "X",
					Ts: b.At, Dur: e.At - b.At, Pid: 0, Tid: e.Proc})
			}
		case KindWork:
			emit(traceEvent{Name: "work", Ph: "X", Ts: e.At, Dur: e.B, Pid: 0, Tid: e.Proc})
		case KindSet:
			emit(traceEvent{Name: fmt.Sprintf("%s@%s", e.Name, opts.procName(e.Proc)),
				Ph: "C", Ts: e.At, Pid: 0, Tid: e.Proc,
				Args: map[string]any{e.Name: e.A}})
		case KindControl, KindMark:
			args := map[string]any{"a": e.A, "b": e.B}
			if e.VC != nil {
				args["vc"] = e.VC
			}
			emit(traceEvent{Name: e.Name, Ph: "i", Ts: e.At, Pid: 0, Tid: e.Proc, S: "t",
				Args: args})
		}
	}
	// Close any block the run tore down while still open (sorted by
	// process so the output stays deterministic).
	for p := 0; p <= maxProc; p++ {
		if b, ok := blockStart[p]; ok {
			emit(traceEvent{Name: "blocked (" + b.Name + ", unresolved)", Ph: "i",
				Ts: b.At, Pid: 0, Tid: p, S: "t"})
		}
	}

	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
