package obs

import (
	"strings"
	"testing"
)

func TestJournalAppendAndOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Append(Event{At: int64(i), Proc: i % 2, Kind: KindWork, B: 1})
	}
	if j.Len() != 5 || j.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", j.Len(), j.Dropped())
	}
	for i, e := range j.Events() {
		if e.Seq != uint64(i) || e.At != int64(i) {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
}

func TestJournalRingDropsOldest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{At: int64(i), Kind: KindMark})
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	ev := j.Events()
	for i, e := range ev {
		if e.Seq != uint64(6+i) {
			t.Fatalf("retained[%d].Seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
	if got := j.Slice(7, 8); len(got) != 2 || got[0].Seq != 7 || got[1].Seq != 8 {
		t.Fatalf("Slice(7,8) = %+v", got)
	}
}

func TestJournalNilReceiver(t *testing.T) {
	var j *Journal
	j.Append(Event{Kind: KindMark}) // must not panic
	if j.Enabled() || j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil {
		t.Fatal("nil journal should be inert")
	}
}

// TestJournalAppendNoAlloc pins the zero-allocation hot path: the ring
// is preallocated, so recording an event (without a VC snapshot) must
// not allocate.
func TestJournalAppendNoAlloc(t *testing.T) {
	j := NewJournal(1 << 10)
	e := Event{At: 3, Proc: 1, Kind: KindSend, A: 2, B: 7}
	if n := testing.AllocsPerRun(200, func() { j.Append(e) }); n != 0 {
		t.Fatalf("Journal.Append allocates %v per op, want 0", n)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	g.Set(7)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil registry instruments must be inert")
	}
	ran := false
	r.Span("x", func() { ran = true })
	if !ran {
		t.Fatal("Span on nil registry must still run fn")
	}
}

func TestRegistrySharedKeyspace(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2")) // label order must not matter
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if r.Counter("m") == a || r.Counter("m", L("a", "2")) == a {
		t.Fatal("different labels must resolve to different counters")
	}
}

func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{10, 0, 30, 10} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 50 || h.Max() != 30 || h.Mean() != 12.5 {
		t.Fatalf("count=%d sum=%d max=%d mean=%v", h.Count(), h.Sum(), h.Max(), h.Mean())
	}
	if got := h.Values(); len(got) != 4 || got[2] != 30 {
		t.Fatalf("values = %v", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("predctl_ctl_messages_total", L("proto", "scapegoat")).Add(4)
	r.Counter("predctl_ctl_messages_total", L("proto", "central")).Add(9)
	r.Gauge("predctl_run_end_vtime").Set(361)
	h := r.Histogram("predctl_response_vtime", L("proto", "scapegoat"))
	h.Observe(0)
	h.Observe(12)
	h.Observe(30)
	r.Span("predctl_phase", func() {}, L("phase", "detect"))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE predctl_ctl_messages_total counter\n",
		`predctl_ctl_messages_total{proto="central"} 9` + "\n",
		`predctl_ctl_messages_total{proto="scapegoat"} 4` + "\n",
		"# TYPE predctl_run_end_vtime gauge\npredctl_run_end_vtime 361\n",
		"# TYPE predctl_response_vtime histogram\n",
		`predctl_response_vtime_bucket{proto="scapegoat",le="1"} 1` + "\n",
		`predctl_response_vtime_bucket{proto="scapegoat",le="20"} 2` + "\n",
		`predctl_response_vtime_bucket{proto="scapegoat",le="+Inf"} 3` + "\n",
		`predctl_response_vtime_sum{proto="scapegoat"} 42` + "\n",
		`predctl_response_vtime_count{proto="scapegoat"} 3` + "\n",
		`predctl_response_vtime_max{proto="scapegoat"} 30` + "\n",
		`predctl_phase_calls_total{phase="detect"} 1` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
	// central sorts before scapegoat: deterministic series order.
	if strings.Index(got, `proto="central"`) > strings.Index(got, `proto="scapegoat"`) {
		t.Error("series not sorted")
	}

	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("WritePrometheus is not deterministic")
	}
}

func TestSpanTracksAllocs(t *testing.T) {
	r := NewRegistry()
	r.TrackAllocs = true
	var sink []byte
	r.Span("p", func() { sink = make([]byte, 1<<20) })
	_ = sink
	s := r.SpanStats("p")
	if s.Count() != 1 || s.Wall() <= 0 {
		t.Fatalf("count=%d wall=%v", s.Count(), s.Wall())
	}
	if s.Allocs() < 1 || s.Bytes() < 1<<20 {
		t.Fatalf("allocs=%d bytes=%d, want the 1MiB make attributed", s.Allocs(), s.Bytes())
	}
}

func TestCheckResponses(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 10, 30, 0} { // T=5, Emax=20: allowed {0} ∪ [10,30]
		h.Observe(v)
	}
	var ok Report
	ok.CheckResponses(h, 5, 20, nil)
	if !ok.Ok() {
		t.Fatalf("in-bound responses flagged: %v", ok.Err())
	}

	h.Observe(31)
	h.Observe(4)
	var bad Report
	bad.CheckResponses(h, 5, 20, nil)
	if len(bad.Violations) != 2 {
		t.Fatalf("want 2 violations, got %v", bad.Err())
	}
}

func chainJournal(events ...Event) *Journal {
	j := NewJournal(0)
	for _, e := range events {
		e.Kind = KindControl
		j.Append(e)
	}
	return j
}

func TestCheckScapegoatChain(t *testing.T) {
	good := chainJournal(
		Event{Name: EvScapegoatInit, A: 2},
		Event{Name: EvScapegoatAcquire, A: 0, B: 2},
		Event{Name: EvScapegoatAcquire, A: 1, B: 0},
	)
	var ok Report
	ok.CheckScapegoatChain(good)
	if !ok.Ok() {
		t.Fatalf("valid chain flagged: %v", ok.Err())
	}
	if ChainLength(good) != 2 {
		t.Fatalf("ChainLength = %d", ChainLength(good))
	}

	forked := chainJournal(
		Event{Name: EvScapegoatInit, A: 2},
		Event{Name: EvScapegoatAcquire, A: 0, B: 2},
		Event{Name: EvScapegoatAcquire, A: 1, B: 2}, // 2 is no longer the holder
	)
	var bad Report
	bad.CheckScapegoatChain(forked)
	if bad.Ok() {
		t.Fatal("forked chain not flagged")
	}
	if v := bad.Violations[0]; len(v.Events) == 0 {
		t.Fatal("violation carries no journal slice")
	}

	var noInit Report
	noInit.CheckScapegoatChain(chainJournal(Event{Name: EvScapegoatAcquire, A: 1, B: 0}))
	if noInit.Ok() {
		t.Fatal("acquire before init not flagged")
	}

	// A wrapped journal lost the chain prefix: the check must skip, not
	// report a phantom fork.
	wrapped := NewJournal(2)
	for _, e := range []Event{
		{Kind: KindControl, Name: EvScapegoatInit, A: 0},
		{Kind: KindControl, Name: EvScapegoatAcquire, A: 1, B: 0},
		{Kind: KindControl, Name: EvScapegoatAcquire, A: 2, B: 1},
	} {
		wrapped.Append(e)
	}
	var skip Report
	skip.CheckScapegoatChain(wrapped)
	if !skip.Ok() || len(skip.Checked) != 0 {
		t.Fatal("check on a wrapped journal must be skipped")
	}
}

func TestCheckOfflineEdges(t *testing.T) {
	var ok Report
	ok.CheckOfflineEdges(10, 2, 4) // bound 2*5 = 10
	if !ok.Ok() {
		t.Fatalf("in-bound edges flagged: %v", ok.Err())
	}
	var bad Report
	bad.CheckOfflineEdges(11, 2, 4)
	if bad.Ok() {
		t.Fatal("over-bound edges not flagged")
	}
}

func TestBlockedTime(t *testing.T) {
	j := NewJournal(0)
	j.Append(Event{At: 10, Proc: 0, Kind: KindBlock, Name: "recv"})
	j.Append(Event{At: 25, Proc: 0, Kind: KindUnblock})
	j.Append(Event{At: 30, Proc: 1, Kind: KindBlock, Name: "recv"})
	j.Append(Event{At: 31, Proc: 1, Kind: KindUnblock})
	j.Append(Event{At: 40, Proc: 0, Kind: KindBlock, Name: "recv"}) // never unblocked
	bt := BlockedTime(j)
	if bt[0] != 15 || bt[1] != 1 {
		t.Fatalf("BlockedTime = %v", bt)
	}
}

func TestTimeline(t *testing.T) {
	j := NewJournal(0)
	j.Append(Event{At: 1, Proc: 0, Kind: KindSend, A: 1, B: 0})
	j.Append(Event{At: 3, Proc: 1, Kind: KindRecv, A: 0, B: 0})
	j.Append(Event{At: 3, Proc: 1, Kind: KindSet, Name: "cs", A: 1})
	out := Timeline(j, 0)
	for _, want := range []string{"send → P1", "recv ← P0", "set cs := 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if tail := Timeline(j, 1); strings.Contains(tail, "send") || !strings.Contains(tail, "2 earlier events elided") {
		t.Errorf("limited timeline wrong:\n%s", tail)
	}
}
