// Package obs is the observability layer: structured run tracing,
// protocol metrics, and invariant checks bound to the paper's analytic
// evaluation (§5–§6). It is zero-dependency (stdlib only) and designed
// so that *disabled* instrumentation costs nothing on the hot paths: a
// nil *Journal or *Registry is a valid receiver everywhere, and every
// recording method on a nil receiver is a single predictable branch
// with no allocation.
//
// Three parts:
//
//   - Run tracing (this file): the sim kernel appends structured events
//     (send/recv/block/unblock/work/set/control) into a per-run
//     ring-buffered Journal; chrome.go exports it as Chrome trace_event
//     JSON for chrome://tracing / Perfetto, timeline.go as a
//     human-readable timeline.
//   - Protocol metrics (metrics.go, span.go): typed counters,
//     histograms, gauges and phase spans in a Registry, dumped in
//     Prometheus text exposition format. The online controller, the
//     monitor, and the kmutex baselines record into a Registry, and
//     internal/expt derives its reported tables from the same registry
//     — no private tallies to drift.
//   - Invariant checks (invariant.go): the paper's bounds — handoff
//     response ∈ {0} ∪ [2T, 2T+Emax], ≤ O(np) off-line control
//     messages, a single scapegoat chain — asserted on instrumented
//     runs, failing loudly with the offending journal slice.
package obs

import "sync"

// Kind discriminates journal events.
type Kind uint8

const (
	// KindSend: process Proc sent a message to process A; B is the
	// kernel message sequence number (pairs with the matching KindRecv
	// for flow rendering).
	KindSend Kind = iota + 1
	// KindRecv: process Proc consumed a message from process A; B is
	// the message sequence number.
	KindRecv
	// KindBlock: process Proc blocked; Name is the reason ("recv").
	KindBlock
	// KindUnblock: process Proc resumed after a KindBlock.
	KindUnblock
	// KindWork: process Proc performed B time units of local work
	// starting at At.
	KindWork
	// KindSet: process Proc assigned state variable Name := A — a
	// predicate flip when Name underlies a local predicate.
	KindSet
	// KindControl: a protocol-level annotation (control-message kinds,
	// scapegoat transfers, monitor candidates); Name says which, A and
	// B are label-specific, VC may carry a vector clock snapshot.
	KindControl
	// KindMark: a free-form annotation.
	KindMark
)

var kindNames = [...]string{"", "send", "recv", "block", "unblock", "work", "set", "control", "mark"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one journal entry. At is virtual time (or wall-clock
// nanoseconds since run start, for networked runs); Proc the simulated
// process index. A, B and C are kind-specific operands (see the Kind
// constants; C is 0 for most events — scapegoat.acquire uses it for the
// anti-token generation, which lets checkers order acquisitions from
// different nodes without trusting cross-node timestamps); VC, when
// non-nil, is a vector clock snapshot taken by an instrumented layer
// that maintains runtime clocks (internal/monitor, internal/node).
type Event struct {
	Seq     uint64
	At      int64
	Proc    int
	Kind    Kind
	Name    string
	A, B, C int64
	VC      []int32
}

// DefaultJournalCap is the ring capacity used when NewJournal is given 0.
const DefaultJournalCap = 1 << 16

// Journal is a bounded, concurrency-safe event journal. When the ring
// is full the oldest events are overwritten and counted in Dropped —
// instrumentation must never stall or OOM the run it observes. A nil
// *Journal is valid: Append on it is a no-op, so call sites need no
// enabled-flag plumbing.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // ring index of the oldest retained event
	n       int    // retained events
	next    uint64 // seq assigned to the next event
	dropped uint64
}

// NewJournal returns a journal retaining up to capacity events
// (DefaultJournalCap when capacity <= 0). The ring is allocated up
// front; Append never allocates.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append records e, assigning its sequence number. No-op on nil.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	e.Seq = j.next
	j.next++
	if j.n == len(j.buf) {
		j.buf[j.start] = e
		j.start++
		if j.start == len(j.buf) {
			j.start = 0
		}
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
	}
	j.mu.Unlock()
}

// Enabled reports whether events are being recorded.
func (j *Journal) Enabled() bool { return j != nil }

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events in append order (a copy).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

// Slice returns the retained events with Seq in [lo, hi], in order —
// the "offending journal slice" invariant violations report.
func (j *Journal) Slice(lo, hi uint64) []Event {
	var out []Event
	for _, e := range j.Events() {
		if e.Seq >= lo && e.Seq <= hi {
			out = append(out, e)
		}
	}
	return out
}
