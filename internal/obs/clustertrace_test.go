package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"predctl/internal/obs"
)

// clusterJournal hand-builds a deterministic two-node merged journal —
// the shape a coordinator assembles from capture streams — exercising
// every cluster-trace feature: causal flow pairs across nodes, a
// critical-section slice, per-node and run-level instants, and an
// in-flight message with no receive anchor.
func clusterJournal() *obs.Journal {
	j := obs.NewJournal(0)
	for _, e := range []obs.Event{
		// Run-level chaos annotations (Proc -1 → cluster row).
		{At: 1_200_000, Proc: -1, Kind: obs.KindControl, Name: obs.EvChaosCrash, A: 1},
		{At: 1_300_000, Proc: -1, Kind: obs.KindControl, Name: obs.EvPartitionOpen, A: 0, B: 1},
		{At: 4_000_000, Proc: -1, Kind: obs.KindControl, Name: obs.EvPartitionHeal, A: 0, B: 1},
		// ctl0 (proc 2) requests the anti-token from node 1; ctl1's
		// acquire is the first event whose clock dominates the send.
		{At: 1_000_000, Proc: 2, Kind: obs.KindControl, Name: "ctl.req", A: 1, C: 1, VC: []int32{1, 0}},
		{At: 2_000_000, Proc: 3, Kind: obs.KindControl, Name: obs.EvScapegoatAcquire, A: 1, B: 0, C: 1, VC: []int32{1, 1}},
		// The ack flows back: ctl0's confirm dominates it.
		{At: 2_500_000, Proc: 3, Kind: obs.KindControl, Name: "ctl.ack", A: 0, C: 1, VC: []int32{1, 2}},
		{At: 3_000_000, Proc: 2, Kind: obs.KindControl, Name: "ctl.confirm", A: 1, C: 1, VC: []int32{2, 2}},
		// The confirm itself is never observed before journal end — a
		// flow start with no finish must not be emitted for it.
		// App 0's critical section (cs=1 … cs=0) plus its candidate.
		{At: 1_500_000, Proc: 0, Kind: obs.KindSet, Name: "cs", A: 1},
		{At: 1_600_000, Proc: 0, Kind: obs.KindControl, Name: "monitor.candidate", A: 3, B: 5, VC: []int32{1, 0}},
		{At: 1_800_000, Proc: 0, Kind: obs.KindSet, Name: "cs", A: 0},
		// Node 1's controller marks the re-execution epoch.
		{At: 2_200_000, Proc: 3, Kind: obs.KindControl, Name: obs.EvEpochRestart, A: 1, C: 1},
		// App 1 tears down mid-critical-section: unclosed slice.
		{At: 3_500_000, Proc: 1, Kind: obs.KindSet, Name: "cs", A: 1},
	} {
		j.Append(e)
	}
	return j
}

// TestClusterTraceGolden locks the exporter's byte-exact output.
// Regenerate with:
//
//	go test ./internal/obs -run TestClusterTraceGolden -update
func TestClusterTraceGolden(t *testing.T) {
	doc, err := obs.ClusterTrace(clusterJournal(), obs.ClusterTraceOptions{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "cluster_trace_n2.json")
	if *update {
		if err := os.WriteFile(golden, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(doc))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(doc, want) {
		t.Fatalf("cluster trace drifted from %s (regenerate with -update if intended);\ngot %d bytes, want %d", golden, len(doc), len(want))
	}
}

// TestClusterTraceWellFormed checks structure independently of the
// golden bytes: valid JSON, every flow finish paired with a start, the
// expected causal arrows present (req and ack, not the unobserved
// confirm), rows confined to the n+1 trace processes, and chaos
// annotations global-scoped on the cluster row.
func TestClusterTraceWellFormed(t *testing.T) {
	const n = 2
	doc, err := obs.ClusterTrace(clusterJournal(), obs.ClusterTraceOptions{N: n})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			ID   int64  `json:"id"`
			S    string `json:"s"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	flows := map[int64][2]int{}
	var crossNode int
	for _, e := range parsed.TraceEvents {
		if e.Pid < 0 || e.Pid > n {
			t.Fatalf("event %q on unknown pid %d", e.Name, e.Pid)
		}
		switch e.Ph {
		case "s":
			f := flows[e.ID]
			f[0]++
			flows[e.ID] = f
		case "f":
			f := flows[e.ID]
			f[1]++
			flows[e.ID] = f
			crossNode++
		case "i":
			if (e.Name == obs.EvChaosCrash || e.Name == obs.EvPartitionOpen) &&
				(e.Pid != n || e.S != "g") {
				t.Errorf("chaos instant %q not global on the cluster row: pid=%d s=%q", e.Name, e.Pid, e.S)
			}
		}
	}
	for id, f := range flows {
		if f[0] != 1 || f[1] != 1 {
			t.Errorf("flow %d has %d starts, %d finishes; want 1/1", id, f[0], f[1])
		}
	}
	// ctl.req (node0→node1) and ctl.ack (node1→node0) pair up; the
	// never-observed ctl.confirm must not produce a dangling arrow.
	if crossNode != 2 {
		t.Errorf("got %d cross-node flow arrows, want 2", crossNode)
	}
	for _, name := range []string{"ctl.req n0→n1", "ctl.ack n1→n0"} {
		found := false
		for _, e := range parsed.TraceEvents {
			if e.Name == name && e.Ph == "s" {
				found = true
			}
		}
		if !found {
			t.Errorf("missing causal flow %q", name)
		}
	}
	// The unclosed critical section degrades to an instant.
	sawUnclosed := false
	for _, e := range parsed.TraceEvents {
		if e.Name == "cs (unclosed)" && e.Ph == "i" && e.Pid == 1 {
			sawUnclosed = true
		}
	}
	if !sawUnclosed {
		t.Error("torn-down critical section not rendered as an unclosed instant")
	}
}

// TestClusterTraceDeterministic: same journal, same bytes.
func TestClusterTraceDeterministic(t *testing.T) {
	a, err := obs.ClusterTrace(clusterJournal(), obs.ClusterTraceOptions{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := obs.ClusterTrace(clusterJournal(), obs.ClusterTraceOptions{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cluster trace export is not deterministic")
	}
}
