package obs

import (
	"runtime"
	"sync"
	"time"
)

// SpanStats accumulates phase timings: call count, wall nanoseconds,
// and (when Registry.TrackAllocs is set) heap allocations attributed to
// the phase. Spans exist so BENCH_*.json rows and experiment tables can
// say *which phase* of a multi-pass run (clock build, detect scan,
// chain search, batch fan-out) the time and allocations went to.
type SpanStats struct {
	mu     sync.Mutex
	count  int64
	wallNs int64
	allocs int64
	bytes  int64
}

func (s *SpanStats) add(wall time.Duration, allocs, bytes int64) {
	s.mu.Lock()
	s.count++
	s.wallNs += wall.Nanoseconds()
	s.allocs += allocs
	s.bytes += bytes
	s.mu.Unlock()
}

func (s *SpanStats) snapshot() (count, wallNs, allocs, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.wallNs, s.allocs, s.bytes
}

// Count returns how many times the span ran.
func (s *SpanStats) Count() int64 { c, _, _, _ := s.snapshot(); return c }

// Wall returns the accumulated wall time.
func (s *SpanStats) Wall() time.Duration { _, w, _, _ := s.snapshot(); return time.Duration(w) }

// Allocs returns the accumulated allocation count (0 unless the
// registry tracks allocations).
func (s *SpanStats) Allocs() int64 { _, _, a, _ := s.snapshot(); return a }

// Bytes returns the accumulated allocated bytes (0 unless the registry
// tracks allocations).
func (s *SpanStats) Bytes() int64 { _, _, _, b := s.snapshot(); return b }

// SpanStats returns (creating if needed) the span name{labels}.
func (r *Registry) SpanStats(name string, labels ...Label) *SpanStats {
	if r == nil {
		return nil
	}
	k := key(name, r.withExtra(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[k]
	if !ok {
		s = &SpanStats{}
		r.spans[k] = s
	}
	return s
}

// allocSpanMu serializes allocation-tracked spans: runtime.ReadMemStats
// deltas are only attributable when one tracked span runs at a time.
// Wall-only spans (TrackAllocs unset) take no lock and may run
// concurrently (the batch layer does).
var allocSpanMu sync.Mutex

// Span runs fn, charging its wall time — and, when TrackAllocs is set,
// its heap allocations — to the span name{labels}. On a nil registry
// fn runs unobserved.
func (r *Registry) Span(name string, fn func(), labels ...Label) {
	if r == nil {
		fn()
		return
	}
	s := r.SpanStats(name, labels...)
	if !r.TrackAllocs {
		start := time.Now()
		fn()
		s.add(time.Since(start), 0, 0)
		return
	}
	allocSpanMu.Lock()
	defer allocSpanMu.Unlock()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	s.add(wall, int64(after.Mallocs-before.Mallocs), int64(after.TotalAlloc-before.TotalAlloc))
}
