package obs

import (
	"fmt"
	"strings"
)

// invariant.go turns the paper's analytic evaluation into live,
// machine-checked assertions on instrumented runs:
//
//   - §6 (Theorem 4 evaluation): every handoff response time lies in
//     {0} ∪ [2T, 2T+Emax] — zero when the requester is not the
//     scapegoat, the window when it is.
//   - §6: the anti-token is unique — the scapegoat role moves along a
//     single chain; every acquisition names the current holder as the
//     releaser.
//   - §5 (Theorem 2): the off-line controller emits at most O(np)
//     control messages — concretely ≤ n(p+1) chain handoffs for n
//     processes with ≤ p false-intervals each.
//
// A violation carries the offending journal slice so the failure is
// debuggable from the report alone.

// Control-event names recorded by internal/online and consumed here;
// shared constants keep the emitter and the checker from drifting.
const (
	// EvScapegoatInit marks the initial anti-token holder; A is its
	// application process index.
	EvScapegoatInit = "scapegoat.init"
	// EvScapegoatAcquire marks a role transfer: A is the acquiring
	// application process, B the releasing one.
	EvScapegoatAcquire = "scapegoat.acquire"
	// EvCtlPrefix prefixes controller-to-controller protocol messages
	// ("ctl.req", "ctl.ack", "ctl.confirm", "ctl.cancel").
	EvCtlPrefix = "ctl."
	// EvEpochRestart marks the first event of a controlled re-execution
	// epoch on a node; A is the node index, C the new epoch.
	EvEpochRestart = "epoch.restart"
	// EvChaosCrash marks an injected crash; A is the crashed node.
	EvChaosCrash = "chaos.crash"
	// EvCandidate marks a node flushing a candidate interval to the
	// coordinator's live checker; A and B are the interval's first and
	// last traced state indices.
	EvCandidate = "monitor.candidate"
	// EvDetect marks a live possibly(¬B) detection confirmed on the
	// captured prefix; A is the node whose candidate completed the
	// witness (-1 for the commit-time closing pass), B the epoch it
	// fired in.
	EvDetect = "detect.fired"
	// EvEpochReExec marks a detection-triggered controlled
	// re-execution; A is the witness node, B the fresh epoch.
	EvEpochReExec = "epoch.reexec"
	// EvPartitionOpen / EvPartitionHeal bracket an injected network
	// partition; A and B are the partitioned node pair (A < B), or -1
	// for "all links of A".
	EvPartitionOpen = "partition.open"
	EvPartitionHeal = "partition.heal"
)

// Violation is one failed invariant with its journal context.
type Violation struct {
	Invariant string
	Detail    string
	Events    []Event // offending journal slice (may be empty)
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %q violated: %s", v.Invariant, v.Detail)
	for _, e := range v.Events {
		fmt.Fprintf(&b, "\n  seq=%d t=%d P%d %s", e.Seq, e.At, e.Proc, describe(e))
	}
	return b.String()
}

// Report collects the outcome of a set of invariant checks.
type Report struct {
	Checked    []string
	Violations []Violation
}

// Ok reports whether every check passed.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when all checks passed, or an error aggregating every
// violation.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("obs: %d invariant violation(s):\n%s", len(r.Violations), strings.Join(msgs, "\n"))
}

func (r *Report) checked(name string) { r.Checked = append(r.Checked, name) }

func (r *Report) violate(inv, detail string, events []Event) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Detail: detail, Events: events})
}

// CheckResponses asserts the §6 response-time bound on every
// observation of hist: response ∈ {0} ∪ [2T, 2T+Emax]. journalCtx, when
// non-nil, supplies context events for a violation (its tail).
func (r *Report) CheckResponses(hist *Histogram, T, Emax int64, journalCtx *Journal) {
	const inv = "response ∈ {0} ∪ [2T, 2T+Emax]"
	r.checked(inv)
	for i, v := range hist.Values() {
		if v == 0 || (v >= 2*T && v <= 2*T+Emax) {
			continue
		}
		r.violate(inv,
			fmt.Sprintf("observation #%d is %d (T=%d, Emax=%d: allowed {0} ∪ [%d, %d])",
				i, v, T, Emax, 2*T, 2*T+Emax),
			tail(journalCtx, 12))
	}
}

// CheckResponsesWindow asserts the §6 window on wall-clock handoff
// responses: every observation of hist lies in [lo, hi]. It is the
// networked counterpart of CheckResponses — real runs split responses
// by path (a grant that required an anti-token handoff versus a local
// grant, the paper's "0"), because wall clocks make the zero branch a
// scheduling-noise band rather than an exact value. Feed it the
// handoff-only histogram (predctl_response_handoff_ns) with lo = 2×
// the injected link delay and a generous hi.
func (r *Report) CheckResponsesWindow(hist *Histogram, lo, hi int64, journalCtx *Journal) {
	const inv = "handoff response ∈ [2T, 2T+Emax]"
	r.checked(inv)
	for i, v := range hist.Values() {
		if v >= lo && v <= hi {
			continue
		}
		r.violate(inv,
			fmt.Sprintf("handoff observation #%d is %d (allowed [%d, %d])", i, v, lo, hi),
			tail(journalCtx, 12))
	}
}

// CheckScapegoatChain asserts the anti-token uniqueness invariant on
// the journal's control events: exactly one EvScapegoatInit, and every
// EvScapegoatAcquire names the current holder as the releaser. When the
// journal wrapped (Dropped > 0) the check is skipped — the chain's
// prefix is gone, so absence of evidence is not evidence.
func (r *Report) CheckScapegoatChain(j *Journal) {
	const inv = "single scapegoat chain"
	if j.Dropped() > 0 {
		return
	}
	r.checked(inv)
	holder := int64(-1)
	seen := false
	for _, e := range j.Events() {
		if e.Kind != KindControl {
			continue
		}
		switch e.Name {
		case EvScapegoatInit:
			if seen {
				r.violate(inv, fmt.Sprintf("second scapegoat.init for P%d (holder was P%d)", e.A, holder),
					j.Slice(sat(e.Seq, 6), e.Seq))
				return
			}
			seen = true
			holder = e.A
		case EvScapegoatAcquire:
			if !seen {
				r.violate(inv, fmt.Sprintf("acquire by P%d before any scapegoat.init", e.A),
					j.Slice(sat(e.Seq, 6), e.Seq))
				return
			}
			if e.B != holder {
				r.violate(inv,
					fmt.Sprintf("P%d acquired the anti-token from P%d, but the holder was P%d (forked chain)",
						e.A, e.B, holder),
					j.Slice(sat(e.Seq, 6), e.Seq))
				return
			}
			holder = e.A
		}
	}
}

// CheckScapegoatChainNet asserts the single-chain invariant on a
// journal merged from concurrently-running nodes, where append order is
// arrival order, not acquisition order. It therefore orders
// acquisitions by the anti-token generation each one piggybacks
// (Event.C): the generations present must be exactly 1..K — a
// duplicate generation is two controllers both believing they took the
// same anti-token (a forked chain), a gap is a transfer nobody
// journaled — and generation g must name generation g−1's acquirer as
// its releaser (g=1 names the initial holder). Skipped, like
// CheckScapegoatChain, when the journal wrapped.
func (r *Report) CheckScapegoatChainNet(j *Journal) {
	const inv = "single scapegoat chain (generation-ordered)"
	if j.Dropped() > 0 {
		return
	}
	r.checked(inv)
	initHolder := int64(-1)
	initSeen := false
	byGen := map[int64]Event{}
	var maxGen int64
	for _, e := range j.Events() {
		if e.Kind != KindControl {
			continue
		}
		switch e.Name {
		case EvScapegoatInit:
			if initSeen {
				r.violate(inv, fmt.Sprintf("second scapegoat.init for P%d (holder was P%d)", e.A, initHolder),
					j.Slice(sat(e.Seq, 6), e.Seq))
				return
			}
			initSeen = true
			initHolder = e.A
		case EvScapegoatAcquire:
			if prev, dup := byGen[e.C]; dup {
				r.violate(inv,
					fmt.Sprintf("generation %d acquired twice: by P%d (from P%d) and by P%d (from P%d) — forked chain",
						e.C, prev.A, prev.B, e.A, e.B),
					[]Event{prev, e})
				return
			}
			byGen[e.C] = e
			if e.C > maxGen {
				maxGen = e.C
			}
		}
	}
	if len(byGen) == 0 {
		return
	}
	if !initSeen {
		r.violate(inv, "acquisitions recorded but no scapegoat.init", nil)
		return
	}
	holder := initHolder
	for g := int64(1); g <= maxGen; g++ {
		e, ok := byGen[g]
		if !ok {
			r.violate(inv, fmt.Sprintf("generation %d missing (%d acquisitions up to generation %d)",
				g, len(byGen), maxGen), nil)
			return
		}
		if e.B != holder {
			r.violate(inv,
				fmt.Sprintf("generation %d: P%d acquired from P%d, but generation %d's holder was P%d",
					g, e.A, e.B, g-1, holder),
				[]Event{e})
			return
		}
		holder = e.A
	}
}

// CheckOfflineEdges asserts the §5 message bound for the off-line
// disjunctive controller: at most n(p+1) control messages for n
// processes with at most p false-intervals each (one per chain handoff;
// the paper states the O(np) bound).
func (r *Report) CheckOfflineEdges(edges, n, p int) {
	const inv = "off-line control messages ≤ n(p+1)"
	r.checked(inv)
	if bound := n * (p + 1); edges > bound {
		r.violate(inv, fmt.Sprintf("%d control edges for n=%d, p=%d (bound %d)", edges, n, p, bound), nil)
	}
}

// ChainLength returns the number of anti-token transfers recorded in
// the journal (the scapegoat chain length), for the
// predctl_scapegoat_chain_length gauge.
func ChainLength(j *Journal) int64 {
	var n int64
	for _, e := range j.Events() {
		if e.Kind == KindControl && e.Name == EvScapegoatAcquire {
			n++
		}
	}
	return n
}

// BlockedTime sums, per process, the virtual time spent between each
// KindBlock and its matching KindUnblock — the "blocked virtual time"
// protocol metric, derived from the journal rather than recorded twice.
func BlockedTime(j *Journal) map[int]int64 {
	out := map[int]int64{}
	open := map[int]int64{}
	for _, e := range j.Events() {
		switch e.Kind {
		case KindBlock:
			open[e.Proc] = e.At
		case KindUnblock:
			if t, ok := open[e.Proc]; ok {
				out[e.Proc] += e.At - t
				delete(open, e.Proc)
			}
		}
	}
	return out
}

// tail returns the last n events of j (nil journal → nil).
func tail(j *Journal, n int) []Event {
	events := j.Events()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}

// sat subtracts n from seq, saturating at 0.
func sat(seq uint64, n uint64) uint64 {
	if seq < n {
		return 0
	}
	return seq - n
}
