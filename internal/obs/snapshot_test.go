package obs_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"predctl/internal/obs"
)

// Prometheus exposition escaping: label values escape exactly
// backslash, double quote, and newline — not the full Go %q set (tabs,
// non-ASCII, etc. must pass through verbatim).
func TestPrometheusLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("esc_total", obs.L("path", `C:\tmp\"x"`+"\nnext"), obs.L("utf", "héllo\ttab")).Add(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `esc_total{path="C:\\tmp\\\"x\"\nnext",utf="héllo` + "\t" + `tab"} 3` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series not found\nwant: %q\nin:\n%s", want, out)
	}
	if strings.Contains(out, `\x`) || strings.Contains(out, `\u`) || strings.Contains(out, `\xc3`) {
		t.Fatalf("Go-style escapes leaked into exposition:\n%s", out)
	}
}

// ParseKey must invert the canonical rendering, including escapes.
func TestParseKeyRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	labels := []obs.Label{obs.L("a", `v\1`), obs.L("b", `say "hi"`), obs.L("c", "two\nlines")}
	reg.Counter("rt_total", labels...).Inc()
	pts := reg.Snapshot()
	if len(pts) != 1 {
		t.Fatalf("snapshot = %v, want 1 point", pts)
	}
	name, got, err := obs.ParseKey(pts[0].Key)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", pts[0].Key, err)
	}
	if name != "rt_total" || len(got) != 3 {
		t.Fatalf("ParseKey(%q) = %q %v", pts[0].Key, name, got)
	}
	for i, l := range got {
		if l != labels[i] {
			t.Errorf("label %d = %v, want %v", i, l, labels[i])
		}
	}
	if _, _, err := obs.ParseKey("bad{x=5}"); err == nil {
		t.Error("ParseKey accepted malformed label block")
	}
}

// Child registries tee updates into the parent's aggregate series while
// keying their own series with the extra labels.
func TestChildRegistryTee(t *testing.T) {
	parent := obs.NewRegistry()
	c0 := parent.Child(obs.L("node", "0"))
	c1 := parent.Child(obs.L("node", "1"))
	c0.Counter("reqs_total", obs.L("stream", "coord")).Add(2)
	c1.Counter("reqs_total", obs.L("stream", "coord")).Add(5)
	c0.Gauge("epoch").Set(3)
	c0.Histogram("lat_ns").Observe(10)
	c1.Histogram("lat_ns").Observe(30)

	if got := parent.Counter("reqs_total", obs.L("stream", "coord")).Value(); got != 7 {
		t.Errorf("parent aggregate counter = %d, want 7", got)
	}
	if got := parent.Gauge("epoch").Value(); got != 3 {
		t.Errorf("parent gauge = %d, want 3", got)
	}
	if got, want := parent.Histogram("lat_ns").Count(), int64(2); got != want {
		t.Errorf("parent histogram count = %d, want %d", got, want)
	}
	if got := c0.Counter("reqs_total", obs.L("stream", "coord")).Value(); got != 2 {
		t.Errorf("child counter = %d, want 2", got)
	}
	// Child snapshots carry the node label natively.
	pts := c1.Snapshot()
	foundKey := false
	for _, p := range pts {
		if p.Kind == obs.MetricCounter && p.Key == `reqs_total{node="1",stream="coord"}` && p.Value == 5 {
			foundKey = true
		}
	}
	if !foundKey {
		t.Errorf("child snapshot missing node-labelled series: %v", pts)
	}
}

// ApplySnapshot merges node snapshots into a live registry with label
// injection and set (idempotent) semantics.
func TestApplySnapshot(t *testing.T) {
	nodeReg := obs.NewRegistry()
	nodeReg.Counter("frames_total", obs.L("stream", "coord")).Add(4)
	nodeReg.Gauge("epoch").Set(2)
	nodeReg.Histogram("resp_ns").Observe(100)
	nodeReg.Histogram("resp_ns").Observe(300)

	live := obs.NewRegistry()
	pts := nodeReg.Snapshot()
	live.ApplySnapshot(pts, obs.L("node", "3"))
	live.ApplySnapshot(pts, obs.L("node", "3")) // re-delivery must not double

	if got := live.Counter("frames_total", obs.L("node", "3"), obs.L("stream", "coord")).Value(); got != 4 {
		t.Errorf("applied counter = %d, want 4", got)
	}
	if got := live.Gauge("epoch", obs.L("node", "3")).Value(); got != 2 {
		t.Errorf("applied gauge = %d, want 2", got)
	}
	if got := live.Counter("resp_ns_count", obs.L("node", "3")).Value(); got != 2 {
		t.Errorf("applied hist count = %d, want 2", got)
	}
	if got := live.Counter("resp_ns_sum", obs.L("node", "3")).Value(); got != 400 {
		t.Errorf("applied hist sum = %d, want 400", got)
	}
	if got := live.Gauge("resp_ns_max", obs.L("node", "3")).Value(); got != 300 {
		t.Errorf("applied hist max = %d, want 300", got)
	}
	sums := obs.SumByName(pts)
	if sums["frames_total"] != 4 || sums["epoch"] != 2 {
		t.Errorf("SumByName = %v", sums)
	}
}

// Concurrent read-while-write: sim/node-style writers hammer counters,
// gauges, float gauges and histograms (direct and through children)
// while readers dump Prometheus text, take snapshots, and apply them
// into a second registry. Run under -race (make check does) this is the
// registry's concurrency gate.
func TestRegistryConcurrentReadWhileWrite(t *testing.T) {
	reg := obs.NewRegistry()
	live := obs.NewRegistry()
	const writers = 4
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := reg.Child(obs.L("node", fmt.Sprint(w)))
			for i := 0; i < iters; i++ {
				reg.Counter("w_total", obs.L("writer", fmt.Sprint(w))).Inc()
				child.Counter("w_total").Inc()
				child.Gauge("epoch").Set(int64(i))
				reg.FloatGauge("lag_seconds", obs.L("writer", fmt.Sprint(w))).Set(float64(i) / 1e3)
				child.Histogram("lat_ns").Observe(int64(i % 97))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			live.ApplySnapshot(reg.Snapshot(), obs.L("src", "stress"))
		}
	}()
	wg.Wait()
	for w := 0; w < writers; w++ {
		if got := reg.Counter("w_total", obs.L("writer", fmt.Sprint(w))).Value(); got != iters {
			t.Errorf("writer %d counter = %d, want %d", w, got, iters)
		}
	}
	if got := reg.Counter("w_total").Value(); got != writers*iters {
		t.Errorf("aggregate tee counter = %d, want %d", got, writers*iters)
	}
}

// The introspection server serves /metrics, /healthz and /statusz.
func TestIntrospectionEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("probe_total", obs.L("q", `a"b`)).Add(9)
	refreshed := 0
	srv, err := obs.ServeIntrospection(obs.IntrospectionConfig{
		Addr:    "127.0.0.1:0",
		Reg:     reg,
		Status:  func() any { return map[string]int{"n": 3} },
		Refresh: func() { refreshed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `probe_total{q="a\"b"} 9`) {
		t.Errorf("/metrics missing escaped series:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, "ok") {
		t.Errorf("/healthz = %q", out)
	}
	if out := get("/statusz"); !strings.Contains(out, `"n": 3`) {
		t.Errorf("/statusz = %q", out)
	}
	if refreshed != 2 {
		t.Errorf("refresh hook ran %d times, want 2 (metrics + statusz)", refreshed)
	}
}
