package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"predctl/internal/kmutex"
	"predctl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// instrumentedMutexRun is the fixed-seed workload the golden file pins:
// small enough to review by hand, large enough to exercise every event
// kind (sends, receives, blocks, work, predicate flips, control
// annotations).
func instrumentedMutexRun(t *testing.T) *obs.Journal {
	t.Helper()
	j := obs.NewJournal(0)
	w := kmutex.Workload{
		N: 3, Rounds: 2, ThinkMax: 200, CS: 20, Delay: 5,
		Seed: 1998, Journal: j,
	}
	if _, _, err := kmutex.RunScapegoat(w, false); err != nil {
		t.Fatal(err)
	}
	return j
}

func procNames(n int) []string {
	names := make([]string, 2*n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("app%d", i)
		names[n+i] = fmt.Sprintf("ctl%d", i)
	}
	return names
}

// TestChromeTraceGolden locks the exporter's byte-exact output for a
// deterministic run. Regenerate with:
//
//	go test ./internal/obs -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	j := instrumentedMutexRun(t)
	doc, err := obs.ChromeTrace(j, obs.ChromeTraceOptions{ProcNames: procNames(3)})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_kmutex_n3.json")
	if *update {
		if err := os.WriteFile(golden, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(doc))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(doc, want) {
		t.Fatalf("Chrome trace drifted from %s (regenerate with -update if intended);\ngot %d bytes, want %d", golden, len(doc), len(want))
	}
}

// TestChromeTraceWellFormed checks structural validity independently of
// the golden bytes: parseable JSON, matched send/recv flow pairs, and
// every event attributed to a known process row.
func TestChromeTraceWellFormed(t *testing.T) {
	j := instrumentedMutexRun(t)
	doc, err := obs.ChromeTrace(j, obs.ChromeTraceOptions{ProcNames: procNames(3)})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Tid  int    `json:"tid"`
			ID   int64  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" || len(parsed.TraceEvents) == 0 {
		t.Fatalf("bad document header: %+v", parsed.DisplayTimeUnit)
	}
	flows := map[int64]int{} // msg id → starts - ends
	kinds := map[string]int{}
	for _, e := range parsed.TraceEvents {
		kinds[e.Ph]++
		if e.Tid < 0 || e.Tid >= 6 {
			t.Fatalf("event %q on unknown row %d", e.Name, e.Tid)
		}
		switch e.Ph {
		case "s":
			flows[e.ID]++
		case "f":
			flows[e.ID]--
		}
	}
	// Every flow end must have a start; starts without an end are fine
	// (messages still in flight when the run tore down).
	for id, d := range flows {
		if d < 0 {
			t.Errorf("flow %d has a receive with no send", id)
		}
	}
	for _, ph := range []string{"M", "X", "i", "s", "f", "C"} {
		if kinds[ph] == 0 {
			t.Errorf("no %q events in export; kinds = %v", ph, kinds)
		}
	}
}

// TestChromeTraceDeterministic: same seed, same bytes — the property
// the golden file relies on.
func TestChromeTraceDeterministic(t *testing.T) {
	a, err := obs.ChromeTrace(instrumentedMutexRun(t), obs.ChromeTraceOptions{ProcNames: procNames(3)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := obs.ChromeTrace(instrumentedMutexRun(t), obs.ChromeTraceOptions{ProcNames: procNames(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("export is not deterministic across identical runs")
	}
}
