package obs

import (
	"fmt"
	"sort"
	"strings"
)

// MetricKind discriminates snapshot points. Histograms flatten to three
// points (count/sum/max) — the wire snapshot is a live dashboard feed,
// not a transfer of raw observations (those travel as capture batches).
type MetricKind uint8

const (
	MetricCounter MetricKind = iota + 1
	MetricGauge
	MetricHistCount
	MetricHistSum
	MetricHistMax
)

// MetricPoint is one cumulative series value: Key is the canonical
// rendered series identity (name{labels}), Value the current count /
// gauge / flattened histogram component.
type MetricPoint struct {
	Kind  MetricKind
	Key   string
	Value int64
}

// Snapshot dumps every counter, gauge and histogram as cumulative
// points, deterministically ordered. Float gauges and spans are
// excluded (scrape-local). Safe to call concurrently with updates.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, c := range r.counts {
		counts[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()

	pts := make([]MetricPoint, 0, len(counts)+len(gauges)+3*len(hists))
	for _, k := range sortedKeys(counts) {
		pts = append(pts, MetricPoint{MetricCounter, k, counts[k].Value()})
	}
	for _, k := range sortedKeys(gauges) {
		pts = append(pts, MetricPoint{MetricGauge, k, gauges[k].Value()})
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		pts = append(pts,
			MetricPoint{MetricHistCount, k, h.Count()},
			MetricPoint{MetricHistSum, k, h.Sum()},
			MetricPoint{MetricHistMax, k, h.Max()})
	}
	return pts
}

// ApplySnapshot merges cumulative points into r with set semantics
// (snapshots are full dumps, so replayed or re-delivered frames are
// idempotent). The extra labels are injected into each series identity
// unless the key already carries them — the coordinator applies node
// snapshots with obs.L("node", id) to build the merged live registry.
// Flattened histogram points land as name_count/name_sum counters and a
// name_max gauge. Malformed keys are skipped.
func (r *Registry) ApplySnapshot(points []MetricPoint, extra ...Label) {
	if r == nil {
		return
	}
	for _, p := range points {
		name, labels, err := ParseKey(p.Key)
		if err != nil {
			continue
		}
		labels = addMissingLabels(labels, extra)
		switch p.Kind {
		case MetricCounter:
			r.Counter(name, labels...).set(p.Value)
		case MetricGauge:
			r.Gauge(name, labels...).Set(p.Value)
		case MetricHistCount:
			r.Counter(name+"_count", labels...).set(p.Value)
		case MetricHistSum:
			r.Counter(name+"_sum", labels...).set(p.Value)
		case MetricHistMax:
			r.Gauge(name+"_max", labels...).Set(p.Value)
		}
	}
}

// addMissingLabels appends each extra label whose key is absent.
func addMissingLabels(labels, extra []Label) []Label {
	for _, e := range extra {
		found := false
		for _, l := range labels {
			if l.Key == e.Key {
				found = true
				break
			}
		}
		if !found {
			labels = append(labels, e)
		}
	}
	return labels
}

// ParseKey is the inverse of the canonical series rendering: it splits
// name{k="v",...} back into the metric name and unescaped labels.
func ParseKey(k string) (string, []Label, error) {
	i := strings.IndexByte(k, '{')
	if i < 0 {
		return k, nil, nil
	}
	name := k[:i]
	if !strings.HasSuffix(k, "}") {
		return "", nil, fmt.Errorf("obs: malformed series key %q", k)
	}
	body := k[i+1 : len(k)-1]
	var labels []Label
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return "", nil, fmt.Errorf("obs: malformed label block in %q", k)
		}
		lk := body[:eq]
		rest := body[eq+2:]
		var v strings.Builder
		j := 0
		for {
			if j >= len(rest) {
				return "", nil, fmt.Errorf("obs: unterminated label value in %q", k)
			}
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				switch rest[j+1] {
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				case 'n':
					v.WriteByte('\n')
				default:
					v.WriteByte(rest[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			v.WriteByte(c)
			j++
		}
		labels = append(labels, Label{lk, v.String()})
		body = rest[j+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		}
	}
	return name, labels, nil
}

// SumByName folds counter and gauge points into per-metric-name totals
// (labels stripped, label sets summed) — the shape `/statusz` reports
// per node so pollers need not parse series keys.
func SumByName(points []MetricPoint) map[string]int64 {
	if len(points) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for _, p := range points {
		if p.Kind != MetricCounter && p.Kind != MetricGauge {
			continue
		}
		name, _ := splitKey(p.Key)
		out[name] += p.Value
	}
	return out
}

// SortPoints orders points by key then kind — a deterministic order for
// golden fixtures and tests.
func SortPoints(pts []MetricPoint) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Key != pts[j].Key {
			return pts[i].Key < pts[j].Key
		}
		return pts[i].Kind < pts[j].Kind
	})
}
