package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {proto, scapegoat}).
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{k, v} }

// Counter is a monotonically increasing int64 metric. The nil receiver
// is valid and inert, so instrumented code resolves its counters once
// (possibly to nil) and increments unconditionally. A counter resolved
// through a child registry carries a parent link so increments tee into
// the aggregate series (see Registry.Child).
type Counter struct {
	v      atomic.Int64
	parent *Counter
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
		c.parent.Add(n)
	}
}

// set overwrites the count without touching the parent chain — used by
// ApplySnapshot, where points are cumulative values from a remote
// registry, not deltas.
func (c *Counter) set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins int64 metric (run end time, chain length).
type Gauge struct {
	v      atomic.Int64
	parent *Gauge
}

// Set records v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
		g.parent.Set(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a last-write-wins float64 metric (lag seconds, rates).
// Stored as atomic bits so readers never see torn values.
type FloatGauge struct{ bits atomic.Uint64 }

// Set records v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram records int64 observations (virtual-time latencies, chain
// lengths). It retains every observation up to a cap — the paper's
// response-time invariant is a statement about *each* observation, not
// a summary, so the checker needs the raw values; protocol runs observe
// a few thousand at most. Past the cap it degrades to count/sum/max.
type Histogram struct {
	mu     sync.Mutex
	vals   []int64
	sum    int64
	max    int64
	n      int64
	parent *Histogram
}

// histCap bounds retained raw observations per histogram.
const histCap = 1 << 20

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if len(h.vals) < histCap {
		h.vals = append(h.vals, v)
	}
	p := h.parent
	h.mu.Unlock()
	p.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Values returns a copy of the retained observations in record order.
func (h *Histogram) Values() []int64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.vals...)
}

// Registry holds a run's metrics, keyed by name + sorted labels. The
// nil receiver is valid: lookups return nil instruments, which are
// themselves inert — an uninstrumented run threads nil all the way
// down at zero cost.
type Registry struct {
	mu      sync.Mutex
	counts  map[string]*Counter
	gauges  map[string]*Gauge
	fgauges map[string]*FloatGauge
	hists   map[string]*Histogram
	spans   map[string]*SpanStats
	// parent and extra are set on child registries (see Child): every
	// series carries the extra labels, and int instruments tee their
	// updates into the matching parent series.
	parent *Registry
	extra  []Label
	// TrackAllocs enables allocation accounting in Span (serialized,
	// coarse; meant for the single-threaded experiment harness).
	TrackAllocs bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts:  map[string]*Counter{},
		gauges:  map[string]*Gauge{},
		fgauges: map[string]*FloatGauge{},
		hists:   map[string]*Histogram{},
		spans:   map[string]*SpanStats{},
	}
}

// Child returns a tee registry: every instrument resolved through it
// carries the extra labels in its series identity, and counter, gauge
// and histogram updates additionally flow into the matching series of
// this (parent) registry *without* the extra labels. A cluster harness
// hands each node `reg.Child(obs.L("node", id))` so the shared
// aggregate series keep working while per-node attribution comes for
// free. Nil receiver returns nil (itself a valid inert registry).
func (r *Registry) Child(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	c := NewRegistry()
	c.parent = r
	c.extra = append(append([]Label(nil), r.extra...), labels...)
	return c
}

// escapeLabel appends v with Prometheus exposition-format escaping:
// backslash, double quote, and newline are the only escaped characters
// (Go %q escapes more, producing label values other scrapers reject).
func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// key renders name{labels} with labels sorted by key, the canonical
// identity and the Prometheus series name.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		escapeLabel(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withExtra appends the registry's child labels to a lookup's labels.
func (r *Registry) withExtra(labels []Label) []Label {
	if len(r.extra) == 0 {
		return labels
	}
	return append(append([]Label(nil), labels...), r.extra...)
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, r.withExtra(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[k]
	if !ok {
		c = &Counter{parent: r.parent.Counter(name, labels...)}
		r.counts[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, r.withExtra(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{parent: r.parent.Gauge(name, labels...)}
		r.gauges[k] = g
	}
	return g
}

// FloatGauge returns (creating if needed) the float gauge name{labels}.
// Float gauges are local to their registry (no parent tee — aggregating
// last-write-wins floats across nodes is meaningless) and are excluded
// from Snapshot.
func (r *Registry) FloatGauge(name string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	k := key(name, r.withExtra(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[k]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, r.withExtra(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{parent: r.parent.Histogram(name, labels...)}
		r.hists[k] = h
	}
	return h
}

// histBuckets are the fixed virtual-time bucket bounds used for the
// Prometheus exposition (observations are virtual-time units; a 1-2-5
// decade ladder covers the protocol latencies the experiments produce).
var histBuckets = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// splitKey undoes key(): series → (name, "{labels}" or "").
func splitKey(k string) (string, string) {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i], k[i:]
	}
	return k, ""
}

// WritePrometheus dumps every metric in Prometheus text exposition
// format (version 0.0.4), deterministically ordered. Histograms render
// cumulative le buckets over the fixed virtual-time bounds plus _sum,
// _count and a non-standard _max series (the paper's response-time
// bound is on the maximum).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, c := range r.counts {
		counts[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for k, g := range r.fgauges {
		fgauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	spans := make(map[string]*SpanStats, len(r.spans))
	for k, s := range r.spans {
		spans[k] = s
	}
	r.mu.Unlock()

	var b strings.Builder
	typed := map[string]bool{}
	emitType := func(name, typ string) {
		if !typed[name] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
			typed[name] = true
		}
	}
	for _, k := range sortedKeys(counts) {
		name, labels := splitKey(k)
		emitType(name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", name, labels, counts[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		name, labels := splitKey(k)
		emitType(name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", name, labels, gauges[k].Value())
	}
	for _, k := range sortedKeys(fgauges) {
		name, labels := splitKey(k)
		emitType(name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", name, labels, strconv.FormatFloat(fgauges[k].Value(), 'g', -1, 64))
	}
	for _, k := range sortedKeys(hists) {
		name, labels := splitKey(k)
		h := hists[k]
		emitType(name, "histogram")
		vals := h.Values()
		for _, bound := range histBuckets {
			n := 0
			for _, v := range vals {
				if v <= bound {
					n++
				}
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(labels, fmt.Sprintf(`le="%d"`, bound)), n)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), h.Count())
		fmt.Fprintf(&b, "%s_sum%s %d\n", name, labels, h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", name, labels, h.Count())
		fmt.Fprintf(&b, "%s_max%s %d\n", name, labels, h.Max())
	}
	for _, k := range sortedKeys(spans) {
		name, labels := splitKey(k)
		s := spans[k]
		count, wall, allocs, bytes := s.snapshot()
		emitType(name+"_seconds_total", "counter")
		fmt.Fprintf(&b, "%s_seconds_total%s %.9f\n", name, labels, float64(wall)/1e9)
		emitType(name+"_calls_total", "counter")
		fmt.Fprintf(&b, "%s_calls_total%s %d\n", name, labels, count)
		if allocs > 0 || bytes > 0 {
			emitType(name+"_allocs_total", "counter")
			fmt.Fprintf(&b, "%s_allocs_total%s %d\n", name, labels, allocs)
			emitType(name+"_alloc_bytes_total", "counter")
			fmt.Fprintf(&b, "%s_alloc_bytes_total%s %d\n", name, labels, bytes)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels injects extra into a rendered "{...}" label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
