package obs_test

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"predctl"
	"predctl/internal/deposet"
	"predctl/internal/kmutex"
	"predctl/internal/obs"
)

// TestStressConcurrentInstrumentation runs many instrumented
// online-control runs concurrently — per-run journals, one shared
// registry — alongside DetectBatch under allocation-free spans, and
// asserts the journals lost nothing and kept per-process order. Run
// with -race (the Makefile check target does) this is the
// concurrency-soundness gate for the obs layer.
func TestStressConcurrentInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	const runs = 8
	var wg sync.WaitGroup
	errs := make(chan error, runs+1)

	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := obs.NewJournal(0)
			w := kmutex.Workload{
				N: 4, Rounds: 6, ThinkMax: 50, CS: 10, Delay: 3,
				Seed: int64(100 + i), Journal: j, Reg: reg,
				MetricLabels: []obs.Label{obs.L("run", strconv.Itoa(i))},
			}
			_, m, err := kmutex.RunScapegoat(w, i%2 == 1)
			if err != nil {
				errs <- err
				return
			}

			// Nothing lost: the ring never wrapped, and the sequence
			// numbers account for every append.
			if j.Dropped() != 0 {
				t.Errorf("run %d: dropped %d events", i, j.Dropped())
			}
			events := j.Events()
			sets := 0
			for _, e := range events {
				if e.Kind == obs.KindSet && e.Name == "cs" {
					sets++
				}
			}
			// Init plus one flip pair per CS entry, per process.
			if want := w.N + 2*m.Entries; sets != want {
				t.Errorf("run %d: %d cs events, want %d", i, sets, want)
			}

			// Nothing reordered: global Seq strictly increases in
			// retained order, and per process virtual time never goes
			// backwards.
			lastAt := map[int]int64{}
			for k, e := range events {
				if k > 0 && e.Seq <= events[k-1].Seq {
					t.Errorf("run %d: seq out of order at %d", i, k)
					break
				}
				if e.At < lastAt[e.Proc] {
					t.Errorf("run %d: P%d time went backwards at seq %d", i, e.Proc, e.Seq)
					break
				}
				lastAt[e.Proc] = e.At
			}

			var rep obs.Report
			rep.CheckScapegoatChain(j)
			if err := rep.Err(); err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}()
	}

	// DetectBatch runs concurrently with the protocol runs, inside
	// wall-only spans on the same registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(42))
		const traces = 6
		ds := make([]*predctl.Computation, traces)
		qs := make([]*predctl.Conjunction, traces)
		for k := range ds {
			d := deposet.Random(r, deposet.DefaultGen(4, 160))
			ds[k] = d
			cj := predctl.NewConjunction(d.NumProcs())
			truth := deposet.RandomTruth(r, d, 0.2)
			for p := 0; p < d.NumProcs(); p++ {
				tp := truth[p]
				cj.Add(p, "q", func(_ *predctl.Computation, s int) bool { return tp[s] })
			}
			qs[k] = cj
		}
		reg.Span("stress_batch_detect", func() {
			if _, err := predctl.DetectBatch(ds, qs, 4); err != nil {
				errs <- err
			}
		})
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The shared registry saw every run: 4 procs × 6 rounds × 8 runs.
	var entries int64
	for i := 0; i < runs; i++ {
		proto := "scapegoat"
		if i%2 == 1 {
			proto = "scapegoat-broadcast"
		}
		entries += reg.Counter("predctl_cs_entries_total",
			obs.L("proto", proto), obs.L("run", strconv.Itoa(i))).Value()
	}
	if want := int64(4 * 6 * runs); entries != want {
		t.Fatalf("registry counted %d entries, want %d", entries, want)
	}
	if reg.SpanStats("stress_batch_detect").Count() != 1 {
		t.Fatal("batch span not recorded")
	}
}
