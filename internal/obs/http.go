package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// IntrospectionConfig configures the opt-in HTTP introspection server a
// node or coordinator exposes for live debugging.
type IntrospectionConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	// Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr — tests
	// and harnesses bind first so they know the port before the run.
	Listener net.Listener
	// Reg backs /metrics (Prometheus text exposition).
	Reg *Registry
	// Status, when non-nil, backs /statusz (rendered as indented JSON).
	Status func() any
	// Healthy, when non-nil, backs /healthz: nil → 200 "ok", error →
	// 503 with the message. When nil, /healthz always reports ok.
	Healthy func() error
	// Refresh, when non-nil, runs before each /metrics and /statusz
	// render — the hook that recomputes staleness/lag gauges at scrape
	// time instead of on a timer.
	Refresh func()
	// Logf, when non-nil, receives serve errors.
	Logf func(format string, args ...any)
}

// Introspection is a running introspection server.
type Introspection struct {
	ln   net.Listener
	srv  *http.Server
	logf func(format string, args ...any)
}

// ServeIntrospection starts an HTTP server exposing /metrics, /healthz,
// /statusz and net/http/pprof under /debug/pprof/. It returns once the
// listener is bound; Close shuts it down.
func ServeIntrospection(cfg IntrospectionConfig) (*Introspection, error) {
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("obs: introspection listen %s: %w", cfg.Addr, err)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Refresh != nil {
			cfg.Refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Healthy != nil {
			if err := cfg.Healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Refresh != nil {
			cfg.Refresh()
		}
		var v any
		if cfg.Status != nil {
			v = cfg.Status()
		}
		doc, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Introspection{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		logf: cfg.Logf,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed && s.logf != nil {
			s.logf("introspection serve: %v", err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Introspection) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Introspection) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the server. Safe on nil.
func (s *Introspection) Close() {
	if s == nil {
		return
	}
	_ = s.srv.Close()
}
