package obs

import (
	"fmt"
	"strings"
)

// Timeline renders the journal as a human-readable per-event timeline,
// one line per event in virtual-time order: the quick look before
// loading the Chrome trace. limit > 0 keeps only the last `limit`
// events (the tail is where a violated invariant usually lives).
func Timeline(j *Journal, limit int) string {
	events := j.Events()
	var b strings.Builder
	if d := j.Dropped(); d > 0 {
		fmt.Fprintf(&b, "… %d earlier events dropped (ring full)\n", d)
	}
	if limit > 0 && len(events) > limit {
		fmt.Fprintf(&b, "… %d earlier events elided\n", len(events)-limit)
		events = events[len(events)-limit:]
	}
	for _, e := range events {
		fmt.Fprintf(&b, "t=%-6d P%-3d %s\n", e.At, e.Proc, describe(e))
	}
	return b.String()
}

func describe(e Event) string {
	switch e.Kind {
	case KindSend:
		return fmt.Sprintf("send → P%d (msg %d)", e.A, e.B)
	case KindRecv:
		return fmt.Sprintf("recv ← P%d (msg %d)", e.A, e.B)
	case KindBlock:
		return "block (" + e.Name + ")"
	case KindUnblock:
		return "unblock"
	case KindWork:
		return fmt.Sprintf("work %d", e.B)
	case KindSet:
		return fmt.Sprintf("set %s := %d", e.Name, e.A)
	case KindControl, KindMark:
		s := fmt.Sprintf("%s a=%d b=%d", e.Name, e.A, e.B)
		if e.VC != nil {
			s += fmt.Sprintf(" vc=%v", e.VC)
		}
		return s
	}
	return e.Kind.String()
}
