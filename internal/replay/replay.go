// Package replay re-executes a traced computation under a control
// relation: the second half of the paper's observe/controlled-replay
// debugging cycle. Each process replays its original event sequence on
// the simulator; every control tuple u ⟶C v becomes a real control
// message, sent when u's process leaves state u and received — with
// blocking — before v's process enters state v. The replay is therefore
// an execution of the controlled deposet, and restricting its trace to
// the underlying (non-control) states recovers the original computation
// with the added causality, exactly as §3 of the paper prescribes.
package replay

import (
	"fmt"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/predicate"
	"predctl/internal/sim"
)

// Config parameterizes a replay run. Correctness must not depend on the
// delays — that is the point of causality-based control — so tests
// replay under many delay seeds.
type Config struct {
	Delay     sim.DelayFn // nil means constant 1
	Seed      int64
	MaxEvents int
}

// Result is a completed controlled replay.
type Result struct {
	// Trace is the replay's own traced computation, including the control
	// messages and the states they introduce.
	Trace *sim.Trace
	// Underlying[p][k] is the original state index that replayed state
	// (p,k) corresponds to (control receives do not advance it).
	Underlying [][]int
}

type appPayload struct{ msg int }
type ctlPayload struct{ edge int }

// Run replays d under rel. It validates the relation first (an
// interfering relation would deadlock the replay by definition).
func Run(d *deposet.Deposet, rel control.Relation, cfg Config) (*Result, error) {
	if _, err := control.Extend(d, rel); err != nil {
		return nil, err
	}
	n := d.NumProcs()

	// Per process and event: control edges to receive before the event,
	// and edges whose control message is sent right after it.
	recvBefore := make([][][]int, n)
	sendAfter := make([][][]int, n)
	for p := 0; p < n; p++ {
		recvBefore[p] = make([][]int, d.Len(p))
		sendAfter[p] = make([][]int, d.Len(p))
	}
	for i, e := range rel {
		recvBefore[e.To.P][e.To.K] = append(recvBefore[e.To.P][e.To.K], i)
		sendAfter[e.From.P][e.From.K+1] = append(sendAfter[e.From.P][e.From.K+1], i)
	}

	underlying := make([][]int, n)
	k := sim.New(sim.Config{
		Procs:     n,
		Delay:     cfg.Delay,
		Seed:      cfg.Seed,
		Trace:     true,
		MaxEvents: cfg.MaxEvents,
	})
	bodies := make([]func(*sim.Proc), n)
	for p := 0; p < n; p++ {
		p := p
		bodies[p] = func(proc *sim.Proc) {
			r := &replayer{
				proc:       proc,
				d:          d,
				appBuf:     map[int]bool{},
				ctlArrived: map[int]bool{},
				underlying: []int{0}, // initial state
			}
			r.applyVars(0)
			for e := 1; e < d.Len(p); e++ {
				for _, id := range recvBefore[p][e] {
					r.waitCtl(id)
				}
				r.step(e)
				r.applyVars(e)
				for _, id := range sendAfter[p][e] {
					proc.Send(rel[id].To.P, ctlPayload{edge: id})
					r.noteEvent() // the control send is an extra event
				}
			}
			underlying[p] = r.underlying
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return &Result{Trace: tr, Underlying: underlying}, nil
}

// replayer drives one process through its original event sequence. The
// invariant tying the replayed trace to the original computation: every
// simulated event appends exactly one entry to `underlying`, labelling
// the new replayed state with the process's current *logical* original
// state (cur). Messages may physically arrive earlier than their
// original receive event (they are buffered); the logical state advances
// only when the original event is executed.
type replayer struct {
	proc       *sim.Proc
	d          *deposet.Deposet
	appBuf     map[int]bool // original message ids received but not yet consumed
	ctlArrived map[int]bool // control edge ids received
	underlying []int
	cur        int // current logical original state index
}

// noteEvent records one more traced state at the current logical state.
func (r *replayer) noteEvent() {
	r.underlying = append(r.underlying, r.cur)
}

// step performs original event e of the process.
func (r *replayer) step(e int) {
	p := r.proc.ID()
	switch {
	case r.d.SendAt(p, e) >= 0:
		m := r.d.Messages()[r.d.SendAt(p, e)]
		if m.Received() {
			r.proc.Send(m.ToP, appPayload{msg: r.d.SendAt(p, e)})
		} else {
			// The original receiver never took this message (it was in
			// flight at the end); a local event keeps the state count
			// aligned without polluting another process's inbox.
			r.proc.Tick()
		}
		r.cur = e
		r.noteEvent()
	case r.d.RecvAt(p, e) >= 0:
		r.waitApp(r.d.RecvAt(p, e), e)
	default:
		r.proc.Tick()
		r.cur = e
		r.noteEvent()
	}
}

// applyVars copies the original state's variable snapshot onto the
// current replayed state.
func (r *replayer) applyVars(e int) {
	if !r.d.HasVars() {
		return
	}
	raw := r.d.Raw()
	if raw.Vars[r.proc.ID()] == nil {
		return
	}
	for name, v := range raw.Vars[r.proc.ID()][e] {
		r.proc.Let(name, v)
	}
}

// recvOne consumes the next incoming message. It returns true when that
// message is the awaited application message wantMsg (pass -1 when only
// control arrivals are awaited); anything else is buffered or marked.
func (r *replayer) recvOne(wantMsg int) bool {
	_, raw := r.proc.Recv()
	switch m := raw.(type) {
	case appPayload:
		if m.msg == wantMsg {
			return true
		}
		r.appBuf[m.msg] = true
	case ctlPayload:
		r.ctlArrived[m.edge] = true
	default:
		panic(fmt.Sprintf("replay: unexpected payload %T", raw))
	}
	r.noteEvent()
	return false
}

// waitApp executes original receive event e, consuming message msg.
func (r *replayer) waitApp(msg, e int) {
	if r.appBuf[msg] {
		// The message physically arrived earlier and was buffered; the
		// logical receive is materialized as a local event.
		delete(r.appBuf, msg)
		r.proc.Tick()
		r.cur = e
		r.noteEvent()
		return
	}
	for !r.recvOne(msg) {
	}
	r.cur = e
	r.noteEvent()
}

// waitCtl blocks until the given control edge's message has arrived.
func (r *replayer) waitCtl(edge int) {
	for !r.ctlArrived[edge] {
		r.recvOne(-1)
	}
}

// VerifyDisjunction checks that the replayed computation satisfies
// B = ∨ lᵢ at every consistent global state, evaluating the local
// predicates through the underlying-state mapping. It returns the
// violating cut if any.
func VerifyDisjunction(res *Result, d *deposet.Deposet, dj *predicate.Disjunction) (deposet.Cut, bool) {
	cut, bad := detect.PossiblyTruth(res.Trace.D, func(p, k int) bool {
		return !dj.Holds(d, p, res.Underlying[p][k])
	})
	return cut, !bad
}
