package replay

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/offline"
	"predctl/internal/predicate"
	"predctl/internal/sim"
)

func TestReplayUncontrolledPreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := deposet.Random(r, deposet.DefaultGen(3, 15))
	res, err := Run(d, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The replay may add local events (a message physically arriving
	// before its logical receive is buffered, then materialized), but
	// never drops any: the underlying mapping is monotone and touches
	// every original state.
	for p := 0; p < d.NumProcs(); p++ {
		if res.Trace.D.Len(p) < d.Len(p) {
			t.Fatalf("process %d: replayed %d states, original %d",
				p, res.Trace.D.Len(p), d.Len(p))
		}
		u := res.Underlying[p]
		if len(u) != res.Trace.D.Len(p) {
			t.Fatalf("process %d: mapping has %d entries for %d states", p, len(u), res.Trace.D.Len(p))
		}
		next := 0
		for _, x := range u {
			if x == next {
				next++
			} else if x > next || x < next-1 {
				t.Fatalf("process %d: mapping not monotone-complete: %v", p, u)
			}
		}
		if next != d.Len(p) {
			t.Fatalf("process %d: mapping misses states: %v", p, u)
		}
	}
	// Received messages match one-to-one.
	want := 0
	for _, m := range d.Messages() {
		if m.Received() {
			want++
		}
	}
	got := 0
	for _, m := range res.Trace.D.Messages() {
		if m.Received() {
			got++
		}
	}
	if got != want {
		t.Fatalf("replayed %d received messages, original %d", got, want)
	}
	// Underlying mapping ends at the original final state.
	for p := 0; p < d.NumProcs(); p++ {
		u := res.Underlying[p]
		if u[len(u)-1] != d.Len(p)-1 {
			t.Fatalf("process %d: final underlying = %d", p, u[len(u)-1])
		}
	}
}

func TestReplayRejectsInterference(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(0)
	b.Step(0)
	b.Step(1)
	d := b.MustBuild()
	rel := control.Relation{{From: deposet.StateID{P: 0, K: 2}, To: deposet.StateID{P: 0, K: 1}}}
	if _, err := Run(d, rel, Config{}); !errors.Is(err, control.ErrInterference) {
		t.Fatalf("err = %v, want interference", err)
	}
}

func TestReplayEnforcesControl(t *testing.T) {
	// Two independent processes; force (0,1) before (1,1): in every
	// replay the control message must order P1's first event after P0's.
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(0)
	b.Step(1)
	b.Step(1)
	d := b.MustBuild()
	rel := control.Relation{{From: deposet.StateID{P: 0, K: 1}, To: deposet.StateID{P: 1, K: 1}}}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(d, rel, Config{Seed: seed, Delay: sim.UniformDelay(1, 20)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rd := res.Trace.D
		// Find the replayed state of P1 whose underlying state is 1: it
		// must be causally after P0's exit of underlying state 1.
		var p1entersK = -1
		for k, u := range res.Underlying[1] {
			if u == 1 {
				p1entersK = k
				break
			}
		}
		var p0exitsK = -1
		for k, u := range res.Underlying[0] {
			if u == 2 {
				p0exitsK = k
				break
			}
		}
		if p1entersK < 0 || p0exitsK < 0 {
			t.Fatalf("seed %d: mapping incomplete", seed)
		}
		if !rd.HB(deposet.StateID{P: 0, K: p0exitsK - 1}, deposet.StateID{P: 1, K: p1entersK}) {
			// From exited means original state 1 passed, i.e. the replayed
			// state just before the one mapping to underlying 2.
			t.Fatalf("seed %d: control causality missing in replay", seed)
		}
	}
}

func TestReplayVars(t *testing.T) {
	b := deposet.NewBuilder(1)
	b.Let(0, "x", 1)
	b.Step(0)
	b.Let(0, "x", 2)
	d := b.MustBuild()
	res, err := Run(d, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Trace.D.Var(deposet.StateID{P: 0, K: 1}, "x")
	if !ok || v != 2 {
		t.Fatalf("replayed x = %d,%v", v, ok)
	}
	v, ok = res.Trace.D.Var(deposet.StateID{P: 0, K: 0}, "x")
	if !ok || v != 1 {
		t.Fatalf("replayed initial x = %d,%v", v, ok)
	}
}

// The end-to-end property closing the paper's debugging loop: for random
// computations and predicates, synthesize a controller off-line, replay
// under many random delays, and verify the replayed computation
// satisfies B — or, if infeasible, that replaying is not attempted.
func TestControlledReplayProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := deposet.Random(r, deposet.DefaultGen(2+r.Intn(3), 4+r.Intn(14)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.4+r.Float64()*0.4))
		ctl, err := offline.Control(d, dj, offline.Options{})
		if errors.Is(err, offline.ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			res, err := Run(d, ctl.Relation, Config{
				Seed:  seed ^ int64(trial*7919),
				Delay: sim.UniformDelay(1, 12),
			})
			if err != nil {
				t.Logf("seed %d: replay failed: %v", seed, err)
				return false
			}
			if cut, ok := VerifyDisjunction(res, d, dj); !ok {
				t.Logf("seed %d: replay violates B at %v", seed, cut)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Replaying without control must exhibit the bug in at least some runs
// of a contrived always-violating computation (sanity that verification
// has teeth).
func TestReplayVerificationHasTeeth(t *testing.T) {
	b := deposet.NewBuilder(2)
	b.Step(0)
	b.Step(0)
	b.Step(1)
	b.Step(1)
	d := b.MustBuild()
	// l0 false in the middle of P0, l1 false in the middle of P1 — with
	// no control, the all-false cut is reachable.
	dj := predicate.DisjunctionFromTruth([][]bool{
		{true, false, true},
		{true, false, true},
	})
	res, err := Run(d, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := VerifyDisjunction(res, d, dj); ok {
		t.Fatal("verification passed on an uncontrolled violating computation")
	}
	// And the synthesized controller fixes it.
	ctl, err := offline.Control(d, dj, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(d, ctl.Relation, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cut, ok := VerifyDisjunction(res, d, dj); !ok {
		t.Fatalf("controlled replay still violates B at %v", cut)
	}
}
