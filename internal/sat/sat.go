// Package sat provides CNF formulas, a brute-force solver, a random
// instance generator, and the paper's Figure 1 reduction from SAT to
// Satisfying Global Sequence Detection (SGSD), which establishes that
// off-line predicate control for general predicates is NP-hard (Lemma 1,
// Theorem 1).
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Clause is a disjunction of literals. A positive literal v (1-based) is
// the variable xᵥ, a negative literal −v is ¬xᵥ.
type Clause []int

// Formula is a CNF formula over variables x₁..x_NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literal ranges.
func (f Formula) Validate() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if v < 1 || v > f.NumVars {
				return fmt.Errorf("sat: clause %d: literal %d out of range", i, lit)
			}
		}
	}
	return nil
}

// Eval evaluates the formula under assign (assign[v-1] is the value of xᵥ).
func (f Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, lit := range c {
			if lit > 0 && assign[lit-1] || lit < 0 && !assign[-lit-1] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func (f Formula) String() string {
	var b strings.Builder
	for i, c := range f.Clauses {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteByte('(')
		for j, lit := range c {
			if j > 0 {
				b.WriteString(" ∨ ")
			}
			if lit < 0 {
				fmt.Fprintf(&b, "¬x%d", -lit)
			} else {
				fmt.Fprintf(&b, "x%d", lit)
			}
		}
		b.WriteByte(')')
	}
	if len(f.Clauses) == 0 {
		return "true"
	}
	return b.String()
}

// BruteForce searches all 2^NumVars assignments and returns a satisfying
// one if any exists.
func BruteForce(f Formula) ([]bool, bool) {
	if f.NumVars > 30 {
		panic("sat: brute force limited to 30 variables")
	}
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := range assign {
			assign[v] = mask&(1<<v) != 0
		}
		if f.Eval(assign) {
			return assign, true
		}
	}
	return nil, false
}

// RandomKSAT generates a random formula with the given number of
// variables and clauses, each clause containing k distinct literals.
func RandomKSAT(r *rand.Rand, vars, clauses, k int) Formula {
	if k > vars {
		panic("sat: clause width exceeds variable count")
	}
	f := Formula{NumVars: vars}
	for i := 0; i < clauses; i++ {
		perm := r.Perm(vars)[:k]
		c := make(Clause, k)
		for j, v := range perm {
			c[j] = v + 1
			if r.Intn(2) == 0 {
				c[j] = -c[j]
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
