package sat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/detect"
)

func TestEval(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {2, 3}}}
	cases := []struct {
		assign []bool
		want   bool
	}{
		{[]bool{true, false, false}, false}, // second clause fails
		{[]bool{true, false, true}, true},
		{[]bool{false, true, false}, false}, // first clause fails
		{[]bool{true, true, false}, true},
	}
	for _, c := range cases {
		if got := f.Eval(c.assign); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.assign, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good formula rejected: %v", err)
	}
	for _, bad := range []Formula{
		{NumVars: 2, Clauses: []Clause{{}}},
		{NumVars: 2, Clauses: []Clause{{3}}},
		{NumVars: 2, Clauses: []Clause{{0}}},
		{NumVars: 2, Clauses: []Clause{{-3}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad formula accepted: %v", bad)
		}
	}
}

func TestString(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{1, -2}, {2}}}
	if got, want := f.String(), "(x1 ∨ ¬x2) ∧ (x2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Formula{}).String(); got != "true" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBruteForce(t *testing.T) {
	sat := Formula{NumVars: 2, Clauses: []Clause{{1}, {-2}}}
	assign, ok := BruteForce(sat)
	if !ok || !sat.Eval(assign) {
		t.Fatal("satisfiable formula not solved")
	}
	unsat := Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, ok := BruteForce(unsat); ok {
		t.Fatal("unsatisfiable formula solved")
	}
}

func TestRandomKSATShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := RandomKSAT(r, 5, 8, 3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 8 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause width = %d", len(c))
		}
		seen := map[int]bool{}
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if seen[v] {
				t.Fatal("duplicate variable in clause")
			}
			seen[v] = true
		}
	}
}

func TestReduceRejectsInvalid(t *testing.T) {
	if _, err := Reduce(Formula{NumVars: 1, Clauses: []Clause{{5}}}); err == nil {
		t.Fatal("invalid formula accepted")
	}
}

func TestReductionShape(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {3}}}
	red, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if red.D.NumProcs() != 4 {
		t.Fatalf("procs = %d", red.D.NumProcs())
	}
	for v := 0; v < 3; v++ {
		if red.D.Len(v) != 2 {
			t.Fatalf("variable process %d has %d states", v, red.D.Len(v))
		}
	}
	if red.D.Len(red.ExtraProc) != 3 {
		t.Fatalf("extra process has %d states", red.D.Len(red.ExtraProc))
	}
	// B holds at ⊥ and ⊤ regardless of b (x_{m+1} is true there).
	if !red.B.Eval(red.D, red.D.BottomCut()) || !red.B.Eval(red.D, red.D.TopCut()) {
		t.Fatal("B must hold at ⊥ and ⊤")
	}
}

// The heart of Lemma 1: the formula is satisfiable iff the reduction's
// SGSD instance has a satisfying global sequence, under both sequence
// semantics (the reduction never needs simultaneous advances).
func TestReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vars := 1 + r.Intn(5)
		width := 1 + r.Intn(vars)
		formula := RandomKSAT(r, vars, 1+r.Intn(8), width)
		_, satisfiable := BruteForce(formula)

		red, err := Reduce(formula)
		if err != nil {
			return false
		}
		for _, simultaneous := range []bool{false, true} {
			seq, ok := detect.SGSD(red.D, red.B, simultaneous)
			if ok != satisfiable {
				return false
			}
			if !ok {
				continue
			}
			if err := red.D.ValidateSequence(seq); err != nil {
				return false
			}
			assign, found := red.Assignment(seq)
			if !found || !formula.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBruteForcePanicsOnHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BruteForce(Formula{NumVars: 31})
}

func TestRandomKSATPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomKSAT(rand.New(rand.NewSource(1)), 2, 1, 3)
}
