package sat

import (
	"fmt"

	"predctl/internal/deposet"
	"predctl/internal/predicate"
)

// Reduction is the paper's Figure 1 construction mapping a SAT instance
// to an SGSD instance. For each variable xᵥ there is a process with two
// states (xᵥ = false at ⊥, then xᵥ = true); one extra process carries
// x_{m+1} through true → false → true. The predicate is B = b ∨ x_{m+1}.
// A global sequence satisfying B must cross the extra process's false
// state at a cut whose variable-process states form a satisfying
// assignment of b; conversely, any satisfying assignment yields such a
// sequence (moving one variable process at a time while x_{m+1} is true).
type Reduction struct {
	Formula Formula
	D       *deposet.Deposet
	B       predicate.Expr
	// ExtraProc is the index of the x_{m+1} process (== Formula.NumVars).
	ExtraProc int
}

// Reduce builds the Figure 1 instance for f.
func Reduce(f Formula) (*Reduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	m := f.NumVars
	b := deposet.NewBuilder(m + 1)
	for v := 0; v < m; v++ {
		b.Step(v) // state 0: xᵥ false; state 1: xᵥ true
	}
	b.Step(m) // state 0: x_{m+1} true; state 1: false
	b.Step(m) // state 2: true again
	d, err := b.Build()
	if err != nil {
		return nil, err
	}

	// b as a predicate over the variable processes: xᵥ holds at state 1.
	clauses := make([]predicate.Expr, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]predicate.Expr, len(c))
		for j, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			wantState := 1
			if lit < 0 {
				wantState = 0
			}
			ws := wantState
			lits[j] = predicate.Local(v-1, fmt.Sprintf("x%d=%d", v, ws),
				func(_ *deposet.Deposet, k int) bool { return k == ws })
		}
		clauses[i] = predicate.Or(lits...)
	}
	xm1 := predicate.Local(m, "x_{m+1}",
		func(_ *deposet.Deposet, k int) bool { return k != 1 })
	return &Reduction{
		Formula:   f,
		D:         d,
		B:         predicate.Or(predicate.And(clauses...), xm1),
		ExtraProc: m,
	}, nil
}

// Assignment extracts a satisfying assignment of the formula from a
// satisfying global sequence of the reduction: the variable-process
// states at the cut where the extra process is false.
func (r *Reduction) Assignment(seq deposet.Sequence) ([]bool, bool) {
	for _, g := range seq {
		if g[r.ExtraProc] == 1 {
			assign := make([]bool, r.Formula.NumVars)
			for v := range assign {
				assign[v] = g[v] == 1
			}
			return assign, true
		}
	}
	return nil, false
}
