package deposet

import (
	"predctl/internal/par"

	"predctl/internal/vclock"
)

// ParallelClockCutoff is the minimum total state count at which Build
// shards vector-clock construction across workers. Below it the
// sequential fixpoint wins outright: a pass over a few thousand states
// costs less than the barrier synchronization between parallel passes.
const ParallelClockCutoff = 4096

// clockWorkers applies the cutoff heuristic: parallel workers for
// computations of at least ParallelClockCutoff total states, 1 below.
func clockWorkers(lens []int) int {
	total := 0
	for _, l := range lens {
		total += l
	}
	if total < ParallelClockCutoff {
		return 1
	}
	return par.Workers(0, len(lens))
}

// BuildParallel is Build with an explicit worker count for vector-clock
// construction: workers ≤ 0 resolves to GOMAXPROCS, 1 forces the
// sequential fixpoint, and any value is clamped to the process count.
// The ParallelClockCutoff heuristic does not apply — callers choosing
// BuildParallel have decided; Build is the right default.
func (b *Builder) BuildParallel(workers int) (*Deposet, error) {
	return b.build(par.Workers(workers, b.n))
}

// initClockRows allocates the flat clock arena and seeds every ⊥p. Rows
// other than ⊥ are written (predecessor copy + merge) before any read,
// so only the ⊥ rows need the None fill.
func (d *Deposet) initClockRows() (remaining int) {
	n := len(d.lens)
	d.clocks = vclock.NewArena(d.lens)
	for p := 0; p < n; p++ {
		row := d.clocks.Row(p, 0)
		for i := range row {
			row[i] = vclock.None
		}
		row[p] = 0
		remaining += d.lens[p] - 1
	}
	return remaining
}

// computeClocksParallel assigns vector clocks with processes sharded
// across workers, in synchronized passes over a snapshot of the
// previous pass's progress.
//
// Within a pass, worker w owns a contiguous process shard and advances
// each owned process as far as possible: the clock of state (p, e)
// needs the clock of (p, e−1) — owned, written this pass — and, for a
// receive, the sender's pre-send state (q, SendEvent−1) — readable only
// if q's progress *at the last barrier* (the snap array) covers it, or
// q == p (a self-message's send always precedes its receive locally).
// Writes stay inside the shard (arena clock rows and done entries of
// owned processes); cross-shard reads touch only states published before
// the last barrier, so a pass never races with itself. A pass that advances
// nothing with states remaining means causal precedence is cyclic,
// exactly as in the sequential fixpoint.
//
// The pass count is bounded by the longest chain of cross-process
// message dependencies — the same bound as the sequential outer loop —
// while each pass does its O(states·n) clock work in parallel shards.
func (d *Deposet) computeClocksParallel(workers int) error {
	n := len(d.lens)
	remaining := d.initClockRows()
	loop := par.NewLoop(n, workers)
	defer loop.Close()
	done := make([]int, n)                  // done[p]: highest state index of p clocked
	snap := make([]int, n)                  // done as of the previous barrier
	advanced := make([]int, loop.Workers()) // per-worker advance counts (owned slots)
	for remaining > 0 {
		copy(snap, done)
		loop.Round(n, func(w, lo, hi int) {
			count := 0
			for p := lo; p < hi; p++ {
				for done[p] < d.lens[p]-1 {
					e := done[p] + 1
					mi := d.recvMsg[p][e]
					if mi >= 0 {
						m := d.msgs[mi]
						if m.SendEvent-1 > snap[m.FromP] && m.FromP != p {
							break // sender state not published yet
						}
					}
					// In-place write: rows of owned processes are disjoint
					// arena ranges, and the cross-shard merge source was
					// published before the last barrier.
					row := d.clocks.Row(p, e)
					copy(row, d.clocks.Row(p, e-1))
					if mi >= 0 {
						m := d.msgs[mi]
						row.Merge(d.clocks.Row(m.FromP, m.SendEvent-1))
					}
					row[p] = int32(e)
					done[p] = e
					count++
				}
			}
			advanced[w] = count
		})
		progress := 0
		for _, c := range advanced {
			progress += c
		}
		if progress == 0 {
			return ErrCyclic
		}
		remaining -= progress
	}
	return nil
}
