package deposet

import (
	"fmt"
	"strconv"
	"strings"
)

// Cut is a global state: one local state index per process. Cut[p] = k
// selects state (p, k).
type Cut []int

// Clone returns an independent copy of g.
func (g Cut) Clone() Cut {
	h := make(Cut, len(g))
	copy(h, g)
	return h
}

// Equal reports whether g and h select the same states.
func (g Cut) Equal(h Cut) bool {
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i] != h[i] {
			return false
		}
	}
	return true
}

// Leq reports g ≤ h in the lattice order (component-wise).
func (g Cut) Leq(h Cut) bool {
	for i := range g {
		if g[i] > h[i] {
			return false
		}
	}
	return true
}

// Key returns a compact map key for g.
func (g Cut) Key() string {
	var b strings.Builder
	for i, k := range g {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
	return b.String()
}

func (g Cut) String() string { return "⟨" + g.Key() + "⟩" }

// BottomCut returns the initial global state ⊥ = (⊥0, …, ⊥n-1).
func (d *Deposet) BottomCut() Cut { return make(Cut, d.NumProcs()) }

// TopCut returns the final global state ⊤.
func (d *Deposet) TopCut() Cut {
	g := make(Cut, d.NumProcs())
	for p := range g {
		g[p] = d.lens[p] - 1
	}
	return g
}

// InRange reports whether g selects a valid state on every process.
func (d *Deposet) InRange(g Cut) bool {
	if len(g) != d.NumProcs() {
		return false
	}
	for p, k := range g {
		if k < 0 || k >= d.lens[p] {
			return false
		}
	}
	return true
}

// Consistent reports whether the global state g is consistent: its
// frontier states are pairwise concurrent. Using the vector-clock
// convention, g is consistent iff for all i ≠ j, vc[j][g[j]][i] < g[i]
// (no frontier state causally precedes another).
func (d *Deposet) Consistent(g Cut) bool {
	n := d.NumProcs()
	for j := 0; j < n; j++ {
		v := d.clocks.Row(j, g[j])
		for i := 0; i < n; i++ {
			if i != j && int(v[i]) >= g[i] {
				return false
			}
		}
	}
	return true
}

// States returns the frontier states selected by g.
func (d *Deposet) States(g Cut) []StateID {
	ss := make([]StateID, len(g))
	for p, k := range g {
		ss[p] = StateID{p, k}
	}
	return ss
}

// ForEachConsistentCut enumerates every consistent global state exactly
// once, in breadth-first lattice order starting at ⊥, calling f for each.
// Enumeration stops early if f returns false. The number of consistent
// cuts can be exponential in n; this is intended for small computations
// (exhaustive verification, debugging).
func (d *Deposet) ForEachConsistentCut(f func(Cut) bool) {
	n := d.NumProcs()
	start := d.BottomCut()
	if !d.Consistent(start) {
		// ⊥ is always consistent in a valid deposet; defensive.
		return
	}
	seen := map[string]bool{start.Key(): true}
	queue := []Cut{start}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		if !f(g) {
			return
		}
		for p := 0; p < n; p++ {
			if g[p]+1 >= d.lens[p] {
				continue
			}
			h := g.Clone()
			h[p]++
			if key := h.Key(); !seen[key] && d.Consistent(h) {
				seen[key] = true
				queue = append(queue, h)
			}
		}
	}
}

// CountConsistentCuts returns the size of the lattice Gc.
func (d *Deposet) CountConsistentCuts() int {
	c := 0
	d.ForEachConsistentCut(func(Cut) bool { c++; return true })
	return c
}

// Sequence is a global sequence: consistent global states from ⊥ to ⊤
// where each step advances every process by at most one state and at
// least one process advances (pure stutter repetitions are permitted by
// the model but never produced by this package's searches).
type Sequence []Cut

// ValidateSequence checks that seq is a global sequence of d.
func (d *Deposet) ValidateSequence(seq Sequence) error {
	if len(seq) == 0 {
		return fmt.Errorf("deposet: empty sequence")
	}
	if !seq[0].Equal(d.BottomCut()) {
		return fmt.Errorf("deposet: sequence starts at %v, not ⊥", seq[0])
	}
	if !seq[len(seq)-1].Equal(d.TopCut()) {
		return fmt.Errorf("deposet: sequence ends at %v, not ⊤", seq[len(seq)-1])
	}
	for i, g := range seq {
		if !d.InRange(g) {
			return fmt.Errorf("deposet: step %d out of range: %v", i, g)
		}
		if !d.Consistent(g) {
			return fmt.Errorf("deposet: step %d inconsistent: %v", i, g)
		}
		if i == 0 {
			continue
		}
		prev := seq[i-1]
		for p := range g {
			if g[p] != prev[p] && g[p] != prev[p]+1 {
				return fmt.Errorf("deposet: step %d advances process %d from %d to %d",
					i, p, prev[p], g[p])
			}
		}
	}
	return nil
}

// SomeSequence returns one global sequence of d (advancing a single
// process per step, chosen smallest-first). A valid deposet always has
// one. Useful as a linearization and in tests.
func (d *Deposet) SomeSequence() Sequence {
	g := d.BottomCut()
	seq := Sequence{g.Clone()}
	top := d.TopCut()
	for !g.Equal(top) {
		advanced := false
		for p := range g {
			if g[p] < top[p] {
				g[p]++
				if d.Consistent(g) {
					seq = append(seq, g.Clone())
					advanced = true
					break
				}
				g[p]--
			}
		}
		if !advanced {
			// Cannot happen in a valid deposet; avoid an infinite loop.
			panic("deposet: stuck constructing a global sequence")
		}
	}
	return seq
}
