package deposet

import "sort"

// varTable holds the state-variable snapshots of a computation with
// interned names and copy-on-write sharing: variable names are mapped to
// dense slots once per computation, and the snapshot of a state that
// updates nothing is the same *varSnap as its predecessor's. A
// computation of S states with U variable updates therefore carries
// O(U) snapshots instead of S maps.
type varTable struct {
	index map[string]int // interned name → slot
	names []string       // slot → name
	snaps [][]*varSnap   // per process, per state; nil entry = no vars set
}

// varSnap is one immutable snapshot: vals[slot] is the value, valid only
// where set[slot]. Snapshots are shared between states; never mutate one
// after it is published.
type varSnap struct {
	vals []int
	set  []bool
}

// lookup returns the value of name at state (p, k), if set there.
func (t *varTable) lookup(p, k int, name string) (int, bool) {
	slot, ok := t.index[name]
	if !ok {
		return 0, false
	}
	sn := t.snaps[p][k]
	if sn == nil || !sn.set[slot] {
		return 0, false
	}
	return sn.vals[slot], true
}

// clone returns a mutable copy of sn (or a fresh empty snapshot of the
// given width when sn is nil).
func (sn *varSnap) clone(width int) *varSnap {
	next := &varSnap{vals: make([]int, width), set: make([]bool, width)}
	if sn != nil {
		copy(next.vals, sn.vals)
		copy(next.set, sn.set)
	}
	return next
}

// equalMap reports whether sn represents exactly the variable bindings
// of m under the table's interning.
func (t *varTable) equalMap(sn *varSnap, m map[string]int) bool {
	count := 0
	if sn != nil {
		for slot, ok := range sn.set {
			if !ok {
				continue
			}
			count++
			if v, in := m[t.names[slot]]; !in || v != sn.vals[slot] {
				return false
			}
		}
	}
	return count == len(m)
}

// varTableFromLets builds the table from a Builder's per-state update
// maps: names are interned in one pass (sorted, so slot assignment is
// deterministic), then each process's snapshots are constructed
// copy-on-write — only states with updates allocate.
func varTableFromLets(lets []map[int]map[string]int, lens []int) *varTable {
	t := &varTable{index: make(map[string]int)}
	for _, byState := range lets {
		for _, upd := range byState {
			for name := range upd {
				if _, ok := t.index[name]; !ok {
					t.index[name] = 0 // slot assigned below
					t.names = append(t.names, name)
				}
			}
		}
	}
	sort.Strings(t.names)
	for slot, name := range t.names {
		t.index[name] = slot
	}
	width := len(t.names)
	t.snaps = make([][]*varSnap, len(lens))
	for p, l := range lens {
		rows := make([]*varSnap, l)
		var cur *varSnap
		for k := 0; k < l; k++ {
			if upd := lets[p][k]; len(upd) > 0 {
				cur = cur.clone(width)
				for name, v := range upd {
					slot := t.index[name]
					cur.vals[slot] = v
					cur.set[slot] = true
				}
			}
			rows[k] = cur
		}
		t.snaps[p] = rows
	}
	return t
}

// varTableFromMaps builds the table from explicit per-state snapshot
// maps (the Raw representation): consecutive states with identical
// bindings share one snapshot.
func varTableFromMaps(vars [][]map[string]int, lens []int) *varTable {
	t := &varTable{index: make(map[string]int)}
	for _, byState := range vars {
		for _, m := range byState {
			for name := range m {
				if _, ok := t.index[name]; !ok {
					t.index[name] = 0
					t.names = append(t.names, name)
				}
			}
		}
	}
	sort.Strings(t.names)
	for slot, name := range t.names {
		t.index[name] = slot
	}
	width := len(t.names)
	t.snaps = make([][]*varSnap, len(lens))
	for p, l := range lens {
		rows := make([]*varSnap, l)
		var cur *varSnap
		for k := 0; k < l; k++ {
			var m map[string]int
			if vars[p] != nil {
				m = vars[p][k]
			}
			if !t.equalMap(cur, m) {
				cur = &varSnap{vals: make([]int, width), set: make([]bool, width)}
				for name, v := range m {
					slot := t.index[name]
					cur.vals[slot] = v
					cur.set[slot] = true
				}
			}
			rows[k] = cur
		}
		t.snaps[p] = rows
	}
	return t
}

// maps materializes the table back into explicit per-state snapshot
// maps, for the Raw representation. States sharing a snapshot share the
// returned map object.
func (t *varTable) maps(lens []int) [][]map[string]int {
	built := make(map[*varSnap]map[string]int)
	out := make([][]map[string]int, len(lens))
	for p, l := range lens {
		out[p] = make([]map[string]int, l)
		for k := 0; k < l; k++ {
			sn := t.snaps[p][k]
			if sn == nil {
				out[p][k] = map[string]int{}
				continue
			}
			m, ok := built[sn]
			if !ok {
				m = make(map[string]int)
				for slot, set := range sn.set {
					if set {
						m[t.names[slot]] = sn.vals[slot]
					}
				}
				built[sn] = m
			}
			out[p][k] = m
		}
	}
	return out
}
