package deposet

import "math/rand"

// GenConfig parameterizes Random. The zero value is not useful; see
// DefaultGen.
type GenConfig struct {
	Procs  int     // number of processes (≥ 1)
	Events int     // total number of events to generate (≥ 0)
	PSend  float64 // probability a generated event is a send
	PRecv  float64 // probability a generated event delivers a pending message
}

// DefaultGen returns a generator configuration producing computations with
// a healthy mix of local events and messages.
func DefaultGen(procs, events int) GenConfig {
	return GenConfig{Procs: procs, Events: events, PSend: 0.3, PRecv: 0.4}
}

// Random generates a random valid deposet. Construction order is a
// linearization, so the result is always acyclic. Messages still in
// flight at the end remain unreceived (allowed by the model).
func Random(r *rand.Rand, cfg GenConfig) *Deposet {
	return RandomBuilder(r, cfg).MustBuild()
}

// RandomBuilder generates the same computation as Random but returns
// the populated Builder, so one recorded construction can be built
// repeatedly (e.g. sequentially and with several worker counts).
func RandomBuilder(r *rand.Rand, cfg GenConfig) *Builder {
	b := NewBuilder(cfg.Procs)
	type flight struct {
		h  MsgHandle
		to int
	}
	var pending []flight
	for i := 0; i < cfg.Events; i++ {
		x := r.Float64()
		switch {
		case x < cfg.PRecv && len(pending) > 0:
			j := r.Intn(len(pending))
			f := pending[j]
			pending[j] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			b.Recv(f.to, f.h)
		case x < cfg.PRecv+cfg.PSend && cfg.Procs > 1:
			from := r.Intn(cfg.Procs)
			to := r.Intn(cfg.Procs - 1)
			if to >= from {
				to++
			}
			_, h := b.Send(from)
			pending = append(pending, flight{h, to})
		default:
			b.Step(r.Intn(cfg.Procs))
		}
	}
	return b
}

// RandomTruth generates a random local-predicate truth assignment for d:
// truth[p][k] is the truth of lp at state (p,k). density is the
// probability of true.
func RandomTruth(r *rand.Rand, d *Deposet, density float64) [][]bool {
	truth := make([][]bool, d.NumProcs())
	for p := range truth {
		truth[p] = make([]bool, d.Len(p))
		for k := range truth[p] {
			truth[p][k] = r.Float64() < density
		}
	}
	return truth
}
