package deposet

import (
	"math/rand"
	"testing"
)

// The causality hot paths must stay allocation-free: HB is one arena
// load and a compare, Clock is offset arithmetic returning an alias into
// the flat clock arena. These pins fail if either ever grows a per-call
// allocation (a clock clone, a boxed return, …).

func TestHBAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := Random(r, DefaultGen(8, 400))
	s := StateID{P: 0, K: d.Len(0) / 2}
	u := StateID{P: 7, K: d.Len(7) - 1}
	var sink bool
	if n := testing.AllocsPerRun(100, func() {
		sink = d.HB(s, u)
		sink = d.HB(u, s)
	}); n != 0 {
		t.Errorf("HB allocates %.1f per run, want 0", n)
	}
	_ = sink
}

func TestClockAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := Random(r, DefaultGen(8, 400))
	s := StateID{P: 3, K: d.Len(3) / 2}
	var sink int32
	if n := testing.AllocsPerRun(100, func() {
		sink = d.Clock(s)[5]
	}); n != 0 {
		t.Errorf("Clock allocates %.1f per run, want 0", n)
	}
	_ = sink
}

func TestConsistentAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := Random(r, DefaultGen(8, 400))
	g := d.TopCut()
	var sink bool
	if n := testing.AllocsPerRun(100, func() {
		sink = d.Consistent(g)
	}); n != 0 {
		t.Errorf("Consistent allocates %.1f per run, want 0", n)
	}
	_ = sink
}
